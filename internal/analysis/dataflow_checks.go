package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// ---- shared helpers for the dataflow checks ----------------------------

// pathMatchesAny is the string-level twin of matchesAnySuffix: does the
// import path equal one of the suffixes or end with "/"+suffix?
func pathMatchesAny(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// shortID trims the module prefix off a function ID for messages:
// "decamouflage/internal/filtering.slidingMin" -> "filtering.slidingMin".
func shortID(id string) string {
	if i := strings.LastIndex(id, "/"); i >= 0 {
		return id[i+1:]
	}
	return id
}

// selectsPkgFuncSuffix is selectsPkgFunc with suffix-based path matching,
// so fixture mini-modules that mirror the real layout resolve the same way.
func selectsPkgFuncSuffix(info *types.Info, e ast.Expr, pkgSuffix, name string) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	pn := pkgNameOf(info, sel.X)
	if pn == nil {
		return false
	}
	p := pn.Imported().Path()
	return p == pkgSuffix || strings.HasSuffix(p, "/"+pkgSuffix)
}

// exprUsesAny reports whether e references any object in set.
func exprUsesAny(info *types.Info, e ast.Expr, set map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if o := info.Uses[id]; o != nil && set[o] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// ---- parsafe -----------------------------------------------------------

// checkParSafe makes the parallel substrate's determinism guarantee a
// static property: a closure handed to parallel.For(ctx, n, fn) may write
// captured slices, maps, or arrays only at indices derived from its chunk
// bounds lo..hi, and may not write captured scalars at all — two chunks
// writing the same location is a data race the serial-vs-parallel
// equivalence tests can only catch probabilistically. Tasks handed to
// parallel.Do are each run once, so their writes may additionally use the
// task's enclosing loop variables (the task index) or constant indices.
// Mutation through method calls is out of scope (covered by -race runs).
func checkParSafe(pkg *Package, cfg Config) []Finding {
	if pkg.HasSuffix(cfg.ParallelPkg) || pkg.HasSuffix(cfg.ParallelPkg+"_test") {
		return nil
	}
	var out []Finding
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		for _, decl := range f.Ast.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, parSafeFunc(pkg, cfg, fd)...)
		}
	}
	return out
}

func parSafeFunc(pkg *Package, cfg Config, fd *ast.FuncDecl) []Finding {
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := ast.Unparen(call.Fun)
		switch {
		case selectsPkgFuncSuffix(pkg.Info, fun, cfg.ParallelPkg, "For"):
			if len(call.Args) < 3 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[2]).(*ast.FuncLit)
			if !ok {
				return true // named body: analyzed where it is defined
			}
			seeds := map[types.Object]bool{}
			for _, field := range lit.Type.Params.List {
				for _, name := range field.Names {
					if o := pkg.Info.Defs[name]; o != nil {
						seeds[o] = true
					}
				}
			}
			out = append(out, analyzeChunkClosure(pkg, lit, seeds, false)...)
		case selectsPkgFuncSuffix(pkg.Info, fun, cfg.ParallelPkg, "Do"):
			if len(call.Args) < 2 {
				return true
			}
			for _, task := range doTaskLits(pkg, fd, call.Args[1]) {
				seeds := enclosingLoopSeeds(pkg, fd, task)
				out = append(out, analyzeChunkClosure(pkg, task, seeds, true)...)
			}
		}
		return true
	})
	return out
}

// doTaskLits finds the task closures behind parallel.Do's second argument:
// either a composite literal of func values in place, or a local slice
// variable populated by indexed assignment or append within the function.
func doTaskLits(pkg *Package, fd *ast.FuncDecl, arg ast.Expr) []*ast.FuncLit {
	var lits []*ast.FuncLit
	addElts := func(cl *ast.CompositeLit) {
		for _, elt := range cl.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if lit, ok := ast.Unparen(elt).(*ast.FuncLit); ok {
				lits = append(lits, lit)
			}
		}
	}
	switch arg := ast.Unparen(arg).(type) {
	case *ast.CompositeLit:
		addElts(arg)
	case *ast.Ident:
		obj := pkg.Info.Uses[arg]
		if obj == nil {
			return nil
		}
		ast.Inspect(fd, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				rhs := ast.Unparen(as.Rhs[i])
				switch l := ast.Unparen(lhs).(type) {
				case *ast.IndexExpr:
					// tasks[i] = func() error { ... }
					if rootObj(pkg.Info, l.X) != obj {
						continue
					}
					if lit, ok := rhs.(*ast.FuncLit); ok {
						lits = append(lits, lit)
					}
				case *ast.Ident:
					o := pkg.Info.Defs[l]
					if o == nil {
						o = pkg.Info.Uses[l]
					}
					if o != obj {
						continue
					}
					// tasks = append(tasks, func() error { ... })
					if call, ok := rhs.(*ast.CallExpr); ok && calleeName(call) == "append" {
						for _, a := range call.Args[1:] {
							if lit, ok := ast.Unparen(a).(*ast.FuncLit); ok {
								lits = append(lits, lit)
							}
						}
					}
					if cl, ok := rhs.(*ast.CompositeLit); ok {
						addElts(cl)
					}
				}
			}
			return true
		})
	}
	return lits
}

// enclosingLoopSeeds collects the loop variables of every for/range
// statement in fd that encloses lit — for a task built in a loop, the task
// index variables that make its writes per-task.
func enclosingLoopSeeds(pkg *Package, fd *ast.FuncDecl, lit *ast.FuncLit) map[types.Object]bool {
	seeds := map[types.Object]bool{}
	addIdent := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if o := pkg.Info.Defs[id]; o != nil {
				seeds[o] = true
			}
		}
	}
	ast.Inspect(fd, func(n ast.Node) bool {
		if n == nil || lit.Pos() < n.Pos() || lit.End() > n.End() {
			return n != nil && lit.Pos() >= n.Pos() && lit.End() <= n.End()
		}
		switch n := n.(type) {
		case *ast.ForStmt:
			if as, ok := n.Init.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
				for _, lhs := range as.Lhs {
					addIdent(lhs)
				}
			}
		case *ast.RangeStmt:
			if n.Tok == token.DEFINE {
				if n.Key != nil {
					addIdent(n.Key)
				}
				if n.Value != nil {
					addIdent(n.Value)
				}
			}
		}
		return true
	})
	return seeds
}

// analyzeChunkClosure enforces the write discipline inside one parallel
// closure. derived starts at the chunk-bound parameters (or task loop
// variables) and grows by fixpoint over local assignments; a local sliced
// from a captured base with a derived bound is a chunk-owned alias whose
// writes are disjoint by construction.
func analyzeChunkClosure(pkg *Package, lit *ast.FuncLit, seeds map[types.Object]bool, taskConstOK bool) []Finding {
	info := pkg.Info
	derived := map[types.Object]bool{}
	for o := range seeds {
		derived[o] = true
	}
	owned := map[types.Object]bool{}

	capturedRoot := func(e ast.Expr) types.Object {
		root := rootObj(info, e)
		if v, ok := root.(*types.Var); ok && !declaredWithin(v, lit) && !owned[v] {
			return v
		}
		return nil
	}

	for changed := true; changed; {
		changed = false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil || !declaredWithin(obj, lit) {
					continue
				}
				var rhs ast.Expr
				switch {
				case len(as.Rhs) == len(as.Lhs):
					rhs = as.Rhs[i]
				case len(as.Rhs) == 1:
					rhs = as.Rhs[0]
				default:
					continue
				}
				if se, ok := ast.Unparen(rhs).(*ast.SliceExpr); ok {
					if capturedRoot(se.X) != nil && sliceBoundDerived(info, se, derived) {
						if !owned[obj] {
							owned[obj] = true
							changed = true
						}
						continue
					}
				}
				if !derived[obj] && exprUsesAny(info, rhs, derived) {
					derived[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	var out []Finding
	report := func(n ast.Node, msg string) {
		out = append(out, Finding{Check: "parsafe", Pos: pkg.pos(n), Msg: msg})
	}
	checkTarget := func(e ast.Expr) {
		target := ast.Unparen(e)
		var indices []ast.Expr
		deref := false
		cur := target
	peel:
		for {
			switch x := ast.Unparen(cur).(type) {
			case *ast.IndexExpr:
				indices = append(indices, x.Index)
				cur = x.X
			case *ast.SelectorExpr:
				cur = x.X
			case *ast.StarExpr:
				deref = true
				cur = x.X
			default:
				break peel
			}
		}
		id, ok := ast.Unparen(cur).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		v, ok := obj.(*types.Var)
		if !ok || declaredWithin(v, lit) || owned[v] {
			return
		}
		if len(indices) == 0 {
			what := "captured variable " + v.Name()
			if deref {
				what = "captured pointer target *" + v.Name()
			}
			report(target, "write to "+what+" from a parallel closure races across chunks; "+
				"use a per-chunk local, an index derived from the chunk bounds, or sync/atomic")
			return
		}
		for _, ix := range indices {
			if exprUsesAny(info, ix, derived) {
				continue
			}
			if taskConstOK {
				if tv, ok := info.Types[ix]; ok && tv.Value != nil {
					continue
				}
			}
			report(target, "write to captured "+v.Name()+" at an index not derived from the "+
				"chunk bounds: every chunk writes the same element; index with lo..hi "+
				"(or the task's loop variable) instead")
			return
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				checkTarget(lhs)
			}
		case *ast.IncDecStmt:
			checkTarget(n.X)
		}
		return true
	})
	return out
}

// sliceBoundDerived reports whether any explicit bound of the slice
// expression references a derived variable.
func sliceBoundDerived(info *types.Info, se *ast.SliceExpr, derived map[types.Object]bool) bool {
	for _, b := range []ast.Expr{se.Low, se.High, se.Max} {
		if b != nil && exprUsesAny(info, b, derived) {
			return true
		}
	}
	return false
}

// ---- hotalloc ----------------------------------------------------------

// checkHotAlloc enforces the //declint:hot contract: an annotated function
// and everything it statically calls (interface dispatch included, resolved
// to module-defined implementers) must be allocation-free — no make/new, no
// growing append (append(x[:0], ...) reuse is sanctioned), no map or slice
// literals, no closures, no interface boxing of non-pointer-shaped values.
// The fast kernels' throughput claims rest on zero per-call allocations;
// this makes that a checked property of the whole call closure instead of
// a benchmark-day observation.
func checkHotAlloc(pkgs []*Package, cfg Config, ix *Index) []Finding {
	var out []Finding
	seen := map[string]bool{}
	for _, rootID := range ix.IDs() {
		root := ix.Funcs[rootID]
		if !root.Hot {
			continue
		}
		for _, id := range ix.Reachable(rootID) {
			fx := ix.Funcs[id]
			if fx == nil {
				continue
			}
			for _, a := range fx.Allocs {
				key := fmt.Sprintf("%s:%d:%d|%s", a.Pos.Filename, a.Pos.Line, a.Pos.Column, a.Kind)
				if seen[key] {
					continue
				}
				seen[key] = true
				msg := a.Kind + " in " + hotMarker + " function " + shortID(id)
				if id != rootID {
					msg = a.Kind + " in " + shortID(id) + ", reachable from " +
						hotMarker + " " + shortID(rootID)
				}
				out = append(out, Finding{
					Check: "hotalloc", Pos: a.Pos,
					Msg: msg + "; hoist the allocation out of the hot path or suppress with a reason",
				})
			}
		}
	}
	return out
}

// ---- detprop -----------------------------------------------------------

// reachHit is one offending effect found by a reachFinder: the call chain
// from the queried function down to the carrier, and the effect site.
type reachHit struct {
	chain []string
	site  *Site
}

// reachFinder answers "does any effect selected by hit() lie on a
// module-internal call path from this function?" with the path, memoized
// per start node. skip() names barrier packages the BFS does not enter;
// hit() inspects a summary and returns the offending site, or nil. Built
// for detprop's source taint and reused by memopure for source and
// global-write reachability.
type reachFinder struct {
	ix   *Index
	skip func(pkgPath string) bool
	hit  func(fx *FuncEffects) *Site
	memo map[string]*reachHit
}

func newReachFinder(ix *Index, skip func(string) bool, hit func(*FuncEffects) *Site) *reachFinder {
	return &reachFinder{ix: ix, skip: skip, hit: hit, memo: map[string]*reachHit{}}
}

func (r *reachFinder) find(start string) *reachHit {
	if t, ok := r.memo[start]; ok {
		return t
	}
	r.memo[start] = nil // cycle guard: in-progress nodes read as clean
	seen := map[string]bool{start: true}
	parent := map[string]string{}
	queue := []string{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		fx := r.ix.Funcs[cur]
		if fx == nil || r.skip(fx.PkgPath) {
			continue
		}
		if site := r.hit(fx); site != nil {
			chain := []string{cur}
			for p := cur; p != start; {
				p = parent[p]
				chain = append([]string{p}, chain...)
			}
			t := &reachHit{chain: chain, site: site}
			r.memo[start] = t
			return t
		}
		for _, c := range fx.Calls {
			for _, next := range r.ix.expand(c.Callee) {
				if !seen[next] {
					seen[next] = true
					parent[next] = cur
					queue = append(queue, next)
				}
			}
		}
	}
	return nil
}

// chainVia renders a reachHit's call chain for messages.
func (t *reachHit) chainVia() string {
	short := make([]string, len(t.chain))
	for i, c := range t.chain {
		short[i] = shortID(c)
	}
	return strings.Join(short, " -> ")
}

// checkDetProp extends the determinism check transitively: a kernel-package
// function must not reach time.Now, math/rand, or map-ordered output
// through any chain of module-internal calls, however deep. Sources inside
// the kernel packages themselves are already reported directly by
// `determinism`, so detprop flags only chains whose carrier lives outside
// them; packages in TaintExemptPkgs (observability: spans read clocks but
// never feed numeric output) are barriers the traversal does not cross.
func checkDetProp(pkgs []*Package, cfg Config, ix *Index) []Finding {
	exemptTraverse := func(p string) bool { return pathMatchesAny(p, cfg.TaintExemptPkgs) }
	exemptCarrier := func(p string) bool {
		return exemptTraverse(p) || pathMatchesAny(p, cfg.DeterminismPkgs)
	}
	taints := newReachFinder(ix, exemptTraverse, func(fx *FuncEffects) *Site {
		if len(fx.Sources) > 0 && !exemptCarrier(fx.PkgPath) {
			return &fx.Sources[0]
		}
		return nil
	})

	var out []Finding
	seenSite := map[string]bool{}
	for _, id := range ix.IDs() {
		fx := ix.Funcs[id]
		if !pathMatchesAny(fx.PkgPath, cfg.DeterminismPkgs) {
			continue
		}
		for _, cs := range fx.Calls {
			for _, target := range ix.expand(cs.Callee) {
				t := taints.find(target)
				if t == nil {
					continue
				}
				key := fmt.Sprintf("%s:%d:%d", cs.Pos.Filename, cs.Pos.Line, cs.Pos.Column)
				if seenSite[key] {
					break
				}
				seenSite[key] = true
				out = append(out, Finding{
					Check: "detprop", Pos: cs.Pos,
					Msg: fmt.Sprintf("call reaches %s at %s:%d (via %s); "+
						"kernel output must not depend on it",
						t.site.Kind, filepath.Base(t.site.Pos.Filename), t.site.Pos.Line,
						t.chainVia()),
				})
				break
			}
		}
	}
	return out
}

// ---- ctxflow -----------------------------------------------------------

// checkCtxFlow enforces context discipline in internal library code: a
// function that receives a context must actually use it and must not mint a
// fresh context.Background/TODO, and unexported internal functions may not
// mint contexts at all — only exported entry points are documented context
// roots. A minted context three calls deep silently severs cancellation
// for every parallel kernel below it.
func checkCtxFlow(pkgs []*Package, cfg Config, ix *Index) []Finding {
	var out []Finding
	for _, id := range ix.IDs() {
		fx := ix.Funcs[id]
		if !strings.Contains("/"+fx.PkgPath+"/", "/internal/") {
			continue
		}
		if fx.HasCtx && !fx.CtxUsed {
			out = append(out, Finding{
				Check: "ctxflow", Pos: fx.CtxPos,
				Msg: "ctx parameter " + fx.CtxParam + " of " + shortID(id) +
					" is never used; pass it to callees or rename it _ to document the drop",
			})
		}
		for _, r := range fx.CtxRoots {
			switch {
			case fx.HasCtx:
				out = append(out, Finding{
					Check: "ctxflow", Pos: r.Pos,
					Msg: shortID(id) + " receives a context but mints " + r.Kind +
						"(); pass the ctx parameter down instead",
				})
			case !fx.Exported:
				out = append(out, Finding{
					Check: "ctxflow", Pos: r.Pos,
					Msg: "unexported " + shortID(id) + " mints " + r.Kind +
						"() in internal code; accept a context from its caller",
				})
			}
		}
	}
	return out
}
