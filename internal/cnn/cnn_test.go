package cnn

import (
	"math"
	"testing"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/testutil"
)

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(Config{InputW: 4, InputH: 16, Classes: 2}); err == nil {
		t.Error("tiny input accepted")
	}
	if _, err := NewNetwork(Config{InputW: 16, InputH: 16, Classes: 1}); err == nil {
		t.Error("single class accepted")
	}
	if _, err := NewNetwork(Config{InputW: 16, InputH: 16, Classes: 2, Conv1: -1}); err == nil {
		t.Error("negative conv accepted")
	}
	n, err := NewNetwork(Config{InputW: 16, InputH: 16, Classes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if n.Config().Conv1 != 8 || n.Config().Conv2 != 16 {
		t.Errorf("defaults = %+v", n.Config())
	}
}

func TestPredictValidation(t *testing.T) {
	n, err := NewNetwork(Config{InputW: 16, InputH: 16, Classes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.Predict(&imgcore.Image{}); err == nil {
		t.Error("empty image accepted")
	}
	wrong := imgcore.MustNew(8, 8, 1)
	if _, _, err := n.Predict(wrong); err == nil {
		t.Error("wrong geometry accepted")
	}
	ok := imgcore.MustNew(16, 16, 3) // color converts via luminance
	ok.Fill(128)
	pred, probs, err := n.Predict(ok)
	if err != nil {
		t.Fatal(err)
	}
	if pred < 0 || pred >= 2 || len(probs) != 2 {
		t.Errorf("pred=%d probs=%v", pred, probs)
	}
	var sum float64
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Errorf("prob %v out of range", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probs sum %v", sum)
	}
}

func TestSoftmaxStable(t *testing.T) {
	p := softmax([]float64{1000, 1000, 999})
	var sum float64
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("softmax overflow")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("sum %v", sum)
	}
	if !testutil.BitEqual(p[0], p[1]) || p[2] >= p[0] {
		t.Errorf("ordering wrong: %v", p)
	}
}

func TestShapeImages(t *testing.T) {
	for class := 0; class < NumShapeClasses; class++ {
		img := ShapeImage(class, 32, 7)
		if err := img.Validate(); err != nil {
			t.Fatalf("class %d: %v", class, err)
		}
		lo, hi := img.MinMax()
		if lo < 0 || hi > 255 {
			t.Fatalf("class %d out of range [%v,%v]", class, lo, hi)
		}
		if hi-lo < 60 {
			t.Errorf("class %d low contrast (%v)", class, hi-lo)
		}
		if ShapeClassName(class) == "" {
			t.Errorf("class %d unnamed", class)
		}
		// Deterministic.
		again := ShapeImage(class, 32, 7)
		for i := range img.Pix {
			if !testutil.BitEqual(img.Pix[i], again.Pix[i]) {
				t.Fatalf("class %d not deterministic", class)
			}
		}
	}
	if ShapeClassName(99) == "" {
		t.Error("unknown class unnamed")
	}
}

func TestShapeDataset(t *testing.T) {
	ds := ShapeDataset(3, 16, 1)
	if len(ds) != 3*NumShapeClasses {
		t.Fatalf("dataset size %d", len(ds))
	}
	counts := map[int]int{}
	for _, s := range ds {
		counts[s.Label]++
		if s.Image.W != 16 {
			t.Fatalf("sample size %d", s.Image.W)
		}
	}
	for c := 0; c < NumShapeClasses; c++ {
		if counts[c] != 3 {
			t.Errorf("class %d count %d", c, counts[c])
		}
	}
}

// The load-bearing test: the network actually learns. A tiny config must
// beat chance comfortably on held-out shapes after a short training run.
func TestNetworkLearnsShapes(t *testing.T) {
	n, err := NewNetwork(Config{InputW: 16, InputH: 16, Classes: NumShapeClasses, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	train := ShapeDataset(40, 16, 100)
	test := ShapeDataset(10, 16, 900)
	losses, err := n.Fit(train, TrainOptions{Epochs: 20, LearningRate: 0.005, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != 20 {
		t.Fatalf("loss history %v", losses)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Errorf("loss did not decrease: %v", losses)
	}
	acc, err := n.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.8 { // chance is 0.25
		t.Errorf("held-out accuracy %v, want >= 0.8", acc)
	}
}

func TestFitValidation(t *testing.T) {
	n, err := NewNetwork(Config{InputW: 16, InputH: 16, Classes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Fit(nil, TrainOptions{}); err == nil {
		t.Error("empty training set accepted")
	}
	bad := []Sample{{Image: ShapeImage(0, 16, 1), Label: 5}}
	if _, err := n.Fit(bad, TrainOptions{Epochs: 1}); err == nil {
		t.Error("out-of-range label accepted")
	}
	wrongSize := []Sample{{Image: ShapeImage(0, 8, 1), Label: 0}}
	if _, err := n.Fit(wrongSize, TrainOptions{Epochs: 1}); err == nil {
		t.Error("wrong-size sample accepted")
	}
	if _, err := n.Accuracy(nil); err == nil {
		t.Error("empty eval set accepted")
	}
}

// Gradient check: numerical vs analytic gradient on a micro network.
func TestGradientCheck(t *testing.T) {
	n, err := NewNetwork(Config{InputW: 12, InputH: 12, Classes: 2, Conv1: 2, Conv2: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	img := ShapeImage(ClassCircle, 12, 4)
	label := 0

	loss := func() float64 {
		v, err := n.volumeFromImage(img)
		if err != nil {
			t.Fatal(err)
		}
		logits := n.forward(v)
		p := softmax(logits.Data)
		return -math.Log(math.Max(p[label], 1e-12))
	}

	// Analytic gradient for one conv weight and one dense weight.
	v, err := n.volumeFromImage(img)
	if err != nil {
		t.Fatal(err)
	}
	logits := n.forward(v)
	probs := softmax(logits.Data)
	grad := NewVolume(1, 1, 2)
	copy(grad.Data, probs)
	grad.Data[label] -= 1
	g := grad
	for i := len(n.layers) - 1; i >= 0; i-- {
		g = n.layers[i].backward(g)
	}
	conv := n.layers[0].(*conv2D)
	dens := n.layers[6].(*dense)
	checks := []struct {
		name   string
		w      *float64
		gotVal float64
	}{
		{"conv w0", &conv.weights[0], conv.gradW[0]},
		{"dense w0", &dens.weights[0], dens.gradW[0]},
	}
	const eps = 1e-5
	for _, c := range checks {
		orig := *c.w
		*c.w = orig + eps
		lp := loss()
		*c.w = orig - eps
		lm := loss()
		*c.w = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-c.gotVal) > 1e-4*(1+math.Abs(numeric)) {
			t.Errorf("%s: numeric %v vs analytic %v", c.name, numeric, c.gotVal)
		}
	}
}

func BenchmarkPredict32(b *testing.B) {
	n, err := NewNetwork(Config{InputW: 32, InputH: 32, Classes: NumShapeClasses})
	if err != nil {
		b.Fatal(err)
	}
	img := ShapeImage(ClassSquare, 32, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := n.Predict(img); err != nil {
			b.Fatal(err)
		}
	}
}
