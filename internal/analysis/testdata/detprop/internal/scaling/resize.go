// Fixture: transitive determinism. The kernel package never reads a
// forbidden source directly (the direct case belongs to `determinism`);
// the chains here run through helper packages outside the kernel set.
package scaling

import (
	"detprop/internal/obs"
	"detprop/internal/sampler"
	"detprop/internal/stamp"
)

// Resize reaches time.Now two hops away (stamp.ID -> stamp.now).
func Resize(out []float64) {
	tag := stamp.ID()
	for i := range out {
		out[i] = float64(len(tag))
	}
}

// Jitter reaches math/rand one hop away.
func Jitter(out []float64) {
	for i := range out {
		out[i] = sampler.Next()
	}
}

// Traced calls into observability, which reads clocks but is an exempt
// traversal barrier: silent.
func Traced(out []float64) {
	obs.Mark()
	for i := range out {
		out[i] = 1
	}
}
