// Fixture: memoized-stage purity. Intermediates mirrors the real pipeline
// table; every closure opens a real obs span (so obscover stays silent) and
// the violations cover memopure's hazard list. This package sits in the
// kernel set, so the clock-reaching stages are double-reported by the
// determinism/detprop layer too — the goldens pin that overlap.
package detect

import (
	"time"

	"memopure/internal/counter"
	"memopure/internal/obs"
	"memopure/internal/stamp"
)

type stageKey string

// Intermediates memoizes per-image stage outputs.
type Intermediates struct {
	vals map[stageKey]any
}

func (in *Intermediates) memo(key stageKey, compute func() (any, error)) (any, error) {
	if v, ok := in.vals[key]; ok {
		return v, nil
	}
	v, err := compute()
	if err != nil {
		return nil, err
	}
	if in.vals == nil {
		in.vals = map[stageKey]any{}
	}
	in.vals[key] = v
	return v, nil
}

var (
	grayHist  = &obs.Histogram{}
	sumHist   = &obs.Histogram{}
	countHist = &obs.Histogram{}
	stampHist = &obs.Histogram{}
	tagHist   = &obs.Histogram{}
	bumpHist  = &obs.Histogram{}
)

// Gray is a pure function of its key: silent.
func (in *Intermediates) Gray() (any, error) {
	return in.memo("gray", func() (any, error) {
		done := obs.StartStage("gray", grayHist)
		defer done()
		return 1, nil
	})
}

// Sum writes a variable captured from the enclosing frame.
func (in *Intermediates) Sum() (any, error) {
	acc := 0
	return in.memo("sum", func() (any, error) {
		done := obs.StartStage("sum", sumHist)
		defer done()
		acc++
		return acc, nil
	})
}

var total int

// Count mutates package state from inside the closure.
func (in *Intermediates) Count() (any, error) {
	return in.memo("count", func() (any, error) {
		done := obs.StartStage("count", countHist)
		defer done()
		total++
		return total, nil
	})
}

// Stamp reads the clock directly inside the closure.
func (in *Intermediates) Stamp() (any, error) {
	return in.memo("stamp", func() (any, error) {
		done := obs.StartStage("stamp", stampHist)
		defer done()
		return time.Now().UnixNano(), nil
	})
}

// Tag reaches the clock two hops away through the stamp helper.
func (in *Intermediates) Tag() (any, error) {
	return in.memo("tag", func() (any, error) {
		done := obs.StartStage("tag", tagHist)
		defer done()
		return stamp.ID(), nil
	})
}

// Bump reaches a package-level write through the counter helper.
func (in *Intermediates) Bump() (any, error) {
	return in.memo("bump", func() (any, error) {
		done := obs.StartStage("bump", bumpHist)
		defer done()
		counter.Bump()
		return 0, nil
	})
}
