// Command attackgen crafts image-scaling attack images (the Xiao et al.
// attack) for research and for exercising the detectors.
//
// With -source and -target it embeds the target file into the source file;
// without them it generates a synthetic demonstration pair.
//
// Usage:
//
//	attackgen -source sheep.png -target wolf.png -dst 224x224 -out attack.png
//	attackgen -demo -dst 32x32 -out attack.png
package main

import (
	"flag"
	"fmt"
	"os"

	"decamouflage/internal/attack"
	"decamouflage/internal/cliutil"
	"decamouflage/internal/dataset"
	"decamouflage/internal/imgcore"
	"decamouflage/internal/scaling"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "attackgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("attackgen", flag.ContinueOnError)
	var (
		srcPath = fs.String("source", "", "source (cover) image file")
		tgtPath = fs.String("target", "", "target (hidden) image file")
		demo    = fs.Bool("demo", false, "generate a synthetic source/target pair")
		dst     = fs.String("dst", "224x224", "model input geometry WxH")
		alg     = fs.String("alg", "bilinear", "scaling algorithm to attack")
		eps     = fs.Float64("eps", 2, "allowed L-inf deviation at the target")
		seed    = fs.Int64("seed", 1, "demo generator seed")
		out     = fs.String("out", "attack.png", "output attack image path")
		saveAll = fs.Bool("save-intermediate", false, "also save source/target/downscale next to -out")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	dstW, dstH, err := cliutil.ParseSize(*dst)
	if err != nil {
		return err
	}
	algorithm, err := scaling.ParseAlgorithm(*alg)
	if err != nil {
		return err
	}

	var source, target *imgcore.Image
	switch {
	case *demo:
		g, err := dataset.NewGenerator(dataset.Config{
			Corpus: dataset.CaltechLike, W: dstW * 4, H: dstH * 4, C: 3, Seed: *seed,
		})
		if err != nil {
			return err
		}
		tg, err := dataset.NewGenerator(dataset.Config{
			Corpus: dataset.CaltechLike, W: dstW, H: dstH, C: 3, Seed: *seed + 1,
		})
		if err != nil {
			return err
		}
		source, target = g.Image(0), tg.Image(0)
	case *srcPath != "" && *tgtPath != "":
		source, err = imgcore.Load(*srcPath)
		if err != nil {
			return err
		}
		target, err = imgcore.Load(*tgtPath)
		if err != nil {
			return err
		}
		if target.W != dstW || target.H != dstH {
			target, err = scaling.Resize(target, dstW, dstH, scaling.Options{Algorithm: algorithm})
			if err != nil {
				return fmt.Errorf("resizing target to %dx%d: %w", dstW, dstH, err)
			}
			target.Quantize8()
		}
	default:
		return fmt.Errorf("pass -source and -target, or -demo")
	}

	scaler, err := scaling.NewScaler(source.W, source.H, dstW, dstH, scaling.Options{Algorithm: algorithm})
	if err != nil {
		return err
	}
	res, err := attack.Craft(source, target, attack.Config{Scaler: scaler, Eps: *eps})
	if err != nil {
		return err
	}
	if err := res.Attack.SavePNG(*out); err != nil {
		return err
	}
	fmt.Printf("attack image written to %s\n", *out)
	fmt.Printf("  converged:        %v (solver sweeps %d)\n", res.Converged, res.Sweeps)
	fmt.Printf("  L-inf to target:  %.2f (eps %.2f)\n", res.MaxViolation, *eps)
	fmt.Printf("  perturbation MSE: %.1f\n", res.PerturbationMSE)
	fmt.Printf("  downscaled MSE:   %.2f\n", res.DownscaledMSE)

	if *saveAll {
		base := *out
		down, err := scaler.Resize(res.Attack)
		if err != nil {
			return err
		}
		for suffix, img := range map[string]*imgcore.Image{
			".source.png": source, ".target.png": target, ".downscaled.png": down,
		} {
			if err := img.SavePNG(base + suffix); err != nil {
				return err
			}
		}
	}
	return nil
}
