// Package obs is the repository's stdlib-only observability layer: a
// lock-cheap metrics registry (atomic counters, gauges and fixed-bucket
// latency histograms with Prometheus-text, JSON and expvar exposition),
// lightweight tracing spans that render a per-image detection timeline,
// and profiling hooks (CPU/heap profiles plus a debug HTTP server serving
// net/http/pprof, /metrics and /healthz).
//
// The package exists because the paper treats per-method latency as a
// first-class result (Table "overhead": 137-174 ms per method in
// online-protection mode) and because the PR 3 caches and the PR 1
// parallel substrate cannot be tuned without visibility into hit rates and
// worker utilization.
//
// # Cost model
//
// Everything is off by default and engineered to cost ~zero when off:
//
//   - Metrics are gated by one package-level atomic flag. A disabled
//     Counter.Inc is a nil check, one atomic load and a return — no
//     locks, no allocation (BenchmarkDetectDisabled pins the end-to-end
//     overhead at <= 2% vs a build with the instrumentation compiled out).
//   - Spans only exist inside a context that carries a trace (WithTrace);
//     StartSpan on an untraced context is a single context.Value miss.
//   - The `noobs` build tag compiles the whole layer out: every entry
//     point short-circuits on a constant the compiler eliminates, which is
//     what the CI overhead guard benchmarks against.
//
// Every method is nil-safe: a nil *Counter, *Gauge, *Histogram, *Span,
// *Trace or *Registry is a no-op, so instrumented code never needs to
// guard its own observability calls.
package obs

import (
	"sync/atomic"
	"time"
)

// enabled gates all metric recording. Tracing is gated separately, by the
// presence of a trace in the context (see WithTrace).
var enabled atomic.Bool

// Enable turns metric recording on.
func Enable() { enabled.Store(true) }

// Disable turns metric recording off (the default).
func Disable() { enabled.Store(false) }

// Enabled reports whether metric recording is on. Under the noobs build
// tag it is constant false.
func Enabled() bool { return !compiledOut && enabled.Load() }

// Clock returns the current time when metric recording is enabled and the
// zero Time otherwise, so hot paths skip the time.Now call entirely while
// disabled. Pair with Histogram.ObserveSince, which ignores zero starts.
func Clock() time.Time {
	if !Enabled() {
		return time.Time{}
	}
	return time.Now()
}
