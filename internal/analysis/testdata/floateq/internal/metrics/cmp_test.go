package metrics

import "testing"

// floateq covers test files too: this exact comparison is flagged.
func TestSame64(t *testing.T) {
	got := 0.1 + 0.2
	if got == 0.3 {
		t.Fatal("exact float equality held by accident")
	}
}
