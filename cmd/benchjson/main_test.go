package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"decamouflage/internal/benchfmt"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: decamouflage/internal/fourier
cpu: Example CPU
BenchmarkFFT2D256 	      50	   3301700 ns/op	 1048766 B/op	       6 allocs/op
BenchmarkFFT1D256Planned-8  	  100000	      3805 ns/op	       0 B/op	       0 allocs/op
BenchmarkRankFilter256Serial/Window5 	      50	   9049049 ns/op
BenchmarkThroughput 	     200	     52341 ns/op	 312.45 MB/s	    1024 B/op	       2 allocs/op
PASS
ok  	decamouflage/internal/fourier	5.1s
--- FAIL: TestSomething
Benchmarking note: this line is chatter, not a result
`

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	out := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(in, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-in", in, "-out", out, "-date", "2026-08-05"}, strings.NewReader(""), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc benchfmt.Document
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if doc.Date != "2026-08-05" {
		t.Fatalf("date %q", doc.Date)
	}
	if doc.GoVersion == "" {
		t.Fatal("missing go_version")
	}
	if len(doc.Benchmarks) != 4 {
		t.Fatalf("artifact has %d benchmarks, want 4", len(doc.Benchmarks))
	}
	// The producing environment rides along so the trajectory gate can
	// tell this machine's snapshots apart from another's.
	if doc.Env == nil {
		t.Fatal("artifact has no env record")
	}
	if doc.Env.GOOS == "" || doc.Env.GOARCH == "" || doc.Env.GOMAXPROCS < 1 {
		t.Fatalf("env record incomplete: %+v", doc.Env)
	}
	if doc.Env.GoVersion != doc.GoVersion {
		t.Fatalf("env go_version %q != document go_version %q", doc.Env.GoVersion, doc.GoVersion)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(nil, strings.NewReader("PASS\n"), &stdout, &stderr)
	if code == 0 {
		t.Fatal("empty benchmark input must exit nonzero")
	}
	if !strings.Contains(stderr.String(), "no benchmark lines") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}

func TestRunStdinToStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-date", "2026-08-05"}, strings.NewReader(sampleOutput), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var doc benchfmt.Document
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("stdout is not valid JSON: %v", err)
	}
}
