// Fixture stand-in for the observability package.
package obs

import "time"

// Histogram records stage latencies.
type Histogram struct{ n int }

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) { h.n++ }

// StartStage opens a span; the returned func closes it. A nil histogram is
// accepted at runtime — obscover exists to keep callers from passing one.
func StartStage(name string, h *Histogram) func() {
	start := time.Now()
	return func() {
		if h != nil {
			h.Observe(time.Since(start))
		}
	}
}
