// Command calibrate selects Decamouflage decision thresholds and writes
// them as a calibration JSON consumable by cmd/decamouflage.
//
// In white-box mode it synthesizes benign+attack corpora (or loads a benign
// directory and crafts attacks from it) and picks optimal thresholds; in
// black-box mode it needs benign images only and uses the paper's
// percentile rule.
//
// Usage:
//
//	calibrate -mode whitebox -n 200 -src 128x128 -dst 32x32 -out cal.json
//	calibrate -mode blackbox -benign-dir ./photos -dst 224x224 -out cal.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"decamouflage/internal/attack"
	"decamouflage/internal/cliutil"
	"decamouflage/internal/dataset"
	"decamouflage/internal/detect"
	"decamouflage/internal/eval"
	"decamouflage/internal/imgcore"
	"decamouflage/internal/scaling"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("calibrate", flag.ContinueOnError)
	var (
		mode       = fs.String("mode", "whitebox", "whitebox (benign+attack) or blackbox (benign only)")
		n          = fs.Int("n", 200, "corpus size")
		src        = fs.String("src", "128x128", "source geometry WxH (synthetic corpora)")
		dst        = fs.String("dst", "32x32", "model input geometry WxH")
		alg        = fs.String("alg", "bilinear", "scaling algorithm")
		eps        = fs.Float64("eps", 2, "attack budget (whitebox)")
		percentile = fs.Float64("percentile", 1, "benign percentile (blackbox)")
		benignDir  = fs.String("benign-dir", "", "directory of real benign images (instead of synthetic)")
		seed       = fs.Int64("seed", 1, "synthetic corpus seed")
		out        = fs.String("out", "calibration.json", "output JSON path")
		systemOut  = fs.String("system-out", "", "also write a full system config (geometry+kernel+thresholds) consumable by detect.BuildSystem")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	dstW, dstH, err := cliutil.ParseSize(*dst)
	if err != nil {
		return err
	}
	algorithm, err := scaling.ParseAlgorithm(*alg)
	if err != nil {
		return err
	}
	ctx := context.Background()

	var benign []*imgcore.Image
	srcW, srcH, err := cliutil.ParseSize(*src)
	if err != nil {
		return err
	}
	if *benignDir != "" {
		benign, err = imgcore.LoadDir(*benignDir, *n)
		if err != nil {
			return err
		}
		if len(benign) == 0 {
			return fmt.Errorf("no images found in %s", *benignDir)
		}
		srcW, srcH = benign[0].W, benign[0].H
		for i, b := range benign {
			if b.W != srcW || b.H != srcH {
				return fmt.Errorf("image %d is %dx%d; calibration needs a uniform size (%dx%d)", i, b.W, b.H, srcW, srcH)
			}
		}
	} else {
		g, err := dataset.NewGenerator(dataset.Config{Corpus: dataset.NeurIPSLike, W: srcW, H: srcH, C: 3, Seed: *seed})
		if err != nil {
			return err
		}
		benign = g.Batch(*n)
	}
	scaler, err := scaling.NewScaler(srcW, srcH, dstW, dstH, scaling.Options{Algorithm: algorithm})
	if err != nil {
		return err
	}

	ss, err := detect.NewScalingScorer(scaler, detect.MSE)
	if err != nil {
		return err
	}
	fsc, err := detect.NewFilteringScorer(2, detect.SSIM)
	if err != nil {
		return err
	}

	scoreAll := func(s detect.Scorer, imgs []*imgcore.Image) ([]float64, error) {
		return detect.Scores(s, imgs)
	}

	cal := detect.NewCalibration(*mode)
	switch *mode {
	case "blackbox":
		for _, pair := range []struct {
			name   string
			scorer detect.Scorer
			metric detect.Metric
		}{
			{"scaling/MSE", ss, detect.MSE},
			{"filtering/SSIM", fsc, detect.SSIM},
		} {
			scores, err := scoreAll(pair.scorer, benign)
			if err != nil {
				return err
			}
			th, err := detect.CalibrateBlackBox(scores, *percentile, pair.metric.AttackDirection())
			if err != nil {
				return err
			}
			cal.Set(pair.name, th)
			fmt.Printf("%-16s threshold %.4f (%v, %.0f%% percentile)\n", pair.name, th.Value, th.Direction, *percentile)
		}
	case "whitebox":
		// Craft attacks from the benign images.
		tg, err := dataset.NewGenerator(dataset.Config{Corpus: dataset.NeurIPSLike, W: dstW, H: dstH, C: 3, Seed: *seed + 1})
		if err != nil {
			return err
		}
		attacks := make([]*imgcore.Image, len(benign))
		for i, b := range benign {
			if err := ctx.Err(); err != nil {
				return err
			}
			res, err := attack.Craft(b, tg.Image(i), attack.Config{Scaler: scaler, Eps: *eps})
			if err != nil {
				return fmt.Errorf("crafting attack %d: %w", i, err)
			}
			attacks[i] = res.Attack
		}
		corpus := &eval.Corpus{Benign: benign, Attacks: attacks, Scaler: scaler}
		for _, pair := range []struct {
			name   string
			scorer detect.Scorer
		}{
			{"scaling/MSE", ss},
			{"filtering/SSIM", fsc},
		} {
			b, a, err := eval.ScorePair(ctx, pair.scorer, corpus)
			if err != nil {
				return err
			}
			wb, err := detect.CalibrateWhiteBox(b, a)
			if err != nil {
				return err
			}
			cal.Set(pair.name, wb.Threshold)
			fmt.Printf("%-16s threshold %.4f (%v, train acc %.1f%%)\n",
				pair.name, wb.Threshold.Value, wb.Threshold.Direction, wb.TrainAccuracy*100)
		}
	default:
		return fmt.Errorf("unknown mode %q (whitebox|blackbox)", *mode)
	}
	cal.Set("steganalysis/CSP", detect.DefaultCSPThreshold())
	if err := cliutil.SaveCalibration(*out, cal); err != nil {
		return err
	}
	fmt.Printf("calibration written to %s\n", *out)

	if *systemOut != "" {
		sys := &detect.SystemConfig{
			SrcW: srcW, SrcH: srcH,
			DstW: dstW, DstH: dstH,
			Algorithm:  algorithm.String(),
			Thresholds: cal.Thresholds,
		}
		data, err := detect.MarshalSystemConfig(sys)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*systemOut, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing system config: %w", err)
		}
		fmt.Printf("system config written to %s\n", *systemOut)
	}
	return nil
}
