package scaling

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/testutil"
)

func TestParseAlgorithm(t *testing.T) {
	tests := []struct {
		in      string
		want    Algorithm
		wantErr bool
	}{
		{"nearest", Nearest, false},
		{"nn", Nearest, false},
		{"bilinear", Bilinear, false},
		{"linear", Bilinear, false},
		{"bicubic", Bicubic, false},
		{"cubic", Bicubic, false},
		{"lanczos", Lanczos, false},
		{"area", Area, false},
		{"box", Area, false},
		{"bogus", 0, true},
		{"", 0, true},
	}
	for _, tt := range tests {
		got, err := ParseAlgorithm(tt.in)
		if (err != nil) != tt.wantErr || got != tt.want {
			t.Errorf("ParseAlgorithm(%q) = %v,%v want %v,err=%v", tt.in, got, err, tt.want, tt.wantErr)
		}
	}
	for _, a := range Algorithms() {
		if a.String() == "" || a.String()[0] == 'A' {
			t.Errorf("missing String for %d", int(a))
		}
		back, err := ParseAlgorithm(a.String())
		if err != nil || back != a {
			t.Errorf("round trip %v failed: %v %v", a, back, err)
		}
	}
	if Algorithm(99).String() == "" {
		t.Error("unknown algorithm String empty")
	}
}

func TestBuildCoeffValidation(t *testing.T) {
	if _, err := BuildCoeff(0, 4, Options{Algorithm: Bilinear}); err == nil {
		t.Error("BuildCoeff(0,4) = nil error")
	}
	if _, err := BuildCoeff(4, 0, Options{Algorithm: Bilinear}); err == nil {
		t.Error("BuildCoeff(4,0) = nil error")
	}
	if _, err := BuildCoeff(4, 4, Options{}); err == nil {
		t.Error("BuildCoeff with zero Algorithm = nil error")
	}
	if _, err := BuildCoeff(4, 4, Options{Algorithm: Algorithm(42)}); err == nil {
		t.Error("BuildCoeff with bogus Algorithm = nil error")
	}
}

// Property: every row's weights sum to 1 (partition of unity) and indices
// are sorted, unique and in range — for every algorithm and many geometries.
func TestCoeffRowsPartitionOfUnity(t *testing.T) {
	geometries := [][2]int{{8, 4}, {9, 3}, {100, 32}, {224, 224}, {7, 13}, {32, 224}, {5, 1}, {1, 5}}
	for _, alg := range Algorithms() {
		for _, anti := range []bool{false, true} {
			for _, g := range geometries {
				c, err := BuildCoeff(g[0], g[1], Options{Algorithm: alg, Antialias: anti})
				if err != nil {
					t.Fatalf("%v anti=%v %v: %v", alg, anti, g, err)
				}
				if c.N != g[0] || c.M != g[1] || len(c.Rows) != g[1] {
					t.Fatalf("%v %v: bad geometry %+v", alg, g, c)
				}
				for i, row := range c.Rows {
					if len(row.Idx) != len(row.W) || len(row.Idx) == 0 {
						t.Fatalf("%v %v row %d: malformed", alg, g, i)
					}
					var sum float64
					prev := -1
					for k, j := range row.Idx {
						if j < 0 || j >= g[0] {
							t.Fatalf("%v %v row %d: index %d out of range", alg, g, i, j)
						}
						if j <= prev {
							t.Fatalf("%v %v row %d: indices not strictly increasing", alg, g, i)
						}
						prev = j
						sum += row.W[k]
					}
					if math.Abs(sum-1) > 1e-9 {
						t.Fatalf("%v anti=%v %v row %d: weights sum %v", alg, anti, g, i, sum)
					}
				}
			}
		}
	}
}

func TestNearestCoeffIsPermutationLike(t *testing.T) {
	c, err := BuildCoeff(8, 4, Options{Algorithm: Nearest})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range c.Rows {
		if len(row.Idx) != 1 || !testutil.BitEqual(row.W[0], 1) {
			t.Fatalf("row %d not a single unit tap: %+v", i, row)
		}
	}
	// Half-pixel-center convention: output i samples source floor((i+0.5)*2) = 1,3,5,7.
	want := []int{1, 3, 5, 7}
	for i, row := range c.Rows {
		if row.Idx[0] != want[i] {
			t.Errorf("nearest tap %d = %d, want %d", i, row.Idx[0], want[i])
		}
	}
}

func TestBilinearNoAntialiasIsSparse(t *testing.T) {
	// The attack precondition: with antialiasing off, a 8x downscale still
	// touches at most 2 source pixels per output (bilinear support).
	c, err := BuildCoeff(256, 32, Options{Algorithm: Bilinear})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.MaxTaps(); got > 2 {
		t.Errorf("bilinear no-antialias taps = %d, want <= 2", got)
	}
	// Most source pixels are untouched slack.
	use := c.SourceUse()
	unused := 0
	for _, u := range use {
		if testutil.BitEqual(u, 0) {
			unused++
		}
	}
	if unused < 256/2 {
		t.Errorf("only %d unused source pixels; attack surface unexpectedly small", unused)
	}
}

func TestBilinearAntialiasIsDense(t *testing.T) {
	c, err := BuildCoeff(256, 32, Options{Algorithm: Bilinear, Antialias: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.MaxTaps(); got < 8 {
		t.Errorf("antialiased taps = %d, want >= 8 (kernel widened by scale)", got)
	}
	use := c.SourceUse()
	for j, u := range use {
		if testutil.BitEqual(u, 0) {
			t.Fatalf("antialiased operator leaves source pixel %d unused", j)
		}
	}
}

func TestAreaCoversAllSources(t *testing.T) {
	c, err := BuildCoeff(64, 16, Options{Algorithm: Area})
	if err != nil {
		t.Fatal(err)
	}
	use := c.SourceUse()
	for j, u := range use {
		if testutil.BitEqual(u, 0) {
			t.Fatalf("area operator leaves source pixel %d unused", j)
		}
	}
}

func TestIdentityResizePreservesSignal(t *testing.T) {
	for _, alg := range []Algorithm{Nearest, Bilinear, Bicubic, Lanczos, Area} {
		c, err := BuildCoeff(16, 16, Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		src := make([]float64, 16)
		for i := range src {
			src[i] = float64(i * i)
		}
		dst := make([]float64, 16)
		c.Apply(src, 1, dst, 1)
		for i := range src {
			if math.Abs(dst[i]-src[i]) > 1e-9 {
				t.Errorf("%v identity: sample %d = %v, want %v", alg, i, dst[i], src[i])
			}
		}
	}
}

// Property: constant signals are preserved exactly by every operator.
func TestConstantPreservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed%64+64)%64 + 2
		m := int(seed%31+31)%31 + 1
		v := float64(int(seed%256+256) % 256)
		for _, alg := range Algorithms() {
			c, err := BuildCoeff(n, m, Options{Algorithm: alg})
			if err != nil {
				return false
			}
			src := make([]float64, n)
			for i := range src {
				src[i] = v
			}
			dst := make([]float64, m)
			c.Apply(src, 1, dst, 1)
			for _, d := range dst {
				if math.Abs(d-v) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestApplyWithStride(t *testing.T) {
	c, err := BuildCoeff(4, 2, Options{Algorithm: Nearest})
	if err != nil {
		t.Fatal(err)
	}
	// Interleave a 4-sample signal in a stride-3 buffer.
	src := make([]float64, 12)
	for i := 0; i < 4; i++ {
		src[i*3] = float64(10 * (i + 1))
	}
	dst := make([]float64, 6)
	c.Apply(src, 3, dst, 3)
	// Nearest taps: floor(0.5*2)=1, floor(1.5*2)=3.
	if !testutil.BitEqual(dst[0], 20) || !testutil.BitEqual(dst[3], 40) {
		t.Errorf("strided apply = %v", dst)
	}
}

func newTestImage(w, h, c int, seed int64) *imgcore.Image {
	img := imgcore.MustNew(w, h, c)
	rng := rand.New(rand.NewSource(seed))
	for i := range img.Pix {
		img.Pix[i] = rng.Float64() * 255
	}
	return img
}

func TestResizeGeometry(t *testing.T) {
	img := newTestImage(40, 30, 3, 1)
	out, err := Resize(img, 10, 8, Options{Algorithm: Bilinear})
	if err != nil {
		t.Fatal(err)
	}
	if out.W != 10 || out.H != 8 || out.C != 3 {
		t.Fatalf("Resize geometry = %v", out)
	}
	if out.HasNaN() {
		t.Error("Resize produced NaN")
	}
}

func TestResizeInvalidInput(t *testing.T) {
	if _, err := Resize(&imgcore.Image{}, 4, 4, Options{Algorithm: Bilinear}); err == nil {
		t.Error("Resize(empty) = nil error")
	}
	img := newTestImage(8, 8, 1, 1)
	if _, err := Resize(img, 0, 4, Options{Algorithm: Bilinear}); err == nil {
		t.Error("Resize to zero width = nil error")
	}
	if _, err := Resize(img, 4, 4, Options{}); err == nil {
		t.Error("Resize with unset algorithm = nil error")
	}
}

func TestResizeConstantImageExact(t *testing.T) {
	img := imgcore.MustNew(50, 40, 3)
	img.Fill(123)
	for _, alg := range Algorithms() {
		out, err := Resize(img, 13, 11, Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		for i, v := range out.Pix {
			if math.Abs(v-123) > 1e-9 {
				t.Fatalf("%v: sample %d = %v, want 123", alg, i, v)
			}
		}
	}
}

func TestResizeLinearRampBilinearExact(t *testing.T) {
	// Bilinear downscale of a linear ramp should stay linear (away from
	// borders) because the triangle kernel reproduces degree-1 polynomials.
	img := imgcore.MustNew(64, 4, 1)
	for y := 0; y < 4; y++ {
		for x := 0; x < 64; x++ {
			img.Set(x, y, 0, float64(x))
		}
	}
	out, err := Resize(img, 32, 4, Options{Algorithm: Bilinear})
	if err != nil {
		t.Fatal(err)
	}
	// Expected: src coord of dst x is (x+0.5)*2-0.5 = 2x+0.5.
	for x := 1; x < 31; x++ {
		want := 2*float64(x) + 0.5
		if got := out.At(x, 0, 0); math.Abs(got-want) > 1e-9 {
			t.Fatalf("ramp at %d = %v, want %v", x, got, want)
		}
	}
}

func TestScalerCachingAndFallback(t *testing.T) {
	s, err := NewScaler(40, 30, 10, 8, Options{Algorithm: Bicubic})
	if err != nil {
		t.Fatal(err)
	}
	if w, h := s.DstSize(); w != 10 || h != 8 {
		t.Errorf("DstSize = %d,%d", w, h)
	}
	if w, h := s.SrcSize(); w != 40 || h != 30 {
		t.Errorf("SrcSize = %d,%d", w, h)
	}
	if s.Options().Algorithm != Bicubic {
		t.Error("Options not preserved")
	}
	img := newTestImage(40, 30, 3, 2)
	out1, err := s.Resize(img)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Resize(img, 10, 8, Options{Algorithm: Bicubic})
	if err != nil {
		t.Fatal(err)
	}
	for i := range out1.Pix {
		if !testutil.BitEqual(out1.Pix[i], want.Pix[i]) {
			t.Fatal("Scaler.Resize differs from Resize")
		}
	}
	// Fallback path for differently sized input.
	other := newTestImage(20, 22, 3, 3)
	out2, err := s.Resize(other)
	if err != nil {
		t.Fatal(err)
	}
	if out2.W != 10 || out2.H != 8 {
		t.Errorf("fallback geometry = %v", out2)
	}
	if _, err := s.Resize(&imgcore.Image{}); err == nil {
		t.Error("Scaler.Resize(empty) = nil error")
	}
}

func TestNewScalerValidation(t *testing.T) {
	if _, err := NewScaler(0, 4, 2, 2, Options{Algorithm: Bilinear}); err == nil {
		t.Error("NewScaler bad src = nil error")
	}
	if _, err := NewScaler(4, 4, 2, 0, Options{Algorithm: Bilinear}); err == nil {
		t.Error("NewScaler bad dst = nil error")
	}
	if _, err := NewScaler(4, 4, 2, 2, Options{}); err == nil {
		t.Error("NewScaler unset algorithm = nil error")
	}
}

func TestDownUp(t *testing.T) {
	img := newTestImage(32, 32, 3, 4)
	down, up, err := DownUp(img, 8, 8, Options{Algorithm: Bilinear})
	if err != nil {
		t.Fatal(err)
	}
	if down.W != 8 || down.H != 8 {
		t.Errorf("down geometry = %v", down)
	}
	if up.W != 32 || up.H != 32 {
		t.Errorf("up geometry = %v", up)
	}
	if _, _, err := DownUp(&imgcore.Image{}, 8, 8, Options{Algorithm: Bilinear}); err == nil {
		t.Error("DownUp(empty) = nil error")
	}
}

// Property: downscaled output of a smooth image stays within the source
// value range (convexity: all weights are non-negative for bilinear/area,
// so outputs are convex combinations).
func TestConvexityPropertyBilinearArea(t *testing.T) {
	f := func(seed int64) bool {
		img := newTestImage(24, 24, 1, seed)
		lo, hi := img.MinMax()
		for _, alg := range []Algorithm{Nearest, Bilinear, Area} {
			out, err := Resize(img, 6, 6, Options{Algorithm: alg})
			if err != nil {
				return false
			}
			olo, ohi := out.MinMax()
			if olo < lo-1e-9 || ohi > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: Resize agrees with explicit two-pass coefficient application.
func TestResizeMatchesCoeffComposition(t *testing.T) {
	img := newTestImage(17, 11, 1, 9)
	opts := Options{Algorithm: Bicubic}
	out, err := Resize(img, 5, 7, opts)
	if err != nil {
		t.Fatal(err)
	}
	vert, err := BuildCoeff(11, 7, opts)
	if err != nil {
		t.Fatal(err)
	}
	horiz, err := BuildCoeff(17, 5, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Manual composition: out[i][j] = sum_k sum_l L[i,k] X[k,l] R[j,l].
	for i := 0; i < 7; i++ {
		for j := 0; j < 5; j++ {
			var s float64
			for a, k := range vert.Rows[i].Idx {
				for b, l := range horiz.Rows[j].Idx {
					s += vert.Rows[i].W[a] * horiz.Rows[j].W[b] * img.At(l, k, 0)
				}
			}
			if math.Abs(s-out.At(j, i, 0)) > 1e-9 {
				t.Fatalf("composition mismatch at (%d,%d): %v vs %v", j, i, s, out.At(j, i, 0))
			}
		}
	}
}

func BenchmarkResizeBilinear256to64(b *testing.B) {
	img := newTestImage(256, 256, 3, 1)
	s, err := NewScaler(256, 256, 64, 64, Options{Algorithm: Bilinear})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Resize(img); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResizeBicubic256to64(b *testing.B) {
	img := newTestImage(256, 256, 3, 1)
	s, err := NewScaler(256, 256, 64, 64, Options{Algorithm: Bicubic})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Resize(img); err != nil {
			b.Fatal(err)
		}
	}
}
