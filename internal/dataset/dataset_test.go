package dataset

import (
	"math"
	"math/rand"
	"testing"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/metrics"
	"decamouflage/internal/scaling"
	"decamouflage/internal/testutil"
)

func newRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func TestNewGeneratorValidation(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"ok neurips", Config{Corpus: NeurIPSLike, W: 32, H: 32, C: 3}, false},
		{"ok caltech gray", Config{Corpus: CaltechLike, W: 16, H: 24, C: 1}, false},
		{"bad corpus", Config{W: 32, H: 32, C: 3}, true},
		{"zero width", Config{Corpus: NeurIPSLike, W: 0, H: 32, C: 3}, true},
		{"bad channels", Config{Corpus: NeurIPSLike, W: 32, H: 32, C: 2}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewGenerator(tt.cfg)
			if (err != nil) != tt.wantErr {
				t.Errorf("NewGenerator(%+v) error = %v, wantErr %v", tt.cfg, err, tt.wantErr)
			}
		})
	}
}

func TestCorpusString(t *testing.T) {
	if NeurIPSLike.String() != "neurips-like" || CaltechLike.String() != "caltech-like" {
		t.Error("corpus names wrong")
	}
	if Corpus(9).String() == "" {
		t.Error("unknown corpus String empty")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Corpus: CaltechLike, W: 48, H: 48, C: 3, Seed: 7}
	g1, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := g1.Image(5), g2.Image(5)
	for i := range a.Pix {
		if !testutil.BitEqual(a.Pix[i], b.Pix[i]) {
			t.Fatal("same (cfg, index) produced different images")
		}
	}
}

func TestDistinctIndicesDiffer(t *testing.T) {
	g, err := NewGenerator(Config{Corpus: NeurIPSLike, W: 32, H: 32, C: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, b := g.Image(0), g.Image(1)
	mse, err := metrics.MSE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if mse < 10 {
		t.Errorf("consecutive images nearly identical: MSE %v", mse)
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, err := NewGenerator(Config{Corpus: NeurIPSLike, W: 32, H: 32, C: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGenerator(Config{Corpus: NeurIPSLike, W: 32, H: 32, C: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	mse, err := metrics.MSE(a.Image(0), b.Image(0))
	if err != nil {
		t.Fatal(err)
	}
	if mse < 10 {
		t.Errorf("different seeds nearly identical: MSE %v", mse)
	}
}

func TestCorporaDiffer(t *testing.T) {
	a, err := NewGenerator(Config{Corpus: NeurIPSLike, W: 32, H: 32, C: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGenerator(Config{Corpus: CaltechLike, W: 32, H: 32, C: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	mse, err := metrics.MSE(a.Image(0), b.Image(0))
	if err != nil {
		t.Fatal(err)
	}
	if mse < 10 {
		t.Errorf("corpora produce identical images: MSE %v", mse)
	}
}

func TestImagesAreValid8Bit(t *testing.T) {
	for _, corpus := range []Corpus{NeurIPSLike, CaltechLike} {
		g, err := NewGenerator(Config{Corpus: corpus, W: 40, H: 30, C: 3, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			img := g.Image(i)
			if err := img.Validate(); err != nil {
				t.Fatalf("%v image %d invalid: %v", corpus, i, err)
			}
			lo, hi := img.MinMax()
			if lo < 0 || hi > 255 {
				t.Fatalf("%v image %d out of range [%v,%v]", corpus, i, lo, hi)
			}
			if img.HasNaN() {
				t.Fatalf("%v image %d has NaN", corpus, i)
			}
			for j, v := range img.Pix {
				if !testutil.BitEqual(v, math.Trunc(v)) {
					t.Fatalf("%v image %d sample %d = %v not quantized", corpus, i, j, v)
				}
			}
		}
	}
}

func TestImagesHaveNaturalContrast(t *testing.T) {
	g, err := NewGenerator(Config{Corpus: CaltechLike, W: 64, H: 64, C: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		img := g.Image(i)
		lo, hi := img.MinMax()
		if hi-lo < 20 {
			t.Errorf("image %d nearly flat: range %v", i, hi-lo)
		}
		m := img.Mean()
		if m < 20 || m > 235 {
			t.Errorf("image %d extreme mean %v", i, m)
		}
	}
}

// The property Decamouflage relies on: benign corpus images survive a
// downscale/upscale round trip with modest residual (the paper's benign MSE
// is a few hundred at most, far below the attack threshold ~1714).
func TestBenignImagesSurviveDownUp(t *testing.T) {
	g, err := NewGenerator(Config{Corpus: NeurIPSLike, W: 128, H: 128, C: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		img := g.Image(i)
		_, up, err := scaling.DownUp(img, 32, 32, scaling.Options{Algorithm: scaling.Bilinear})
		if err != nil {
			t.Fatal(err)
		}
		mse, err := metrics.MSE(img, up)
		if err != nil {
			t.Fatal(err)
		}
		if mse > 1500 {
			t.Errorf("benign image %d round-trip MSE %v, too rough for detection premise", i, mse)
		}
	}
}

func TestBatch(t *testing.T) {
	g, err := NewGenerator(Config{Corpus: NeurIPSLike, W: 16, H: 16, C: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	batch := g.Batch(4)
	if len(batch) != 4 {
		t.Fatalf("Batch(4) returned %d images", len(batch))
	}
	single := g.Image(2)
	for i := range single.Pix {
		if !testutil.BitEqual(batch[2].Pix[i], single.Pix[i]) {
			t.Fatal("Batch images differ from Image by index")
		}
	}
}

func TestConfigAccessor(t *testing.T) {
	cfg := Config{Corpus: CaltechLike, W: 8, H: 8, C: 1, Seed: 42}
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.Config() != cfg {
		t.Errorf("Config() = %+v, want %+v", g.Config(), cfg)
	}
}

func TestSpectralFieldStats(t *testing.T) {
	// Directly exercise the field synthesizer: steeper slopes give
	// smoother fields (less energy in local differences).
	rough := totalVariation(t, 1.0)
	smooth := totalVariation(t, 3.0)
	if smooth >= rough {
		t.Errorf("alpha=3 field rougher than alpha=1: %v >= %v", smooth, rough)
	}
}

func totalVariation(t *testing.T, alpha float64) float64 {
	t.Helper()
	g, err := NewGenerator(Config{Corpus: NeurIPSLike, W: 64, H: 64, C: 1, Seed: 123})
	if err != nil {
		t.Fatal(err)
	}
	_ = g
	// Build the raw field via the internal helper.
	rng := newRand(123)
	f := spectralField(rng, 64, 64, alpha)
	normalizeField(f, 30)
	var tv float64
	for y := 0; y < 64; y++ {
		for x := 1; x < 64; x++ {
			tv += math.Abs(f[y*64+x] - f[y*64+x-1])
		}
	}
	return tv
}

func TestNormalizeFieldDegenerate(t *testing.T) {
	f := []float64{5, 5, 5}
	normalizeField(f, 10) // must not divide by zero
	for _, v := range f {
		if !testutil.BitEqual(v, 0) {
			t.Errorf("constant field normalized to %v, want 0 (mean removed)", v)
		}
	}
}

func TestAddShapeStaysLocal(t *testing.T) {
	img := imgcore.MustNew(32, 32, 1)
	rng := newRand(4)
	addShape(img, rng, 50)
	// At least one pixel changed, and not every pixel changed.
	changed := 0
	for _, v := range img.Pix {
		if !testutil.BitEqual(v, 0) {
			changed++
		}
	}
	if changed == 0 {
		t.Error("shape drew nothing")
	}
	if changed == len(img.Pix) {
		t.Log("shape covered whole image (allowed but unusual)")
	}
}

func BenchmarkGenerate128(b *testing.B) {
	g, err := NewGenerator(Config{Corpus: CaltechLike, W: 128, H: 128, C: 3, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Image(i)
	}
}
