package scaling

import "sort"

// SortedKeys collects then sorts, which is deterministic; the collection
// loop still trips the syntactic check and documents itself with an
// ignore directive.
func SortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	//declint:ignore determinism keys are sorted immediately below
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
