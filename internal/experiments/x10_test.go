package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestRunX10(t *testing.T) {
	var out strings.Builder
	r := NewRunner(testConfig(t, &out))
	if err := r.Run(context.Background(), "X10"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Threshold stability") {
		t.Error("missing table")
	}
	t.Log(out.String())
}
