// Command obsdump renders flight-recorder NDJSON dumps (and retained-trace
// dumps) into the per-stage latency-attribution tables an operator reads
// during an incident.
//
// Usage:
//
//	obsdump -events events.ndjson                  # full report
//	obsdump -events events.ndjson -top 10          # longer slow-list
//	obsdump -events events.ndjson -traces t.ndjson # adds trace retention
//	obsdump -traces t.ndjson -trace a1b2c3-7       # render one trace
//
// The input files are what cmd/decamouflage and cmd/experiments write for
// -events-out / -trace-out, or what /debug/events and /debug/traces serve.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"decamouflage/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "obsdump:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("obsdump", flag.ContinueOnError)
	var (
		eventsPath = fs.String("events", "", "flight-recorder NDJSON dump (from -events-out or /debug/events)")
		tracesPath = fs.String("traces", "", "retained-trace NDJSON dump (from -trace-out or /debug/traces)")
		top        = fs.Int("top", 5, "how many slowest events and borderline verdicts to list")
		traceID    = fs.String("trace", "", "render the retained trace with this ID instead of the report")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *eventsPath == "" && *tracesPath == "" {
		return fmt.Errorf("nothing to read (pass -events and/or -traces)")
	}
	var events []obs.Event
	if *eventsPath != "" {
		if err := readNDJSON(*eventsPath, &events); err != nil {
			return err
		}
	}
	var traces []obs.RetainedTrace
	if *tracesPath != "" {
		if err := readNDJSON(*tracesPath, &traces); err != nil {
			return err
		}
	}
	if *traceID != "" {
		return renderTrace(out, traces, *traceID)
	}
	if *eventsPath != "" {
		report(out, events, *top)
	}
	if *tracesPath != "" {
		traceSummary(out, traces)
	}
	return nil
}

// readNDJSON decodes one JSON value per line from path into *[]T.
func readNDJSON[T any](path string, into *[]T) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	for {
		var v T
		if err := dec.Decode(&v); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		*into = append(*into, v)
	}
}

// stageAgg accumulates one stage path's observations.
type stageAgg struct {
	path  string
	depth int
	durs  []int64
	first int // order of first appearance, for stable display
}

// quantile returns the q-quantile of sorted ns values (nearest-rank).
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func fmtNs(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= 10*time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	case d >= 10*time.Microsecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}

// report writes the incident-readout tables: summary line, per-stage
// latency attribution, slowest events, borderline verdicts, watchdog
// crossings.
func report(out io.Writer, events []obs.Event, top int) {
	var detects, watchdogs, errs, anomalous int
	var detectEvents []obs.Event
	for _, ev := range events {
		switch ev.Name {
		case "watchdog":
			watchdogs++
		default:
			detects++
			detectEvents = append(detectEvents, ev)
		}
		if ev.Err != "" {
			errs++
		}
		if len(ev.Anomalies) > 0 {
			anomalous++
		}
	}
	fmt.Fprintf(out, "Flight recorder report: %d events (%d detect, %d watchdog), %d errored, %d anomalous\n",
		len(events), detects, watchdogs, errs, anomalous)
	if detects > 0 {
		durs := make([]int64, 0, detects)
		var total int64
		for _, ev := range detectEvents {
			durs = append(durs, ev.DurNs)
			total += ev.DurNs
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		fmt.Fprintf(out, "Detect latency: total %s, mean %s, p50 %s, p95 %s, p99 %s\n",
			fmtNs(total), fmtNs(total/int64(detects)),
			fmtNs(quantile(durs, 0.50)), fmtNs(quantile(durs, 0.95)), fmtNs(quantile(durs, 0.99)))
	}

	attribution(out, detectEvents)
	slowest(out, detectEvents, top)
	borderline(out, detectEvents, top)
	watchdogSection(out, events)
}

// attribution aggregates every event's flattened span tree by stage path
// (names joined root-to-leaf, so the same kernel under two methods stays
// distinct) and prints count/total/mean/p50/p95/p99 plus the share of the
// summed root time.
func attribution(out io.Writer, events []obs.Event) {
	byPath := map[string]*stageAgg{}
	var rootTotal int64
	order := 0
	for _, ev := range events {
		// stack[d] is the name at depth d on the current root-to-leaf path.
		var stack []string
		for _, sd := range ev.Stages {
			if sd.Depth < len(stack) {
				stack = stack[:sd.Depth]
			}
			stack = append(stack, sd.Name)
			path := strings.Join(stack, " > ")
			agg := byPath[path]
			if agg == nil {
				agg = &stageAgg{path: path, depth: sd.Depth, first: order}
				order++
				byPath[path] = agg
			}
			agg.durs = append(agg.durs, sd.DurNs)
			if sd.Depth == 0 {
				rootTotal += sd.DurNs
			}
		}
	}
	if len(byPath) == 0 {
		return
	}
	aggs := make([]*stageAgg, 0, len(byPath))
	for _, a := range byPath {
		aggs = append(aggs, a)
	}
	sort.Slice(aggs, func(i, j int) bool { return aggs[i].first < aggs[j].first })
	fmt.Fprintf(out, "\nPer-stage latency attribution (%d detect events):\n", len(events))
	fmt.Fprintf(out, "%-44s %6s %10s %10s %10s %10s %10s %6s\n",
		"STAGE", "COUNT", "TOTAL", "MEAN", "P50", "P95", "P99", "SHARE")
	for _, a := range aggs {
		var total int64
		for _, d := range a.durs {
			total += d
		}
		sorted := append([]int64(nil), a.durs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		share := 0.0
		if rootTotal > 0 {
			share = 100 * float64(total) / float64(rootTotal)
		}
		name := strings.Repeat("  ", a.depth) + lastSeg(a.path)
		fmt.Fprintf(out, "%-44s %6d %10s %10s %10s %10s %10s %5.1f%%\n",
			clip(name, 44), len(a.durs), fmtNs(total), fmtNs(total/int64(len(a.durs))),
			fmtNs(quantile(sorted, 0.50)), fmtNs(quantile(sorted, 0.95)),
			fmtNs(quantile(sorted, 0.99)), share)
	}
}

func lastSeg(path string) string {
	if i := strings.LastIndex(path, " > "); i >= 0 {
		return path[i+3:]
	}
	return path
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func slowest(out io.Writer, events []obs.Event, top int) {
	if len(events) == 0 || top <= 0 {
		return
	}
	sorted := append([]obs.Event(nil), events...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].DurNs > sorted[j].DurNs })
	if len(sorted) > top {
		sorted = sorted[:top]
	}
	fmt.Fprintf(out, "\nSlowest events:\n%-6s %-14s %-12s %10s %-8s %-6s %s\n",
		"SEQ", "TRACE", "GEOMETRY", "DUR", "VERDICT", "VOTES", "ANOMALIES")
	for _, ev := range sorted {
		fmt.Fprintf(out, "%-6d %-14s %-12s %10s %-8s %-6d %s\n",
			ev.Seq, ev.TraceID, fmt.Sprintf("%dx%dx%d", ev.W, ev.H, ev.C),
			fmtNs(ev.DurNs), ev.Verdict, ev.Votes, strings.Join(ev.Anomalies, ","))
	}
}

func borderline(out io.Writer, events []obs.Event, top int) {
	type bl struct {
		ev obs.Event
		m  obs.MethodResult
		// rel is the margin relative to the boundary magnitude, the
		// cross-method closeness measure.
		rel float64
	}
	var list []bl
	for _, ev := range events {
		for _, m := range ev.Methods {
			mag := m.Threshold
			if mag < 0 {
				mag = -mag
			}
			if mag < 1 {
				mag = 1
			}
			list = append(list, bl{ev: ev, m: m, rel: m.Margin / mag})
		}
	}
	sort.Slice(list, func(i, j int) bool { return list[i].rel < list[j].rel })
	shown := 0
	for _, b := range list {
		if b.rel > 0.05 || shown >= top {
			break
		}
		if shown == 0 {
			fmt.Fprintf(out, "\nBorderline verdicts (within 5%% of a decision boundary):\n%-6s %-14s %-18s %12s %12s %-8s\n",
				"SEQ", "TRACE", "METHOD", "SCORE", "THRESHOLD", "ATTACK")
		}
		fmt.Fprintf(out, "%-6d %-14s %-18s %12.5g %12.5g %-8v\n",
			b.ev.Seq, b.ev.TraceID, b.m.Method, b.m.Score, b.m.Threshold, b.m.Attack)
		shown++
	}
}

func watchdogSection(out io.Writer, events []obs.Event) {
	printed := false
	for _, ev := range events {
		if ev.Name != "watchdog" {
			continue
		}
		if !printed {
			fmt.Fprintf(out, "\nWatchdog threshold crossings:\n")
			printed = true
		}
		keys := make([]string, 0, len(ev.Values))
		for k := range ev.Values {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var vals []string
		for _, k := range keys {
			vals = append(vals, fmt.Sprintf("%s=%d", k, ev.Values[k]))
		}
		fmt.Fprintf(out, "seq %-5d %-40s %s\n",
			ev.Seq, strings.Join(ev.Anomalies, ","), strings.Join(vals, " "))
	}
}

// traceSummary lists the retained traces with their retention reasons.
func traceSummary(out io.Writer, traces []obs.RetainedTrace) {
	reasons := map[string]int{}
	for _, rt := range traces {
		reasons[rt.Reason]++
	}
	keys := make([]string, 0, len(reasons))
	for k := range reasons {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, reasons[k]))
	}
	fmt.Fprintf(out, "\nRetained traces: %d (%s)\n", len(traces), strings.Join(parts, " "))
	fmt.Fprintf(out, "%-14s %-24s %10s %-8s %s\n", "ID", "NAME", "DUR", "REASON", "ERR")
	for _, rt := range traces {
		fmt.Fprintf(out, "%-14s %-24s %10s %-8s %s\n",
			rt.ID, rt.Name, fmtNs(rt.DurNs), rt.Reason, rt.Err)
	}
}

// renderTrace prints one retained trace as an indented timeline, the
// offline twin of obs.Trace.Render.
func renderTrace(out io.Writer, traces []obs.RetainedTrace, id string) error {
	for i := len(traces) - 1; i >= 0; i-- {
		rt := traces[i]
		if rt.ID != id {
			continue
		}
		fmt.Fprintf(out, "trace %s (%s, %s, kept: %s)\n", rt.ID, rt.Name, fmtNs(rt.DurNs), rt.Reason)
		for _, sd := range rt.Spans {
			line := fmt.Sprintf("%*s%-24s +%-10s %10s",
				sd.Depth*2, "", sd.Name, fmtNs(sd.OffsetNs), fmtNs(sd.DurNs))
			keys := make([]string, 0, len(sd.Attrs))
			for k := range sd.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				line += " " + k + "=" + sd.Attrs[k]
			}
			fmt.Fprintln(out, line)
		}
		return nil
	}
	return fmt.Errorf("no retained trace %q", id)
}
