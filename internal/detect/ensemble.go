package detect

import (
	"context"
	"errors"
	"fmt"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/obs"
	"decamouflage/internal/parallel"
	"decamouflage/internal/scaling"
	"decamouflage/internal/steg"
)

// EnsembleVerdict is the combined decision of several detectors.
type EnsembleVerdict struct {
	// Attack is the majority-vote decision.
	Attack bool
	// Votes counts how many methods voted attack.
	Votes int
	// Verdicts holds the individual method decisions, in detector order.
	Verdicts []Verdict
}

// Ensemble majority-votes several detectors, running them concurrently —
// the deployable Decamouflage system of the paper's Figure 8 ("runs the
// three methods yielding the decision individually in parallel, then
// performs majority voting").
type Ensemble struct {
	detectors []*Detector

	// Whole-ensemble latency and majority-vote tallies, resolved at
	// construction (detect.ensemble.*).
	detectH *obs.Histogram
	images  *obs.Counter
	attackC *obs.Counter
	benignC *obs.Counter
}

// NewEnsemble builds an ensemble. At least one detector is required; an odd
// count avoids ties (ties break toward benign).
func NewEnsemble(detectors ...*Detector) (*Ensemble, error) {
	if len(detectors) == 0 {
		return nil, errors.New("detect: ensemble needs at least one detector")
	}
	for i, d := range detectors {
		if d == nil {
			return nil, fmt.Errorf("detect: ensemble detector %d is nil", i)
		}
	}
	return &Ensemble{
		detectors: append([]*Detector(nil), detectors...),
		detectH:   obs.H("detect.ensemble.seconds"),
		images:    obs.C("detect.ensemble.images"),
		attackC:   obs.C("detect.ensemble.attack"),
		benignC:   obs.C("detect.ensemble.benign"),
	}, nil
}

// Detectors returns the ensemble members.
func (e *Ensemble) Detectors() []*Detector {
	return append([]*Detector(nil), e.detectors...)
}

// Detect runs every member concurrently (via parallel.Do, one task per
// method, bounded by GOMAXPROCS) and majority-votes. It honours ctx
// cancellation between and during method launches; the first scoring error
// — by detector order — aborts the ensemble.
//
// Observability: the whole call is one stage ("ensemble.detect", latency
// in detect.ensemble.seconds) with each method's span nested under it, and
// the vote outcome recorded on the detect.ensemble.attack/benign counters.
func (e *Ensemble) Detect(ctx context.Context, img *imgcore.Image) (*EnsembleVerdict, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := img.Validate(); err != nil {
		return nil, err
	}
	sctx, st := obs.StartStage(ctx, "ensemble.detect", e.detectH)
	defer st.End()
	verdicts := make([]Verdict, len(e.detectors))
	tasks := make([]func() error, len(e.detectors))
	for i, d := range e.detectors {
		tasks[i] = func() error {
			v, err := d.DetectCtx(sctx, img)
			if err != nil {
				return fmt.Errorf("%s: %w", d.Name(), err)
			}
			verdicts[i] = v
			return nil
		}
	}
	if err := parallel.Do(ctx, tasks); err != nil {
		return nil, err
	}
	votes := 0
	for _, v := range verdicts {
		if v.Attack {
			votes++
		}
	}
	out := &EnsembleVerdict{
		Attack:   votes*2 > len(verdicts),
		Votes:    votes,
		Verdicts: verdicts,
	}
	sp := st.Span()
	sp.AttrInt("votes", int64(votes))
	sp.AttrBool("attack", out.Attack)
	e.images.Inc()
	if out.Attack {
		e.attackC.Inc()
	} else {
		e.benignC.Inc()
	}
	return out, nil
}

// DefaultConfig describes the canonical three-method Decamouflage ensemble
// (the paper's recommended configuration): scaling/MSE, filtering/SSIM and
// steganalysis/CSP.
type DefaultConfig struct {
	// Scaler is the protected model's scaling function. Required.
	Scaler *scaling.Scaler
	// FilterWindow is the minimum-filter size (default 2, the paper's).
	FilterWindow int
	// StegOptions tunes the CSP computation (zero value = calibrated
	// defaults).
	StegOptions steg.Options
	// ScalingThreshold is the Method-1 boundary (from calibration).
	ScalingThreshold Threshold
	// FilteringThreshold is the Method-2 boundary (from calibration).
	FilteringThreshold Threshold
	// CSPThreshold is the Method-3 boundary; zero value uses the paper's
	// fixed CSP >= 2 rule.
	CSPThreshold Threshold
	// ScalingMetric and FilteringMetric pick the score metrics; defaults
	// follow the paper's recommendations (MSE for scaling, SSIM for
	// filtering).
	ScalingMetric   Metric
	FilteringMetric Metric
}

// NewDefaultEnsemble assembles the canonical three-method system.
func NewDefaultEnsemble(cfg DefaultConfig) (*Ensemble, error) {
	if cfg.Scaler == nil {
		return nil, ErrNilScaler
	}
	if cfg.FilterWindow == 0 {
		cfg.FilterWindow = 2
	}
	if cfg.ScalingMetric == 0 {
		cfg.ScalingMetric = MSE
	}
	if cfg.FilteringMetric == 0 {
		cfg.FilteringMetric = SSIM
	}
	if cfg.CSPThreshold == (Threshold{}) {
		cfg.CSPThreshold = DefaultCSPThreshold()
	}
	ss, err := NewScalingScorer(cfg.Scaler, cfg.ScalingMetric)
	if err != nil {
		return nil, err
	}
	sd, err := NewDetector(ss, cfg.ScalingThreshold)
	if err != nil {
		return nil, fmt.Errorf("detect: scaling detector: %w", err)
	}
	fs, err := NewFilteringScorer(cfg.FilterWindow, cfg.FilteringMetric)
	if err != nil {
		return nil, err
	}
	fd, err := NewDetector(fs, cfg.FilteringThreshold)
	if err != nil {
		return nil, fmt.Errorf("detect: filtering detector: %w", err)
	}
	gd, err := NewDetector(NewStegScorer(cfg.StegOptions), cfg.CSPThreshold)
	if err != nil {
		return nil, fmt.Errorf("detect: steganalysis detector: %w", err)
	}
	return NewEnsemble(sd, fd, gd)
}
