// Package pipe is a fixture: channel-discipline hazards — a send on a
// cancellation path without a ctx guard, a per-iteration time.After timer,
// a send after close, and a magic buffer capacity.
package pipe

import (
	"context"
	"time"
)

// depth is the sanctioned way to size a buffer: a named constant.
const depth = 8

// Push receives a ctx but sends without a ctx.Done select guard, so the
// send can outlive cancellation.
func Push(ctx context.Context, out chan int, vs []int) {
	for _, v := range vs {
		if ctx.Err() != nil {
			return
		}
		out <- v
	}
}

// PushGuarded is the clean shape: every send selects on ctx.Done.
func PushGuarded(ctx context.Context, out chan int, vs []int) {
	for _, v := range vs {
		select {
		case out <- v:
		case <-ctx.Done():
			return
		}
	}
}

// Poll mints a fresh timer every iteration: each lost race leaks one until
// it fires.
func Poll(ch chan int) int {
	total := 0
	for i := 0; i < 3; i++ {
		select {
		case v := <-ch:
			total += v
		case <-time.After(time.Millisecond):
		}
	}
	return total
}

// Flush closes the channel and then sends on it: a guaranteed panic.
func Flush(n int) chan int {
	ch := make(chan int, 1)
	close(ch)
	ch <- n
	return ch
}

// Feed sizes its buffer with a bare literal instead of a named constant.
func Feed() chan int {
	return make(chan int, 64)
}

// FeedSized is the clean variant: the capacity has a name.
func FeedSized() chan int {
	return make(chan int, depth)
}
