// Package experiments regenerates every table and figure of the paper's
// evaluation (and this reproduction's extension experiments) on synthetic
// corpora. Each experiment has a stable ID (T1-T9, F1-F15, X1-X5) indexed
// in DESIGN.md; cmd/experiments is the CLI front end and bench_test.go the
// benchmark harness.
package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"decamouflage/internal/dataset"
	"decamouflage/internal/detect"
	"decamouflage/internal/eval"
	"decamouflage/internal/imgcore"
	"decamouflage/internal/obs"
	"decamouflage/internal/scaling"
)

// Config parameterizes an experiment session. The zero value plus an Out
// writer is usable: defaults reproduce the paper's protocol at a laptop
// scale (the paper's own 1000-image corpora are reachable with N=1000).
type Config struct {
	// N is the corpus size per class (default 100).
	N int
	// SrcW/SrcH -> DstW/DstH is the scaling geometry (default 128x128 ->
	// 32x32, a 4:1 ratio per axis like the paper's 800x600 -> 224x224
	// regime).
	SrcW, SrcH, DstW, DstH int
	// Algorithm is the scaling algorithm under attack (default Bilinear).
	Algorithm scaling.Algorithm
	// Eps is the attack budget (default 2).
	Eps float64
	// Seed drives all generators (default 1).
	Seed int64
	// Out receives human-readable results (default os.Stdout).
	Out io.Writer
	// CSVDir, when set, receives CSV series for the figure experiments.
	CSVDir string
	// ArtifactsDir, when set, receives PNG artifacts (attack images,
	// filtered images, spectra).
	ArtifactsDir string
}

func (c Config) withDefaults() Config {
	if c.N == 0 {
		c.N = 100
	}
	if c.SrcW == 0 {
		c.SrcW = 128
	}
	if c.SrcH == 0 {
		c.SrcH = 128
	}
	if c.DstW == 0 {
		c.DstW = 32
	}
	if c.DstH == 0 {
		c.DstH = 32
	}
	if c.Algorithm == 0 {
		c.Algorithm = scaling.Bilinear
	}
	//declint:ignore floateq zero is the unset-option sentinel, set only by literal omission
	if c.Eps == 0 {
		c.Eps = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Out == nil {
		c.Out = os.Stdout
	}
	return c
}

// Experiment describes one runnable experiment.
type Experiment struct {
	// ID is the stable identifier (e.g. "T2", "F9", "X1").
	ID string
	// Title is a one-line description referencing the paper artifact.
	Title string
	run   func(r *Runner, ctx context.Context) error
}

// Runner executes experiments, lazily building and caching the calibration
// (train) and evaluation corpora shared across them.
type Runner struct {
	cfg Config

	mu     sync.Mutex
	train  *eval.Corpus
	evalC  *eval.Corpus
	scaler *scaling.Scaler
}

// NewRunner builds a Runner with the given configuration.
func NewRunner(cfg Config) *Runner {
	return &Runner{cfg: cfg.withDefaults()}
}

// Config returns the effective (defaulted) configuration.
func (r *Runner) Config() Config { return r.cfg }

// Scaler returns the defender's scaler, building it on first use. The
// build (coefficient tables, possibly via the module-wide LRU) happens
// outside mu: holding the Runner lock across another package's locked
// cache would impose a cross-package lock order for no benefit. Losing
// the publish race just discards one identical scaler.
func (r *Runner) Scaler() (*scaling.Scaler, error) {
	r.mu.Lock()
	s := r.scaler
	r.mu.Unlock()
	if s != nil {
		return s, nil
	}
	s, err := scaling.NewScaler(r.cfg.SrcW, r.cfg.SrcH, r.cfg.DstW, r.cfg.DstH,
		scaling.Options{Algorithm: r.cfg.Algorithm})
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if r.scaler == nil {
		r.scaler = s
	}
	s = r.scaler
	r.mu.Unlock()
	return s, nil
}

// Train returns the calibration corpus (NeurIPS-like), building it once.
// The build is a parallel.For fan-out over the whole corpus and must not
// run under mu; concurrent first callers may both build, and the loser
// discards its copy (the corpora are deterministic for a given spec).
func (r *Runner) Train(ctx context.Context) (*eval.Corpus, error) {
	r.mu.Lock()
	c := r.train
	r.mu.Unlock()
	if c != nil {
		return c, nil
	}
	c, err := eval.BuildCorpus(ctx, r.spec(dataset.NeurIPSLike, r.cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("experiments: build train corpus: %w", err)
	}
	r.mu.Lock()
	if r.train == nil {
		r.train = c
	}
	c = r.train
	r.mu.Unlock()
	return c, nil
}

// Eval returns the evaluation corpus (Caltech-like), building it once.
// Same discipline as Train: the expensive build runs outside mu.
func (r *Runner) Eval(ctx context.Context) (*eval.Corpus, error) {
	r.mu.Lock()
	c := r.evalC
	r.mu.Unlock()
	if c != nil {
		return c, nil
	}
	c, err := eval.BuildCorpus(ctx, r.spec(dataset.CaltechLike, r.cfg.Seed+100000))
	if err != nil {
		return nil, fmt.Errorf("experiments: build eval corpus: %w", err)
	}
	r.mu.Lock()
	if r.evalC == nil {
		r.evalC = c
	}
	c = r.evalC
	r.mu.Unlock()
	return c, nil
}

func (r *Runner) spec(corpus dataset.Corpus, seed int64) eval.CorpusSpec {
	return eval.CorpusSpec{
		Corpus: corpus,
		N:      r.cfg.N,
		SrcW:   r.cfg.SrcW, SrcH: r.cfg.SrcH,
		DstW: r.cfg.DstW, DstH: r.cfg.DstH,
		Seed:      seed,
		Algorithm: r.cfg.Algorithm,
		Eps:       r.cfg.Eps,
	}
}

// printf writes to the configured output.
func (r *Runner) printf(format string, args ...any) {
	fmt.Fprintf(r.cfg.Out, format, args...)
}

// writeCSV persists a CSV file when CSVDir is configured.
func (r *Runner) writeCSV(name string, write func(w io.Writer) error) error {
	if r.cfg.CSVDir == "" {
		return nil
	}
	if err := os.MkdirAll(r.cfg.CSVDir, 0o755); err != nil {
		return fmt.Errorf("experiments: csv dir: %w", err)
	}
	f, err := os.Create(filepath.Join(r.cfg.CSVDir, name))
	if err != nil {
		return fmt.Errorf("experiments: create csv: %w", err)
	}
	defer f.Close()
	return write(f)
}

// saveArtifact persists a PNG when ArtifactsDir is configured.
func (r *Runner) saveArtifact(name string, img *imgcore.Image) error {
	if r.cfg.ArtifactsDir == "" {
		return nil
	}
	return img.SavePNG(filepath.Join(r.cfg.ArtifactsDir, name))
}

// calibrateScorer white-box calibrates one scorer on the training corpus.
func (r *Runner) calibrateScorer(ctx context.Context, s detect.Scorer) (*detect.WhiteBoxResult, []float64, []float64, error) {
	train, err := r.Train(ctx)
	if err != nil {
		return nil, nil, nil, err
	}
	benign, attacks, err := eval.ScorePair(ctx, s, train)
	if err != nil {
		return nil, nil, nil, err
	}
	wb, err := detect.CalibrateWhiteBox(benign, attacks)
	if err != nil {
		return nil, nil, nil, err
	}
	return wb, benign, attacks, nil
}

// All returns every experiment in execution order.
func All() []Experiment {
	exps := []Experiment{
		{ID: "T1", Title: "Table 1 — CNN model input sizes", run: (*Runner).runT1},
		{ID: "T2", Title: "Table 2 — scaling detection, white-box", run: (*Runner).runT2},
		{ID: "T3", Title: "Table 3 — scaling detection, black-box percentiles", run: (*Runner).runT3},
		{ID: "T4", Title: "Table 4 — filtering detection, white-box", run: (*Runner).runT4},
		{ID: "T5", Title: "Table 5 — filtering detection, black-box percentiles", run: (*Runner).runT5},
		{ID: "T6", Title: "Table 6 — steganalysis detection (CSP)", run: (*Runner).runT6},
		{ID: "T7", Title: "Table 7 — run-time overhead per method", run: (*Runner).runT7},
		{ID: "T8", Title: "Table 8 — Decamouflage ensemble, white-box & black-box", run: (*Runner).runT8},
		{ID: "T9", Title: "Table 9 — escaped attacks lose efficacy (oracle)", run: (*Runner).runT9},
		{ID: "F1", Title: "Figures 1/2 — attack example end to end", run: (*Runner).runF1},
		{ID: "F3", Title: "Figure 3 — scaling-detection intuition", run: (*Runner).runF3},
		{ID: "F4", Title: "Figures 4/5 — min/median/max filters reveal the target", run: (*Runner).runF4},
		{ID: "F6", Title: "Figures 6/7 — centered spectrum points", run: (*Runner).runF6},
		{ID: "F8", Title: "Figure 8 — white-box threshold selection curve", run: (*Runner).runF8},
		{ID: "F9", Title: "Figure 9 — scaling MSE/SSIM distributions (white-box)", run: (*Runner).runF9},
		{ID: "F10", Title: "Figure 10 — scaling benign distributions + percentiles (black-box)", run: (*Runner).runF10},
		{ID: "F11", Title: "Figure 11 — filtering MSE/SSIM distributions (white-box)", run: (*Runner).runF11},
		{ID: "F12", Title: "Figure 12 — filtering benign distributions + percentiles (black-box)", run: (*Runner).runF12},
		{ID: "F13", Title: "Figure 13 — CSP distributions", run: (*Runner).runF13},
		{ID: "F14", Title: "Figure 14 — PSNR overlap, scaling method (Appendix A)", run: (*Runner).runF14},
		{ID: "F15", Title: "Figure 15 — PSNR overlap, filtering method (Appendix A)", run: (*Runner).runF15},
		{ID: "X1", Title: "Extension — cross-kernel attack/defense matrix", run: (*Runner).runX1},
		{ID: "X2", Title: "Extension — attack ε sweep vs detectability", run: (*Runner).runX2},
		{ID: "X3", Title: "Extension — CSP parameter sensitivity", run: (*Runner).runX3},
		{ID: "X4", Title: "Extension — prevention baselines (Quiring et al.)", run: (*Runner).runX4},
		{ID: "X5", Title: "Extension — backdoor poisoning audit", run: (*Runner).runX5},
		{ID: "X6", Title: "Extension — color-histogram metric debunk (Sec. III-A)", run: (*Runner).runX6},
		{ID: "X7", Title: "Extension — ROC AUC per score metric", run: (*Runner).runX7},
		{ID: "X8", Title: "Extension — JPEG recompression robustness", run: (*Runner).runX8},
		{ID: "X9", Title: "Extension — scale-ratio sweep + target-size forensics", run: (*Runner).runX9},
		{ID: "X10", Title: "Extension — threshold stability across seeds", run: (*Runner).runX10},
	}
	return exps
}

// IDs returns all experiment IDs in order.
func IDs() []string {
	all := All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	return ids
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Run executes the experiments with the given IDs (all when empty),
// in registry order, stopping at the first error.
func (r *Runner) Run(ctx context.Context, ids ...string) error {
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		if _, ok := ByID(id); !ok {
			known := IDs()
			sort.Strings(known)
			return fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, known)
		}
		want[id] = true
	}
	for _, e := range All() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		r.printf("== %s: %s ==\n", e.ID, e.Title)
		// Each experiment is one observed stage: wall time lands in
		// experiments.<ID>.seconds and, under a traced context, a span.
		ectx, st := obs.StartStage(ctx, "experiments."+e.ID, obs.H("experiments."+e.ID+".seconds"))
		err := e.run(r, ectx)
		st.End()
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", e.ID, err)
		}
	}
	return nil
}
