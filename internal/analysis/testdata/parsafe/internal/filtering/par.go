// Fixture: write discipline inside parallel closures. Chunk-indexed writes
// and chunk-owned aliases stay silent; cross-chunk element writes and
// captured-scalar accumulation are flagged.
package filtering

import (
	"context"

	"parsafe/internal/parallel"
)

// Sum is the seeded race: every chunk folds into out[0].
func Sum(ctx context.Context, in, out []float64) error {
	return parallel.For(ctx, len(in), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			out[0] += in[i]
		}
		return nil
	})
}

// Scale writes only indices derived from the chunk bounds: silent.
func Scale(ctx context.Context, out []float64, k float64) error {
	return parallel.For(ctx, len(out), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			out[i] *= k
		}
		return nil
	})
}

// Total accumulates into a captured scalar across chunks.
func Total(ctx context.Context, in []float64) (float64, error) {
	var total float64
	err := parallel.For(ctx, len(in), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			total += in[i]
		}
		return nil
	})
	return total, err
}

// Bands writes through a local sliced from the captured base at derived
// bounds — a chunk-owned alias, disjoint by construction: silent.
func Bands(ctx context.Context, out []float64) error {
	return parallel.For(ctx, len(out), func(lo, hi int) error {
		band := out[lo:hi]
		for i := range band {
			band[i] = 1
		}
		return nil
	})
}

// Tasks exercises parallel.Do: per-task loop indices and constant indices
// are fine (each task runs exactly once); a captured-scalar counter races.
func Tasks(ctx context.Context, out []float64) error {
	var n int
	tasks := make([]func() error, 0, len(out)+2)
	for i := range out {
		tasks = append(tasks, func() error {
			out[i] = float64(i)
			return nil
		})
	}
	tasks = append(tasks, func() error {
		out[0] = out[0] + 1
		return nil
	})
	tasks = append(tasks, func() error {
		n++
		return nil
	})
	if err := parallel.Do(ctx, tasks); err != nil {
		return err
	}
	_ = n
	return nil
}
