package detect

// BenchmarkEnsembleLegacy / BenchmarkEnsemblePipeline gate the stage-DAG
// pipeline's reason to exist: the fused path must beat the per-scorer
// path on both time and allocations for the full method×metric matrix.
// cmd/benchguard compares the pair's committed medians in CI.

import (
	"context"
	"testing"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/scaling"
	"decamouflage/internal/steg"
)

const (
	benchSrcW, benchSrcH = 128, 128
	benchDstW, benchDstH = 32, 32
)

// benchEnsemble is the full method×metric matrix over a Lanczos scaler —
// the kernel CNN pre-processing pipelines actually use, and the one whose
// round trip the attack literature targets.
func benchEnsemble(b *testing.B) *Ensemble {
	b.Helper()
	scaler, err := scaling.NewScaler(benchSrcW, benchSrcH, benchDstW, benchDstH,
		scaling.Options{Algorithm: scaling.Lanczos4})
	if err != nil {
		b.Fatal(err)
	}
	var ds []*Detector
	for _, m := range []Metric{MSE, SSIM, PSNR} {
		ss, err := NewScalingScorer(scaler, m)
		if err != nil {
			b.Fatal(err)
		}
		sd, err := NewDetector(ss, matrixThreshold(m))
		if err != nil {
			b.Fatal(err)
		}
		fs, err := NewFilteringScorer(2, m)
		if err != nil {
			b.Fatal(err)
		}
		fd, err := NewDetector(fs, matrixThreshold(m))
		if err != nil {
			b.Fatal(err)
		}
		ds = append(ds, sd, fd)
	}
	gd, err := NewDetector(NewStegScorer(steg.Options{}), DefaultCSPThreshold())
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEnsemble(append(ds, gd)...)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkEnsembleLegacy measures the pre-pipeline path: every scorer
// recomputes its own substrates (gray plane, round trip, min filter,
// spectrum) from the decoded tensor.
func BenchmarkEnsembleLegacy(b *testing.B) {
	e := benchEnsemble(b)
	img := corpusImage(b, 2026, 0, benchSrcW, benchSrcH)
	ctx := context.Background()
	if _, err := e.DetectLegacy(ctx, img); err != nil { // warm coeff/plan caches
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.DetectLegacy(ctx, img); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnsemblePipeline measures the fused stage-DAG path: shared
// substrates are memoized per image and buffers are pooled.
func BenchmarkEnsemblePipeline(b *testing.B) {
	e := benchEnsemble(b)
	img := corpusImage(b, 2026, 0, benchSrcW, benchSrcH)
	ctx := context.Background()
	if _, err := e.Detect(ctx, img); err != nil { // warm coeff/plan/scaler caches
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Detect(ctx, img); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnsembleU8 measures the quantized pipeline: the bit-exact u8
// routing (LUT gray, integer min filter) plus the opt-in Q1.15
// fixed-point downscale, whose ~3× win over the float downscale gives
// the quantized path a small whole-ensemble edge. The CI guard allows
// +5% over BenchmarkEnsemblePipeline so shared-runner noise cannot
// flake the pair; the committed snapshot records the actual medians.
func BenchmarkEnsembleU8(b *testing.B) {
	e := benchEnsemble(b)
	e.SetQuantized(true)
	img := corpusImage(b, 2026, 0, benchSrcW, benchSrcH)
	ctx := context.Background()
	if _, err := e.Detect(ctx, img); err != nil { // warm coeff/plan/scaler caches
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Detect(ctx, img); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnsemblePipelineBatch measures the fused DetectBatch over a
// same-geometry batch, where scaler and FFT plan lookups amortise.
func BenchmarkEnsemblePipelineBatch(b *testing.B) {
	const batch = 8
	e := benchEnsemble(b)
	imgs := make([]*imgcore.Image, batch)
	for i := range imgs {
		imgs[i] = corpusImage(b, 2026, i, benchSrcW, benchSrcH)
	}
	ctx := context.Background()
	if _, err := e.DetectBatch(ctx, imgs[:1]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.DetectBatch(ctx, imgs); err != nil {
			b.Fatal(err)
		}
	}
}
