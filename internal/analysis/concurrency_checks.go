package analysis

import (
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// ---- shared machinery for the concurrency-protocol checks ---------------

// nonLocal filters a held/identity list down to the module-visible mutex
// IDs ("pkg.Type.field" / "pkg.var"); locals cannot participate in
// cross-function protocol.
func nonLocal(ids []string) []string {
	var out []string
	for _, id := range ids {
		if id != "" && !strings.HasPrefix(id, "local:") {
			out = append(out, id)
		}
	}
	return out
}

// shortMutex trims the module prefix off a mutex/channel identity for
// messages, mirroring shortID.
func shortMutex(id string) string { return shortID(id) }

// mutexMatches reports whether a //declint:locks-after operand names the
// mutex identity, by the same suffix convention as package matching.
func mutexMatches(id, pattern string) bool {
	return id == pattern || strings.HasSuffix(id, "/"+pattern) || strings.HasSuffix(id, "."+pattern)
}

// goAwareReach runs a BFS over the call graph starting from the given
// function IDs, never following go-statement edges (work on a spawned
// goroutine does not run under the caller's locks or deadline). It returns
// the visit order and the parent map for chain rendering.
func goAwareReach(ix *Index, starts []string) ([]string, map[string]string) {
	seen := map[string]bool{}
	parent := map[string]string{}
	var order, queue []string
	for _, s := range starts {
		if !seen[s] {
			seen[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		order = append(order, cur)
		fx := ix.Funcs[cur]
		if fx == nil {
			continue
		}
		for _, c := range fx.Calls {
			if c.Go {
				continue
			}
			for _, next := range ix.expand(c.Callee) {
				if !seen[next] {
					seen[next] = true
					parent[next] = cur
					queue = append(queue, next)
				}
			}
		}
	}
	return order, parent
}

// renderChain renders start -> ... -> end using a BFS parent map.
func renderChain(parent map[string]string, start, end string) string {
	chain := []string{shortID(end)}
	for cur := end; cur != start; {
		p, ok := parent[cur]
		if !ok {
			break
		}
		chain = append([]string{shortID(p)}, chain...)
		cur = p
	}
	return strings.Join(chain, " -> ")
}

// lockBlockingCall classifies a call-edge key as a blocking operation for
// lock-hold purposes: parallel fan-out, sleeps, process waits, network and
// stream I/O. Returns a human label or "".
func lockBlockingCall(callee string, cfg Config) string {
	switch callee {
	case "iface:io.Writer.Write", "iface:io.Reader.Read":
		return "io." + callee[strings.LastIndex(callee, ".")+1:] + " interface I/O"
	case "iface:net.Listener.Accept", "iface:net.Conn.Read", "iface:net.Conn.Write":
		return strings.TrimPrefix(callee, "iface:")
	}
	id, ok := strings.CutPrefix(callee, "fn:")
	if !ok {
		return ""
	}
	switch id {
	case "time.Sleep", "io.Copy", "io.CopyN", "io.ReadAll", "net.Dial", "net.Listen",
		"encoding/json.(Encoder).Encode", "encoding/json.(Decoder).Decode":
		return id
	}
	if strings.HasPrefix(id, "fmt.Fprint") {
		return id
	}
	if strings.HasPrefix(id, "os/exec.(Cmd).") {
		switch id[len("os/exec.(Cmd)."):] {
		case "Run", "Wait", "Output", "CombinedOutput":
			return id
		}
	}
	if cfg.ParallelPkg != "" {
		for _, fn := range []string{".For", ".Do"} {
			p := cfg.ParallelPkg + fn
			if id == p || strings.HasSuffix(id, "/"+p) {
				return shortID(id) + " fan-out"
			}
		}
	}
	return ""
}

// deadlineBlockingCall is the narrower set the deadline check enforces on
// ctx-less exported entry points: operations that can block indefinitely on
// the outside world.
func deadlineBlockingCall(callee string) string {
	switch callee {
	case "iface:net.Listener.Accept", "iface:net.Conn.Read", "iface:net.Conn.Write":
		return strings.TrimPrefix(callee, "iface:")
	}
	id, ok := strings.CutPrefix(callee, "fn:")
	if !ok {
		return ""
	}
	switch id {
	case "time.Sleep", "net.Dial":
		return id
	}
	if strings.HasPrefix(id, "os/exec.(Cmd).") {
		switch id[len("os/exec.(Cmd)."):] {
		case "Run", "Wait", "Output", "CombinedOutput":
			return id
		}
	}
	return ""
}

// blockingChanOp returns the first channel operation in fx that can block
// unboundedly: a send or receive that is neither ctx/timer-guarded nor a
// join on a completion channel.
func blockingChanOp(fx *FuncEffects) *ChanOp {
	for i := range fx.ChanOps {
		op := &fx.ChanOps[i]
		if op.Op == "close" || op.CtxGuarded || op.JoinGuarded || op.Chan == "ctx" {
			continue
		}
		if strings.HasPrefix(op.Chan, "time.") {
			continue
		}
		if op.Op == "recv" && op.Select {
			continue // a select over several live channels is a scheduling point
		}
		if op.Op == "recv" || op.Op == "send" {
			return op
		}
	}
	return nil
}

// ---- lockorder ----------------------------------------------------------

// checkLockOrder builds the whole-module lock-order graph and enforces the
// locking protocol: no double-lock of one mutex along a call chain, no
// cycles between mutexes, no blocking operation (channel op, parallel
// fan-out, I/O) while holding a lock, and intra-function pairing (every
// path releases what it locks, nothing unlocks what it never locked).
// Cross-function nested acquires — invisible at either call site alone —
// must be declared where the inner lock lives with
// //declint:locks-after <outer>, and every declaration must be backed by a
// real inbound edge.
func checkLockOrder(pkgs []*Package, cfg Config, ix *Index) []Finding {
	var out []Finding
	seen := map[string]bool{}
	report := func(f Finding) {
		key := posKey(f.Pos) + "|" + f.Msg
		if !seen[key] {
			seen[key] = true
			out = append(out, f)
		}
	}

	type edgeInfo struct {
		pos   Finding // carrier finding position for cycle reports
		intra bool
	}
	edges := map[string]map[string]*edgeInfo{}
	addEdge := func(outer, inner string, pos Finding, intra bool) {
		m := edges[outer]
		if m == nil {
			m = map[string]*edgeInfo{}
			edges[outer] = m
		}
		if m[inner] == nil {
			m[inner] = &edgeInfo{pos: pos, intra: intra}
		}
	}
	// usedLocksAfter[fnID][pattern] marks declarations backed by a real
	// inbound held-edge.
	usedLocksAfter := map[string]map[string]bool{}

	for _, id := range ix.IDs() {
		fx := ix.Funcs[id]
		// Intra-function protocol bugs from the path walker (the
		// send-after-close shape belongs to chandisc).
		for _, b := range fx.LockBugs {
			if strings.HasPrefix(b.Kind, "send on ") {
				continue
			}
			report(Finding{Check: "lockorder", Pos: b.Pos, Msg: shortMsgIDs(b.Kind)})
		}
		for _, e := range fx.ConcDirectiveErrs {
			if strings.Contains(e.Kind, locksAfterMarker) {
				report(Finding{Check: "lockorder", Pos: e.Pos, Msg: e.Kind})
			}
		}
		// Intra-function nested acquires become graph edges directly; they
		// are visible in one screenful, so they need no declaration.
		for _, e := range fx.LockEdges {
			if len(nonLocal([]string{e.Outer})) == 0 || len(nonLocal([]string{e.Inner})) == 0 {
				continue
			}
			addEdge(e.Outer, e.Inner, Finding{Pos: e.Pos}, true)
		}
		// Channel operations under a lock block every other critical
		// section behind a scheduler decision.
		for _, op := range fx.ChanOps {
			if held := nonLocal(op.Held); len(held) > 0 && op.Op != "close" {
				report(Finding{Check: "lockorder", Pos: op.Pos,
					Msg: "channel " + op.Op + " while holding " + shortMutex(held[0]) +
						"; move the operation outside the critical section"})
			}
		}
		// Calls made with locks held: direct blocking callees, then the
		// go-aware closure of the callee for reacquires, nested acquires,
		// and transitively reachable blocking work.
		for _, cs := range fx.Calls {
			held := nonLocal(cs.Held)
			if len(held) == 0 || cs.Go {
				continue
			}
			if label := lockBlockingCall(cs.Callee, cfg); label != "" {
				report(Finding{Check: "lockorder", Pos: cs.Pos,
					Msg: "blocking call " + label + " while holding " + shortMutex(held[0]) +
						"; release the lock first (copy state out, then block)"})
				continue
			}
			targets := ix.expand(cs.Callee)
			if len(targets) == 0 {
				continue
			}
			order, parent := goAwareReach(ix, targets)
			for _, gid := range order {
				g := ix.Funcs[gid]
				if g == nil {
					continue
				}
				for _, lk := range g.Locks {
					if strings.HasPrefix(lk.Mutex, "local:") {
						continue
					}
					reacquired := false
					for _, h := range held {
						if h == lk.Mutex {
							report(Finding{Check: "lockorder", Pos: cs.Pos,
								Msg: "call chain " + shortID(id) + " -> " + renderChain(parent, targets[0], gid) +
									" reacquires " + shortMutex(h) + " already held here: self-deadlock"})
							reacquired = true
							break
						}
					}
					if reacquired {
						continue
					}
					for _, h := range held {
						declared := false
						for _, pat := range g.LocksAfter {
							if mutexMatches(h, pat) {
								declared = true
								if usedLocksAfter[gid] == nil {
									usedLocksAfter[gid] = map[string]bool{}
								}
								usedLocksAfter[gid][pat] = true
							}
						}
						addEdge(h, lk.Mutex, Finding{Pos: cs.Pos}, false)
						if !declared {
							report(Finding{Check: "lockorder", Pos: cs.Pos,
								Msg: "undeclared lock-order edge " + shortMutex(h) + " -> " + shortMutex(lk.Mutex) +
									" (via " + renderChain(parent, targets[0], gid) + "); declare it with " +
									locksAfterMarker + " " + shortMutex(h) + " on " + shortID(gid) +
									" or release before the call"})
						}
					}
				}
				if gid == id {
					continue // self-recursion: sites already reported directly
				}
				if op := blockingChanOp(g); op != nil {
					report(Finding{Check: "lockorder", Pos: cs.Pos,
						Msg: "call reaches a blocking channel " + op.Op + " in " +
							renderChain(parent, targets[0], gid) + " while holding " +
							shortMutex(held[0]) + "; release the lock first"})
				}
				for _, inner := range g.Calls {
					if inner.Go {
						continue
					}
					if label := lockBlockingCall(inner.Callee, cfg); label != "" {
						report(Finding{Check: "lockorder", Pos: cs.Pos,
							Msg: "call reaches blocking " + label + " in " +
								renderChain(parent, targets[0], gid) + " while holding " +
								shortMutex(held[0]) + "; release the lock first"})
						break
					}
				}
			}
		}
	}

	// Unbacked locks-after declarations: a claim with no inbound edge is
	// documentation drift, exactly like an unbacked ownership directive.
	for _, id := range ix.IDs() {
		fx := ix.Funcs[id]
		for _, pat := range fx.LocksAfter {
			if !usedLocksAfter[id][pat] {
				report(Finding{Check: "lockorder", Pos: fx.Pos,
					Msg: locksAfterMarker + " " + pat + " on " + shortID(id) +
						" is unbacked: no caller holds " + pat + " into it"})
			}
		}
	}

	// Cycle detection over the lock-order graph.
	var nodes []string
	for n := range edges {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var stack []string
	cycleSeen := map[string]bool{}
	var dfs func(n string)
	dfs = func(n string) {
		color[n] = grey
		stack = append(stack, n)
		var succ []string
		for m := range edges[n] {
			succ = append(succ, m)
		}
		sort.Strings(succ)
		for _, m := range succ {
			switch color[m] {
			case white:
				dfs(m)
			case grey:
				// Found a cycle: stack from m to n, closed by n -> m.
				i := len(stack) - 1
				for i >= 0 && stack[i] != m {
					i--
				}
				cyc := append(append([]string{}, stack[i:]...), m)
				canon := canonicalCycle(cyc)
				if !cycleSeen[canon] {
					cycleSeen[canon] = true
					short := make([]string, len(cyc))
					for j, c := range cyc {
						short[j] = shortMutex(c)
					}
					report(Finding{Check: "lockorder", Pos: edges[n][m].pos.Pos,
						Msg: "lock-order cycle: " + strings.Join(short, " -> ") +
							"; establish a single acquisition order"})
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
	}
	for _, n := range nodes {
		if color[n] == white {
			dfs(n)
		}
	}
	return out
}

// canonicalCycle keys a cycle independent of its starting rotation.
func canonicalCycle(cyc []string) string {
	body := cyc[:len(cyc)-1] // last repeats first
	min := 0
	for i := range body {
		if body[i] < body[min] {
			min = i
		}
	}
	rot := append(append([]string{}, body[min:]...), body[:min]...)
	return strings.Join(rot, "|")
}

// shortMsgIDs rewrites full-path identities embedded in walker bug strings
// to their short display form.
func shortMsgIDs(msg string) string {
	fields := strings.Fields(msg)
	for i, f := range fields {
		if strings.Contains(f, "/") && strings.Contains(f, ".") {
			fields[i] = shortMutex(f)
		}
	}
	return strings.Join(fields, " ")
}

// ---- golife -------------------------------------------------------------

// checkGoLife requires every go statement to have a provable termination
// signal and a reachable counterpart that fires it: a fork-join WaitGroup,
// ctx.Done(), or a stop channel somebody in the module closes — and, once
// stopped, a join (receive on a completion channel the goroutine closes)
// so Stop/Close returning means the goroutine is actually gone. The
// function owning the go statement must carry //declint:spawns <reason>,
// and the claim must be backed by a real go statement.
func checkGoLife(pkgs []*Package, cfg Config, ix *Index) []Finding {
	var out []Finding

	// Module-wide channel facts: who closes what, who receives what, and
	// which external receiver types get lifecycle calls.
	closers := map[string]bool{}   // chan ID -> closed somewhere
	receivers := map[string]bool{} // chan ID -> received somewhere
	lifecycle := map[string]bool{} // "fn:<pkg>.(Type)." prefix with Close/Stop/Shutdown/Wait
	for _, id := range ix.IDs() {
		fx := ix.Funcs[id]
		for _, op := range fx.ChanOps {
			switch op.Op {
			case "close":
				closers[op.Chan] = true
			case "recv":
				receivers[op.Chan] = true
			}
		}
		for _, cs := range fx.Calls {
			if i := strings.LastIndex(cs.Callee, ")."); i >= 0 {
				switch cs.Callee[i+2:] {
				case "Close", "Stop", "Shutdown", "Wait":
					lifecycle[cs.Callee[:i+2]] = true
				}
			}
		}
	}
	// Per-function locals: close/recv visible inside the same function.
	localCloses := func(fx *FuncEffects, ch string) bool {
		for _, op := range fx.ChanOps {
			if op.Op == "close" && op.Chan == ch {
				return true
			}
		}
		return false
	}
	localRecvs := func(fx *FuncEffects, ch string) bool {
		for _, op := range fx.ChanOps {
			if op.Op == "recv" && op.Chan == ch {
				return true
			}
		}
		return false
	}

	// verifyChanSignal checks the close/join protocol for one stop channel.
	verify := func(fx *FuncEffects, sp SpawnSite, stopCh string, closes []string) []Finding {
		var fs []Finding
		isLocal := strings.HasPrefix(stopCh, "local:")
		closed := closers[stopCh]
		if isLocal {
			closed = localCloses(fx, stopCh)
		}
		if !closed {
			fs = append(fs, Finding{Check: "golife", Pos: sp.Pos,
				Msg: "goroutine waits on " + shortMutex(stopCh) +
					" but nothing in the module ever closes it: unreachable shutdown"})
			return fs
		}
		joined := false
		for _, done := range closes {
			if strings.HasPrefix(done, "local:") {
				if localRecvs(fx, done) {
					joined = true
				}
			} else if receivers[done] {
				joined = true
			}
		}
		if !joined {
			fs = append(fs, Finding{Check: "golife", Pos: sp.Pos,
				Msg: "stop channel " + shortMutex(stopCh) + " is closed but the goroutine is " +
					"never joined: close a done channel in the goroutine and receive it in Stop/Close"})
		}
		return fs
	}

	for _, id := range ix.IDs() {
		fx := ix.Funcs[id]
		for _, e := range fx.ConcDirectiveErrs {
			if strings.Contains(e.Kind, spawnsMarker) {
				out = append(out, Finding{Check: "golife", Pos: e.Pos, Msg: e.Kind})
			}
		}
		if fx.SpawnsReason != "" && len(fx.Spawns) == 0 {
			out = append(out, Finding{Check: "golife", Pos: fx.Pos,
				Msg: spawnsMarker + " on " + shortID(id) + " is unbacked: the function has no go statement"})
		}
		if len(fx.Spawns) > 0 && fx.SpawnsReason == "" {
			out = append(out, Finding{Check: "golife", Pos: fx.Spawns[0].Pos,
				Msg: shortID(id) + " spawns a goroutine without a " + spawnsMarker +
					" directive documenting the topology"})
		}
		for _, sp := range fx.Spawns {
			if sp.Callee != "" {
				gid, _ := strings.CutPrefix(sp.Callee, "fn:")
				g := ix.Funcs[gid]
				if g == nil {
					// External callee: sanctioned only when the module holds
					// the other end of its lifecycle (http.Server.Serve is
					// fine iff something calls http.Server.Close/Shutdown).
					if i := strings.LastIndex(sp.Callee, ")."); i >= 0 && lifecycle[sp.Callee[:i+2]] {
						continue
					}
					out = append(out, Finding{Check: "golife", Pos: sp.Pos,
						Msg: "goroutine runs external " + shortMutex(strings.TrimPrefix(sp.Callee, "fn:")) +
							" with no module call to its Close/Stop/Shutdown counterpart"})
					continue
				}
				// Derive the spawned function's termination signals from its
				// own summary.
				satisfied := false
				var chanSignals []string
				for _, op := range g.ChanOps {
					if op.Op != "recv" {
						continue
					}
					if op.Chan == "ctx" {
						satisfied = true
						break
					}
					if op.Chan != "" && !strings.HasPrefix(op.Chan, "time.") && !strings.HasPrefix(op.Chan, "local:") {
						chanSignals = append(chanSignals, op.Chan)
					}
				}
				if satisfied {
					continue
				}
				if len(chanSignals) > 0 {
					var gCloses []string
					for _, op := range g.ChanOps {
						if op.Op == "close" {
							gCloses = append(gCloses, op.Chan)
						}
					}
					out = append(out, verify(fx, sp, chanSignals[0], gCloses)...)
					continue
				}
				if g.InfLoop {
					out = append(out, Finding{Check: "golife", Pos: sp.Pos,
						Msg: "goroutine " + shortID(gid) + " loops forever with no termination signal " +
							"(ctx.Done, stop channel, or WaitGroup): leaks on every path"})
				}
				continue
			}
			// Closure spawn: signals were computed in place.
			satisfied := false
			for _, s := range sp.Signals {
				if s == "join" || s == "ctx" || s == "bounded" {
					satisfied = true
					break
				}
			}
			if satisfied {
				continue
			}
			var stopCh string
			for _, s := range sp.Signals {
				if ch, ok := strings.CutPrefix(s, "chan:"); ok {
					stopCh = ch
					break
				}
			}
			if stopCh == "" {
				out = append(out, Finding{Check: "golife", Pos: sp.Pos,
					Msg: "goroutine leaks on every path: no termination signal " +
						"(ctx.Done, stop channel, or WaitGroup join)"})
				continue
			}
			out = append(out, verify(fx, sp, stopCh, sp.Closes)...)
		}
	}
	return out
}

// ---- chandisc -----------------------------------------------------------

// checkChanDisc enforces channel discipline: sends in context-receiving
// functions must be select+ctx.Done()-guarded (a naked send in a cancelable
// call path outlives the caller), no time.After inside loops (one leaked
// timer per iteration), no send after a close on the same path, and
// buffered capacities must be named constants — a bare literal is an
// undocumented backpressure policy.
func checkChanDisc(pkgs []*Package, cfg Config, ix *Index) []Finding {
	var out []Finding
	for _, id := range ix.IDs() {
		fx := ix.Funcs[id]
		for _, op := range fx.ChanOps {
			if op.Op != "send" || !fx.HasCtx || op.CtxGuarded {
				continue
			}
			out = append(out, Finding{Check: "chandisc", Pos: op.Pos,
				Msg: shortID(id) + " receives a ctx but sends" + chanName(op.Chan) +
					" without a ctx.Done() select guard; the send can outlive cancellation"})
		}
		for _, s := range fx.TimerLoops {
			out = append(out, Finding{Check: "chandisc", Pos: s.Pos,
				Msg: "time.After inside a loop leaks one timer per iteration; " +
					"hoist a time.Timer/Ticker out of the loop"})
		}
		for _, b := range fx.LockBugs {
			if strings.HasPrefix(b.Kind, "send on ") {
				out = append(out, Finding{Check: "chandisc", Pos: b.Pos,
					Msg: shortMsgIDs(b.Kind) + ": guaranteed panic if reached"})
			}
		}
		for _, s := range fx.MagicBuffers {
			out = append(out, Finding{Check: "chandisc", Pos: s.Pos,
				Msg: s.Kind + " is a magic literal; name the capacity as a constant " +
					"or derive it from config"})
		}
	}
	return out
}

func chanName(ch string) string {
	if ch == "" || strings.HasPrefix(ch, "local:") {
		return ""
	}
	return " on " + shortMutex(ch)
}

// ---- deadline -----------------------------------------------------------

// checkDeadline requires exported ctx-less entry points of the serving
// packages (Config.DeadlinePkgs) to be deadline-safe: no blocking stdlib
// call (net, os/exec, time.Sleep) and no raw channel receive reachable
// without a ctx/timeout guard. Go-statement edges are skipped — blocking on
// a spawned goroutine is golife's concern, not the caller's latency — and
// join-guarded receives (close(stop) then <-done) are the sanctioned
// shutdown idiom.
func checkDeadline(pkgs []*Package, cfg Config, ix *Index) []Finding {
	var out []Finding
	for _, id := range ix.IDs() {
		fx := ix.Funcs[id]
		if !fx.Exported || fx.HasCtx || !pathMatchesAny(fx.PkgPath, cfg.DeadlinePkgs) {
			continue
		}
		order, parent := goAwareReach(ix, []string{id})
		for _, gid := range order {
			g := ix.Funcs[gid]
			if g == nil {
				continue
			}
			var msg string
			var site Site
			if op := blockingChanOp(g); op != nil && op.Op == "recv" && !op.Select {
				msg = "raw channel receive"
				site = Site{Pos: op.Pos}
			} else {
				for _, cs := range g.Calls {
					if cs.Go {
						continue
					}
					if label := deadlineBlockingCall(cs.Callee); label != "" {
						msg = "blocking " + label
						site = Site{Pos: cs.Pos}
						break
					}
				}
			}
			if msg == "" {
				continue
			}
			via := ""
			if gid != id {
				via = " (via " + renderChain(parent, id, gid) + ")"
			}
			out = append(out, Finding{Check: "deadline", Pos: fx.Pos,
				Msg: "exported " + shortID(id) + " takes no ctx but reaches " + msg +
					" at " + filepath.Base(site.Pos.Filename) + ":" + strconv.Itoa(site.Pos.Line) +
					via + "; thread a context or deadline through it"})
			break
		}
	}
	return out
}
