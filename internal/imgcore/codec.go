package imgcore

import (
	"bytes"
	"fmt"
	"image"
	"image/color"
	"image/jpeg"
	"image/png"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// FromImage converts any stdlib image.Image into a 3-channel float image.
// Alpha is discarded (composited over black is not applied; the raw RGB
// samples are used, matching how vision pipelines ingest images).
func FromImage(src image.Image) *Image {
	b := src.Bounds()
	w, h := b.Dx(), b.Dy()
	out := &Image{W: w, H: h, C: 3, Pix: make([]float64, w*h*3)}
	i := 0
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			r, g, bb, _ := src.At(x, y).RGBA()
			out.Pix[i] = float64(r >> 8)
			out.Pix[i+1] = float64(g >> 8)
			out.Pix[i+2] = float64(bb >> 8)
			i += 3
		}
	}
	return out
}

// FromGrayImage converts a stdlib image into a single-channel luminance
// image using BT.601 weights.
func FromGrayImage(src image.Image) *Image {
	return FromImage(src).Gray()
}

// ToNRGBA converts the image into an 8-bit stdlib NRGBA image, rounding and
// clamping samples. Grayscale images are replicated across RGB.
func (m *Image) ToNRGBA() *image.NRGBA {
	out := image.NewNRGBA(image.Rect(0, 0, m.W, m.H))
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			var r, g, b float64
			if m.C == 1 {
				r = m.At(x, y, 0)
				g, b = r, r
			} else {
				r = m.At(x, y, 0)
				g = m.At(x, y, 1)
				b = m.At(x, y, 2)
			}
			out.SetNRGBA(x, y, color.NRGBA{
				R: clampByte(r), G: clampByte(g), B: clampByte(b), A: 255,
			})
		}
	}
	return out
}

// ToGray converts the image into an 8-bit stdlib grayscale image.
func (m *Image) ToGray() *image.Gray {
	g := m
	if m.C != 1 {
		g = m.Gray()
	}
	out := image.NewGray(image.Rect(0, 0, g.W, g.H))
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			out.SetGray(x, y, color.Gray{Y: clampByte(g.At(x, y, 0))})
		}
	}
	return out
}

func clampByte(v float64) uint8 {
	v = math.Round(v)
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// Decode reads a PNG or JPEG stream into a 3-channel float image.
func Decode(r io.Reader) (*Image, error) {
	src, _, err := image.Decode(r)
	if err != nil {
		return nil, fmt.Errorf("imgcore: decode: %w", err)
	}
	img := FromImage(src)
	if err := img.Validate(); err != nil {
		return nil, err
	}
	return img, nil
}

// Load reads an image file (PNG or JPEG by extension-independent sniffing).
func Load(path string) (*Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("imgcore: open %s: %w", path, err)
	}
	defer f.Close()
	img, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("imgcore: load %s: %w", path, err)
	}
	return img, nil
}

// SavePNG writes the image as a PNG file, creating parent directories as
// needed.
func (m *Image) SavePNG(path string) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("imgcore: mkdir for %s: %w", path, err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("imgcore: create %s: %w", path, err)
	}
	defer f.Close()
	if err := png.Encode(f, m.ToNRGBA()); err != nil {
		return fmt.Errorf("imgcore: encode %s: %w", path, err)
	}
	return nil
}

// SaveJPEG writes the image as a JPEG file with the given quality (1-100).
func (m *Image) SaveJPEG(path string, quality int) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("imgcore: mkdir for %s: %w", path, err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("imgcore: create %s: %w", path, err)
	}
	defer f.Close()
	if err := jpeg.Encode(f, m.ToNRGBA(), &jpeg.Options{Quality: quality}); err != nil {
		return fmt.Errorf("imgcore: encode %s: %w", path, err)
	}
	return nil
}

// JPEGRoundTrip encodes the image as JPEG at the given quality (1-100) and
// decodes it back, all in memory — the lossy channel an uploaded image
// passes through in many real pipelines.
func JPEGRoundTrip(m *Image, quality int) (*Image, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if quality < 1 || quality > 100 {
		return nil, fmt.Errorf("imgcore: jpeg quality %d outside [1,100]", quality)
	}
	var buf bytes.Buffer
	if err := jpeg.Encode(&buf, m.ToNRGBA(), &jpeg.Options{Quality: quality}); err != nil {
		return nil, fmt.Errorf("imgcore: jpeg encode: %w", err)
	}
	return Decode(&buf)
}

// LoadDir loads every PNG/JPEG image in a directory (non-recursive), sorted
// by filename. It is the bridge for running the pipeline on real datasets
// such as NeurIPS-2017 or Caltech-256 when they are available on disk.
func LoadDir(dir string, limit int) ([]*Image, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("imgcore: read dir %s: %w", dir, err)
	}
	var out []*Image
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		ext := strings.ToLower(filepath.Ext(e.Name()))
		if ext != ".png" && ext != ".jpg" && ext != ".jpeg" {
			continue
		}
		img, err := Load(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		out = append(out, img)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out, nil
}
