//go:build !noobs

package obs

// compiledOut is false in normal builds: observability is present but
// disabled until Enable is called.
const compiledOut = false
