//go:build noobs

package obs

import (
	"context"
	"io"
	"testing"
	"time"
)

// TestNoobsStubsReturnNil pins the compiled-out surface of the v2
// observability layer: every constructor returns nil, every global
// accessor returns an inactive no-op receiver, and Apply/Close still work.
func TestNoobsStubsReturnNil(t *testing.T) {
	if r := NewRecorder(16); r != nil {
		t.Fatal("NewRecorder != nil under noobs")
	}
	if s := NewTailSampler(16, 1); s != nil {
		t.Fatal("NewTailSampler != nil under noobs")
	}
	if w := StartWatchdog(WatchdogConfig{}); w != nil {
		t.Fatal("StartWatchdog != nil under noobs")
	}
	SetRecorder(NewRecorder(1))
	if Events().Active() {
		t.Fatal("Events().Active() under noobs")
	}
	SetTailSampler(NewTailSampler(1, 1))
	if Tail().Active() {
		t.Fatal("Tail().Active() under noobs")
	}
	ctx, tr := WithTrace(context.Background(), "req")
	if tr != nil {
		t.Fatal("WithTrace returned a trace under noobs")
	}
	if id := TraceID(ctx); id != "" {
		t.Fatalf("TraceID = %q under noobs", id)
	}
	if fs := FlattenSpans(tr.Root()); fs != nil {
		t.Fatal("FlattenSpans returned spans under noobs")
	}
	sess, err := Settings{EventsOut: "-", TraceKeep: 4, Watchdog: true}.Apply()
	if err != nil {
		t.Fatal(err)
	}
	if sess.Recorder() != nil || sess.Tail() != nil {
		t.Fatal("session installed components under noobs")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestNoobsEventPathAllocsNothing is the compile-out guarantee in numbers:
// the entire per-image recording path — guard, record, trace inspection,
// tail offer — must not allocate a single byte when observability is
// compiled out.
func TestNoobsEventPathAllocsNothing(t *testing.T) {
	rec := Events()
	tail := Tail()
	ctx := context.Background()
	ev := Event{Name: "detect", DurNs: int64(time.Millisecond)}
	allocs := testing.AllocsPerRun(100, func() {
		if rec.Active() {
			rec.Record(ev)
		}
		if id := TraceID(ctx); id != "" {
			panic("traced under noobs")
		}
		tail.Offer(nil, nil)
		var h *Histogram
		h.ObserveTraced(time.Millisecond, "")
	})
	if allocs != 0 {
		t.Fatalf("noobs event path allocates %v per run, want 0", allocs)
	}
	if err := rec.WriteNDJSON(io.Discard); err != nil {
		t.Fatal(err)
	}
}
