package attack

import (
	"math"
	"math/rand"
	"testing"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/metrics"
	"decamouflage/internal/scaling"
	"decamouflage/internal/testutil"
)

func smoothImage(seed int64, w, h, c int) *imgcore.Image {
	// Smooth low-frequency image: sum of a few sinusoids, benign-like.
	img := imgcore.MustNew(w, h, c)
	rng := rand.New(rand.NewSource(seed))
	type wave struct{ fx, fy, ph, amp float64 }
	waves := make([]wave, 4)
	for i := range waves {
		waves[i] = wave{
			fx: rng.Float64() * 4, fy: rng.Float64() * 4,
			ph: rng.Float64() * 2 * math.Pi, amp: 20 + rng.Float64()*25,
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			for ch := 0; ch < c; ch++ {
				v := 128.0
				for _, wv := range waves {
					v += wv.amp * math.Sin(2*math.Pi*(wv.fx*float64(x)/float64(w)+wv.fy*float64(y)/float64(h))+wv.ph+float64(ch))
				}
				if v < 0 {
					v = 0
				} else if v > 255 {
					v = 255
				}
				img.Set(x, y, ch, v)
			}
		}
	}
	return img
}

func mustScaler(t testing.TB, srcW, srcH, dstW, dstH int, alg scaling.Algorithm) *scaling.Scaler {
	t.Helper()
	s, err := scaling.NewScaler(srcW, srcH, dstW, dstH, scaling.Options{Algorithm: alg})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCraftValidation(t *testing.T) {
	s := mustScaler(t, 32, 32, 8, 8, scaling.Bilinear)
	src := smoothImage(1, 32, 32, 1)
	tgt := smoothImage(2, 8, 8, 1)

	if _, err := Craft(src, tgt, Config{}); err == nil {
		t.Error("Craft without scaler = nil error")
	}
	if _, err := Craft(src, tgt, Config{Scaler: s, Eps: -1}); err == nil {
		t.Error("Craft negative eps = nil error")
	}
	if _, err := Craft(src, tgt, Config{Scaler: s, Solver: Solver(9)}); err == nil {
		t.Error("Craft unknown solver = nil error")
	}
	if _, err := Craft(smoothImage(1, 16, 32, 1), tgt, Config{Scaler: s}); err == nil {
		t.Error("Craft wrong source size = nil error")
	}
	if _, err := Craft(src, smoothImage(2, 9, 8, 1), Config{Scaler: s}); err == nil {
		t.Error("Craft wrong target size = nil error")
	}
	if _, err := Craft(src, smoothImage(2, 8, 8, 3), Config{Scaler: s}); err == nil {
		t.Error("Craft channel mismatch = nil error")
	}
	if _, err := Craft(&imgcore.Image{}, tgt, Config{Scaler: s}); err == nil {
		t.Error("Craft empty source = nil error")
	}
	if _, err := Craft(src, &imgcore.Image{}, Config{Scaler: s}); err == nil {
		t.Error("Craft empty target = nil error")
	}
}

// The attack contract: scale(A) ≈ T within eps, and A stays close to O.
func TestCraftHitsTargetEveryAlgorithm(t *testing.T) {
	for _, alg := range []scaling.Algorithm{scaling.Nearest, scaling.Bilinear, scaling.Bicubic} {
		t.Run(alg.String(), func(t *testing.T) {
			s := mustScaler(t, 64, 64, 16, 16, alg)
			src := smoothImage(3, 64, 64, 3)
			tgt := smoothImage(4, 16, 16, 3)
			res, err := Craft(src, tgt, Config{Scaler: s, Eps: 2})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Errorf("solver did not converge (violation %v)", res.MaxViolation)
			}
			if res.MaxViolation > 2.01 {
				t.Errorf("L∞(scale(A),T) = %v, want <= 2", res.MaxViolation)
			}
			// Attack must not wreck the source: the perturbation only
			// touches the sparse pixels the kernel samples.
			if res.PerturbationMSE > 4000 {
				t.Errorf("perturbation MSE = %v, unexpectedly large", res.PerturbationMSE)
			}
			lo, hi := res.Attack.MinMax()
			if lo < 0 || hi > 255 {
				t.Errorf("attack image out of range: [%v,%v]", lo, hi)
			}
		})
	}
}

func TestCraftNearestIsExact(t *testing.T) {
	// Nearest-neighbor sampling: each constraint has a single unit weight,
	// so one sweep sets the sampled pixel to the target exactly.
	s := mustScaler(t, 32, 32, 8, 8, scaling.Nearest)
	src := smoothImage(5, 32, 32, 1)
	tgt := smoothImage(6, 8, 8, 1)
	res, err := Craft(src, tgt, Config{Scaler: s, Eps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("nearest attack did not converge")
	}
	if res.MaxViolation > 1 {
		t.Errorf("nearest L∞ = %v", res.MaxViolation)
	}
	// Only 64 of 1024 pixels should have changed.
	changed := 0
	for i := range src.Pix {
		if math.Abs(res.Attack.Pix[i]-src.Pix[i]) > 1 {
			changed++
		}
	}
	if changed > 64 {
		t.Errorf("nearest attack changed %d pixels, want <= 64", changed)
	}
}

func TestCraftVisualIndistinguishability(t *testing.T) {
	// SSIM(A, O) should stay high: the attack hides in sparse pixels.
	s := mustScaler(t, 96, 96, 16, 16, scaling.Bilinear)
	src := smoothImage(7, 96, 96, 3)
	tgt := smoothImage(8, 16, 16, 3)
	res, err := Craft(src, tgt, Config{Scaler: s, Eps: 2})
	if err != nil {
		t.Fatal(err)
	}
	ssim, err := metrics.SSIM(res.Attack, src)
	if err != nil {
		t.Fatal(err)
	}
	// Smooth synthetic covers have very low local variance, which makes
	// SSIM harsher than on natural photos; 0.5 still indicates the global
	// structure survives.
	if ssim < 0.5 {
		t.Errorf("SSIM(A,O) = %v, attack too visible", ssim)
	}
}

func TestCraftQuantizedOutputIsIntegral(t *testing.T) {
	s := mustScaler(t, 32, 32, 8, 8, scaling.Bilinear)
	res, err := Craft(smoothImage(9, 32, 32, 1), smoothImage(10, 8, 8, 1), Config{Scaler: s, Eps: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Attack.Pix {
		if !testutil.BitEqual(v, math.Trunc(v)) {
			t.Fatalf("pixel %d = %v not integral after quantization", i, v)
		}
	}
	// SkipQuantize leaves floats.
	res, err = Craft(smoothImage(9, 32, 32, 1), smoothImage(10, 8, 8, 1), Config{Scaler: s, Eps: 3, SkipQuantize: true})
	if err != nil {
		t.Fatal(err)
	}
	// Solver tolerance (0.05) is allowed on top of eps.
	if res.MaxViolation > 3.06 {
		t.Errorf("unquantized violation %v > eps+tol", res.MaxViolation)
	}
}

func TestCraftProjGradAgreesWithPOCS(t *testing.T) {
	s := mustScaler(t, 24, 24, 6, 6, scaling.Bilinear)
	src := smoothImage(11, 24, 24, 1)
	tgt := smoothImage(12, 6, 6, 1)
	pocs, err := Craft(src, tgt, Config{Scaler: s, Eps: 3})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := Craft(src, tgt, Config{Scaler: s, Eps: 3, Solver: ProjGrad, MaxSweeps: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if pocs.MaxViolation > 3.01 {
		t.Errorf("POCS violation %v", pocs.MaxViolation)
	}
	if pg.MaxViolation > 4 {
		t.Errorf("ProjGrad violation %v", pg.MaxViolation)
	}
	// Both must hit the target similarly well.
	if math.Abs(pocs.DownscaledMSE-pg.DownscaledMSE) > 10 {
		t.Errorf("solver disagreement: POCS %v vs PG %v", pocs.DownscaledMSE, pg.DownscaledMSE)
	}
}

func TestCraftAgainstAntialiasedScalerDegrades(t *testing.T) {
	// Against an antialiased (defended) scaler the kernel covers every
	// source pixel, so hiding a target requires massive perturbation: the
	// perturbation MSE must be far larger than in the undefended case.
	srcW, srcH, dstW, dstH := 64, 64, 16, 16
	src := smoothImage(13, srcW, srcH, 1)
	tgt := smoothImage(14, dstW, dstH, 1)

	plain := mustScaler(t, srcW, srcH, dstW, dstH, scaling.Bilinear)
	resPlain, err := Craft(src, tgt, Config{Scaler: plain, Eps: 2})
	if err != nil {
		t.Fatal(err)
	}
	defended, err := scaling.NewScaler(srcW, srcH, dstW, dstH, scaling.Options{Algorithm: scaling.Bilinear, Antialias: true})
	if err != nil {
		t.Fatal(err)
	}
	resDef, err := Craft(src, tgt, Config{Scaler: defended, Eps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resDef.PerturbationMSE < 2*resPlain.PerturbationMSE {
		t.Errorf("defended attack perturbation %v not much larger than undefended %v",
			resDef.PerturbationMSE, resPlain.PerturbationMSE)
	}
}

func TestSuccessOracle(t *testing.T) {
	s := mustScaler(t, 64, 64, 16, 16, scaling.Bilinear)
	src := smoothImage(15, 64, 64, 1)
	tgt := smoothImage(16, 16, 16, 1)
	res, err := Craft(src, tgt, Config{Scaler: s, Eps: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Success(res.Attack, tgt, s)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Effective {
		t.Errorf("crafted attack judged ineffective: %+v", rep)
	}
	// A benign image must NOT be an effective attack against an unrelated
	// target.
	rep, err = Success(src, tgt, s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Effective {
		t.Errorf("benign image judged effective attack: %+v", rep)
	}
	if _, err := Success(src, tgt, nil); err == nil {
		t.Error("Success(nil scaler) = nil error")
	}
	if _, err := Success(src, smoothImage(1, 9, 9, 1), s); err == nil {
		t.Error("Success with mismatched target = nil error")
	}
}

func TestCraftUpscaleGeometryFails(t *testing.T) {
	// Upscaling scalers leave no slack pixels; the attack should still run
	// (constraints are denser than variables) but typically cannot hide:
	// perturbation becomes enormous. We only require no error and a valid
	// image.
	s := mustScaler(t, 16, 16, 32, 32, scaling.Bilinear)
	src := smoothImage(17, 16, 16, 1)
	tgt := smoothImage(18, 32, 32, 1)
	res, err := Craft(src, tgt, Config{Scaler: s, Eps: 8, MaxSweeps: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attack == nil || res.Attack.HasNaN() {
		t.Error("upscale attack produced invalid image")
	}
}

func BenchmarkCraftBilinear256to64(b *testing.B) {
	s, err := scaling.NewScaler(256, 256, 64, 64, scaling.Options{Algorithm: scaling.Bilinear})
	if err != nil {
		b.Fatal(err)
	}
	src := smoothImage(1, 256, 256, 3)
	tgt := smoothImage(2, 64, 64, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Craft(src, tgt, Config{Scaler: s, Eps: 2}); err != nil {
			b.Fatal(err)
		}
	}
}
