// Package qpsolve solves the box-constrained quadratic feasibility problems
// at the core of the image-scaling attack:
//
//	find x minimizing ‖x − x₀‖²
//	subject to  |wᵢ·x − tᵢ| ≤ εᵢ  for every constraint i
//	and         lo ≤ x ≤ hi      elementwise.
//
// Two solvers are provided. SolvePOCS performs cyclic projections onto the
// convex constraint sets (projected Kaczmarz / POCS): each violated
// constraint is fixed by the minimum-norm update along its own weight
// vector, followed by a box clamp. Starting from x₀ and using minimum-norm
// projections, the iterate stays close to x₀, which is exactly the attack's
// objective. SolveProjGrad minimizes the penalized objective by projected
// gradient descent and is used as an independent cross-check.
package qpsolve

import (
	"errors"
	"fmt"
	"math"
)

// Constraint demands |W·x[Idx] − Target| ≤ Eps. Idx and W must have equal
// nonzero length and all indices must be in range for the problem.
type Constraint struct {
	Idx    []int
	W      []float64
	Target float64
	Eps    float64
}

// Box is an elementwise variable bound.
type Box struct {
	Lo, Hi float64
}

// Problem is a feasibility instance over N variables.
type Problem struct {
	N           int
	Constraints []Constraint
	Box         Box
}

// Validate checks structural consistency of the problem.
func (p *Problem) Validate() error {
	if p.N <= 0 {
		return fmt.Errorf("qpsolve: N must be positive, got %d", p.N)
	}
	if p.Box.Lo > p.Box.Hi {
		return fmt.Errorf("qpsolve: empty box [%v,%v]", p.Box.Lo, p.Box.Hi)
	}
	for i, c := range p.Constraints {
		if len(c.Idx) == 0 || len(c.Idx) != len(c.W) {
			return fmt.Errorf("qpsolve: constraint %d malformed (%d idx, %d w)", i, len(c.Idx), len(c.W))
		}
		if c.Eps < 0 {
			return fmt.Errorf("qpsolve: constraint %d has negative eps %v", i, c.Eps)
		}
		for _, j := range c.Idx {
			if j < 0 || j >= p.N {
				return fmt.Errorf("qpsolve: constraint %d index %d out of range [0,%d)", i, j, p.N)
			}
		}
	}
	return nil
}

// Options tunes the solvers.
type Options struct {
	// MaxSweeps bounds the number of full passes over all constraints
	// (POCS) or gradient steps (projected gradient). Default 100.
	MaxSweeps int
	// Tol is the additional violation slack accepted at convergence: the
	// solver stops once every constraint is within Eps+Tol. Default 1e-6.
	Tol float64
	// Relax is the POCS relaxation factor in (0, 2]; 1 is the exact
	// projection. Values slightly above 1 can speed convergence on
	// heavily overlapping constraints. Default 1.
	Relax float64
}

func (o Options) withDefaults() Options {
	if o.MaxSweeps == 0 {
		o.MaxSweeps = 100
	}
	//declint:ignore floateq zero is the unset-option sentinel, set only by literal omission
	if o.Tol == 0 {
		o.Tol = 1e-6
	}
	//declint:ignore floateq zero is the unset-option sentinel, set only by literal omission
	if o.Relax == 0 {
		o.Relax = 1
	}
	return o
}

func (o Options) validate() error {
	if o.MaxSweeps < 0 {
		return fmt.Errorf("qpsolve: MaxSweeps %d < 0", o.MaxSweeps)
	}
	if o.Relax < 0 || o.Relax > 2 {
		return fmt.Errorf("qpsolve: Relax %v outside (0,2]", o.Relax)
	}
	if o.Tol < 0 {
		return fmt.Errorf("qpsolve: Tol %v < 0", o.Tol)
	}
	return nil
}

// Result reports the solver outcome.
type Result struct {
	X            []float64
	Sweeps       int
	MaxViolation float64 // max over constraints of (|w·x − t| − eps), clamped at 0
	Converged    bool
}

// ErrBadStart indicates an x0 whose length does not match the problem.
var ErrBadStart = errors.New("qpsolve: x0 length does not match problem size")

// SolvePOCS runs cyclic projections onto constraints with box clamping.
func SolvePOCS(p *Problem, x0 []float64, opts Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if len(x0) != p.N {
		return nil, fmt.Errorf("%w: %d vs %d", ErrBadStart, len(x0), p.N)
	}
	x := append([]float64(nil), x0...)
	clampAll(x, p.Box)

	// Precompute squared norms of constraint weight vectors.
	norms := make([]float64, len(p.Constraints))
	for i, c := range p.Constraints {
		var n2 float64
		for _, w := range c.W {
			n2 += w * w
		}
		norms[i] = n2
	}

	res := &Result{}
	for sweep := 1; sweep <= opts.MaxSweeps; sweep++ {
		res.Sweeps = sweep
		maxViol := 0.0
		for i, c := range p.Constraints {
			//declint:ignore floateq an exactly-zero row norm marks a vacuous constraint
			if norms[i] == 0 {
				continue
			}
			var s float64
			for k, j := range c.Idx {
				s += c.W[k] * x[j]
			}
			var delta float64
			switch {
			case s > c.Target+c.Eps:
				delta = (c.Target + c.Eps) - s
			case s < c.Target-c.Eps:
				delta = (c.Target - c.Eps) - s
			default:
				continue
			}
			if v := math.Abs(delta); v > maxViol {
				maxViol = v
			}
			step := opts.Relax * delta / norms[i]
			for k, j := range c.Idx {
				nv := x[j] + step*c.W[k]
				if nv < p.Box.Lo {
					nv = p.Box.Lo
				} else if nv > p.Box.Hi {
					nv = p.Box.Hi
				}
				x[j] = nv
			}
		}
		if maxViol <= opts.Tol {
			res.Converged = true
			break
		}
	}
	res.X = x
	res.MaxViolation = maxViolation(p, x)
	if res.MaxViolation <= opts.Tol {
		res.Converged = true
	}
	return res, nil
}

// SolveProjGrad minimizes ‖x−x₀‖²/n + λ·Σ hinge(|w·x−t|−ε)² by projected
// gradient descent with a fixed step and box projection. It is slower than
// POCS but provides an independent solution path for verification.
func SolveProjGrad(p *Problem, x0 []float64, opts Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if len(x0) != p.N {
		return nil, fmt.Errorf("%w: %d vs %d", ErrBadStart, len(x0), p.N)
	}
	x := append([]float64(nil), x0...)
	clampAll(x, p.Box)

	const lambda = 50.0
	grad := make([]float64, p.N)
	// Lipschitz-ish step size: depends on constraint overlap; a
	// conservative constant works for the attack's sparse constraints.
	step := 0.4 / lambda

	res := &Result{}
	for iter := 1; iter <= opts.MaxSweeps; iter++ {
		res.Sweeps = iter
		for i := range grad {
			grad[i] = (x[i] - x0[i]) * 2 / float64(p.N)
		}
		maxViol := 0.0
		for _, c := range p.Constraints {
			var s float64
			for k, j := range c.Idx {
				s += c.W[k] * x[j]
			}
			var excess float64
			switch {
			case s > c.Target+c.Eps:
				excess = s - (c.Target + c.Eps)
			case s < c.Target-c.Eps:
				excess = s - (c.Target - c.Eps)
			default:
				continue
			}
			if v := math.Abs(excess); v > maxViol {
				maxViol = v
			}
			g := 2 * lambda * excess
			for k, j := range c.Idx {
				grad[j] += g * c.W[k]
			}
		}
		if maxViol <= opts.Tol {
			res.Converged = true
			break
		}
		for i := range x {
			nv := x[i] - step*grad[i]
			if nv < p.Box.Lo {
				nv = p.Box.Lo
			} else if nv > p.Box.Hi {
				nv = p.Box.Hi
			}
			x[i] = nv
		}
	}
	res.X = x
	res.MaxViolation = maxViolation(p, x)
	if res.MaxViolation <= opts.Tol {
		res.Converged = true
	}
	return res, nil
}

// maxViolation returns the largest amount by which x violates any
// constraint band, or 0 if feasible.
func maxViolation(p *Problem, x []float64) float64 {
	var mx float64
	for _, c := range p.Constraints {
		var s float64
		for k, j := range c.Idx {
			s += c.W[k] * x[j]
		}
		v := math.Abs(s-c.Target) - c.Eps
		if v > mx {
			mx = v
		}
	}
	return mx
}

// MaxViolation evaluates how far x is from satisfying the problem; exported
// for attack-quality reporting.
func MaxViolation(p *Problem, x []float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if len(x) != p.N {
		return 0, fmt.Errorf("%w: %d vs %d", ErrBadStart, len(x), p.N)
	}
	return maxViolation(p, x), nil
}

func clampAll(x []float64, b Box) {
	for i, v := range x {
		if v < b.Lo {
			x[i] = b.Lo
		} else if v > b.Hi {
			x[i] = b.Hi
		}
	}
}
