// Package steg implements Decamouflage's steganalysis detection method
// (Section III-C of the paper): the attack's perturbation forms a
// near-periodic pixel comb, whose Fourier spectrum therefore contains
// replicated bright peaks at multiples of the downsampling frequency; a
// benign image's centered spectrum has a single bright center. The CSP
// metric counts those "centered spectrum points" by smoothing and
// binarizing the centered log-magnitude spectrum and counting connected
// bright components (the paper's low-pass + contour-detection step).
package steg

import (
	"errors"
	"fmt"
	"math"

	"decamouflage/internal/fourier"
	"decamouflage/internal/imgcore"
)

// Options parameterizes the CSP computation. The paper leaves the low-pass
// radius and binarization level unspecified; these defaults were chosen on
// the calibration corpus and are swept in the X3 ablation bench.
type Options struct {
	// BinarizeThreshold is the relative intensity cut in (0,1): smoothed
	// spectrum samples at or above threshold·max become foreground.
	// Default 0.78.
	BinarizeThreshold float64
	// SmoothSigma is the Gaussian blur applied to the log spectrum before
	// binarization (the role of the paper's low-pass filter: it merges
	// speckle into stable blobs). Default 1.0; set negative to disable.
	SmoothSigma float64
	// MinArea drops connected components smaller than this many pixels.
	// Attack replicas are compact blobs whose area scales with the image,
	// while benign speckle stays a few pixels, so the default scales as
	// max(4, W·H/1600). Set explicitly (>= 1) to override.
	MinArea int
}

// DefaultOptions returns the calibrated defaults (auto-scaled MinArea).
func DefaultOptions() Options {
	return Options{BinarizeThreshold: 0.78, SmoothSigma: 1.0}
}

// Resolved returns the options with every unset field replaced by its
// default for a w×h spectrum. Resolving is idempotent, so resolved options
// are a stable identity for a CSP configuration: two Options values that
// resolve equal produce identical analyses on the same spectrum (the
// detection pipeline keys its memoized CSP stage on this).
func (o Options) Resolved(w, h int) Options { return o.withDefaults(w, h) }

func (o Options) withDefaults(w, h int) Options {
	//declint:ignore floateq zero is the unset-option sentinel, set only by literal omission
	if o.BinarizeThreshold == 0 {
		o.BinarizeThreshold = 0.78
	}
	//declint:ignore floateq zero is the unset-option sentinel, set only by literal omission
	if o.SmoothSigma == 0 {
		o.SmoothSigma = 1.0
	}
	if o.MinArea == 0 {
		o.MinArea = w * h / 1600
		if o.MinArea < 4 {
			o.MinArea = 4
		}
	}
	return o
}

func (o Options) validate() error {
	if o.BinarizeThreshold <= 0 || o.BinarizeThreshold >= 1 {
		return fmt.Errorf("steg: binarize threshold %v outside (0,1)", o.BinarizeThreshold)
	}
	if o.MinArea < 1 {
		return fmt.Errorf("steg: min area %d < 1", o.MinArea)
	}
	return nil
}

// Analysis holds the intermediate artifacts of a CSP computation, for
// inspection and for rendering the paper's Figure 6/7 visuals.
type Analysis struct {
	// Spectrum is the centered log-magnitude spectrum (smoothed if
	// configured) normalized to [0,1].
	Spectrum []float64
	// Mask is the binarized spectrum.
	Mask []bool
	// W, H are the spectrum dimensions (the input image's).
	W, H int
	// Count is the number of connected bright components of area >=
	// MinArea — the CSP value.
	Count int
	// Areas lists the retained component areas, largest first.
	Areas []int
	// Centroids holds the retained components' centroids (x, y), paired
	// with Areas by index.
	Centroids [][2]float64
}

// CSP returns the number of centered spectrum points of img (computed on
// its luminance) under opts.
//
//declint:nan-ok delegates to Analyze, which validates input; NaN/Inf totality is pinned by FuzzCSP
func CSP(img *imgcore.Image, opts Options) (int, error) {
	a, err := Analyze(img, opts)
	if err != nil {
		return 0, err
	}
	return a.Count, nil
}

// Analyze runs the full steganalysis pipeline and returns all artifacts.
func Analyze(img *imgcore.Image, opts Options) (*Analysis, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	gray := img.Gray()
	spec, err := fourier.CenteredSpectrum(gray.Pix, gray.W, gray.H)
	if err != nil {
		return nil, fmt.Errorf("steg: spectrum: %w", err)
	}
	return AnalyzeSpectrum(spec, gray.W, gray.H, opts)
}

// AnalyzeSpectrum runs the steganalysis tail — smoothing, binarization and
// component counting — on an already-computed centered log-magnitude
// spectrum (fourier.CenteredSpectrum output, normalized to [0,1]). The
// detection pipeline uses this to share one spectrum between scorers. spec
// is treated as read-only; when smoothing is disabled the returned
// Analysis.Spectrum aliases it.
func AnalyzeSpectrum(spec []float64, w, h int, opts Options) (*Analysis, error) {
	if w <= 0 || h <= 0 || len(spec) != w*h {
		return nil, fmt.Errorf("steg: spectrum length %d does not match %dx%d", len(spec), w, h)
	}
	opts = opts.withDefaults(w, h)
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.SmoothSigma > 0 {
		spec = gaussianBlur2D(spec, w, h, opts.SmoothSigma)
		renormalize(spec)
	}
	mask := make([]bool, len(spec))
	for i, v := range spec {
		mask[i] = v >= opts.BinarizeThreshold
	}
	labels, areas := LabelComponents(mask, w, h)
	// Per-component centroids.
	cx := make([]float64, len(areas))
	cy := make([]float64, len(areas))
	for p, l := range labels {
		if l == 0 {
			continue
		}
		cx[l-1] += float64(p % w)
		cy[l-1] += float64(p / w)
	}
	type comp struct {
		area     int
		centroid [2]float64
	}
	kept := make([]comp, 0, len(areas))
	for i, a := range areas {
		if a >= opts.MinArea {
			kept = append(kept, comp{
				area:     a,
				centroid: [2]float64{cx[i] / float64(a), cy[i] / float64(a)},
			})
		}
	}
	// Largest first, keeping area/centroid pairing.
	for i := 1; i < len(kept); i++ {
		for j := i; j > 0 && kept[j].area > kept[j-1].area; j-- {
			kept[j], kept[j-1] = kept[j-1], kept[j]
		}
	}
	a := &Analysis{
		Spectrum:  spec,
		Mask:      mask,
		W:         w,
		H:         h,
		Count:     len(kept),
		Areas:     make([]int, len(kept)),
		Centroids: make([][2]float64, len(kept)),
	}
	for i, k := range kept {
		a.Areas[i] = k.area
		a.Centroids[i] = k.centroid
	}
	return a, nil
}

// EstimateTargetSize infers the geometry of the attacker's embedded target
// from the spectral replica spacing: the attack comb repeats every
// (src/dst) pixels, so its spectrum replicas sit at multiples of the
// target size. It returns the estimated target width and height in pixels
// and ok=false when the analysis has no off-center replicas to measure
// (e.g. a benign image). The estimate is a defender-side forensic: it
// reveals WHICH model input geometry the attacker was aiming at.
func (a *Analysis) EstimateTargetSize() (w, h int, ok bool) {
	if a.Count < 2 {
		return 0, 0, false
	}
	cx := float64(a.W) / 2
	cy := float64(a.H) / 2
	const axisTol = 3.0
	minPos := func(vals []float64) float64 {
		best := math.Inf(1)
		for _, v := range vals {
			if v > axisTol && v < best {
				best = v
			}
		}
		return best
	}
	var dxs, dys []float64
	for _, c := range a.Centroids {
		dx := math.Abs(c[0] - cx)
		dy := math.Abs(c[1] - cy)
		// Replicas on (or near) the horizontal axis measure the
		// horizontal spacing, and vice versa.
		if dy <= axisTol {
			dxs = append(dxs, dx)
		}
		if dx <= axisTol {
			dys = append(dys, dy)
		}
	}
	sx := minPos(dxs)
	sy := minPos(dys)
	if math.IsInf(sx, 1) && math.IsInf(sy, 1) {
		return 0, 0, false
	}
	// A missing axis falls back to the other (square-ratio assumption).
	if math.IsInf(sx, 1) {
		sx = sy
	}
	if math.IsInf(sy, 1) {
		sy = sx
	}
	return int(math.Round(sx)), int(math.Round(sy)), true
}

// EstimateTargetSize estimates the attacker's target geometry from a
// suspected attack image. The attack comb replicates the spectrum at
// multiples of the target size; depending on the binarization level, the
// visible replicas may be the fundamental or higher harmonics (the first
// replica can merge into the central blob). The estimator sweeps several
// binarization levels, keeps only distance clusters that persist across
// levels (replicas persist; benign speckle is level-fragile), and returns
// the largest spacing dividing the cluster centers (a tolerance-aware GCD)
// — the fundamental. ok is false when no persistent replicas exist.
//
// Intended usage is forensic follow-up on images the CSP detector flagged;
// benign images with strong periodic texture can yield spurious estimates,
// so gate on the detection verdict first.
//
//declint:nan-ok every probe runs through Analyze, which validates input; NaN spectra yield ok=false
func EstimateTargetSize(img *imgcore.Image, opts Options) (w, h int, ok bool) {
	const axisTol = 3.0
	measureOpts := opts.withDefaults(img.W, img.H)
	type obs struct {
		dist  float64
		level int
	}
	var dxs, dys []obs
	for level, th := range []float64{0.62, 0.66, 0.70, 0.74, 0.78} {
		o := measureOpts
		o.BinarizeThreshold = th
		a, err := Analyze(img, o)
		if err != nil {
			return 0, 0, false
		}
		if a.Count < 2 {
			continue
		}
		cx := float64(a.W) / 2
		cy := float64(a.H) / 2
		// Replicas sit on the full 2-D grid (k·sx, l·sy), so every
		// off-center blob contributes its |dx| and |dy| offsets (diagonal
		// replicas often survive binarization when the on-axis fundamental
		// has merged into the central blob).
		for _, c := range a.Centroids {
			dx := math.Abs(c[0] - cx)
			dy := math.Abs(c[1] - cy)
			if dx <= axisTol && dy <= axisTol {
				continue // central blob
			}
			if dx > axisTol {
				dxs = append(dxs, obs{dx, level})
			}
			if dy > axisTol {
				dys = append(dys, obs{dy, level})
			}
		}
	}
	// Replica peaks persist across binarization levels; benign texture
	// speckle is level-fragile. Keep only distance clusters observed at
	// two or more levels and measure the spacing on the cluster centers.
	robust := func(os []obs) []float64 {
		for i := 1; i < len(os); i++ {
			for j := i; j > 0 && os[j].dist < os[j-1].dist; j-- {
				os[j], os[j-1] = os[j-1], os[j]
			}
		}
		var out []float64
		for i := 0; i < len(os); {
			j := i
			var sum float64
			levels := map[int]bool{}
			for j < len(os) && os[j].dist-os[i].dist <= 2.5 {
				sum += os[j].dist
				levels[os[j].level] = true
				j++
			}
			if len(levels) >= 2 {
				out = append(out, sum/float64(j-i))
			}
			i = j
		}
		return out
	}
	sx := fundamentalSpacing(robust(dxs))
	sy := fundamentalSpacing(robust(dys))
	if sx == 0 && sy == 0 {
		return 0, 0, false
	}
	if sx == 0 {
		sx = sy
	}
	if sy == 0 {
		sy = sx
	}
	return sx, sy, true
}

// fundamentalSpacing returns the largest integer f >= 4 such that at least
// 60% of the distances in ds lie within tolerance of a nonzero multiple of
// f (an outlier-tolerant GCD), or 0 when ds is empty. Off-grid speckle
// blobs would otherwise drag the estimate to spurious small divisors.
func fundamentalSpacing(ds []float64) int {
	if len(ds) == 0 {
		return 0
	}
	const tol = 2.5
	maxD := 0.0
	for _, d := range ds {
		if d > maxD {
			maxD = d
		}
	}
	need := (3*len(ds) + 4) / 5 // 60% coverage, rounded up
	for f := int(maxD + tol); f >= 4; f-- {
		fit := 0
		for _, d := range ds {
			k := math.Round(d / float64(f))
			if k >= 1 && math.Abs(d-k*float64(f)) <= tol {
				fit++
			}
		}
		if fit >= need {
			return f
		}
	}
	return 0
}

// ErrMaskSize indicates a mask whose length does not match its geometry.
var ErrMaskSize = errors.New("steg: mask length does not match dimensions")

// LabelComponents labels 8-connected foreground components of mask
// (row-major w×h). It returns a label per pixel (0 = background, components
// numbered from 1) and the area of each component (index i holds component
// i+1's area). Malformed input yields nil results.
func LabelComponents(mask []bool, w, h int) (labels []int, areas []int) {
	if len(mask) != w*h || w <= 0 || h <= 0 {
		return nil, nil
	}
	labels = make([]int, len(mask))
	var queue []int
	next := 0
	for start, fg := range mask {
		if !fg || labels[start] != 0 {
			continue
		}
		next++
		area := 0
		queue = queue[:0]
		queue = append(queue, start)
		labels[start] = next
		for len(queue) > 0 {
			p := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			area++
			px, py := p%w, p/w
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dx == 0 && dy == 0 {
						continue
					}
					nx, ny := px+dx, py+dy
					if nx < 0 || nx >= w || ny < 0 || ny >= h {
						continue
					}
					q := ny*w + nx
					if mask[q] && labels[q] == 0 {
						labels[q] = next
						queue = append(queue, q)
					}
				}
			}
		}
		areas = append(areas, area)
	}
	return labels, areas
}

// SpectrumImage renders an Analysis spectrum as a grayscale image scaled
// to [0,255], for artifact output (the paper's Figure 6 panels).
func (a *Analysis) SpectrumImage() *imgcore.Image {
	img := imgcore.MustNew(a.W, a.H, 1)
	for i, v := range a.Spectrum {
		img.Pix[i] = v * 255
	}
	return img
}

// MaskImage renders the binary spectrum as a black/white image (the
// paper's "binary spectrum" panel in Figure 7).
func (a *Analysis) MaskImage() *imgcore.Image {
	img := imgcore.MustNew(a.W, a.H, 1)
	for i, on := range a.Mask {
		if on {
			img.Pix[i] = 255
		}
	}
	return img
}

// gaussianBlur2D applies a separable Gaussian with the given sigma (radius
// 3σ+1) and replicate borders.
func gaussianBlur2D(src []float64, w, h int, sigma float64) []float64 {
	r := int(sigma*3) + 1
	k := make([]float64, 2*r+1)
	var s float64
	for i := -r; i <= r; i++ {
		k[i+r] = math.Exp(-float64(i*i) / (2 * sigma * sigma))
		s += k[i+r]
	}
	for i := range k {
		k[i] /= s
	}
	tmp := make([]float64, len(src))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var v float64
			for d := -r; d <= r; d++ {
				xx := x + d
				if xx < 0 {
					xx = 0
				} else if xx >= w {
					xx = w - 1
				}
				v += k[d+r] * src[y*w+xx]
			}
			tmp[y*w+x] = v
		}
	}
	out := make([]float64, len(src))
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			var v float64
			for d := -r; d <= r; d++ {
				yy := y + d
				if yy < 0 {
					yy = 0
				} else if yy >= h {
					yy = h - 1
				}
				v += k[d+r] * tmp[yy*w+x]
			}
			out[y*w+x] = v
		}
	}
	return out
}

// renormalize rescales a non-negative field so its maximum is 1.
func renormalize(xs []float64) {
	var mx float64
	for _, v := range xs {
		if v > mx {
			mx = v
		}
	}
	if mx <= 0 {
		return
	}
	inv := 1 / mx
	for i := range xs {
		xs[i] *= inv
	}
}
