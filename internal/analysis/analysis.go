// Package analysis is declint's engine: a pure-stdlib static-analysis
// driver (go/parser, go/types, go/importer — no external tooling) that
// walks every package in the module and enforces the repository's
// determinism, concurrency, and float-safety invariants as named,
// individually-testable checks.
//
// The invariants exist because Decamouflage's detection thresholds
// (MSE/SSIM/CSP, Tables V–IX of the paper) are only reproducible if every
// numeric kernel is bit-deterministic. PR 1's internal/parallel substrate
// established that by convention; these checks enforce it mechanically:
//
//	noraw-go     no raw go statements or sync.WaitGroup pools outside
//	             internal/parallel — all fan-out routes through the substrate
//	determinism  no time.Now, math/rand, or map-iteration-ordered output in
//	             the numeric kernel packages
//	floateq      no ==/!= on float operands outside the intentional
//	             exact-equality helpers in internal/testutil
//	naninput     exported tensor-accepting functions in metrics/steg/detect
//	             must guard NaN/Inf or carry a //declint:nan-ok audit marker
//	errdrop      no `_ =` discards of error-returning calls in non-test code
//	obsonly      no runtime/pprof, net/http/pprof, or expvar imports outside
//	             internal/obs and the cmd/ entry points
//
// On top of the per-package walks sits a dataflow layer (effects.go,
// callgraph.go): an intraprocedural effects pass summarizes every function
// (allocations, forbidden sources, captured writes, context facts, call
// edges), and a whole-module call graph links the summaries — static calls,
// method values, and interface dispatch resolved to module-defined
// implementers. Seven checks run on that graph:
//
//	parsafe      closures passed to parallel.For/Do may only write captured
//	             slices/maps at indices derived from the chunk bounds lo..hi
//	             (or the task index), and never captured scalars
//	hotalloc     //declint:hot functions and their whole static call closure
//	             must be allocation-free
//	detprop      transitive determinism: no call chain from a kernel package
//	             may reach time.Now, math/rand, or map-ordered output
//	ctxflow      internal functions receiving a ctx must use it and must not
//	             mint context.Background/TODO; only exported entry points root
//	             contexts
//	poollife     values borrowed from sync.Pool.Get (and //declint:owns
//	             helpers) must be released exactly once on every path, never
//	             used after a release, and never escape without a
//	             //declint:owns / //declint:transfers custody annotation —
//	             whose claims are themselves verified at the callee
//	memopure     memoized pipeline-stage compute closures must be pure
//	             functions of their stage key: no captured or package-level
//	             writes, no reachable nondeterministic source
//	obscover     every memoized stage opens an obs span, every LRU cache
//	             registers real obs stats, and every flight-recorder event
//	             is emitted inside an active span, so instrumentation
//	             cannot rot
//
// A concurrency-protocol layer (concurrency_effects.go) extends the
// effects pass with a path-sensitive interpretation of each body — mutex
// acquire/release with defer pairing and RWMutex modes, the held-lock set
// at every call site, channel operations with their select/ctx guards, go
// statements with their termination signals — and four more graph checks
// consume those facts:
//
//	lockorder    whole-module lock-order graph: cycles, double-lock along a
//	             call chain, blocking calls or channel ops under a held
//	             mutex, unlock-without-lock and lock-leak paths; nested
//	             cross-function acquires must be declared with
//	             //declint:locks-after <outer>
//	golife       every go statement needs a provable termination signal
//	             (WaitGroup join, ctx.Done, or a stop channel the module
//	             closes) plus a join, and a //declint:spawns <reason>
//	             directive on the spawning function
//	chandisc     channel discipline: sends in ctx-receiving functions must
//	             be select+ctx.Done guarded, no time.After in loops, no
//	             send-after-close, no magic buffer capacities
//	deadline     exported ctx-less entry points of the serving packages
//	             must not reach unbounded blocking (net, os/exec, raw
//	             channel receives)
//
// Function summaries are cached on disk (Config.CacheDir) keyed by the
// package's transitive content hash, so warm full-repo runs skip the
// effects pass entirely.
//
// Intentional violations are annotated in place:
//
//	//declint:ignore <check> <reason>
//
// where the reason is mandatory and the directive covers its own line and
// the line below.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one rule violation at a position. Suppressed is set (instead
// of the finding being dropped) when an //declint:ignore directive covers
// it and Config.IncludeSuppressed is on, so machine-readable output can
// show what was waived and why the tree is still clean.
type Finding struct {
	Check      string         `json:"check"`
	Pos        token.Position `json:"pos"`
	Msg        string         `json:"msg"`
	Suppressed bool           `json:"suppressed,omitempty"`
	// Reason carries the waiver text of the covering //declint:ignore
	// directive when Suppressed is set — the raw material of the
	// docs/declint_waivers.md inventory.
	Reason string `json:"reason,omitempty"`
}

// String renders the canonical file:line:col form findings are reported in.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Msg)
}

// Config scopes the checks. The zero value is unusable; start from
// DefaultConfig, which encodes this repository's layout. All package
// matching is by import-path suffix (see Package.HasSuffix), so testdata
// fixtures that mirror the layout are checked under the same config.
type Config struct {
	// Checks names the checks to run, in registry order. Empty = all.
	Checks []string

	// ParallelPkg is the one package allowed to own raw goroutines.
	ParallelPkg string
	// DeterminismPkgs are the numeric kernel packages whose non-test code
	// must be bit-deterministic.
	DeterminismPkgs []string
	// FloatEqAllowPkgs are packages whose float ==/!= are intentional by
	// charter (the shared exact-equality test helpers).
	FloatEqAllowPkgs []string
	// NaNPkgs are the packages whose exported tensor-accepting functions
	// the naninput check audits.
	NaNPkgs []string
	// TensorTypes are qualified named-type suffixes treated as image
	// tensors (matched against the fully-qualified type string).
	TensorTypes []string
	// GuardFuncs are callee names accepted as NaN/Inf guards.
	GuardFuncs []string
	// ObsPkg is the one library package allowed to import the profiling
	// and metrics-exposition machinery directly.
	ObsPkg string
	// ObsOnlyImports are the import paths restricted to ObsPkg and the
	// cmd/ entry points.
	ObsOnlyImports []string
	// TaintExemptPkgs are packages detprop's taint traversal treats as
	// barriers: observability reads clocks to stamp spans but never feeds
	// numeric kernel output, so reaching it is not nondeterminism.
	TaintExemptPkgs []string
	// MemoTypes are the qualified memo-table types ("pkgpath.TypeName",
	// suffix-matched) whose memo(key, closure) compute closures memopure
	// and obscover analyze as pipeline stages.
	MemoTypes []string
	// CachePkg is the package whose NewLRU constructor obscover audits for
	// nil stats registrations.
	CachePkg string
	// RecorderTypes are the qualified flight-recorder types
	// ("pkgpath.TypeName", suffix-matched) whose Record method obscover
	// requires to be called inside an active span — after an ObsPkg
	// StartSpan/StartStage call in the same function — so every wide
	// event carries a trace ID and stage attribution. ObsPkg itself is
	// exempt (the watchdog records health events with no request span).
	RecorderTypes []string
	// DeadlinePkgs are the serving packages whose exported ctx-less entry
	// points the deadline check audits for reachable unbounded blocking.
	DeadlinePkgs []string
	// CacheDir, when non-empty, holds the per-package function-summary
	// JSON files keyed by transitive content hash. Empty disables caching.
	CacheDir string
	// IncludeSuppressed keeps ignored findings in Run's result with
	// Finding.Suppressed set instead of dropping them.
	IncludeSuppressed bool
}

// DefaultConfig returns the configuration declint runs with on this module.
func DefaultConfig() Config {
	return Config{
		ParallelPkg: "internal/parallel",
		DeterminismPkgs: []string{
			"internal/scaling", "internal/fourier", "internal/filtering",
			"internal/metrics", "internal/steg", "internal/attack",
			"internal/qpsolve", "internal/detect",
		},
		FloatEqAllowPkgs: []string{"internal/testutil"},
		NaNPkgs:          []string{"internal/metrics", "internal/steg", "internal/detect"},
		TensorTypes:      []string{"internal/imgcore.Image"},
		GuardFuncs: []string{
			"Validate", "checkPair", "HasNaN", "IsNaN", "IsInf", "Finite",
		},
		ObsPkg: "internal/obs",
		ObsOnlyImports: []string{
			"runtime/pprof", "net/http/pprof", "expvar",
		},
		TaintExemptPkgs: []string{"internal/obs"},
		MemoTypes:       []string{"internal/detect.Intermediates"},
		CachePkg:        "internal/cache",
		RecorderTypes:   []string{"internal/obs.Recorder"},
		DeadlinePkgs:    []string{"internal/obs", "internal/detect", "internal/server"},
	}
}

// A check inspects code under a config and reports findings. Per-package
// checks set run; whole-module dataflow checks set runModule and receive
// the call-graph Index, which Run builds once and shares.
type check struct {
	name      string
	doc       string
	run       func(pkg *Package, cfg Config) []Finding
	runModule func(pkgs []*Package, cfg Config, ix *Index) []Finding
}

// registry holds every check in report order. Names are part of the
// suppression syntax, so they are stable API.
var registry = []check{
	{name: "noraw-go", doc: "raw goroutines / WaitGroup pools outside internal/parallel", run: checkNoRawGo},
	{name: "determinism", doc: "time.Now, math/rand, map-ordered output in kernel packages", run: checkDeterminism},
	{name: "floateq", doc: "exact ==/!= on float operands", run: checkFloatEq},
	{name: "naninput", doc: "exported tensor functions without NaN/Inf guard or nan-ok marker", run: checkNaNInput},
	{name: "errdrop", doc: "_ = discards of error-returning calls", run: checkErrDrop},
	{name: "obsonly", doc: "profiling/exposition imports outside internal/obs and cmd/", run: checkObsOnly},
	{name: "parsafe", doc: "parallel closures writing captured state at non-chunk-derived indices", run: checkParSafe},
	{name: "hotalloc", doc: "allocations reachable from //declint:hot kernel functions", runModule: checkHotAlloc},
	{name: "detprop", doc: "transitive time/rand/map-order taint reaching kernel packages", runModule: checkDetProp},
	{name: "ctxflow", doc: "dropped or re-minted contexts in internal library code", runModule: checkCtxFlow},
	{name: "poollife", doc: "pooled buffers not released exactly once on every path", runModule: checkPoolLife},
	{name: "memopure", doc: "memoized stage closures that are not pure functions of their key", runModule: checkMemoPure},
	{name: "obscover", doc: "pipeline stages, caches or event emitters missing obs instrumentation", runModule: checkObsCover},
	{name: "lockorder", doc: "lock-order cycles, double-locks, and blocking calls under a held mutex", runModule: checkLockOrder},
	{name: "golife", doc: "goroutines without a provable termination signal and join", runModule: checkGoLife},
	{name: "chandisc", doc: "unguarded ctx-path sends, timer leaks, send-after-close, magic buffers", runModule: checkChanDisc},
	{name: "deadline", doc: "ctx-less exported entry points reaching unbounded blocking operations", runModule: checkDeadline},
}

// Checks lists the registered check names and one-line descriptions.
func Checks() []struct{ Name, Doc string } {
	out := make([]struct{ Name, Doc string }, len(registry))
	for i, c := range registry {
		out[i] = struct{ Name, Doc string }{c.name, c.doc}
	}
	return out
}

// KnownCheck reports whether name is a registered check.
func KnownCheck(name string) bool {
	for _, c := range registry {
		if c.name == name {
			return true
		}
	}
	return false
}

// Run executes the configured checks over the packages, applies
// //declint:ignore suppressions, and returns the surviving findings sorted
// by position. Malformed suppressions are reported as check "declint".
func Run(pkgs []*Package, cfg Config) ([]Finding, error) {
	enabled := map[string]bool{}
	if len(cfg.Checks) == 0 {
		for _, c := range registry {
			enabled[c.name] = true
		}
	} else {
		for _, name := range cfg.Checks {
			if !KnownCheck(name) {
				return nil, fmt.Errorf("unknown check %q", name)
			}
			enabled[name] = true
		}
	}
	known := map[string]bool{}
	for _, c := range registry {
		known[c.name] = true
	}

	// Suppressions are collected globally before any check runs: module
	// checks report findings in whichever package the offending line lives,
	// which need not be the package that triggered the traversal.
	sup := suppressions{}
	var out []Finding
	for _, pkg := range pkgs {
		psup, bad := collectSuppressions(pkg, known)
		out = append(out, bad...)
		for file, byLine := range psup {
			sup[file] = byLine
		}
	}

	needIndex := false
	for _, c := range registry {
		if enabled[c.name] && c.runModule != nil {
			needIndex = true
		}
	}
	var ix *Index
	if needIndex {
		ix = BuildIndex(pkgs, cfg)
	}

	keep := func(fs []Finding) {
		for _, f := range fs {
			if ok, reason := sup.suppressed(f); ok {
				if cfg.IncludeSuppressed {
					f.Suppressed = true
					f.Reason = reason
					out = append(out, f)
				}
				continue
			}
			out = append(out, f)
		}
	}
	for _, c := range registry {
		if !enabled[c.name] {
			continue
		}
		if c.run != nil {
			for _, pkg := range pkgs {
				keep(c.run(pkg, cfg))
			}
		}
		if c.runModule != nil {
			keep(c.runModule(pkgs, cfg, ix))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out, nil
}
