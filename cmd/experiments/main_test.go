package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"decamouflage/internal/obs"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	err := run([]string{"-run", "T1", "-n", "4", "-src", "32x32", "-dst", "8x8"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunSmallTable(t *testing.T) {
	err := run([]string{"-run", "T6", "-n", "4", "-src", "64x64", "-dst", "16x16"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-src", "junk"}); err == nil {
		t.Error("bad src accepted")
	}
	if err := run([]string{"-dst", "junk"}); err == nil {
		t.Error("bad dst accepted")
	}
	if err := run([]string{"-alg", "junk"}); err == nil {
		t.Error("bad algorithm accepted")
	}
	if err := run([]string{"-run", "NOPE", "-n", "2"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestRunMetricsDump pins the end-of-run metrics dump: per-experiment
// latency histograms and the kernel caches' counters land in the file.
func TestRunMetricsDump(t *testing.T) {
	obs.Enable()
	enabled := obs.Enabled()
	obs.Disable()
	if !enabled {
		t.Skip("observability compiled out (noobs)")
	}
	t.Cleanup(obs.Disable)
	path := filepath.Join(t.TempDir(), "metrics.json")
	err := run([]string{"-run", "T1", "-n", "4", "-src", "32x32", "-dst", "8x8",
		"-metrics-out", path})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"experiments.T1.seconds", "scaling.coeff.misses"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics dump missing %q:\n%s", want, data)
		}
	}
}

func TestRunBadMetricsFormat(t *testing.T) {
	obs.Enable()
	enabled := obs.Enabled()
	obs.Disable()
	if !enabled {
		t.Skip("observability compiled out (noobs)")
	}
	t.Cleanup(obs.Disable)
	err := run([]string{"-run", "T1", "-n", "4", "-src", "32x32", "-dst", "8x8",
		"-metrics-out", filepath.Join(t.TempDir(), "m.txt"), "-metrics-format", "bogus"})
	if err == nil || !strings.Contains(err.Error(), "metrics format") {
		t.Errorf("bad metrics format error = %v", err)
	}
}

// decodeNDJSON reads one JSON value per line from path.
func decodeNDJSON[T any](t *testing.T, path string) []T {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []T
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var v T
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRunFlightRecorderEndToEnd is the acceptance run: a full ensemble
// experiment with the recorder, tail sampler and watchdog installed must
// produce a wide event per detected image whose stage durations fit the
// span-tree total, and the latency histogram's top exemplar must resolve
// to both a retained trace and a recorded event.
func TestRunFlightRecorderEndToEnd(t *testing.T) {
	obs.Enable()
	enabled := obs.Enabled()
	obs.Disable()
	if !enabled {
		t.Skip("observability compiled out (noobs)")
	}
	t.Cleanup(obs.Disable)

	dir := t.TempDir()
	evPath := filepath.Join(dir, "events.ndjson")
	trPath := filepath.Join(dir, "traces.ndjson")
	mPath := filepath.Join(dir, "metrics.json")
	err := run([]string{"-run", "T8", "-n", "6", "-src", "48x48", "-dst", "16x16",
		"-events-out", evPath, "-trace-keep", "64", "-trace-out", trPath,
		"-metrics-out", mPath, "-watchdog", "-watchdog-interval", "20"})
	if err != nil {
		t.Fatal(err)
	}

	events := decodeNDJSON[obs.Event](t, evPath)
	detects := 0
	for _, ev := range events {
		if ev.Name != "ensemble.detect" {
			continue
		}
		detects++
		if ev.TraceID == "" {
			t.Fatalf("detect event without trace ID: %+v", ev)
		}
		if len(ev.Stages) == 0 || ev.Stages[0].Depth != 0 {
			t.Fatalf("detect event without a rooted span tree: %+v", ev)
		}
		// Per-stage durations are attributed from the span tree, so every
		// stage must fit inside the event's total (methods overlap in
		// parallel, so the invariant is per-stage, not a flat sum).
		for _, sd := range ev.Stages {
			if sd.DurNs < 0 || sd.DurNs > ev.DurNs {
				t.Fatalf("stage %q (%dns) outside event total %dns, trace %s",
					sd.Name, sd.DurNs, ev.DurNs, ev.TraceID)
			}
			if sd.OffsetNs < 0 || sd.OffsetNs > ev.DurNs {
				t.Fatalf("stage %q offset %dns outside event total %dns",
					sd.Name, sd.OffsetNs, ev.DurNs)
			}
		}
	}
	if detects == 0 {
		t.Fatal("T8 run recorded no detect events")
	}

	traces := decodeNDJSON[obs.RetainedTrace](t, trPath)
	if len(traces) == 0 {
		t.Fatal("T8 run retained no traces")
	}

	// The slowest-bucket exemplar is the run's record duration, which the
	// tail sampler always retains: it must resolve end to end.
	data, err := os.ReadFile(mPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	hs, ok := snap.Histograms["detect.ensemble.seconds"]
	if !ok || len(hs.Exemplars) == 0 {
		t.Fatalf("metrics snapshot has no detect.ensemble.seconds exemplars: %+v", hs)
	}
	top := hs.Exemplars[0]
	for _, x := range hs.Exemplars {
		if x.ValueMs > top.ValueMs {
			top = x
		}
	}
	foundTrace := false
	for _, rt := range traces {
		if rt.ID == top.TraceID {
			foundTrace = true
			break
		}
	}
	if !foundTrace {
		t.Errorf("top exemplar trace %q not among %d retained traces", top.TraceID, len(traces))
	}
	foundEvent := false
	for _, ev := range events {
		if ev.TraceID == top.TraceID {
			foundEvent = true
			break
		}
	}
	if !foundEvent {
		t.Errorf("top exemplar trace %q has no recorded event", top.TraceID)
	}
}
