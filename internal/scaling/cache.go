package scaling

import (
	"decamouflage/internal/cache"
	"decamouflage/internal/obs"
)

// coeffCacheCap bounds the global coefficient cache. Detection pipelines
// touch a handful of geometries (model input sizes × experiment image
// sizes × a few algorithms), each coefficient matrix is O(m·taps) — 128
// entries cover every sweep in cmd/experiments while keeping worst-case
// memory small.
const coeffCacheCap = 128

// coeffKey identifies a coefficient operator up to output equality:
// lengths plus every Options field that affects the weights. Coord 0 is
// normalized to HalfPixel so the zero-value Options and the explicit
// default share an entry.
type coeffKey struct {
	n, m      int
	algorithm Algorithm
	antialias bool
	coord     CoordMode
}

// coeffCache memoizes coefficient operators per geometry, reporting
// hit/miss/eviction counts as the "scaling.coeff" cache metrics.
var coeffCache = cache.NewLRU[coeffKey, *Coeff](coeffCacheCap, obs.NewCacheStats("scaling.coeff"))

// CoeffFor returns the cached coefficient operator for resampling length n
// to length m under opts, building and caching it on first use. The
// returned *Coeff is shared: callers must treat it as immutable (every
// consumer in this repository only reads Rows/Idx/W). The cache holds at
// most coeffCacheCap entries and evicts the least recently used; evicted
// operators remain valid for callers still holding them. Construction runs
// outside the cache lock, so concurrent callers may briefly build the same
// operator twice; the insert race keeps one instance for everyone.
func CoeffFor(n, m int, opts Options) (*Coeff, error) {
	key := coeffKey{n: n, m: m, algorithm: opts.Algorithm, antialias: opts.Antialias, coord: opts.Coord}
	if key.coord == 0 {
		key.coord = HalfPixel
	}
	return coeffCache.GetOrBuild(key, func() (*Coeff, error) {
		return BuildCoeff(n, m, opts)
	})
}

// coeffCacheLen reports the current cache population (for tests).
func coeffCacheLen() int { return coeffCache.Len() }

// resetCoeffCache empties the cache (for tests).
func resetCoeffCache() { coeffCache.Reset() }
