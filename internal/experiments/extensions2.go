package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"decamouflage/internal/attack"
	"decamouflage/internal/detect"
	"decamouflage/internal/eval"
	"decamouflage/internal/imgcore"
	"decamouflage/internal/report"
	"decamouflage/internal/stats"
	"decamouflage/internal/steg"
)

// runX6 reproduces the paper's (and Quiring et al.'s) negative result on
// Xiao et al.'s originally proposed defense: color-histogram comparison
// does not separate attacks from benign images. We calibrate it exactly
// like the real methods and report its accuracy and distribution overlap
// next to scaling/MSE on the same corpora.
func (r *Runner) runX6(ctx context.Context) error {
	scaler, err := r.Scaler()
	if err != nil {
		return err
	}
	hist, err := detect.NewHistogramScorer(scaler, 32)
	if err != nil {
		return err
	}
	mse, err := r.scalingScorer(detect.MSE)
	if err != nil {
		return err
	}
	evalCorpus, err := r.Eval(ctx)
	if err != nil {
		return err
	}
	tbl := report.NewTable("Color histogram vs MSE as a detection metric (paper Section III-A)",
		"Metric", "Train Acc.", "Eval Acc.", "FAR", "FRR", "Overlap coeff.")
	thresholds := make(map[string]detect.Threshold, 2)
	for _, e := range []struct {
		name   string
		scorer detect.Scorer
	}{
		{"histogram", hist},
		{"scaling/MSE", mse},
	} {
		wb, trainB, trainA, err := r.calibrateScorer(ctx, e.scorer)
		if err != nil {
			return err
		}
		thresholds[e.name] = wb.Threshold
		overlap, err := stats.OverlapCoefficient(trainB, trainA, 30)
		if err != nil {
			return err
		}
		benign, attacks, err := eval.ScorePair(ctx, e.scorer, evalCorpus)
		if err != nil {
			return err
		}
		cs := eval.EvaluateThreshold(wb.Threshold, benign, attacks)
		tbl.AddRow(e.name, report.Pct(wb.TrainAccuracy), report.Pct(cs.Accuracy()),
			report.Pct(cs.FAR()), report.Pct(cs.FRR()), report.F(overlap, 2))
	}
	if err := tbl.Render(r.cfg.Out); err != nil {
		return err
	}

	// The adaptive case that makes the histogram check unusable in
	// principle (Quiring et al.'s point): an attacker whose target has the
	// SAME color histogram as the benign downscale — here, a spatial
	// permutation of scale(O)'s own pixels. The image content changes
	// completely; the histogram cannot.
	n := len(evalCorpus.Benign)
	if n > r.extensionN() {
		n = r.extensionN()
	}
	histDet, err := detect.NewDetector(hist, thresholds["histogram"])
	if err != nil {
		return err
	}
	mseDet, err := detect.NewDetector(mse, thresholds["scaling/MSE"])
	if err != nil {
		return err
	}
	histCaught, mseCaught, functional := 0, 0, 0
	rng := rand.New(rand.NewSource(r.cfg.Seed + 31337))
	for i := 0; i < n; i++ {
		src := evalCorpus.Benign[i]
		down, err := evalCorpus.Scaler.Resize(src)
		if err != nil {
			return err
		}
		target := permutePixels(down, rng)
		res, err := attack.Craft(src, target, attack.Config{Scaler: evalCorpus.Scaler, Eps: r.cfg.Eps})
		if err != nil {
			return err
		}
		rep, err := attack.Success(res.Attack, target, evalCorpus.Scaler)
		if err != nil {
			return err
		}
		if rep.Effective {
			functional++
		}
		v, err := histDet.Detect(res.Attack)
		if err != nil {
			return err
		}
		if v.Attack {
			histCaught++
		}
		v, err = mseDet.Detect(res.Attack)
		if err != nil {
			return err
		}
		if v.Attack {
			mseCaught++
		}
	}
	adaptive := report.NewTable(
		fmt.Sprintf("Adaptive histogram-matched attacks (target = permuted scale(O); N=%d)", n),
		"Attacks functional", "Caught by histogram", "Caught by scaling/MSE")
	adaptive.AddRow(fmt.Sprintf("%d/%d", functional, n),
		fmt.Sprintf("%d/%d", histCaught, n), fmt.Sprintf("%d/%d", mseCaught, n))
	return adaptive.Render(r.cfg.Out)
}

// permutePixels returns a copy of img with its pixel tuples spatially
// shuffled: identical color histogram, unrelated content.
func permutePixels(img *imgcore.Image, rng *rand.Rand) *imgcore.Image {
	out := img.Clone()
	n := img.W * img.H
	perm := rng.Perm(n)
	for i, p := range perm {
		for c := 0; c < img.C; c++ {
			out.Pix[i*img.C+c] = img.Pix[p*img.C+c]
		}
	}
	return out
}

// runX7 computes the ROC AUC of every score metric on the evaluation
// corpus — a threshold-free view of each method's separability.
func (r *Runner) runX7(ctx context.Context) error {
	evalCorpus, err := r.Eval(ctx)
	if err != nil {
		return err
	}
	scaler, err := r.Scaler()
	if err != nil {
		return err
	}
	hist, err := detect.NewHistogramScorer(scaler, 32)
	if err != nil {
		return err
	}
	type entry struct {
		name   string
		scorer detect.Scorer
		dir    detect.Direction
	}
	var entries []entry
	for _, m := range []detect.Metric{detect.MSE, detect.SSIM, detect.PSNR} {
		ss, err := r.scalingScorer(m)
		if err != nil {
			return err
		}
		entries = append(entries, entry{"scaling/" + m.String(), ss, m.AttackDirection()})
		fs, err := r.filteringScorer(m)
		if err != nil {
			return err
		}
		entries = append(entries, entry{"filtering/" + m.String(), fs, m.AttackDirection()})
	}
	entries = append(entries,
		entry{"steganalysis/CSP", detect.NewStegScorer(steg.Options{}), detect.Above},
		entry{"histogram", hist, detect.Above},
	)
	tbl := report.NewTable("ROC AUC per score metric (threshold-free separability)",
		"Metric", "AUC", "Verdict")
	for _, e := range entries {
		if err := ctx.Err(); err != nil {
			return err
		}
		benign, attacks, err := eval.ScorePair(ctx, e.scorer, evalCorpus)
		if err != nil {
			return err
		}
		points, auc, err := eval.ROC(benign, attacks, e.dir)
		if err != nil {
			return err
		}
		verdict := "unusable"
		switch {
		case auc >= 0.99:
			verdict = "excellent"
		case auc >= 0.9:
			verdict = "good"
		case auc >= 0.7:
			verdict = "weak"
		}
		tbl.AddRow(e.name, report.F(auc, 4), verdict)
		name := e.name
		if err := r.writeCSV("x7_roc_"+sanitize(name)+".csv", func(w io.Writer) error {
			fpr := make([]float64, len(points))
			tpr := make([]float64, len(points))
			for i, p := range points {
				fpr[i], tpr[i] = p.FPR, p.TPR
			}
			return report.WriteCSV(w, []string{"fpr", "tpr"}, fpr, tpr)
		}); err != nil {
			return err
		}
	}
	return tbl.Render(r.cfg.Out)
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// runX8 measures robustness to JPEG recompression — a lossy channel real
// uploads pass through. It reports, per quality level, whether the attack
// still works after recompression and whether Decamouflage still detects
// the recompressed attack images.
func (r *Runner) runX8(ctx context.Context) error {
	evalCorpus, err := r.Eval(ctx)
	if err != nil {
		return err
	}
	train, err := r.Train(ctx)
	if err != nil {
		return err
	}
	ens, err := r.blackBoxEnsembleFor(ctx, train)
	if err != nil {
		return err
	}
	n := len(evalCorpus.Attacks)
	if n > r.extensionN() {
		n = r.extensionN()
	}
	tbl := report.NewTable("JPEG recompression robustness",
		"JPEG quality", "Attack survives", "Detected (of survivors)", "Detected (all)", "Benign FRR")
	for _, q := range []int{100, 90, 75, 50, 30} {
		if err := ctx.Err(); err != nil {
			return err
		}
		survive, detectedSurvivors, detectedAll, benignFlagged := 0, 0, 0, 0
		for i := 0; i < n; i++ {
			jp, err := imgcore.JPEGRoundTrip(evalCorpus.Attacks[i], q)
			if err != nil {
				return err
			}
			rep, err := attack.Success(jp, evalCorpus.Targets[i], evalCorpus.Scaler)
			if err != nil {
				return err
			}
			v, err := ens.Detect(ctx, jp)
			if err != nil {
				return err
			}
			if v.Attack {
				detectedAll++
			}
			if rep.Effective {
				survive++
				if v.Attack {
					detectedSurvivors++
				}
			}
			bjp, err := imgcore.JPEGRoundTrip(evalCorpus.Benign[i], q)
			if err != nil {
				return err
			}
			bv, err := ens.Detect(ctx, bjp)
			if err != nil {
				return err
			}
			if bv.Attack {
				benignFlagged++
			}
		}
		survDetected := "n/a"
		if survive > 0 {
			survDetected = fmt.Sprintf("%d/%d", detectedSurvivors, survive)
		}
		tbl.AddRow(fmt.Sprintf("%d", q),
			fmt.Sprintf("%d/%d", survive, n),
			survDetected,
			fmt.Sprintf("%d/%d", detectedAll, n),
			fmt.Sprintf("%d/%d", benignFlagged, n))
	}
	if err := tbl.Render(r.cfg.Out); err != nil {
		return err
	}
	r.printf("  (Reading: 'survives' tracks the embedded comb through JPEG quantization;\n" +
		"  'detected' shows whether Decamouflage still flags the recompressed image.)\n\n")
	return nil
}
