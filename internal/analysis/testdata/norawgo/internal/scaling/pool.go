// Package scaling is a fixture: a hand-rolled worker pool in a kernel
// package, which noraw-go must flag (both the WaitGroup and the go stmt).
package scaling

import "sync"

// Sum fans out over a hand-rolled pool.
func Sum(xs []int) int {
	var wg sync.WaitGroup
	out := make([]int, len(xs))
	for i, x := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = x * x
		}()
	}
	wg.Wait()
	total := 0
	for _, v := range out {
		total += v
	}
	return total
}
