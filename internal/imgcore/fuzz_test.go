package imgcore

import (
	"bytes"
	"image/png"
	"io"
	"testing"
)

func pngEncode(w io.Writer, img *Image) error {
	return png.Encode(w, img.ToNRGBA())
}

// FuzzDecode ensures arbitrary byte streams never panic the decoder and
// that every successfully decoded image passes validation.
func FuzzDecode(f *testing.F) {
	// Seed with a valid tiny PNG and assorted junk.
	img := MustNew(3, 2, 3)
	img.Pix[0] = 255
	var buf bytes.Buffer
	if err := encodePNGForFuzz(&buf, img); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("not an image"))
	f.Add([]byte{0x89, 0x50, 0x4E, 0x47})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := decoded.Validate(); verr != nil {
			t.Fatalf("decoded image fails validation: %v", verr)
		}
	})
}

func encodePNGForFuzz(buf *bytes.Buffer, img *Image) error {
	// SavePNG writes to disk; reuse the NRGBA bridge with the png encoder.
	return pngEncode(buf, img)
}
