package detect

// Tests for the pipeline's 8-bit routing: the always-on bit-exact u8
// stages (LUT gray, integer min filter) and the opt-in quantized
// downscale with its FixedTolerance contract.

import (
	"context"
	"math"
	"strings"
	"testing"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/scaling"
	"decamouflage/internal/testutil"
)

// TestPipelineNonIntegralInputFallsBack pins the float64 fallback: an
// image with fractional samples has no u8 view, and the pipeline must
// still match the legacy path bit-for-bit through the float stages.
func TestPipelineNonIntegralInputFallsBack(t *testing.T) {
	e := matrixEnsemble(t, 24, 18, 8, 6)
	img := corpusImage(t, 43, 0, 24, 18)
	for i := range img.Pix {
		img.Pix[i] = math.Min(255, img.Pix[i]+0.25)
	}
	ctx := context.Background()
	pipe, err := e.Detect(ctx, img)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := e.DetectLegacy(ctx, img)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualVerdicts(t, pipe, legacy)
}

// TestGrayLUTBitEqual pins the LUT luminance against grayInto across the
// full 8-bit range (all 256 values appear in every channel position).
func TestGrayLUTBitEqual(t *testing.T) {
	const n = 256 * 3
	pix8 := make([]uint8, n*3)
	pix := make([]float64, n*3)
	for i := range pix8 {
		pix8[i] = uint8((i * 131) % 256)
		pix[i] = float64(pix8[i])
	}
	want := make([]float64, n)
	got := make([]float64, n)
	grayInto(want, pix)
	grayIntoU8(got, pix8)
	if i := testutil.FirstDiff(got, want); i != -1 {
		t.Fatalf("sample %d: LUT %v vs direct %v (ULP %d)",
			i, got[i], want[i], testutil.ULPDiff(got[i], want[i]))
	}
}

// TestQuantizedRoundTripWithinTolerance pins the quantized downscale's
// error contract at the substrate level: the round trip of a quantized
// ensemble must agree with the float64 round trip within a multiple of
// the resize's FixedTolerance (the upscale is weight-bounded, so the
// downscale's per-pixel error grows by at most the up-operator's
// absolute weight sum, well under the 10× margin used here).
func TestQuantizedRoundTripWithinTolerance(t *testing.T) {
	const srcW, srcH, dstW, dstH = 32, 24, 8, 6
	opts := scaling.Options{Algorithm: scaling.Lanczos4}
	img := corpusImage(t, 44, 0, srcW, srcH)

	run := func(quantized bool) *imgcore.Image {
		t.Helper()
		e := matrixEnsemble(t, srcW, srcH, dstW, dstH)
		e.SetQuantized(quantized)
		in := e.pipe.intermediates(img)
		key := stageKey{kind: stageRoundTrip, dstW: dstW, dstH: dstH, sopts: opts}
		up, err := in.roundTrip(context.Background(), key)
		if err != nil {
			t.Fatal(err)
		}
		// Copy out before release returns the pooled plane.
		out := imgcore.MustNew(up.W, up.H, up.C)
		copy(out.Pix, up.Pix)
		in.release()
		return out
	}
	want := run(false)
	got := run(true)
	downH, err := scaling.CoeffFor(srcW, dstW, opts)
	if err != nil {
		t.Fatal(err)
	}
	downV, err := scaling.CoeffFor(srcH, dstH, opts)
	if err != nil {
		t.Fatal(err)
	}
	tol := 10 * scaling.FixedTolerance(downV, downH)
	for i := range want.Pix {
		if !testutil.ApproxEqual(got.Pix[i], want.Pix[i], 0, tol) {
			t.Fatalf("sample %d: quantized %v vs float %v (Δ=%v, tol %v)",
				i, got.Pix[i], want.Pix[i], got.Pix[i]-want.Pix[i], tol)
		}
	}
}

// TestQuantizedEnsembleDeterministic pins that a quantized ensemble is
// itself deterministic (repeat detects agree bit-for-bit) and that the
// toggle reads back.
func TestQuantizedEnsembleDeterministic(t *testing.T) {
	e := matrixEnsemble(t, 32, 24, 8, 6)
	if e.Quantized() {
		t.Fatal("quantized mode on by default")
	}
	e.SetQuantized(true)
	if !e.Quantized() {
		t.Fatal("SetQuantized(true) did not stick")
	}
	img := corpusImage(t, 45, 0, 32, 24)
	ctx := context.Background()
	a, err := e.Detect(ctx, img)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Detect(ctx, img)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualVerdicts(t, a, b)
	// The non-resize members (filtering, steganalysis) are untouched by
	// quantized mode: their scores must equal the float64 pipeline's.
	e2 := matrixEnsemble(t, 32, 24, 8, 6)
	c, err := e2.Detect(ctx, img)
	if err != nil {
		t.Fatal(err)
	}
	sawScaling := false
	for i, v := range a.Verdicts {
		if strings.HasPrefix(v.Method, "scaling/") {
			sawScaling = true
			continue
		}
		if !testutil.BitEqual(v.Score, c.Verdicts[i].Score) {
			t.Errorf("verdict %d (%s): quantized score %v != float %v",
				i, v.Method, v.Score, c.Verdicts[i].Score)
		}
	}
	if !sawScaling {
		t.Error("matrix ensemble reported no scaling members")
	}
}
