// Package cliutil holds the small helpers shared by the cmd/ front ends:
// geometry parsing and calibration file I/O.
package cliutil

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"decamouflage/internal/detect"
)

// ParseSize parses "WxH" (e.g. "224x224") into a width and height.
func ParseSize(s string) (w, h int, err error) {
	parts := strings.Split(strings.ToLower(strings.TrimSpace(s)), "x")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("cliutil: size %q is not WxH", s)
	}
	w, err = strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, fmt.Errorf("cliutil: bad width in %q: %w", s, err)
	}
	h, err = strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, fmt.Errorf("cliutil: bad height in %q: %w", s, err)
	}
	if w <= 0 || h <= 0 {
		return 0, 0, fmt.Errorf("cliutil: size %q must be positive", s)
	}
	return w, h, nil
}

// SaveCalibration writes a calibration as indented JSON.
func SaveCalibration(path string, c *detect.Calibration) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("cliutil: marshal calibration: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("cliutil: write calibration: %w", err)
	}
	return nil
}

// LoadCalibration reads a calibration JSON file.
func LoadCalibration(path string) (*detect.Calibration, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cliutil: read calibration: %w", err)
	}
	return detect.UnmarshalCalibration(data)
}
