// Package scaling is a fixture: malformed suppressions are findings
// themselves and do not silence anything.
package scaling

// NoCheckName has a directive that names no check.
func NoCheckName(a, b float64) bool {
	//declint:ignore
	return a == b
}

// UnknownCheck names a check that does not exist.
func UnknownCheck(a, b float64) bool {
	//declint:ignore nosuchcheck because reasons
	return a == b
}

// MissingReason names a real check but gives no reason, so the float
// comparison below it is still reported.
func MissingReason(a, b float64) bool {
	//declint:ignore floateq
	return a == b
}
