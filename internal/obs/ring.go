package obs

// ringBuf is a fixed-capacity overwrite-oldest ring. It is not
// goroutine-safe on its own; owners (Recorder, TailSampler) serialize
// access under their mutex, keeping the hot push path to one slot write
// and two index updates.
type ringBuf[T any] struct {
	buf  []T
	next int // slot the next push writes
	full bool
}

// newRingBuf returns a ring holding the last capacity values (min 1).
func newRingBuf[T any](capacity int) *ringBuf[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &ringBuf[T]{buf: make([]T, capacity)}
}

// push stores v, overwriting the oldest value once full, and reports
// whether a value was evicted.
func (r *ringBuf[T]) push(v T) (evicted bool) {
	evicted = r.full
	r.buf[r.next] = v
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	return evicted
}

// size returns the number of retained values.
func (r *ringBuf[T]) size() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// snapshot returns the retained values, oldest first.
func (r *ringBuf[T]) snapshot() []T {
	out := make([]T, 0, r.size())
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	return append(out, r.buf[:r.next]...)
}
