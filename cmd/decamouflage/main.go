// Command decamouflage classifies images as benign or image-scaling
// attacks.
//
// The steganalysis method (CSP) runs with no calibration; the scaling and
// filtering methods join the ensemble when a calibration file (produced by
// cmd/calibrate) is supplied.
//
// Usage:
//
//	decamouflage -dst 224x224 image.png ...
//	decamouflage -dst 224x224 -calibration cal.json -alg bilinear image.png
//	decamouflage -dst 32x32 -dir ./uploads -json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"decamouflage/internal/cliutil"
	"decamouflage/internal/detect"
	"decamouflage/internal/imgcore"
	"decamouflage/internal/scaling"
	"decamouflage/internal/steg"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "decamouflage:", err)
		os.Exit(1)
	}
}

type result struct {
	Path    string  `json:"path"`
	Attack  bool    `json:"attack"`
	Votes   int     `json:"votes"`
	Methods int     `json:"methods"`
	CSP     float64 `json:"csp"`
	Detail  string  `json:"detail,omitempty"`
	// TargetEstimate is the forensic estimate of the attacker's intended
	// model-input geometry ("WxH"), present only for flagged images whose
	// spectrum shows measurable replicas.
	TargetEstimate string `json:"target_estimate,omitempty"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("decamouflage", flag.ContinueOnError)
	var (
		dst      = fs.String("dst", "224x224", "model input geometry WxH (the protected scaler's output)")
		alg      = fs.String("alg", "bilinear", "scaling algorithm used by the protected pipeline")
		calPath  = fs.String("calibration", "", "calibration JSON from cmd/calibrate (enables scaling+filtering methods)")
		dir      = fs.String("dir", "", "scan every PNG/JPEG in a directory")
		asJSON   = fs.Bool("json", false, "emit JSON lines")
		strictly = fs.Bool("strict", false, "exit nonzero when any attack is detected")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if *dir != "" {
		entries, err := os.ReadDir(*dir)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			ext := strings.ToLower(filepath.Ext(e.Name()))
			if ext == ".png" || ext == ".jpg" || ext == ".jpeg" {
				paths = append(paths, filepath.Join(*dir, e.Name()))
			}
		}
	}
	if len(paths) == 0 {
		return fmt.Errorf("no images given (pass files or -dir)")
	}
	dstW, dstH, err := cliutil.ParseSize(*dst)
	if err != nil {
		return err
	}
	algorithm, err := scaling.ParseAlgorithm(*alg)
	if err != nil {
		return err
	}

	var cal *detect.Calibration
	if *calPath != "" {
		cal, err = cliutil.LoadCalibration(*calPath)
		if err != nil {
			return err
		}
	}

	ctx := context.Background()
	attacks := 0
	for _, p := range paths {
		img, err := imgcore.Load(p)
		if err != nil {
			return err
		}
		res, err := classify(ctx, img, dstW, dstH, algorithm, cal)
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		res.Path = p
		if res.Attack {
			attacks++
		}
		if *asJSON {
			data, err := json.Marshal(res)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, string(data))
		} else {
			label := "BENIGN"
			if res.Attack {
				label = "ATTACK"
			}
			extra := res.Detail
			if res.TargetEstimate != "" {
				extra += ", attacker target ~" + res.TargetEstimate
			}
			fmt.Fprintf(out, "%-6s %s (votes %d/%d, CSP=%.0f%s)\n",
				label, p, res.Votes, res.Methods, res.CSP, extra)
		}
	}
	if *strictly && attacks > 0 {
		return fmt.Errorf("%d attack image(s) detected", attacks)
	}
	return nil
}

// classify builds the richest detector set the configuration allows and
// majority-votes.
func classify(ctx context.Context, img *imgcore.Image, dstW, dstH int, alg scaling.Algorithm, cal *detect.Calibration) (*result, error) {
	var detectors []*detect.Detector
	detail := ""

	stegDet, err := detect.NewDetector(detect.NewStegScorer(steg.Options{}), detect.DefaultCSPThreshold())
	if err != nil {
		return nil, err
	}
	detectors = append(detectors, stegDet)

	if cal != nil {
		scaler, err := scaling.NewScaler(img.W, img.H, dstW, dstH, scaling.Options{Algorithm: alg})
		if err != nil {
			return nil, err
		}
		if th, ok := cal.Get("scaling/MSE"); ok {
			sc, err := detect.NewScalingScorer(scaler, detect.MSE)
			if err != nil {
				return nil, err
			}
			d, err := detect.NewDetector(sc, th)
			if err != nil {
				return nil, err
			}
			detectors = append(detectors, d)
		}
		if th, ok := cal.Get("filtering/SSIM"); ok {
			fc, err := detect.NewFilteringScorer(2, detect.SSIM)
			if err != nil {
				return nil, err
			}
			d, err := detect.NewDetector(fc, th)
			if err != nil {
				return nil, err
			}
			detectors = append(detectors, d)
		}
	} else {
		detail = ", steganalysis only"
	}
	ens, err := detect.NewEnsemble(detectors...)
	if err != nil {
		return nil, err
	}
	v, err := ens.Detect(ctx, img)
	if err != nil {
		return nil, err
	}
	res := &result{Attack: v.Attack, Votes: v.Votes, Methods: len(v.Verdicts), Detail: detail}
	for _, verdict := range v.Verdicts {
		if verdict.Method == "steganalysis/CSP" {
			res.CSP = verdict.Score
		}
	}
	if v.Attack {
		if w, h, ok := steg.EstimateTargetSize(img, steg.Options{}); ok {
			res.TargetEstimate = fmt.Sprintf("%dx%d", w, h)
		}
	}
	return res, nil
}
