package detect

import (
	"context"
	"errors"
	"testing"

	"decamouflage/internal/attack"
	"decamouflage/internal/dataset"
	"decamouflage/internal/imgcore"
	"decamouflage/internal/steg"
)

func TestNewEnsembleValidation(t *testing.T) {
	if _, err := NewEnsemble(); err == nil {
		t.Error("empty ensemble accepted")
	}
	if _, err := NewEnsemble(nil); err == nil {
		t.Error("nil detector accepted")
	}
}

func TestEnsembleMajorityVote(t *testing.T) {
	tests := []struct {
		name  string
		votes []bool
		want  bool
	}{
		{"all attack", []bool{true, true, true}, true},
		{"two of three", []bool{true, true, false}, true},
		{"one of three", []bool{true, false, false}, false},
		{"none", []bool{false, false, false}, false},
		{"tie breaks benign", []bool{true, false}, false},
		{"single attack", []bool{true}, true},
	}
	img := imgcore.MustNew(8, 8, 1)
	img.Fill(100)
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var ds []*Detector
			for i, v := range tt.votes {
				ds = append(ds, stubDetector(t, "stub", float64(i), v))
			}
			e, err := NewEnsemble(ds...)
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.Detect(context.Background(), img)
			if err != nil {
				t.Fatal(err)
			}
			if got.Attack != tt.want {
				t.Errorf("Attack = %v, want %v (votes %d)", got.Attack, tt.want, got.Votes)
			}
			wantVotes := 0
			for _, v := range tt.votes {
				if v {
					wantVotes++
				}
			}
			if got.Votes != wantVotes {
				t.Errorf("Votes = %d, want %d", got.Votes, wantVotes)
			}
			if len(got.Verdicts) != len(tt.votes) {
				t.Errorf("Verdicts len = %d", len(got.Verdicts))
			}
		})
	}
}

func TestEnsemblePropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	bad, err := NewDetector(&stubScorer{name: "bad", err: boom}, Threshold{1, Above})
	if err != nil {
		t.Fatal(err)
	}
	good := stubDetector(t, "good", 0, false)
	e, err := NewEnsemble(good, bad)
	if err != nil {
		t.Fatal(err)
	}
	img := imgcore.MustNew(4, 4, 1)
	img.Fill(1)
	if _, err := e.Detect(context.Background(), img); !errors.Is(err, boom) {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestEnsembleContextCancellation(t *testing.T) {
	e, err := NewEnsemble(stubDetector(t, "a", 0, false))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	img := imgcore.MustNew(4, 4, 1)
	img.Fill(1)
	if _, err := e.Detect(ctx, img); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled context not honoured: %v", err)
	}
}

func TestEnsembleRejectsInvalidImage(t *testing.T) {
	e, err := NewEnsemble(stubDetector(t, "a", 0, false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Detect(context.Background(), &imgcore.Image{}); err == nil {
		t.Error("empty image accepted")
	}
}

func TestEnsembleDetectorsAccessorIsCopy(t *testing.T) {
	d := stubDetector(t, "a", 0, false)
	e, err := NewEnsemble(d)
	if err != nil {
		t.Fatal(err)
	}
	got := e.Detectors()
	got[0] = nil
	if e.Detectors()[0] == nil {
		t.Error("Detectors() exposes internal slice")
	}
}

func TestNewDefaultEnsembleValidation(t *testing.T) {
	if _, err := NewDefaultEnsemble(DefaultConfig{}); err == nil {
		t.Error("missing scaler accepted")
	}
	s := mustScaler(t, 64, 64, 16, 16)
	cfg := DefaultConfig{
		Scaler:             s,
		ScalingThreshold:   Threshold{Value: 500, Direction: Above},
		FilteringThreshold: Threshold{Value: 0.5, Direction: Below},
	}
	e, err := NewDefaultEnsemble(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := e.Detectors()
	if len(ds) != 3 {
		t.Fatalf("default ensemble has %d detectors", len(ds))
	}
	names := map[string]bool{}
	for _, d := range ds {
		names[d.Name()] = true
	}
	for _, want := range []string{"scaling/MSE", "filtering/SSIM", "steganalysis/CSP"} {
		if !names[want] {
			t.Errorf("missing detector %q (have %v)", want, names)
		}
	}
	// Invalid thresholds propagate.
	if _, err := NewDefaultEnsemble(DefaultConfig{Scaler: s}); err == nil {
		t.Error("zero thresholds accepted")
	}
}

// End-to-end: calibrate white-box on one corpus, detect on the other —
// the paper's central protocol, in miniature.
func TestEndToEndWhiteBoxPipeline(t *testing.T) {
	const (
		srcW, srcH = 128, 128
		dstW, dstH = 32, 32
		nTrain     = 8
		nEval      = 8
	)
	scaler := mustScaler(t, srcW, srcH, dstW, dstH)

	trainSrc, err := dataset.NewGenerator(dataset.Config{Corpus: dataset.NeurIPSLike, W: srcW, H: srcH, C: 3, Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	trainTgt, err := dataset.NewGenerator(dataset.Config{Corpus: dataset.NeurIPSLike, W: dstW, H: dstH, C: 3, Seed: 101})
	if err != nil {
		t.Fatal(err)
	}
	evalSrc, err := dataset.NewGenerator(dataset.Config{Corpus: dataset.CaltechLike, W: srcW, H: srcH, C: 3, Seed: 200})
	if err != nil {
		t.Fatal(err)
	}
	evalTgt, err := dataset.NewGenerator(dataset.Config{Corpus: dataset.CaltechLike, W: dstW, H: dstH, C: 3, Seed: 201})
	if err != nil {
		t.Fatal(err)
	}

	craft := func(g, tg *dataset.Generator, i int) *imgcore.Image {
		res, err := attack.Craft(g.Image(i), tg.Image(i), attack.Config{Scaler: scaler, Eps: 2})
		if err != nil {
			t.Fatal(err)
		}
		return res.Attack
	}

	ss, err := NewScalingScorer(scaler, MSE)
	if err != nil {
		t.Fatal(err)
	}
	var trainBenign, trainAttack []float64
	for i := 0; i < nTrain; i++ {
		b, err := ss.Score(trainSrc.Image(i))
		if err != nil {
			t.Fatal(err)
		}
		a, err := ss.Score(craft(trainSrc, trainTgt, i))
		if err != nil {
			t.Fatal(err)
		}
		trainBenign = append(trainBenign, b)
		trainAttack = append(trainAttack, a)
	}
	wb, err := CalibrateWhiteBox(trainBenign, trainAttack)
	if err != nil {
		t.Fatal(err)
	}
	if wb.TrainAccuracy < 0.95 {
		t.Fatalf("train accuracy %v too low (benign %v attack %v)", wb.TrainAccuracy, trainBenign, trainAttack)
	}

	det, err := NewDetector(ss, wb.Threshold)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < nEval; i++ {
		v, err := det.Detect(evalSrc.Image(i))
		if err != nil {
			t.Fatal(err)
		}
		if !v.Attack {
			correct++
		}
		v, err = det.Detect(craft(evalSrc, evalTgt, i))
		if err != nil {
			t.Fatal(err)
		}
		if v.Attack {
			correct++
		}
	}
	acc := float64(correct) / float64(2*nEval)
	if acc < 0.9 {
		t.Errorf("cross-dataset accuracy = %v, want >= 0.9 (threshold transfer failed)", acc)
	}
}

// End-to-end ensemble on attack + benign images.
func TestEndToEndEnsemble(t *testing.T) {
	scaler := mustScaler(t, 128, 128, 32, 32)
	src, err := dataset.NewGenerator(dataset.Config{Corpus: dataset.CaltechLike, W: 128, H: 128, C: 3, Seed: 300})
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := dataset.NewGenerator(dataset.Config{Corpus: dataset.CaltechLike, W: 32, H: 32, C: 3, Seed: 301})
	if err != nil {
		t.Fatal(err)
	}
	// Calibrate scaling and filtering thresholds on a handful of images.
	ss, err := NewScalingScorer(scaler, MSE)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := NewFilteringScorer(2, SSIM)
	if err != nil {
		t.Fatal(err)
	}
	var sb, sa, fb, fa []float64
	for i := 0; i < 6; i++ {
		b := src.Image(i)
		res, err := attack.Craft(b, tgt.Image(i), attack.Config{Scaler: scaler, Eps: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []struct {
			sc   Scorer
			img  *imgcore.Image
			dest *[]float64
		}{
			{ss, b, &sb}, {ss, res.Attack, &sa}, {fs, b, &fb}, {fs, res.Attack, &fa},
		} {
			v, err := p.sc.Score(p.img)
			if err != nil {
				t.Fatal(err)
			}
			*p.dest = append(*p.dest, v)
		}
	}
	swb, err := CalibrateWhiteBox(sb, sa)
	if err != nil {
		t.Fatal(err)
	}
	fwb, err := CalibrateWhiteBox(fb, fa)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewDefaultEnsemble(DefaultConfig{
		Scaler:             scaler,
		ScalingThreshold:   swb.Threshold,
		FilteringThreshold: fwb.Threshold,
		StegOptions:        steg.Options{},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	correct := 0
	const n = 5
	for i := 6; i < 6+n; i++ {
		b := src.Image(i)
		res, err := attack.Craft(b, tgt.Image(i), attack.Config{Scaler: scaler, Eps: 2})
		if err != nil {
			t.Fatal(err)
		}
		vb, err := e.Detect(ctx, b)
		if err != nil {
			t.Fatal(err)
		}
		if !vb.Attack {
			correct++
		}
		va, err := e.Detect(ctx, res.Attack)
		if err != nil {
			t.Fatal(err)
		}
		if va.Attack {
			correct++
		}
	}
	if correct < 2*n-1 {
		t.Errorf("ensemble correct %d/%d", correct, 2*n)
	}
}
