// Quickstart: craft an image-scaling attack, then catch it with each of
// Decamouflage's three detection methods and the ensemble.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"decamouflage"
	"decamouflage/internal/dataset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// The protected pipeline: a model taking 32x32 inputs fed by a
	// bilinear downscaler — the vulnerable OpenCV/TensorFlow semantics.
	const srcW, srcH, dstW, dstH = 128, 128, 32, 32
	scaler, err := decamouflage.NewScaler(srcW, srcH, dstW, dstH, decamouflage.Bilinear)
	if err != nil {
		log.Fatal(err)
	}

	// Synthetic stand-ins for a benign photo ("sheep") and the image the
	// adversary wants the model to see ("wolf").
	covers, err := dataset.NewGenerator(dataset.Config{
		Corpus: dataset.CaltechLike, W: srcW, H: srcH, C: 3, Seed: 2024,
	})
	if err != nil {
		log.Fatal(err)
	}
	targets, err := dataset.NewGenerator(dataset.Config{
		Corpus: dataset.CaltechLike, W: dstW, H: dstH, C: 3, Seed: 4048,
	})
	if err != nil {
		log.Fatal(err)
	}
	sheep := covers.Image(0)
	wolf := targets.Image(0)

	// The adversary crafts the camouflage image.
	res, err := decamouflage.CraftAttack(sheep, wolf, scaler, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attack crafted: L-inf to target %.2f, perturbation MSE %.1f\n",
		res.MaxViolation, res.PerturbationMSE)

	// Method 3 (steganalysis) needs zero calibration: CSP >= 2 => attack.
	stegDet, err := decamouflage.NewSteganalysisDetector()
	if err != nil {
		log.Fatal(err)
	}
	for name, img := range map[string]*decamouflage.Image{"benign": sheep, "attack": res.Attack} {
		v, err := stegDet.Detect(img)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("steganalysis on %-6s image: CSP=%.0f -> attack=%v\n", name, v.Score, v.Attack)
	}

	// Methods 1 and 2 need thresholds. Calibrate white-box on a small
	// labelled corpus (in production, use cmd/calibrate once, offline).
	var sb, sa, fb, fa []float64
	for i := 1; i <= 10; i++ {
		benign := covers.Image(i)
		atk, err := decamouflage.CraftAttack(benign, targets.Image(i), scaler, 2)
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range []struct {
			img  *decamouflage.Image
			dstB *[]float64
			dstF *[]float64
		}{
			{benign, &sb, &fb},
			{atk.Attack, &sa, &fa},
		} {
			v, err := decamouflage.ScoreScaling(scaler, decamouflage.MSE, s.img)
			if err != nil {
				log.Fatal(err)
			}
			*s.dstB = append(*s.dstB, v)
			v, err = decamouflage.ScoreFiltering(2, decamouflage.SSIM, s.img)
			if err != nil {
				log.Fatal(err)
			}
			*s.dstF = append(*s.dstF, v)
		}
	}
	scalingTh, acc, err := decamouflage.CalibrateWhiteBox(sb, sa)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scaling/MSE threshold %.1f (train accuracy %.0f%%)\n", scalingTh.Value, acc*100)
	filteringTh, _, err := decamouflage.CalibrateWhiteBox(fb, fa)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("filtering/SSIM threshold %.3f\n", filteringTh.Value)

	// The deployable system: three methods under majority voting.
	ens, err := decamouflage.NewEnsemble(scaler, scalingTh, filteringTh)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	for name, img := range map[string]*decamouflage.Image{"benign": sheep, "attack": res.Attack} {
		v, err := decamouflage.Detect(ctx, ens, img)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ensemble on %-6s image: votes %d/%d -> attack=%v\n",
			name, v.Votes, len(v.Verdicts), v.Attack)
	}
}
