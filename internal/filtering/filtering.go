// Package filtering implements the spatial filters used by Decamouflage's
// filtering-detection method and by the prevention baselines: rank filters
// (minimum, maximum, median — the paper's Figure 4), box and Gaussian
// smoothing. All filters use replicate border handling, matching OpenCV's
// default BORDER_REPLICATE semantics for small kernels.
package filtering

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/parallel"
)

// ErrBadWindow indicates an invalid filter window size.
var ErrBadWindow = errors.New("filtering: window size must be a positive odd-or-even integer >= 2 for rank filters")

// Minimum applies a size×size minimum filter (grayscale erosion) to each
// channel independently: every output sample is the smallest sample in its
// window. The paper uses the 2×2 minimum filter to strip the embedded
// target pixels out of attack images. The implementation is the separable
// van Herk–Gil–Werman sweep in fast.go — O(1) comparisons per sample —
// whose output is bit-identical to the naive window scan for finite inputs.
func Minimum(img *imgcore.Image, size int) (*imgcore.Image, error) {
	return minMaxFilter(context.Background(), img, size, false)
}

// MinimumCtx is Minimum honouring ctx cancellation in its parallel sweeps,
// for callers (the detection pipeline) that thread a request context
// through every stage. Output is bit-identical to Minimum's.
func MinimumCtx(ctx context.Context, img *imgcore.Image, size int) (*imgcore.Image, error) {
	return minMaxFilter(ctx, img, size, false)
}

// Maximum applies a size×size maximum filter (grayscale dilation). Like
// Minimum, it runs the separable van Herk–Gil–Werman sweep.
func Maximum(img *imgcore.Image, size int) (*imgcore.Image, error) {
	return minMaxFilter(context.Background(), img, size, true)
}

// Median applies a size×size median filter via the per-row sliding sorted
// window in fast.go, bit-identical to the naive collect-and-select for
// finite inputs.
func Median(img *imgcore.Image, size int) (*imgcore.Image, error) {
	return medianFilter(context.Background(), img, size)
}

// Rank applies a size×size rank filter selecting the k-th smallest sample
// (k is zero-based) in each window.
func Rank(img *imgcore.Image, size, k int) (*imgcore.Image, error) {
	if k < 0 || k >= size*size {
		return nil, fmt.Errorf("filtering: rank %d out of range [0,%d)", k, size*size)
	}
	return rankFilter(context.Background(), img, size, func(buf []float64) float64 {
		sort.Float64s(buf)
		return buf[k]
	})
}

func pickMin(buf []float64) float64 {
	m := buf[0]
	for _, v := range buf[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func pickMax(buf []float64) float64 {
	m := buf[0]
	for _, v := range buf[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

func pickMedian(buf []float64) float64 {
	sort.Float64s(buf)
	n := len(buf)
	if n%2 == 1 {
		return buf[n/2]
	}
	return (buf[n/2-1] + buf[n/2]) / 2
}

// minFilterWork is the per-chunk grain (in window-weighted samples) below
// which a filter sweep stays on the calling goroutine.
const minFilterWork = 1 << 14

// rankFilter runs a generic sliding-window reduction — the naive O(size²)
// per-pixel reference the fast kernels in fast.go are pinned against, and
// the implementation behind the generic Rank. Window anchoring follows the
// OpenCV convention: for even sizes the anchor is the top-left sample of
// the window (offsets [0, size)), for odd sizes the window is centered
// (offsets [-size/2, size/2]). Rows are processed in parallel bands; pick
// must therefore be a pure function of its buffer. The window buffer is
// allocated once per band at its full size² length and refilled in place
// across every pixel of the band, so the sweep itself never reallocates.
func rankFilter(ctx context.Context, img *imgcore.Image, size int, pick func([]float64) float64, popts ...parallel.Option) (*imgcore.Image, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	if size < 2 {
		return nil, fmt.Errorf("%w: got %d", ErrBadWindow, size)
	}
	lo, hi := windowOffsets(size)

	out := img.Clone()
	rowCost := img.W * img.C * size * size
	opts := append([]parallel.Option{
		parallel.Grain(parallel.GrainForWidth(rowCost, minFilterWork)),
	}, popts...)
	err := parallel.For(ctx, img.H, func(yLo, yHi int) error {
		buf := make([]float64, size*size)
		for y := yLo; y < yHi; y++ {
			for x := 0; x < img.W; x++ {
				for c := 0; c < img.C; c++ {
					k := 0
					for dy := lo; dy <= hi; dy++ {
						for dx := lo; dx <= hi; dx++ {
							buf[k] = img.AtClamped(x+dx, y+dy, c)
							k++
						}
					}
					out.Set(x, y, c, pick(buf))
				}
			}
		}
		return nil
	}, opts...)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Box applies a size×size mean filter via the separable running-sum sweep
// in fast.go. Its summation order differs from the naive window scan, so
// outputs match the naive reference to tolerance rather than bit-exactly.
func Box(img *imgcore.Image, size int) (*imgcore.Image, error) {
	return boxFilter(context.Background(), img, size)
}

// box is the fast Box with parallel options threaded through for the
// serial-vs-parallel equivalence tests.
func box(ctx context.Context, img *imgcore.Image, size int, popts ...parallel.Option) (*imgcore.Image, error) {
	return boxFilter(ctx, img, size, popts...)
}

// boxNaive is the per-window reference mean filter the fast path is
// tolerance-tested against.
func boxNaive(ctx context.Context, img *imgcore.Image, size int, popts ...parallel.Option) (*imgcore.Image, error) {
	if size < 2 {
		return nil, fmt.Errorf("%w: got %d", ErrBadWindow, size)
	}
	return rankFilter(ctx, img, size, func(buf []float64) float64 {
		var s float64
		for _, v := range buf {
			s += v
		}
		return s / float64(len(buf))
	}, popts...)
}

// Gaussian applies Gaussian smoothing with the given radius and sigma to
// each channel independently (separable implementation).
func Gaussian(img *imgcore.Image, radius int, sigma float64) (*imgcore.Image, error) {
	return gaussian(context.Background(), img, radius, sigma)
}

// gaussian is Gaussian with parallel options threaded through for the
// serial-vs-parallel equivalence tests.
func gaussian(ctx context.Context, img *imgcore.Image, radius int, sigma float64, popts ...parallel.Option) (*imgcore.Image, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	if radius < 1 || sigma <= 0 {
		return nil, fmt.Errorf("filtering: invalid gaussian radius %d sigma %v", radius, sigma)
	}
	kern := make([]float64, 2*radius+1)
	var sum float64
	for i := -radius; i <= radius; i++ {
		v := gaussAt(float64(i), sigma)
		kern[i+radius] = v
		sum += v
	}
	for i := range kern {
		kern[i] /= sum
	}
	out := img.Clone()
	tmp := img.Clone()
	rowCost := img.W * img.C * (2*radius + 1)
	opts := append([]parallel.Option{
		parallel.Grain(parallel.GrainForWidth(rowCost, minFilterWork)),
	}, popts...)
	// Horizontal: chunks own disjoint row bands of tmp.
	err := parallel.For(ctx, img.H, func(yLo, yHi int) error {
		for y := yLo; y < yHi; y++ {
			for x := 0; x < img.W; x++ {
				for c := 0; c < img.C; c++ {
					var s float64
					for k := -radius; k <= radius; k++ {
						s += kern[k+radius] * img.AtClamped(x+k, y, c)
					}
					tmp.Set(x, y, c, s)
				}
			}
		}
		return nil
	}, opts...)
	if err != nil {
		return nil, err
	}
	// Vertical: chunks own disjoint row bands of out, reading all of tmp.
	err = parallel.For(ctx, img.H, func(yLo, yHi int) error {
		for y := yLo; y < yHi; y++ {
			for x := 0; x < img.W; x++ {
				for c := 0; c < img.C; c++ {
					var s float64
					for k := -radius; k <= radius; k++ {
						s += kern[k+radius] * tmp.AtClamped(x, y+k, c)
					}
					out.Set(x, y, c, s)
				}
			}
		}
		return nil
	}, opts...)
	if err != nil {
		return nil, err
	}
	return out, nil
}

func gaussAt(x, sigma float64) float64 {
	return math.Exp(-x * x / (2 * sigma * sigma))
}
