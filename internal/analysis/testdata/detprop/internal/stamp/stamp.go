// Fixture helper: a non-kernel package whose API reads the clock one call
// below its surface, so kernel callers are two hops from the source.
package stamp

import "time"

// ID derives a token from the current time.
func ID() string {
	return now().Format(time.RFC3339)
}

func now() time.Time {
	return time.Now()
}
