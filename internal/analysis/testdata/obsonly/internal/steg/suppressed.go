package steg

//declint:ignore obsonly fixture demonstrates an audited direct import
import _ "runtime/pprof"
