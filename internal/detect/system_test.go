package detect

import (
	"context"
	"strings"
	"testing"

	"decamouflage/internal/steg"
	"decamouflage/internal/testutil"
)

func validConfig() *SystemConfig {
	return &SystemConfig{
		DstW: 16, DstH: 16,
		Algorithm: "bilinear",
		Thresholds: map[string]Threshold{
			"scaling/MSE":    {Value: 500, Direction: Above},
			"filtering/SSIM": {Value: 0.5, Direction: Below},
		},
	}
}

func TestSystemConfigValidate(t *testing.T) {
	if err := validConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := validConfig()
	bad.DstW = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero dst accepted")
	}
	bad = validConfig()
	bad.Algorithm = "bogus"
	if err := bad.Validate(); err == nil {
		t.Error("bogus algorithm accepted")
	}
	bad = validConfig()
	bad.FilterWindow = 1
	if err := bad.Validate(); err == nil {
		t.Error("window 1 accepted")
	}
	bad = validConfig()
	bad.Thresholds["x"] = Threshold{}
	if err := bad.Validate(); err == nil {
		t.Error("invalid threshold accepted")
	}
}

func TestSystemConfigRoundTrip(t *testing.T) {
	cfg := validConfig()
	cfg.Steg = steg.Options{BinarizeThreshold: 0.7, MinArea: 8}
	data, err := MarshalSystemConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSystemConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Algorithm != "bilinear" || !testutil.BitEqual(back.Steg.BinarizeThreshold, 0.7) {
		t.Errorf("round trip lost data: %+v", back)
	}
	if _, err := UnmarshalSystemConfig([]byte("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := UnmarshalSystemConfig([]byte(`{"dst_w":0}`)); err == nil {
		t.Error("invalid config accepted")
	}
	bad := validConfig()
	bad.DstH = -1
	if _, err := MarshalSystemConfig(bad); err == nil {
		t.Error("marshal of invalid config accepted")
	}
}

func TestBuildSystem(t *testing.T) {
	cfg := validConfig()
	ens, err := BuildSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := ens.Detectors()
	if len(ds) != 3 {
		t.Fatalf("detector count = %d, want 3 (2 configured + steg default)", len(ds))
	}
	names := map[string]bool{}
	for _, d := range ds {
		names[d.Name()] = true
	}
	for _, want := range []string{"scaling/MSE", "filtering/SSIM", "steganalysis/CSP"} {
		if !names[want] {
			t.Errorf("missing %q", want)
		}
	}
	// Works end to end on a benign image.
	img := corpusImage(t, 9, 0, 64, 64)
	v, err := ens.Detect(context.Background(), img)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Verdicts) != 3 {
		t.Errorf("verdicts = %d", len(v.Verdicts))
	}
}

func TestBuildSystemAllMethods(t *testing.T) {
	cfg := validConfig()
	cfg.Thresholds["scaling/SSIM"] = Threshold{Value: 0.4, Direction: Below}
	cfg.Thresholds["filtering/MSE"] = Threshold{Value: 900, Direction: Above}
	cfg.Thresholds["steganalysis/CSP"] = Threshold{Value: 3, Direction: Above}
	cfg.SrcW, cfg.SrcH = 64, 64
	cfg.FilterWindow = 3
	ens, err := BuildSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ens.Detectors()) != 5 {
		t.Errorf("detector count = %d, want 5", len(ens.Detectors()))
	}
}

func TestBuildSystemRejectsInvalid(t *testing.T) {
	bad := validConfig()
	bad.Algorithm = ""
	if _, err := BuildSystem(bad); err == nil {
		t.Error("invalid config accepted by BuildSystem")
	}
}

func TestMatchModels(t *testing.T) {
	hits := MatchModels(224, 224, 0)
	if len(hits) < 4 {
		t.Fatalf("224x224 matched %d models", len(hits))
	}
	for _, m := range hits {
		if m.W != 224 || m.H != 224 {
			t.Errorf("bad match %+v", m)
		}
	}
	// Tolerance picks up AlexNet (227) too.
	withTol := MatchModels(224, 224, 3)
	if len(withTol) != len(hits)+1 {
		t.Errorf("tol=3 matched %d, want %d", len(withTol), len(hits)+1)
	}
	found := false
	for _, m := range withTol {
		if strings.Contains(m.Model, "AlexNet") {
			found = true
		}
	}
	if !found {
		t.Error("AlexNet not matched at tol=3")
	}
	if got := MatchModels(999, 999, 2); len(got) != 0 {
		t.Errorf("bogus size matched %v", got)
	}
	// DAVE-2's non-square geometry.
	if got := MatchModels(200, 66, 0); len(got) != 1 {
		t.Errorf("DAVE-2 match = %v", got)
	}
}
