package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestRunX9(t *testing.T) {
	var out strings.Builder
	cfg := testConfig(t, &out)
	cfg.N = 40
	cfg.SrcW, cfg.SrcH, cfg.DstW, cfg.DstH = 128, 128, 32, 32
	r := NewRunner(cfg)
	if err := r.Run(context.Background(), "X9"); err != nil {
		t.Fatal(err)
	}
	t.Log(out.String())
	if !strings.Contains(out.String(), "Scale-ratio sweep") {
		t.Error("missing table")
	}
}
