package decamouflage_test

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"decamouflage"
	"decamouflage/internal/dataset"
)

func genPair(t *testing.T, i int) (src, tgt *decamouflage.Image) {
	t.Helper()
	g, err := dataset.NewGenerator(dataset.Config{Corpus: dataset.CaltechLike, W: 96, H: 96, C: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	tg, err := dataset.NewGenerator(dataset.Config{Corpus: dataset.CaltechLike, W: 24, H: 24, C: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return g.Image(i), tg.Image(i)
}

func TestPublicQuickstartFlow(t *testing.T) {
	scaler, err := decamouflage.NewScaler(96, 96, 24, 24, decamouflage.Bilinear)
	if err != nil {
		t.Fatal(err)
	}
	src, tgt := genPair(t, 0)

	// Craft an attack through the public API.
	res, err := decamouflage.CraftAttack(src, tgt, scaler, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("attack did not converge: %+v", res)
	}

	// Steganalysis detector needs no calibration.
	det, err := decamouflage.NewSteganalysisDetector()
	if err != nil {
		t.Fatal(err)
	}
	vb, err := det.Detect(src)
	if err != nil {
		t.Fatal(err)
	}
	if vb.Attack {
		t.Errorf("benign flagged: %+v", vb)
	}
	va, err := det.Detect(res.Attack)
	if err != nil {
		t.Fatal(err)
	}
	if !va.Attack {
		t.Errorf("attack missed: %+v", va)
	}
}

func TestPublicCalibrationAndEnsemble(t *testing.T) {
	scaler, err := decamouflage.NewScaler(96, 96, 24, 24, decamouflage.Bilinear)
	if err != nil {
		t.Fatal(err)
	}
	var sb, sa, fb, fa []float64
	for i := 0; i < 5; i++ {
		src, tgt := genPair(t, i)
		res, err := decamouflage.CraftAttack(src, tgt, scaler, 2)
		if err != nil {
			t.Fatal(err)
		}
		b, err := decamouflage.ScoreScaling(scaler, decamouflage.MSE, src)
		if err != nil {
			t.Fatal(err)
		}
		a, err := decamouflage.ScoreScaling(scaler, decamouflage.MSE, res.Attack)
		if err != nil {
			t.Fatal(err)
		}
		sb, sa = append(sb, b), append(sa, a)
		b, err = decamouflage.ScoreFiltering(2, decamouflage.SSIM, src)
		if err != nil {
			t.Fatal(err)
		}
		a, err = decamouflage.ScoreFiltering(2, decamouflage.SSIM, res.Attack)
		if err != nil {
			t.Fatal(err)
		}
		fb, fa = append(fb, b), append(fa, a)
	}
	sTh, acc, err := decamouflage.CalibrateWhiteBox(sb, sa)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Fatalf("white-box training accuracy %v", acc)
	}
	fTh, _, err := decamouflage.CalibrateWhiteBox(fb, fa)
	if err != nil {
		t.Fatal(err)
	}
	ens, err := decamouflage.NewEnsemble(scaler, sTh, fTh)
	if err != nil {
		t.Fatal(err)
	}
	src, tgt := genPair(t, 7)
	res, err := decamouflage.CraftAttack(src, tgt, scaler, 2)
	if err != nil {
		t.Fatal(err)
	}
	v, err := decamouflage.Detect(context.Background(), ens, res.Attack)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Attack {
		t.Errorf("ensemble missed attack: %+v", v)
	}
	v, err = decamouflage.Detect(context.Background(), ens, src)
	if err != nil {
		t.Fatal(err)
	}
	if v.Attack {
		t.Errorf("ensemble flagged benign: %+v", v)
	}
	if _, err := decamouflage.Detect(context.Background(), nil, src); err == nil {
		t.Error("nil ensemble accepted")
	}
}

func TestPublicDetectBatch(t *testing.T) {
	scaler, err := decamouflage.NewScaler(96, 96, 24, 24, decamouflage.Bilinear)
	if err != nil {
		t.Fatal(err)
	}
	// Steganalysis-only ensemble avoids calibration in this test.
	det, err := decamouflage.NewSteganalysisDetector()
	if err != nil {
		t.Fatal(err)
	}
	_ = det
	var sb, fb []float64
	for i := 0; i < 4; i++ {
		src, _ := genPair(t, i)
		v, err := decamouflage.ScoreScaling(scaler, decamouflage.MSE, src)
		if err != nil {
			t.Fatal(err)
		}
		sb = append(sb, v)
		v, err = decamouflage.ScoreFiltering(2, decamouflage.SSIM, src)
		if err != nil {
			t.Fatal(err)
		}
		fb = append(fb, v)
	}
	sTh, err := decamouflage.CalibrateBlackBox(sb, 10, decamouflage.MSE)
	if err != nil {
		t.Fatal(err)
	}
	fTh, err := decamouflage.CalibrateBlackBox(fb, 10, decamouflage.SSIM)
	if err != nil {
		t.Fatal(err)
	}
	ens, err := decamouflage.NewEnsemble(scaler, sTh, fTh)
	if err != nil {
		t.Fatal(err)
	}
	var imgs []*decamouflage.Image
	var wantAttack []bool
	for i := 4; i < 7; i++ {
		src, tgt := genPair(t, i)
		imgs = append(imgs, src)
		wantAttack = append(wantAttack, false)
		res, err := decamouflage.CraftAttack(src, tgt, scaler, 2)
		if err != nil {
			t.Fatal(err)
		}
		imgs = append(imgs, res.Attack)
		wantAttack = append(wantAttack, true)
	}
	verdicts, err := decamouflage.DetectBatch(context.Background(), ens, imgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != len(imgs) {
		t.Fatalf("verdict count %d", len(verdicts))
	}
	correct := 0
	for i, v := range verdicts {
		if v == nil {
			t.Fatalf("nil verdict %d", i)
		}
		if v.Attack == wantAttack[i] {
			correct++
		}
	}
	if correct < len(imgs)-1 {
		t.Errorf("batch correct %d/%d", correct, len(imgs))
	}
	// Error paths.
	if _, err := decamouflage.DetectBatch(context.Background(), nil, imgs); err == nil {
		t.Error("nil ensemble accepted")
	}
	imgs = append(imgs, &decamouflage.Image{})
	if _, err := decamouflage.DetectBatch(context.Background(), ens, imgs); err == nil {
		t.Error("invalid image accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := decamouflage.DetectBatch(ctx, ens, imgs[:2]); err == nil {
		t.Error("cancelled context accepted")
	}
}

func TestPublicBlackBoxCalibration(t *testing.T) {
	benign := make([]float64, 100)
	for i := range benign {
		benign[i] = float64(i)
	}
	th, err := decamouflage.CalibrateBlackBox(benign, 1, decamouflage.MSE)
	if err != nil {
		t.Fatal(err)
	}
	if th.Direction != decamouflage.Above {
		t.Errorf("MSE black-box direction = %v", th.Direction)
	}
	th, err = decamouflage.CalibrateBlackBox(benign, 1, decamouflage.SSIM)
	if err != nil {
		t.Fatal(err)
	}
	if th.Direction != decamouflage.Below {
		t.Errorf("SSIM black-box direction = %v", th.Direction)
	}
}

func TestPublicScoreCSPVariadic(t *testing.T) {
	src, _ := genPair(t, 1)
	n, err := decamouflage.ScoreCSP(src)
	if err != nil {
		t.Fatal(err)
	}
	if n < 0 {
		t.Errorf("CSP = %d", n)
	}
	if _, err := decamouflage.ScoreCSP(src, decamouflage.StegOptions{}, decamouflage.StegOptions{}); err == nil {
		t.Error("two options accepted")
	}
	if _, err := decamouflage.NewSteganalysisDetector(decamouflage.StegOptions{}, decamouflage.StegOptions{}); err == nil {
		t.Error("two options accepted by detector constructor")
	}
}

func TestPublicSystemConfigAndForensics(t *testing.T) {
	cfg := &decamouflage.SystemConfig{
		DstW: 24, DstH: 24,
		Algorithm: "bilinear",
		Thresholds: map[string]decamouflage.Threshold{
			"scaling/MSE": {Value: 700, Direction: decamouflage.Above},
		},
	}
	ens, err := decamouflage.BuildSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, tgt := genPair(t, 8)
	scaler, err := decamouflage.NewScaler(96, 96, 24, 24, decamouflage.Bilinear)
	if err != nil {
		t.Fatal(err)
	}
	res, err := decamouflage.CraftAttack(src, tgt, scaler, 2)
	if err != nil {
		t.Fatal(err)
	}
	v, err := decamouflage.Detect(context.Background(), ens, res.Attack)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Attack {
		t.Errorf("system from config missed attack: %+v", v)
	}
	// Forensics: the target-size estimate is a per-image heuristic
	// (recovery rate ~2/3 in the X9 study); require at least one good
	// recovery across several attacks.
	recovered := 0
	for i := 8; i < 12; i++ {
		s, tg := genPair(t, i)
		r2, err := decamouflage.CraftAttack(s, tg, scaler, 2)
		if err != nil {
			t.Fatal(err)
		}
		w, h, ok := decamouflage.EstimateAttackTarget(r2.Attack)
		if ok && w >= 20 && w <= 28 && h >= 20 && h <= 28 {
			recovered++
		}
	}
	if recovered == 0 {
		t.Error("target size never recovered across 4 attacks")
	}
	if got := decamouflage.MatchModels(224, 224, 0); len(got) < 4 {
		t.Errorf("MatchModels(224) = %v", got)
	}
}

func TestPublicImageIO(t *testing.T) {
	src, _ := genPair(t, 2)
	dir := t.TempDir()
	path := filepath.Join(dir, "x.png")
	if err := src.SavePNG(path); err != nil {
		t.Fatal(err)
	}
	back, err := decamouflage.LoadImage(path)
	if err != nil {
		t.Fatal(err)
	}
	if !back.SameShape(src) {
		t.Errorf("round trip shape %v", back)
	}
	if _, err := decamouflage.DecodeImage(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("junk accepted")
	}
}
