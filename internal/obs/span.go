package obs

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// spanKey carries the active span through a context.
type spanKey struct{}

// Attr is one key=value annotation on a span. Values are pre-rendered
// strings so rendering needs no reflection.
type Attr struct {
	Key, Value string
}

// Span is one timed region of a trace. Spans form a tree: StartSpan under
// a traced context attaches a child to the context's span. A nil *Span is
// a valid no-op receiver, which is what StartSpan returns on untraced
// contexts — instrumented code never branches on tracing itself.
type Span struct {
	name  string
	start time.Time
	// tid is the owning trace's ID, copied root-to-leaf at creation so any
	// span (and anything observing through it, like histogram exemplars)
	// can name its trace without walking parents.
	tid string
	// arena is the owning trace's span storage, copied root-to-leaf like
	// tid so descendants allocate from the same block.
	arena *spanArena
	// parent is the context this span was started under. The span itself
	// implements context.Context by delegating to it, so StartSpan can
	// return the arena-allocated span as the derived context instead of
	// paying a context.WithValue allocation per span.
	parent context.Context

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// Span is a context.Context: it carries itself as the active span and
// delegates everything else to the context it was started under. The
// accessors tolerate a nil parent (a zero or recycled span) so stale
// handles degrade to an inert background-like context instead of
// panicking.

// Deadline implements context.Context.
func (s *Span) Deadline() (deadline time.Time, ok bool) {
	if s == nil || s.parent == nil {
		return time.Time{}, false
	}
	return s.parent.Deadline()
}

// Done implements context.Context.
func (s *Span) Done() <-chan struct{} {
	if s == nil || s.parent == nil {
		return nil
	}
	return s.parent.Done()
}

// Err implements context.Context.
func (s *Span) Err() error {
	if s == nil || s.parent == nil {
		return nil
	}
	return s.parent.Err()
}

// Value implements context.Context: the span key resolves to the span
// itself, everything else walks up the parent chain.
func (s *Span) Value(key any) any {
	if s == nil {
		return nil
	}
	if _, ok := key.(spanKey); ok {
		return s
	}
	if s.parent == nil {
		return nil
	}
	return s.parent.Value(key)
}

// arenaSpans sizes a trace's span arena. A fully traced ensemble detect
// materializes ~14 spans (root, stage root, three method spans, their
// pipeline stages); deeper trees spill individual spans to the heap.
const arenaSpans = 24

// spanArena is one trace's span storage: a fixed block so a trace costs
// one allocation instead of one per span, recycled through arenaPool when
// the tail sampler finishes with the trace. The block never grows —
// growing would move spans out from under live *Span pointers (and copy
// their mutexes); overflow spans come from the heap instead.
type spanArena struct {
	mu  sync.Mutex
	n   int
	buf [arenaSpans]Span
}

var arenaPool = sync.Pool{New: func() any { return new(spanArena) }}

// take hands out the next arena slot, falling back to the heap when the
// block is exhausted. The returned span is zeroed apart from recycled
// attrs/children capacity.
func (a *spanArena) take() *Span {
	a.mu.Lock()
	if a.n < arenaSpans {
		s := &a.buf[a.n]
		a.n++
		a.mu.Unlock()
		return s
	}
	a.mu.Unlock()
	return new(Span)
}

// reset clears every handed-out slot for reuse, keeping the attrs and
// children backing arrays (their contents are cleared so recycled slots
// hold no stale pointers).
func (a *spanArena) reset() {
	for i := 0; i < a.n; i++ {
		s := &a.buf[i]
		clear(s.attrs)
		clear(s.children)
		*s = Span{attrs: s.attrs[:0], children: s.children[:0]}
	}
	a.n = 0
}

// traceSeq numbers traces within the process; traceStamp distinguishes
// processes, so IDs from overlapping runs do not collide in a shared log.
var (
	traceSeq   atomic.Uint64
	traceStamp = func() string {
		// splitmix64-style mixing of the start time, truncated: the stamp
		// only needs to differ between processes, not be unguessable.
		z := uint64(time.Now().UnixNano())
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return strconv.FormatUint((z^(z>>31))&0xFFFFFF, 16)
	}()
)

// newTraceID returns a process-unique trace ID like "a1b2c3-42".
func newTraceID() string {
	return traceStamp + "-" + strconv.FormatUint(traceSeq.Add(1), 10)
}

// Trace owns the root span of one traced operation (e.g. one image
// classification). Create with WithTrace, finish with End, print with
// Render.
type Trace struct {
	root *Span
}

// WithTrace starts a new trace rooted at name and returns a context that
// carries it: every StartSpan under that context records into the trace.
// Tracing is independent of the metrics flag — it is enabled purely by
// the presence of a trace in the context.
func WithTrace(ctx context.Context, name string) (context.Context, *Trace) {
	if compiledOut {
		return ctx, nil
	}
	a := arenaPool.Get().(*spanArena)
	s := a.take()
	//declint:ignore poollife arena recycling is opportunistic, not owned: traces offered to the tail sampler release the arena through Offer's ownership transfer, and caller-owned traces drop it to the GC — the pool's miss path, not a leak
	s.name, s.start, s.tid, s.arena, s.parent = name, time.Now(), newTraceID(), a, ctx
	return s, &Trace{root: s}
}

// ID returns the trace's ID ("" on a nil or released trace).
func (t *Trace) ID() string {
	if t == nil || t.root == nil {
		return ""
	}
	return t.root.tid
}

// release returns the trace's span arena to the pool and detaches the
// root, so later method calls on the trace are visible no-ops instead of
// reads of recycled spans. TailSampler.Offer calls this — offering a
// trace transfers ownership of it and of every span taken from it.
// Traces whose root was not arena-allocated (tests building Span values
// by hand) release nothing.
func (t *Trace) release() {
	if t == nil || t.root == nil {
		return
	}
	a := t.root.arena
	t.root = nil
	if a == nil {
		return
	}
	a.reset()
	arenaPool.Put(a)
}

// TraceID returns the ID of the trace active on ctx, or "" when the
// context is untraced — one context.Value lookup, no allocation.
func TraceID(ctx context.Context) string {
	if compiledOut {
		return ""
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	if sp == nil {
		return ""
	}
	return sp.tid
}

// Root returns the trace's root span (nil on a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// End closes the root span.
func (t *Trace) End() { t.Root().End() }

// StartSpan starts a child span under the context's active span. On a
// context with no trace it returns (ctx, nil) — a single context.Value
// miss — so instrumentation is safe on every code path.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if compiledOut {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	var s *Span
	if parent.arena != nil {
		s = parent.arena.take()
	} else {
		s = new(Span)
	}
	s.name, s.start, s.tid, s.arena, s.parent = name, time.Now(), parent.tid, parent.arena, ctx
	parent.mu.Lock()
	parent.children = append(parent.children, s)
	parent.mu.Unlock()
	return s, s
}

// End records the span's duration. The first call wins; later calls are
// no-ops, and rendering an unended span shows its live duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// Duration returns the recorded duration (or the live duration of a span
// not yet ended).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// Name returns the span name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Children returns a snapshot of the span's child spans, in start order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// attr appends one rendered attribute.
func (s *Span) attr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// AttrString annotates the span with a string value.
func (s *Span) AttrString(key, value string) {
	if s == nil {
		return
	}
	s.attr(key, value)
}

// AttrFloat annotates the span with a float value. The value formats with
// %.6g, matching the CLI's score output.
func (s *Span) AttrFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.attr(key, strconv.FormatFloat(v, 'g', 6, 64))
}

// AttrInt annotates the span with an integer value.
func (s *Span) AttrInt(key string, v int64) {
	if s == nil {
		return
	}
	s.attr(key, strconv.FormatInt(v, 10))
}

// AttrBool annotates the span with a boolean value.
func (s *Span) AttrBool(key string, v bool) {
	if s == nil {
		return
	}
	s.attr(key, strconv.FormatBool(v))
}

// Render writes the trace as an indented timeline, one line per span:
//
//	ensemble.detect                 12.4ms
//	  scaling/MSE          +0.1ms    8.2ms  score=123.456 attack=true
//	    downscale          +0.1ms    5.0ms
//
// The +offset column is the span's start relative to the root. A nil
// trace renders nothing.
func (t *Trace) Render(w io.Writer) error {
	root := t.Root()
	if root == nil {
		return nil
	}
	return renderSpan(w, root, root.start, 0)
}

// fmtDur rounds a duration for display: microsecond precision below 10ms,
// 10µs above, so columns stay short without hiding stage costs.
func fmtDur(d time.Duration) string {
	if d < 10*time.Millisecond {
		return d.Round(time.Microsecond).String()
	}
	return d.Round(10 * time.Microsecond).String()
}

func renderSpan(w io.Writer, s *Span, origin time.Time, depth int) error {
	s.mu.Lock()
	name := s.name
	dur := s.dur
	if !s.ended {
		dur = time.Since(s.start)
	}
	attrs := append([]Attr(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	start := s.start
	s.mu.Unlock()

	line := fmt.Sprintf("%*s%-24s", depth*2, "", name)
	if depth > 0 {
		line += fmt.Sprintf(" +%-9s", fmtDur(start.Sub(origin)))
	} else {
		line += fmt.Sprintf(" %-10s", "")
	}
	line += fmt.Sprintf(" %9s", fmtDur(dur))
	for _, a := range attrs {
		line += " " + a.Key + "=" + a.Value
	}
	if _, err := fmt.Fprintln(w, line); err != nil {
		return err
	}
	for _, c := range children {
		if err := renderSpan(w, c, origin, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// Stage couples a span with a latency histogram so a single Start/End
// pair feeds both the per-image trace (when the context is traced) and
// the aggregate metrics (when recording is enabled). The zero Stage is a
// no-op, which is what StartStage returns when both are off.
type Stage struct {
	span  *Span
	hist  *Histogram
	start time.Time
	// tid carries the trace ID to End so the histogram observation can
	// pin an exemplar; empty on untraced stages.
	tid string
}

// StartStage begins a stage named name under ctx, recording its duration
// into h. The returned context carries the stage's span so nested stages
// become children.
func StartStage(ctx context.Context, name string, h *Histogram) (context.Context, Stage) {
	if compiledOut {
		return ctx, Stage{}
	}
	ctx, sp := StartSpan(ctx, name)
	st := Stage{span: sp, hist: h}
	switch {
	case sp != nil:
		st.start = sp.start
		st.tid = sp.tid
	case h != nil && enabled.Load():
		st.start = time.Now()
	}
	return ctx, st
}

// Span returns the stage's span (nil when the context was untraced), for
// attaching attributes.
func (st Stage) Span() *Span { return st.span }

// End closes the stage: ends the span and records the elapsed time into
// the histogram (itself gated on the metrics flag). Traced stages carry
// their trace ID into the observation so extreme latencies pin exemplars.
func (st Stage) End() {
	if st.start.IsZero() {
		return
	}
	st.span.End()
	if st.hist != nil {
		st.hist.ObserveTraced(time.Since(st.start), st.tid)
	}
}
