package experiments

import (
	"context"
	"fmt"
	"io"

	"decamouflage/internal/detect"
	"decamouflage/internal/eval"
	"decamouflage/internal/filtering"
	"decamouflage/internal/imgcore"
	"decamouflage/internal/metrics"
	"decamouflage/internal/report"
	"decamouflage/internal/scaling"
	"decamouflage/internal/stats"
	"decamouflage/internal/steg"
)

// runF1 reproduces the paper's Figures 1/2: one end-to-end attack with its
// quality numbers and artifact images.
func (r *Runner) runF1(ctx context.Context) error {
	evalCorpus, err := r.Eval(ctx)
	if err != nil {
		return err
	}
	src := evalCorpus.Benign[0]
	tgt := evalCorpus.Targets[0]
	atk := evalCorpus.Attacks[0]
	down, err := evalCorpus.Scaler.Resize(atk)
	if err != nil {
		return err
	}
	ssimAO, err := metrics.SSIM(atk, src)
	if err != nil {
		return err
	}
	mseAO, err := metrics.MSE(atk, src)
	if err != nil {
		return err
	}
	ssimDT, err := metrics.SSIM(down, tgt)
	if err != nil {
		return err
	}
	mseDT, err := metrics.MSE(down, tgt)
	if err != nil {
		return err
	}
	tbl := report.NewTable("Attack example (paper Figures 1-2)", "Relation", "MSE", "SSIM", "Paper criterion")
	tbl.AddRow("attack A vs source O", report.F(mseAO, 1), report.F(ssimAO, 3), "A looks like O to humans")
	tbl.AddRow("scale(A) vs target T", report.F(mseDT, 1), report.F(ssimDT, 3), "model sees T")
	if err := tbl.Render(r.cfg.Out); err != nil {
		return err
	}
	for name, img := range map[string]*imgcore.Image{
		"f1_source.png": src, "f1_target.png": tgt, "f1_attack.png": atk, "f1_downscaled.png": down,
	} {
		if err := r.saveArtifact(name, img); err != nil {
			return err
		}
	}
	return nil
}

// runF3 reproduces Figure 3: the scaling-detection intuition — a benign
// image survives the down/up round trip, an attack image flips.
func (r *Runner) runF3(ctx context.Context) error {
	evalCorpus, err := r.Eval(ctx)
	if err != nil {
		return err
	}
	opts := evalCorpus.Scaler.Options()
	tbl := report.NewTable("Scaling-detection intuition (paper Figure 3)",
		"Case", "MSE(I, S)", "SSIM(I, S)")
	for _, c := range []struct {
		name string
		img  *imgcore.Image
	}{
		{"benign", evalCorpus.Benign[0]},
		{"attack", evalCorpus.Attacks[0]},
	} {
		_, up, err := scaling.DownUp(c.img, r.cfg.DstW, r.cfg.DstH, opts)
		if err != nil {
			return err
		}
		mse, err := metrics.MSE(c.img, up)
		if err != nil {
			return err
		}
		ssim, err := metrics.SSIM(c.img, up)
		if err != nil {
			return err
		}
		tbl.AddRow(c.name, report.F(mse, 1), report.F(ssim, 3))
		if err := r.saveArtifact("f3_"+c.name+"_roundtrip.png", up); err != nil {
			return err
		}
	}
	return tbl.Render(r.cfg.Out)
}

// runF4 reproduces Figures 4/5: rank filters applied to an attack image.
// The minimum filter reveals the embedded target; quantified as the
// similarity between the filtered image's downscale and the target.
func (r *Runner) runF4(ctx context.Context) error {
	evalCorpus, err := r.Eval(ctx)
	if err != nil {
		return err
	}
	atk := evalCorpus.Attacks[0]
	tgt := evalCorpus.Targets[0]
	src := evalCorpus.Benign[0]
	tbl := report.NewTable("Filters on an attack image (paper Figures 4-5)",
		"Filter", "MSE(A, F)", "SSIM(scale(F), T)", "SSIM(scale(F), scale(O))")
	benignDown, err := evalCorpus.Scaler.Resize(src)
	if err != nil {
		return err
	}
	for _, f := range []struct {
		name  string
		apply func(*imgcore.Image, int) (*imgcore.Image, error)
	}{
		{"minimum", filtering.Minimum},
		{"median", filtering.Median},
		{"maximum", filtering.Maximum},
	} {
		filtered, err := f.apply(atk, 2)
		if err != nil {
			return err
		}
		mseAF, err := metrics.MSE(atk, filtered)
		if err != nil {
			return err
		}
		down, err := evalCorpus.Scaler.Resize(filtered)
		if err != nil {
			return err
		}
		toTarget, err := metrics.SSIM(down, tgt)
		if err != nil {
			return err
		}
		toBenign, err := metrics.SSIM(down, benignDown)
		if err != nil {
			return err
		}
		tbl.AddRow(f.name, report.F(mseAF, 1), report.F(toTarget, 3), report.F(toBenign, 3))
		if err := r.saveArtifact("f4_"+f.name+".png", filtered); err != nil {
			return err
		}
	}
	return tbl.Render(r.cfg.Out)
}

// runF6 reproduces Figures 6/7: the centered spectrum of a benign vs an
// attack image, with binary masks and CSP counts.
func (r *Runner) runF6(ctx context.Context) error {
	evalCorpus, err := r.Eval(ctx)
	if err != nil {
		return err
	}
	tbl := report.NewTable("Centered spectrum points (paper Figures 6-7)",
		"Case", "CSP", "Component areas (largest first)")
	for _, c := range []struct {
		name string
		img  *imgcore.Image
	}{
		{"benign", evalCorpus.Benign[0]},
		{"attack", evalCorpus.Attacks[0]},
	} {
		a, err := steg.Analyze(c.img, steg.Options{})
		if err != nil {
			return err
		}
		tbl.AddRow(c.name, fmt.Sprintf("%d", a.Count), fmt.Sprintf("%v", a.Areas))
		if err := r.saveArtifact("f6_"+c.name+"_spectrum.png", a.SpectrumImage()); err != nil {
			return err
		}
		if err := r.saveArtifact("f6_"+c.name+"_mask.png", a.MaskImage()); err != nil {
			return err
		}
	}
	return tbl.Render(r.cfg.Out)
}

// runF8 reproduces Figure 8: the accuracy-vs-candidate-threshold curve of
// the white-box search for the scaling/MSE method.
func (r *Runner) runF8(ctx context.Context) error {
	scorer, err := r.scalingScorer(detect.MSE)
	if err != nil {
		return err
	}
	wb, _, _, err := r.calibrateScorer(ctx, scorer)
	if err != nil {
		return err
	}
	// Downsample the curve to ~25 rows for terminal output.
	step := len(wb.Curve)/25 + 1
	tbl := report.NewTable(
		fmt.Sprintf("Threshold selection curve, scaling/MSE (paper Figure 8; best=%.2f acc=%s)",
			wb.Threshold.Value, report.Pct(wb.TrainAccuracy)),
		"Candidate threshold", "Training accuracy")
	for i := 0; i < len(wb.Curve); i += step {
		p := wb.Curve[i]
		tbl.AddRow(report.F(p.Threshold, 2), report.Pct(p.Accuracy))
	}
	if err := tbl.Render(r.cfg.Out); err != nil {
		return err
	}
	return r.writeCSV("f8_threshold_curve.csv", func(w io.Writer) error {
		xs := make([]float64, len(wb.Curve))
		ys := make([]float64, len(wb.Curve))
		for i, p := range wb.Curve {
			xs[i], ys[i] = p.Threshold, p.Accuracy
		}
		return report.WriteCSV(w, []string{"threshold", "accuracy"}, xs, ys)
	})
}

// distributionFigure renders benign-vs-attack histograms for a scorer on
// the training corpus (the paper's white-box distribution figures).
func (r *Runner) distributionFigure(ctx context.Context, id, title string, mkScorer func(detect.Metric) (detect.Scorer, error)) error {
	for _, m := range []detect.Metric{detect.MSE, detect.SSIM} {
		scorer, err := mkScorer(m)
		if err != nil {
			return err
		}
		wb, benign, attacks, err := r.calibrateScorer(ctx, scorer)
		if err != nil {
			return err
		}
		err = report.RenderHistogram(r.cfg.Out,
			fmt.Sprintf("%s — %s (threshold %.2f)", title, m, wb.Threshold.Value),
			"benign", benign, "attack", attacks,
			report.HistogramOptions{Markers: map[string]float64{"threshold": wb.Threshold.Value}})
		if err != nil {
			return err
		}
		mName := m.String()
		if err := r.writeCSV(fmt.Sprintf("%s_%s.csv", id, mName), func(w io.Writer) error {
			return report.WriteCSV(w, []string{"benign_" + mName, "attack_" + mName}, benign, attacks)
		}); err != nil {
			return err
		}
	}
	return nil
}

// percentileFigure renders benign-only histograms with the 1/2/3 percentile
// markers (the paper's black-box distribution figures).
func (r *Runner) percentileFigure(ctx context.Context, id, title string, mkScorer func(detect.Metric) (detect.Scorer, error)) error {
	train, err := r.Train(ctx)
	if err != nil {
		return err
	}
	for _, m := range []detect.Metric{detect.MSE, detect.SSIM} {
		scorer, err := mkScorer(m)
		if err != nil {
			return err
		}
		benign, _, err := eval.ScorePair(ctx, scorer, train)
		if err != nil {
			return err
		}
		markers := make(map[string]float64, 3)
		for _, p := range []float64{1, 2, 3} {
			th, err := detect.CalibrateBlackBox(benign, p, m.AttackDirection())
			if err != nil {
				return err
			}
			markers[fmt.Sprintf("p%.0f", p)] = th.Value
		}
		mean, std := stats.MeanStd(benign)
		err = report.RenderHistogram(r.cfg.Out,
			fmt.Sprintf("%s — %s (benign only; mean %.2f std %.2f)", title, m, mean, std),
			"benign", benign, "", nil,
			report.HistogramOptions{Markers: markers})
		if err != nil {
			return err
		}
		mName := m.String()
		if err := r.writeCSV(fmt.Sprintf("%s_%s.csv", id, mName), func(w io.Writer) error {
			return report.WriteCSV(w, []string{"benign_" + mName}, benign)
		}); err != nil {
			return err
		}
	}
	return nil
}

// runF9 reproduces Figure 9 (scaling white-box distributions).
func (r *Runner) runF9(ctx context.Context) error {
	return r.distributionFigure(ctx, "f9", "Scaling detection distributions, white-box (paper Figure 9)", r.scalingScorer)
}

// runF10 reproduces Figure 10 (scaling black-box benign distributions).
func (r *Runner) runF10(ctx context.Context) error {
	return r.percentileFigure(ctx, "f10", "Scaling detection, black-box (paper Figure 10)", r.scalingScorer)
}

// runF11 reproduces Figure 11 (filtering white-box distributions).
func (r *Runner) runF11(ctx context.Context) error {
	return r.distributionFigure(ctx, "f11", "Filtering detection distributions, white-box (paper Figure 11)", r.filteringScorer)
}

// runF12 reproduces Figure 12 (filtering black-box benign distributions).
func (r *Runner) runF12(ctx context.Context) error {
	return r.percentileFigure(ctx, "f12", "Filtering detection, black-box (paper Figure 12)", r.filteringScorer)
}

// runF13 reproduces Figure 13: the CSP count distributions, including the
// paper's headline fractions (99.3% of benign have CSP=1; 98.2% of attacks
// have CSP>1).
func (r *Runner) runF13(ctx context.Context) error {
	evalCorpus, err := r.Eval(ctx)
	if err != nil {
		return err
	}
	scorer := detect.NewStegScorer(steg.Options{})
	benign, attacks, err := eval.ScorePair(ctx, scorer, evalCorpus)
	if err != nil {
		return err
	}
	count := func(xs []float64, pred func(float64) bool) int {
		n := 0
		for _, x := range xs {
			if pred(x) {
				n++
			}
		}
		return n
	}
	nb, na := float64(len(benign)), float64(len(attacks))
	tbl := report.NewTable("CSP distributions (paper Figure 13)", "Population", "CSP = 1 (or 0)", "CSP >= 2")
	tbl.AddRow("benign",
		report.Pct(float64(count(benign, func(x float64) bool { return x <= 1 }))/nb),
		report.Pct(float64(count(benign, func(x float64) bool { return x >= 2 }))/nb))
	tbl.AddRow("attack",
		report.Pct(float64(count(attacks, func(x float64) bool { return x <= 1 }))/na),
		report.Pct(float64(count(attacks, func(x float64) bool { return x >= 2 }))/na))
	if err := tbl.Render(r.cfg.Out); err != nil {
		return err
	}
	if err := report.RenderHistogram(r.cfg.Out, "CSP counts", "benign", benign, "attack", attacks,
		report.HistogramOptions{Bins: 12}); err != nil {
		return err
	}
	return r.writeCSV("f13_csp.csv", func(w io.Writer) error {
		return report.WriteCSV(w, []string{"benign_csp", "attack_csp"}, benign, attacks)
	})
}

// psnrFigure renders the Appendix-A PSNR histograms for one method and
// reports the distribution overlap coefficient — the quantitative form of
// "highly overlapped".
func (r *Runner) psnrFigure(ctx context.Context, id, title string, mkScorer func(detect.Metric) (detect.Scorer, error)) error {
	scorer, err := mkScorer(detect.PSNR)
	if err != nil {
		return err
	}
	train, err := r.Train(ctx)
	if err != nil {
		return err
	}
	benign, attacks, err := eval.ScorePair(ctx, scorer, train)
	if err != nil {
		return err
	}
	overlap, err := stats.OverlapCoefficient(benign, attacks, 30)
	if err != nil {
		return err
	}
	// Compare with MSE overlap on the same corpus to show the contrast.
	mseScorer, err := mkScorer(detect.MSE)
	if err != nil {
		return err
	}
	mb, ma, err := eval.ScorePair(ctx, mseScorer, train)
	if err != nil {
		return err
	}
	mseOverlap, err := stats.OverlapCoefficient(mb, ma, 30)
	if err != nil {
		return err
	}
	if err := report.RenderHistogram(r.cfg.Out,
		fmt.Sprintf("%s (overlap coefficient %.2f vs MSE overlap %.2f)", title, overlap, mseOverlap),
		"benign", benign, "attack", attacks, report.HistogramOptions{}); err != nil {
		return err
	}
	return r.writeCSV(id+"_psnr.csv", func(w io.Writer) error {
		return report.WriteCSV(w, []string{"benign_psnr", "attack_psnr"}, benign, attacks)
	})
}

// runF14 reproduces Figure 14: PSNR is not separable for the scaling method.
func (r *Runner) runF14(ctx context.Context) error {
	return r.psnrFigure(ctx, "f14", "PSNR histograms, scaling method (paper Figure 14)", r.scalingScorer)
}

// runF15 reproduces Figure 15: PSNR is not separable for the filtering
// method.
func (r *Runner) runF15(ctx context.Context) error {
	return r.psnrFigure(ctx, "f15", "PSNR histograms, filtering method (paper Figure 15)", r.filteringScorer)
}
