// Adaptive attack study: the paper's Section VI argues the ensemble
// hardens adaptive attackers because defeating one method is not enough.
// This example plays the adversary: it tries increasingly desperate attack
// variants against the defended pipeline and reports, for each, whether the
// attack still works AND whether each detection method (and the ensemble)
// catches it.
//
// Run with:
//
//	go run ./examples/adaptive_attack
package main

import (
	"context"
	"fmt"
	"log"

	"decamouflage"
	"decamouflage/internal/dataset"
	"decamouflage/internal/filtering"
	"decamouflage/internal/metrics"
)

const (
	srcW, srcH = 128, 128
	dstW, dstH = 32, 32
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adaptive-attack: ")

	scaler, err := decamouflage.NewScaler(srcW, srcH, dstW, dstH, decamouflage.Bilinear)
	if err != nil {
		log.Fatal(err)
	}
	covers, err := dataset.NewGenerator(dataset.Config{
		Corpus: dataset.CaltechLike, W: srcW, H: srcH, C: 3, Seed: 41,
	})
	if err != nil {
		log.Fatal(err)
	}
	targets, err := dataset.NewGenerator(dataset.Config{
		Corpus: dataset.CaltechLike, W: dstW, H: dstH, C: 3, Seed: 43,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Calibrate the defense black-box (attacker-independent).
	var sScores, fScores []float64
	for i := 100; i < 140; i++ {
		img := covers.Image(i)
		v, err := decamouflage.ScoreScaling(scaler, decamouflage.MSE, img)
		if err != nil {
			log.Fatal(err)
		}
		sScores = append(sScores, v)
		v, err = decamouflage.ScoreFiltering(2, decamouflage.SSIM, img)
		if err != nil {
			log.Fatal(err)
		}
		fScores = append(fScores, v)
	}
	scalingTh, err := decamouflage.CalibrateBlackBox(sScores, 1, decamouflage.MSE)
	if err != nil {
		log.Fatal(err)
	}
	filteringTh, err := decamouflage.CalibrateBlackBox(fScores, 1, decamouflage.SSIM)
	if err != nil {
		log.Fatal(err)
	}
	ens, err := decamouflage.NewEnsemble(scaler, scalingTh, filteringTh)
	if err != nil {
		log.Fatal(err)
	}
	stegDet, err := decamouflage.NewSteganalysisDetector()
	if err != nil {
		log.Fatal(err)
	}

	source := covers.Image(0)
	target := targets.Image(0)

	// Adaptive strategies the adversary tries.
	type variant struct {
		name  string
		build func() (*decamouflage.Image, error)
	}
	variants := []variant{
		{
			// Plain Xiao et al. attack — the baseline.
			name: "standard attack (eps=2)",
			build: func() (*decamouflage.Image, error) {
				res, err := decamouflage.CraftAttack(source, target, scaler, 2)
				if err != nil {
					return nil, err
				}
				return res.Attack, nil
			},
		},
		{
			// Loose budget: weaker embedding, hoping to slip under
			// thresholds.
			name: "loose attack (eps=16)",
			build: func() (*decamouflage.Image, error) {
				res, err := decamouflage.CraftAttack(source, target, scaler, 16)
				if err != nil {
					return nil, err
				}
				return res.Attack, nil
			},
		},
		{
			// Blend toward the source: scale the perturbation down 50%
			// after crafting — directly attacks the scaling/MSE score.
			name: "halved perturbation",
			build: func() (*decamouflage.Image, error) {
				res, err := decamouflage.CraftAttack(source, target, scaler, 2)
				if err != nil {
					return nil, err
				}
				delta, err := res.Attack.Sub(source)
				if err != nil {
					return nil, err
				}
				blended, err := source.Add(delta.Scale(0.5))
				if err != nil {
					return nil, err
				}
				return blended.Quantize8(), nil
			},
		},
		{
			// Post-smooth: light Gaussian blur to soften the comb and the
			// spectral replicas — attacks the steganalysis method.
			name: "gaussian-smoothed attack",
			build: func() (*decamouflage.Image, error) {
				res, err := decamouflage.CraftAttack(source, target, scaler, 2)
				if err != nil {
					return nil, err
				}
				return filtering.Gaussian(res.Attack, 1, 0.6)
			},
		},
		{
			// Target blended toward the benign downscale: a weaker goal
			// (50/50 mix) needing less perturbation.
			name: "half-strength target",
			build: func() (*decamouflage.Image, error) {
				benignDown, err := scaler.Resize(source)
				if err != nil {
					return nil, err
				}
				mix := benignDown.Clone()
				for i := range mix.Pix {
					mix.Pix[i] = 0.5*mix.Pix[i] + 0.5*target.Pix[i]
				}
				res, err := decamouflage.CraftAttack(source, mix.Quantize8(), scaler, 2)
				if err != nil {
					return nil, err
				}
				return res.Attack, nil
			},
		},
	}

	ctx := context.Background()
	fmt.Printf("%-28s %-14s %-10s %-10s\n", "variant", "attack works?", "ensemble", "steg-only")
	for _, v := range variants {
		img, err := v.build()
		if err != nil {
			log.Fatal(err)
		}
		// Does the variant still function as an attack? (downscale close
		// to the intended target)
		down, err := scaler.Resize(img)
		if err != nil {
			log.Fatal(err)
		}
		ssim, err := metrics.SSIM(down, target)
		if err != nil {
			log.Fatal(err)
		}
		works := ssim >= 0.75
		ev, err := decamouflage.Detect(ctx, ens, img)
		if err != nil {
			log.Fatal(err)
		}
		sv, err := stegDet.Detect(img)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %-14s %-10s %-10s\n",
			v.name,
			fmt.Sprintf("%v (SSIM %.2f)", works, ssim),
			caught(ev.Attack), caught(sv.Attack))
	}
	fmt.Println("\nreading: an adaptive attacker must keep 'attack works' true while")
	fmt.Println("evading EVERY row — weakening the embedding breaks the attack before")
	fmt.Println("it breaks the ensemble (the paper's defense-in-depth argument).")
}

func caught(b bool) string {
	if b {
		return "caught"
	}
	return "EVADED"
}
