package fourier

import (
	"context"
	"math/rand"
	"testing"

	"decamouflage/internal/parallel"
	"decamouflage/internal/testutil"
)

func randComplex(rng *rand.Rand, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return out
}

// TestBlockedColumnsBitEqualReference pins the cache-blocked column pass
// against the retained one-column-at-a-time reference: identical
// arithmetic in a different memory walk must produce bit-identical
// spectra. Geometries cover tile-boundary cases — widths below, at and
// off multiples of colBlock — plus Bluestein (non-power-of-two) heights.
func TestBlockedColumnsBitEqualReference(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	geoms := []struct{ w, h int }{
		{1, 8},   // single column
		{3, 16},  // narrower than one tile
		{8, 8},   // exactly one tile
		{9, 8},   // one tile plus one column
		{16, 32}, // whole tiles
		{23, 17}, // Bluestein on both axes, ragged tiles
		{64, 48},
	}
	for _, g := range geoms {
		data := randComplex(rng, g.w*g.h)
		rowPlan, err := PlanFor(g.w, false)
		if err != nil {
			t.Fatal(err)
		}
		colPlan, err := PlanFor(g.h, false)
		if err != nil {
			t.Fatal(err)
		}
		// Reference: shared row pass, then the per-column pass.
		want := append([]complex128(nil), data...)
		for y := 0; y < g.h; y++ {
			if err := rowPlan.Transform(want[y*g.w : (y+1)*g.w]); err != nil {
				t.Fatal(err)
			}
		}
		if err := transformColumnsReference(context.Background(), want, g.w, g.h, colPlan); err != nil {
			t.Fatal(err)
		}
		got := append([]complex128(nil), data...)
		if err := transformPasses(context.Background(), got, g.w, g.h, rowPlan, colPlan); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%dx%d: element %d: blocked %v vs reference %v", g.w, g.h, i, got[i], want[i])
			}
		}
	}
}

// TestCenteredSpectrumIntoBitEqualUnplanned pins the fused pooled path
// against the composed CenteredSpectrum across geometries and repeated
// pooled executions (the DetectBatch shape: one plan, many images).
func TestCenteredSpectrumIntoBitEqualUnplanned(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for _, g := range []struct{ w, h int }{{8, 8}, {17, 9}, {32, 32}, {23, 41}} {
		p, err := Plan2DFor(g.w, g.h)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]float64, g.w*g.h)
		for rep := 0; rep < 3; rep++ {
			data := make([]float64, g.w*g.h)
			for i := range data {
				data[i] = rng.Float64() * 255
			}
			want, err := CenteredSpectrum(data, g.w, g.h)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.CenteredSpectrumInto(context.Background(), data, dst); err != nil {
				t.Fatal(err)
			}
			if i := testutil.FirstDiff(dst, want); i != -1 {
				t.Fatalf("%dx%d rep %d: sample %d: fused %v vs composed %v",
					g.w, g.h, rep, i, dst[i], want[i])
			}
		}
	}
}

// TestCenteredSpectrumIntoValidation pins the length checks of the fused
// entry point and the geometry check of CenteredSpectrumWith.
func TestCenteredSpectrumIntoValidation(t *testing.T) {
	p, err := Plan2DFor(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	good := make([]float64, 64)
	if err := p.CenteredSpectrumInto(context.Background(), make([]float64, 63), good); err == nil {
		t.Error("short data accepted")
	}
	if err := p.CenteredSpectrumInto(context.Background(), good, make([]float64, 65)); err == nil {
		t.Error("long dst accepted")
	}
	// Same element count, wrong geometry: the explicit plan check in
	// CenteredSpectrumWith must reject it.
	if _, err := CenteredSpectrumWith(context.Background(), p, make([]float64, 64), 4, 16); err == nil {
		t.Error("geometry-mismatched plan accepted")
	}
	if _, err := CenteredSpectrumWith(context.Background(), nil, good, 8, 9); err == nil {
		t.Error("mismatched data length accepted")
	}
	// Nil plan resolves from the cache and must match the composed path.
	got, err := CenteredSpectrumWith(context.Background(), nil, good, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	want, err := CenteredSpectrum(good, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if i := testutil.FirstDiff(got, want); i != -1 {
		t.Fatalf("nil-plan sample %d differs", i)
	}
}

// benchmarkColumns2D times a full planned 2-D transform at 256×256 with
// the given column pass, single worker.
func benchmarkColumns2D(b *testing.B, blocked bool) {
	rng := rand.New(rand.NewSource(93))
	data := randComplex(rng, 256*256)
	rowPlan, err := PlanFor(256, false)
	if err != nil {
		b.Fatal(err)
	}
	colPlan, err := PlanFor(256, false)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]complex128, len(data))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, data)
		if blocked {
			if err := transformPasses(context.Background(), buf, 256, 256, rowPlan, colPlan, parallel.Workers(1)); err != nil {
				b.Fatal(err)
			}
			continue
		}
		for y := 0; y < 256; y++ {
			if err := rowPlan.Transform(buf[y*256 : (y+1)*256]); err != nil {
				b.Fatal(err)
			}
		}
		if err := transformColumnsReference(context.Background(), buf, 256, 256, colPlan, parallel.Workers(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFFT2DBlocked256 is the cache-blocked column pass; its baseline
// is BenchmarkFFT2DPerColumn256.
func BenchmarkFFT2DBlocked256(b *testing.B) { benchmarkColumns2D(b, true) }

// BenchmarkFFT2DPerColumn256 is the one-column-at-a-time reference pass.
func BenchmarkFFT2DPerColumn256(b *testing.B) { benchmarkColumns2D(b, false) }

// BenchmarkCenteredSpectrumInto256 is the batch-amortized spectrum path —
// one plan, pooled scratch, fused tail — against the composed
// BenchmarkCenteredSpectrum256 baseline.
func BenchmarkCenteredSpectrumInto256(b *testing.B) {
	rng := rand.New(rand.NewSource(94))
	data := make([]float64, 256*256)
	for i := range data {
		data[i] = rng.Float64() * 255
	}
	p, err := Plan2DFor(256, 256)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]float64, len(data))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.CenteredSpectrumInto(context.Background(), data, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCenteredSpectrum256 is the composed unplanned spectrum.
func BenchmarkCenteredSpectrum256(b *testing.B) {
	rng := rand.New(rand.NewSource(94))
	data := make([]float64, 256*256)
	for i := range data {
		data[i] = rng.Float64() * 255
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CenteredSpectrum(data, 256, 256); err != nil {
			b.Fatal(err)
		}
	}
}
