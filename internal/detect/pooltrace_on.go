//go:build pooltrace

package detect

import (
	"fmt"
	"sort"
	"sync"
)

// poolTraceLedger is the test-only release ledger behind the pooltrace
// build tag: the runtime mirror of declint's static poollife check. Every
// pooled borrow that passes through poolTraceWrap gets an id; releases
// increment its count; poolTraceVerify fails a test when any borrow was
// not released exactly once. A double release panics at the release site
// itself, where the stack still names the offender.
type poolTraceLedger struct {
	mu       sync.Mutex
	next     int
	releases map[int]int
}

var poolTrace = poolTraceLedger{releases: map[int]int{}}

// poolTraceWrap registers a borrow and returns a put func that records the
// release before running the real one.
func poolTraceWrap(put func()) func() {
	poolTrace.mu.Lock()
	id := poolTrace.next
	poolTrace.next++
	poolTrace.releases[id] = 0
	poolTrace.mu.Unlock()
	return func() {
		poolTrace.mu.Lock()
		poolTrace.releases[id]++
		n := poolTrace.releases[id]
		poolTrace.mu.Unlock()
		if n > 1 {
			panic(fmt.Sprintf("pooltrace: borrow %d released %d times", id, n))
		}
		put()
	}
}

// poolTraceReset clears the ledger so a test observes only its own borrows.
func poolTraceReset() {
	poolTrace.mu.Lock()
	poolTrace.next = 0
	poolTrace.releases = map[int]int{}
	poolTrace.mu.Unlock()
}

// poolTraceVerify returns an error naming every borrow not released
// exactly once, or nil when the ledger balances.
func poolTraceVerify() error {
	poolTrace.mu.Lock()
	defer poolTrace.mu.Unlock()
	var bad []string
	for id, n := range poolTrace.releases {
		if n != 1 {
			bad = append(bad, fmt.Sprintf("borrow %d released %d times", id, n))
		}
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	return fmt.Errorf("pooltrace: %d unbalanced borrow(s): %v", len(bad), bad)
}
