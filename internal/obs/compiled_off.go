//go:build noobs

package obs

// compiledOut is true under the noobs build tag: every obs entry point
// short-circuits on this constant and the compiler eliminates the dead
// recording code. CI benchmarks this build as the no-observability
// baseline for the disabled-path overhead guard.
const compiledOut = true
