// Fixture: the //declint:hot allocation contract — direct allocations,
// allocations reached through a call into another package, closure and
// boxing allocations, the suppression escape hatch, and the silence of
// non-hot code.
package filtering

import "hotalloc/internal/kernels"

// Sweep is allocation-free itself but reaches an allocating helper in
// another package.
//
//declint:hot
func Sweep(out []float64) {
	kernels.Fill(out)
}

// Window allocates directly in a hot function.
//
//declint:hot
func Window(n int) []float64 {
	return make([]float64, n)
}

// Scratch allocates too, but the site carries a justified waiver.
//
//declint:hot
func Scratch(n int) []float64 {
	//declint:ignore hotalloc setup-time cold path, called once per plan
	return make([]float64, n)
}

// Apply builds a closure per call.
//
//declint:hot
func Apply(out []float64) {
	add := func(i int) { out[i]++ }
	for i := range out {
		add(i)
	}
}

// Report boxes an int into an interface parameter.
//
//declint:hot
func Report(n int) {
	sink(n)
}

// sink accepts anything; boxing happens at the caller.
func sink(v any) { _ = v }

// Clean is hot and allocation-free: silent.
//
//declint:hot
func Clean(out []float64) {
	for i := range out {
		out[i] = 0
	}
}

// Cold is not hot: its allocation is nobody's business.
func Cold(n int) []float64 {
	return make([]float64, n)
}
