//go:build !pooltrace

package detect

// poolTraceWrap is the release ledger's production form: a no-op. The
// pooltrace build tag swaps in a counting wrapper that asserts every
// pooled borrow is released exactly once (see pooltrace_on.go); without
// it the put funcs flow to the pools untouched and the call inlines away.
func poolTraceWrap(put func()) func() { return put }
