package defense

import (
	"testing"

	"decamouflage/internal/attack"
	"decamouflage/internal/dataset"
	"decamouflage/internal/imgcore"
	"decamouflage/internal/metrics"
	"decamouflage/internal/scaling"
	"decamouflage/internal/testutil"
)

func mustScaler(t testing.TB) *scaling.Scaler {
	t.Helper()
	s, err := scaling.NewScaler(128, 128, 32, 32, scaling.Options{Algorithm: scaling.Bilinear})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func corpusPair(t testing.TB, i int) (src, tgt *imgcore.Image) {
	t.Helper()
	g, err := dataset.NewGenerator(dataset.Config{Corpus: dataset.CaltechLike, W: 128, H: 128, C: 3, Seed: 50})
	if err != nil {
		t.Fatal(err)
	}
	tg, err := dataset.NewGenerator(dataset.Config{Corpus: dataset.CaltechLike, W: 32, H: 32, C: 3, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	return g.Image(i), tg.Image(i)
}

func TestRobustScaler(t *testing.T) {
	if _, err := RobustScaler(nil); err == nil {
		t.Error("nil scaler accepted")
	}
	s := mustScaler(t)
	rs, err := RobustScaler(s)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Options().Algorithm != scaling.Area {
		t.Errorf("robust algorithm = %v", rs.Options().Algorithm)
	}
	w, h := rs.DstSize()
	if w != 32 || h != 32 {
		t.Errorf("robust geometry = %dx%d", w, h)
	}
}

// The core claim: an attack crafted against the vulnerable scaler does NOT
// survive the robust scaler — its downscale stays close to the benign
// downscale, not the target.
func TestRobustScalerNeutralizesAttack(t *testing.T) {
	s := mustScaler(t)
	src, tgt := corpusPair(t, 0)
	res, err := attack.Craft(src, tgt, attack.Config{Scaler: s, Eps: 2})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := RobustScaler(s)
	if err != nil {
		t.Fatal(err)
	}
	benignDown, err := rs.Resize(src)
	if err != nil {
		t.Fatal(err)
	}
	attackDown, err := rs.Resize(res.Attack)
	if err != nil {
		t.Fatal(err)
	}
	toTarget, err := metrics.MSE(attackDown, tgt)
	if err != nil {
		t.Fatal(err)
	}
	toBenign, err := metrics.MSE(attackDown, benignDown)
	if err != nil {
		t.Fatal(err)
	}
	if toBenign >= toTarget {
		t.Errorf("robust downscale closer to target (%v) than to benign (%v): defense failed", toTarget, toBenign)
	}
}

func TestMedianReconstructValidation(t *testing.T) {
	s := mustScaler(t)
	src, _ := corpusPair(t, 1)
	if _, err := MedianReconstruct(src, nil, 0); err == nil {
		t.Error("nil scaler accepted")
	}
	if _, err := MedianReconstruct(&imgcore.Image{}, s, 0); err == nil {
		t.Error("empty image accepted")
	}
	small := imgcore.MustNew(16, 16, 3)
	if _, err := MedianReconstruct(small, s, 0); err == nil {
		t.Error("mismatched image accepted")
	}
}

func TestMedianReconstructNeutralizesAttack(t *testing.T) {
	s := mustScaler(t)
	src, tgt := corpusPair(t, 2)
	res, err := attack.Craft(src, tgt, attack.Config{Scaler: s, Eps: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Without the defense the attack hits the target.
	if res.MaxViolation > 2.1 {
		t.Fatalf("attack itself failed: %v", res.MaxViolation)
	}
	cleaned, err := MedianReconstruct(res.Attack, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	cleanDown, err := s.Resize(cleaned)
	if err != nil {
		t.Fatal(err)
	}
	benignDown, err := s.Resize(src)
	if err != nil {
		t.Fatal(err)
	}
	toTarget, err := metrics.MSE(cleanDown, tgt)
	if err != nil {
		t.Fatal(err)
	}
	toBenign, err := metrics.MSE(cleanDown, benignDown)
	if err != nil {
		t.Fatal(err)
	}
	if toBenign >= toTarget {
		t.Errorf("reconstructed downscale closer to target (%v) than benign (%v)", toTarget, toBenign)
	}
}

func TestMedianReconstructPreservesBenign(t *testing.T) {
	s := mustScaler(t)
	src, _ := corpusPair(t, 3)
	cleaned, err := MedianReconstruct(src, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Quiring et al.'s known limitation — some quality loss — but a benign
	// image should stay recognizable.
	mse, err := metrics.MSE(cleaned, src)
	if err != nil {
		t.Fatal(err)
	}
	if mse > 500 {
		t.Errorf("reconstruction damaged benign image: MSE %v", mse)
	}
}

func TestRandomReconstructNeutralizesAttack(t *testing.T) {
	s := mustScaler(t)
	src, tgt := corpusPair(t, 5)
	res, err := attack.Craft(src, tgt, attack.Config{Scaler: s, Eps: 2})
	if err != nil {
		t.Fatal(err)
	}
	cleaned, err := RandomReconstruct(res.Attack, s, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	cleanDown, err := s.Resize(cleaned)
	if err != nil {
		t.Fatal(err)
	}
	benignDown, err := s.Resize(src)
	if err != nil {
		t.Fatal(err)
	}
	toTarget, err := metrics.MSE(cleanDown, tgt)
	if err != nil {
		t.Fatal(err)
	}
	toBenign, err := metrics.MSE(cleanDown, benignDown)
	if err != nil {
		t.Fatal(err)
	}
	if toBenign >= toTarget {
		t.Errorf("random-reconstructed downscale closer to target (%v) than benign (%v)", toTarget, toBenign)
	}
}

func TestRandomReconstructDeterministicPerSeed(t *testing.T) {
	s := mustScaler(t)
	src, _ := corpusPair(t, 6)
	a, err := RandomReconstruct(src, s, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomReconstruct(src, s, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Pix {
		if !testutil.BitEqual(a.Pix[i], b.Pix[i]) {
			t.Fatal("same seed produced different reconstructions")
		}
	}
	c, err := RandomReconstruct(src, s, 0, 43)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range a.Pix {
		if !testutil.BitEqual(a.Pix[i], c.Pix[i]) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical reconstructions")
	}
}

func TestRandomReconstructValidation(t *testing.T) {
	s := mustScaler(t)
	src, _ := corpusPair(t, 7)
	if _, err := RandomReconstruct(src, nil, 0, 1); err == nil {
		t.Error("nil scaler accepted")
	}
	if _, err := RandomReconstruct(&imgcore.Image{}, s, 0, 1); err == nil {
		t.Error("empty image accepted")
	}
	if _, err := RandomReconstruct(imgcore.MustNew(8, 8, 3), s, 0, 1); err == nil {
		t.Error("mismatched image accepted")
	}
}

func TestMedianReconstructExplicitWindow(t *testing.T) {
	s := mustScaler(t)
	src, _ := corpusPair(t, 4)
	out, err := MedianReconstruct(src, s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !out.SameShape(src) {
		t.Errorf("geometry changed: %v", out)
	}
}
