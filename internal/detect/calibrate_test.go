package detect

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/steg"
	"decamouflage/internal/testutil"
)

func TestScores(t *testing.T) {
	gs := NewStegScorer(steg.Options{})
	imgs := []*imgcore.Image{corpusImage(t, 1, 0, 32, 32), corpusImage(t, 1, 1, 32, 32)}
	scores, err := Scores(gs, imgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 2 {
		t.Fatalf("Scores len = %d", len(scores))
	}
	if _, err := Scores(nil, imgs); err == nil {
		t.Error("nil scorer accepted")
	}
	imgs = append(imgs, &imgcore.Image{})
	if _, err := Scores(gs, imgs); err == nil {
		t.Error("invalid image accepted")
	}
}

func TestCalibrateWhiteBoxSeparable(t *testing.T) {
	benign := []float64{1, 2, 3, 4, 5}
	attacks := []float64{100, 120, 130}
	res, err := CalibrateWhiteBox(benign, attacks)
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.BitEqual(res.TrainAccuracy, 1) {
		t.Errorf("separable accuracy = %v", res.TrainAccuracy)
	}
	if res.Threshold.Direction != Above {
		t.Errorf("direction = %v", res.Threshold.Direction)
	}
	if res.Threshold.Value <= 5 || res.Threshold.Value >= 100 {
		t.Errorf("threshold %v outside gap", res.Threshold.Value)
	}
	if len(res.Curve) == 0 {
		t.Error("empty accuracy curve")
	}
}

func TestCalibrateWhiteBoxInvertedDirection(t *testing.T) {
	// SSIM-like: attacks score LOWER than benign.
	benign := []float64{0.9, 0.95, 0.92, 0.97}
	attacks := []float64{0.2, 0.3, 0.1}
	res, err := CalibrateWhiteBox(benign, attacks)
	if err != nil {
		t.Fatal(err)
	}
	if res.Threshold.Direction != Below {
		t.Fatalf("direction = %v, want Below", res.Threshold.Direction)
	}
	if !testutil.BitEqual(res.TrainAccuracy, 1) {
		t.Errorf("accuracy = %v", res.TrainAccuracy)
	}
	// All benign classified benign, all attacks classified attack.
	for _, s := range benign {
		if res.Threshold.Classify(s) {
			t.Errorf("benign %v misclassified", s)
		}
	}
	for _, s := range attacks {
		if !res.Threshold.Classify(s) {
			t.Errorf("attack %v missed", s)
		}
	}
}

func TestCalibrateWhiteBoxOverlapping(t *testing.T) {
	benign := []float64{1, 2, 3, 10, 11}
	attacks := []float64{8, 9, 12, 13, 14}
	res, err := CalibrateWhiteBox(benign, attacks)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainAccuracy >= 1 || res.TrainAccuracy <= 0.5 {
		t.Errorf("overlap accuracy = %v, want in (0.5,1)", res.TrainAccuracy)
	}
}

func TestCalibrateWhiteBoxErrors(t *testing.T) {
	if _, err := CalibrateWhiteBox(nil, []float64{1}); err == nil {
		t.Error("empty benign accepted")
	}
	if _, err := CalibrateWhiteBox([]float64{1}, nil); err == nil {
		t.Error("empty attack accepted")
	}
}

// Property: the white-box threshold is optimal — no curve point beats it.
func TestCalibrateWhiteBoxOptimalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		nb := int(seed%20+20)%20 + 2
		na := int(seed%17+17)%17 + 2
		benign := make([]float64, nb)
		attacks := make([]float64, na)
		for i := range benign {
			benign[i] = rng.NormFloat64() * 10
		}
		for i := range attacks {
			attacks[i] = 15 + rng.NormFloat64()*10
		}
		res, err := CalibrateWhiteBox(benign, attacks)
		if err != nil {
			return false
		}
		for _, p := range res.Curve {
			if p.Accuracy > res.TrainAccuracy+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCalibrateBlackBoxAbove(t *testing.T) {
	benign := make([]float64, 101)
	for i := range benign {
		benign[i] = float64(i) // 0..100
	}
	th, err := CalibrateBlackBox(benign, 1, Above)
	if err != nil {
		t.Fatal(err)
	}
	if th.Direction != Above {
		t.Errorf("direction %v", th.Direction)
	}
	if math.Abs(th.Value-99) > 1e-9 {
		t.Errorf("threshold = %v, want 99 (99th percentile)", th.Value)
	}
	// ~1% of benign on attack side.
	flagged := 0
	for _, s := range benign {
		if th.Classify(s) {
			flagged++
		}
	}
	if flagged > 3 {
		t.Errorf("black-box FRR too high: %d/101", flagged)
	}
}

func TestCalibrateBlackBoxBelow(t *testing.T) {
	benign := make([]float64, 101)
	for i := range benign {
		benign[i] = float64(i)
	}
	th, err := CalibrateBlackBox(benign, 2, Below)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(th.Value-2) > 1e-9 {
		t.Errorf("threshold = %v, want 2 (2nd percentile)", th.Value)
	}
}

func TestCalibrateBlackBoxErrors(t *testing.T) {
	benign := []float64{1, 2, 3}
	if _, err := CalibrateBlackBox(nil, 1, Above); err == nil {
		t.Error("empty benign accepted")
	}
	if _, err := CalibrateBlackBox(benign, 0, Above); err == nil {
		t.Error("percentile 0 accepted")
	}
	if _, err := CalibrateBlackBox(benign, 50, Above); err == nil {
		t.Error("percentile 50 accepted")
	}
	if _, err := CalibrateBlackBox(benign, 1, Direction(0)); err == nil {
		t.Error("invalid direction accepted")
	}
}

func TestCalibrationRoundTrip(t *testing.T) {
	c := NewCalibration("white-box")
	c.Set("scaling/MSE", Threshold{Value: 1714.96, Direction: Above})
	c.Set("filtering/SSIM", Threshold{Value: 0.38, Direction: Below})
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalCalibration(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Setting != "white-box" {
		t.Errorf("setting = %q", back.Setting)
	}
	th, ok := back.Get("scaling/MSE")
	if !ok || !testutil.BitEqual(th.Value, 1714.96) || th.Direction != Above {
		t.Errorf("round trip threshold = %+v ok=%v", th, ok)
	}
	if _, ok := back.Get("missing"); ok {
		t.Error("missing key found")
	}
}

func TestUnmarshalCalibrationRejectsBadData(t *testing.T) {
	if _, err := UnmarshalCalibration([]byte("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	// Invalid direction inside.
	if _, err := UnmarshalCalibration([]byte(`{"setting":"x","thresholds":{"a":{"value":1,"direction":9}}}`)); err == nil {
		t.Error("invalid direction accepted")
	}
	// Null thresholds map becomes usable.
	c, err := UnmarshalCalibration([]byte(`{"setting":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	c.Set("a", Threshold{1, Above})
	if _, ok := c.Get("a"); !ok {
		t.Error("set on recovered map failed")
	}
}

func TestCalibrateWhiteBoxIterativeMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		nb := rng.Intn(30) + 5
		na := rng.Intn(30) + 5
		benign := make([]float64, nb)
		attacks := make([]float64, na)
		// Unimodal classes with a gap, the regime the iterative search is
		// exact in.
		for i := range benign {
			benign[i] = rng.NormFloat64() * 8
		}
		for i := range attacks {
			attacks[i] = 40 + rng.NormFloat64()*8
		}
		ex, err := CalibrateWhiteBox(benign, attacks)
		if err != nil {
			t.Fatal(err)
		}
		it, err := CalibrateWhiteBoxIterative(benign, attacks)
		if err != nil {
			t.Fatal(err)
		}
		if it.TrainAccuracy < ex.TrainAccuracy-1e-9 {
			t.Fatalf("trial %d: iterative %v < exhaustive %v", trial, it.TrainAccuracy, ex.TrainAccuracy)
		}
		if it.Threshold.Direction != ex.Threshold.Direction {
			t.Fatalf("trial %d: direction mismatch", trial)
		}
	}
}

func TestCalibrateWhiteBoxIterativeInverted(t *testing.T) {
	benign := []float64{0.9, 0.92, 0.95}
	attacks := []float64{0.1, 0.2, 0.3}
	it, err := CalibrateWhiteBoxIterative(benign, attacks)
	if err != nil {
		t.Fatal(err)
	}
	if it.Threshold.Direction != Below || !testutil.BitEqual(it.TrainAccuracy, 1) {
		t.Errorf("iterative inverted = %+v", it)
	}
	if len(it.Curve) == 0 {
		t.Error("no descent trace")
	}
}

func TestCalibrateWhiteBoxIterativeErrors(t *testing.T) {
	if _, err := CalibrateWhiteBoxIterative(nil, []float64{1}); err == nil {
		t.Error("empty benign accepted")
	}
	if _, err := CalibrateWhiteBoxIterative([]float64{1}, nil); err == nil {
		t.Error("empty attack accepted")
	}
}
