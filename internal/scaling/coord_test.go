package scaling

import (
	"math"
	"testing"

	"decamouflage/internal/testutil"
)

func TestCoordModeStrings(t *testing.T) {
	if HalfPixel.String() != "half-pixel" || AlignCorners.String() != "align-corners" || Asymmetric.String() != "asymmetric" {
		t.Error("coordinate mode names wrong")
	}
	if CoordMode(9).String() == "" {
		t.Error("unknown mode String empty")
	}
}

func TestUnknownCoordModeRejected(t *testing.T) {
	if _, err := BuildCoeff(8, 4, Options{Algorithm: Bilinear, Coord: CoordMode(99)}); err == nil {
		t.Error("unknown coordinate mode accepted")
	}
	if _, err := BuildCoeff(8, 4, Options{Algorithm: Nearest, Coord: CoordMode(99)}); err == nil {
		t.Error("unknown coordinate mode accepted by nearest")
	}
}

func TestAlignCornersPinsEndpoints(t *testing.T) {
	// Under align-corners, output 0 samples source 0 and output m-1
	// samples source n-1 with full weight for every interpolating kernel.
	for _, alg := range []Algorithm{Nearest, Bilinear, Bicubic, Lanczos} {
		c, err := BuildCoeff(9, 5, Options{Algorithm: alg, Coord: AlignCorners})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		src := make([]float64, 9)
		for i := range src {
			src[i] = float64(i * 10)
		}
		dst := make([]float64, 5)
		c.Apply(src, 1, dst, 1)
		if math.Abs(dst[0]-0) > 1e-9 {
			t.Errorf("%v: first sample = %v, want 0", alg, dst[0])
		}
		if math.Abs(dst[4]-80) > 1e-9 {
			t.Errorf("%v: last sample = %v, want 80", alg, dst[4])
		}
		// 9->5 with align-corners: exact integer positions 0,2,4,6,8.
		for i, want := range []float64{0, 20, 40, 60, 80} {
			if math.Abs(dst[i]-want) > 1e-9 {
				t.Errorf("%v: sample %d = %v, want %v", alg, i, dst[i], want)
			}
		}
	}
}

func TestAlignCornersSingleOutput(t *testing.T) {
	c, err := BuildCoeff(7, 1, Options{Algorithm: Bilinear, Coord: AlignCorners})
	if err != nil {
		t.Fatal(err)
	}
	src := []float64{0, 0, 0, 42, 0, 0, 0}
	dst := make([]float64, 1)
	c.Apply(src, 1, dst, 1)
	if !testutil.BitEqual(dst[0], 42) {
		t.Errorf("single output = %v, want center sample 42", dst[0])
	}
}

func TestAsymmetricAnchorsAtZero(t *testing.T) {
	c, err := BuildCoeff(8, 4, Options{Algorithm: Nearest, Coord: Asymmetric})
	if err != nil {
		t.Fatal(err)
	}
	// src = i*2 exactly: taps 0,2,4,6.
	want := []int{0, 2, 4, 6}
	for i, row := range c.Rows {
		if row.Idx[0] != want[i] {
			t.Errorf("asymmetric nearest tap %d = %d, want %d", i, row.Idx[0], want[i])
		}
	}
}

// The attack relevance: different coordinate modes sample DIFFERENT source
// pixels, so an attack crafted for one convention targets the wrong pixels
// under another.
func TestCoordModesSampleDifferentPixels(t *testing.T) {
	half, err := BuildCoeff(16, 4, Options{Algorithm: Nearest})
	if err != nil {
		t.Fatal(err)
	}
	asym, err := BuildCoeff(16, 4, Options{Algorithm: Nearest, Coord: Asymmetric})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range half.Rows {
		if half.Rows[i].Idx[0] == asym.Rows[i].Idx[0] {
			same++
		}
	}
	if same == len(half.Rows) {
		t.Error("half-pixel and asymmetric sample identical pixels; modes indistinguishable")
	}
}

func TestCoordModesPartitionOfUnity(t *testing.T) {
	for _, mode := range []CoordMode{HalfPixel, AlignCorners, Asymmetric} {
		for _, alg := range Algorithms() {
			c, err := BuildCoeff(23, 7, Options{Algorithm: alg, Coord: mode})
			if err != nil {
				t.Fatalf("%v/%v: %v", alg, mode, err)
			}
			for i, row := range c.Rows {
				var sum float64
				for _, w := range row.W {
					sum += w
				}
				if math.Abs(sum-1) > 1e-9 {
					t.Fatalf("%v/%v row %d: weight sum %v", alg, mode, i, sum)
				}
			}
		}
	}
}
