package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Snapshot is one archived benchmark document plus where it came from.
type Snapshot struct {
	// Path is the file the document was loaded from.
	Path string
	// Doc is the parsed document.
	Doc Document
}

// LoadSnapshots reads every BENCH_*.json under dir and returns the
// documents sorted by Date (ties broken by path), oldest first — the
// committed perf trajectory cmd/benchguard -trend walks. A directory
// with no matching files returns an empty, non-nil slice; an unreadable
// or malformed file is an error (the trajectory gate must not silently
// drop history).
func LoadSnapshots(dir string) ([]Snapshot, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	out := make([]Snapshot, 0, len(paths))
	for _, p := range paths {
		buf, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var doc Document
		if err := json.Unmarshal(buf, &doc); err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		if doc.Date == "" {
			return nil, fmt.Errorf("%s: snapshot has no date", p)
		}
		out = append(out, Snapshot{Path: p, Doc: doc})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Doc.Date != out[j].Doc.Date {
			return out[i].Doc.Date < out[j].Doc.Date
		}
		return out[i].Path < out[j].Path
	})
	return out, nil
}
