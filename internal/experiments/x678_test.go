package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestRunX678(t *testing.T) {
	var out strings.Builder
	r := NewRunner(testConfig(t, &out))
	if err := r.Run(context.Background(), "X6", "X7", "X8"); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"Color histogram", "ROC AUC", "JPEG"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q", want)
		}
	}
	t.Log(got)
}
