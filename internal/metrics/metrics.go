// Package metrics implements the image-similarity measures Decamouflage's
// detectors score with: mean squared error (MSE), the structural similarity
// index (SSIM, Wang et al. 2004, Gaussian-window form), and peak
// signal-to-noise ratio (PSNR, kept for the paper's Appendix-A negative
// result).
package metrics

import (
	"context"
	"errors"
	"fmt"
	"math"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/parallel"
)

// ErrShapeMismatch indicates two images of different geometry.
var ErrShapeMismatch = errors.New("metrics: images must have identical shape")

func checkPair(a, b *imgcore.Image) error {
	if err := a.Validate(); err != nil {
		return err
	}
	if err := b.Validate(); err != nil {
		return err
	}
	if !a.SameShape(b) {
		return fmt.Errorf("%w: %v vs %v", ErrShapeMismatch, a, b)
	}
	return nil
}

// MSE returns the mean squared error between a and b over all samples
// (Eq. 5 in the paper).
func MSE(a, b *imgcore.Image) (float64, error) {
	if err := checkPair(a, b); err != nil {
		return 0, err
	}
	var s float64
	for i := range a.Pix {
		d := a.Pix[i] - b.Pix[i]
		s += d * d
	}
	return s / float64(len(a.Pix)), nil
}

// PSNR returns the peak signal-to-noise ratio in decibels with L = 256
// intensity levels (Eq. 9 in the paper). Identical images yield +Inf.
//
//declint:nan-ok shape validation runs in MSE; NaN samples propagate to the score
func PSNR(a, b *imgcore.Image) (float64, error) {
	mse, err := MSE(a, b)
	if err != nil {
		return 0, err
	}
	//declint:ignore floateq exact-zero MSE is the documented identical-images +Inf case
	if mse == 0 {
		return math.Inf(1), nil
	}
	const peak = 255.0
	return 10 * math.Log10(peak*peak/mse), nil
}

// SSIMOptions configures the structural similarity computation.
type SSIMOptions struct {
	// WindowRadius is the Gaussian window radius; the window is
	// (2r+1)x(2r+1). The standard configuration is r=5 (11x11).
	WindowRadius int
	// Sigma is the Gaussian window standard deviation (standard: 1.5).
	Sigma float64
	// K1, K2 are the stabilization constants (standard: 0.01, 0.03).
	K1, K2 float64
	// L is the dynamic range of pixel values (255 for 8-bit).
	L float64
}

// DefaultSSIM returns the canonical SSIM parameters from Wang et al.
func DefaultSSIM() SSIMOptions {
	return SSIMOptions{WindowRadius: 5, Sigma: 1.5, K1: 0.01, K2: 0.03, L: 255}
}

func (o SSIMOptions) validate() error {
	if o.WindowRadius < 1 {
		return fmt.Errorf("metrics: window radius %d < 1", o.WindowRadius)
	}
	if o.Sigma <= 0 {
		return fmt.Errorf("metrics: sigma %v <= 0", o.Sigma)
	}
	if o.L <= 0 {
		return fmt.Errorf("metrics: dynamic range %v <= 0", o.L)
	}
	return nil
}

// SSIM returns the mean structural similarity index between a and b using
// the default parameters. Color images are scored on their luminance, the
// standard convention.
//
//declint:nan-ok delegates to SSIMWith, whose checkPair validation runs first
func SSIM(a, b *imgcore.Image) (float64, error) {
	return SSIMWith(a, b, DefaultSSIM())
}

// SSIMWith returns the mean SSIM index with explicit parameters.
//
// The implementation follows the reference algorithm: per-pixel local
// means, variances and covariance computed with a separable Gaussian
// window, combined via
//
//	SSIM = ((2·μaμb + c1)(2·σab + c2)) / ((μa² + μb² + c1)(σa² + σb² + c2))
//
// and averaged over all pixel positions.
//
//declint:nan-ok shape validation runs in ssimWith; NaN samples propagate to the score
func SSIMWith(a, b *imgcore.Image, opts SSIMOptions) (float64, error) {
	return ssimWith(a, b, opts)
}

// ssimWith is SSIMWith with parallel options threaded through for the
// serial-vs-parallel equivalence tests. The Gaussian sweeps and the
// per-pixel product maps run in parallel bands; the final mean stays a
// serial reduction so the summation order — and therefore the result — is
// identical for every worker count.
func ssimWith(a, b *imgcore.Image, opts SSIMOptions, popts ...parallel.Option) (float64, error) {
	if err := checkPair(a, b); err != nil {
		return 0, err
	}
	if err := opts.validate(); err != nil {
		return 0, err
	}
	ga, gb := a.Gray(), b.Gray()
	w, h := ga.W, ga.H

	kern := gaussianKernel(opts.WindowRadius, opts.Sigma)

	muA := blurSeparable(ga.Pix, w, h, kern, popts...)
	muB := blurSeparable(gb.Pix, w, h, kern, popts...)

	n := w * h
	aa := make([]float64, n)
	bb := make([]float64, n)
	ab := make([]float64, n)
	prodOpts := append([]parallel.Option{parallel.Grain(minBlurWork)}, popts...)
	if err := parallel.For(context.Background(), n, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			aa[i] = ga.Pix[i] * ga.Pix[i]
			bb[i] = gb.Pix[i] * gb.Pix[i]
			ab[i] = ga.Pix[i] * gb.Pix[i]
		}
		return nil
	}, prodOpts...); err != nil {
		return 0, err
	}
	sAA := blurSeparable(aa, w, h, kern, popts...)
	sBB := blurSeparable(bb, w, h, kern, popts...)
	sAB := blurSeparable(ab, w, h, kern, popts...)

	c1 := (opts.K1 * opts.L) * (opts.K1 * opts.L)
	c2 := (opts.K2 * opts.L) * (opts.K2 * opts.L)

	var sum float64
	for i := 0; i < n; i++ {
		ma, mb := muA[i], muB[i]
		varA := sAA[i] - ma*ma
		varB := sBB[i] - mb*mb
		cov := sAB[i] - ma*mb
		num := (2*ma*mb + c1) * (2*cov + c2)
		den := (ma*ma + mb*mb + c1) * (varA + varB + c2)
		sum += num / den
	}
	return sum / float64(n), nil
}

// gaussianKernel returns a normalized 1-D Gaussian of radius r.
func gaussianKernel(r int, sigma float64) []float64 {
	k := make([]float64, 2*r+1)
	var sum float64
	for i := -r; i <= r; i++ {
		v := math.Exp(-float64(i*i) / (2 * sigma * sigma))
		k[i+r] = v
		sum += v
	}
	for i := range k {
		k[i] /= sum
	}
	return k
}

// minBlurWork is the per-chunk grain (in kernel-weighted samples) below
// which a blur pass stays on the calling goroutine.
const minBlurWork = 1 << 14

// blurSeparable convolves a single-channel image with a separable kernel
// using replicate border handling. Each pass runs in parallel bands over
// disjoint output rows/columns.
func blurSeparable(src []float64, w, h int, kern []float64, popts ...parallel.Option) []float64 {
	r := (len(kern) - 1) / 2
	ctx := context.Background()
	grain := parallel.GrainForWidth(w*len(kern), minBlurWork)
	tmp := make([]float64, len(src))
	// Horizontal: chunks own disjoint row bands of tmp.
	rowOpts := append([]parallel.Option{parallel.Grain(grain)}, popts...)
	//declint:ignore errdrop ctx is Background and the chunk fn never errors
	_ = parallel.For(ctx, h, func(yLo, yHi int) error {
		for y := yLo; y < yHi; y++ {
			row := src[y*w : (y+1)*w]
			out := tmp[y*w : (y+1)*w]
			for x := 0; x < w; x++ {
				var s float64
				for k := -r; k <= r; k++ {
					xx := x + k
					if xx < 0 {
						xx = 0
					} else if xx >= w {
						xx = w - 1
					}
					s += kern[k+r] * row[xx]
				}
				out[x] = s
			}
		}
		return nil
	}, rowOpts...)
	// Vertical: chunks own disjoint column bands of dst, reading all of tmp.
	dst := make([]float64, len(src))
	colOpts := append([]parallel.Option{
		parallel.Grain(parallel.GrainForWidth(h*len(kern), minBlurWork)),
	}, popts...)
	//declint:ignore errdrop ctx is Background and the chunk fn never errors
	_ = parallel.For(ctx, w, func(xLo, xHi int) error {
		for x := xLo; x < xHi; x++ {
			for y := 0; y < h; y++ {
				var s float64
				for k := -r; k <= r; k++ {
					yy := y + k
					if yy < 0 {
						yy = 0
					} else if yy >= h {
						yy = h - 1
					}
					s += kern[k+r] * tmp[yy*w+x]
				}
				dst[y*w+x] = s
			}
		}
		return nil
	}, colOpts...)
	return dst
}
