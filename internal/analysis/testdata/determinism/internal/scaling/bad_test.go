package scaling

import (
	"math/rand"
	"testing"
	"time"
)

// Test files may use wall clocks and math/rand freely.
func TestJitter(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	start := time.Now()
	_ = Jitter()
	if rng.Float64() < 0 || time.Since(start) < 0 {
		t.Fatal("impossible")
	}
}
