package decamouflage

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"decamouflage/internal/detect"
	"decamouflage/internal/imgcore"
)

// hookScorer scores a constant and invokes an optional per-call hook, for
// driving DetectBatch through its error and cancellation paths.
type hookScorer struct {
	hook func() error
}

func (s *hookScorer) Name() string { return "hook" }

func (s *hookScorer) Score(*imgcore.Image) (float64, error) {
	if s.hook != nil {
		if err := s.hook(); err != nil {
			return 0, err
		}
	}
	return 0, nil
}

func hookEnsemble(t *testing.T, hook func() error) *Ensemble {
	t.Helper()
	d, err := detect.NewDetector(&hookScorer{hook: hook}, detect.Threshold{Value: 1, Direction: detect.Above})
	if err != nil {
		t.Fatal(err)
	}
	e, err := detect.NewEnsemble(d)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func batchImages(n int) []*Image {
	imgs := make([]*Image, n)
	for i := range imgs {
		imgs[i] = imgcore.MustNew(4, 4, 1)
		imgs[i].Fill(float64(i))
	}
	return imgs
}

func TestDetectBatchEmptySlice(t *testing.T) {
	e := hookEnsemble(t, nil)
	out, err := DetectBatch(context.Background(), e, nil)
	if err != nil {
		t.Fatalf("nil batch: %v", err)
	}
	if out == nil || len(out) != 0 {
		t.Fatalf("nil batch: got %v, want empty non-nil slice", out)
	}
	out, err = DetectBatch(context.Background(), e, []*Image{})
	if err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if out == nil || len(out) != 0 {
		t.Fatalf("empty batch: got %v, want empty non-nil slice", out)
	}
}

func TestDetectBatchCancellationMidBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var scored atomic.Int64
	e := hookEnsemble(t, func() error {
		// Cancel while the batch is in flight, after the third image.
		if scored.Add(1) == 3 {
			cancel()
		}
		return nil
	})
	out, err := DetectBatch(ctx, e, batchImages(64))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Fatal("cancelled batch returned verdicts")
	}
	if n := scored.Load(); n >= 64 {
		t.Fatalf("all %d images scored despite mid-batch cancellation", n)
	}
}

func TestDetectBatchFirstErrorWinsAndIsIndexed(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	e := hookEnsemble(t, func() error {
		if calls.Add(1) == 4 {
			return boom
		}
		return nil
	})
	_, err := DetectBatch(context.Background(), e, batchImages(16))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if !strings.Contains(err.Error(), "image ") {
		t.Fatalf("error %q does not identify the failing image", err)
	}
}

func TestDetectBatchPreservesOrder(t *testing.T) {
	e := hookEnsemble(t, nil)
	imgs := batchImages(32)
	out, err := DetectBatch(context.Background(), e, imgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(imgs) {
		t.Fatalf("got %d verdicts, want %d", len(out), len(imgs))
	}
	for i, v := range out {
		if v == nil {
			t.Fatalf("verdict %d is nil", i)
		}
		if len(v.Verdicts) != 1 {
			t.Fatalf("verdict %d has %d method verdicts", i, len(v.Verdicts))
		}
	}
}
