package cnn

import (
	"path/filepath"
	"testing"

	"decamouflage/internal/testutil"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	n, err := NewNetwork(Config{InputW: 16, InputH: 16, Classes: NumShapeClasses, Conv1: 4, Conv2: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Train briefly so the weights are non-trivial.
	if _, err := n.Fit(ShapeDataset(8, 16, 1), TrainOptions{Epochs: 2, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := n.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	// Predictions must be identical.
	for class := 0; class < NumShapeClasses; class++ {
		img := ShapeImage(class, 16, 42)
		p1, probs1, err := n.Predict(img)
		if err != nil {
			t.Fatal(err)
		}
		p2, probs2, err := back.Predict(img)
		if err != nil {
			t.Fatal(err)
		}
		if p1 != p2 {
			t.Fatalf("class %d: predictions diverge %d vs %d", class, p1, p2)
		}
		for i := range probs1 {
			if !testutil.BitEqual(probs1[i], probs2[i]) {
				t.Fatalf("class %d: probabilities diverge", class)
			}
		}
	}
}

func TestLoadNetworkErrors(t *testing.T) {
	if _, err := LoadNetwork([]byte("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := LoadNetwork([]byte(`{"config":{"InputW":4,"InputH":4,"Classes":2}}`)); err == nil {
		t.Error("invalid config accepted")
	}
	// Wrong tensor count.
	if _, err := LoadNetwork([]byte(`{"config":{"InputW":16,"InputH":16,"Classes":2},"weights":[[1]]}`)); err == nil {
		t.Error("wrong tensor count accepted")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadNetworkWrongTensorSize(t *testing.T) {
	n, err := NewNetwork(Config{InputW: 16, InputH: 16, Classes: 2, Conv1: 2, Conv2: 2})
	if err != nil {
		t.Fatal(err)
	}
	data, err := n.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	// Truncate one tensor by rebuilding the JSON crudely: change Conv1 in
	// the config so tensor sizes disagree.
	mutated := []byte(string(data))
	mutated = []byte(replaceOnce(string(mutated), `"Conv1":2`, `"Conv1":3`))
	if _, err := LoadNetwork(mutated); err == nil {
		t.Error("mismatched tensor sizes accepted")
	}
}

func replaceOnce(s, old, new string) string {
	for i := 0; i+len(old) <= len(s); i++ {
		if s[i:i+len(old)] == old {
			return s[:i] + new + s[i+len(old):]
		}
	}
	return s
}
