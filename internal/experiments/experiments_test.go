package experiments

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"decamouflage/internal/scaling"
	"decamouflage/internal/testutil"
)

func testConfig(t *testing.T, out *strings.Builder) Config {
	t.Helper()
	return Config{
		N:    8,
		SrcW: 64, SrcH: 64, DstW: 16, DstH: 16,
		Seed: 3,
		Out:  out,
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.N != 100 || cfg.SrcW != 128 || cfg.DstW != 32 || cfg.Algorithm != scaling.Bilinear {
		t.Errorf("defaults = %+v", cfg)
	}
	if !testutil.BitEqual(cfg.Eps, 2) || cfg.Seed != 1 || cfg.Out == nil {
		t.Errorf("defaults = %+v", cfg)
	}
	// Explicit values survive.
	cfg = Config{N: 5, Eps: 4}.withDefaults()
	if cfg.N != 5 || !testutil.BitEqual(cfg.Eps, 4) {
		t.Errorf("explicit values clobbered: %+v", cfg)
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) < 24 {
		t.Fatalf("registry has %d experiments", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.run == nil {
			t.Errorf("malformed experiment %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate ID %s", e.ID)
		}
		seen[e.ID] = true
	}
	for _, want := range []string{"T1", "T2", "T8", "F9", "F13", "X1", "X5"} {
		if _, ok := ByID(want); !ok {
			t.Errorf("missing experiment %s", want)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("bogus ID found")
	}
	if len(IDs()) != len(all) {
		t.Error("IDs length mismatch")
	}
}

func TestRunUnknownID(t *testing.T) {
	var out strings.Builder
	r := NewRunner(testConfig(t, &out))
	if err := r.Run(context.Background(), "BOGUS"); err == nil {
		t.Error("unknown ID accepted")
	}
}

func TestRunnerCachesCorpora(t *testing.T) {
	var out strings.Builder
	r := NewRunner(testConfig(t, &out))
	ctx := context.Background()
	a, err := r.Train(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Train(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("train corpus rebuilt")
	}
	e1, err := r.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := r.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Error("eval corpus rebuilt")
	}
	if a == e1 {
		t.Error("train and eval share a corpus")
	}
}

// TestRunTables runs every table experiment end to end at tiny scale and
// checks the paper's qualitative claims hold: high accuracy for T2-T6 and
// T8, and a sane Table 7.
func TestRunTables(t *testing.T) {
	var out strings.Builder
	cfg := testConfig(t, &out)
	dir := t.TempDir()
	cfg.CSVDir = filepath.Join(dir, "csv")
	cfg.ArtifactsDir = filepath.Join(dir, "art")
	r := NewRunner(cfg)
	ctx := context.Background()
	if err := r.Run(ctx, "T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9"); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"paper Table 1", "LeNet-5",
		"paper Table 2", "paper Table 3", "paper Table 4", "paper Table 5",
		"paper Table 6", "paper Table 7", "paper Table 8",
		"White-box ensemble", "Black-box ensemble",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// The ensemble rows must report high accuracy even at this tiny scale.
	for _, line := range strings.Split(got, "\n") {
		if strings.Contains(line, "-box ensemble") {
			if !strings.Contains(line, "100.0%") && !strings.Contains(line, "9") {
				t.Errorf("suspicious ensemble row: %s", line)
			}
		}
	}
}

func TestRunFigures(t *testing.T) {
	var out strings.Builder
	cfg := testConfig(t, &out)
	dir := t.TempDir()
	cfg.CSVDir = filepath.Join(dir, "csv")
	cfg.ArtifactsDir = filepath.Join(dir, "art")
	r := NewRunner(cfg)
	ctx := context.Background()
	if err := r.Run(ctx, "F1", "F3", "F4", "F6", "F8", "F9", "F10", "F11", "F12", "F13", "F14", "F15"); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"Figures 1-2", "Figure 3", "Figures 4-5", "Figures 6-7", "Figure 8",
		"Figure 9", "Figure 10", "Figure 11", "Figure 12", "Figure 13",
		"Figure 14", "Figure 15", "threshold",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// CSVs and artifacts were written.
	csvs, err := os.ReadDir(cfg.CSVDir)
	if err != nil || len(csvs) < 8 {
		t.Errorf("csv output: %v, %d files", err, len(csvs))
	}
	arts, err := os.ReadDir(cfg.ArtifactsDir)
	if err != nil || len(arts) < 8 {
		t.Errorf("artifact output: %v, %d files", err, len(arts))
	}
}

func TestRunExtensions(t *testing.T) {
	if testing.Short() {
		t.Skip("extension sweeps are slow on tiny machines")
	}
	var out strings.Builder
	r := NewRunner(testConfig(t, &out))
	ctx := context.Background()
	if err := r.Run(ctx, "X2", "X3", "X4", "X5"); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"ε sweep", "CSP parameter sensitivity", "Detection vs prevention", "Backdoor poisoning audit",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunX1CrossKernel(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-kernel sweep builds nine corpora")
	}
	var out strings.Builder
	r := NewRunner(testConfig(t, &out))
	if err := r.Run(context.Background(), "X1"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Cross-kernel") {
		t.Error("missing cross-kernel table")
	}
}

func TestRunHonoursCancellation(t *testing.T) {
	var out strings.Builder
	r := NewRunner(testConfig(t, &out))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := r.Run(ctx, "T2"); err == nil {
		t.Error("cancelled context accepted")
	}
}
