package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// File is one parsed source file plus the metadata checks scope on.
type File struct {
	Ast      *ast.File
	Filename string
	Test     bool // *_test.go
}

// Package is one type-checked analysis unit. For a directory with in-package
// test files the unit contains both the library files and the tests, so a
// single pass over Files covers everything; an external test package
// (package foo_test) is a separate Package.
type Package struct {
	// Path is the import path ("decamouflage/internal/scaling"); external
	// test packages carry the ".test" suffix convention ("..._test").
	Path  string
	Fset  *token.FileSet
	Files []*File
	Pkg   *types.Package
	Info  *types.Info
}

// HasSuffix reports whether the package's import path equals suffix or ends
// with "/"+suffix. All check scoping uses this, so fixtures under testdata
// mirror the real module layout instead of needing their own config.
func (p *Package) HasSuffix(suffix string) bool {
	return p.Path == suffix || strings.HasSuffix(p.Path, "/"+suffix)
}

// loader type-checks a module from source with no toolchain dependency
// beyond the standard library: module-internal imports are resolved by
// recursively loading their directory, everything else falls through to the
// stdlib source importer.
type loader struct {
	fset    *token.FileSet
	root    string // absolute module root
	modPath string
	std     types.Importer
	// libs caches the import-facing unit (non-test files only) per path.
	libs map[string]*types.Package
}

// Import implements types.Importer for module-internal and stdlib paths.
func (l *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.libs[path]; ok {
		return pkg, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		pkg, err := l.loadLib(filepath.Join(l.root, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		l.libs[path] = pkg
		return pkg, nil
	}
	return l.std.Import(path)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// excludedByBuildConstraint reports whether the file's //go:build
// constraint evaluates false under declint's tag set, which is empty:
// every tag reads as false, so declint analyzes the default build. A
// tag-gated alternate file (e.g. the noobs variant of a const pair) is
// skipped exactly as `go build` with no -tags would skip it; its
// default-build counterpart (`//go:build !tag`) stays in.
func excludedByBuildConstraint(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			return !expr.Eval(func(string) bool { return false })
		}
	}
	return false
}

// parseDir parses every .go file in dir (no recursion), split into library
// files, in-package test files, and external (_test package) test files.
// Files excluded by a build constraint under the empty tag set are dropped,
// matching the unit `go build ./...` compiles.
func (l *loader) parseDir(dir string) (lib, inTest, extTest []*File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		if excludedByBuildConstraint(f) {
			continue
		}
		file := &File{Ast: f, Filename: full, Test: strings.HasSuffix(name, "_test.go")}
		switch {
		case !file.Test:
			lib = append(lib, file)
		case strings.HasSuffix(f.Name.Name, "_test"):
			extTest = append(extTest, file)
		default:
			inTest = append(inTest, file)
		}
	}
	return lib, inTest, extTest, nil
}

func (l *loader) check(path string, files []*File, info *types.Info) (*types.Package, error) {
	asts := make([]*ast.File, len(files))
	for i, f := range files {
		asts[i] = f.Ast
	}
	cfg := types.Config{Importer: l}
	pkg, err := cfg.Check(path, l.fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return pkg, nil
}

// loadLib type-checks only the non-test files of dir — the unit other
// packages import.
func (l *loader) loadLib(dir, path string) (*types.Package, error) {
	lib, _, _, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(lib) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}
	return l.check(path, lib, newInfo())
}

// loadUnits builds the analysis units for dir: the combined
// library+in-package-test unit, and the external test unit if present.
func (l *loader) loadUnits(dir, path string) ([]*Package, error) {
	lib, inTest, extTest, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	var units []*Package
	if len(lib)+len(inTest) > 0 {
		info := newInfo()
		pkg, err := l.check(path, append(append([]*File{}, lib...), inTest...), info)
		if err != nil {
			return nil, err
		}
		units = append(units, &Package{
			Path: path, Fset: l.fset,
			Files: append(append([]*File{}, lib...), inTest...),
			Pkg:   pkg, Info: info,
		})
	}
	if len(extTest) > 0 {
		info := newInfo()
		pkg, err := l.check(path+"_test", extTest, info)
		if err != nil {
			return nil, err
		}
		units = append(units, &Package{
			Path: path + "_test", Fset: l.fset, Files: extTest, Pkg: pkg, Info: info,
		})
	}
	return units, nil
}

// modulePath reads the module directive from root/go.mod, falling back to
// the directory base name (the convention testdata fixtures rely on).
func modulePath(root string) string {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if rest, ok := strings.CutPrefix(line, "module "); ok {
				return strings.TrimSpace(rest)
			}
		}
	}
	return filepath.Base(root)
}

// LoadModule parses and type-checks every package under root. Directories
// named testdata, vendor, or starting with "." or "_" are skipped, matching
// the go tool's convention. The returned packages are sorted by path.
func LoadModule(root string) ([]*Package, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &loader{
		fset:    fset,
		root:    abs,
		modPath: modulePath(abs),
		std:     importer.ForCompiler(fset, "source", nil),
		libs:    map[string]*types.Package{},
	}
	var dirs []string
	err = filepath.WalkDir(abs, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != abs && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") {
			if dir := filepath.Dir(p); len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(abs, dir)
		if err != nil {
			return nil, err
		}
		path := l.modPath
		if rel != "." {
			path += "/" + filepath.ToSlash(rel)
		}
		units, err := l.loadUnits(dir, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, units...)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}
