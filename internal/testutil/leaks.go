// Goroutine-leak detection for test suites, stdlib only. VerifyNoLeaks
// snapshots the live goroutine set when called and diffs it against the
// set at test cleanup: anything the test started and failed to join is a
// leak. The concurrency invariants declint's golife check proves statically
// (every spawn has a termination signal and a join) get their dynamic
// counterpart here — the two must agree, and a suite that passes golife
// but trips VerifyNoLeaks has found a hole in one of them.
package testutil

import (
	"runtime"
	"sort"
	"strings"
	"time"
)

// testingT is the subset of *testing.T VerifyNoLeaks needs; an interface
// so the helper's own tests can capture failures instead of failing.
type testingT interface {
	Helper()
	Cleanup(func())
	Errorf(format string, args ...any)
}

// VerifyNoLeaks registers a cleanup that fails the test if goroutines
// started during the test are still running when it ends. Call it first
// thing in the test (or TestMain-adjacent helper); every goroutine visible
// at that point is grandfathered in, so parallel siblings and the test
// runner itself never count.
//
// Exiting goroutines are not instantaneous — a Stop that closed its done
// channel returns before the runtime reaps the stack — so the differ
// retries with backoff for a settle window before declaring a leak.
func VerifyNoLeaks(t testingT) {
	t.Helper()
	before := goroutineSet()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		var leaked []string
		for {
			leaked = leakedSince(before)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("leaked %d goroutine(s):\n%s", len(leaked), strings.Join(leaked, "\n"))
	})
}

// goroutineSet returns the current goroutine stacks keyed by header line
// ("goroutine N [state]:" with the state stripped, so a goroutine that
// merely changed state between snapshots is not reported as new).
func goroutineSet() map[string]bool {
	set := map[string]bool{}
	for _, g := range goroutineDump() {
		set[goroutineID(g)] = true
	}
	return set
}

// leakedSince returns rendered stacks of goroutines absent from before,
// skipping ones that are uninteresting by construction: the differ's own
// caller and runtime-internal helpers that come and go on their own
// schedule (GC workers, finalizers, timer scavenging).
func leakedSince(before map[string]bool) []string {
	var leaked []string
	for _, g := range goroutineDump() {
		if before[goroutineID(g)] || boringGoroutine(g) {
			continue
		}
		leaked = append(leaked, strings.TrimSpace(g))
	}
	sort.Strings(leaked)
	return leaked
}

// goroutineDump splits a full runtime.Stack dump into one string per
// goroutine.
func goroutineDump() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	return strings.Split(string(buf), "\n\n")
}

// goroutineID extracts "goroutine N" from a stack header, dropping the
// mutable [state] suffix.
func goroutineID(g string) string {
	header, _, _ := strings.Cut(g, "\n")
	id, _, _ := strings.Cut(header, " [")
	return id
}

// boringGoroutine reports whether the stack belongs to runtime machinery
// that starts and stops outside any test's control.
func boringGoroutine(g string) bool {
	for _, frame := range []string{
		"runtime.gc",
		"runtime.bgsweep",
		"runtime.bgscavenge",
		"runtime.forcegchelper",
		"runtime/trace",
		"testing.(*T).Run",
		"testing.tRunner",
		"runtime.ReadMemStats",
		"created by runtime",
	} {
		if strings.Contains(g, frame) {
			return true
		}
	}
	return false
}
