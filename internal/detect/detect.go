// Package detect is the core of Decamouflage: the three image-scaling
// attack detection methods of the paper (scaling, filtering, steganalysis),
// their score metrics (MSE, SSIM, PSNR, CSP), threshold handling, white-box
// and black-box calibration, and the majority-voting ensemble.
package detect

import (
	"context"
	"errors"
	"fmt"

	"decamouflage/internal/filtering"
	"decamouflage/internal/imgcore"
	"decamouflage/internal/metrics"
	"decamouflage/internal/obs"
	"decamouflage/internal/scaling"
	"decamouflage/internal/steg"
)

// Metric identifies a score function used by the spatial-domain methods.
type Metric int

// Supported metrics.
const (
	// MSE: mean squared error between the input and its transform
	// (attack images score high).
	MSE Metric = iota + 1
	// SSIM: structural similarity (attack images score low).
	SSIM
	// PSNR: peak signal-to-noise ratio; included to reproduce the paper's
	// Appendix-A negative result (not recommended for detection).
	PSNR
	// CSP: centered spectrum points (attack images score >= 2).
	CSP
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case MSE:
		return "MSE"
	case SSIM:
		return "SSIM"
	case PSNR:
		return "PSNR"
	case CSP:
		return "CSP"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// AttackDirection returns the comparison direction under which high (Above)
// or low (Below) scores indicate an attack for this metric.
func (m Metric) AttackDirection() Direction {
	switch m {
	case SSIM, PSNR:
		return Below
	default:
		return Above
	}
}

// Direction tells which side of a threshold is classified as an attack.
type Direction int

// Directions. The paper's Algorithms 1-3 use "score >= T" uniformly, which
// is correct for MSE and CSP but inverted for SSIM (their own Figure 7
// shows attack SSIM below benign); Decamouflage is explicit about it.
const (
	// Above classifies score >= threshold as attack.
	Above Direction = iota + 1
	// Below classifies score <= threshold as attack.
	Below
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case Above:
		return "above"
	case Below:
		return "below"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Threshold is a decision boundary over a scorer's output.
type Threshold struct {
	Value     float64   `json:"value"`
	Direction Direction `json:"direction"`
}

// Classify reports whether score falls on the attack side.
func (t Threshold) Classify(score float64) bool {
	switch t.Direction {
	case Below:
		return score <= t.Value
	default:
		return score >= t.Value
	}
}

// Validate checks the threshold is usable.
func (t Threshold) Validate() error {
	if t.Direction != Above && t.Direction != Below {
		return fmt.Errorf("detect: invalid threshold direction %d", int(t.Direction))
	}
	return nil
}

// Verdict is a single method's decision about one image.
type Verdict struct {
	// Attack reports the classification.
	Attack bool
	// Score is the raw metric value the decision was made on.
	Score float64
	// Method names the detection method that produced the verdict.
	Method string
}

// Scorer computes a raw detection score for an image. Implementations must
// be safe for concurrent use.
type Scorer interface {
	// Name identifies the method/metric pair, e.g. "scaling/MSE".
	Name() string
	// Score computes the raw metric value for img.
	Score(img *imgcore.Image) (float64, error)
}

// ContextScorer is a Scorer that additionally accepts a context, through
// which per-stage observability (obs spans and latency histograms) flows.
// Detector.DetectCtx uses ScoreCtx when available and falls back to Score,
// so third-party Scorer implementations keep working unchanged.
type ContextScorer interface {
	Scorer
	// ScoreCtx computes the raw metric value for img, recording stage
	// timings under ctx's trace (if any).
	ScoreCtx(ctx context.Context, img *imgcore.Image) (float64, error)
}

// Interface compliance.
var (
	_ ContextScorer = (*ScalingScorer)(nil)
	_ ContextScorer = (*FilteringScorer)(nil)
	_ ContextScorer = (*StegScorer)(nil)
)

// stageHist returns the latency histogram for one named stage of a scorer,
// resolved once at scorer construction so the hot path never touches the
// registry.
func stageHist(scorer, stage string) *obs.Histogram {
	return obs.H("detect.stage." + scorer + "." + stage + ".seconds")
}

// ErrNilScaler indicates a scorer constructed without its scaler.
var ErrNilScaler = errors.New("detect: scaler is required")

// ScalingScorer implements the paper's Method 1: downscale the input with
// the protected model's scaler, upscale back, and measure the dissimilarity
// between the input and the round trip. Benign images survive the round
// trip; attack images flip to the hidden target.
type ScalingScorer struct {
	scaler *scaling.Scaler
	// upscaler is the prepared dst->src operator for inputs matching the
	// scaler's source geometry; other sizes fall back to a fresh build.
	upscaler *scaling.Scaler
	metric   Metric

	// Per-stage latency histograms, resolved at construction.
	downH, upH, metricH *obs.Histogram
}

// NewScalingScorer builds the Method-1 scorer.
func NewScalingScorer(scaler *scaling.Scaler, metric Metric) (*ScalingScorer, error) {
	if scaler == nil {
		return nil, ErrNilScaler
	}
	if metric != MSE && metric != SSIM && metric != PSNR {
		return nil, fmt.Errorf("detect: scaling method does not support metric %v", metric)
	}
	srcW, srcH := scaler.SrcSize()
	dstW, dstH := scaler.DstSize()
	up, err := scaling.NewScaler(dstW, dstH, srcW, srcH, scaler.Options())
	if err != nil {
		return nil, fmt.Errorf("detect: prepare upscaler: %w", err)
	}
	name := "scaling/" + metric.String()
	return &ScalingScorer{
		scaler: scaler, upscaler: up, metric: metric,
		downH:   stageHist(name, "downscale"),
		upH:     stageHist(name, "upscale"),
		metricH: stageHist(name, "metric"),
	}, nil
}

// Name implements Scorer.
func (s *ScalingScorer) Name() string { return "scaling/" + s.metric.String() }

// Score implements Scorer.
//
//declint:nan-ok delegates to ScoreCtx, which validates the input via imgcore.Validate
func (s *ScalingScorer) Score(img *imgcore.Image) (float64, error) {
	return s.ScoreCtx(context.Background(), img)
}

// ScoreCtx implements ContextScorer: the round trip runs as three observed
// stages (downscale, upscale, metric).
func (s *ScalingScorer) ScoreCtx(ctx context.Context, img *imgcore.Image) (float64, error) {
	if err := img.Validate(); err != nil {
		return 0, err
	}
	_, st := obs.StartStage(ctx, "downscale", s.downH)
	down, err := s.scaler.Resize(img)
	st.End()
	if err != nil {
		return 0, fmt.Errorf("detect: scaling downscale: %w", err)
	}
	var up *imgcore.Image
	_, st = obs.StartStage(ctx, "upscale", s.upH)
	if upW, upH := s.upscaler.DstSize(); upW == img.W && upH == img.H {
		up, err = s.upscaler.Resize(down)
	} else {
		up, err = scaling.Resize(down, img.W, img.H, s.scaler.Options())
	}
	st.End()
	if err != nil {
		return 0, fmt.Errorf("detect: scaling upscale: %w", err)
	}
	_, st = obs.StartStage(ctx, "metric", s.metricH)
	v, err := applyMetric(s.metric, img, up)
	st.End()
	return v, err
}

// FilteringScorer implements the paper's Method 2: apply a minimum filter
// and measure the dissimilarity between the input and the filtered image.
// The embedded target pixels are extreme values relative to their
// neighborhood, so erosion damages attack images far more than benign ones.
type FilteringScorer struct {
	window int
	metric Metric

	// Per-stage latency histograms, resolved at construction.
	filterH, metricH *obs.Histogram
}

// NewFilteringScorer builds the Method-2 scorer with the given minimum
// filter window (the paper uses 2).
func NewFilteringScorer(window int, metric Metric) (*FilteringScorer, error) {
	if window < 2 {
		return nil, fmt.Errorf("detect: filter window %d < 2", window)
	}
	if metric != MSE && metric != SSIM && metric != PSNR {
		return nil, fmt.Errorf("detect: filtering method does not support metric %v", metric)
	}
	name := "filtering/" + metric.String()
	return &FilteringScorer{
		window: window, metric: metric,
		filterH: stageHist(name, "minfilter"),
		metricH: stageHist(name, "metric"),
	}, nil
}

// Name implements Scorer.
func (s *FilteringScorer) Name() string { return "filtering/" + s.metric.String() }

// Score implements Scorer.
//
//declint:nan-ok delegates to ScoreCtx, which validates the input via imgcore.Validate
func (s *FilteringScorer) Score(img *imgcore.Image) (float64, error) {
	return s.ScoreCtx(context.Background(), img)
}

// ScoreCtx implements ContextScorer: erosion and the metric run as two
// observed stages.
func (s *FilteringScorer) ScoreCtx(ctx context.Context, img *imgcore.Image) (float64, error) {
	if err := img.Validate(); err != nil {
		return 0, err
	}
	_, st := obs.StartStage(ctx, "minfilter", s.filterH)
	f, err := filtering.Minimum(img, s.window)
	st.End()
	if err != nil {
		return 0, fmt.Errorf("detect: minimum filter: %w", err)
	}
	_, st = obs.StartStage(ctx, "metric", s.metricH)
	v, err := applyMetric(s.metric, img, f)
	st.End()
	return v, err
}

// StegScorer implements the paper's Method 3: the CSP count in the
// frequency domain (see internal/steg).
type StegScorer struct {
	opts steg.Options
	cspH *obs.Histogram
}

// NewStegScorer builds the Method-3 scorer. Zero-valued options take the
// calibrated defaults.
func NewStegScorer(opts steg.Options) *StegScorer {
	return &StegScorer{opts: opts, cspH: stageHist("steganalysis/CSP", "csp")}
}

// Name implements Scorer.
func (s *StegScorer) Name() string { return "steganalysis/CSP" }

// Score implements Scorer.
//
//declint:nan-ok delegates to steg.CSP, which validates input; NaN/Inf totality is pinned by FuzzCSP
func (s *StegScorer) Score(img *imgcore.Image) (float64, error) {
	return s.ScoreCtx(context.Background(), img)
}

// ScoreCtx implements ContextScorer: the CSP computation is one observed
// stage.
//
//declint:nan-ok delegates to steg.CSP, which validates input; NaN/Inf totality is pinned by FuzzCSP
func (s *StegScorer) ScoreCtx(ctx context.Context, img *imgcore.Image) (float64, error) {
	_, st := obs.StartStage(ctx, "csp", s.cspH)
	n, err := steg.CSP(img, s.opts)
	st.End()
	if err != nil {
		return 0, fmt.Errorf("detect: csp: %w", err)
	}
	return float64(n), nil
}

func applyMetric(m Metric, a, b *imgcore.Image) (float64, error) {
	switch m {
	case MSE:
		return metrics.MSE(a, b)
	case SSIM:
		return metrics.SSIM(a, b)
	case PSNR:
		return metrics.PSNR(a, b)
	default:
		return 0, fmt.Errorf("detect: unsupported metric %v", m)
	}
}

// Detector couples a scorer with a decision threshold — one deployable
// detection method (the paper's Algorithms 1-3).
type Detector struct {
	scorer    Scorer
	threshold Threshold

	// Per-method score latency and verdict tallies, resolved at
	// construction (detect.score.<name>.seconds, detect.verdict.<name>.*).
	scoreH  *obs.Histogram
	attackC *obs.Counter
	benignC *obs.Counter
}

// NewDetector builds a detector; the threshold must be valid.
func NewDetector(scorer Scorer, threshold Threshold) (*Detector, error) {
	if scorer == nil {
		return nil, errors.New("detect: scorer is required")
	}
	if err := threshold.Validate(); err != nil {
		return nil, err
	}
	name := scorer.Name()
	return &Detector{
		scorer: scorer, threshold: threshold,
		scoreH:  obs.H("detect.score." + name + ".seconds"),
		attackC: obs.C("detect.verdict." + name + ".attack"),
		benignC: obs.C("detect.verdict." + name + ".benign"),
	}, nil
}

// Name returns the underlying scorer's name.
func (d *Detector) Name() string { return d.scorer.Name() }

// Threshold returns the decision boundary.
func (d *Detector) Threshold() Threshold { return d.threshold }

// Detect scores img and classifies it.
//
//declint:nan-ok NaN/Inf handling is the scorer's contract; a NaN score classifies as benign (Classify is false on NaN)
func (d *Detector) Detect(img *imgcore.Image) (Verdict, error) {
	return d.DetectCtx(context.Background(), img)
}

// DetectCtx scores img and classifies it, recording the method's score
// latency and verdict tally, and — under a traced context — a span named
// after the method carrying the score and decision, with the scorer's
// stage spans nested beneath it (when the scorer is a ContextScorer).
//
//declint:nan-ok NaN/Inf handling is the scorer's contract; a NaN score classifies as benign (Classify is false on NaN)
func (d *Detector) DetectCtx(ctx context.Context, img *imgcore.Image) (Verdict, error) {
	sctx, st := obs.StartStage(ctx, d.scorer.Name(), d.scoreH)
	var (
		score float64
		err   error
	)
	if cs, ok := d.scorer.(ContextScorer); ok {
		score, err = cs.ScoreCtx(sctx, img)
	} else {
		score, err = d.scorer.Score(img)
	}
	return d.verdictFrom(st, score, err)
}

// detectIn scores through a per-image Intermediates table when the scorer
// supports it, sharing memoized substrates with the other ensemble
// members; ContextScorer and plain Scorer implementations fall back to
// their legacy entry points on the raw image, so third-party scorers keep
// working inside the pipeline ensemble unchanged.
func (d *Detector) detectIn(ctx context.Context, in *Intermediates) (Verdict, error) {
	sctx, st := obs.StartStage(ctx, d.scorer.Name(), d.scoreH)
	var (
		score float64
		err   error
	)
	switch s := d.scorer.(type) {
	case PipelineScorer:
		score, err = s.ScorePipeline(sctx, in)
	case ContextScorer:
		score, err = s.ScoreCtx(sctx, in.img)
	default:
		score, err = d.scorer.Score(in.img)
	}
	return d.verdictFrom(st, score, err)
}

// verdictFrom finishes a detection: classify, annotate the stage span and
// tally the verdict counters. Shared by DetectCtx and detectIn so both
// paths record identically.
func (d *Detector) verdictFrom(st obs.Stage, score float64, err error) (Verdict, error) {
	if err != nil {
		st.End()
		return Verdict{}, err
	}
	v := Verdict{
		Attack: d.threshold.Classify(score),
		Score:  score,
		Method: d.scorer.Name(),
	}
	sp := st.Span()
	sp.AttrFloat("score", score)
	sp.AttrBool("attack", v.Attack)
	st.End()
	if v.Attack {
		d.attackC.Inc()
	} else {
		d.benignC.Inc()
	}
	return v, nil
}

// DefaultCSPThreshold is the paper's fixed steganalysis decision rule:
// two or more centered spectrum points indicate an attack, with no
// per-dataset calibration required.
func DefaultCSPThreshold() Threshold {
	return Threshold{Value: 2, Direction: Above}
}
