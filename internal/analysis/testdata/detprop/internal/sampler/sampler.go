// Fixture helper: a non-kernel package that draws from the global PRNG.
package sampler

import "math/rand"

// Next draws one sample.
func Next() float64 {
	return rand.Float64()
}
