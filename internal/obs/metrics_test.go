package obs

import (
	"strings"
	"testing"
	"time"
)

// withRecording enables recording for one test and restores the disabled
// default afterwards.
func withRecording(t *testing.T) {
	t.Helper()
	if compiledOut {
		t.Skip("observability compiled out (noobs)")
	}
	Enable()
	t.Cleanup(Disable)
}

func TestCounterDisabledByDefault(t *testing.T) {
	if compiledOut {
		t.Skip("observability compiled out (noobs)")
	}
	var c Counter
	c.Inc()
	c.Add(5)
	if got := c.Value(); got != 0 {
		t.Fatalf("disabled counter recorded %d, want 0", got)
	}
}

func TestCounter(t *testing.T) {
	withRecording(t)
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-3) // counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var nilC *Counter
	nilC.Inc() // must not panic
	if got := nilC.Value(); got != 0 {
		t.Fatalf("nil counter = %d, want 0", got)
	}
}

func TestGauge(t *testing.T) {
	withRecording(t)
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	var nilG *Gauge
	nilG.Set(1)
	nilG.Add(1)
}

func TestHistogramBasics(t *testing.T) {
	withRecording(t)
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Observe(3 * time.Millisecond)
	}
	if got := h.Count(); got != 10 {
		t.Fatalf("count = %d, want 10", got)
	}
	if got := h.Sum(); got != 30*time.Millisecond {
		t.Fatalf("sum = %v, want 30ms", got)
	}
	if got := h.Mean(); got != 3*time.Millisecond {
		t.Fatalf("mean = %v, want 3ms", got)
	}
	// All observations land in the (2ms, 5ms] bucket, so every quantile
	// interpolates inside it.
	for _, q := range []float64{0.5, 0.95, 0.99} {
		v := h.Quantile(q)
		if v <= 2*time.Millisecond || v > 5*time.Millisecond {
			t.Fatalf("q%.2f = %v, want within (2ms, 5ms]", q, v)
		}
	}
}

func TestHistogramQuantileSpread(t *testing.T) {
	withRecording(t)
	var h Histogram
	// 90 fast observations and 10 slow ones: p50 stays in the fast
	// bucket, p99 in the slow one.
	for i := 0; i < 90; i++ {
		h.Observe(1500 * time.Microsecond) // (1ms, 2ms]
	}
	for i := 0; i < 10; i++ {
		h.Observe(300 * time.Millisecond) // (200ms, 500ms]
	}
	if p50 := h.Quantile(0.50); p50 > 2*time.Millisecond {
		t.Fatalf("p50 = %v, want <= 2ms", p50)
	}
	if p99 := h.Quantile(0.99); p99 <= 200*time.Millisecond {
		t.Fatalf("p99 = %v, want > 200ms", p99)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	withRecording(t)
	var h Histogram
	h.Observe(time.Minute) // beyond the 10s top bound
	if got := h.Count(); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
	// +Inf observations report the last finite bound as a floor.
	if got := h.Quantile(0.5); got != 10*time.Second {
		t.Fatalf("quantile = %v, want 10s floor", got)
	}
}

func TestHistogramDisabled(t *testing.T) {
	if compiledOut {
		t.Skip("observability compiled out (noobs)")
	}
	var h Histogram
	h.Observe(time.Millisecond)
	h.ObserveSince(time.Time{}) // zero start must be skipped even when enabled
	if got := h.Count(); got != 0 {
		t.Fatalf("disabled histogram count = %d, want 0", got)
	}
}

func TestClockGating(t *testing.T) {
	if compiledOut {
		t.Skip("observability compiled out (noobs)")
	}
	if !Clock().IsZero() {
		t.Fatal("Clock while disabled should be the zero time")
	}
	withRecording(t)
	if Clock().IsZero() {
		t.Fatal("Clock while enabled should be a real timestamp")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if a, b := r.Counter("x"), r.Counter("x"); a != b {
		t.Fatal("same name should return the same counter")
	}
	if a, b := r.Gauge("g"), r.Gauge("g"); a != b {
		t.Fatal("same name should return the same gauge")
	}
	if a, b := r.Histogram("h"), r.Histogram("h"); a != b {
		t.Fatal("same name should return the same histogram")
	}
	var nilR *Registry
	if nilR.Counter("x") != nil {
		t.Fatal("nil registry should hand out nil handles")
	}
}

func TestCacheStats(t *testing.T) {
	withRecording(t)
	s := NewCacheStats("test.cachestats")
	s.Hit()
	s.Hit()
	s.Miss()
	s.Evict(3)
	s.Resize(7)
	if got := s.Hits.Value(); got != 2 {
		t.Fatalf("hits = %d, want 2", got)
	}
	if got := s.Misses.Value(); got != 1 {
		t.Fatalf("misses = %d, want 1", got)
	}
	if got := s.Evictions.Value(); got != 3 {
		t.Fatalf("evictions = %d, want 3", got)
	}
	if got := s.Size.Value(); got != 7 {
		t.Fatalf("size = %d, want 7", got)
	}
	var nilS *CacheStats
	nilS.Hit()
	nilS.Miss()
	nilS.Evict(1)
	nilS.Resize(1)
}

func TestWriteJSON(t *testing.T) {
	withRecording(t)
	r := NewRegistry()
	r.Counter("alpha.count").Add(3)
	r.Gauge("beta.size").Set(9)
	r.Histogram("gamma.seconds").Observe(4 * time.Millisecond)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"alpha.count": 3`, `"beta.size": 9`, `"gamma.seconds"`, `"count": 1`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON dump missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("JSON dump should end with a newline")
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"detect.score.scaling/MSE.seconds": "detect_score_scaling_MSE_seconds",
		"simple":                           "simple",
		"9lives":                           "_lives",
		"a:b_c9":                           "a:b_c9",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	withRecording(t)
	r := NewRegistry()
	r.Counter("req.count").Add(2)
	r.Gauge("pool.size").Set(4)
	h := r.Histogram("lat.seconds")
	h.Observe(1500 * time.Microsecond)
	h.Observe(40 * time.Millisecond)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE req_count counter\nreq_count 2\n",
		"# TYPE pool_size gauge\npool_size 4\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="+Inf"} 2`,
		"lat_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus dump missing %q:\n%s", want, out)
		}
	}
	// Buckets are cumulative: the 50ms bucket already includes the
	// 1.5ms observation.
	if !strings.Contains(out, `lat_seconds_bucket{le="0.05"} 2`) {
		t.Fatalf("expected cumulative bucket counts:\n%s", out)
	}
}

func TestSnapshotIncludesEmptyHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("idle.seconds")
	snap := r.Snapshot()
	hs, ok := snap.Histograms["idle.seconds"]
	if !ok {
		t.Fatal("empty histogram missing from snapshot")
	}
	if hs.Count != 0 {
		t.Fatalf("empty histogram count = %d", hs.Count)
	}
}
