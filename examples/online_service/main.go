// Online detection service: the paper's run-time deployment mode. An HTTP
// endpoint receives images (as a vision API gateway would), runs the
// Decamouflage ensemble in front of the model's downscaler, and rejects
// attack images in milliseconds.
//
// Run with:
//
//	go run ./examples/online_service
//
// then POST a PNG/JPEG:
//
//	curl -s --data-binary @image.png http://localhost:8642/v1/check
//
// The example also exercises itself: it starts the server, submits one
// benign and one attack image, prints both verdicts, and exits.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"image/png"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"decamouflage"
	"decamouflage/internal/dataset"
)

const (
	srcW, srcH = 128, 128
	dstW, dstH = 32, 32
)

type server struct {
	ensemble *decamouflage.Ensemble
}

type verdictResponse struct {
	Attack    bool    `json:"attack"`
	Votes     int     `json:"votes"`
	Methods   int     `json:"methods"`
	CSP       float64 `json:"csp"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

func (s *server) check(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST an image body", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 32<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	img, err := decamouflage.DecodeImage(bytes.NewReader(body))
	if err != nil {
		http.Error(w, "undecodable image: "+err.Error(), http.StatusBadRequest)
		return
	}
	start := time.Now()
	v, err := decamouflage.Detect(r.Context(), s.ensemble, img)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp := verdictResponse{
		Attack:    v.Attack,
		Votes:     v.Votes,
		Methods:   len(v.Verdicts),
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	}
	for _, verdict := range v.Verdicts {
		if verdict.Method == "steganalysis/CSP" {
			resp.CSP = verdict.Score
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("encode response: %v", err)
	}
}

func buildEnsemble() (*decamouflage.Ensemble, *decamouflage.Scaler, error) {
	scaler, err := decamouflage.NewScaler(srcW, srcH, dstW, dstH, decamouflage.Bilinear)
	if err != nil {
		return nil, nil, err
	}
	// Black-box calibration on an in-house benign hold-out set.
	holdout, err := dataset.NewGenerator(dataset.Config{
		Corpus: dataset.NeurIPSLike, W: srcW, H: srcH, C: 3, Seed: 23,
	})
	if err != nil {
		return nil, nil, err
	}
	var sScores, fScores []float64
	for i := 0; i < 40; i++ {
		img := holdout.Image(i)
		v, err := decamouflage.ScoreScaling(scaler, decamouflage.MSE, img)
		if err != nil {
			return nil, nil, err
		}
		sScores = append(sScores, v)
		v, err = decamouflage.ScoreFiltering(2, decamouflage.SSIM, img)
		if err != nil {
			return nil, nil, err
		}
		fScores = append(fScores, v)
	}
	sTh, err := decamouflage.CalibrateBlackBox(sScores, 1, decamouflage.MSE)
	if err != nil {
		return nil, nil, err
	}
	fTh, err := decamouflage.CalibrateBlackBox(fScores, 1, decamouflage.SSIM)
	if err != nil {
		return nil, nil, err
	}
	ens, err := decamouflage.NewEnsemble(scaler, sTh, fTh)
	if err != nil {
		return nil, nil, err
	}
	return ens, scaler, nil
}

// main wires the detector behind an HTTP endpoint and exercises it once.
//
//declint:spawns one http.Serve loop for the demo listener; process exit (end of main) reaps it
func main() {
	log.SetFlags(0)
	log.SetPrefix("online-service: ")

	ens, scaler, err := buildEnsemble()
	if err != nil {
		log.Fatal(err)
	}
	srv := &server{ensemble: ens}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/check", srv.check)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpServer := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	//declint:ignore noraw-go long-lived HTTP listener, not numeric fan-out
	go func() {
		if err := httpServer.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("listening on %s/v1/check\n", base)

	// Self-exercise: one benign, one attack.
	covers, err := dataset.NewGenerator(dataset.Config{
		Corpus: dataset.CaltechLike, W: srcW, H: srcH, C: 3, Seed: 29,
	})
	if err != nil {
		log.Fatal(err)
	}
	targets, err := dataset.NewGenerator(dataset.Config{
		Corpus: dataset.CaltechLike, W: dstW, H: dstH, C: 3, Seed: 31,
	})
	if err != nil {
		log.Fatal(err)
	}
	benign := covers.Image(0)
	res, err := decamouflage.CraftAttack(benign, targets.Image(0), scaler, 2)
	if err != nil {
		log.Fatal(err)
	}
	for name, img := range map[string]*decamouflage.Image{
		"benign": benign,
		"attack": res.Attack,
	} {
		var buf bytes.Buffer
		if err := png.Encode(&buf, img.ToNRGBA()); err != nil {
			log.Fatal(err)
		}
		resp, err := http.Post(base+"/v1/check", "image/png", &buf)
		if err != nil {
			log.Fatal(err)
		}
		var v verdictResponse
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		fmt.Printf("%-6s -> attack=%v votes=%d/%d csp=%.0f elapsed=%.1fms\n",
			name, v.Attack, v.Votes, v.Methods, v.CSP, v.ElapsedMS)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil {
		log.Fatal(err)
	}
}
