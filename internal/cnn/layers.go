package cnn

import (
	"math"
	"math/rand"
)

// layer is one differentiable stage of the network.
type layer interface {
	// forward computes the layer output for in, caching what backward
	// needs.
	forward(in *Volume) *Volume
	// backward consumes the gradient w.r.t. the layer output and returns
	// the gradient w.r.t. its input, accumulating parameter gradients.
	backward(gradOut *Volume) *Volume
	// update applies one SGD-with-momentum step and clears gradients.
	update(lr, momentum float64)
}

// conv2D is a valid-padding convolution layer with square kernels.
type conv2D struct {
	inC, outC, k   int
	weights        []float64 // [outC][inC][k][k]
	bias           []float64
	gradW          []float64
	gradB          []float64
	velW           []float64
	velB           []float64
	lastIn         *Volume
	outW, outH     int
	preparedShapes bool
}

func newConv2D(rng *rand.Rand, inC, outC, k int) *conv2D {
	n := outC * inC * k * k
	c := &conv2D{
		inC: inC, outC: outC, k: k,
		weights: make([]float64, n),
		bias:    make([]float64, outC),
		gradW:   make([]float64, n),
		gradB:   make([]float64, outC),
		velW:    make([]float64, n),
		velB:    make([]float64, outC),
	}
	randn(rng, c.weights, math.Sqrt(2/float64(inC*k*k)))
	return c
}

func (c *conv2D) wIdx(oc, ic, ky, kx int) int {
	return ((oc*c.inC+ic)*c.k+ky)*c.k + kx
}

func (c *conv2D) forward(in *Volume) *Volume {
	c.lastIn = in
	c.outW = in.W - c.k + 1
	c.outH = in.H - c.k + 1
	out := NewVolume(c.outW, c.outH, c.outC)
	for oc := 0; oc < c.outC; oc++ {
		for y := 0; y < c.outH; y++ {
			for x := 0; x < c.outW; x++ {
				s := c.bias[oc]
				for ic := 0; ic < c.inC; ic++ {
					for ky := 0; ky < c.k; ky++ {
						for kx := 0; kx < c.k; kx++ {
							s += c.weights[c.wIdx(oc, ic, ky, kx)] * in.At(x+kx, y+ky, ic)
						}
					}
				}
				out.Set(x, y, oc, s)
			}
		}
	}
	return out
}

func (c *conv2D) backward(gradOut *Volume) *Volume {
	in := c.lastIn
	gradIn := NewVolume(in.W, in.H, in.C)
	for oc := 0; oc < c.outC; oc++ {
		for y := 0; y < c.outH; y++ {
			for x := 0; x < c.outW; x++ {
				g := gradOut.At(x, y, oc)
				//declint:ignore floateq exact-zero gradient skip is a pure optimization, any nonzero bit takes the full path
				if g == 0 {
					continue
				}
				c.gradB[oc] += g
				for ic := 0; ic < c.inC; ic++ {
					for ky := 0; ky < c.k; ky++ {
						for kx := 0; kx < c.k; kx++ {
							c.gradW[c.wIdx(oc, ic, ky, kx)] += g * in.At(x+kx, y+ky, ic)
							gradIn.Data[(ic*in.H+y+ky)*in.W+x+kx] += g * c.weights[c.wIdx(oc, ic, ky, kx)]
						}
					}
				}
			}
		}
	}
	return gradIn
}

func (c *conv2D) update(lr, momentum float64) {
	for i := range c.weights {
		c.velW[i] = momentum*c.velW[i] - lr*c.gradW[i]
		c.weights[i] += c.velW[i]
		c.gradW[i] = 0
	}
	for i := range c.bias {
		c.velB[i] = momentum*c.velB[i] - lr*c.gradB[i]
		c.bias[i] += c.velB[i]
		c.gradB[i] = 0
	}
}

// relu is the rectified-linear activation.
type relu struct {
	lastIn *Volume
}

func (r *relu) forward(in *Volume) *Volume {
	r.lastIn = in
	out := in.Clone()
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
		}
	}
	return out
}

func (r *relu) backward(gradOut *Volume) *Volume {
	gradIn := gradOut.Clone()
	for i, v := range r.lastIn.Data {
		if v <= 0 {
			gradIn.Data[i] = 0
		}
	}
	return gradIn
}

func (r *relu) update(float64, float64) {}

// maxPool2 is a 2x2 stride-2 max pooling layer.
type maxPool2 struct {
	lastIn  *Volume
	argmax  []int
	outW    int
	outH    int
	outChan int
}

func (p *maxPool2) forward(in *Volume) *Volume {
	p.lastIn = in
	p.outW = in.W / 2
	p.outH = in.H / 2
	p.outChan = in.C
	out := NewVolume(p.outW, p.outH, in.C)
	p.argmax = make([]int, len(out.Data))
	for c := 0; c < in.C; c++ {
		for y := 0; y < p.outH; y++ {
			for x := 0; x < p.outW; x++ {
				best := math.Inf(-1)
				bestIdx := 0
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						idx := (c*in.H+2*y+dy)*in.W + 2*x + dx
						if v := in.Data[idx]; v > best {
							best = v
							bestIdx = idx
						}
					}
				}
				oi := (c*p.outH+y)*p.outW + x
				out.Data[oi] = best
				p.argmax[oi] = bestIdx
			}
		}
	}
	return out
}

func (p *maxPool2) backward(gradOut *Volume) *Volume {
	gradIn := NewVolume(p.lastIn.W, p.lastIn.H, p.lastIn.C)
	for oi, src := range p.argmax {
		gradIn.Data[src] += gradOut.Data[oi]
	}
	return gradIn
}

func (p *maxPool2) update(float64, float64) {}

// dense is a fully-connected layer over the flattened input volume.
type dense struct {
	inN, outN int
	weights   []float64 // [outN][inN]
	bias      []float64
	gradW     []float64
	gradB     []float64
	velW      []float64
	velB      []float64
	lastIn    *Volume
}

func newDense(rng *rand.Rand, inN, outN int) *dense {
	d := &dense{
		inN: inN, outN: outN,
		weights: make([]float64, inN*outN),
		bias:    make([]float64, outN),
		gradW:   make([]float64, inN*outN),
		gradB:   make([]float64, outN),
		velW:    make([]float64, inN*outN),
		velB:    make([]float64, outN),
	}
	randn(rng, d.weights, math.Sqrt(2/float64(inN)))
	return d
}

func (d *dense) forward(in *Volume) *Volume {
	d.lastIn = in
	out := NewVolume(1, 1, d.outN)
	for o := 0; o < d.outN; o++ {
		s := d.bias[o]
		row := d.weights[o*d.inN : (o+1)*d.inN]
		for i, v := range in.Data {
			s += row[i] * v
		}
		out.Data[o] = s
	}
	return out
}

func (d *dense) backward(gradOut *Volume) *Volume {
	gradIn := NewVolume(d.lastIn.W, d.lastIn.H, d.lastIn.C)
	for o := 0; o < d.outN; o++ {
		g := gradOut.Data[o]
		d.gradB[o] += g
		row := d.weights[o*d.inN : (o+1)*d.inN]
		gw := d.gradW[o*d.inN : (o+1)*d.inN]
		for i, v := range d.lastIn.Data {
			gw[i] += g * v
			gradIn.Data[i] += g * row[i]
		}
	}
	return gradIn
}

func (d *dense) update(lr, momentum float64) {
	for i := range d.weights {
		d.velW[i] = momentum*d.velW[i] - lr*d.gradW[i]
		d.weights[i] += d.velW[i]
		d.gradW[i] = 0
	}
	for i := range d.bias {
		d.velB[i] = momentum*d.velB[i] - lr*d.gradB[i]
		d.bias[i] += d.velB[i]
		d.gradB[i] = 0
	}
}
