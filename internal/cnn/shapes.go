package cnn

import (
	"fmt"
	"math"
	"math/rand"

	"decamouflage/internal/imgcore"
)

// Shape classes of the synthetic classification task.
const (
	ClassCircle = iota
	ClassSquare
	ClassTriangle
	ClassCross
	// NumShapeClasses is the class count of the shape dataset.
	NumShapeClasses
)

// ShapeClassName returns a human-readable class label.
func ShapeClassName(class int) string {
	switch class {
	case ClassCircle:
		return "circle"
	case ClassSquare:
		return "square"
	case ClassTriangle:
		return "triangle"
	case ClassCross:
		return "cross"
	default:
		return fmt.Sprintf("class-%d", class)
	}
}

// ShapeImage renders one sample of the given class: a bright shape with
// randomized position/size/intensity on a noisy dark background. Images
// are size×size grayscale (C=1), deterministic in (class, seed).
func ShapeImage(class, size int, seed int64) *imgcore.Image {
	rng := rand.New(rand.NewSource(seed*int64(NumShapeClasses+1) + int64(class)))
	img := imgcore.MustNew(size, size, 1)
	bg := 20 + rng.Float64()*40
	for i := range img.Pix {
		img.Pix[i] = bg + rng.NormFloat64()*8
	}
	fg := 160 + rng.Float64()*80
	cx := float64(size)*0.5 + (rng.Float64()-0.5)*float64(size)*0.25
	cy := float64(size)*0.5 + (rng.Float64()-0.5)*float64(size)*0.25
	r := float64(size) * (0.2 + rng.Float64()*0.12)

	inShape := func(x, y float64) bool {
		dx, dy := x-cx, y-cy
		switch class {
		case ClassCircle:
			return dx*dx+dy*dy <= r*r
		case ClassSquare:
			return math.Abs(dx) <= r*0.85 && math.Abs(dy) <= r*0.85
		case ClassTriangle:
			// Upward triangle: inside when below the two slanted edges.
			if dy < -r || dy > r*0.8 {
				return false
			}
			halfWidth := (dy + r) / (1.8 * r) * r * 1.1
			return math.Abs(dx) <= halfWidth
		case ClassCross:
			arm := r * 0.35
			return (math.Abs(dx) <= arm && math.Abs(dy) <= r) ||
				(math.Abs(dy) <= arm && math.Abs(dx) <= r)
		default:
			return false
		}
	}
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			if inShape(float64(x), float64(y)) {
				img.Pix[y*size+x] = fg + rng.NormFloat64()*6
			}
		}
	}
	return img.Clamp8().Quantize8()
}

// ShapeDataset produces n labelled samples per class at the given size,
// deterministically from seed.
func ShapeDataset(nPerClass, size int, seed int64) []Sample {
	out := make([]Sample, 0, nPerClass*NumShapeClasses)
	for class := 0; class < NumShapeClasses; class++ {
		for i := 0; i < nPerClass; i++ {
			out = append(out, Sample{
				Image: ShapeImage(class, size, seed+int64(i)),
				Label: class,
			})
		}
	}
	return out
}
