package detect

import (
	"encoding/json"
	"fmt"

	"decamouflage/internal/obs"
	"decamouflage/internal/scaling"
	"decamouflage/internal/steg"
)

// SystemConfig is the complete, serializable description of a deployed
// Decamouflage system: the protected pipeline's scaling function and the
// calibrated decision thresholds for every enabled method. A config saved
// after offline calibration is everything a gateway needs to reconstruct
// the exact same ensemble at startup.
type SystemConfig struct {
	// SrcW/SrcH is the expected input geometry (0 = accept any; the
	// scaling method rebuilds coefficients per size).
	SrcW int `json:"src_w"`
	SrcH int `json:"src_h"`
	// DstW/DstH is the model input geometry.
	DstW int `json:"dst_w"`
	DstH int `json:"dst_h"`
	// Algorithm names the scaling kernel ("bilinear", ...).
	Algorithm string `json:"algorithm"`
	// FilterWindow is the minimum-filter size (default 2).
	FilterWindow int `json:"filter_window,omitempty"`
	// Steg carries the CSP parameters (zero values = calibrated defaults).
	Steg steg.Options `json:"steg,omitempty"`
	// Thresholds maps method names ("scaling/MSE", "filtering/SSIM",
	// "steganalysis/CSP") to their decision boundaries. Missing methods
	// are omitted from the ensemble; a missing steganalysis entry uses the
	// paper's fixed CSP >= 2 rule.
	Thresholds map[string]Threshold `json:"thresholds"`
	// Obs carries the deployment's observability settings (metrics
	// recording and dump destination, debug server, profiling outputs).
	// Nil means everything off; CLI flags override individual fields.
	Obs *obs.Settings `json:"obs,omitempty"`
}

// Validate checks the config for structural problems.
func (c *SystemConfig) Validate() error {
	if c.DstW <= 0 || c.DstH <= 0 {
		return fmt.Errorf("detect: system config needs positive dst geometry, got %dx%d", c.DstW, c.DstH)
	}
	if _, err := scaling.ParseAlgorithm(c.Algorithm); err != nil {
		return fmt.Errorf("detect: system config: %w", err)
	}
	if c.FilterWindow < 0 || c.FilterWindow == 1 {
		return fmt.Errorf("detect: system config filter window %d invalid", c.FilterWindow)
	}
	for name, th := range c.Thresholds {
		if err := th.Validate(); err != nil {
			return fmt.Errorf("detect: system config threshold %q: %w", name, err)
		}
	}
	return nil
}

// MarshalSystemConfig serializes the config as indented JSON.
func MarshalSystemConfig(c *SystemConfig) ([]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(c, "", "  ")
}

// UnmarshalSystemConfig parses and validates a persisted config.
func UnmarshalSystemConfig(data []byte) (*SystemConfig, error) {
	var c SystemConfig
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("detect: parse system config: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// BuildSystem instantiates the ensemble a SystemConfig describes. The
// source geometry falls back to 4x the destination when unspecified (the
// scaling scorer rebuilds coefficients for other input sizes anyway).
func BuildSystem(c *SystemConfig) (*Ensemble, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	alg, err := scaling.ParseAlgorithm(c.Algorithm)
	if err != nil {
		return nil, err
	}
	srcW, srcH := c.SrcW, c.SrcH
	if srcW <= 0 {
		srcW = c.DstW * 4
	}
	if srcH <= 0 {
		srcH = c.DstH * 4
	}
	scaler, err := scaling.NewScaler(srcW, srcH, c.DstW, c.DstH, scaling.Options{Algorithm: alg})
	if err != nil {
		return nil, err
	}
	window := c.FilterWindow
	if window == 0 {
		window = 2
	}

	var detectors []*Detector
	if th, ok := c.Thresholds["scaling/MSE"]; ok {
		s, err := NewScalingScorer(scaler, MSE)
		if err != nil {
			return nil, err
		}
		d, err := NewDetector(s, th)
		if err != nil {
			return nil, err
		}
		detectors = append(detectors, d)
	}
	if th, ok := c.Thresholds["scaling/SSIM"]; ok {
		s, err := NewScalingScorer(scaler, SSIM)
		if err != nil {
			return nil, err
		}
		d, err := NewDetector(s, th)
		if err != nil {
			return nil, err
		}
		detectors = append(detectors, d)
	}
	if th, ok := c.Thresholds["filtering/MSE"]; ok {
		s, err := NewFilteringScorer(window, MSE)
		if err != nil {
			return nil, err
		}
		d, err := NewDetector(s, th)
		if err != nil {
			return nil, err
		}
		detectors = append(detectors, d)
	}
	if th, ok := c.Thresholds["filtering/SSIM"]; ok {
		s, err := NewFilteringScorer(window, SSIM)
		if err != nil {
			return nil, err
		}
		d, err := NewDetector(s, th)
		if err != nil {
			return nil, err
		}
		detectors = append(detectors, d)
	}
	stegTh, ok := c.Thresholds["steganalysis/CSP"]
	if !ok {
		stegTh = DefaultCSPThreshold()
	}
	sd, err := NewDetector(NewStegScorer(c.Steg), stegTh)
	if err != nil {
		return nil, err
	}
	detectors = append(detectors, sd)
	return NewEnsemble(detectors...)
}

// MatchModels returns the known CNN model families (Table 1) whose input
// geometry is within tol pixels of (w, h) — the forensic step that turns a
// recovered attack-target size into "which deployed model was the attacker
// aiming at".
func MatchModels(w, h, tol int) []ModelInputSize {
	var out []ModelInputSize
	for _, m := range ModelInputSizes() {
		dw := m.W - w
		if dw < 0 {
			dw = -dw
		}
		dh := m.H - h
		if dh < 0 {
			dh = -dh
		}
		if dw <= tol && dh <= tol {
			out = append(out, m)
		}
	}
	return out
}
