package detect

// The differential equivalence suite: the stage-DAG pipeline (Detect)
// must produce bit-identical scores and verdicts to the legacy
// per-scorer path (DetectLegacy) — memoization and buffer pooling are
// allowed to change where bytes are computed, never which bytes.

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/obs"
	"decamouflage/internal/parallel"
	"decamouflage/internal/steg"
	"decamouflage/internal/testutil"
)

// matrixThreshold returns a plausible decision boundary per metric; the
// equivalence suite only needs both paths to classify against the same
// boundary.
func matrixThreshold(m Metric) Threshold {
	switch m {
	case SSIM:
		return Threshold{Value: 0.5, Direction: Below}
	case PSNR:
		return Threshold{Value: 30, Direction: Below}
	default:
		return Threshold{Value: 100, Direction: Above}
	}
}

// matrixEnsemble builds the full method×metric matrix — scaling and
// filtering under each of MSE/SSIM/PSNR, plus steganalysis/CSP — the
// ensemble shape with maximal substrate sharing.
func matrixEnsemble(tb testing.TB, srcW, srcH, dstW, dstH int) *Ensemble {
	tb.Helper()
	scaler := mustScaler(tb, srcW, srcH, dstW, dstH)
	var ds []*Detector
	for _, m := range []Metric{MSE, SSIM, PSNR} {
		ss, err := NewScalingScorer(scaler, m)
		if err != nil {
			tb.Fatal(err)
		}
		sd, err := NewDetector(ss, matrixThreshold(m))
		if err != nil {
			tb.Fatal(err)
		}
		fs, err := NewFilteringScorer(2, m)
		if err != nil {
			tb.Fatal(err)
		}
		fd, err := NewDetector(fs, matrixThreshold(m))
		if err != nil {
			tb.Fatal(err)
		}
		ds = append(ds, sd, fd)
	}
	gd, err := NewDetector(NewStegScorer(steg.Options{}), DefaultCSPThreshold())
	if err != nil {
		tb.Fatal(err)
	}
	e, err := NewEnsemble(append(ds, gd)...)
	if err != nil {
		tb.Fatal(err)
	}
	return e
}

// requireEqualVerdicts asserts two ensemble verdicts agree bit-for-bit.
func requireEqualVerdicts(t *testing.T, pipe, legacy *EnsembleVerdict) {
	t.Helper()
	if pipe.Attack != legacy.Attack || pipe.Votes != legacy.Votes {
		t.Fatalf("pipeline (attack=%v votes=%d) != legacy (attack=%v votes=%d)",
			pipe.Attack, pipe.Votes, legacy.Attack, legacy.Votes)
	}
	if len(pipe.Verdicts) != len(legacy.Verdicts) {
		t.Fatalf("verdict count %d != %d", len(pipe.Verdicts), len(legacy.Verdicts))
	}
	for i := range pipe.Verdicts {
		pv, lv := pipe.Verdicts[i], legacy.Verdicts[i]
		if pv.Method != lv.Method || pv.Attack != lv.Attack {
			t.Fatalf("verdict %d: pipeline %+v != legacy %+v", i, pv, lv)
		}
		if !testutil.BitEqual(pv.Score, lv.Score) {
			t.Fatalf("verdict %d (%s): pipeline score %v != legacy %v (ULP %d)",
				i, pv.Method, pv.Score, lv.Score, testutil.ULPDiff(pv.Score, lv.Score))
		}
	}
}

// TestPipelineMatchesLegacy sweeps odd/even/prime geometries, grayscale
// and RGB inputs, and every metric, asserting bit-identical verdicts.
func TestPipelineMatchesLegacy(t *testing.T) {
	cases := []struct {
		srcW, srcH, dstW, dstH int
	}{
		{16, 16, 4, 4},   // even, power of two
		{15, 21, 5, 7},   // odd
		{31, 29, 7, 5},   // prime src
		{47, 33, 13, 11}, // prime dst, non-square
		{24, 18, 32, 26}, // degenerate "down"scale that upscales
	}
	ctx := context.Background()
	for _, tc := range cases {
		for _, channels := range []int{1, 3} {
			name := fmt.Sprintf("%dx%d_to_%dx%d_c%d", tc.srcW, tc.srcH, tc.dstW, tc.dstH, channels)
			t.Run(name, func(t *testing.T) {
				e := matrixEnsemble(t, tc.srcW, tc.srcH, tc.dstW, tc.dstH)
				img := corpusImage(t, int64(tc.srcW*tc.srcH), 0, tc.srcW, tc.srcH)
				if channels == 1 {
					img = img.Gray()
				}
				pipe, err := e.Detect(ctx, img)
				if err != nil {
					t.Fatal(err)
				}
				legacy, err := e.DetectLegacy(ctx, img)
				if err != nil {
					t.Fatal(err)
				}
				requireEqualVerdicts(t, pipe, legacy)
			})
		}
	}
}

// TestPipelineWorkerCountInvariance pins that the pipeline's verdicts are
// independent of the member-dispatch worker count (substrate computation
// order changes; the memoized values must not).
func TestPipelineWorkerCountInvariance(t *testing.T) {
	e := matrixEnsemble(t, 31, 29, 7, 5)
	img := corpusImage(t, 7, 0, 31, 29)
	ctx := context.Background()
	serial, err := e.detect(ctx, img, parallel.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	wide, err := e.detect(ctx, img, parallel.Workers(8))
	if err != nil {
		t.Fatal(err)
	}
	requireEqualVerdicts(t, wide, serial)
}

// TestPipelineMemoizesSubstrates pins exactly-once substrate computation:
// running the full matrix through one Intermediates table must miss once
// per unique stage and hit on every re-request, with the obs counters
// agreeing with the table's own tallies.
func TestPipelineMemoizesSubstrates(t *testing.T) {
	obs.Enable()
	t.Cleanup(obs.Disable)
	e := matrixEnsemble(t, 24, 18, 8, 6)
	img := corpusImage(t, 42, 0, 24, 18)

	obsHits0 := obs.C("detect.pipeline.memo.hits").Value()
	obsMiss0 := obs.C("detect.pipeline.memo.misses").Value()

	in := e.pipe.intermediates(img)
	defer in.release()
	ctx := context.Background()
	for _, d := range e.Detectors() {
		if _, err := d.detectIn(ctx, in); err != nil {
			t.Fatal(err)
		}
	}

	// Unique stages for the 7-member matrix on an RGB (8-bit) image: u8
	// view, gray, round trip, min-filter, spectrum, CSP, SSIM reference,
	// and one MSE per substrate (round trip, min-filter) = 9 misses.
	// Every other request is a hit: round trip ×2, MSE(round trip) ×1,
	// min-filter ×2, MSE(min-filter) ×1, SSIM reference ×1, gray ×1, and
	// the u8 view re-requested by whichever of gray/min-filter ran second
	// ×1 = 9 hits.
	if got := in.misses.Load(); got != 9 {
		t.Errorf("memo misses = %d, want 9 (one per unique substrate)", got)
	}
	if got := in.hits.Load(); got != 9 {
		t.Errorf("memo hits = %d, want 9", got)
	}
	if obs.Enabled() {
		if got := obs.C("detect.pipeline.memo.misses").Value() - obsMiss0; got != in.misses.Load() {
			t.Errorf("obs memo misses delta = %d, want %d", got, in.misses.Load())
		}
		if got := obs.C("detect.pipeline.memo.hits").Value() - obsHits0; got != in.hits.Load() {
			t.Errorf("obs memo hits delta = %d, want %d", got, in.hits.Load())
		}
	}

	// A second pass over the same table computes nothing new.
	miss1 := in.misses.Load()
	for _, d := range e.Detectors() {
		if _, err := d.detectIn(ctx, in); err != nil {
			t.Fatal(err)
		}
	}
	if got := in.misses.Load(); got != miss1 {
		t.Errorf("second pass recomputed %d substrates", got-miss1)
	}
}

// TestPipelineAdapterWithStubs pins the adapter's fallback: a plain
// Scorer (no ScoreCtx/ScorePipeline) runs unchanged inside the pipeline
// ensemble, and mixed stub/real ensembles vote correctly.
func TestPipelineAdapterWithStubs(t *testing.T) {
	e, err := NewEnsemble(
		stubDetector(t, "stub/attack", 0, true),
		stubDetector(t, "stub/benign", 0, false),
		stubDetector(t, "stub/benign2", 0, false),
	)
	if err != nil {
		t.Fatal(err)
	}
	img := imgcore.MustNew(8, 8, 1)
	img.Fill(100)
	v, err := e.Detect(context.Background(), img)
	if err != nil {
		t.Fatal(err)
	}
	if v.Attack || v.Votes != 1 {
		t.Fatalf("stub ensemble verdict = %+v", v)
	}
	legacy, err := e.DetectLegacy(context.Background(), img)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualVerdicts(t, v, legacy)
}

// countingScorer cancels its batch after a fixed number of scores — the
// mid-batch cancellation stub for the fused DetectBatch.
type countingScorer struct {
	scored atomic.Int64
	after  int64
	cancel context.CancelFunc
}

func (c *countingScorer) Name() string { return "counting/stub" }

func (c *countingScorer) Score(*imgcore.Image) (float64, error) {
	if c.scored.Add(1) == c.after {
		c.cancel()
	}
	return 0, nil
}

// TestDetectBatchFusedCancellationMidBatch pins the fused batch: a
// cancellation fired mid-batch aborts with context.Canceled before every
// image is scored.
func TestDetectBatchFusedCancellationMidBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cs := &countingScorer{after: 3, cancel: cancel}
	d, err := NewDetector(cs, Threshold{Value: 1, Direction: Above})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEnsemble(d)
	if err != nil {
		t.Fatal(err)
	}
	imgs := make([]*imgcore.Image, 64)
	for i := range imgs {
		imgs[i] = imgcore.MustNew(8, 8, 1)
		imgs[i].Fill(float64(i))
	}
	out, err := e.DetectBatch(ctx, imgs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Fatalf("out = %v, want nil on error", out)
	}
	if n := cs.scored.Load(); n >= int64(len(imgs)) {
		t.Fatalf("all %d images scored despite mid-batch cancel", n)
	}
}

// TestDetectBatchFusedMatchesSingle pins the fused batch against per-image
// Detect calls: same verdicts, in order, and an empty batch stays non-nil.
func TestDetectBatchFusedMatchesSingle(t *testing.T) {
	e := matrixEnsemble(t, 16, 16, 4, 4)
	ctx := context.Background()
	var imgs []*imgcore.Image
	for i := 0; i < 4; i++ {
		imgs = append(imgs, corpusImage(t, int64(i), i, 16, 16))
	}
	batch, err := e.DetectBatch(ctx, imgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(imgs) {
		t.Fatalf("batch returned %d verdicts for %d images", len(batch), len(imgs))
	}
	for i, img := range imgs {
		single, err := e.Detect(ctx, img)
		if err != nil {
			t.Fatal(err)
		}
		requireEqualVerdicts(t, batch[i], single)
	}
	empty, err := e.DetectBatch(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty == nil || len(empty) != 0 {
		t.Fatalf("empty batch = %v, want non-nil empty slice", empty)
	}
}
