package benchfmt

import "fmt"

// Environment records where a benchmark run was produced. cmd/benchjson
// embeds it in every archived document so trajectory comparisons
// (cmd/benchguard -trend) can flag snapshots from a different machine
// instead of silently mixing their numbers. Snapshots predating the
// field carry no Environment; per bench/README.md they were produced on
// the reference container and are treated as comparable.
type Environment struct {
	// GOOS/GOARCH are the platform the benchmarks ran on.
	GOOS   string `json:"goos,omitempty"`
	GOARCH string `json:"goarch,omitempty"`
	// GOMAXPROCS is the scheduler width at run time — parallel kernels
	// scale with it, so differing values are different machines for
	// comparison purposes.
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
	// CPU is the processor model string (from /proc/cpuinfo on Linux);
	// empty when the platform does not expose one.
	CPU string `json:"cpu,omitempty"`
	// GoVersion is the toolchain that built the benchmarks. Recorded for
	// the reader but excluded from Fingerprint: a toolchain bump shifts
	// numbers legitimately and the trajectory should show that shift, not
	// hide the history behind it.
	GoVersion string `json:"go_version,omitempty"`
}

// Fingerprint condenses the machine-identifying fields into one
// comparable string. A nil or zero Environment fingerprints as "" —
// callers treat that as "reference container assumed" rather than as a
// distinct machine.
func (e *Environment) Fingerprint() string {
	if e == nil || (e.GOOS == "" && e.GOARCH == "" && e.GOMAXPROCS == 0 && e.CPU == "") {
		return ""
	}
	return fmt.Sprintf("%s/%s maxprocs=%d cpu=%q", e.GOOS, e.GOARCH, e.GOMAXPROCS, e.CPU)
}
