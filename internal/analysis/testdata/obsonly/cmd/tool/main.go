// Command tool is a fixture entry point: cmd/ packages may wire the
// profiling machinery directly.
package main

import _ "runtime/pprof"

func main() {}
