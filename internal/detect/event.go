package detect

import (
	"context"
	"errors"
	"math"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/obs"
)

// nearThresholdFrac is the relative band around a method's decision
// boundary within which a verdict counts as borderline: the margin the
// flight recorder tags "near-threshold" so an operator can pull exactly
// the images an adaptive attacker would aim at.
const nearThresholdFrac = 0.05

// nearThreshold reports whether score is inside the borderline band. The
// band is relative to the threshold magnitude with a unit floor so a
// boundary near zero still has a band; NaN scores compare false.
func nearThreshold(score float64, th Threshold) bool {
	band := nearThresholdFrac * math.Max(math.Abs(th.Value), 1)
	return math.Abs(score-th.Value) <= band
}

// jsonSafe clamps non-finite scores so a wide event always marshals
// (JSON has no NaN/Inf); the original verdict is untouched.
func jsonSafe(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	if math.IsInf(v, 1) {
		return math.MaxFloat64
	}
	if math.IsInf(v, -1) {
		return -math.MaxFloat64
	}
	return v
}

// detectEvent denormalizes one finished detection into a wide
// flight-recorder event: geometry, per-stage latency attribution from the
// span tree, per-method scores against their boundaries, memo and pool
// accounting, and anomaly tags (error, deadline, near-threshold).
func (e *Ensemble) detectEvent(ctx context.Context, sp *obs.Span, img *imgcore.Image,
	in *Intermediates, out *EnsembleVerdict, err error) obs.Event {
	ev := obs.Event{
		TraceID:     obs.TraceID(ctx),
		Name:        "ensemble.detect",
		DurNs:       sp.Duration().Nanoseconds(),
		W:           img.W,
		H:           img.H,
		C:           img.C,
		Stages:      obs.FlattenSpans(sp),
		MemoHits:    in.hits.Load(),
		MemoMisses:  in.misses.Load(),
		PoolBorrows: in.borrows.Load(),
	}
	if err != nil {
		ev.Err = err.Error()
		ev.Anomalies = append(ev.Anomalies, obs.AnomalyError)
		if errors.Is(err, context.DeadlineExceeded) {
			ev.Anomalies = append(ev.Anomalies, obs.AnomalyDeadline)
		}
	}
	if out == nil {
		return ev
	}
	ev.Verdict = "benign"
	if out.Attack {
		ev.Verdict = "attack"
	}
	ev.Votes = out.Votes
	ev.Methods = make([]obs.MethodResult, 0, len(out.Verdicts))
	near := false
	for i, v := range out.Verdicts {
		th := e.detectors[i].Threshold()
		ev.Methods = append(ev.Methods, obs.MethodResult{
			Method:    v.Method,
			Score:     jsonSafe(v.Score),
			Threshold: jsonSafe(th.Value),
			Direction: th.Direction.String(),
			Attack:    v.Attack,
			Margin:    jsonSafe(math.Abs(v.Score - th.Value)),
		})
		if nearThreshold(v.Score, th) {
			near = true
		}
	}
	if near {
		ev.Anomalies = append(ev.Anomalies, obs.AnomalyNearThreshold)
	}
	return ev
}
