// Package obs is the fixture's observability home: the profiling and
// exposition imports are allowed here and nowhere else outside cmd/.
package obs

import (
	_ "expvar"
	_ "runtime/pprof"
)

// Enabled reports the compile-time switch. The tag-gated const pair in
// this package doubles as the loader's build-constraint regression: if
// declint parsed both variants the package would fail to type-check with
// a compiledOut redeclaration.
func Enabled() bool { return !compiledOut }
