package steg

import (
	"testing"

	"decamouflage/internal/attack"
	"decamouflage/internal/dataset"
	"decamouflage/internal/imgcore"
	"decamouflage/internal/scaling"
	"decamouflage/internal/testutil"
)

func TestOptionsValidation(t *testing.T) {
	img := imgcore.MustNew(8, 8, 1)
	img.Fill(100)
	if _, err := CSP(img, Options{BinarizeThreshold: 1.5}); err == nil {
		t.Error("threshold > 1 accepted")
	}
	if _, err := CSP(img, Options{BinarizeThreshold: -0.1}); err == nil {
		t.Error("negative threshold accepted")
	}
	if _, err := CSP(img, Options{BinarizeThreshold: 0.5, MinArea: -2}); err == nil {
		t.Error("negative min area accepted")
	}
	if _, err := CSP(&imgcore.Image{}, Options{}); err == nil {
		t.Error("empty image accepted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	img := imgcore.MustNew(16, 16, 1)
	img.Fill(128)
	a, err := Analyze(img, Options{MinArea: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Count != 1 {
		t.Errorf("constant image CSP = %d, want 1 (single DC point)", a.Count)
	}
	if len(a.Spectrum) != 256 || len(a.Mask) != 256 {
		t.Errorf("artifact sizes wrong: %d %d", len(a.Spectrum), len(a.Mask))
	}
	// Default MinArea auto-scales with image area.
	auto := Options{}.withDefaults(128, 128)
	if auto.MinArea != 128*128/1600 {
		t.Errorf("auto MinArea = %d", auto.MinArea)
	}
	small := Options{}.withDefaults(16, 16)
	if small.MinArea != 4 {
		t.Errorf("small-image MinArea = %d, want 4", small.MinArea)
	}
	if !testutil.BitEqual(auto.BinarizeThreshold, 0.78) || !testutil.BitEqual(auto.SmoothSigma, 1.0) {
		t.Errorf("defaults = %+v", auto)
	}
}

func TestLabelComponents(t *testing.T) {
	// Two diagonal-touching pixels are ONE component under 8-connectivity.
	mask := []bool{
		true, false, false,
		false, true, false,
		false, false, false,
	}
	labels, areas := LabelComponents(mask, 3, 3)
	if len(areas) != 1 || areas[0] != 2 {
		t.Errorf("8-connectivity areas = %v, want [2]", areas)
	}
	if labels[0] != labels[4] {
		t.Error("diagonal pixels got different labels")
	}
	// Two separated blobs.
	mask = []bool{
		true, true, false, false,
		false, false, false, false,
		false, false, true, false,
		false, false, true, true,
	}
	_, areas = LabelComponents(mask, 4, 4)
	if len(areas) != 2 {
		t.Fatalf("component count = %d, want 2", len(areas))
	}
	if areas[0]+areas[1] != 5 {
		t.Errorf("total area = %d, want 5", areas[0]+areas[1])
	}
}

func TestLabelComponentsEdgeCases(t *testing.T) {
	if l, a := LabelComponents(nil, 0, 0); l != nil || a != nil {
		t.Error("empty mask should return nils")
	}
	if l, a := LabelComponents([]bool{true}, 2, 2); l != nil || a != nil {
		t.Error("mismatched mask length accepted")
	}
	// All background.
	_, areas := LabelComponents(make([]bool, 9), 3, 3)
	if len(areas) != 0 {
		t.Errorf("all-background areas = %v", areas)
	}
	// All foreground: one component covering everything.
	mask := make([]bool, 9)
	for i := range mask {
		mask[i] = true
	}
	_, areas = LabelComponents(mask, 3, 3)
	if len(areas) != 1 || areas[0] != 9 {
		t.Errorf("full mask areas = %v, want [9]", areas)
	}
}

func TestMinAreaFiltersSpeckles(t *testing.T) {
	// Construct an analysis by hand through the options: use an image whose
	// spectrum yields speckles and verify MinArea reduces the count
	// monotonically.
	g, err := dataset.NewGenerator(dataset.Config{Corpus: dataset.CaltechLike, W: 64, H: 64, C: 1, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	img := g.Image(0)
	loose, err := CSP(img, Options{BinarizeThreshold: 0.45, MinArea: 1})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := CSP(img, Options{BinarizeThreshold: 0.45, MinArea: 8})
	if err != nil {
		t.Fatal(err)
	}
	if strict > loose {
		t.Errorf("MinArea increased count: %d > %d", strict, loose)
	}
}

func TestBenignImagesHaveOneCSP(t *testing.T) {
	for _, corpus := range []dataset.Corpus{dataset.NeurIPSLike, dataset.CaltechLike} {
		g, err := dataset.NewGenerator(dataset.Config{Corpus: corpus, W: 128, H: 128, C: 3, Seed: 17})
		if err != nil {
			t.Fatal(err)
		}
		ones := 0
		const n = 10
		for i := 0; i < n; i++ {
			count, err := CSP(g.Image(i), DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if count == 1 {
				ones++
			}
		}
		// The paper reports 99.3% of benign images have exactly 1 CSP.
		if ones < n-1 {
			t.Errorf("%v: only %d/%d benign images have CSP=1", corpus, ones, n)
		}
	}
}

func TestAttackImagesHaveMultipleCSP(t *testing.T) {
	src, err := dataset.NewGenerator(dataset.Config{Corpus: dataset.CaltechLike, W: 128, H: 128, C: 3, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := dataset.NewGenerator(dataset.Config{Corpus: dataset.CaltechLike, W: 32, H: 32, C: 3, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	scaler, err := scaling.NewScaler(128, 128, 32, 32, scaling.Options{Algorithm: scaling.Bilinear})
	if err != nil {
		t.Fatal(err)
	}
	multi := 0
	const n = 6
	for i := 0; i < n; i++ {
		res, err := attack.Craft(src.Image(i), tgt.Image(i), attack.Config{Scaler: scaler, Eps: 2})
		if err != nil {
			t.Fatal(err)
		}
		count, err := CSP(res.Attack, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if count >= 2 {
			multi++
		}
	}
	// The paper reports 98.2% of attack images have CSP > 1.
	if multi < n-1 {
		t.Errorf("only %d/%d attack images have CSP >= 2", multi, n)
	}
}

func TestArtifactImages(t *testing.T) {
	img := imgcore.MustNew(32, 32, 1)
	for i := range img.Pix {
		img.Pix[i] = float64(i % 255)
	}
	a, err := Analyze(img, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := a.SpectrumImage()
	if spec.W != 32 || spec.H != 32 || spec.C != 1 {
		t.Errorf("spectrum image geometry %v", spec)
	}
	lo, hi := spec.MinMax()
	if lo < 0 || hi > 255 {
		t.Errorf("spectrum image out of range [%v,%v]", lo, hi)
	}
	mask := a.MaskImage()
	for _, v := range mask.Pix {
		if !testutil.BitEqual(v, 0) && !testutil.BitEqual(v, 255) {
			t.Fatalf("mask image sample %v not binary", v)
		}
	}
}

func TestAreasSortedDescending(t *testing.T) {
	g, err := dataset.NewGenerator(dataset.Config{Corpus: dataset.CaltechLike, W: 64, H: 64, C: 1, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(g.Image(3), Options{BinarizeThreshold: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(a.Areas); i++ {
		if a.Areas[i] > a.Areas[i-1] {
			t.Fatalf("areas not sorted: %v", a.Areas)
		}
	}
}

func BenchmarkCSP128(b *testing.B) {
	g, err := dataset.NewGenerator(dataset.Config{Corpus: dataset.CaltechLike, W: 128, H: 128, C: 3, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	img := g.Image(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CSP(img, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
