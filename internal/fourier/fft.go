// Package fourier implements the discrete Fourier transforms Decamouflage's
// steganalysis method is built on: an iterative radix-2 FFT, Bluestein's
// algorithm for arbitrary lengths, 2-D transforms, quadrant shifting
// (fftshift) and the centered log-magnitude spectrum of Eq. 4 in the paper.
//
// Everything is implemented from scratch on []complex128; no external
// numerical libraries are used.
package fourier

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"sync"

	"decamouflage/internal/parallel"
)

// ErrEmpty indicates a zero-length transform request.
var ErrEmpty = errors.New("fourier: empty input")

// FFT computes the forward discrete Fourier transform of x and returns a
// new slice. Any length is supported: powers of two use the radix-2
// Cooley-Tukey algorithm, other lengths fall back to Bluestein's chirp-z
// algorithm (O(n log n) for all n). Transforms run through the cached Plan
// for the length (see plan.go); planned output is bit-identical to the
// naive transform kept below as the pinned reference.
func FFT(x []complex128) ([]complex128, error) {
	if len(x) == 0 {
		return nil, ErrEmpty
	}
	p, err := PlanFor(len(x), false)
	if err != nil {
		return nil, err
	}
	out := append([]complex128(nil), x...)
	if err := p.Transform(out); err != nil {
		return nil, err
	}
	return out, nil
}

// IFFT computes the inverse discrete Fourier transform of x (with the 1/n
// normalization) and returns a new slice.
func IFFT(x []complex128) ([]complex128, error) {
	if len(x) == 0 {
		return nil, ErrEmpty
	}
	p, err := PlanFor(len(x), true)
	if err != nil {
		return nil, err
	}
	out := append([]complex128(nil), x...)
	if err := p.Transform(out); err != nil {
		return nil, err
	}
	n := complex(float64(len(out)), 0)
	for i := range out {
		out[i] /= n
	}
	return out, nil
}

// transform runs an in-place unnormalized DFT (inverse flips the twiddle
// sign and leaves scaling to the caller). It recomputes twiddles and chirp
// state on every call; the production entry points use plans instead, and
// this naive path survives as the bit-equality reference the plan tests
// pin against.
func transform(x []complex128, inverse bool) error {
	n := len(x)
	if n == 1 {
		return nil
	}
	if n&(n-1) == 0 {
		radix2(x, inverse)
		return nil
	}
	return bluestein(x, inverse)
}

// radix2 is the iterative in-place Cooley-Tukey FFT for power-of-two sizes.
func radix2(x []complex128, inverse bool) {
	n := len(x)
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wStep := cmplx.Rect(1, step)
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT via the chirp-z transform,
// expressing it as a convolution evaluated with a power-of-two FFT.
func bluestein(x []complex128, inverse bool) error {
	n := len(x)
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// chirp[k] = exp(sign * i*pi*k^2/n)
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		// k*k may overflow for very large n; reduce mod 2n first since the
		// chirp phase is periodic with period 2n in k^2.
		kk := (int64(k) * int64(k)) % int64(2*n)
		chirp[k] = cmplx.Rect(1, sign*math.Pi*float64(kk)/float64(n))
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(chirp[k])
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	scale := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		x[k] = a[k] * scale * chirp[k]
	}
	return nil
}

// Matrix is a dense complex matrix in row-major order, the working
// representation for 2-D spectra.
type Matrix struct {
	W, H int
	Data []complex128
}

// NewMatrix returns a zero-filled complex matrix.
func NewMatrix(w, h int) (*Matrix, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("fourier: invalid matrix size %dx%d", w, h)
	}
	return &Matrix{W: w, H: h, Data: make([]complex128, w*h)}, nil
}

// At returns element (x, y).
func (m *Matrix) At(x, y int) complex128 { return m.Data[y*m.W+x] }

// Set writes element (x, y).
func (m *Matrix) Set(x, y int, v complex128) { m.Data[y*m.W+x] = v }

// FromReal builds a complex matrix from real row-major samples.
func FromReal(data []float64, w, h int) (*Matrix, error) {
	if len(data) != w*h {
		return nil, fmt.Errorf("fourier: data length %d does not match %dx%d", len(data), w, h)
	}
	m, err := NewMatrix(w, h)
	if err != nil {
		return nil, err
	}
	for i, v := range data {
		m.Data[i] = complex(v, 0)
	}
	return m, nil
}

// FFT2D computes the forward 2-D DFT (rows then columns) of m into a new
// matrix.
func FFT2D(m *Matrix) (*Matrix, error) {
	return transform2D(context.Background(), m, false)
}

// IFFT2D computes the inverse 2-D DFT of m into a new matrix, including the
// 1/(W*H) normalization.
func IFFT2D(m *Matrix) (*Matrix, error) {
	out, err := transform2D(context.Background(), m, true)
	if err != nil {
		return nil, err
	}
	n := complex(float64(m.W*m.H), 0)
	for i := range out.Data {
		out.Data[i] /= n
	}
	return out, nil
}

// minTransformWork is the per-chunk grain (in matrix elements) below which
// the 1-D passes of transform2D stay on the calling goroutine.
const minTransformWork = 1 << 13

// colScratch pools the per-chunk column gather buffers of transform2D so
// repeated 2-D transforms of the same geometry allocate nothing per pass.
var colScratch = sync.Pool{New: func() any { return &[]complex128{} }}

func transform2D(ctx context.Context, m *Matrix, inverse bool, opts ...parallel.Option) (*Matrix, error) {
	if m == nil || m.W == 0 || m.H == 0 {
		return nil, ErrEmpty
	}
	// One plan per axis, fetched once and shared by every row/column of the
	// pass (plans are concurrency-safe).
	rowPlan, err := PlanFor(m.W, inverse)
	if err != nil {
		return nil, err
	}
	colPlan, err := PlanFor(m.H, inverse)
	if err != nil {
		return nil, err
	}
	return transform2DWith(ctx, m, rowPlan, colPlan, opts...)
}

// Shift applies the fftshift quadrant swap so that the zero-frequency
// component moves to the center of the matrix. It returns a new matrix.
func Shift(m *Matrix) *Matrix {
	out := &Matrix{W: m.W, H: m.H, Data: make([]complex128, len(m.Data))}
	hw, hh := (m.W+1)/2, (m.H+1)/2
	for y := 0; y < m.H; y++ {
		ny := (y + m.H - hh) % m.H
		for x := 0; x < m.W; x++ {
			nx := (x + m.W - hw) % m.W
			out.Data[ny*m.W+nx] = m.Data[y*m.W+x]
		}
	}
	return out
}

// LogMagnitude returns log(1 + |F|) of every element as a real row-major
// slice — the paper's Eq. 4 "logarithmic with a shift" spectrum intensity.
func LogMagnitude(m *Matrix) []float64 {
	out := make([]float64, len(m.Data))
	for i, v := range m.Data {
		out[i] = math.Log1p(cmplx.Abs(v))
	}
	return out
}

// CenteredSpectrum computes the centered log-magnitude spectrum of a real
// 2-D signal: DFT, fftshift, then log(1+|F|), normalized to [0, 1] by the
// spectrum's own maximum. This is the "centered spectrum" image the paper's
// steganalysis method binarizes and runs contour counting on.
func CenteredSpectrum(data []float64, w, h int) ([]float64, error) {
	m, err := FromReal(data, w, h)
	if err != nil {
		return nil, err
	}
	spec, err := FFT2D(m)
	if err != nil {
		return nil, err
	}
	return centeredFromSpectrum(spec), nil
}
