package benchfmt

import (
	"strings"
	"testing"

	"decamouflage/internal/testutil"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: decamouflage/internal/fourier
cpu: Example CPU
BenchmarkFFT2D256 	      50	   3301700 ns/op	 1048766 B/op	       6 allocs/op
BenchmarkFFT1D256Planned-8  	  100000	      3805 ns/op	       0 B/op	       0 allocs/op
BenchmarkRankFilter256Serial/Window5 	      50	   9049049 ns/op
BenchmarkThroughput 	     200	     52341 ns/op	 312.45 MB/s	    1024 B/op	       2 allocs/op
PASS
ok  	decamouflage/internal/fourier	5.1s
--- FAIL: TestSomething
Benchmarking note: this line is chatter, not a result
`

func TestParse(t *testing.T) {
	got, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(got), got)
	}
	want := []Result{
		{Name: "BenchmarkFFT2D256", Iterations: 50, NsPerOp: 3301700, BytesPerOp: 1048766, AllocsPerOp: 6},
		{Name: "BenchmarkFFT1D256Planned-8", Iterations: 100000, NsPerOp: 3805, BytesPerOp: 0, AllocsPerOp: 0},
		{Name: "BenchmarkRankFilter256Serial/Window5", Iterations: 50, NsPerOp: 9049049, BytesPerOp: -1, AllocsPerOp: -1},
		{Name: "BenchmarkThroughput", Iterations: 200, NsPerOp: 52341, BytesPerOp: 1024, AllocsPerOp: 2, MBPerSec: 312.45},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("result %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestParseBadValue(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkX 10 oops ns/op\n")); err == nil {
		t.Fatal("malformed ns/op value must be an error")
	}
}

func TestParseEmpty(t *testing.T) {
	got, err := Parse(strings.NewReader("PASS\nok pkg 1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed %d results from non-benchmark input", len(got))
	}
}

func TestBaseName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkDetectDisabled-8": "BenchmarkDetectDisabled",
		"BenchmarkDetectDisabled":   "BenchmarkDetectDisabled",
		"BenchmarkRank/Window5-16":  "BenchmarkRank/Window5",
		"BenchmarkOdd-name":         "BenchmarkOdd-name", // suffix not numeric
		"BenchmarkTwo-Pass-4":       "BenchmarkTwo-Pass",
	}
	for in, want := range cases {
		if got := BaseName(in); got != want {
			t.Errorf("BaseName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSelectAndMedian(t *testing.T) {
	rs := []Result{
		{Name: "BenchmarkA-8", NsPerOp: 300},
		{Name: "BenchmarkB-8", NsPerOp: 1},
		{Name: "BenchmarkA-8", NsPerOp: 100},
		{Name: "BenchmarkA-8", NsPerOp: 200},
	}
	sel := Select(rs, "BenchmarkA")
	if len(sel) != 3 {
		t.Fatalf("selected %d results, want 3", len(sel))
	}
	if got := MedianNsPerOp(sel); !testutil.BitEqual(got, 200) {
		t.Errorf("odd median = %v, want 200", got)
	}
	sel = append(sel, Result{Name: "BenchmarkA-8", NsPerOp: 400})
	if got := MedianNsPerOp(sel); !testutil.BitEqual(got, 250) {
		t.Errorf("even median = %v, want 250", got)
	}
	if got := MedianNsPerOp(nil); !testutil.BitEqual(got, 0) {
		t.Errorf("empty median = %v, want 0", got)
	}
	if sel := Select(rs, "BenchmarkC"); len(sel) != 0 {
		t.Errorf("selected %d results for absent name", len(sel))
	}
}

func TestMedianAllocsPerOp(t *testing.T) {
	rs := []Result{
		{Name: "BenchmarkA-8", NsPerOp: 1, AllocsPerOp: 30},
		{Name: "BenchmarkA-8", NsPerOp: 1, AllocsPerOp: -1}, // no -benchmem on this rep
		{Name: "BenchmarkA-8", NsPerOp: 1, AllocsPerOp: 10},
		{Name: "BenchmarkA-8", NsPerOp: 1, AllocsPerOp: 20},
	}
	if got := MedianAllocsPerOp(rs); got != 20 {
		t.Errorf("odd median = %d, want 20 (unreported rep skipped)", got)
	}
	rs = append(rs, Result{Name: "BenchmarkA-8", NsPerOp: 1, AllocsPerOp: 25})
	if got := MedianAllocsPerOp(rs); got != 22 {
		t.Errorf("even median = %d, want 22 (average of 20 and 25, rounded down)", got)
	}
	if got := MedianAllocsPerOp(nil); got != -1 {
		t.Errorf("empty median = %d, want -1", got)
	}
	if got := MedianAllocsPerOp([]Result{{AllocsPerOp: -1}}); got != -1 {
		t.Errorf("all-unreported median = %d, want -1", got)
	}
}
