package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// summarySchema versions the on-disk summary format; bump it whenever
// FuncEffects or the effects pass changes so stale caches self-invalidate.
const summarySchema = 3

// PkgSummary is the cached unit: every function summary of one package,
// keyed on disk by the package's transitive content hash.
type PkgSummary struct {
	Schema int            `json:"schema"`
	Path   string         `json:"path"`
	Funcs  []*FuncEffects `json:"funcs"`
}

// Index is the whole-module call graph: function summaries by ID, interface
// method keys resolved to their module-defined implementers, and memoized
// reachability. Interface resolution happens here — against the freshly
// type-checked module, never inside cached summaries — so adding an
// implementer in package B correctly invalidates nothing in package A.
type Index struct {
	Funcs map[string]*FuncEffects
	ids   []string            // sorted, for deterministic iteration
	impls map[string][]string // "iface:<pkg>.<iface>.<method>" -> fn IDs
	reach map[string][]string
}

// IDs returns every function ID in sorted order.
func (ix *Index) IDs() []string { return ix.ids }

// Implementers returns the function IDs an interface call key dispatches to.
func (ix *Index) Implementers(key string) []string { return ix.impls[key] }

// BuildIndex computes (or loads from cfg.CacheDir) the per-package function
// summaries for every non-test unit and links them into a call graph.
func BuildIndex(pkgs []*Package, cfg Config) *Index {
	ix := &Index{
		Funcs: map[string]*FuncEffects{},
		impls: map[string][]string{},
		reach: map[string][]string{},
	}
	hashes := newHashCache(pkgs)
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Path, "_test") {
			continue
		}
		for _, fx := range packageEffects(pkg, cfg.CacheDir, hashes) {
			if _, dup := ix.Funcs[fx.ID]; dup {
				continue
			}
			ix.Funcs[fx.ID] = fx
			ix.ids = append(ix.ids, fx.ID)
		}
	}
	sort.Strings(ix.ids)
	ix.resolveInterfaces(pkgs)
	return ix
}

// packageEffects returns the package's summaries, consulting the on-disk
// cache when enabled. Cache misses and IO failures silently fall back to
// recomputation: the cache is a performance feature, never a correctness
// dependency.
func packageEffects(pkg *Package, cacheDir string, hashes *hashCache) []*FuncEffects {
	if cacheDir == "" {
		return computePackageEffects(pkg)
	}
	hash := hashes.hashOf(pkg.Path)
	if hash == "" {
		return computePackageEffects(pkg)
	}
	file := filepath.Join(cacheDir, hash+".json")
	if data, err := os.ReadFile(file); err == nil {
		var s PkgSummary
		if json.Unmarshal(data, &s) == nil && s.Schema == summarySchema && s.Path == pkg.Path {
			return s.Funcs
		}
	}
	funcs := computePackageEffects(pkg)
	writeSummary(file, PkgSummary{Schema: summarySchema, Path: pkg.Path, Funcs: funcs})
	return funcs
}

// writeSummary persists one package summary best-effort, via a temp file so
// a concurrent reader never sees a torn write.
func writeSummary(file string, s PkgSummary) {
	data, err := json.Marshal(s)
	if err != nil {
		return
	}
	if err := os.MkdirAll(filepath.Dir(file), 0o755); err != nil {
		return
	}
	tmp := file + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	if err := os.Rename(tmp, file); err != nil {
		os.Remove(tmp)
	}
}

// hashCache computes per-package content hashes that also fold in the
// hashes of module-internal imports (transitively) plus the toolchain
// version. A summary's validity depends on its imports' signatures — an
// interface parameter appearing two packages away changes this package's
// boxing sites — so the key must cover the whole compile-time closure.
type hashCache struct {
	byPath map[string]*Package
	memo   map[string]string
}

func newHashCache(pkgs []*Package) *hashCache {
	h := &hashCache{byPath: map[string]*Package{}, memo: map[string]string{}}
	for _, pkg := range pkgs {
		if !strings.HasSuffix(pkg.Path, "_test") {
			h.byPath[pkg.Path] = pkg
		}
	}
	return h
}

// hashOf returns the hex digest for the package, or "" when any source file
// is unreadable (which simply disables caching for that package).
func (h *hashCache) hashOf(path string) string {
	if v, ok := h.memo[path]; ok {
		return v
	}
	h.memo[path] = "" // cycle/failure sentinel while computing
	pkg := h.byPath[path]
	if pkg == nil {
		return ""
	}
	hash := sha256.New()
	hash.Write([]byte(runtime.Version()))
	hash.Write([]byte{0, byte(summarySchema), 0})
	hash.Write([]byte(path))
	var names []string
	byName := map[string]*File{}
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		names = append(names, f.Filename)
		byName[f.Filename] = f
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			return ""
		}
		hash.Write([]byte{0})
		hash.Write([]byte(name))
		hash.Write([]byte{0})
		hash.Write(data)
	}
	if pkg.Pkg != nil {
		var imps []string
		for _, imp := range pkg.Pkg.Imports() {
			if _, mod := h.byPath[imp.Path()]; mod {
				imps = append(imps, imp.Path())
			}
		}
		sort.Strings(imps)
		for _, imp := range imps {
			sub := h.hashOf(imp)
			if sub == "" {
				return ""
			}
			hash.Write([]byte{1})
			hash.Write([]byte(sub))
		}
	}
	v := hex.EncodeToString(hash.Sum(nil))
	h.memo[path] = v
	return v
}

// resolveInterfaces maps every "iface:" call key referenced by a summary to
// the module-defined concrete types that implement the interface, by
// structural method-set checks against the freshly loaded types. Types
// declared in test files do not register as implementers: test fakes must
// not add edges to production reachability.
func (ix *Index) resolveInterfaces(pkgs []*Package) {
	need := map[string]bool{}
	for _, fx := range ix.Funcs {
		for _, c := range fx.Calls {
			if strings.HasPrefix(c.Callee, "iface:") {
				need[c.Callee] = true
			}
		}
	}
	if len(need) == 0 {
		return
	}

	type namedType struct {
		named *types.Named
		pkg   *types.Package
	}
	ifaces := map[string]*types.Interface{} // "<pkg>.<name>"
	var concrete []namedType
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Path, "_test") || pkg.Pkg == nil {
			continue
		}
		nonTest := map[string]bool{}
		for _, f := range pkg.Files {
			if !f.Test {
				nonTest[f.Filename] = true
			}
		}
		scope := pkg.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if !nonTest[pkg.Fset.Position(tn.Pos()).Filename] {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if iface, ok := named.Underlying().(*types.Interface); ok {
				ifaces[pkg.Pkg.Path()+"."+name] = iface
			} else {
				concrete = append(concrete, namedType{named, pkg.Pkg})
			}
		}
	}

	var keys []string
	for k := range need {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		rest := strings.TrimPrefix(key, "iface:")
		mdot := strings.LastIndex(rest, ".")
		if mdot < 0 {
			continue
		}
		method := rest[mdot+1:]
		qual := rest[:mdot] // "<pkg>.<iface>"
		iface, ok := ifaces[qual]
		if !ok {
			continue // interface defined outside the module: opaque dispatch
		}
		var targets []string
		for _, nt := range concrete {
			recv := types.Type(nt.named)
			if !types.Implements(recv, iface) {
				recv = types.NewPointer(nt.named)
				if !types.Implements(recv, iface) {
					continue
				}
			}
			obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(nt.named), true, nt.pkg, method)
			if fn, ok := obj.(*types.Func); ok {
				if id := funcIDOf(fn); id != "" {
					targets = append(targets, id)
				}
			}
		}
		sort.Strings(targets)
		targets = dedupSorted(targets)
		ix.impls[key] = targets
	}
}

func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || s[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}

// expand resolves one call-edge key to the function IDs it can reach:
// itself for a static edge whose target is summarized, every registered
// implementer for an interface edge.
func (ix *Index) expand(callee string) []string {
	if id, ok := strings.CutPrefix(callee, "fn:"); ok {
		if _, known := ix.Funcs[id]; known {
			return []string{id}
		}
		return nil
	}
	return ix.impls[callee]
}

// Reachable returns the sorted set of function IDs statically reachable
// from id, including id itself, following both direct and interface edges.
func (ix *Index) Reachable(id string) []string {
	if r, ok := ix.reach[id]; ok {
		return r
	}
	seen := map[string]bool{id: true}
	queue := []string{id}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		fx := ix.Funcs[cur]
		if fx == nil {
			continue
		}
		for _, c := range fx.Calls {
			for _, next := range ix.expand(c.Callee) {
				if !seen[next] {
					seen[next] = true
					queue = append(queue, next)
				}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	ix.reach[id] = out
	return out
}
