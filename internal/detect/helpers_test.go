package detect

// Shared test helpers. mustScaler and the stub scorer/detector pair were
// previously duplicated across test files; every detect test builds its
// fixtures from this one set so the stubs exercise the pipeline adapter
// and the legacy path identically.

import (
	"testing"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/scaling"
)

// mustScaler builds a bilinear scaler or fails the test.
func mustScaler(t testing.TB, srcW, srcH, dstW, dstH int) *scaling.Scaler {
	t.Helper()
	s, err := scaling.NewScaler(srcW, srcH, dstW, dstH, scaling.Options{Algorithm: scaling.Bilinear})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// stubScorer returns a fixed score or error. It is a plain Scorer (no
// ScoreCtx, no ScorePipeline), so ensembles built over it pin the
// pipeline adapter's fallback path for third-party scorers.
type stubScorer struct {
	name  string
	score float64
	err   error
}

func (s *stubScorer) Name() string { return s.name }

func (s *stubScorer) Score(*imgcore.Image) (float64, error) {
	return s.score, s.err
}

// stubDetector wraps a stubScorer in a Threshold{1, Above} detector whose
// verdict is forced to the requested side (score 2 = attack, 0 = benign).
func stubDetector(t testing.TB, name string, score float64, attackSide bool) *Detector {
	t.Helper()
	th := Threshold{Value: 1, Direction: Above}
	sc := score
	if attackSide {
		sc = 2 // above threshold
	} else {
		sc = 0
	}
	d, err := NewDetector(&stubScorer{name: name, score: sc}, th)
	if err != nil {
		t.Fatal(err)
	}
	return d
}
