package filtering

import (
	"context"
	"math/rand"
	"testing"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/parallel"
	"decamouflage/internal/testutil"
)

// noiseImage builds a reproducible random image.
func noiseImage(rng *rand.Rand, w, h, c int) *imgcore.Image {
	img := imgcore.MustNew(w, h, c)
	for i := range img.Pix {
		img.Pix[i] = rng.Float64() * 255
	}
	return img
}

// TestRankFilterSerialParallelEquivalence: every rank-filter output must be
// bit-identical across worker counts, over odd/even/prime geometries, both
// channel counts, and even/odd windows (which anchor differently).
func TestRankFilterSerialParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	sizes := [][2]int{{1, 1}, {2, 3}, {7, 5}, {16, 16}, {31, 29}, {64, 48}, {97, 11}}
	picks := map[string]func([]float64) float64{
		"min":    pickMin,
		"max":    pickMax,
		"median": pickMedian,
	}
	for _, wh := range sizes {
		for _, c := range []int{1, 3} {
			img := noiseImage(rng, wh[0], wh[1], c)
			for _, window := range []int{2, 3} {
				for name, pick := range picks {
					want, err := rankFilter(context.Background(), img, window, pick, parallel.Workers(1), parallel.Grain(1))
					if err != nil {
						t.Fatalf("%s %dx%dx%d w=%d serial: %v", name, wh[0], wh[1], c, window, err)
					}
					for _, workers := range []int{2, 4, 7} {
						got, err := rankFilter(context.Background(), img, window, pick, parallel.Workers(workers), parallel.Grain(1))
						if err != nil {
							t.Fatalf("%s workers=%d: %v", name, workers, err)
						}
						for i := range want.Pix {
							if !testutil.BitEqual(got.Pix[i], want.Pix[i]) {
								t.Fatalf("%s %dx%dx%d w=%d workers=%d: sample %d differs: %v vs %v",
									name, wh[0], wh[1], c, window, workers, i, got.Pix[i], want.Pix[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestBoxGaussianSerialParallelEquivalence covers the two smoothing
// filters' parallel bands.
func TestBoxGaussianSerialParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, wh := range [][2]int{{5, 3}, {17, 23}, {32, 32}, {41, 19}} {
		for _, c := range []int{1, 3} {
			img := noiseImage(rng, wh[0], wh[1], c)

			wantBox, err := box(context.Background(), img, 3, parallel.Workers(1), parallel.Grain(1))
			if err != nil {
				t.Fatal(err)
			}
			wantGauss, err := gaussian(context.Background(), img, 2, 1.1, parallel.Workers(1), parallel.Grain(1))
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 5} {
				gotBox, err := box(context.Background(), img, 3, parallel.Workers(workers), parallel.Grain(1))
				if err != nil {
					t.Fatal(err)
				}
				gotGauss, err := gaussian(context.Background(), img, 2, 1.1, parallel.Workers(workers), parallel.Grain(1))
				if err != nil {
					t.Fatal(err)
				}
				for i := range wantBox.Pix {
					if !testutil.BitEqual(gotBox.Pix[i], wantBox.Pix[i]) {
						t.Fatalf("box %dx%dx%d workers=%d: sample %d differs", wh[0], wh[1], c, workers, i)
					}
				}
				for i := range wantGauss.Pix {
					if !testutil.BitEqual(gotGauss.Pix[i], wantGauss.Pix[i]) {
						t.Fatalf("gaussian %dx%dx%d workers=%d: sample %d differs", wh[0], wh[1], c, workers, i)
					}
				}
			}
		}
	}
}

// TestExportedFiltersMatchPinnedSerial ties the public entry points (which
// take their worker count from GOMAXPROCS) to the serial reference.
func TestExportedFiltersMatchPinnedSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	img := noiseImage(rng, 37, 26, 3)
	got, err := Minimum(img, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := rankFilter(context.Background(), img, 2, pickMin, parallel.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Pix {
		if !testutil.BitEqual(got.Pix[i], want.Pix[i]) {
			t.Fatalf("Minimum diverges from serial at sample %d", i)
		}
	}
}

func benchmarkMinimum(b *testing.B, workers int) {
	rng := rand.New(rand.NewSource(5))
	img := noiseImage(rng, 256, 256, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := minMaxFilter(context.Background(), img, 5, false, parallel.Workers(workers)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRankFilter256Serial is the single-worker 5×5 minimum filter at
// 256×256×3 on the fast van Herk–Gil–Werman path; compare against
// BenchmarkRankFilter256Naive (fast_test.go) for the algorithmic speedup
// and BenchmarkRankFilter256Parallel for the multi-core one.
func BenchmarkRankFilter256Serial(b *testing.B) { benchmarkMinimum(b, 1) }

// BenchmarkRankFilter256Parallel is the same sweep at the default
// (GOMAXPROCS) worker count.
func BenchmarkRankFilter256Parallel(b *testing.B) { benchmarkMinimum(b, parallel.DefaultWorkers()) }
