package scaling

import "testing"

// Test files may use raw goroutines (cancellation tests, deadlock probes);
// noraw-go must not flag them.
func TestSum(t *testing.T) {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	if Sum([]int{1, 2}) != 5 {
		t.Fatal("bad sum")
	}
}
