package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("Results", "Metric", "Acc.", "FAR")
	tbl.AddRow("MSE", "99.9%", "0.0%")
	tbl.AddRow("SSIM", "99.0%") // short row padded
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"### Results", "| Metric", "| MSE", "| SSIM", "99.9%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title, blank, header, separator, 2 rows.
	if len(lines) != 6 {
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

func TestTableRenderNoHeaders(t *testing.T) {
	var sb strings.Builder
	if err := (&Table{}).Render(&sb); err == nil {
		t.Error("headerless table accepted")
	}
}

func TestTableNoTitle(t *testing.T) {
	tbl := NewTable("", "A")
	tbl.AddRow("1")
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "###") {
		t.Error("unexpected title header")
	}
}

func TestFormatters(t *testing.T) {
	if got := Pct(0.999); got != "99.9%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(0); got != "0.0%" {
		t.Errorf("Pct(0) = %q", got)
	}
	if got := F(3.14159, 2); got != "3.14" {
		t.Errorf("F = %q", got)
	}
}

func TestRenderHistogramTwoSets(t *testing.T) {
	a := []float64{1, 2, 2, 3, 3, 3}
	b := []float64{10, 11, 11, 12}
	var sb strings.Builder
	err := RenderHistogram(&sb, "MSE distribution", "benign", a, "attack", b, HistogramOptions{
		Bins: 10, Width: 20, Markers: map[string]float64{"threshold": 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "MSE distribution") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "*") {
		t.Error("missing bars")
	}
	if !strings.Contains(out, "<-- threshold") {
		t.Errorf("missing marker:\n%s", out)
	}
}

func TestRenderHistogramSingleSet(t *testing.T) {
	var sb strings.Builder
	if err := RenderHistogram(&sb, "t", "x", []float64{1, 2, 3}, "", nil, HistogramOptions{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "*") {
		t.Error("unexpected second-series bars")
	}
}

func TestRenderHistogramErrors(t *testing.T) {
	var sb strings.Builder
	if err := RenderHistogram(&sb, "t", "x", nil, "", nil, HistogramOptions{}); err == nil {
		t.Error("empty samples accepted")
	}
}

func TestRenderHistogramConstantData(t *testing.T) {
	var sb strings.Builder
	if err := RenderHistogram(&sb, "t", "x", []float64{5, 5, 5}, "", nil, HistogramOptions{Bins: 4}); err != nil {
		t.Fatalf("constant data: %v", err)
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	err := WriteCSV(&sb, []string{"x", "y"}, []float64{1, 2}, []float64{3.5, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,3.5\n2,4\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestWriteCSVErrors(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb, []string{"x"}, []float64{1}, []float64{2}); err == nil {
		t.Error("header/column mismatch accepted")
	}
	if err := WriteCSV(&sb, []string{}); err == nil {
		t.Error("no columns accepted")
	}
	if err := WriteCSV(&sb, []string{"x", "y"}, []float64{1}, []float64{2, 3}); err == nil {
		t.Error("ragged columns accepted")
	}
}

func TestScale(t *testing.T) {
	if scale(0, 10, 50) != 0 {
		t.Error("zero count should be zero width")
	}
	if scale(1, 1000, 50) != 1 {
		t.Error("nonzero count should be at least 1 char")
	}
	if scale(10, 10, 50) != 50 {
		t.Error("max count should be full width")
	}
}
