// Package cnn is a small, self-contained convolutional neural network —
// the downstream consumer the image-scaling attack ultimately fools. The
// paper's pipeline (Figure 2) ends at "the CNN model sees the target"; this
// package closes that loop end to end: a tiny convnet trained on synthetic
// shapes classifies the downscaled images, so examples and experiments can
// demonstrate the actual misclassification an attack causes and the save
// Decamouflage provides.
//
// The implementation is deliberately minimal (conv / ReLU / max-pool /
// dense / softmax, SGD with momentum, float64 throughout) but complete:
// forward, backward, and training are all from scratch on the standard
// library.
package cnn

import (
	"fmt"
	"math/rand"
)

// Volume is a 3-D activation tensor in channel-major order:
// Data[(c*H + y)*W + x].
type Volume struct {
	W, H, C int
	Data    []float64
}

// NewVolume returns a zero volume of the given geometry.
func NewVolume(w, h, c int) *Volume {
	return &Volume{W: w, H: h, C: c, Data: make([]float64, w*h*c)}
}

// At returns the activation at (x, y, c).
func (v *Volume) At(x, y, c int) float64 { return v.Data[(c*v.H+y)*v.W+x] }

// Set writes the activation at (x, y, c).
func (v *Volume) Set(x, y, c int, val float64) { v.Data[(c*v.H+y)*v.W+x] = val }

// Clone deep-copies the volume.
func (v *Volume) Clone() *Volume {
	out := &Volume{W: v.W, H: v.H, C: v.C, Data: make([]float64, len(v.Data))}
	copy(out.Data, v.Data)
	return out
}

// shapeEquals reports whether two volumes share geometry.
func (v *Volume) shapeEquals(o *Volume) bool {
	return v.W == o.W && v.H == o.H && v.C == o.C
}

// String implements fmt.Stringer.
func (v *Volume) String() string {
	return fmt.Sprintf("Volume(%dx%dx%d)", v.W, v.H, v.C)
}

// randn fills data with scaled Gaussian noise (He-style initialization).
func randn(rng *rand.Rand, data []float64, scale float64) {
	for i := range data {
		data[i] = rng.NormFloat64() * scale
	}
}
