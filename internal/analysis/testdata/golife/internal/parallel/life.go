// Package parallel is a fixture: goroutine-lifecycle hazards. It sits at
// the substrate path so noraw-go stays out of the way and the golife
// findings stand alone — a leak-on-every-path loop, a stop channel that is
// closed but never joined, a spawn with no directive, an unbacked spawns
// claim, and the clean stop+done join shape.
package parallel

// Leaky spawns a forever-loop with no termination signal.
//
//declint:spawns fixture: intentionally leaky send loop
func Leaky(ch chan int) {
	go func() {
		for {
			ch <- 1
		}
	}()
}

// Pump owns a loop that can be signalled but never joined.
type Pump struct {
	stop chan struct{}
}

// StartPump launches the pump loop.
//
//declint:spawns one pump loop per Pump; signalled via p.stop
func StartPump() *Pump {
	p := &Pump{stop: make(chan struct{})}
	go func() {
		for {
			select {
			case <-p.stop:
				return
			}
		}
	}()
	return p
}

// Stop signals the pump but never waits for it to exit.
func (p *Pump) Stop() {
	close(p.stop)
}

// Fire spawns a bounded goroutine but carries no directive.
func Fire(done chan struct{}) {
	go func() {
		close(done)
	}()
}

// Calm claims to spawn but does not.
//
//declint:spawns fixture: claim with no goroutine behind it
func Calm() {}

// Ticker is the clean shape: a stop channel plus a done join.
type Ticker struct {
	stop chan struct{}
	done chan struct{}
}

// StartTicker launches a joined loop.
//
//declint:spawns one loop per Ticker; select on t.stop, joined via t.done
func StartTicker() *Ticker {
	t := &Ticker{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(t.done)
		for {
			select {
			case <-t.stop:
				return
			}
		}
	}()
	return t
}

// Stop halts the loop and waits for it to exit.
func (t *Ticker) Stop() {
	close(t.stop)
	<-t.done
}
