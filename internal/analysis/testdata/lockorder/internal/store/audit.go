// Cross-function lock-order edges: one declared with locks-after (clean),
// one undeclared (flagged), and one declaration no caller ever exercises
// (flagged as unbacked).
package store

// lockB acquires muB; callers holding muA rely on the declared order.
//
//declint:locks-after store.muA
func lockB() {
	muB.Lock()
	muB.Unlock()
}

// UnderA calls lockB while holding muA: the edge is declared, so clean.
func UnderA() {
	muA.Lock()
	defer muA.Unlock()
	lockB()
}

// lockA acquires muA with no declaration.
func lockA() {
	muA.Lock()
	muA.Unlock()
}

// UnderB calls lockA while holding muB: an undeclared cross-function edge.
func UnderB() {
	muB.Lock()
	defer muB.Unlock()
	lockA()
}

// Idle declares an order no caller ever exercises.
//
//declint:locks-after store.Store.mu
func Idle() {
	muB.Lock()
	muB.Unlock()
}
