package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	rpprof "runtime/pprof"
	"time"
)

// StartCPUProfile begins a CPU profile written to path and returns a stop
// function that finishes the profile and closes the file. An empty path
// is a no-op.
func StartCPUProfile(path string) (stop func() error, err error) {
	if path == "" {
		return func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: create cpu profile: %w", err)
	}
	if err := rpprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: start cpu profile: %w", err)
	}
	return func() error {
		rpprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile writes a heap profile to path after a GC, so the
// profile reflects live memory rather than garbage. An empty path is a
// no-op.
func WriteHeapProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: create mem profile: %w", err)
	}
	runtime.GC()
	if err := rpprof.Lookup("heap").WriteTo(f, 0); err != nil {
		f.Close()
		return fmt.Errorf("obs: write mem profile: %w", err)
	}
	return f.Close()
}

// DebugServer is a running debug HTTP endpoint started by ServeDebug.
type DebugServer struct {
	addr string
	srv  *http.Server
	ln   net.Listener
}

// Addr returns the address the server is listening on (useful with
// ":0"-style requests).
func (d *DebugServer) Addr() string {
	if d == nil {
		return ""
	}
	return d.addr
}

// Close shuts the server down.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	return d.srv.Close()
}

// ServeDebug starts an HTTP server on addr exposing the standard debug
// surface:
//
//	/healthz          liveness probe ("ok")
//	/metrics          default registry, Prometheus text format
//	/metrics.json     default registry, JSON snapshot
//	/debug/events     flight-recorder events, NDJSON (?trace=ID filters)
//	/debug/traces     retained traces, NDJSON (?id=ID filters)
//	/debug/vars       expvar (includes decamouflage.metrics)
//	/debug/pprof/...  net/http/pprof profiles
//
// The handlers live on a private mux so importing obs never mutates
// http.DefaultServeMux.
//
//declint:spawns one http.Serve loop per debug server; terminated and joined by DebugServer.Close
func ServeDebug(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	PublishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := Default.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := Default.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		rec := Events()
		if !rec.Active() {
			http.Error(w, "no flight recorder installed", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		if id := r.URL.Query().Get("trace"); id != "" {
			ev, ok := rec.Find(id)
			if !ok {
				http.Error(w, "no event for trace "+id, http.StatusNotFound)
				return
			}
			if err := json.NewEncoder(w).Encode(&ev); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		if err := rec.WriteNDJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		ts := Tail()
		if !ts.Active() {
			http.Error(w, "no tail sampler installed", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		if id := r.URL.Query().Get("id"); id != "" {
			rt, ok := ts.Find(id)
			if !ok {
				http.Error(w, "no retained trace "+id, http.StatusNotFound)
				return
			}
			if err := json.NewEncoder(w).Encode(&rt); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		if err := ts.WriteNDJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	d := &DebugServer{addr: ln.Addr().String(), srv: srv, ln: ln}
	//declint:ignore noraw-go debug server must outlive the caller; lifetime is bounded by DebugServer.Close, and parallel.For's fork-join shape cannot host a long-lived listener
	go srv.Serve(ln)
	return d, nil
}
