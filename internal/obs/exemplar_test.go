package obs

import (
	"strings"
	"testing"
	"time"

	"decamouflage/internal/testutil"
)

func TestObserveTracedPinsExemplar(t *testing.T) {
	withRecording(t)
	var h Histogram
	// 1.5ms lands in the 2ms bucket.
	h.ObserveTraced(1500*time.Microsecond, "t1")
	ex := h.Exemplars()
	if len(ex) != 1 {
		t.Fatalf("exemplars = %+v, want one", ex)
	}
	// ValueMs is ns/1e6 of an exact microsecond count, so bit equality is
	// the intended check.
	if ex[0].TraceID != "t1" || ex[0].BucketLe != "0.002" || !testutil.BitEqual(ex[0].ValueMs, 1.5) {
		t.Fatalf("exemplar = %+v", ex[0])
	}
	if ex[0].UnixNs == 0 {
		t.Fatal("exemplar not timestamped")
	}
	// A smaller observation in the same bucket does not displace the pin.
	h.ObserveTraced(1200*time.Microsecond, "t2")
	if ex = h.Exemplars(); ex[0].TraceID != "t1" {
		t.Fatalf("smaller observation displaced exemplar: %+v", ex[0])
	}
	// A tie goes to the newer trace (most recent extreme).
	h.ObserveTraced(1500*time.Microsecond, "t3")
	if ex = h.Exemplars(); ex[0].TraceID != "t3" {
		t.Fatalf("tie did not refresh exemplar: %+v", ex[0])
	}
	// A larger observation replaces it.
	h.ObserveTraced(1900*time.Microsecond, "t4")
	if ex = h.Exemplars(); ex[0].TraceID != "t4" || !testutil.BitEqual(ex[0].ValueMs, 1.9) {
		t.Fatalf("larger observation did not win: %+v", ex[0])
	}
	// Untraced observations count but never pin.
	h.ObserveTraced(1800*time.Microsecond, "")
	if ex = h.Exemplars(); len(ex) != 1 || ex[0].TraceID != "t4" {
		t.Fatalf("untraced observation touched exemplars: %+v", ex)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	// A second bucket pins independently; overflow reports le="+Inf".
	h.ObserveTraced(20*time.Second, "tinf")
	ex = h.Exemplars()
	if len(ex) != 2 || ex[1].BucketLe != "+Inf" || ex[1].TraceID != "tinf" {
		t.Fatalf("overflow exemplar = %+v", ex)
	}
	var nilH *Histogram
	nilH.ObserveTraced(time.Millisecond, "x")
	if nilH.Exemplars() != nil {
		t.Fatal("nil histogram has exemplars")
	}
}

func TestExemplarsDisabled(t *testing.T) {
	if compiledOut {
		t.Skip("observability compiled out (noobs)")
	}
	var h Histogram
	h.ObserveTraced(time.Millisecond, "t") // metrics disabled: dropped
	if ex := h.Exemplars(); len(ex) != 0 {
		t.Fatalf("disabled histogram pinned exemplars: %+v", ex)
	}
}

func TestSnapshotCarriesExemplars(t *testing.T) {
	withRecording(t)
	r := NewRegistry()
	r.Histogram("lat.seconds").ObserveTraced(3*time.Millisecond, "abc-7")
	snap := r.Snapshot()
	hs := snap.Histograms["lat.seconds"]
	if len(hs.Exemplars) != 1 || hs.Exemplars[0].TraceID != "abc-7" {
		t.Fatalf("snapshot exemplars = %+v", hs.Exemplars)
	}
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"trace_id": "abc-7"`) {
		t.Fatalf("JSON dump missing exemplar trace id:\n%s", sb.String())
	}
}

// TestPromEscaping pins exposition-format escaping: backslash, quote and
// newline in label values; backslash and newline in HELP text.
func TestPromEscaping(t *testing.T) {
	labelCases := []struct{ in, want string }{
		{`plain`, `plain`},
		{`back\slash`, `back\\slash`},
		{`quo"te`, `quo\"te`},
		{"new\nline", `new\nline`},
		{"all\\three\"here\n", `all\\three\"here\n`},
	}
	for _, c := range labelCases {
		if got := escapeLabel(c.in); got != c.want {
			t.Fatalf("escapeLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	helpCases := []struct{ in, want string }{
		{`plain help`, `plain help`},
		{`back\slash`, `back\\slash`},
		{"two\nlines", `two\nlines`},
		// Quotes are legal in HELP text and stay unescaped.
		{`say "hi"`, `say "hi"`},
	}
	for _, c := range helpCases {
		if got := escapeHelp(c.in); got != c.want {
			t.Fatalf("escapeHelp(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestWritePrometheusHelpAndExemplars(t *testing.T) {
	withRecording(t)
	r := NewRegistry()
	r.Counter("req.count").Inc()
	r.SetHelp("req.count", "requests\nwith \\ newline")
	h := r.Histogram("lat.seconds")
	h.ObserveTraced(1500*time.Microsecond, `id"with\quirks`)
	r.SetHelp("lat.seconds", "latency")

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		// HELP precedes TYPE, with help-text escaping applied.
		"# HELP req_count requests\\nwith \\\\ newline\n# TYPE req_count counter\n",
		"# HELP lat_seconds latency\n# TYPE lat_seconds histogram\n",
		// The exemplar rides the bucket line in OpenMetrics syntax, with
		// the trace ID label-escaped and the value in seconds.
		`lat_seconds_bucket{le="0.002"} 1 # {trace_id="id\"with\\quirks"} 0.0015 `,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Exposition must stay single-line-per-sample: no raw newline may
	// survive inside any emitted line.
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.Contains(line, "\r") {
			t.Fatalf("carriage return in exposition line %q", line)
		}
	}
}

// TestHistogramQuantileEdges pins the degenerate inputs: no observations,
// a single observation, everything in the overflow bucket, and q outside
// [0,1]. None may return NaN or garbage.
func TestHistogramQuantileEdges(t *testing.T) {
	withRecording(t)

	var empty Histogram
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if got := empty.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}

	var single Histogram
	single.Observe(3 * time.Millisecond) // 5ms bucket: (2ms, 5ms]
	for _, q := range []float64{0, 0.5, 1} {
		got := single.Quantile(q)
		if got < 2*time.Millisecond || got > 5*time.Millisecond {
			t.Fatalf("single-observation Quantile(%v) = %v, want within (2ms, 5ms]", q, got)
		}
	}
	// q outside [0,1] clamps instead of extrapolating.
	if got, lo := single.Quantile(-3), single.Quantile(0); got != lo {
		t.Fatalf("Quantile(-3) = %v, want clamp to Quantile(0) = %v", got, lo)
	}
	if got, hi := single.Quantile(7), single.Quantile(1); got != hi {
		t.Fatalf("Quantile(7) = %v, want clamp to Quantile(1) = %v", got, hi)
	}

	var inf Histogram
	inf.Observe(30 * time.Second)
	inf.Observe(60 * time.Second)
	// Everything beyond the last finite bound reports that bound: a
	// clearly-marked floor, never an interpolated fiction.
	for _, q := range []float64{0, 0.5, 1} {
		if got := inf.Quantile(q); got != 10*time.Second {
			t.Fatalf("overflow Quantile(%v) = %v, want 10s floor", q, got)
		}
	}
}
