// Fixture stand-in for the observability package: spans read the clock but
// never feed memoized values, so memopure treats the package as an exempt
// traversal barrier.
package obs

import "time"

// Histogram records stage latencies.
type Histogram struct{ n int }

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) { h.n++ }

// StartStage opens a span; the returned func closes it.
func StartStage(name string, h *Histogram) func() {
	start := time.Now()
	return func() {
		if h != nil {
			h.Observe(time.Since(start))
		}
	}
}
