package fourier

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"decamouflage/internal/parallel"
)

// randomMatrix fills a W×H complex matrix with reproducible noise.
func randomMatrix(rng *rand.Rand, w, h int) *Matrix {
	m := &Matrix{W: w, H: h, Data: make([]complex128, w*h)}
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return m
}

// TestTransform2DSerialParallelEquivalence is the core determinism
// guarantee of the parallel-for port: the 2-D transform must be
// BIT-IDENTICAL (==, not approximately equal) across worker counts, for
// every size class — powers of two (radix-2), even composites and primes
// (Bluestein), degenerate single-row/column shapes, forward and inverse.
func TestTransform2DSerialParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sizes := [][2]int{
		{1, 1}, {2, 2}, {4, 8}, {16, 16}, {64, 32}, // radix-2 branch
		{3, 5}, {7, 7}, {13, 17}, {31, 37}, {61, 53}, // prime sizes → Bluestein
		{12, 18}, {24, 36}, {100, 10}, {33, 65}, // even/odd composites
		{128, 1}, {1, 128}, {257, 3}, // degenerate shapes, prime 257
	}
	// Grain(1) maximizes the number of chunks so worker scheduling varies
	// as much as possible; Workers above GOMAXPROCS force real concurrency
	// even on a single-core runner.
	workerCounts := []int{2, 3, 8}
	for _, wh := range sizes {
		for _, inverse := range []bool{false, true} {
			m := randomMatrix(rng, wh[0], wh[1])
			want, err := transform2D(context.Background(), m, inverse, parallel.Workers(1), parallel.Grain(1))
			if err != nil {
				t.Fatalf("%dx%d inverse=%v serial: %v", wh[0], wh[1], inverse, err)
			}
			for _, workers := range workerCounts {
				got, err := transform2D(context.Background(), m, inverse, parallel.Workers(workers), parallel.Grain(1))
				if err != nil {
					t.Fatalf("%dx%d inverse=%v workers=%d: %v", wh[0], wh[1], inverse, workers, err)
				}
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						t.Fatalf("%dx%d inverse=%v workers=%d: element %d differs: %v vs %v",
							wh[0], wh[1], inverse, workers, i, got.Data[i], want.Data[i])
					}
				}
			}
		}
	}
}

// TestFFT2DPublicAPIMatchesPinnedSerial checks that the exported entry
// points (which pick the worker count from GOMAXPROCS) agree bit-for-bit
// with an explicitly serial run — i.e. the default path inherits the
// determinism guarantee.
func TestFFT2DPublicAPIMatchesPinnedSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, wh := range [][2]int{{16, 16}, {17, 19}, {40, 24}} {
		m := randomMatrix(rng, wh[0], wh[1])
		got, err := FFT2D(m)
		if err != nil {
			t.Fatal(err)
		}
		want, err := transform2D(context.Background(), m, false, parallel.Workers(1))
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("%dx%d: FFT2D diverges from serial at %d", wh[0], wh[1], i)
			}
		}
		gotInv, err := IFFT2D(got)
		if err != nil {
			t.Fatal(err)
		}
		wantInvRaw, err := transform2D(context.Background(), got, true, parallel.Workers(1))
		if err != nil {
			t.Fatal(err)
		}
		n := complex(float64(m.W*m.H), 0)
		for i := range wantInvRaw.Data {
			if gotInv.Data[i] != wantInvRaw.Data[i]/n {
				t.Fatalf("%dx%d: IFFT2D diverges from serial at %d", wh[0], wh[1], i)
			}
		}
	}
}

// TestFFTMatchesNaiveDFTSizes1To64 cross-checks the FFT against the O(n²)
// reference at EVERY length from 1 to 64 — the dense sweep catches
// Bluestein regressions (padding, chirp phase, scaling) that round-trip
// tests structurally cannot, because a consistent forward/inverse bug
// cancels in a round trip.
func TestFFTMatchesNaiveDFTSizes1To64(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for n := 1; n <= 64; n++ {
		x := randomComplex(rng, n)
		got, err := FFT(x)
		if err != nil {
			t.Fatalf("FFT(n=%d): %v", n, err)
		}
		want := naiveDFT(x)
		tol := 1e-9 * float64(n) * float64(n)
		if tol < 1e-9 {
			tol = 1e-9
		}
		for k := range want {
			if !complexClose(got[k], want[k], tol) {
				t.Fatalf("n=%d bin %d: got %v, want %v (|Δ|=%v)",
					n, k, got[k], want[k], got[k]-want[k])
			}
		}
	}
}

func benchmarkFFT2D(b *testing.B, workers int) {
	rng := rand.New(rand.NewSource(3))
	m := randomMatrix(rng, 256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := transform2D(context.Background(), m, false, parallel.Workers(workers)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFFT2D256Serial is the single-worker baseline at the paper's
// working resolution.
func BenchmarkFFT2D256Serial(b *testing.B) { benchmarkFFT2D(b, 1) }

// BenchmarkFFT2D256Parallel uses the default worker count (GOMAXPROCS);
// compare against the serial baseline for the parallel speedup.
func BenchmarkFFT2D256Parallel(b *testing.B) { benchmarkFFT2D(b, parallel.DefaultWorkers()) }

// BenchmarkFFT2DBluestein257Parallel exercises the Bluestein branch under
// the parallel row/column sweeps (257 is prime).
func BenchmarkFFT2DBluestein257Parallel(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	m := randomMatrix(rng, 257, 257)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := transform2D(context.Background(), m, false); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleFFT2D() {
	m, _ := FromReal([]float64{1, 0, 0, 0}, 2, 2)
	spec, _ := FFT2D(m)
	fmt.Println(spec.At(0, 0))
	// Output: (1+0i)
}
