// Command declint enforces this repository's determinism, concurrency, and
// float-safety invariants with the pure-stdlib analyzers in
// internal/analysis. It exits 0 when the tree is clean, 1 when any finding
// survives suppression, and 2 on usage or load errors.
//
// Usage:
//
//	go run ./cmd/declint ./...            # analyze the whole module
//	go run ./cmd/declint -checks floateq ./...
//	go run ./cmd/declint -list            # list registered checks
//	go run ./cmd/declint internal/analysis cmd/declint
//	                                      # analyze subtrees of the enclosing
//	                                      # module (self-check mode)
//	go run ./cmd/declint path/to/testdata/fixture
//	                                      # analyze a fixture as its own
//	                                      # module root
//	go run ./cmd/declint -json ./...      # machine-readable findings,
//	                                      # suppressed ones included
//	go run ./cmd/declint -github ./...    # GitHub Actions ::error annotations
//	go run ./cmd/declint -cache DIR ./... # reuse function-summary cache
//	go run ./cmd/declint -waivers ./...   # markdown inventory of every
//	                                      # //declint:ignore currently in
//	                                      # effect (docs/declint_waivers.md)
//
// Findings are reported as file:line:col: check: message. Intentional
// violations are annotated in place with //declint:ignore <check> <reason>.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"decamouflage/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("declint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checksFlag := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	listFlag := fs.Bool("list", false, "list registered checks and exit")
	jsonFlag := fs.Bool("json", false, "emit findings as a JSON array (suppressed findings included, marked)")
	githubFlag := fs.Bool("github", false, "emit findings as GitHub Actions ::error annotations")
	cacheFlag := fs.String("cache", "", "directory for the function-summary cache (empty: no cache)")
	waiversFlag := fs.Bool("waivers", false, "emit a markdown inventory of suppressed findings (check, location, reason)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: declint [-checks c1,c2] [-list] [-json|-github|-waivers] [-cache dir] [./... | dir ...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listFlag {
		for _, c := range analysis.Checks() {
			fmt.Fprintf(stdout, "%-12s %s\n", c.Name, c.Doc)
		}
		return 0
	}
	exclusive := 0
	for _, on := range []bool{*jsonFlag, *githubFlag, *waiversFlag} {
		if on {
			exclusive++
		}
	}
	if exclusive > 1 {
		fmt.Fprintln(stderr, "declint: -json, -github, and -waivers are mutually exclusive")
		return 2
	}

	cfg := analysis.DefaultConfig()
	if *checksFlag != "" {
		cfg.Checks = strings.Split(*checksFlag, ",")
		// Validate names before the (expensive) module load so a typo fails
		// in milliseconds, with a suggestion when one is close.
		for _, name := range cfg.Checks {
			if analysis.KnownCheck(name) {
				continue
			}
			hint := ""
			if s := closestCheck(name); s != "" {
				hint = fmt.Sprintf(" (did you mean %q?)", s)
			}
			fmt.Fprintf(stderr, "declint: unknown check %q%s; run -list for the inventory\n", name, hint)
			return 2
		}
	}
	cfg.CacheDir = *cacheFlag
	// JSON consumers and the waiver inventory see what was waived and why
	// the tree still passes; suppressed findings never affect the exit code.
	cfg.IncludeSuppressed = *jsonFlag || *waiversFlag

	targets := fs.Args()
	if len(targets) == 0 {
		targets = []string{"./..."}
	}
	// Findings are computed once per module root and then filtered per
	// target, so `declint internal/analysis cmd/declint` loads the module a
	// single time.
	byRoot := map[string][]analysis.Finding{}
	var all []analysis.Finding
	active := 0
	for _, target := range targets {
		root, filter, err := resolveTarget(target)
		if err != nil {
			fmt.Fprintln(stderr, "declint:", err)
			return 2
		}
		findings, ok := byRoot[root]
		if !ok {
			pkgs, err := analysis.LoadModule(root)
			if err != nil {
				fmt.Fprintln(stderr, "declint:", err)
				return 2
			}
			findings, err = analysis.Run(pkgs, cfg)
			if err != nil {
				fmt.Fprintln(stderr, "declint:", err)
				return 2
			}
			byRoot[root] = findings
		}
		for _, f := range findings {
			if filter != "" && !underDir(f.Pos.Filename, filter) {
				continue
			}
			all = append(all, f)
			if !f.Suppressed {
				active++
			}
		}
	}

	switch {
	case *jsonFlag:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []analysis.Finding{}
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(stderr, "declint:", err)
			return 2
		}
	case *githubFlag:
		for _, f := range all {
			fmt.Fprintf(stdout, "::error file=%s,line=%d,col=%d::%s: %s\n",
				relToCwd(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Check, f.Msg)
		}
	case *waiversFlag:
		writeWaivers(stdout, all)
	default:
		for _, f := range all {
			fmt.Fprintln(stdout, f.String())
		}
	}
	if active > 0 {
		fmt.Fprintf(stderr, "declint: %d finding(s)\n", active)
		return 1
	}
	return 0
}

// writeWaivers renders the suppressed findings as the committed
// docs/declint_waivers.md: one row per //declint:ignore directive currently
// silencing a finding, so every standing exception to the invariants is
// inventoried with its documented reason.
func writeWaivers(w io.Writer, all []analysis.Finding) {
	fmt.Fprintln(w, "# Declint waiver inventory")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Generated by `go run ./cmd/declint -waivers ./... > docs/declint_waivers.md`.")
	fmt.Fprintln(w, "Each row is one `//declint:ignore` directive that currently suppresses a")
	fmt.Fprintln(w, "finding: the check it silences, where, and the reason the directive records.")
	fmt.Fprintln(w, "CI regenerates this file and fails on drift, so the inventory cannot rot.")
	fmt.Fprintln(w)
	n := 0
	for _, f := range all {
		if f.Suppressed {
			n++
		}
	}
	if n == 0 {
		fmt.Fprintln(w, "No waivers are in effect.")
		return
	}
	fmt.Fprintln(w, "| Check | Location | Reason |")
	fmt.Fprintln(w, "|-------|----------|--------|")
	for _, f := range all {
		if !f.Suppressed {
			continue
		}
		fmt.Fprintf(w, "| %s | %s:%d | %s |\n",
			f.Check, relToCwd(f.Pos.Filename), f.Pos.Line, f.Reason)
	}
}

// closestCheck returns the registered check name nearest to name by edit
// distance, or "" when nothing is close enough to be a plausible typo.
func closestCheck(name string) string {
	best, bestDist := "", len(name)/2+1
	for _, c := range analysis.Checks() {
		if d := editDistance(name, c.Name); d < bestDist {
			best, bestDist = c.Name, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between a and b.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// resolveTarget maps one CLI target to (module root, subtree filter).
// "./..." means the enclosing module, whole. A path with a testdata
// component is a self-contained fixture module analyzed as its own root.
// Any other directory is a subtree of its enclosing go.mod module: the
// module is loaded whole (so cross-package dataflow still sees everything)
// and findings are filtered to the subtree.
func resolveTarget(target string) (root, filter string, err error) {
	if target == "./..." || target == "..." {
		root, err = moduleRoot(".")
		return root, "", err
	}
	abs, err := filepath.Abs(target)
	if err != nil {
		return "", "", err
	}
	info, err := os.Stat(abs)
	if err != nil {
		return "", "", err
	}
	if !info.IsDir() {
		return "", "", fmt.Errorf("target %s is not a directory", target)
	}
	for _, part := range strings.Split(filepath.ToSlash(abs), "/") {
		if part == "testdata" {
			return abs, "", nil
		}
	}
	root, err = moduleRoot(abs)
	if err != nil {
		return "", "", err
	}
	if root == abs {
		return root, "", nil
	}
	return root, abs, nil
}

// underDir reports whether path lies inside dir.
func underDir(path, dir string) bool {
	rel, err := filepath.Rel(dir, path)
	return err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator))
}

// relToCwd renders path relative to the working directory when possible —
// the form GitHub annotations need to attach to checkout files.
func relToCwd(path string) string {
	cwd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(cwd, path)
	if err != nil {
		return path
	}
	return filepath.ToSlash(rel)
}

// moduleRoot walks up from dir to the nearest directory containing go.mod.
func moduleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}
