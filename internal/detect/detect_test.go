package detect

import (
	"math"
	"testing"

	"decamouflage/internal/dataset"
	"decamouflage/internal/imgcore"
	"decamouflage/internal/steg"
	"decamouflage/internal/testutil"
)

func corpusImage(t testing.TB, seed int64, i, w, h int) *imgcore.Image {
	t.Helper()
	g, err := dataset.NewGenerator(dataset.Config{Corpus: dataset.CaltechLike, W: w, H: h, C: 3, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g.Image(i)
}

func TestMetricStrings(t *testing.T) {
	tests := []struct {
		m    Metric
		want string
	}{
		{MSE, "MSE"}, {SSIM, "SSIM"}, {PSNR, "PSNR"}, {CSP, "CSP"}, {Metric(9), "Metric(9)"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.m), got, tt.want)
		}
	}
	if MSE.AttackDirection() != Above || CSP.AttackDirection() != Above {
		t.Error("MSE/CSP attack direction should be Above")
	}
	if SSIM.AttackDirection() != Below || PSNR.AttackDirection() != Below {
		t.Error("SSIM/PSNR attack direction should be Below")
	}
	if Above.String() != "above" || Below.String() != "below" {
		t.Error("direction strings wrong")
	}
	if Direction(7).String() == "" {
		t.Error("unknown direction String empty")
	}
}

func TestThresholdClassify(t *testing.T) {
	tests := []struct {
		name  string
		th    Threshold
		score float64
		want  bool
	}{
		{"above hit", Threshold{10, Above}, 11, true},
		{"above equal", Threshold{10, Above}, 10, true},
		{"above miss", Threshold{10, Above}, 9, false},
		{"below hit", Threshold{0.5, Below}, 0.4, true},
		{"below equal", Threshold{0.5, Below}, 0.5, true},
		{"below miss", Threshold{0.5, Below}, 0.6, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.th.Classify(tt.score); got != tt.want {
				t.Errorf("Classify(%v) = %v, want %v", tt.score, got, tt.want)
			}
		})
	}
	if err := (Threshold{1, Above}).Validate(); err != nil {
		t.Errorf("valid threshold rejected: %v", err)
	}
	if err := (Threshold{}).Validate(); err == nil {
		t.Error("zero threshold accepted")
	}
}

func TestNewScorerValidation(t *testing.T) {
	s := mustScaler(t, 64, 64, 16, 16)
	if _, err := NewScalingScorer(nil, MSE); err == nil {
		t.Error("nil scaler accepted")
	}
	if _, err := NewScalingScorer(s, CSP); err == nil {
		t.Error("CSP metric accepted by scaling scorer")
	}
	if _, err := NewScalingScorer(s, Metric(0)); err == nil {
		t.Error("zero metric accepted")
	}
	if _, err := NewFilteringScorer(1, MSE); err == nil {
		t.Error("window 1 accepted")
	}
	if _, err := NewFilteringScorer(2, CSP); err == nil {
		t.Error("CSP metric accepted by filtering scorer")
	}
}

func TestScorerNames(t *testing.T) {
	s := mustScaler(t, 64, 64, 16, 16)
	ss, err := NewScalingScorer(s, MSE)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Name() != "scaling/MSE" {
		t.Errorf("scaling name = %q", ss.Name())
	}
	fs, err := NewFilteringScorer(2, SSIM)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Name() != "filtering/SSIM" {
		t.Errorf("filtering name = %q", fs.Name())
	}
	if NewStegScorer(steg.Options{}).Name() != "steganalysis/CSP" {
		t.Errorf("steg name = %q", NewStegScorer(steg.Options{}).Name())
	}
}

func TestScalingScorerBenignVsSelf(t *testing.T) {
	s := mustScaler(t, 64, 64, 16, 16)
	img := corpusImage(t, 1, 0, 64, 64)
	ss, err := NewScalingScorer(s, MSE)
	if err != nil {
		t.Fatal(err)
	}
	score, err := ss.Score(img)
	if err != nil {
		t.Fatal(err)
	}
	if score < 0 {
		t.Errorf("MSE score negative: %v", score)
	}
	ssim, err := NewScalingScorer(s, SSIM)
	if err != nil {
		t.Fatal(err)
	}
	sscore, err := ssim.Score(img)
	if err != nil {
		t.Fatal(err)
	}
	if sscore < 0.3 || sscore > 1 {
		t.Errorf("benign scaling SSIM = %v, want high", sscore)
	}
	if _, err := ss.Score(&imgcore.Image{}); err == nil {
		t.Error("empty image accepted by scaling scorer")
	}
}

func TestFilteringScorerErrors(t *testing.T) {
	fs, err := NewFilteringScorer(2, MSE)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Score(&imgcore.Image{}); err == nil {
		t.Error("empty image accepted by filtering scorer")
	}
	img := corpusImage(t, 2, 0, 32, 32)
	score, err := fs.Score(img)
	if err != nil {
		t.Fatal(err)
	}
	if score < 0 {
		t.Errorf("negative MSE %v", score)
	}
}

func TestStegScorerErrors(t *testing.T) {
	gs := NewStegScorer(steg.Options{BinarizeThreshold: 2})
	img := corpusImage(t, 3, 0, 32, 32)
	if _, err := gs.Score(img); err == nil {
		t.Error("invalid steg options accepted")
	}
	gs = NewStegScorer(steg.Options{})
	score, err := gs.Score(img)
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.BitEqual(score, math.Trunc(score)) || score < 0 {
		t.Errorf("CSP score %v not a count", score)
	}
}

func TestNewDetectorValidation(t *testing.T) {
	if _, err := NewDetector(nil, Threshold{1, Above}); err == nil {
		t.Error("nil scorer accepted")
	}
	gs := NewStegScorer(steg.Options{})
	if _, err := NewDetector(gs, Threshold{}); err == nil {
		t.Error("invalid threshold accepted")
	}
	d, err := NewDetector(gs, DefaultCSPThreshold())
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "steganalysis/CSP" {
		t.Errorf("detector name %q", d.Name())
	}
	if d.Threshold() != DefaultCSPThreshold() {
		t.Errorf("threshold accessor = %+v", d.Threshold())
	}
}

func TestDetectorDetect(t *testing.T) {
	gs := NewStegScorer(steg.Options{})
	d, err := NewDetector(gs, DefaultCSPThreshold())
	if err != nil {
		t.Fatal(err)
	}
	img := corpusImage(t, 4, 0, 128, 128)
	v, err := d.Detect(img)
	if err != nil {
		t.Fatal(err)
	}
	if v.Method != "steganalysis/CSP" {
		t.Errorf("verdict method %q", v.Method)
	}
	if v.Attack {
		t.Errorf("benign image flagged: %+v", v)
	}
	if _, err := d.Detect(&imgcore.Image{}); err == nil {
		t.Error("empty image accepted")
	}
}

func TestModelInputSizes(t *testing.T) {
	sizes := ModelInputSizes()
	if len(sizes) < 8 {
		t.Fatalf("Table 1 has %d rows", len(sizes))
	}
	for _, s := range sizes {
		if s.Model == "" || s.W <= 0 || s.H <= 0 {
			t.Errorf("malformed row %+v", s)
		}
	}
	if sizes[0].Model != "LeNet-5" || sizes[0].W != 32 {
		t.Errorf("first row = %+v", sizes[0])
	}
}

func TestScalingScorerOffGeometryInput(t *testing.T) {
	// Inputs that do not match the prepared source geometry still score
	// via the fallback rebuild path.
	s := mustScaler(t, 64, 64, 16, 16)
	ss, err := NewScalingScorer(s, MSE)
	if err != nil {
		t.Fatal(err)
	}
	other := corpusImage(t, 12, 0, 48, 40)
	score, err := ss.Score(other)
	if err != nil {
		t.Fatal(err)
	}
	if score < 0 {
		t.Errorf("fallback score %v", score)
	}
}
