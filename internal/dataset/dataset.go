// Package dataset synthesizes deterministic natural-image corpora that
// stand in for the paper's NeurIPS-2017 (threshold calibration) and
// Caltech-256 (evaluation) datasets.
//
// Images are produced by spectral synthesis: a random-phase spectrum with a
// power-law (1/f^α) amplitude envelope — the canonical statistical model of
// natural-image spectra — inverted with the package's own FFT, then layered
// with smooth gradients and soft-edged shapes. The two corpus
// configurations draw their parameters (spectral slope, shape count,
// contrast) from deliberately different distributions so that thresholds
// calibrated on one corpus are genuinely tested out-of-distribution on the
// other, preserving the paper's cross-dataset protocol.
//
// All three Decamouflage detectors key on low-level pixel statistics, not
// semantics, so this substitution exercises the same code paths as the real
// photo datasets (see DESIGN.md §2).
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"decamouflage/internal/fourier"
	"decamouflage/internal/imgcore"
)

// Corpus selects a generator configuration emulating a dataset family.
type Corpus int

// Supported corpora.
const (
	// NeurIPSLike emulates the NeurIPS-2017 adversarial-competition photos
	// used by the paper to pick thresholds: high-resolution, texture-rich.
	NeurIPSLike Corpus = iota + 1
	// CaltechLike emulates Caltech-256 evaluation photos: object-centric,
	// higher contrast, more distinct shapes.
	CaltechLike
)

// String implements fmt.Stringer.
func (c Corpus) String() string {
	switch c {
	case NeurIPSLike:
		return "neurips-like"
	case CaltechLike:
		return "caltech-like"
	default:
		return fmt.Sprintf("Corpus(%d)", int(c))
	}
}

// Config parameterizes a Generator.
type Config struct {
	// Corpus selects the parameter distribution. Required.
	Corpus Corpus
	// W, H, C are the generated image geometry. Required.
	W, H, C int
	// Seed makes the whole corpus deterministic. Image i depends only on
	// (Corpus, Seed, i).
	Seed int64
}

func (c Config) validate() error {
	if c.Corpus != NeurIPSLike && c.Corpus != CaltechLike {
		return fmt.Errorf("dataset: unknown corpus %d", int(c.Corpus))
	}
	if c.W <= 0 || c.H <= 0 {
		return fmt.Errorf("dataset: invalid geometry %dx%d", c.W, c.H)
	}
	if c.C != 1 && c.C != 3 {
		return fmt.Errorf("dataset: channels must be 1 or 3, got %d", c.C)
	}
	return nil
}

// Generator deterministically produces corpus images by index.
// It is safe for concurrent use: Image derives all state from its argument.
type Generator struct {
	cfg Config
}

// NewGenerator validates cfg and returns a generator.
func NewGenerator(cfg Config) (*Generator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Generator{cfg: cfg}, nil
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// Image produces the i-th image of the corpus.
func (g *Generator) Image(i int) *imgcore.Image {
	rng := rand.New(rand.NewSource(mix(g.cfg.Seed, int64(g.cfg.Corpus), int64(i))))
	return g.render(rng)
}

// Batch produces images [0, n).
func (g *Generator) Batch(n int) []*imgcore.Image {
	out := make([]*imgcore.Image, n)
	for i := range out {
		out[i] = g.Image(i)
	}
	return out
}

// mix combines seed material with splitmix64 so nearby indices decorrelate.
func mix(vals ...int64) int64 {
	var z uint64 = 0x9E3779B97F4A7C15
	for _, v := range vals {
		z ^= uint64(v) + 0x9E3779B97F4A7C15 + (z << 6) + (z >> 2)
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 27
	}
	return int64(z & 0x7FFFFFFFFFFFFFFF)
}

// params holds the per-image randomized rendering parameters, drawn from
// corpus-dependent distributions.
type params struct {
	alpha        float64 // spectral slope 1/f^alpha
	textureScale float64 // texture contrast
	shapes       int     // number of soft shapes
	shapeAmp     float64 // shape contrast
	gradAmp      float64 // global gradient amplitude
	chroma       float64 // channel decorrelation
}

func (g *Generator) draw(rng *rand.Rand) params {
	switch g.cfg.Corpus {
	case CaltechLike:
		return params{
			alpha:        1.6 + rng.Float64()*0.6,
			textureScale: 18 + rng.Float64()*22,
			shapes:       2 + rng.Intn(5),
			shapeAmp:     40 + rng.Float64()*60,
			gradAmp:      10 + rng.Float64()*35,
			chroma:       0.35 + rng.Float64()*0.4,
		}
	default: // NeurIPSLike
		return params{
			alpha:        1.9 + rng.Float64()*0.7,
			textureScale: 25 + rng.Float64()*30,
			shapes:       rng.Intn(3),
			shapeAmp:     25 + rng.Float64()*40,
			gradAmp:      15 + rng.Float64()*45,
			chroma:       0.2 + rng.Float64()*0.35,
		}
	}
}

func (g *Generator) render(rng *rand.Rand) *imgcore.Image {
	p := g.draw(rng)
	w, h, c := g.cfg.W, g.cfg.H, g.cfg.C

	tex := spectralField(rng, w, h, p.alpha)
	normalizeField(tex, p.textureScale)

	base := imgcore.MustNew(w, h, 1)
	mean := 90 + rng.Float64()*80
	gx := (rng.Float64()*2 - 1) * p.gradAmp
	gy := (rng.Float64()*2 - 1) * p.gradAmp
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := mean + tex[y*w+x] +
				gx*(float64(x)/float64(w)-0.5)*2 +
				gy*(float64(y)/float64(h)-0.5)*2
			base.Pix[y*w+x] = v
		}
	}
	for s := 0; s < p.shapes; s++ {
		addShape(base, rng, p.shapeAmp)
	}

	img := imgcore.MustNew(w, h, c)
	if c == 1 {
		copy(img.Pix, base.Pix)
	} else {
		// Channel offsets: shared luminance plus smooth per-channel tint.
		for ch := 0; ch < 3; ch++ {
			off := (rng.Float64()*2 - 1) * 40 * p.chroma
			tilt := (rng.Float64()*2 - 1) * 25 * p.chroma
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					v := base.Pix[y*w+x] + off + tilt*(float64(x+y)/float64(w+h)-0.5)*2
					img.Pix[(y*w+x)*3+ch] = v
				}
			}
		}
	}
	return img.Quantize8()
}

// spectralField synthesizes a real 1/f^alpha random field of size w×h.
func spectralField(rng *rand.Rand, w, h int, alpha float64) []float64 {
	m, err := fourier.NewMatrix(w, h)
	if err != nil {
		// Geometry is pre-validated by Config.validate; this is unreachable
		// in practice but kept defensive for direct callers.
		return make([]float64, w*h)
	}
	for y := 0; y < h; y++ {
		fy := float64(y)
		if y > h/2 {
			fy = float64(y - h)
		}
		for x := 0; x < w; x++ {
			fx := float64(x)
			if x > w/2 {
				fx = float64(x - w)
			}
			f := math.Hypot(fx/float64(w), fy/float64(h))
			//declint:ignore floateq radial frequency is exactly zero only at the DC bin
			if f == 0 {
				continue // no DC: mean added separately
			}
			amp := math.Pow(f, -alpha/2)
			phase := rng.Float64() * 2 * math.Pi
			m.Set(x, y, complexFromPolar(amp, phase))
		}
	}
	inv, err := fourier.IFFT2D(m)
	if err != nil {
		return make([]float64, w*h)
	}
	out := make([]float64, w*h)
	for i, v := range inv.Data {
		out[i] = real(v)
	}
	return out
}

func complexFromPolar(r, theta float64) complex128 {
	return complex(r*math.Cos(theta), r*math.Sin(theta))
}

// normalizeField rescales a zero-ish-mean field to the given standard
// deviation.
func normalizeField(f []float64, std float64) {
	var mean float64
	for _, v := range f {
		mean += v
	}
	mean /= float64(len(f))
	var variance float64
	for i := range f {
		f[i] -= mean
		variance += f[i] * f[i]
	}
	variance /= float64(len(f))
	//declint:ignore floateq exact-zero variance (constant signal) is the only degenerate case
	if variance == 0 {
		return
	}
	k := std / math.Sqrt(variance)
	for i := range f {
		f[i] *= k
	}
}

// addShape composites one soft-edged ellipse or rounded rectangle.
func addShape(img *imgcore.Image, rng *rand.Rand, amp float64) {
	w, h := img.W, img.H
	cx := rng.Float64() * float64(w)
	cy := rng.Float64() * float64(h)
	rx := (0.08 + rng.Float64()*0.3) * float64(w)
	ry := (0.08 + rng.Float64()*0.3) * float64(h)
	val := (rng.Float64()*2 - 1) * amp
	soft := 0.15 + rng.Float64()*0.3 // edge softness fraction
	rect := rng.Intn(2) == 0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var d float64
			if rect {
				dx := math.Abs(float64(x)-cx) / rx
				dy := math.Abs(float64(y)-cy) / ry
				d = math.Max(dx, dy)
			} else {
				dx := (float64(x) - cx) / rx
				dy := (float64(y) - cy) / ry
				d = math.Sqrt(dx*dx + dy*dy)
			}
			// Smoothstep falloff from 1 (inside) to 0 past the soft edge.
			t := (1 + soft - d) / soft
			if t <= 0 {
				continue
			}
			if t > 1 {
				t = 1
			}
			t = t * t * (3 - 2*t)
			img.Pix[y*w+x] += val * t
		}
	}
}
