// Fixture: pooled-buffer ownership. The helpers mirror the real module's
// scratch-pool idiom (an owns getter, a transfers putter); the exported
// functions walk poollife's transition table one hazard at a time.
package bufpool

import (
	"errors"
	"sync"
)

var pool = sync.Pool{New: func() any { return new([]byte) }}

var errFixture = errors.New("fixture")

// get borrows a buffer from the pool.
//
//declint:owns
func get() *[]byte { return pool.Get().(*[]byte) }

// put returns a borrowed buffer.
//
//declint:transfers
func put(bp *[]byte) { pool.Put(bp) }

// Clean borrows and releases on every path: silent.
func Clean(n int) int {
	bp := get()
	defer put(bp)
	return n + len(*bp)
}

// Leak never releases its borrow.
func Leak() int {
	bp := get()
	return len(*bp)
}

// EarlyLeak releases on the happy path but not on the error path.
func EarlyLeak(fail bool) error {
	bp := get()
	if fail {
		return errFixture
	}
	put(bp)
	return nil
}

// Double releases the same borrow twice through the transfers helper.
func Double() {
	bp := get()
	put(bp)
	put(bp)
}

// DoubleDirect double-frees via direct Puts.
func DoubleDirect() {
	bp := get()
	pool.Put(bp)
	pool.Put(bp)
}

// DeferredDouble releases a buffer whose deferred release is already
// pending.
func DeferredDouble() {
	bp := get()
	defer pool.Put(bp)
	pool.Put(bp)
}

// UseAfter touches the buffer after returning it to the pool.
func UseAfter() int {
	bp := get()
	pool.Put(bp)
	return len(*bp)
}

var stash []*[]byte

// Stash smuggles a borrow into package state without an owns annotation.
func Stash() {
	bp := get()
	stash = append(stash, bp)
}

// Overwrite drops a live borrow by rebinding its variable.
func Overwrite() {
	bp := get()
	bp = get()
	put(bp)
}

// LoopFree releases a pre-loop borrow inside the loop body: a second
// iteration would double-free it.
func LoopFree(n int) {
	bp := get()
	for i := 0; i < n; i++ {
		put(bp)
	}
	put(bp)
}

// Discard drops an owned result on the floor.
func Discard() {
	get()
}

// fabricate claims custody but never touches a pool: the owns claim is
// itself a finding.
//
//declint:owns
func fabricate() *[]byte { return new([]byte) }

// vanish claims to take custody but neither releases nor stores the value.
//
//declint:transfers
func vanish(bp *[]byte) { _ = bp }

// overclaim names a result the signature does not have.
//
//declint:owns result 3
func overclaim() *[]byte { return get() }

// NilGuarded joins a maybe-live borrow through a nil check: silent.
func NilGuarded(ok bool) {
	var bp *[]byte
	if ok {
		bp = get()
	}
	if bp != nil {
		put(bp)
	}
}

// borrow models a fallible acquire: custody only moves when err is nil.
//
//declint:owns
func borrow(fail bool) (*[]byte, error) {
	if fail {
		return nil, errFixture
	}
	return get(), nil
}

// ErrPath leans on the err association: the early return carries no live
// token, the happy path defers its release. Silent.
func ErrPath(fail bool) error {
	bp, err := borrow(fail)
	if err != nil {
		return err
	}
	defer put(bp)
	return nil
}
