package metrics

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/testutil"
)

func randImage(seed int64, w, h, c int) *imgcore.Image {
	img := imgcore.MustNew(w, h, c)
	rng := rand.New(rand.NewSource(seed))
	for i := range img.Pix {
		img.Pix[i] = rng.Float64() * 255
	}
	return img
}

func TestMSEBasics(t *testing.T) {
	a := imgcore.MustNew(2, 2, 1)
	b := imgcore.MustNew(2, 2, 1)
	copy(a.Pix, []float64{0, 0, 0, 0})
	copy(b.Pix, []float64{2, 2, 2, 2})
	got, err := MSE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.BitEqual(got, 4) {
		t.Errorf("MSE = %v, want 4", got)
	}
	if got, _ := MSE(a, a); !testutil.BitEqual(got, 0) {
		t.Errorf("MSE(a,a) = %v, want 0", got)
	}
}

func TestMSEErrors(t *testing.T) {
	a := randImage(1, 4, 4, 1)
	b := randImage(2, 5, 4, 1)
	if _, err := MSE(a, b); err == nil {
		t.Error("MSE shape mismatch = nil error")
	}
	if _, err := MSE(a, &imgcore.Image{}); err == nil {
		t.Error("MSE with empty image = nil error")
	}
	if _, err := MSE(&imgcore.Image{}, a); err == nil {
		t.Error("MSE with empty first image = nil error")
	}
}

// Property: MSE is symmetric, non-negative, zero iff identical, and scales
// quadratically with the perturbation.
func TestMSEProperties(t *testing.T) {
	f := func(seed int64) bool {
		a := randImage(seed, 6, 5, 3)
		b := randImage(seed+1000, 6, 5, 3)
		m1, err1 := MSE(a, b)
		m2, err2 := MSE(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		if m1 < 0 || math.Abs(m1-m2) > 1e-9 {
			return false
		}
		// Quadratic scaling: doubling the difference quadruples MSE.
		d, err := b.Sub(a)
		if err != nil {
			return false
		}
		big, err := a.Add(d.Scale(2))
		if err != nil {
			return false
		}
		m4, err := MSE(a, big)
		if err != nil {
			return false
		}
		return math.Abs(m4-4*m1) <= 1e-6*(1+m4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPSNR(t *testing.T) {
	a := imgcore.MustNew(2, 2, 1)
	b := imgcore.MustNew(2, 2, 1)
	b.Fill(255)
	got, err := PSNR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.BitEqual(got, 0) { // MSE = 255^2 -> PSNR = 0 dB
		t.Errorf("PSNR = %v, want 0", got)
	}
	same, err := PSNR(a, a)
	if err != nil || !math.IsInf(same, 1) {
		t.Errorf("PSNR identical = %v,%v, want +Inf", same, err)
	}
	if _, err := PSNR(a, randImage(1, 3, 3, 1)); err == nil {
		t.Error("PSNR shape mismatch = nil error")
	}
}

func TestSSIMIdentity(t *testing.T) {
	a := randImage(7, 32, 32, 3)
	got, err := SSIM(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("SSIM(a,a) = %v, want 1", got)
	}
}

func TestSSIMSymmetryAndRange(t *testing.T) {
	f := func(seed int64) bool {
		a := randImage(seed, 24, 24, 1)
		b := randImage(seed+99, 24, 24, 1)
		s1, err1 := SSIM(a, b)
		s2, err2 := SSIM(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(s1-s2) <= 1e-9 && s1 >= -1.001 && s1 <= 1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSSIMOrdersDegradation(t *testing.T) {
	// A lightly-perturbed copy must score higher SSIM than a heavily
	// perturbed one.
	a := randImage(11, 48, 48, 1)
	rng := rand.New(rand.NewSource(12))
	light := a.Clone()
	heavy := a.Clone()
	for i := range light.Pix {
		light.Pix[i] += rng.NormFloat64() * 3
		heavy.Pix[i] += rng.NormFloat64() * 60
	}
	sLight, err := SSIM(a, light)
	if err != nil {
		t.Fatal(err)
	}
	sHeavy, err := SSIM(a, heavy)
	if err != nil {
		t.Fatal(err)
	}
	if sLight <= sHeavy {
		t.Errorf("SSIM ordering violated: light %v <= heavy %v", sLight, sHeavy)
	}
	if sLight < 0.8 {
		t.Errorf("light perturbation SSIM = %v, want > 0.8", sLight)
	}
}

func TestSSIMConstantImages(t *testing.T) {
	a := imgcore.MustNew(16, 16, 1)
	a.Fill(100)
	b := a.Clone()
	got, err := SSIM(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("SSIM of identical constants = %v", got)
	}
	// Different constants: luminance term only.
	c := imgcore.MustNew(16, 16, 1)
	c.Fill(200)
	got, err = SSIM(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if got >= 1 || got <= 0 {
		t.Errorf("SSIM(100,200) = %v, want in (0,1)", got)
	}
}

func TestSSIMWithBadOptions(t *testing.T) {
	a := randImage(1, 16, 16, 1)
	cases := []SSIMOptions{
		{WindowRadius: 0, Sigma: 1.5, L: 255},
		{WindowRadius: 3, Sigma: 0, L: 255},
		{WindowRadius: 3, Sigma: 1.5, L: 0},
	}
	for i, o := range cases {
		if _, err := SSIMWith(a, a, o); err == nil {
			t.Errorf("case %d: SSIMWith bad options = nil error", i)
		}
	}
	if _, err := SSIMWith(a, randImage(2, 8, 8, 1), DefaultSSIM()); err == nil {
		t.Error("SSIMWith shape mismatch = nil error")
	}
}

func TestSSIMColorUsesLuminance(t *testing.T) {
	// Two color images with identical luminance should be near-identical
	// under SSIM even if chroma differs.
	a := imgcore.MustNew(16, 16, 3)
	b := imgcore.MustNew(16, 16, 3)
	for i := 0; i < 16*16; i++ {
		// a: pure gray 100. b: r/g/b chosen to keep BT.601 luma = 100.
		for c := 0; c < 3; c++ {
			a.Pix[i*3+c] = 100
		}
		b.Pix[i*3] = 120
		b.Pix[i*3+2] = 120
		b.Pix[i*3+1] = (100 - 0.299*120 - 0.114*120) / 0.587
	}
	got, err := SSIM(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-6 {
		t.Errorf("SSIM with equal luminance = %v, want ~1", got)
	}
}

func TestGaussianKernelNormalized(t *testing.T) {
	k := gaussianKernel(5, 1.5)
	if len(k) != 11 {
		t.Fatalf("kernel length = %d", len(k))
	}
	var sum float64
	for _, v := range k {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("kernel sum = %v", sum)
	}
	// Symmetric, peaked at center.
	for i := 0; i < 5; i++ {
		if !testutil.BitEqual(k[i], k[10-i]) {
			t.Errorf("kernel asymmetric at %d", i)
		}
	}
	if k[5] <= k[4] {
		t.Error("kernel not peaked at center")
	}
}

func TestBlurPreservesConstant(t *testing.T) {
	src := make([]float64, 12*9)
	for i := range src {
		src[i] = 42
	}
	out, err := blurSeparable(context.Background(), src, 12, 9, gaussianKernel(3, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if math.Abs(v-42) > 1e-9 {
			t.Fatalf("blur sample %d = %v", i, v)
		}
	}
}

func BenchmarkMSE256(b *testing.B) {
	x := randImage(1, 256, 256, 3)
	y := randImage(2, 256, 256, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MSE(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSSIM256(b *testing.B) {
	x := randImage(1, 256, 256, 3)
	y := randImage(2, 256, 256, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SSIM(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
