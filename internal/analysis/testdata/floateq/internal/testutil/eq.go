// Package testutil is a fixture: the allowlisted home of intentional exact
// equality. Nothing here is flagged.
package testutil

// BitEqual is the canonical intentional exact comparison.
func BitEqual(a, b float64) bool { return a == b }
