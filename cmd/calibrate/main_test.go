package main

import (
	"os"
	"path/filepath"
	"testing"

	"decamouflage/internal/cliutil"
	"decamouflage/internal/dataset"
	"decamouflage/internal/detect"
)

func TestRunWhiteBox(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "cal.json")
	err := run([]string{"-mode", "whitebox", "-n", "6", "-src", "64x64", "-dst", "16x16", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	cal, err := cliutil.LoadCalibration(out)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Setting != "whitebox" {
		t.Errorf("setting = %q", cal.Setting)
	}
	for _, key := range []string{"scaling/MSE", "filtering/SSIM", "steganalysis/CSP"} {
		if _, ok := cal.Get(key); !ok {
			t.Errorf("missing threshold %q", key)
		}
	}
}

func TestRunBlackBox(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "cal.json")
	sysOut := filepath.Join(dir, "sys.json")
	err := run([]string{"-mode", "blackbox", "-n", "8", "-src", "64x64", "-dst", "16x16", "-percentile", "2", "-out", out, "-system-out", sysOut})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cliutil.LoadCalibration(out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(sysOut)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := detect.UnmarshalSystemConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	if sys.DstW != 16 || sys.Algorithm != "bilinear" {
		t.Errorf("system config = %+v", sys)
	}
	if _, err := detect.BuildSystem(sys); err != nil {
		t.Fatalf("BuildSystem from CLI output: %v", err)
	}
}

func TestRunBlackBoxFromDir(t *testing.T) {
	dir := t.TempDir()
	g, err := dataset.NewGenerator(dataset.Config{Corpus: dataset.CaltechLike, W: 48, H: 48, C: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := g.Image(i).SavePNG(filepath.Join(dir, "img"+string(rune('a'+i))+".png")); err != nil {
			t.Fatal(err)
		}
	}
	out := filepath.Join(dir, "cal.json")
	err = run([]string{"-mode", "blackbox", "-benign-dir", dir, "-dst", "12x12", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cliutil.LoadCalibration(out); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-mode", "bogus"}); err == nil {
		t.Error("bad mode accepted")
	}
	if err := run([]string{"-dst", "junk"}); err == nil {
		t.Error("bad size accepted")
	}
	if err := run([]string{"-alg", "junk"}); err == nil {
		t.Error("bad algorithm accepted")
	}
	if err := run([]string{"-mode", "blackbox", "-benign-dir", "/nonexistent-xyz"}); err == nil {
		t.Error("missing benign dir accepted")
	}
	if err := run([]string{"-mode", "blackbox", "-benign-dir", t.TempDir()}); err == nil {
		t.Error("empty benign dir accepted")
	}
}
