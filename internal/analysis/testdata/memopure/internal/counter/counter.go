// Fixture helper whose package-level write the stage closures reach
// transitively.
package counter

var n int

// Bump increments the package counter.
func Bump() {
	n++
}
