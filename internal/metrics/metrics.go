// Package metrics implements the image-similarity measures Decamouflage's
// detectors score with: mean squared error (MSE), the structural similarity
// index (SSIM, Wang et al. 2004, Gaussian-window form), and peak
// signal-to-noise ratio (PSNR, kept for the paper's Appendix-A negative
// result).
package metrics

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"decamouflage/internal/cache"
	"decamouflage/internal/imgcore"
	"decamouflage/internal/obs"
	"decamouflage/internal/parallel"
)

// ErrShapeMismatch indicates two images of different geometry.
var ErrShapeMismatch = errors.New("metrics: images must have identical shape")

func checkPair(a, b *imgcore.Image) error {
	if err := a.Validate(); err != nil {
		return err
	}
	if err := b.Validate(); err != nil {
		return err
	}
	if !a.SameShape(b) {
		return fmt.Errorf("%w: %v vs %v", ErrShapeMismatch, a, b)
	}
	return nil
}

// MSE returns the mean squared error between a and b over all samples
// (Eq. 5 in the paper).
func MSE(a, b *imgcore.Image) (float64, error) {
	if err := checkPair(a, b); err != nil {
		return 0, err
	}
	var s float64
	for i := range a.Pix {
		d := a.Pix[i] - b.Pix[i]
		s += d * d
	}
	return s / float64(len(a.Pix)), nil
}

// PSNR returns the peak signal-to-noise ratio in decibels with L = 256
// intensity levels (Eq. 9 in the paper). Identical images yield +Inf.
//
//declint:nan-ok shape validation runs in MSE; NaN samples propagate to the score
func PSNR(a, b *imgcore.Image) (float64, error) {
	mse, err := MSE(a, b)
	if err != nil {
		return 0, err
	}
	return PSNRFromMSE(mse), nil
}

// PSNRFromMSE converts an already-computed mean squared error into the PSNR
// score, bit-identical to PSNR's own conversion. The detection pipeline
// uses it to derive the PSNR score from a memoized MSE without touching the
// pixels again.
func PSNRFromMSE(mse float64) float64 {
	//declint:ignore floateq exact-zero MSE is the documented identical-images +Inf case
	if mse == 0 {
		return math.Inf(1)
	}
	const peak = 255.0
	return 10 * math.Log10(peak*peak/mse)
}

// SSIMOptions configures the structural similarity computation.
type SSIMOptions struct {
	// WindowRadius is the Gaussian window radius; the window is
	// (2r+1)x(2r+1). The standard configuration is r=5 (11x11).
	WindowRadius int
	// Sigma is the Gaussian window standard deviation (standard: 1.5).
	Sigma float64
	// K1, K2 are the stabilization constants (standard: 0.01, 0.03).
	K1, K2 float64
	// L is the dynamic range of pixel values (255 for 8-bit).
	L float64
}

// DefaultSSIM returns the canonical SSIM parameters from Wang et al.
func DefaultSSIM() SSIMOptions {
	return SSIMOptions{WindowRadius: 5, Sigma: 1.5, K1: 0.01, K2: 0.03, L: 255}
}

func (o SSIMOptions) validate() error {
	if o.WindowRadius < 1 {
		return fmt.Errorf("metrics: window radius %d < 1", o.WindowRadius)
	}
	if o.Sigma <= 0 {
		return fmt.Errorf("metrics: sigma %v <= 0", o.Sigma)
	}
	if o.L <= 0 {
		return fmt.Errorf("metrics: dynamic range %v <= 0", o.L)
	}
	return nil
}

// SSIM returns the mean structural similarity index between a and b using
// the default parameters. Color images are scored on their luminance, the
// standard convention.
//
//declint:nan-ok delegates to SSIMWith, whose checkPair validation runs first
func SSIM(a, b *imgcore.Image) (float64, error) {
	return SSIMWith(a, b, DefaultSSIM())
}

// SSIMWith returns the mean SSIM index with explicit parameters.
//
// The implementation follows the reference algorithm: per-pixel local
// means, variances and covariance computed with a separable Gaussian
// window, combined via
//
//	SSIM = ((2·μaμb + c1)(2·σab + c2)) / ((μa² + μb² + c1)(σa² + σb² + c2))
//
// and averaged over all pixel positions.
//
//declint:nan-ok shape validation runs in ssimWith; NaN samples propagate to the score
func SSIMWith(a, b *imgcore.Image, opts SSIMOptions) (float64, error) {
	return ssimWith(context.Background(), a, b, opts)
}

// ssimWith is SSIMWith with parallel options threaded through for the
// serial-vs-parallel equivalence tests. The Gaussian sweeps and the
// per-pixel product maps run in parallel bands; the final mean stays a
// serial reduction so the summation order — and therefore the result — is
// identical for every worker count.
func ssimWith(ctx context.Context, a, b *imgcore.Image, opts SSIMOptions, popts ...parallel.Option) (float64, error) {
	if err := checkPair(a, b); err != nil {
		return 0, err
	}
	if err := opts.validate(); err != nil {
		return 0, err
	}
	w, h := a.W, a.H
	gaPix, gaP := grayPix(a)
	if gaP != nil {
		defer putScratch(gaP)
	}
	gbPix, gbP := grayPix(b)
	if gbP != nil {
		defer putScratch(gbP)
	}

	kern := kernelFor(opts.WindowRadius, opts.Sigma)

	// Every working buffer comes from the package scratch pool and is fully
	// overwritten before it is read, so reuse across calls cannot leak state;
	// the arithmetic and its order are unchanged from the allocating version,
	// keeping results bit-identical call over call. The five blur passes
	// share one pair of option slices (identical geometry).
	rowOpts, colOpts := blurOpts(w, h, len(kern), popts)
	n := w * h
	muAp, muBp := getScratch(n), getScratch(n)
	defer putScratch(muAp)
	defer putScratch(muBp)
	muA, muB := *muAp, *muBp
	if err := blurWith(ctx, muA, gaPix, w, h, kern, rowOpts, colOpts); err != nil {
		return 0, err
	}
	if err := blurWith(ctx, muB, gbPix, w, h, kern, rowOpts, colOpts); err != nil {
		return 0, err
	}

	aap, bbp, abp := getScratch(n), getScratch(n), getScratch(n)
	defer putScratch(aap)
	defer putScratch(bbp)
	defer putScratch(abp)
	aa, bb, ab := *aap, *bbp, *abp
	prodOpts := append([]parallel.Option{parallel.Grain(minBlurWork)}, popts...)
	if err := parallel.For(ctx, n, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			aa[i] = gaPix[i] * gaPix[i]
			bb[i] = gbPix[i] * gbPix[i]
			ab[i] = gaPix[i] * gbPix[i]
		}
		return nil
	}, prodOpts...); err != nil {
		return 0, err
	}
	sAAp, sBBp, sABp := getScratch(n), getScratch(n), getScratch(n)
	defer putScratch(sAAp)
	defer putScratch(sBBp)
	defer putScratch(sABp)
	sAA, sBB, sAB := *sAAp, *sBBp, *sABp
	if err := blurWith(ctx, sAA, aa, w, h, kern, rowOpts, colOpts); err != nil {
		return 0, err
	}
	if err := blurWith(ctx, sBB, bb, w, h, kern, rowOpts, colOpts); err != nil {
		return 0, err
	}
	if err := blurWith(ctx, sAB, ab, w, h, kern, rowOpts, colOpts); err != nil {
		return 0, err
	}

	c1 := (opts.K1 * opts.L) * (opts.K1 * opts.L)
	c2 := (opts.K2 * opts.L) * (opts.K2 * opts.L)

	var sum float64
	for i := 0; i < n; i++ {
		ma, mb := muA[i], muB[i]
		varA := sAA[i] - ma*ma
		varB := sBB[i] - mb*mb
		cov := sAB[i] - ma*mb
		num := (2*ma*mb + c1) * (2*cov + c2)
		den := (ma*ma + mb*mb + c1) * (varA + varB + c2)
		sum += num / den
	}
	return sum / float64(n), nil
}

// gaussianKernel returns a normalized 1-D Gaussian of radius r. It always
// builds fresh; the SSIM path uses kernelFor, which memoizes by (radius,
// sigma).
func gaussianKernel(r int, sigma float64) []float64 {
	k := make([]float64, 2*r+1)
	var sum float64
	for i := -r; i <= r; i++ {
		v := math.Exp(-float64(i*i) / (2 * sigma * sigma))
		k[i+r] = v
		sum += v
	}
	for i := range k {
		k[i] /= sum
	}
	return k
}

// kernelCacheCap bounds the Gaussian window cache. SSIM sweeps use a
// handful of (radius, sigma) pairs at most; each kernel is tiny, the cap
// exists only to keep pathological parameter scans bounded.
const kernelCacheCap = 16

// kernelKey identifies a Gaussian window. Sigma is keyed by its bit
// pattern: distinct representations never alias, and the key needs no
// float comparison.
type kernelKey struct {
	r         int
	sigmaBits uint64
}

// kernelCache memoizes Gaussian windows, reporting hit/miss/eviction
// counts as the "metrics.gausswin" cache metrics.
var kernelCache = cache.NewLRU[kernelKey, []float64](kernelCacheCap, obs.NewCacheStats("metrics.gausswin"))

// kernelFor returns the cached normalized Gaussian window for (r, sigma),
// building it on first use. The returned slice is shared and must be
// treated as immutable.
func kernelFor(r int, sigma float64) []float64 {
	key := kernelKey{r: r, sigmaBits: math.Float64bits(sigma)}
	k, _ := kernelCache.GetOrBuild(key, func() ([]float64, error) {
		return gaussianKernel(r, sigma), nil
	})
	return k
}

// grayPix returns the luminance samples of img using the same BT.601
// weights as imgcore's Gray. Single-channel inputs are returned as a
// read-only view of img.Pix with a nil pool pointer; multi-channel inputs
// are converted into a pooled buffer the caller must release with
// putScratch.
//
//declint:owns result 1
func grayPix(img *imgcore.Image) ([]float64, *[]float64) {
	if img.C == 1 {
		return img.Pix, nil
	}
	n := img.W * img.H
	bp := getScratch(n)
	buf := *bp
	for i := 0; i < n; i++ {
		r := img.Pix[i*3]
		g := img.Pix[i*3+1]
		b := img.Pix[i*3+2]
		buf[i] = 0.299*r + 0.587*g + 0.114*b
	}
	return buf, bp
}

// scratchPool recycles the float64 working buffers of ssimWith and
// blurInto. Buffers are not zeroed on reuse: every consumer fully
// overwrites its buffer before reading it.
var scratchPool = sync.Pool{New: func() any { return &[]float64{} }}

// getScratch borrows an n-sample buffer from the scratch pool.
//
//declint:owns
func getScratch(n int) *[]float64 {
	bp := scratchPool.Get().(*[]float64)
	b := *bp
	if cap(b) < n {
		b = make([]float64, n)
	}
	*bp = b[:n]
	return bp
}

// putScratch returns a getScratch buffer to the pool.
//
//declint:transfers
func putScratch(bp *[]float64) { scratchPool.Put(bp) }

// minBlurWork is the per-chunk grain (in kernel-weighted samples) below
// which a blur pass stays on the calling goroutine.
const minBlurWork = 1 << 14

// blurSeparable convolves a single-channel image with a separable kernel
// using replicate border handling, returning a fresh slice. It is a thin
// wrapper over blurInto for callers that want an owned result.
func blurSeparable(ctx context.Context, src []float64, w, h int, kern []float64, popts ...parallel.Option) ([]float64, error) {
	dst := make([]float64, len(src))
	if err := blurInto(ctx, dst, src, w, h, kern, popts...); err != nil {
		return nil, err
	}
	return dst, nil
}

// blurInto is blurSeparable writing into a caller-provided destination
// (len(dst) == len(src) == w*h), drawing its intermediate row-pass buffer
// from the scratch pool.
func blurInto(ctx context.Context, dst, src []float64, w, h int, kern []float64, popts ...parallel.Option) error {
	rowOpts, colOpts := blurOpts(w, h, len(kern), popts)
	return blurWith(ctx, dst, src, w, h, kern, rowOpts, colOpts)
}

// blurOpts assembles the per-pass parallel options for a w×h blur with the
// given kernel length. Hoisted out of blurWith so ssimWith can build them
// once and share them across its five same-geometry blur passes.
func blurOpts(w, h, klen int, popts []parallel.Option) (rowOpts, colOpts []parallel.Option) {
	rowOpts = append([]parallel.Option{
		parallel.Grain(parallel.GrainForWidth(w*klen, minBlurWork)),
	}, popts...)
	colOpts = append([]parallel.Option{
		parallel.Grain(parallel.GrainForWidth(h*klen, minBlurWork)),
	}, popts...)
	return rowOpts, colOpts
}

// convolveRows writes the horizontal pass for rows [yLo, yHi): tmp row y is
// src row y convolved with kern under replicate clamping.
//
//declint:hot
func convolveRows(tmp, src []float64, w int, kern []float64, r, yLo, yHi int) {
	// Interior columns [lo, hi) have the kernel fully inside the row, so
	// the clamp branches vanish from the inner loop. The per-element tap
	// order (k ascending) matches the clamped loop exactly, keeping the
	// result bit-identical.
	lo := r
	if lo > w {
		lo = w
	}
	hi := w - r
	if hi < lo {
		hi = lo
	}
	for y := yLo; y < yHi; y++ {
		row := src[y*w : (y+1)*w]
		out := tmp[y*w : (y+1)*w]
		for x := 0; x < lo; x++ {
			out[x] = convolveClampedAt(row, w, kern, r, x)
		}
		// Four output samples per iteration: each keeps its own
		// accumulator summing taps in ascending k, so every sample's
		// addition order — and therefore its bits — match the scalar
		// loop, while the four independent chains hide the float64 add
		// latency the scalar loop serializes on.
		x := lo
		for ; x+3 < hi; x += 4 {
			var s0, s1, s2, s3 float64
			base := x - r
			for k := range kern {
				c := kern[k]
				s0 += c * row[base+k]
				s1 += c * row[base+k+1]
				s2 += c * row[base+k+2]
				s3 += c * row[base+k+3]
			}
			out[x] = s0
			out[x+1] = s1
			out[x+2] = s2
			out[x+3] = s3
		}
		for ; x < hi; x++ {
			var s float64
			base := x - r
			for k := range kern {
				s += kern[k] * row[base+k]
			}
			out[x] = s
		}
		for x := hi; x < w; x++ {
			out[x] = convolveClampedAt(row, w, kern, r, x)
		}
	}
}

// convolveClampedAt computes one output sample with replicate clamping,
// taps in ascending k order.
//
//declint:hot
func convolveClampedAt(row []float64, w int, kern []float64, r, x int) float64 {
	var s float64
	for k := -r; k <= r; k++ {
		xx := x + k
		if xx < 0 {
			xx = 0
		} else if xx >= w {
			xx = w - 1
		}
		s += kern[k+r] * row[xx]
	}
	return s
}

// convolveCols writes the vertical pass for columns [xLo, xHi): dst column
// x is tmp column x convolved with kern under replicate clamping.
//
//declint:hot
func convolveCols(dst, tmp []float64, w, h int, kern []float64, r, xLo, xHi int) {
	// Interior rows [lo, hi) need no clamping; iterating y outermost and
	// x innermost turns the column walk into contiguous row reads. The
	// per-element tap order (k ascending) is unchanged either way, so the
	// sums are bit-identical to the clamped loop.
	lo := r
	if lo > h {
		lo = h
	}
	hi := h - r
	if hi < lo {
		hi = lo
	}
	for y := 0; y < lo; y++ {
		convolveColsClampedRow(dst, tmp, w, h, kern, r, xLo, xHi, y)
	}
	for y := lo; y < hi; y++ {
		base := (y - r) * w
		out := dst[y*w : (y+1)*w]
		// Same four-accumulator shape as convolveRows: per-sample tap
		// order stays k ascending (bit-identical to the scalar loop),
		// and the four independent sums break the serial float64 add
		// chain that otherwise bounds the column pass.
		x := xLo
		for ; x+3 < xHi; x += 4 {
			var s0, s1, s2, s3 float64
			idx := base + x
			for k := range kern {
				c := kern[k]
				s0 += c * tmp[idx]
				s1 += c * tmp[idx+1]
				s2 += c * tmp[idx+2]
				s3 += c * tmp[idx+3]
				idx += w
			}
			out[x] = s0
			out[x+1] = s1
			out[x+2] = s2
			out[x+3] = s3
		}
		for ; x < xHi; x++ {
			var s float64
			idx := base + x
			for k := range kern {
				s += kern[k] * tmp[idx]
				idx += w
			}
			out[x] = s
		}
	}
	for y := hi; y < h; y++ {
		convolveColsClampedRow(dst, tmp, w, h, kern, r, xLo, xHi, y)
	}
}

// convolveColsClampedRow computes output row y of the vertical pass with
// replicate clamping, taps in ascending k order.
//
//declint:hot
func convolveColsClampedRow(dst, tmp []float64, w, h int, kern []float64, r, xLo, xHi, y int) {
	out := dst[y*w : (y+1)*w]
	for x := xLo; x < xHi; x++ {
		var s float64
		for k := -r; k <= r; k++ {
			yy := y + k
			if yy < 0 {
				yy = 0
			} else if yy >= h {
				yy = h - 1
			}
			s += kern[k+r] * tmp[yy*w+x]
		}
		out[x] = s
	}
}

// blurWith runs the separable convolution with caller-assembled options.
// Each pass runs in parallel bands over disjoint output rows/columns;
// cancellation between passes propagates as an error.
func blurWith(ctx context.Context, dst, src []float64, w, h int, kern []float64, rowOpts, colOpts []parallel.Option) error {
	r := (len(kern) - 1) / 2
	tmpP := getScratch(len(src))
	defer putScratch(tmpP)
	tmp := *tmpP
	// Horizontal: chunks own disjoint row bands of tmp.
	err := parallel.For(ctx, h, func(yLo, yHi int) error {
		convolveRows(tmp, src, w, kern, r, yLo, yHi)
		return nil
	}, rowOpts...)
	if err != nil {
		return err
	}
	// Vertical: chunks own disjoint column bands of dst, reading all of tmp.
	return parallel.For(ctx, w, func(xLo, xHi int) error {
		convolveCols(dst, tmp, w, h, kern, r, xLo, xHi)
		return nil
	}, colOpts...)
}
