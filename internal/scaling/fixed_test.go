package scaling

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/parallel"
	"decamouflage/internal/testutil"
)

func noiseU8Image(t testing.TB, rng *rand.Rand, w, h, c int) *imgcore.U8Image {
	t.Helper()
	u, err := imgcore.NewU8(w, h, c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range u.Pix {
		u.Pix[i] = uint8(rng.Intn(256))
	}
	return u
}

// TestResizeU8WithinFixedTolerance pins the fixed-point resize contract:
// for every algorithm, up- and downscaling, both channel counts and a
// geometry corpus, ResizeU8 must agree with Resize over FromU8(u) within
// FixedTolerance of the operator pair.
func TestResizeU8WithinFixedTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	algs := []Algorithm{Nearest, Bilinear, Bicubic, Lanczos, Area, Lanczos4}
	geoms := []struct{ sw, sh, dw, dh int }{
		{16, 16, 4, 4},
		{31, 17, 8, 8},
		{64, 48, 16, 16},
		{12, 12, 30, 30}, // upscale
		{128, 128, 32, 32},
		{9, 27, 27, 9}, // anisotropic
	}
	for _, alg := range algs {
		opts := Options{Algorithm: alg}
		for _, g := range geoms {
			for _, c := range []int{1, 3} {
				u := noiseU8Image(t, rng, g.sw, g.sh, c)
				wide, err := imgcore.FromU8(u)
				if err != nil {
					t.Fatal(err)
				}
				want, err := Resize(wide, g.dw, g.dh, opts)
				if err != nil {
					t.Fatalf("%v %v float: %v", alg, g, err)
				}
				got, err := ResizeU8(u, g.dw, g.dh, opts)
				if err != nil {
					t.Fatalf("%v %v fixed: %v", alg, g, err)
				}
				horiz, err := CoeffFor(g.sw, g.dw, opts)
				if err != nil {
					t.Fatal(err)
				}
				vert, err := CoeffFor(g.sh, g.dh, opts)
				if err != nil {
					t.Fatal(err)
				}
				tol := FixedTolerance(vert, horiz)
				for i := range want.Pix {
					if !testutil.ApproxEqual(got.Pix[i], want.Pix[i], 0, tol) {
						t.Fatalf("%v %dx%d->%dx%d c=%d sample %d: fixed %v vs float %v (Δ=%v, tol %v)",
							alg, g.sw, g.sh, g.dw, g.dh, c, i,
							got.Pix[i], want.Pix[i], got.Pix[i]-want.Pix[i], tol)
					}
				}
			}
		}
	}
}

// TestResizeU8NearestBitExact: Nearest rows are a single weight-1 tap, so
// the Q1.15 quantization is exact and the fixed path must match the
// float64 path bit-for-bit, not merely within tolerance.
func TestResizeU8NearestBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	u := noiseU8Image(t, rng, 37, 23, 3)
	wide, err := imgcore.FromU8(u)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Algorithm: Nearest}
	want, err := Resize(wide, 11, 13, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ResizeU8(u, 11, 13, opts)
	if err != nil {
		t.Fatal(err)
	}
	if i := testutil.FirstDiff(got.Pix, want.Pix); i != -1 {
		t.Fatalf("nearest sample %d: fixed %v vs float %v", i, got.Pix[i], want.Pix[i])
	}
}

// TestResizeU8ConstantPreservation: rows normalize to weight sum 1, whose
// Q1.15 image is off by at most taps/2 ulps of 2^-15 — a constant 8-bit
// image must resize to within that quantization residue of itself.
func TestResizeU8ConstantPreservation(t *testing.T) {
	u, err := imgcore.NewU8(32, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range u.Pix {
		u.Pix[i] = 128
	}
	for _, alg := range []Algorithm{Bilinear, Bicubic, Lanczos4, Area} {
		got, err := ResizeU8(u, 8, 8, Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		for i, v := range got.Pix {
			if math.Abs(v-128) > 0.05 {
				t.Fatalf("%v sample %d: constant 128 resized to %v", alg, i, v)
			}
		}
	}
}

// TestResizeU8IntoMatchesResizeU8 pins the into-variant and its shape
// validation.
func TestResizeU8IntoMatchesResizeU8(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	u := noiseU8Image(t, rng, 40, 30, 3)
	opts := Options{Algorithm: Lanczos4}
	s, err := NewScaler(40, 30, 10, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ResizeU8(u, 10, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	dst := imgcore.MustNew(10, 10, 3)
	if err := s.ResizeU8Into(context.Background(), u, dst); err != nil {
		t.Fatal(err)
	}
	if i := testutil.FirstDiff(dst.Pix, want.Pix); i != -1 {
		t.Fatalf("sample %d: into %v vs direct %v", i, dst.Pix[i], want.Pix[i])
	}
	// Off-geometry input reroutes through CoeffFor like ResizeInto does.
	small := noiseU8Image(t, rng, 20, 20, 3)
	wide, err := imgcore.FromU8(small)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ResizeU8Into(context.Background(), small, dst); err != nil {
		t.Fatal(err)
	}
	ref, err := Resize(wide, 10, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	horiz, err := CoeffFor(20, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	tol := FixedTolerance(horiz, horiz)
	for i := range ref.Pix {
		if !testutil.ApproxEqual(dst.Pix[i], ref.Pix[i], 0, tol) {
			t.Fatalf("derived-geometry sample %d: %v vs %v", i, dst.Pix[i], ref.Pix[i])
		}
	}
	// Shape mismatches are rejected up front.
	bad := imgcore.MustNew(9, 10, 3)
	if err := s.ResizeU8Into(context.Background(), u, bad); err == nil {
		t.Error("mismatched dst accepted")
	}
	gray := imgcore.MustNew(10, 10, 1)
	if err := s.ResizeU8Into(context.Background(), u, gray); err == nil {
		t.Error("channel-mismatched dst accepted")
	}
	if err := s.ResizeU8Into(context.Background(), &imgcore.U8Image{}, dst); err == nil {
		t.Error("empty input accepted")
	}
}

// TestResizeU8SerialParallelEquivalence: the fixed-point band sweeps must
// be bit-identical across worker counts.
func TestResizeU8SerialParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	u := noiseU8Image(t, rng, 64, 48, 3)
	opts := Options{Algorithm: Lanczos4}
	s, err := NewScaler(64, 48, 16, 16, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := imgcore.MustNew(16, 16, 3)
	if err := s.ResizeU8Into(context.Background(), u, want, parallel.Workers(1), parallel.Grain(1)); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		got := imgcore.MustNew(16, 16, 3)
		if err := s.ResizeU8Into(context.Background(), u, got, parallel.Workers(workers), parallel.Grain(1)); err != nil {
			t.Fatal(err)
		}
		if i := testutil.FirstDiff(got.Pix, want.Pix); i != -1 {
			t.Fatalf("workers=%d: sample %d differs", workers, i)
		}
	}
}

// TestFixedQuantizationMemoized: fixed() must build the Q1.15 image once
// and hand every caller the same instance.
func TestFixedQuantizationMemoized(t *testing.T) {
	c, err := BuildCoeff(64, 16, Options{Algorithm: Bicubic})
	if err != nil {
		t.Fatal(err)
	}
	a, ok := c.fixed()
	if !ok || a == nil {
		t.Fatal("fixed() failed on a plain bicubic operator")
	}
	b, ok := c.fixed()
	if !ok || b != a {
		t.Error("fixed() rebuilt the quantization on the second call")
	}
}

// BenchmarkResizeFixed256 is the Q1.15 bilinear 256→64 downscale, single
// worker; its float64 counterpart is BenchmarkResize256Serial.
func BenchmarkResizeFixed256(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	u := noiseU8Image(b, rng, 256, 256, 3)
	s, err := NewScaler(256, 256, 64, 64, Options{Algorithm: Bilinear})
	if err != nil {
		b.Fatal(err)
	}
	dst := imgcore.MustNew(64, 64, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.ResizeU8Into(context.Background(), u, dst, parallel.Workers(1)); err != nil {
			b.Fatal(err)
		}
	}
}
