package imgcore

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"decamouflage/internal/testutil"
)

func TestPNMRoundTripColor(t *testing.T) {
	img := MustNew(5, 3, 3)
	for i := range img.Pix {
		img.Pix[i] = float64((i * 17) % 256)
	}
	var buf bytes.Buffer
	if err := EncodePNM(&buf, img); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "P6\n5 3\n255\n") {
		t.Fatalf("header: %q", buf.String()[:12])
	}
	back, err := DecodePNM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.SameShape(img) {
		t.Fatalf("shape %v", back)
	}
	for i := range img.Pix {
		if !testutil.BitEqual(back.Pix[i], img.Pix[i]) {
			t.Fatalf("sample %d = %v, want %v", i, back.Pix[i], img.Pix[i])
		}
	}
}

func TestPNMRoundTripGray(t *testing.T) {
	img := MustNew(4, 4, 1)
	for i := range img.Pix {
		img.Pix[i] = float64(i * 16)
	}
	var buf bytes.Buffer
	if err := EncodePNM(&buf, img); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "P5\n") {
		t.Fatal("gray image should be P5")
	}
	back, err := DecodePNM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.C != 1 {
		t.Fatalf("channels = %d", back.C)
	}
	for i := range img.Pix {
		if !testutil.BitEqual(back.Pix[i], img.Pix[i]) {
			t.Fatalf("sample %d mismatch", i)
		}
	}
}

func TestPNMCommentsAndWhitespace(t *testing.T) {
	data := "P5 # a comment\n# full line comment\n 2\t2 \n255\n" + string([]byte{0, 85, 170, 255})
	img, err := DecodePNM(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 85, 170, 255}
	for i := range want {
		if !testutil.BitEqual(img.Pix[i], want[i]) {
			t.Fatalf("sample %d = %v", i, img.Pix[i])
		}
	}
}

func TestPNM16Bit(t *testing.T) {
	// 1x1 P5 with maxval 65535, sample 0xFFFF -> 255.
	data := "P5\n1 1\n65535\n" + string([]byte{0xFF, 0xFF})
	img, err := DecodePNM(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.BitEqual(img.Pix[0], 255) {
		t.Fatalf("16-bit max = %v", img.Pix[0])
	}
	// Half scale.
	data = "P5\n1 1\n65535\n" + string([]byte{0x7F, 0xFF})
	img, err = DecodePNM(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if img.Pix[0] < 127 || img.Pix[0] > 128 {
		t.Fatalf("16-bit half = %v", img.Pix[0])
	}
}

func TestPNMErrors(t *testing.T) {
	cases := []string{
		"",                       // empty
		"P3\n1 1\n255\n0 0 0",    // ASCII variant unsupported
		"P5\n0 1\n255\n",         // zero width
		"P5\n2 2\n0\n",           // bad maxval
		"P5\n2 2\n70000\n",       // maxval too large
		"P5\nx 2\n255\n",         // non-integer
		"P5\n2 2\n255\n\x00\x01", // truncated samples
		"P6\n1 1\n255\n\x00\x01", // truncated color samples
		"P5\n1 1\n65535\n\x00",   // truncated 16-bit
	}
	for i, c := range cases {
		if _, err := DecodePNM(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
	var buf bytes.Buffer
	if err := EncodePNM(&buf, &Image{}); err == nil {
		t.Error("empty image encoded")
	}
}

func TestPNMFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	img := MustNew(6, 4, 3)
	img.Fill(99)
	path := filepath.Join(dir, "sub", "x.ppm")
	if err := img.SavePNM(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPNM(path)
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.BitEqual(back.Mean(), 99) {
		t.Fatalf("mean = %v", back.Mean())
	}
	if _, err := LoadPNM(filepath.Join(dir, "missing.ppm")); err == nil {
		t.Error("missing file accepted")
	}
}
