// Fixture: obs coverage. Gray is fully instrumented; Spectrum forgets its
// span; Blur opens one with a nil histogram; the package-level caches pin
// the NewLRU stats audit for both nil and real registrations.
package detect

import (
	"obscover/internal/cache"
	"obscover/internal/obs"
)

type stageKey string

// Intermediates memoizes per-image stage outputs.
type Intermediates struct {
	vals map[stageKey]any
}

func (in *Intermediates) memo(key stageKey, compute func() (any, error)) (any, error) {
	if v, ok := in.vals[key]; ok {
		return v, nil
	}
	v, err := compute()
	if err != nil {
		return nil, err
	}
	if in.vals == nil {
		in.vals = map[stageKey]any{}
	}
	in.vals[key] = v
	return v, nil
}

var grayHist = &obs.Histogram{}

// bare is built with nil stats: its hit rate is invisible.
var bare = cache.NewLRU[string, int](8, nil)

// wired registers real stats: silent.
var wired = cache.NewLRU[string, int](8, &cache.Stats{})

// Gray opens a real span: silent.
func (in *Intermediates) Gray() (any, error) {
	return in.memo("gray", func() (any, error) {
		done := obs.StartStage("gray", grayHist)
		defer done()
		return 1, nil
	})
}

// Spectrum records no span at all.
func (in *Intermediates) Spectrum() (any, error) {
	return in.memo("spectrum", func() (any, error) {
		return 42, nil
	})
}

// Blur opens its span with a nil histogram.
func (in *Intermediates) Blur() (any, error) {
	return in.memo("blur", func() (any, error) {
		done := obs.StartStage("blur", nil)
		defer done()
		return 2, nil
	})
}
