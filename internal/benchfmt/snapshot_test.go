package benchfmt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSnapshot(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadSnapshotsSortsByDate(t *testing.T) {
	dir := t.TempDir()
	// Written out of date order; file names deliberately do not sort the
	// same way as the dates so the sort provably reads the date field.
	writeSnapshot(t, dir, "BENCH_a.json",
		`{"date":"2026-08-09","go_version":"go1.24.0","benchmarks":[{"name":"BenchmarkX","iterations":1,"ns_op":90,"bytes_op":-1,"allocs_op":-1}]}`)
	writeSnapshot(t, dir, "BENCH_b.json",
		`{"date":"2026-08-05","go_version":"go1.24.0","benchmarks":[{"name":"BenchmarkX","iterations":1,"ns_op":100,"bytes_op":-1,"allocs_op":-1}]}`)
	writeSnapshot(t, dir, "notes.txt", "not a snapshot")
	snaps, err := LoadSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("loaded %d snapshots, want 2", len(snaps))
	}
	if snaps[0].Doc.Date != "2026-08-05" || snaps[1].Doc.Date != "2026-08-09" {
		t.Errorf("dates out of order: %s, %s", snaps[0].Doc.Date, snaps[1].Doc.Date)
	}
	// A legacy snapshot (no env field) round-trips with a nil Env.
	if snaps[0].Doc.Env != nil {
		t.Errorf("legacy snapshot Env = %+v, want nil", snaps[0].Doc.Env)
	}
}

func TestLoadSnapshotsEnvRoundTrip(t *testing.T) {
	dir := t.TempDir()
	writeSnapshot(t, dir, "BENCH_2026-08-09.json",
		`{"date":"2026-08-09","go_version":"go1.24.0",`+
			`"env":{"goos":"linux","goarch":"amd64","gomaxprocs":1,"cpu":"Example CPU","go_version":"go1.24.0"},`+
			`"benchmarks":[{"name":"BenchmarkX","iterations":1,"ns_op":90,"bytes_op":-1,"allocs_op":-1}]}`)
	snaps, err := LoadSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0].Doc.Env == nil {
		t.Fatalf("snapshots = %+v, want one with env", snaps)
	}
	got := snaps[0].Doc.Env.Fingerprint()
	want := `linux/amd64 maxprocs=1 cpu="Example CPU"`
	if got != want {
		t.Errorf("fingerprint = %q, want %q", got, want)
	}
}

func TestLoadSnapshotsErrors(t *testing.T) {
	dir := t.TempDir()
	writeSnapshot(t, dir, "BENCH_bad.json", "{not json")
	if _, err := LoadSnapshots(dir); err == nil {
		t.Error("malformed snapshot must be an error")
	}
	dir = t.TempDir()
	writeSnapshot(t, dir, "BENCH_nodate.json", `{"go_version":"go1.24.0","benchmarks":[]}`)
	if _, err := LoadSnapshots(dir); err == nil || !strings.Contains(err.Error(), "no date") {
		t.Errorf("dateless snapshot error = %v, want 'no date'", err)
	}
	snaps, err := LoadSnapshots(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if snaps == nil || len(snaps) != 0 {
		t.Errorf("empty dir = %v, want non-nil empty slice", snaps)
	}
}

func TestEnvironmentFingerprint(t *testing.T) {
	var nilEnv *Environment
	if got := nilEnv.Fingerprint(); got != "" {
		t.Errorf("nil fingerprint = %q, want empty", got)
	}
	if got := (&Environment{}).Fingerprint(); got != "" {
		t.Errorf("zero fingerprint = %q, want empty", got)
	}
	// GoVersion is deliberately excluded: a toolchain bump is a visible
	// trajectory event, not a different machine.
	a := &Environment{GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 4, CPU: "X", GoVersion: "go1.24.0"}
	b := &Environment{GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 4, CPU: "X", GoVersion: "go1.25.0"}
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("go version changed the fingerprint: %q vs %q", a.Fingerprint(), b.Fingerprint())
	}
	c := &Environment{GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 8, CPU: "X"}
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("GOMAXPROCS change did not change the fingerprint")
	}
}
