package scaling

import (
	"testing"

	"decamouflage/internal/obs"
)

// TestCoeffCacheStats pins the hit/miss/eviction counters the coefficient
// cache reports under a deterministic serial access sequence. Counters
// live on the process-global obs registry, so the test asserts deltas.
func TestCoeffCacheStats(t *testing.T) {
	obs.Enable()
	t.Cleanup(obs.Disable)
	if !obs.Enabled() {
		t.Skip("observability compiled out (noobs)")
	}
	resetCoeffCache()
	defer resetCoeffCache()

	hits := obs.C("scaling.coeff.hits")
	misses := obs.C("scaling.coeff.misses")
	evictions := obs.C("scaling.coeff.evictions")
	size := obs.G("scaling.coeff.size")
	h0, m0 := hits.Value(), misses.Value()

	if _, err := CoeffFor(64, 16, Options{Algorithm: Bilinear}); err != nil { // miss
		t.Fatal(err)
	}
	// The zero-value coordinate mode normalizes to HalfPixel, so the
	// explicit form shares the entry: hit.
	if _, err := CoeffFor(64, 16, Options{Algorithm: Bilinear, Coord: HalfPixel}); err != nil {
		t.Fatal(err)
	}
	if _, err := CoeffFor(16, 64, Options{Algorithm: Bilinear}); err != nil { // swapped dims: miss
		t.Fatal(err)
	}
	if got := hits.Value() - h0; got != 1 {
		t.Fatalf("hits delta = %d, want 1", got)
	}
	if got := misses.Value() - m0; got != 2 {
		t.Fatalf("misses delta = %d, want 2", got)
	}
	if got := size.Value(); got != int64(coeffCacheLen()) {
		t.Fatalf("size gauge = %d, cache len = %d", got, coeffCacheLen())
	}

	// A failed build must count as a miss but never evict or grow the
	// cache.
	m1, e1, len1 := misses.Value(), evictions.Value(), coeffCacheLen()
	if _, err := CoeffFor(0, 4, Options{Algorithm: Bilinear}); err == nil {
		t.Fatal("CoeffFor accepted n=0")
	}
	if got := misses.Value() - m1; got != 1 {
		t.Fatalf("failed-build misses delta = %d, want 1", got)
	}
	if got := evictions.Value() - e1; got != 0 {
		t.Fatalf("failed build recorded %d evictions", got)
	}
	if got := coeffCacheLen(); got != len1 {
		t.Fatalf("failed build changed cache len %d -> %d", len1, got)
	}

	// Flooding one entry past the cap evicts exactly one entry.
	resetCoeffCache()
	e2 := evictions.Value()
	for n := 2; n < 2+coeffCacheCap+1; n++ {
		if _, err := CoeffFor(n, 7, Options{Algorithm: Bilinear}); err != nil {
			t.Fatal(err)
		}
	}
	if got := evictions.Value() - e2; got != 1 {
		t.Fatalf("evictions delta = %d, want 1", got)
	}
	if got := coeffCacheLen(); got != coeffCacheCap {
		t.Fatalf("cache len = %d, want %d", got, coeffCacheCap)
	}
}
