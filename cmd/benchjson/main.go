// Command benchjson converts `go test -bench` text output into a stable
// JSON document so benchmark results can be archived per run and diffed
// across commits (the CI benchmark step emits BENCH_<date>.json artifacts;
// a committed baseline lives under bench/).
//
// Usage:
//
//	go test -bench . -benchmem ./... | go run ./cmd/benchjson -date 2026-08-05
//	go run ./cmd/benchjson -in bench.txt -out bench/BENCH_2026-08-05.json
//
// Lines that are not benchmark results (test status, headers, pkg noise)
// are ignored; a run with zero parsed benchmarks exits nonzero so a CI
// regex typo fails loudly instead of committing an empty artifact.
//
// Every document records the producing environment (goos/goarch,
// GOMAXPROCS, CPU model, go version) so the trajectory gate
// (cmd/benchguard -trend) can flag snapshots from a different machine
// instead of silently mixing them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"decamouflage/internal/benchfmt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	inFlag := fs.String("in", "", "input file with `go test -bench` output (default: stdin)")
	outFlag := fs.String("out", "", "output JSON path (default: stdout)")
	dateFlag := fs.String("date", "", "date stamp for the document (default: today, UTC)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: benchjson [-in bench.txt] [-out bench.json] [-date YYYY-MM-DD]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	in := stdin
	if *inFlag != "" {
		f, err := os.Open(*inFlag)
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	results, err := benchfmt.Parse(in)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 2
	}
	if len(results) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark lines found in input")
		return 1
	}
	date := *dateFlag
	if date == "" {
		date = time.Now().UTC().Format("2006-01-02")
	}
	doc := benchfmt.Document{
		Date:      date,
		GoVersion: runtime.Version(),
		Env: &benchfmt.Environment{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			CPU:        cpuModel(),
			GoVersion:  runtime.Version(),
		},
		Benchmarks: results,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 2
	}
	buf = append(buf, '\n')
	if *outFlag == "" {
		if _, err := stdout.Write(buf); err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 2
		}
		return 0
	}
	if err := os.WriteFile(*outFlag, buf, 0o644); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 2
	}
	return 0
}

// cpuModel returns the processor model string from /proc/cpuinfo, or ""
// on platforms without one — the environment record degrades gracefully
// rather than failing the archive step.
func cpuModel() string {
	buf, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(buf), "\n") {
		// x86 spells it "model name"; arm64 uses "Processor"/"CPU part",
		// of which only the former is human-readable — take what exists.
		if name, val, ok := strings.Cut(line, ":"); ok {
			switch strings.TrimSpace(name) {
			case "model name", "Processor":
				return strings.TrimSpace(val)
			}
		}
	}
	return ""
}
