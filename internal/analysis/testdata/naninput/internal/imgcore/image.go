// Package imgcore is a fixture tensor type with a validation guard.
package imgcore

import (
	"errors"
	"math"
)

// Image is the fixture image tensor.
type Image struct {
	W, H, C int
	Pix     []float64
}

// Validate rejects malformed or non-finite tensors.
func (m *Image) Validate() error {
	if m == nil || len(m.Pix) != m.W*m.H*m.C {
		return errors.New("imgcore: malformed image")
	}
	for _, v := range m.Pix {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return errors.New("imgcore: non-finite sample")
		}
	}
	return nil
}
