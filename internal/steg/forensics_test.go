package steg

import (
	"testing"

	"decamouflage/internal/attack"
	"decamouflage/internal/dataset"
	"decamouflage/internal/scaling"
)

// The forensic claim: replica spacing reveals the attacker's target size.
func TestEstimateTargetSizeOnRealAttacks(t *testing.T) {
	tests := []struct {
		srcW, srcH, dstW, dstH int
	}{
		{128, 128, 32, 32},
		{128, 128, 16, 16},
	}
	for _, tt := range tests {
		g, err := dataset.NewGenerator(dataset.Config{Corpus: dataset.CaltechLike, W: tt.srcW, H: tt.srcH, C: 3, Seed: 71})
		if err != nil {
			t.Fatal(err)
		}
		tg, err := dataset.NewGenerator(dataset.Config{Corpus: dataset.CaltechLike, W: tt.dstW, H: tt.dstH, C: 3, Seed: 72})
		if err != nil {
			t.Fatal(err)
		}
		scaler, err := scaling.NewScaler(tt.srcW, tt.srcH, tt.dstW, tt.dstH, scaling.Options{Algorithm: scaling.Bilinear})
		if err != nil {
			t.Fatal(err)
		}
		hits := 0
		const n = 5
		for i := 0; i < n; i++ {
			res, err := attack.Craft(g.Image(i), tg.Image(i), attack.Config{Scaler: scaler, Eps: 2})
			if err != nil {
				t.Fatal(err)
			}
			// Sensitive gate: the 8x ratio's replicas sit below the
			// default detection threshold (see X9).
			w, h, ok := EstimateTargetSize(res.Attack, Options{BinarizeThreshold: 0.70})
			if !ok {
				continue
			}
			// Allow a couple of pixels of centroid jitter.
			if absInt(w-tt.dstW) <= 3 && absInt(h-tt.dstH) <= 3 {
				hits++
			} else {
				t.Logf("%dx%d->%dx%d attack %d: estimated %dx%d", tt.srcW, tt.srcH, tt.dstW, tt.dstH, i, w, h)
			}
		}
		if hits < n-1 {
			t.Errorf("%dx%d: target size recovered for only %d/%d attacks", tt.dstW, tt.dstH, hits, n)
		}
	}
}

func TestEstimateTargetSizeBenignReturnsFalse(t *testing.T) {
	g, err := dataset.NewGenerator(dataset.Config{Corpus: dataset.NeurIPSLike, W: 128, H: 128, C: 3, Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		a, err := Analyze(g.Image(i), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, ok := a.EstimateTargetSize(); ok && a.Count == 1 {
			t.Errorf("benign image %d with single CSP yielded a target-size estimate", i)
		}
	}
}

func TestEstimateTargetSizeDegenerate(t *testing.T) {
	a := &Analysis{W: 64, H: 64, Count: 1, Centroids: [][2]float64{{32, 32}}}
	if _, _, ok := a.EstimateTargetSize(); ok {
		t.Error("single-component analysis yielded estimate")
	}
	// Components off both axes: nothing to measure.
	a = &Analysis{W: 64, H: 64, Count: 3, Centroids: [][2]float64{{32, 32}, {10, 10}, {50, 50}}}
	if _, _, ok := a.EstimateTargetSize(); ok {
		t.Error("diagonal-only replicas yielded estimate")
	}
	// Horizontal replica only: vertical falls back to horizontal.
	a = &Analysis{W: 64, H: 64, Count: 2, Centroids: [][2]float64{{32, 32}, {48, 32}}}
	w, h, ok := a.EstimateTargetSize()
	if !ok || w != 16 || h != 16 {
		t.Errorf("horizontal-only = %d,%d,%v, want 16,16,true", w, h, ok)
	}
}

func TestAnalysisCentroidsPairedWithAreas(t *testing.T) {
	g, err := dataset.NewGenerator(dataset.Config{Corpus: dataset.CaltechLike, W: 64, H: 64, C: 1, Seed: 74})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(g.Image(0), Options{BinarizeThreshold: 0.5, MinArea: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Centroids) != len(a.Areas) || len(a.Areas) != a.Count {
		t.Fatalf("lengths: centroids %d areas %d count %d", len(a.Centroids), len(a.Areas), a.Count)
	}
	for i, c := range a.Centroids {
		if c[0] < 0 || c[0] >= 64 || c[1] < 0 || c[1] >= 64 {
			t.Errorf("centroid %d out of bounds: %v", i, c)
		}
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
