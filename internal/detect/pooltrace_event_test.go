//go:build pooltrace

package detect

// The flight recorder extends each image's lifecycle — the wide event is
// built from the Intermediates' memo/pool counters after the stage ends
// but while the deferred release still holds. These tests pin that the
// pooled-borrow ledger stays balanced with the full recording stack
// installed, on the happy path and under mid-batch cancellation.

import (
	"context"
	"runtime"
	"testing"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/obs"
)

// recordingSession installs a recorder and tail sampler for one pooltrace
// test (metrics enabled so spans and stage histograms are live too).
// Under -tags noobs there is no recorder to install: these tests pin the
// ledger/recorder interplay specifically, and the ledger alone is already
// covered tag-independently in pooltrace_test.go, so they skip.
func recordingSession(t *testing.T) *obs.Recorder {
	t.Helper()
	if obs.NewRecorder(1) == nil {
		t.Skip("observability compiled out (noobs)")
	}
	obs.Enable()
	t.Cleanup(obs.Disable)
	rec := obs.NewRecorder(256)
	obs.SetRecorder(rec)
	t.Cleanup(func() { obs.SetRecorder(nil) })
	obs.SetTailSampler(obs.NewTailSampler(8, 1))
	t.Cleanup(func() { obs.SetTailSampler(nil) })
	return rec
}

// TestPoolTraceRecorderBatchBalances: with the recorder tracing every
// image, a full batch still releases each pooled borrow exactly once, and
// the events report the borrows the ledger saw.
func TestPoolTraceRecorderBatchBalances(t *testing.T) {
	poolTraceReset()
	rec := recordingSession(t)
	e := grayEnsemble(t, &grayScorer{})
	imgs := make([]*imgcore.Image, 8)
	for i := range imgs {
		imgs[i] = rgbImage(16, 12, float64(i))
	}
	if _, err := e.DetectBatch(context.Background(), imgs); err != nil {
		t.Fatal(err)
	}
	if err := poolTraceVerify(); err != nil {
		t.Fatal(err)
	}
	evs := rec.Snapshot()
	if len(evs) != len(imgs) {
		t.Fatalf("recorded %d events for a batch of %d", len(evs), len(imgs))
	}
	for _, ev := range evs {
		if ev.PoolBorrows <= 0 {
			t.Fatalf("3-channel image event reports %d pool borrows, want > 0", ev.PoolBorrows)
		}
	}
}

// TestPoolTraceRecorderCancellation: cancelling a recorded batch midway
// must neither strand a pooled buffer nor crash the event path on the
// errored images.
func TestPoolTraceRecorderCancellation(t *testing.T) {
	poolTraceReset()
	rec := recordingSession(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e := grayEnsemble(t, &grayScorer{after: cancel})
	imgs := make([]*imgcore.Image, 4*runtime.GOMAXPROCS(0)+8)
	for i := range imgs {
		imgs[i] = rgbImage(16, 12, float64(i))
	}
	if _, err := e.DetectBatch(ctx, imgs); err == nil {
		t.Fatal("cancelled batch returned no error")
	}
	if err := poolTraceVerify(); err != nil {
		t.Fatal(err)
	}
	if rec.Recorded() == 0 {
		t.Fatal("cancelled batch recorded no events at all")
	}
}
