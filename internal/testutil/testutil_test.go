package testutil

import (
	"math"
	"testing"
)

func TestBitEqual(t *testing.T) {
	if !BitEqual(1.5, 1.5) || BitEqual(1.5, 1.5000001) {
		t.Fatal("BitEqual misjudges plain values")
	}
	if !BitEqual(0, math.Copysign(0, -1)) {
		t.Fatal("BitEqual must follow IEEE ==: +0 equals -0")
	}
	if BitEqual(math.NaN(), math.NaN()) {
		t.Fatal("BitEqual must follow IEEE ==: NaN != NaN")
	}
	if !BitEqual(math.Inf(1), math.Inf(1)) {
		t.Fatal("equal infinities must compare equal")
	}
	if !BitEqual32(float32(0.1), float32(0.1)) || BitEqual32(1, 2) {
		t.Fatal("BitEqual32 misjudges plain values")
	}
	if !BitEqualComplex(2+3i, 2+3i) || BitEqualComplex(2+3i, 2+3.0000001i) {
		t.Fatal("BitEqualComplex misjudges plain values")
	}
}

func TestFirstDiff(t *testing.T) {
	if i := FirstDiff([]float64{1, 2, 3}, []float64{1, 2, 3}); i != -1 {
		t.Fatalf("identical slices: got %d, want -1", i)
	}
	if i := FirstDiff([]float64{1, 2, 3}, []float64{1, 9, 3}); i != 1 {
		t.Fatalf("differing slices: got %d, want 1", i)
	}
	if i := FirstDiff([]float64{1, 2}, []float64{1, 2, 3}); i != 2 {
		t.Fatalf("length mismatch: got %d, want 2", i)
	}
	if i := FirstDiff(nil, nil); i != -1 {
		t.Fatalf("nil slices: got %d, want -1", i)
	}
	nan := math.NaN()
	if i := FirstDiff([]float64{nan}, []float64{nan}); i != 0 {
		t.Fatalf("NaN samples must differ under IEEE ==: got %d, want 0", i)
	}
}

func TestFirstDiffComplex(t *testing.T) {
	if i := FirstDiffComplex([]complex128{1 + 2i}, []complex128{1 + 2i}); i != -1 {
		t.Fatalf("identical slices: got %d, want -1", i)
	}
	if i := FirstDiffComplex([]complex128{1 + 2i, 5}, []complex128{1 + 2i, 6}); i != 1 {
		t.Fatalf("differing slices: got %d, want 1", i)
	}
	if i := FirstDiffComplex([]complex128{1}, nil); i != 0 {
		t.Fatalf("length mismatch: got %d, want 0", i)
	}
}
