package analysis

import (
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// loadIndex builds the call-graph index over one fixture module.
func loadIndex(t *testing.T, name string, cfg Config) *Index {
	t.Helper()
	pkgs, err := LoadModule(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("LoadModule(%s): %v", name, err)
	}
	return BuildIndex(pkgs, cfg)
}

// TestCallGraphEdges pins how the index resolves each call shape: plain
// static calls, calls through func-typed locals with multiple candidates,
// method values, interface dispatch to every module-defined implementer,
// cross-package edges, and mutual recursion.
func TestCallGraphEdges(t *testing.T) {
	ix := loadIndex(t, "callgraph", DefaultConfig())
	const g = "callgraph/internal/graph."

	impls := ix.Implementers("iface:" + g + "Scorer.Score")
	wantImpls := []string{g + "(Linear).Score", g + "(Offset).Score"}
	if !reflect.DeepEqual(impls, wantImpls) {
		t.Errorf("Implementers(Scorer.Score) = %v, want %v", impls, wantImpls)
	}

	cases := []struct {
		root string
		want []string // exact sorted reachable set, root included
	}{
		{ // interface dispatch fans out to every implementer
			root: g + "Eval",
			want: []string{g + "(Linear).Score", g + "(Offset).Score", g + "Eval"},
		},
		{ // func-typed local bound to two candidates reaches both
			root: g + "Apply",
			want: []string{g + "Apply", g + "Double", g + "Halve"},
		},
		{ // method value resolves to the concrete method
			root: g + "Bind",
			want: []string{g + "(Linear).Score", g + "Bind"},
		},
		{ // mutual recursion terminates and covers the cycle
			root: g + "Even",
			want: []string{g + "Even", g + "Odd"},
		},
		{
			root: g + "Odd",
			want: []string{g + "Even", g + "Odd"},
		},
		{ // cross-package static edge plus the interface fan-out behind it
			root: "callgraph/internal/score.Best",
			want: []string{
				g + "(Linear).Score", g + "(Offset).Score", g + "Eval",
				"callgraph/internal/score.Best",
			},
		},
	}
	for _, tc := range cases {
		if got := ix.Reachable(tc.root); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Reachable(%s) = %v, want %v", tc.root, got, tc.want)
		}
	}

	for _, id := range []string{g + "Eval", g + "(Offset).Score", "callgraph/internal/score.Best"} {
		if ix.Funcs[id] == nil {
			t.Errorf("index has no summary for %s", id)
		}
	}
	if ids := ix.IDs(); !sortedStrings(ids) {
		t.Errorf("IDs() not sorted: %v", ids)
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return false
		}
	}
	return true
}

// TestSummaryCacheStableFindings runs a summary-driven fixture cold (writing
// the cache) and warm (reading it) and requires bit-identical findings: the
// on-disk summaries must round-trip every field the checks consume.
func TestSummaryCacheStableFindings(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheDir = t.TempDir()
	cold := loadFixture(t, "hotalloc", cfg)
	if len(cold) == 0 {
		t.Fatal("cold run produced no findings; fixture or checks are broken")
	}
	entries, err := os.ReadDir(cfg.CacheDir)
	if err != nil {
		t.Fatal(err)
	}
	summaries := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".json") {
			summaries++
		}
	}
	if summaries == 0 {
		t.Fatal("cold run wrote no summary files")
	}
	warm := loadFixture(t, "hotalloc", cfg)
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("warm-cache findings differ\ncold:\n  %s\nwarm:\n  %s",
			strings.Join(cold, "\n  "), strings.Join(warm, "\n  "))
	}
}

// TestCacheIgnoresStaleSchema: a cache entry with the wrong schema or path
// must be recomputed, not trusted. Simulated by corrupting every summary
// in place and re-running: findings must still match the cold run.
func TestCacheIgnoresCorruptEntries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheDir = t.TempDir()
	cold := loadFixture(t, "hotalloc", cfg)
	entries, err := os.ReadDir(cfg.CacheDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		p := filepath.Join(cfg.CacheDir, e.Name())
		if err := os.WriteFile(p, []byte(`{"schema":-1}`), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	again := loadFixture(t, "hotalloc", cfg)
	if !reflect.DeepEqual(cold, again) {
		t.Errorf("corrupt cache changed findings\ncold:\n  %s\ngot:\n  %s",
			strings.Join(cold, "\n  "), strings.Join(again, "\n  "))
	}
}

// TestCacheIgnoresStaleSchemaEntries: a well-formed summary written under a
// previous schema version (here 2, pre-concurrency) must be recomputed, not
// trusted — its FuncEffects lack the lock/spawn/channel fields the v4
// checks consume. Each cache entry is rewritten in place as a plausible
// schema-2 file with no function summaries; trusting it would erase every
// lockorder finding on the warm run.
func TestCacheIgnoresStaleSchemaEntries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheDir = t.TempDir()
	cold := loadFixture(t, "lockorder", cfg)
	if len(cold) == 0 {
		t.Fatal("cold run produced no findings; fixture or checks are broken")
	}
	entries, err := os.ReadDir(cfg.CacheDir)
	if err != nil {
		t.Fatal(err)
	}
	stale := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		p := filepath.Join(cfg.CacheDir, e.Name())
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		var s PkgSummary
		if err := json.Unmarshal(data, &s); err != nil {
			t.Fatal(err)
		}
		s.Schema = 2
		s.Funcs = nil
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, out, 0o644); err != nil {
			t.Fatal(err)
		}
		stale++
	}
	if stale == 0 {
		t.Fatal("cold run wrote no summary files to stale-ify")
	}
	warm := loadFixture(t, "lockorder", cfg)
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("stale schema-2 cache changed findings\ncold:\n  %s\nwarm:\n  %s",
			strings.Join(cold, "\n  "), strings.Join(warm, "\n  "))
	}
}

// copyTree duplicates a fixture module so a test can edit it without
// touching the shared testdata.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, p)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copyTree(%s): %v", src, err)
	}
}

// loadRoot is loadFixture for an absolute module root outside testdata.
func loadRoot(t *testing.T, root string, cfg Config) []string {
	t.Helper()
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule(%s): %v", root, err)
	}
	findings, err := Run(pkgs, cfg)
	if err != nil {
		t.Fatalf("Run(%s): %v", root, err)
	}
	out := make([]string, 0, len(findings))
	for _, f := range findings {
		rel, err := filepath.Rel(root, f.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, fmt.Sprintf("%s:%d %s", filepath.ToSlash(rel), f.Pos.Line, f.Check))
	}
	return out
}

// TestCacheInvalidatesOnTransitiveEdit: editing a file in a package the
// hot root only reaches through an import must invalidate the warm cache.
// The edited tree's warm run has to equal a fresh cold run on the same
// tree bit for bit, and differ from the pre-edit findings — a stale
// summary would silently keep reporting the old allocation set.
func TestCacheInvalidatesOnTransitiveEdit(t *testing.T) {
	// The module root's base name doubles as the module path, so the
	// copy must keep the fixture's directory name for imports to resolve.
	root := filepath.Join(t.TempDir(), "hotalloc")
	copyTree(t, filepath.Join("testdata", "hotalloc"), root)

	cfg := DefaultConfig()
	cfg.CacheDir = t.TempDir()
	cold := loadRoot(t, root, cfg)
	if len(cold) == 0 {
		t.Fatal("cold run produced no findings; fixture or checks are broken")
	}

	// Grow a second allocation inside kernels.Fill, which Sweep (the
	// //declint:hot root in internal/filtering) reaches only transitively.
	kernels := filepath.Join(root, "internal", "kernels", "kernels.go")
	edited := `// Fixture helper: an allocating function that is itself unmarked but sits
// inside a hot root's static call closure.
package kernels

// Fill rebuilds its scratch on every call.
func Fill(out []float64) {
	tmp := make([]float64, len(out))
	edge := make([]float64, 2)
	copy(out, tmp)
	copy(out, edge)
}
`
	if err := os.WriteFile(kernels, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}

	warm := loadRoot(t, root, cfg) // same cache dir: summaries must recompute
	if reflect.DeepEqual(cold, warm) {
		t.Fatalf("warm run after the edit reproduced the pre-edit findings; cache did not invalidate:\n  %s",
			strings.Join(warm, "\n  "))
	}
	if !contains(warm, "internal/kernels/kernels.go:8 hotalloc") {
		t.Errorf("warm run missed the new allocation site:\n  %s", strings.Join(warm, "\n  "))
	}

	freshCfg := DefaultConfig()
	freshCfg.CacheDir = t.TempDir()
	fresh := loadRoot(t, root, freshCfg) // empty cache: ground truth for the edited tree
	if !reflect.DeepEqual(warm, fresh) {
		t.Errorf("warm findings on the edited tree differ from a fresh cold run\nwarm:\n  %s\nfresh:\n  %s",
			strings.Join(warm, "\n  "), strings.Join(fresh, "\n  "))
	}
}

func contains(lines []string, want string) bool {
	for _, l := range lines {
		if l == want {
			return true
		}
	}
	return false
}
