package fourier

import (
	"context"
	"math/rand"
	"testing"

	"decamouflage/internal/parallel"
	"decamouflage/internal/testutil"
)

// planLengths covers both execution strategies: radix-2 powers of two
// (including the trivial 1 and 2) and Bluestein lengths — odd, even,
// prime, and one just past a power of two (the worst padding case).
var planLengths = []int{1, 2, 4, 8, 16, 64, 256, 3, 5, 6, 7, 12, 15, 31, 97, 100, 129}

// TestPlannedMatchesNaiveBitExact: the planned transform must reproduce
// the naive per-call transform BIT-FOR-BIT in both directions for every
// length class. This is the contract that lets FFT/IFFT/transform2D switch
// to plans without perturbing any downstream detection score.
func TestPlannedMatchesNaiveBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range planLengths {
		for _, inverse := range []bool{false, true} {
			x := randomComplex(rng, n)
			want := append([]complex128(nil), x...)
			if err := transform(want, inverse); err != nil {
				t.Fatalf("n=%d inverse=%v naive: %v", n, inverse, err)
			}
			p, err := PlanFor(n, inverse)
			if err != nil {
				t.Fatalf("n=%d inverse=%v PlanFor: %v", n, inverse, err)
			}
			got := append([]complex128(nil), x...)
			if err := p.Transform(got); err != nil {
				t.Fatalf("n=%d inverse=%v planned: %v", n, inverse, err)
			}
			if i := testutil.FirstDiffComplex(got, want); i >= 0 {
				t.Fatalf("n=%d inverse=%v: planned diverges from naive at sample %d: %v vs %v",
					n, inverse, i, got[i], want[i])
			}
		}
	}
}

// TestPlanReuseIsDeterministic: executing the same plan repeatedly (which
// exercises the pooled Bluestein scratch reuse and its zeroing) must keep
// producing bit-identical output.
func TestPlanReuseIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, n := range []int{16, 100, 97} {
		p, err := PlanFor(n, false)
		if err != nil {
			t.Fatal(err)
		}
		x := randomComplex(rng, n)
		first := append([]complex128(nil), x...)
		if err := p.Transform(first); err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 5; rep++ {
			again := append([]complex128(nil), x...)
			if err := p.Transform(again); err != nil {
				t.Fatal(err)
			}
			if i := testutil.FirstDiffComplex(again, first); i >= 0 {
				t.Fatalf("n=%d rep=%d: reuse diverges at sample %d", n, rep, i)
			}
		}
	}
}

// TestPlanValidation pins the error surface: bad lengths at construction,
// mismatched input length at execution.
func TestPlanValidation(t *testing.T) {
	for _, n := range []int{0, -1, -8} {
		if _, err := NewPlan(n, false); err == nil {
			t.Fatalf("NewPlan(%d) accepted invalid length", n)
		}
		if _, err := PlanFor(n, false); err == nil {
			t.Fatalf("PlanFor(%d) accepted invalid length", n)
		}
	}
	p, err := NewPlan(8, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Transform(make([]complex128, 7)); err == nil {
		t.Fatal("Transform accepted mismatched input length")
	}
	if p.N() != 8 || p.Inverse() {
		t.Fatalf("accessors: N=%d Inverse=%v", p.N(), p.Inverse())
	}
}

// TestPlanCacheBoundsAndHits: the cache must return the identical instance
// on a repeat request, and never exceed planCacheCap even when flooded
// with distinct lengths.
func TestPlanCacheBoundsAndHits(t *testing.T) {
	resetPlanCache()
	defer resetPlanCache()

	a, err := PlanFor(64, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlanFor(64, false)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("repeat PlanFor returned a distinct instance (cache miss)")
	}
	inv, err := PlanFor(64, true)
	if err != nil {
		t.Fatal(err)
	}
	if inv == a {
		t.Fatal("direction must be part of the cache key")
	}

	// Flood with far more distinct (length, direction) keys than the cap —
	// Bluestein lengths also pull their radix-2 sub-plans through the cache.
	for n := 1; n <= 100; n++ {
		if _, err := PlanFor(n, false); err != nil {
			t.Fatal(err)
		}
		if _, err := PlanFor(n, true); err != nil {
			t.Fatal(err)
		}
	}
	if got := planCacheLen(); got > planCacheCap {
		t.Fatalf("cache grew to %d entries, cap is %d", got, planCacheCap)
	}

	// An evicted-then-refetched plan must still produce correct output.
	rng := rand.New(rand.NewSource(33))
	x := randomComplex(rng, 64)
	want := append([]complex128(nil), x...)
	if err := transform(want, false); err != nil {
		t.Fatal(err)
	}
	p, err := PlanFor(64, false)
	if err != nil {
		t.Fatal(err)
	}
	got := append([]complex128(nil), x...)
	if err := p.Transform(got); err != nil {
		t.Fatal(err)
	}
	if i := testutil.FirstDiffComplex(got, want); i >= 0 {
		t.Fatalf("refetched plan diverges at sample %d", i)
	}
}

// TestPlanForConcurrent: concurrent PlanFor callers (through the
// repository's parallel substrate) must all land on working plans and
// agree with the naive reference; run under -race this also exercises the
// build-outside-lock path for data races.
func TestPlanForConcurrent(t *testing.T) {
	resetPlanCache()
	defer resetPlanCache()
	rng := rand.New(rand.NewSource(34))
	lengths := []int{8, 100, 97, 64, 12, 256}
	inputs := make([][]complex128, len(lengths))
	wants := make([][]complex128, len(lengths))
	for i, n := range lengths {
		inputs[i] = randomComplex(rng, n)
		wants[i] = append([]complex128(nil), inputs[i]...)
		if err := transform(wants[i], false); err != nil {
			t.Fatal(err)
		}
	}
	const rounds = 8
	err := parallel.For(context.Background(), rounds*len(lengths), func(lo, hi int) error {
		for job := lo; job < hi; job++ {
			i := job % len(lengths)
			p, err := PlanFor(lengths[i], false)
			if err != nil {
				return err
			}
			got := append([]complex128(nil), inputs[i]...)
			if err := p.Transform(got); err != nil {
				return err
			}
			if d := testutil.FirstDiffComplex(got, wants[i]); d >= 0 {
				t.Errorf("n=%d: concurrent planned transform diverges at %d", lengths[i], d)
			}
		}
		return nil
	}, parallel.Workers(8), parallel.Grain(1))
	if err != nil {
		t.Fatal(err)
	}
}

// benchmarkPlanned1D times the steady-state planned path against
// benchmarkNaive1D for one length.
func benchmarkPlanned1D(b *testing.B, n int, inverse bool) {
	rng := rand.New(rand.NewSource(35))
	x := randomComplex(rng, n)
	buf := make([]complex128, n)
	p, err := PlanFor(n, inverse)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		if err := p.Transform(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkNaive1D(b *testing.B, n int, inverse bool) {
	rng := rand.New(rand.NewSource(35))
	x := randomComplex(rng, n)
	buf := make([]complex128, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		if err := transform(buf, inverse); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFT1D256Planned(b *testing.B)  { benchmarkPlanned1D(b, 256, false) }
func BenchmarkFFT1D256Naive(b *testing.B)    { benchmarkNaive1D(b, 256, false) }
func BenchmarkFFT1D1000Planned(b *testing.B) { benchmarkPlanned1D(b, 1000, false) }
func BenchmarkFFT1D1000Naive(b *testing.B)   { benchmarkNaive1D(b, 1000, false) }

// BenchmarkFFT2D256Unplanned reproduces the pre-plan transform2D (naive
// per-call transform, per-chunk column allocation) as the baseline for
// BenchmarkFFT2D256Serial in parallel_test.go.
func BenchmarkFFT2D256Unplanned(b *testing.B) {
	rng := rand.New(rand.NewSource(36))
	m, err := NewMatrix(256, 256)
	if err != nil {
		b.Fatal(err)
	}
	for i := range m.Data {
		m.Data[i] = complex(rng.Float64(), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := &Matrix{W: m.W, H: m.H, Data: append([]complex128(nil), m.Data...)}
		for y := 0; y < m.H; y++ {
			if err := transform(out.Data[y*m.W:(y+1)*m.W], false); err != nil {
				b.Fatal(err)
			}
		}
		col := make([]complex128, m.H)
		for x := 0; x < m.W; x++ {
			for y := 0; y < m.H; y++ {
				col[y] = out.Data[y*m.W+x]
			}
			if err := transform(col, false); err != nil {
				b.Fatal(err)
			}
			for y := 0; y < m.H; y++ {
				out.Data[y*m.W+x] = col[y]
			}
		}
	}
}
