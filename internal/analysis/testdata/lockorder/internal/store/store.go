// Package store is a fixture: lock-order hazards over two package-level
// mutexes and a struct mutex — an acquisition-order cycle, a self-deadlock
// through a call chain, blocking under a held lock, and an unlock with no
// matching lock.
package store

import (
	"sync"
	"time"
)

var (
	muA sync.Mutex
	muB sync.Mutex
)

// AB acquires in the sanctioned order.
func AB() {
	muA.Lock()
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}

// BA inverts it: together with AB this closes a lock-order cycle.
func BA() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}

// Store wraps a counter behind a mutex.
type Store struct {
	mu sync.Mutex
	n  int
}

// Size reports the count.
func (s *Store) Size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Grow holds mu and calls Size, which reacquires it: self-deadlock.
func (s *Store) Grow() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	return s.Size()
}

// Nap blocks while holding the lock.
func (s *Store) Nap() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// Drop unlocks a mutex it never locked.
func Drop() {
	muA.Unlock()
}
