// Backdoor audit: the paper's Section II-B scenario. A data aggregator
// curating a face-recognition training set receives submissions from
// untrusted third parties; an attacker has disguised trigger images inside
// innocuous-looking contributions using the image-scaling attack, so that
// training on the set plants a backdoor. Decamouflage runs OFFLINE over the
// whole submission batch and quarantines the poisoned images before
// training.
//
// Run with:
//
//	go run ./examples/backdoor_audit
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"decamouflage"
	"decamouflage/internal/dataset"
)

const (
	srcW, srcH = 128, 128
	dstW, dstH = 32, 32
	batchSize  = 60
	poisonRate = 0.15
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("backdoor-audit: ")

	scaler, err := decamouflage.NewScaler(srcW, srcH, dstW, dstH, decamouflage.Bilinear)
	if err != nil {
		log.Fatal(err)
	}

	// Contributor photos ("administrator" face images the attacker mimics)
	// and the trigger images the attacker wants the model to train on.
	contributions, err := dataset.NewGenerator(dataset.Config{
		Corpus: dataset.CaltechLike, W: srcW, H: srcH, C: 3, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	triggers, err := dataset.NewGenerator(dataset.Config{
		Corpus: dataset.CaltechLike, W: dstW, H: dstH, C: 3, Seed: 13,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Assemble the submission batch: mostly clean, some poisoned.
	rng := rand.New(rand.NewSource(99))
	type submission struct {
		img      *decamouflage.Image
		poisoned bool
	}
	var batch []submission
	for i := 0; i < batchSize; i++ {
		img := contributions.Image(i)
		poisoned := rng.Float64() < poisonRate
		if poisoned {
			res, err := decamouflage.CraftAttack(img, triggers.Image(i), scaler, 2)
			if err != nil {
				log.Fatal(err)
			}
			img = res.Attack
		}
		batch = append(batch, submission{img: img, poisoned: poisoned})
	}

	// The auditor holds a small in-house benign set (the paper assumes
	// ~1000 hold-out samples; black-box: no attack knowledge needed).
	holdout, err := dataset.NewGenerator(dataset.Config{
		Corpus: dataset.NeurIPSLike, W: srcW, H: srcH, C: 3, Seed: 17,
	})
	if err != nil {
		log.Fatal(err)
	}
	var scalingScores, filteringScores []float64
	for i := 0; i < 40; i++ {
		img := holdout.Image(i)
		v, err := decamouflage.ScoreScaling(scaler, decamouflage.MSE, img)
		if err != nil {
			log.Fatal(err)
		}
		scalingScores = append(scalingScores, v)
		v, err = decamouflage.ScoreFiltering(2, decamouflage.SSIM, img)
		if err != nil {
			log.Fatal(err)
		}
		filteringScores = append(filteringScores, v)
	}
	scalingTh, err := decamouflage.CalibrateBlackBox(scalingScores, 2, decamouflage.MSE)
	if err != nil {
		log.Fatal(err)
	}
	filteringTh, err := decamouflage.CalibrateBlackBox(filteringScores, 2, decamouflage.SSIM)
	if err != nil {
		log.Fatal(err)
	}
	ens, err := decamouflage.NewEnsemble(scaler, scalingTh, filteringTh)
	if err != nil {
		log.Fatal(err)
	}

	// Audit the batch.
	ctx := context.Background()
	var caught, missed, falseAlarm, kept int
	for i, s := range batch {
		v, err := decamouflage.Detect(ctx, ens, s.img)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case s.poisoned && v.Attack:
			caught++
			fmt.Printf("  quarantined submission %02d (votes %d/3) — poisoned, caught\n", i, v.Votes)
		case s.poisoned && !v.Attack:
			missed++
			fmt.Printf("  MISSED submission %02d — poisoned but accepted\n", i)
		case !s.poisoned && v.Attack:
			falseAlarm++
			fmt.Printf("  quarantined submission %02d — clean (false alarm)\n", i)
		default:
			kept++
		}
	}
	fmt.Printf("\naudit summary: %d submissions, %d poisoned\n", len(batch), caught+missed)
	fmt.Printf("  caught:       %d\n", caught)
	fmt.Printf("  missed:       %d\n", missed)
	fmt.Printf("  false alarms: %d\n", falseAlarm)
	fmt.Printf("  kept clean:   %d\n", kept)
	if missed == 0 {
		fmt.Println("training set is free of image-scaling backdoor poison")
	}
}
