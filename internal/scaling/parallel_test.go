package scaling

import (
	"context"
	"math/rand"
	"testing"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/parallel"
	"decamouflage/internal/testutil"
)

func noiseImage(t testing.TB, rng *rand.Rand, w, h, c int) *imgcore.Image {
	t.Helper()
	img, err := imgcore.New(w, h, c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range img.Pix {
		img.Pix[i] = rng.Float64() * 255
	}
	return img
}

// TestResizeSerialParallelEquivalence: the coefficient-matrix application
// must be bit-identical across worker counts for every kernel, both up-
// and downscaling, over odd/even/prime geometries.
func TestResizeSerialParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	algs := []Algorithm{Nearest, Bilinear, Bicubic, Lanczos, Area}
	cases := []struct{ srcW, srcH, dstW, dstH int }{
		{16, 16, 4, 4},
		{31, 29, 7, 11},  // primes both sides
		{13, 64, 64, 13}, // mixed up/down
		{97, 5, 23, 17},
		{8, 8, 32, 32}, // pure upscale
		{1, 7, 3, 2},   // degenerate width
	}
	for _, alg := range algs {
		opts := Options{Algorithm: alg}
		for _, tc := range cases {
			horiz, err := BuildCoeff(tc.srcW, tc.dstW, opts)
			if err != nil {
				t.Fatal(err)
			}
			vert, err := BuildCoeff(tc.srcH, tc.dstH, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range []int{1, 3} {
				img := noiseImage(t, rng, tc.srcW, tc.srcH, c)
				want, err := resizeWith(context.Background(), img, horiz, vert, parallel.Workers(1), parallel.Grain(1))
				if err != nil {
					t.Fatalf("%v %+v serial: %v", alg, tc, err)
				}
				for _, workers := range []int{2, 4, 9} {
					got, err := resizeWith(context.Background(), img, horiz, vert, parallel.Workers(workers), parallel.Grain(1))
					if err != nil {
						t.Fatalf("%v %+v workers=%d: %v", alg, tc, workers, err)
					}
					for i := range want.Pix {
						if !testutil.BitEqual(got.Pix[i], want.Pix[i]) {
							t.Fatalf("%v %+v c=%d workers=%d: sample %d differs: %v vs %v",
								alg, tc, c, workers, i, got.Pix[i], want.Pix[i])
						}
					}
				}
			}
		}
	}
}

// TestResizePublicAPIMatchesPinnedSerial ties Resize (default worker
// count) to the explicitly serial path.
func TestResizePublicAPIMatchesPinnedSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	img := noiseImage(t, rng, 53, 47, 3)
	opts := Options{Algorithm: Bicubic}
	got, err := Resize(img, 19, 23, opts)
	if err != nil {
		t.Fatal(err)
	}
	horiz, err := BuildCoeff(img.W, 19, opts)
	if err != nil {
		t.Fatal(err)
	}
	vert, err := BuildCoeff(img.H, 23, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := resizeWith(context.Background(), img, horiz, vert, parallel.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Pix {
		if !testutil.BitEqual(got.Pix[i], want.Pix[i]) {
			t.Fatalf("Resize diverges from serial at sample %d", i)
		}
	}
}

func benchmarkResize(b *testing.B, workers int) {
	rng := rand.New(rand.NewSource(6))
	img := noiseImage(b, rng, 256, 256, 3)
	opts := Options{Algorithm: Bilinear}
	horiz, err := BuildCoeff(256, 64, opts)
	if err != nil {
		b.Fatal(err)
	}
	vert, err := BuildCoeff(256, 64, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := resizeWith(context.Background(), img, horiz, vert, parallel.Workers(workers)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResize256Serial is the single-worker bilinear 256→64 baseline.
func BenchmarkResize256Serial(b *testing.B) { benchmarkResize(b, 1) }

// BenchmarkResize256Parallel is the same resize at the default
// (GOMAXPROCS) worker count.
func BenchmarkResize256Parallel(b *testing.B) { benchmarkResize(b, parallel.DefaultWorkers()) }
