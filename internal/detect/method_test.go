package detect

import "testing"

func TestMethodString(t *testing.T) {
	cases := map[Method]string{
		Scaling:       "scaling",
		Filtering:     "filtering",
		Steganalysis:  "steganalysis",
		UnknownMethod: "Method(0)",
		Method(42):    "Method(42)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("Method(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestMethodOf(t *testing.T) {
	cases := map[string]Method{
		"scaling/MSE":      Scaling,
		"scaling/SSIM":     Scaling,
		"scaling":          Scaling,
		"filtering/SSIM":   Filtering,
		"steganalysis/CSP": Steganalysis,
		"histogram/deltaB": UnknownMethod,
		"":                 UnknownMethod,
		"scalingX/MSE":     UnknownMethod,
	}
	for name, want := range cases {
		if got := MethodOf(name); got != want {
			t.Errorf("MethodOf(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestVerdictString(t *testing.T) {
	v := Verdict{Attack: true, Score: 123.456, Method: "scaling/MSE"}
	if got, want := v.String(), "scaling/MSE: attack (score 123.456)"; got != want {
		t.Errorf("Verdict.String() = %q, want %q", got, want)
	}
	v = Verdict{Attack: false, Score: 0.25, Method: "filtering/SSIM"}
	if got, want := v.String(), "filtering/SSIM: benign (score 0.25)"; got != want {
		t.Errorf("Verdict.String() = %q, want %q", got, want)
	}
	if got, want := v.MethodOf(), Filtering; got != want {
		t.Errorf("Verdict.MethodOf() = %v, want %v", got, want)
	}
}

func TestEnsembleVerdictString(t *testing.T) {
	ev := EnsembleVerdict{Attack: true, Votes: 2, Verdicts: make([]Verdict, 3)}
	if got, want := ev.String(), "attack (2/3 votes)"; got != want {
		t.Errorf("EnsembleVerdict.String() = %q, want %q", got, want)
	}
	ev = EnsembleVerdict{Attack: false, Votes: 1, Verdicts: make([]Verdict, 3)}
	if got, want := ev.String(), "benign (1/3 votes)"; got != want {
		t.Errorf("EnsembleVerdict.String() = %q, want %q", got, want)
	}
}
