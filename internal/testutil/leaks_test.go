package testutil

import (
	"strings"
	"testing"
	"time"
)

// recorderT captures Errorf calls and runs cleanups on demand, standing in
// for *testing.T so the differ's failure path is testable.
type recorderT struct {
	cleanups []func()
	errors   []string
}

func (r *recorderT) Helper()          {}
func (r *recorderT) Cleanup(f func()) { r.cleanups = append(r.cleanups, f) }
func (r *recorderT) Errorf(format string, args ...any) {
	r.errors = append(r.errors, format)
}

func (r *recorderT) finish() {
	for i := len(r.cleanups) - 1; i >= 0; i-- {
		r.cleanups[i]()
	}
}

func TestVerifyNoLeaksCleanPass(t *testing.T) {
	rec := &recorderT{}
	VerifyNoLeaks(rec)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	rec.finish()
	if len(rec.errors) != 0 {
		t.Fatalf("clean test reported leaks: %v", rec.errors)
	}
}

func TestVerifyNoLeaksCatchesLeak(t *testing.T) {
	rec := &recorderT{}
	VerifyNoLeaks(rec)
	stop := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-stop
	}()
	<-started
	rec.finish()
	close(stop)
	if len(rec.errors) == 0 {
		t.Fatal("leaked goroutine went unreported")
	}
	if !strings.Contains(rec.errors[0], "leaked") {
		t.Fatalf("unexpected error format: %q", rec.errors[0])
	}
}

// TestVerifyNoLeaksSettles: a goroutine whose join raced the cleanup (done
// channel closed, stack not yet reaped) must not be reported — the differ
// retries until the runtime catches up.
func TestVerifyNoLeaksSettles(t *testing.T) {
	rec := &recorderT{}
	VerifyNoLeaks(rec)
	go func() { time.Sleep(50 * time.Millisecond) }()
	rec.finish() // cleanup starts while the goroutine is still sleeping
	if len(rec.errors) != 0 {
		t.Fatalf("settling goroutine reported as a leak: %v", rec.errors)
	}
}
