package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// ewma tracks an exponential moving average of durations with a warmup
// count, the adaptive part of both the recorder's "slow" tagging and the
// tail sampler's retention rule. Not goroutine-safe; owners hold a mutex.
type ewma struct {
	n    int64
	mean float64
}

// observe folds ns into the average and reports whether this observation
// is anomalously slow: past warmup, several times the prior mean, and
// above an absolute floor so microsecond jitter is never tagged.
func (e *ewma) observe(ns int64) (slow bool) {
	const (
		warmup     = 8
		slowFactor = 3.0
		floorNs    = 1e6 // 1ms
	)
	slow = e.n >= warmup && float64(ns) > slowFactor*e.mean && float64(ns) > floorNs
	e.n++
	// Cap the effective window so the mean keeps adapting to drift.
	w := e.n
	if w > 64 {
		w = 64
	}
	e.mean += (float64(ns) - e.mean) / float64(w)
	return slow
}

// Retention reasons on a RetainedTrace.
const (
	// KeepError retains traces of requests that returned an error.
	KeepError = "error"
	// KeepRecord retains a new (or near-tied) slowest-so-far request for
	// its root name — this is what guarantees a top-bucket histogram
	// exemplar always resolves to a retained trace.
	KeepRecord = "record"
	// KeepSlow retains requests above the adaptive per-name threshold.
	KeepSlow = "slow"
	// KeepSampled retains a probabilistic sample of ordinary requests.
	KeepSampled = "sampled"
)

// RetainedTrace is a finished span tree kept by the tail sampler,
// serialized so it survives after the live Trace is garbage.
type RetainedTrace struct {
	ID     string     `json:"id"`
	Name   string     `json:"name"`
	UnixNs int64      `json:"unix_ns"`
	DurNs  int64      `json:"dur_ns"`
	Reason string     `json:"reason"`
	Err    string     `json:"err,omitempty"`
	Spans  []StageDur `json:"spans"`
}

// tailStat is the per-root-name retention state.
type tailStat struct {
	avg   ewma
	maxNs int64
}

// TailSampler decides, once a trace has finished, whether it is worth
// keeping: errored traces always, a new slowest-per-name record always,
// adaptively slow traces, and a probabilistic sample of the rest. Kept
// traces live in a fixed-size ring.
type TailSampler struct {
	mu      sync.Mutex
	ring    *ringBuf[RetainedTrace]
	stats   map[string]*tailStat
	sample  float64
	rng     uint64
	offered int64
	kept    int64

	keptC    *Counter
	offeredC *Counter
}

// NewTailSampler returns a sampler retaining the last capacity traces
// (default 64 when capacity <= 0). sample is the probability in [0,1] of
// keeping an otherwise unremarkable trace. Returns nil under noobs.
func NewTailSampler(capacity int, sample float64) *TailSampler {
	if compiledOut {
		return nil
	}
	if capacity <= 0 {
		capacity = 64
	}
	if sample < 0 {
		sample = 0
	}
	if sample > 1 {
		sample = 1
	}
	return &TailSampler{
		ring:   newRingBuf[RetainedTrace](capacity),
		stats:  map[string]*tailStat{},
		sample: sample,
		// Seeded from the wall clock: sampling is explicitly
		// non-deterministic and lives behind the obs barrier.
		rng:      uint64(time.Now().UnixNano()) | 1,
		keptC:    C("obs.traces.kept"),
		offeredC: C("obs.traces.offered"),
	}
}

// Active reports whether the sampler is live.
func (s *TailSampler) Active() bool { return !compiledOut && s != nil }

// rand01 advances a splitmix64 state and returns a float in [0,1). Cheap
// and lock-free relative to math/rand's global source; called under mu.
func (s *TailSampler) rand01() float64 {
	s.rng += 0x9E3779B97F4A7C15
	z := s.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// Offer presents a finished trace for retention and returns the reason it
// was kept, or ("", false) when discarded. The decision order is error,
// record, slow, sampled; the span tree is serialized only when kept.
//
// Offer takes ownership of the trace: whatever the decision (including a
// nil sampler), the trace's span arena is recycled before returning, and
// the caller must not touch the trace or any of its spans afterwards. A
// kept trace survives as the serialized RetainedTrace copy.
func (s *TailSampler) Offer(t *Trace, err error) (string, bool) {
	root := t.Root()
	if !s.Active() || root == nil {
		t.release()
		return "", false
	}
	defer t.release()
	ns := root.Duration().Nanoseconds()
	s.mu.Lock()
	s.offered++
	st := s.stats[root.name]
	if st == nil {
		st = &tailStat{}
		s.stats[root.name] = st
	}
	slow := st.avg.observe(ns)
	var reason string
	switch {
	case err != nil:
		reason = KeepError
	// Keep anything within 1% of the running per-name maximum, not just
	// strict improvements: histogram exemplars and span durations are two
	// separate clock reads of the same request, so the nanosecond-level
	// disagreement between them must not drop the record holder.
	case float64(ns) >= 0.99*float64(st.maxNs):
		reason = KeepRecord
	case slow:
		reason = KeepSlow
	case s.sample > 0 && s.rand01() < s.sample:
		reason = KeepSampled
	}
	if ns > st.maxNs {
		st.maxNs = ns
	}
	if reason == "" {
		s.mu.Unlock()
		s.offeredC.Inc()
		return "", false
	}
	rt := RetainedTrace{
		ID:     root.tid,
		Name:   root.name,
		UnixNs: root.start.UnixNano(),
		DurNs:  ns,
		Reason: reason,
		Spans:  FlattenSpans(root),
	}
	if err != nil {
		rt.Err = err.Error()
	}
	s.ring.push(rt)
	s.kept++
	s.mu.Unlock()
	s.offeredC.Inc()
	s.keptC.Inc()
	return reason, true
}

// Snapshot returns the retained traces, oldest first.
func (s *TailSampler) Snapshot() []RetainedTrace {
	if !s.Active() {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ring.snapshot()
}

// Find returns the most recent retained trace with the given ID.
func (s *TailSampler) Find(id string) (RetainedTrace, bool) {
	if id != "" {
		rts := s.Snapshot()
		for i := len(rts) - 1; i >= 0; i-- {
			if rts[i].ID == id {
				return rts[i], true
			}
		}
	}
	return RetainedTrace{}, false
}

// Offered returns how many finished traces were presented.
func (s *TailSampler) Offered() int64 {
	if !s.Active() {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.offered
}

// Kept returns how many traces were retained.
func (s *TailSampler) Kept() int64 {
	if !s.Active() {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.kept
}

// WriteNDJSON dumps the retained traces to w, one JSON object per line.
func (s *TailSampler) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, rt := range s.Snapshot() {
		if err := enc.Encode(&rt); err != nil {
			return err
		}
	}
	return nil
}

// currentTail is the process-wide tail sampler, if any.
var currentTail atomic.Pointer[TailSampler]

// SetTailSampler installs s as the process-wide tail sampler (nil
// uninstalls).
func SetTailSampler(s *TailSampler) {
	if compiledOut {
		return
	}
	currentTail.Store(s)
}

// Tail returns the installed tail sampler, or nil (a no-op receiver).
func Tail() *TailSampler {
	if compiledOut {
		return nil
	}
	return currentTail.Load()
}
