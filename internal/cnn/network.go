package cnn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"decamouflage/internal/imgcore"
)

// Config describes the small classification network.
type Config struct {
	// InputW/InputH is the model's fixed input geometry — the size the
	// preprocessing scaler must produce (the attack surface of the paper).
	InputW, InputH int
	// Classes is the number of output classes.
	Classes int
	// Conv1/Conv2 are the filter counts of the two conv blocks (defaults
	// 8 and 16). Kernels are 3x3, each block followed by ReLU + 2x2 pool.
	Conv1, Conv2 int
	// Seed makes initialization deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Conv1 == 0 {
		c.Conv1 = 8
	}
	if c.Conv2 == 0 {
		c.Conv2 = 16
	}
	return c
}

func (c Config) validate() error {
	if c.InputW < 8 || c.InputH < 8 {
		return fmt.Errorf("cnn: input %dx%d too small (min 8x8)", c.InputW, c.InputH)
	}
	if c.Classes < 2 {
		return fmt.Errorf("cnn: need at least 2 classes, got %d", c.Classes)
	}
	if c.Conv1 < 1 || c.Conv2 < 1 {
		return fmt.Errorf("cnn: conv sizes must be positive")
	}
	return nil
}

// Network is a small sequential convnet: conv-relu-pool ×2, dense, softmax.
type Network struct {
	cfg    Config
	layers []layer
}

// NewNetwork builds and initializes the network.
func NewNetwork(cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Geometry bookkeeping for the dense layer.
	w, h := cfg.InputW, cfg.InputH
	w, h = (w-2)/2, (h-2)/2 // conv k=3 then pool
	w, h = (w-2)/2, (h-2)/2
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("cnn: input %dx%d collapses below 1x1", cfg.InputW, cfg.InputH)
	}
	n := &Network{cfg: cfg}
	n.layers = []layer{
		newConv2D(rng, 1, cfg.Conv1, 3),
		&relu{},
		&maxPool2{},
		newConv2D(rng, cfg.Conv1, cfg.Conv2, 3),
		&relu{},
		&maxPool2{},
		newDense(rng, w*h*cfg.Conv2, cfg.Classes),
	}
	return n, nil
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// errBadInput indicates an input whose geometry does not match the model.
var errBadInput = errors.New("cnn: input geometry does not match the model")

// volumeFromImage converts a pixel image into the network's normalized
// grayscale input volume.
func (n *Network) volumeFromImage(img *imgcore.Image) (*Volume, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	if img.W != n.cfg.InputW || img.H != n.cfg.InputH {
		return nil, fmt.Errorf("%w: got %dx%d, want %dx%d",
			errBadInput, img.W, img.H, n.cfg.InputW, n.cfg.InputH)
	}
	gray := img.Gray()
	v := NewVolume(gray.W, gray.H, 1)
	for i, p := range gray.Pix {
		v.Data[i] = p/127.5 - 1 // [-1, 1]
	}
	return v, nil
}

// forward runs the network and returns the raw logits.
func (n *Network) forward(v *Volume) *Volume {
	for _, l := range n.layers {
		v = l.forward(v)
	}
	return v
}

// Predict classifies an image, returning the class index and the softmax
// probabilities.
func (n *Network) Predict(img *imgcore.Image) (int, []float64, error) {
	v, err := n.volumeFromImage(img)
	if err != nil {
		return 0, nil, err
	}
	logits := n.forward(v)
	probs := softmax(logits.Data)
	best := 0
	for i, p := range probs {
		if p > probs[best] {
			best = i
		}
	}
	return best, probs, nil
}

// Sample is one labelled training example.
type Sample struct {
	Image *imgcore.Image
	Label int
}

// TrainOptions configures Fit.
type TrainOptions struct {
	// Epochs over the training set (default 5).
	Epochs int
	// LearningRate for SGD (default 0.01) with Momentum (default 0.9).
	LearningRate float64
	Momentum     float64
	// Seed shuffles the sample order deterministically.
	Seed int64
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.Epochs == 0 {
		o.Epochs = 5
	}
	//declint:ignore floateq zero is the unset-option sentinel, set only by literal omission
	if o.LearningRate == 0 {
		o.LearningRate = 0.01
	}
	//declint:ignore floateq zero is the unset-option sentinel, set only by literal omission
	if o.Momentum == 0 {
		o.Momentum = 0.9
	}
	return o
}

// Fit trains the network with plain SGD and returns the mean cross-entropy
// loss of each epoch.
func (n *Network) Fit(samples []Sample, opts TrainOptions) ([]float64, error) {
	if len(samples) == 0 {
		return nil, errors.New("cnn: no training samples")
	}
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}
	var losses []float64
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var total float64
		for _, idx := range order {
			s := samples[idx]
			if s.Label < 0 || s.Label >= n.cfg.Classes {
				return nil, fmt.Errorf("cnn: label %d out of range [0,%d)", s.Label, n.cfg.Classes)
			}
			v, err := n.volumeFromImage(s.Image)
			if err != nil {
				return nil, fmt.Errorf("cnn: sample %d: %w", idx, err)
			}
			logits := n.forward(v)
			probs := softmax(logits.Data)
			total += -math.Log(math.Max(probs[s.Label], 1e-12))
			// Softmax + cross-entropy gradient: p - onehot.
			grad := NewVolume(1, 1, n.cfg.Classes)
			copy(grad.Data, probs)
			grad.Data[s.Label] -= 1
			g := grad
			for i := len(n.layers) - 1; i >= 0; i-- {
				g = n.layers[i].backward(g)
			}
			for _, l := range n.layers {
				l.update(opts.LearningRate, opts.Momentum)
			}
		}
		losses = append(losses, total/float64(len(samples)))
	}
	return losses, nil
}

// Accuracy evaluates classification accuracy over labelled samples.
func (n *Network) Accuracy(samples []Sample) (float64, error) {
	if len(samples) == 0 {
		return 0, errors.New("cnn: no samples")
	}
	correct := 0
	for i, s := range samples {
		pred, _, err := n.Predict(s.Image)
		if err != nil {
			return 0, fmt.Errorf("cnn: sample %d: %w", i, err)
		}
		if pred == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples)), nil
}

func softmax(logits []float64) []float64 {
	mx := logits[0]
	for _, v := range logits[1:] {
		if v > mx {
			mx = v
		}
	}
	out := make([]float64, len(logits))
	var sum float64
	for i, v := range logits {
		out[i] = math.Exp(v - mx)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}
