package detect

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/obs"
	"decamouflage/internal/testutil"
)

func TestNearThreshold(t *testing.T) {
	cases := []struct {
		score float64
		th    Threshold
		want  bool
	}{
		// Threshold 100: band is 5% of the magnitude = +/-5.
		{score: 100, th: Threshold{Value: 100, Direction: Above}, want: true},
		{score: 95, th: Threshold{Value: 100, Direction: Above}, want: true},
		{score: 105, th: Threshold{Value: 100, Direction: Above}, want: true},
		{score: 94.9, th: Threshold{Value: 100, Direction: Above}, want: false},
		{score: 105.1, th: Threshold{Value: 100, Direction: Above}, want: false},
		// Near-zero threshold: the unit floor keeps the band at +/-0.05
		// instead of collapsing with the magnitude.
		{score: 0.14, th: Threshold{Value: 0.1, Direction: Below}, want: true},
		{score: 0.16, th: Threshold{Value: 0.1, Direction: Below}, want: false},
		{score: 0.05, th: Threshold{Value: 0, Direction: Above}, want: true},
		// NaN never counts as borderline.
		{score: math.NaN(), th: Threshold{Value: 100, Direction: Above}, want: false},
	}
	for _, c := range cases {
		if got := nearThreshold(c.score, c.th); got != c.want {
			t.Errorf("nearThreshold(%v, %+v) = %v, want %v", c.score, c.th, got, c.want)
		}
	}
}

func TestJSONSafe(t *testing.T) {
	// The clamp returns exact sentinel constants, so bit equality is the
	// intended comparison.
	if got := jsonSafe(math.NaN()); !testutil.BitEqual(got, 0) {
		t.Errorf("jsonSafe(NaN) = %v, want 0", got)
	}
	if got := jsonSafe(math.Inf(1)); !testutil.BitEqual(got, math.MaxFloat64) {
		t.Errorf("jsonSafe(+Inf) = %v, want MaxFloat64", got)
	}
	if got := jsonSafe(math.Inf(-1)); !testutil.BitEqual(got, -math.MaxFloat64) {
		t.Errorf("jsonSafe(-Inf) = %v, want -MaxFloat64", got)
	}
	if got := jsonSafe(42.5); !testutil.BitEqual(got, 42.5) {
		t.Errorf("jsonSafe(42.5) = %v, want passthrough", got)
	}
}

// eventTestSession installs a fresh recorder and tail sampler (and enables
// metrics) for one test, skipping under noobs.
func eventTestSession(t *testing.T, traceKeep int) (*obs.Recorder, *obs.TailSampler) {
	t.Helper()
	obs.Enable()
	t.Cleanup(obs.Disable)
	if !obs.Enabled() {
		t.Skip("observability compiled out (noobs)")
	}
	rec := obs.NewRecorder(64)
	obs.SetRecorder(rec)
	t.Cleanup(func() { obs.SetRecorder(nil) })
	ts := obs.NewTailSampler(traceKeep, 0)
	obs.SetTailSampler(ts)
	t.Cleanup(func() { obs.SetTailSampler(nil) })
	return rec, ts
}

// TestDetectEmitsWideEvent pins the wide event one Detect call records
// when a flight recorder is installed: trace ID, geometry, verdict and
// per-method boundaries, stage attribution from the span tree, and memo
// accounting — and that the same trace is retained by the tail sampler
// under the ID the event carries.
func TestDetectEmitsWideEvent(t *testing.T) {
	rec, ts := eventTestSession(t, 16)
	e := obsTestEnsemble(t)

	v, err := e.Detect(context.Background(), obsTestImage(t, 32, 32))
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Recorded(); got != 1 {
		t.Fatalf("recorded %d events, want 1", got)
	}
	ev := rec.Snapshot()[0]
	if ev.TraceID == "" {
		t.Fatal("event has no trace ID")
	}
	if ev.Name != "ensemble.detect" {
		t.Fatalf("event name = %q", ev.Name)
	}
	if ev.W != 32 || ev.H != 32 || ev.C != 1 {
		t.Fatalf("event geometry = %dx%dx%d, want 32x32x1", ev.W, ev.H, ev.C)
	}
	if ev.DurNs <= 0 || ev.UnixNs == 0 {
		t.Fatalf("event not timed: dur=%d unix=%d", ev.DurNs, ev.UnixNs)
	}
	wantVerdict := "benign"
	if v.Attack {
		wantVerdict = "attack"
	}
	if ev.Verdict != wantVerdict || ev.Votes != v.Votes {
		t.Fatalf("event verdict = %q/%d, want %q/%d", ev.Verdict, ev.Votes, wantVerdict, v.Votes)
	}
	if len(ev.Methods) != 3 {
		t.Fatalf("event has %d methods, want 3", len(ev.Methods))
	}
	for i, m := range ev.Methods {
		if m.Method != v.Verdicts[i].Method {
			t.Errorf("method %d name = %q, want %q", i, m.Method, v.Verdicts[i].Method)
		}
		if m.Direction == "" {
			t.Errorf("method %q missing threshold direction", m.Method)
		}
		if m.Margin < 0 {
			t.Errorf("method %q margin = %v, want >= 0", m.Method, m.Margin)
		}
		if m.Attack != v.Verdicts[i].Attack {
			t.Errorf("method %q attack = %v, want %v", m.Method, m.Attack, v.Verdicts[i].Attack)
		}
	}

	// Per-stage latency attribution comes from the span tree: the root
	// stage is the detect span itself, and every stage fits inside the
	// event's total duration.
	if len(ev.Stages) == 0 {
		t.Fatal("event has no stage durations")
	}
	if ev.Stages[0].Name != "ensemble.detect" || ev.Stages[0].Depth != 0 {
		t.Fatalf("stage root = %+v, want ensemble.detect at depth 0", ev.Stages[0])
	}
	for _, sd := range ev.Stages {
		if sd.OffsetNs < 0 || sd.DurNs < 0 {
			t.Errorf("stage %q has negative timing: %+v", sd.Name, sd)
		}
		if sd.DurNs > ev.DurNs {
			t.Errorf("stage %q dur %d exceeds event total %d", sd.Name, sd.DurNs, ev.DurNs)
		}
	}
	if ev.MemoMisses <= 0 {
		t.Errorf("event memo misses = %d, want > 0 on a cold image", ev.MemoMisses)
	}

	// The auto-opened trace was offered to the tail sampler and retained
	// under the same ID the event carries (first offer is the new record).
	rt, ok := ts.Find(ev.TraceID)
	if !ok {
		t.Fatalf("trace %q not retained by the tail sampler", ev.TraceID)
	}
	if rt.Reason != obs.KeepRecord || len(rt.Spans) == 0 {
		t.Fatalf("retained trace = %+v, want record reason with spans", rt)
	}

	// The latency histogram pinned an exemplar for the traced observation;
	// a pinned exemplar always carries a trace ID.
	ex := obs.H("detect.ensemble.seconds").Exemplars()
	if len(ex) == 0 {
		t.Fatal("detect.ensemble.seconds has no exemplars after a traced detect")
	}
	for _, x := range ex {
		if x.TraceID == "" {
			t.Errorf("exemplar without trace ID: %+v", x)
		}
	}

	// The wide event must marshal as-is: that is the NDJSON dump contract.
	if _, err := json.Marshal(ev); err != nil {
		t.Fatalf("event does not marshal: %v", err)
	}
}

// TestDetectEventCallerOwnedTrace: a caller that already traced the
// context keeps ownership — the event reuses the caller's trace ID and the
// ensemble does not offer the unfinished trace for retention.
func TestDetectEventCallerOwnedTrace(t *testing.T) {
	rec, ts := eventTestSession(t, 16)
	e := obsTestEnsemble(t)

	ctx, tr := obs.WithTrace(context.Background(), "caller")
	if _, err := e.Detect(ctx, obsTestImage(t, 32, 32)); err != nil {
		t.Fatal(err)
	}
	ev, ok := rec.Find(tr.ID())
	if !ok {
		t.Fatalf("no event under the caller's trace ID %q", tr.ID())
	}
	if ev.Name != "ensemble.detect" {
		t.Fatalf("event name = %q", ev.Name)
	}
	if got := ts.Offered(); got != 0 {
		t.Fatalf("ensemble offered the caller-owned trace (%d offers)", got)
	}
	tr.End()
}

// TestDetectEventError: a failing member produces an event with the error
// string and the error anomaly tag, written to the anomaly output, and the
// trace is retained with the error reason.
func TestDetectEventError(t *testing.T) {
	rec, ts := eventTestSession(t, 16)
	var dump bytes.Buffer
	rec.SetAnomalyOutput(&dump)

	d, err := NewDetector(&stubScorer{name: "boom/metric", err: errors.New("boom")},
		Threshold{Value: 1, Direction: Above})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEnsemble(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Detect(context.Background(), obsTestImage(t, 8, 8)); err == nil {
		t.Fatal("Detect over a failing scorer succeeded")
	}
	ev := rec.Snapshot()[0]
	if !strings.Contains(ev.Err, "boom") {
		t.Fatalf("event err = %q, want the scorer error", ev.Err)
	}
	if !hasAnomaly(ev, obs.AnomalyError) {
		t.Fatalf("event anomalies = %v, want %q", ev.Anomalies, obs.AnomalyError)
	}
	if ev.Verdict != "" || len(ev.Methods) != 0 {
		t.Fatalf("errored event carries a verdict: %+v", ev)
	}
	if !strings.Contains(dump.String(), `"err":"boom/metric: boom"`) {
		t.Fatalf("anomaly dump missing the errored event: %q", dump.String())
	}
	rt, ok := ts.Find(ev.TraceID)
	if !ok || rt.Reason != obs.KeepError {
		t.Fatalf("errored trace retention = %+v (found=%v), want error reason", rt, ok)
	}
}

// TestDetectEventNearThreshold: a verdict inside the 5% boundary band is
// tagged near-threshold; a comfortable margin is not.
func TestDetectEventNearThreshold(t *testing.T) {
	rec, _ := eventTestSession(t, 16)

	near, err := NewDetector(&stubScorer{name: "near/metric", score: 5},
		Threshold{Value: 5.1, Direction: Above})
	if err != nil {
		t.Fatal(err)
	}
	far, err := NewDetector(&stubScorer{name: "far/metric", score: 5},
		Threshold{Value: 100, Direction: Above})
	if err != nil {
		t.Fatal(err)
	}

	e1, err := NewEnsemble(near)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Detect(context.Background(), obsTestImage(t, 8, 8)); err != nil {
		t.Fatal(err)
	}
	if ev := rec.Snapshot()[0]; !hasAnomaly(ev, obs.AnomalyNearThreshold) {
		t.Fatalf("borderline verdict not tagged: anomalies = %v", ev.Anomalies)
	}

	e2, err := NewEnsemble(far)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Detect(context.Background(), obsTestImage(t, 8, 8)); err != nil {
		t.Fatal(err)
	}
	evs := rec.Snapshot()
	if ev := evs[len(evs)-1]; hasAnomaly(ev, obs.AnomalyNearThreshold) {
		t.Fatalf("comfortable margin tagged near-threshold: %+v", ev)
	}
}

// TestDetectBatchEmitsPerImageEvents: a batch records one wide event per
// image, each under its own trace.
func TestDetectBatchEmitsPerImageEvents(t *testing.T) {
	rec, _ := eventTestSession(t, 16)
	e := obsTestEnsemble(t)

	imgs := []*imgcore.Image{
		obsTestImage(t, 32, 32), obsTestImage(t, 32, 32), obsTestImage(t, 32, 32),
	}
	if _, err := e.DetectBatch(context.Background(), imgs); err != nil {
		t.Fatal(err)
	}
	evs := rec.Snapshot()
	if len(evs) != len(imgs) {
		t.Fatalf("batch of %d recorded %d events", len(imgs), len(evs))
	}
	ids := make(map[string]bool, len(evs))
	for _, ev := range evs {
		if ev.TraceID == "" {
			t.Fatalf("batch event without trace ID: %+v", ev)
		}
		ids[ev.TraceID] = true
	}
	if len(ids) != len(imgs) {
		t.Fatalf("batch events share trace IDs: %d distinct of %d", len(ids), len(imgs))
	}
}

// TestDetectWithoutRecorder: no recorder installed means no tracing, no
// events, no offers — the metrics-only path of previous releases.
func TestDetectWithoutRecorder(t *testing.T) {
	obs.Enable()
	t.Cleanup(obs.Disable)
	if !obs.Enabled() {
		t.Skip("observability compiled out (noobs)")
	}
	ts := obs.NewTailSampler(4, 1)
	obs.SetTailSampler(ts)
	t.Cleanup(func() { obs.SetTailSampler(nil) })

	e := obsTestEnsemble(t)
	if _, err := e.Detect(context.Background(), obsTestImage(t, 32, 32)); err != nil {
		t.Fatal(err)
	}
	if got := ts.Offered(); got != 0 {
		t.Fatalf("recorder-less detect offered %d traces", got)
	}
}

func hasAnomaly(ev obs.Event, tag string) bool {
	for _, a := range ev.Anomalies {
		if a == tag {
			return true
		}
	}
	return false
}
