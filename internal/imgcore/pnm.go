package imgcore

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
)

// DecodePNM reads a binary PGM (P5, grayscale) or PPM (P6, color) stream —
// the lingua franca of research image toolchains. Maxval up to 65535 is
// accepted; 16-bit samples are rescaled to [0,255].
func DecodePNM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	magic, err := pnmToken(br)
	if err != nil {
		return nil, fmt.Errorf("imgcore: pnm magic: %w", err)
	}
	var channels int
	switch magic {
	case "P5":
		channels = 1
	case "P6":
		channels = 3
	default:
		return nil, fmt.Errorf("imgcore: unsupported pnm magic %q (want P5 or P6)", magic)
	}
	w, err := pnmInt(br)
	if err != nil {
		return nil, fmt.Errorf("imgcore: pnm width: %w", err)
	}
	h, err := pnmInt(br)
	if err != nil {
		return nil, fmt.Errorf("imgcore: pnm height: %w", err)
	}
	maxval, err := pnmInt(br)
	if err != nil {
		return nil, fmt.Errorf("imgcore: pnm maxval: %w", err)
	}
	if w <= 0 || h <= 0 || w*h > 1<<28 {
		return nil, fmt.Errorf("imgcore: pnm geometry %dx%d invalid", w, h)
	}
	if maxval <= 0 || maxval > 65535 {
		return nil, fmt.Errorf("imgcore: pnm maxval %d invalid", maxval)
	}
	img, err := New(w, h, channels)
	if err != nil {
		return nil, err
	}
	n := w * h * channels
	scale := 255.0 / float64(maxval)
	if maxval < 256 {
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("imgcore: pnm samples: %w", err)
		}
		for i, b := range buf {
			img.Pix[i] = float64(b) * scale
		}
	} else {
		buf := make([]byte, 2*n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("imgcore: pnm samples: %w", err)
		}
		for i := 0; i < n; i++ {
			v := int(buf[2*i])<<8 | int(buf[2*i+1])
			img.Pix[i] = float64(v) * scale
		}
	}
	return img, nil
}

// EncodePNM writes the image as binary PGM (1 channel) or PPM (3 channels)
// with maxval 255.
func EncodePNM(w io.Writer, m *Image) error {
	if err := m.Validate(); err != nil {
		return err
	}
	magic := "P6"
	if m.C == 1 {
		magic = "P5"
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s\n%d %d\n255\n", magic, m.W, m.H); err != nil {
		return fmt.Errorf("imgcore: pnm header: %w", err)
	}
	buf := make([]byte, len(m.Pix))
	for i, v := range m.Pix {
		buf[i] = clampByte(v)
	}
	if _, err := bw.Write(buf); err != nil {
		return fmt.Errorf("imgcore: pnm samples: %w", err)
	}
	return bw.Flush()
}

// SavePNM writes a .pgm/.ppm file, creating parent directories as needed.
func (m *Image) SavePNM(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("imgcore: mkdir for %s: %w", path, err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("imgcore: create %s: %w", path, err)
	}
	defer f.Close()
	if err := EncodePNM(f, m); err != nil {
		return fmt.Errorf("imgcore: encode %s: %w", path, err)
	}
	return nil
}

// LoadPNM reads a .pgm/.ppm file.
func LoadPNM(path string) (*Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("imgcore: open %s: %w", path, err)
	}
	defer f.Close()
	img, err := DecodePNM(f)
	if err != nil {
		return nil, fmt.Errorf("imgcore: load %s: %w", path, err)
	}
	return img, nil
}

// pnmToken reads the next whitespace-delimited token, skipping '#'
// comments (which run to end of line).
func pnmToken(br *bufio.Reader) (string, error) {
	var tok []byte
	inComment := false
	for {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && len(tok) > 0 {
				return string(tok), nil
			}
			return "", err
		}
		switch {
		case inComment:
			if b == '\n' {
				inComment = false
			}
		case b == '#':
			inComment = true
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, b)
		}
	}
}

func pnmInt(br *bufio.Reader) (int, error) {
	tok, err := pnmToken(br)
	if err != nil {
		return 0, err
	}
	v, err := strconv.Atoi(tok)
	if err != nil {
		return 0, fmt.Errorf("bad integer %q: %w", tok, err)
	}
	return v, nil
}
