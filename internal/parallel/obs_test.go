package parallel

import (
	"context"
	"testing"

	"decamouflage/internal/obs"
)

// TestForCounters pins the substrate metrics: calls, serial fallbacks,
// chunk tally, and the worker gauge of the last concurrent call.
func TestForCounters(t *testing.T) {
	obs.Enable()
	t.Cleanup(obs.Disable)
	if !obs.Enabled() {
		t.Skip("observability compiled out (noobs)")
	}
	calls0 := forCalls.Value()
	serial0 := forSerial.Value()
	tasks0 := forTasks.Value()

	// Serial: one worker, 10 chunks of grain 1.
	err := For(context.Background(), 10, func(lo, hi int) error { return nil }, Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := forCalls.Value() - calls0; got != 1 {
		t.Errorf("calls delta = %d, want 1", got)
	}
	if got := forSerial.Value() - serial0; got != 1 {
		t.Errorf("serial delta = %d, want 1", got)
	}
	if got := forTasks.Value() - tasks0; got != 10 {
		t.Errorf("tasks delta = %d, want 10", got)
	}

	// Concurrent: 4 workers over 8 chunks of grain 2.
	serial1 := forSerial.Value()
	err = For(context.Background(), 16, func(lo, hi int) error { return nil },
		Workers(4), Grain(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := forSerial.Value() - serial1; got != 0 {
		t.Errorf("concurrent call took the serial path %d times", got)
	}
	if got := forTasks.Value() - tasks0; got != 18 {
		t.Errorf("tasks delta = %d, want 18", got)
	}
	if got := forWorkers.Value(); got != 4 {
		t.Errorf("worker gauge = %d, want 4", got)
	}

	// n <= 0 returns before counting anything.
	calls1 := forCalls.Value()
	if err := For(context.Background(), 0, func(lo, hi int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := forCalls.Value() - calls1; got != 0 {
		t.Errorf("empty call counted %d calls", got)
	}
}
