// 2-D transform plans. A Plan2D bundles the row- and column-direction 1-D
// plans of a forward 2-D DFT for one geometry, so callers that transform
// many same-sized signals (the detection pipeline scoring a batch of
// images) resolve the plan cache once per geometry instead of twice per
// image. Executing through a Plan2D performs exactly the arithmetic of
// Transform2D/CenteredSpectrum — the plans are the same cached objects
// PlanFor returns — so planned 2-D output is bit-identical to the
// unplanned entry points.
package fourier

import (
	"context"
	"fmt"
	"math"
	"math/cmplx"
	"sync"

	"decamouflage/internal/parallel"
)

// Plan2D is an immutable forward 2-D DFT descriptor for one (W, H)
// geometry. It is safe for concurrent use, like the 1-D plans it bundles.
type Plan2D struct {
	row *Plan // length W, forward
	col *Plan // length H, forward
}

// Plan2DFor returns the forward 2-D plan for a w×h signal, drawing both
// axis plans from the shared plan cache (PlanFor).
func Plan2DFor(w, h int) (*Plan2D, error) {
	row, err := PlanFor(w, false)
	if err != nil {
		return nil, err
	}
	col, err := PlanFor(h, false)
	if err != nil {
		return nil, err
	}
	return &Plan2D{row: row, col: col}, nil
}

// Size returns the geometry the plan was built for.
func (p *Plan2D) Size() (w, h int) { return p.row.N(), p.col.N() }

// CenteredSpectrumWith is CenteredSpectrum executing through a prepared
// plan and honouring ctx cancellation in its parallel passes. A nil plan
// resolves one from the shared cache; a non-nil plan must match (w, h).
// Output is bit-identical to CenteredSpectrum for every input.
func CenteredSpectrumWith(ctx context.Context, p *Plan2D, data []float64, w, h int) ([]float64, error) {
	if len(data) != w*h {
		return nil, fmt.Errorf("fourier: data length %d does not match %dx%d", len(data), w, h)
	}
	if p == nil {
		var err error
		if p, err = Plan2DFor(w, h); err != nil {
			return nil, err
		}
	} else if pw, ph := p.Size(); pw != w || ph != h {
		return nil, fmt.Errorf("fourier: plan geometry %dx%d does not match signal %dx%d", pw, ph, w, h)
	}
	dst := make([]float64, w*h)
	if err := p.CenteredSpectrumInto(ctx, data, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// specScratch pools the complex working buffers of CenteredSpectrumInto,
// so a batch of same-geometry spectra (DetectBatch scoring many images
// through one plan) allocates its transform state once, not per image.
var specScratch = sync.Pool{New: func() any { return new([]complex128) }}

// CenteredSpectrumInto computes the centered log-magnitude spectrum of a
// real (w×h) signal into dst, both sized to the plan's geometry. It is
// the batch-amortized core of CenteredSpectrum: one pooled complex buffer
// holds the whole transform (no per-call matrix copies), the 1-D passes
// run in place through the prepared plans, and the fftshift, log(1+|F|)
// and max-normalization of Eq. 4 are fused into a single pass that writes
// dst directly. Every arithmetic step matches CenteredSpectrum — the
// shift is a pure permutation, log-magnitude is elementwise, and the
// maximum is order-independent — so output stays bit-identical to the
// unplanned entry point.
func (p *Plan2D) CenteredSpectrumInto(ctx context.Context, data []float64, dst []float64) error {
	w, h := p.Size()
	if len(data) != w*h {
		return fmt.Errorf("fourier: data length %d does not match plan geometry %dx%d", len(data), w, h)
	}
	if len(dst) != w*h {
		return fmt.Errorf("fourier: dst length %d does not match plan geometry %dx%d", len(dst), w, h)
	}
	bp := specScratch.Get().(*[]complex128)
	defer specScratch.Put(bp)
	buf := *bp
	if cap(buf) < w*h {
		buf = make([]complex128, w*h)
		*bp = buf
	}
	buf = buf[:w*h]
	for i, v := range data {
		buf[i] = complex(v, 0)
	}
	if err := transformPasses(ctx, buf, w, h, p.row, p.col); err != nil {
		return err
	}
	centeredInto(dst, buf, w, h)
	return nil
}

// centeredInto fuses Shift + LogMagnitude + max-normalization: dst at the
// shifted position receives log(1+|F|) of each spectrum element, then one
// scan normalizes by the maximum. Identical arithmetic to the composed
// form, without the two intermediate matrices.
//
//declint:hot
func centeredInto(dst []float64, spec []complex128, w, h int) {
	hw, hh := (w+1)/2, (h+1)/2
	for y := 0; y < h; y++ {
		ny := (y + h - hh) % h
		for x := 0; x < w; x++ {
			nx := (x + w - hw) % w
			dst[ny*w+nx] = math.Log1p(cmplx.Abs(spec[y*w+x]))
		}
	}
	var mx float64
	for _, v := range dst {
		if v > mx {
			mx = v
		}
	}
	if mx > 0 {
		inv := 1 / mx
		for i := range dst {
			dst[i] *= inv
		}
	}
}

// centeredFromSpectrum runs the shift/log-magnitude/normalize tail shared
// by CenteredSpectrum and CenteredSpectrumWith.
func centeredFromSpectrum(spec *Matrix) []float64 {
	logMag := LogMagnitude(Shift(spec))
	var mx float64
	for _, v := range logMag {
		if v > mx {
			mx = v
		}
	}
	if mx > 0 {
		inv := 1 / mx
		for i := range logMag {
			logMag[i] *= inv
		}
	}
	return logMag
}

// transform2DWith is transform2D with both axis plans supplied by the
// caller; transform2D resolves them from the cache and delegates here.
func transform2DWith(ctx context.Context, m *Matrix, rowPlan, colPlan *Plan, opts ...parallel.Option) (*Matrix, error) {
	out := &Matrix{W: m.W, H: m.H, Data: append([]complex128(nil), m.Data...)}
	if err := transformPasses(ctx, out.Data, m.W, m.H, rowPlan, colPlan, opts...); err != nil {
		return nil, err
	}
	return out, nil
}

// colBlock is the number of columns gathered per transpose tile in the
// blocked column pass: each tile reads colBlock contiguous elements per
// row (one cache line of complex128s) instead of striding the full matrix
// once per column.
const colBlock = 8

// transformPasses runs the forward-or-inverse 2-D passes in place on a
// row-major (w×h) complex signal: rows first, then columns through
// cache-blocked transposes. Each column chunk gathers a tile of up to
// colBlock columns into pooled column-major scratch — walking the matrix
// row by row, so every row read is contiguous — transforms each gathered
// column in place, and scatters the tile back the same way. The per-column
// arithmetic is exactly transformColumnsReference's; only the memory walk
// order changes, so results are bit-identical (pinned by the blocked-vs-
// reference equivalence test).
func transformPasses(ctx context.Context, data []complex128, w, h int, rowPlan, colPlan *Plan, opts ...parallel.Option) error {
	// Rows: each chunk transforms a disjoint band of rows in place.
	rowOpts := append([]parallel.Option{
		parallel.Grain(parallel.GrainForWidth(w, minTransformWork)),
	}, opts...)
	err := parallel.For(ctx, h, func(lo, hi int) error {
		for y := lo; y < hi; y++ {
			if err := rowPlan.Transform(data[y*w : (y+1)*w]); err != nil {
				return err
			}
		}
		return nil
	}, rowOpts...)
	if err != nil {
		return err
	}
	colOpts := append([]parallel.Option{
		parallel.Grain(parallel.GrainForWidth(h, minTransformWork)),
	}, opts...)
	return parallel.For(ctx, w, func(lo, hi int) error {
		cp := colScratch.Get().(*[]complex128)
		defer colScratch.Put(cp)
		tile := *cp
		if cap(tile) < colBlock*h {
			tile = make([]complex128, colBlock*h)
			*cp = tile
		}
		tile = tile[:colBlock*h]
		for x0 := lo; x0 < hi; x0 += colBlock {
			nb := hi - x0
			if nb > colBlock {
				nb = colBlock
			}
			gatherColumns(tile, data, w, h, x0, nb)
			for k := 0; k < nb; k++ {
				if err := colPlan.Transform(tile[k*h : (k+1)*h]); err != nil {
					return err
				}
			}
			scatterColumns(data, tile, w, h, x0, nb)
		}
		return nil
	}, colOpts...)
}

// gatherColumns copies columns [x0, x0+nb) of a row-major (w×h) matrix
// into column-major tile storage: tile[k*h+y] = data[y*w+x0+k]. The
// outer loop walks rows, so each iteration reads nb contiguous elements.
//
//declint:hot
func gatherColumns(tile, data []complex128, w, h, x0, nb int) {
	for y := 0; y < h; y++ {
		row := data[y*w+x0 : y*w+x0+nb]
		for k, v := range row {
			tile[k*h+y] = v
		}
	}
}

// scatterColumns is the inverse of gatherColumns: it writes the tile's
// columns back into rows of the row-major matrix.
//
//declint:hot
func scatterColumns(data, tile []complex128, w, h, x0, nb int) {
	for y := 0; y < h; y++ {
		row := data[y*w+x0 : y*w+x0+nb]
		for k := range row {
			row[k] = tile[k*h+y]
		}
	}
}

// transformColumnsReference is the pre-blocking column pass — gather one
// column at a time, transform, scatter — retained as the bit-equality
// reference and benchmark baseline for the blocked transposes.
func transformColumnsReference(ctx context.Context, data []complex128, w, h int, colPlan *Plan, opts ...parallel.Option) error {
	colOpts := append([]parallel.Option{
		parallel.Grain(parallel.GrainForWidth(h, minTransformWork)),
	}, opts...)
	return parallel.For(ctx, w, func(lo, hi int) error {
		cp := colScratch.Get().(*[]complex128)
		defer colScratch.Put(cp)
		col := *cp
		if cap(col) < h {
			col = make([]complex128, h)
			*cp = col
		}
		col = col[:h]
		for x := lo; x < hi; x++ {
			for y := 0; y < h; y++ {
				col[y] = data[y*w+x]
			}
			if err := colPlan.Transform(col); err != nil {
				return err
			}
			for y := 0; y < h; y++ {
				data[y*w+x] = col[y]
			}
		}
		return nil
	}, colOpts...)
}
