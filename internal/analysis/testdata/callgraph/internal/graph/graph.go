// Fixture: call-graph construction — static calls, calls through
// func-typed locals, method values, interface dispatch, and mutual
// recursion, exercised by the Index tests.
package graph

// Scorer is the dispatch interface.
type Scorer interface {
	Score(x float64) float64
}

// Linear implements Scorer on the value receiver.
type Linear struct{ K float64 }

// Score scales by K.
func (l Linear) Score(x float64) float64 { return l.K * x }

// Offset implements Scorer on the pointer receiver.
type Offset struct{ B float64 }

// Score shifts by B.
func (o *Offset) Score(x float64) float64 { return x + o.B }

// Eval dispatches through the interface.
func Eval(s Scorer, x float64) float64 {
	return s.Score(x)
}

// Apply calls through a func-typed local bound to two candidates.
func Apply(x float64, flip bool) float64 {
	f := Double
	if flip {
		f = Halve
	}
	return f(x)
}

// Double doubles.
func Double(x float64) float64 { return 2 * x }

// Halve halves.
func Halve(x float64) float64 { return x / 2 }

// Bind calls through a method value.
func Bind(l Linear, x float64) float64 {
	g := l.Score
	return g(x)
}

// Even and Odd are mutually recursive.
func Even(n int) bool {
	if n == 0 {
		return true
	}
	return Odd(n - 1)
}

// Odd is Even's counterpart.
func Odd(n int) bool {
	if n == 0 {
		return false
	}
	return Even(n - 1)
}
