// Fixture stand-in for the observability package: it reads the clock to
// stamp events but never feeds numeric output, so detprop treats it as a
// traversal barrier.
package obs

import "time"

var last time.Time

// Mark records an event timestamp.
func Mark() {
	last = time.Now()
}
