package obs

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// spanKey carries the active span through a context.
type spanKey struct{}

// Attr is one key=value annotation on a span. Values are pre-rendered
// strings so rendering needs no reflection.
type Attr struct {
	Key, Value string
}

// Span is one timed region of a trace. Spans form a tree: StartSpan under
// a traced context attaches a child to the context's span. A nil *Span is
// a valid no-op receiver, which is what StartSpan returns on untraced
// contexts — instrumented code never branches on tracing itself.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// Trace owns the root span of one traced operation (e.g. one image
// classification). Create with WithTrace, finish with End, print with
// Render.
type Trace struct {
	root *Span
}

// WithTrace starts a new trace rooted at name and returns a context that
// carries it: every StartSpan under that context records into the trace.
// Tracing is independent of the metrics flag — it is enabled purely by
// the presence of a trace in the context.
func WithTrace(ctx context.Context, name string) (context.Context, *Trace) {
	if compiledOut {
		return ctx, nil
	}
	s := &Span{name: name, start: time.Now()}
	return context.WithValue(ctx, spanKey{}, s), &Trace{root: s}
}

// Root returns the trace's root span (nil on a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// End closes the root span.
func (t *Trace) End() { t.Root().End() }

// StartSpan starts a child span under the context's active span. On a
// context with no trace it returns (ctx, nil) — a single context.Value
// miss — so instrumentation is safe on every code path.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if compiledOut {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	s := &Span{name: name, start: time.Now()}
	parent.mu.Lock()
	parent.children = append(parent.children, s)
	parent.mu.Unlock()
	return context.WithValue(ctx, spanKey{}, s), s
}

// End records the span's duration. The first call wins; later calls are
// no-ops, and rendering an unended span shows its live duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// Duration returns the recorded duration (or the live duration of a span
// not yet ended).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// Name returns the span name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Children returns a snapshot of the span's child spans, in start order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// attr appends one rendered attribute.
func (s *Span) attr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// AttrString annotates the span with a string value.
func (s *Span) AttrString(key, value string) {
	if s == nil {
		return
	}
	s.attr(key, value)
}

// AttrFloat annotates the span with a float value. The value formats with
// %.6g, matching the CLI's score output.
func (s *Span) AttrFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.attr(key, strconv.FormatFloat(v, 'g', 6, 64))
}

// AttrInt annotates the span with an integer value.
func (s *Span) AttrInt(key string, v int64) {
	if s == nil {
		return
	}
	s.attr(key, strconv.FormatInt(v, 10))
}

// AttrBool annotates the span with a boolean value.
func (s *Span) AttrBool(key string, v bool) {
	if s == nil {
		return
	}
	s.attr(key, strconv.FormatBool(v))
}

// Render writes the trace as an indented timeline, one line per span:
//
//	ensemble.detect                 12.4ms
//	  scaling/MSE          +0.1ms    8.2ms  score=123.456 attack=true
//	    downscale          +0.1ms    5.0ms
//
// The +offset column is the span's start relative to the root. A nil
// trace renders nothing.
func (t *Trace) Render(w io.Writer) error {
	root := t.Root()
	if root == nil {
		return nil
	}
	return renderSpan(w, root, root.start, 0)
}

// fmtDur rounds a duration for display: microsecond precision below 10ms,
// 10µs above, so columns stay short without hiding stage costs.
func fmtDur(d time.Duration) string {
	if d < 10*time.Millisecond {
		return d.Round(time.Microsecond).String()
	}
	return d.Round(10 * time.Microsecond).String()
}

func renderSpan(w io.Writer, s *Span, origin time.Time, depth int) error {
	s.mu.Lock()
	name := s.name
	dur := s.dur
	if !s.ended {
		dur = time.Since(s.start)
	}
	attrs := append([]Attr(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	start := s.start
	s.mu.Unlock()

	line := fmt.Sprintf("%*s%-24s", depth*2, "", name)
	if depth > 0 {
		line += fmt.Sprintf(" +%-9s", fmtDur(start.Sub(origin)))
	} else {
		line += fmt.Sprintf(" %-10s", "")
	}
	line += fmt.Sprintf(" %9s", fmtDur(dur))
	for _, a := range attrs {
		line += " " + a.Key + "=" + a.Value
	}
	if _, err := fmt.Fprintln(w, line); err != nil {
		return err
	}
	for _, c := range children {
		if err := renderSpan(w, c, origin, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// Stage couples a span with a latency histogram so a single Start/End
// pair feeds both the per-image trace (when the context is traced) and
// the aggregate metrics (when recording is enabled). The zero Stage is a
// no-op, which is what StartStage returns when both are off.
type Stage struct {
	span  *Span
	hist  *Histogram
	start time.Time
}

// StartStage begins a stage named name under ctx, recording its duration
// into h. The returned context carries the stage's span so nested stages
// become children.
func StartStage(ctx context.Context, name string, h *Histogram) (context.Context, Stage) {
	if compiledOut {
		return ctx, Stage{}
	}
	ctx, sp := StartSpan(ctx, name)
	st := Stage{span: sp, hist: h}
	switch {
	case sp != nil:
		st.start = sp.start
	case h != nil && enabled.Load():
		st.start = time.Now()
	}
	return ctx, st
}

// Span returns the stage's span (nil when the context was untraced), for
// attaching attributes.
func (st Stage) Span() *Span { return st.span }

// End closes the stage: ends the span and records the elapsed time into
// the histogram (itself gated on the metrics flag).
func (st Stage) End() {
	if st.start.IsZero() {
		return
	}
	st.span.End()
	if st.hist != nil {
		st.hist.Observe(time.Since(st.start))
	}
}
