package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// ---- shared: memoized-stage discovery ----------------------------------

// memoClosure is one compute closure handed to a memo table: the memo(...)
// call, the closure literal, and the function declaration enclosing it.
type memoClosure struct {
	pkg  *Package
	fd   *ast.FuncDecl
	call *ast.CallExpr
	lit  *ast.FuncLit
}

// memoClosures finds every `x.memo(key, func() ...)` call whose receiver
// type matches cfg.MemoTypes ("pkgpath.TypeName", suffix-matched so fixture
// mini-modules resolve like the real module). Named compute functions are
// out of scope: only literal closures are stage bodies.
func memoClosures(pkg *Package, cfg Config) []memoClosure {
	var out []memoClosure
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		for _, decl := range f.Ast.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !isMemoCall(pkg.Info, call, cfg.MemoTypes) {
					return true
				}
				for _, arg := range call.Args {
					if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						out = append(out, memoClosure{pkg: pkg, fd: fd, call: call, lit: lit})
						break
					}
				}
				return true
			})
		}
	}
	return out
}

func isMemoCall(info *types.Info, call *ast.CallExpr, memoTypes []string) bool {
	return isMethodCallOn(info, call, "memo", memoTypes)
}

// isMethodCallOn reports whether call invokes the named method on a
// receiver whose qualified type ("pkgpath.TypeName") matches one of the
// given suffixes — the shared matcher behind the memo-table and
// flight-recorder audits.
func isMethodCallOn(info *types.Info, call *ast.CallExpr, name string, typeSuffixes []string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	qual := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	for _, m := range typeSuffixes {
		if qual == m || strings.HasSuffix(qual, "/"+m) {
			return true
		}
	}
	return false
}

// ---- memopure ----------------------------------------------------------

// checkMemoPure enforces that every memoized pipeline stage is a pure
// function of its stage key: the compute closure must not write captured or
// package-level state, must not read a nondeterministic source directly,
// and must not reach one — or a package-level write — through any chain of
// module-internal calls (the detprop taint machinery, pointed at stage
// closures). Observability packages are exempt barriers: stage spans read
// clocks but never feed the memoized value.
func checkMemoPure(pkgs []*Package, cfg Config, ix *Index) []Finding {
	skipObs := func(p string) bool { return pathMatchesAny(p, cfg.TaintExemptPkgs) }
	sources := newReachFinder(ix, skipObs, func(fx *FuncEffects) *Site {
		if len(fx.Sources) > 0 {
			return &fx.Sources[0]
		}
		return nil
	})
	gwrites := newReachFinder(ix, skipObs, func(fx *FuncEffects) *Site {
		if len(fx.GlobalWrites) > 0 {
			return &fx.GlobalWrites[0]
		}
		return nil
	})

	var out []Finding
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Path, "_test") {
			continue
		}
		for _, mc := range memoClosures(pkg, cfg) {
			out = append(out, memoPureClosure(mc, sources, gwrites, ix)...)
		}
	}
	return out
}

func memoPureClosure(mc memoClosure, sources, gwrites *reachFinder, ix *Index) []Finding {
	pkg, lit := mc.pkg, mc.lit
	info := pkg.Info
	var out []Finding
	report := func(n ast.Node, msg string) {
		out = append(out, Finding{Check: "memopure", Pos: pkg.pos(n), Msg: msg})
	}

	checkWrite := func(lhs ast.Expr) {
		obj := rootObj(info, lhs)
		v, ok := obj.(*types.Var)
		if !ok || declaredWithin(v, lit) {
			return
		}
		what := "captured " + v.Name()
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			what = "package-level " + v.Name()
		}
		report(lhs, "stage compute closure writes "+what+
			"; a memoized stage must be a pure function of its stage key")
	}

	funcVars := collectFuncVars(info, mc.fd)
	seenSite := map[string]bool{}
	once := func(pos token.Position) bool {
		key := fmt.Sprintf("%s:%d:%d", pos.Filename, pos.Line, pos.Column)
		if seenSite[key] {
			return false
		}
		seenSite[key] = true
		return true
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				for _, lhs := range n.Lhs {
					checkWrite(lhs)
				}
			}
		case *ast.IncDecStmt:
			checkWrite(n.X)
		case *ast.SelectorExpr:
			if selectsPkgFunc(info, n, "time", "Now") {
				report(n, "stage compute closure reads time.Now; "+
					"encode the dependence in the stage key or remove it")
			} else if pn := pkgNameOf(info, n.X); pn != nil {
				if p := pn.Imported().Path(); p == "math/rand" || p == "math/rand/v2" {
					report(n, "stage compute closure reads math/rand; "+
						"encode the dependence in the stage key or remove it")
				}
			}
		case *ast.CallExpr:
			pos := pkg.pos(n)
			for _, target := range resolveCallTargets(info, n.Fun, funcVars) {
				for _, id := range ix.expand(target) {
					if t := sources.find(id); t != nil && once(pos) {
						report(n, fmt.Sprintf("stage compute closure calls %s, which reaches %s at %s:%d (via %s); "+
							"a memoized stage must be a pure function of its stage key",
							shortID(id), t.site.Kind,
							filepath.Base(t.site.Pos.Filename), t.site.Pos.Line, t.chainVia()))
					}
					if t := gwrites.find(id); t != nil && once(pos) {
						report(n, fmt.Sprintf("stage compute closure calls %s, which reaches a %s at %s:%d (via %s); "+
							"a memoized stage must not mutate state outside the table",
							shortID(id), t.site.Kind,
							filepath.Base(t.site.Pos.Filename), t.site.Pos.Line, t.chainVia()))
					}
				}
			}
		}
		return true
	})
	return out
}

// ---- obscover ----------------------------------------------------------

// checkObsCover keeps instrumentation from rotting: every memoized pipeline
// stage must open an obs stage span (obs.StartStage with a real histogram)
// inside its compute closure, every cache built with cache.NewLRU must be
// registered with real obs cache stats rather than nil, and every
// flight-recorder event must be emitted inside an active span so it
// carries a trace ID and stage attribution (obsCoverEvents).
func checkObsCover(pkgs []*Package, cfg Config, ix *Index) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Path, "_test") {
			continue
		}
		for _, mc := range memoClosures(pkg, cfg) {
			out = append(out, obsCoverStage(mc, cfg)...)
		}
		out = append(out, obsCoverEvents(pkg, cfg)...)
		for _, f := range pkg.Files {
			if f.Test {
				continue
			}
			ast.Inspect(f.Ast, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fun := ast.Unparen(call.Fun)
				switch g := fun.(type) {
				case *ast.IndexExpr:
					fun = ast.Unparen(g.X)
				case *ast.IndexListExpr:
					fun = ast.Unparen(g.X)
				}
				if !selectsPkgFuncSuffix(pkg.Info, fun, cfg.CachePkg, "NewLRU") {
					return true
				}
				if len(call.Args) < 2 {
					return true
				}
				stats := call.Args[len(call.Args)-1]
				if tv, ok := pkg.Info.Types[stats]; ok && tv.IsNil() {
					out = append(out, Finding{
						Check: "obscover", Pos: pkg.pos(call),
						Msg: "cache constructed with nil stats; pass obs.NewCacheStats " +
							"so hit rates stay observable",
					})
				}
				return true
			})
		}
	}
	return out
}

func obsCoverStage(mc memoClosure, cfg Config) []Finding {
	pkg := mc.pkg
	var out []Finding
	sawStart := false
	ast.Inspect(mc.lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !selectsPkgFuncSuffix(pkg.Info, ast.Unparen(call.Fun), cfg.ObsPkg, "StartStage") {
			return true
		}
		sawStart = true
		if len(call.Args) > 0 {
			last := call.Args[len(call.Args)-1]
			if tv, ok := pkg.Info.Types[last]; ok && tv.IsNil() {
				out = append(out, Finding{
					Check: "obscover", Pos: pkg.pos(call),
					Msg: "stage opens its span with a nil histogram; " +
						"register a real obs histogram so stage latency is recorded",
				})
			}
		}
		return true
	})
	if !sawStart {
		out = append(out, Finding{
			Check: "obscover", Pos: pkg.pos(mc.call),
			Msg: "memoized stage records no obs span; call obs.StartStage " +
				"with the stage's histogram inside the compute closure",
		})
	}
	return out
}

// obsCoverEvents keeps wide events attributable: any function outside the
// obs package that calls Record on a flight recorder (cfg.RecorderTypes)
// must have opened an obs span lexically earlier in the same function —
// via ObsPkg's StartSpan or StartStage — else the event it emits carries
// no trace ID and no stage tree, and the exemplar/trace/event linkage the
// recorder exists for is silently severed. The obs package itself is
// exempt: the runtime watchdog records health events that belong to no
// request and so have no span to sit inside.
func obsCoverEvents(pkg *Package, cfg Config) []Finding {
	if len(cfg.RecorderTypes) == 0 {
		return nil
	}
	if cfg.ObsPkg != "" &&
		(pkg.HasSuffix(cfg.ObsPkg) || pkg.HasSuffix(cfg.ObsPkg+"_test")) {
		return nil
	}
	var out []Finding
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		for _, decl := range f.Ast.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var starts []token.Pos
			var records []*ast.CallExpr
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fun := ast.Unparen(call.Fun)
				if selectsPkgFuncSuffix(pkg.Info, fun, cfg.ObsPkg, "StartStage") ||
					selectsPkgFuncSuffix(pkg.Info, fun, cfg.ObsPkg, "StartSpan") {
					starts = append(starts, call.Pos())
					return true
				}
				if isMethodCallOn(pkg.Info, call, "Record", cfg.RecorderTypes) {
					records = append(records, call)
				}
				return true
			})
			for _, call := range records {
				covered := false
				for _, p := range starts {
					if p < call.Pos() {
						covered = true
						break
					}
				}
				if !covered {
					out = append(out, Finding{
						Check: "obscover", Pos: pkg.pos(call),
						Msg: "flight-recorder event emitted outside an active span; " +
							"open one with obs.StartSpan or obs.StartStage first so " +
							"the event carries a trace ID and stage attribution",
					})
				}
			}
		}
	}
	return out
}
