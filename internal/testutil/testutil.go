// Package testutil holds the repository's intentional exact-equality
// helpers. Decamouflage's serial-vs-parallel equivalence suites assert
// BIT-IDENTICAL output — approximate comparison would mask the exact class
// of nondeterminism they exist to catch — and expected-value tests pin
// results computed by construction. Those are the only two places exact
// float comparison is correct, so declint's floateq check allowlists this
// package alone; every other ==/!= on floats is a finding. Routing an
// assertion through these helpers is an explicit statement that exact
// equality is the point.
package testutil

// BitEqual reports whether a and b are exactly equal. NaN compares unequal
// to everything including itself, matching IEEE-754 ==; callers asserting
// NaN propagation should compare math.IsNaN results instead.
func BitEqual(a, b float64) bool { return a == b }

// BitEqual32 is BitEqual for float32 operands.
func BitEqual32(a, b float32) bool { return a == b }

// BitEqualComplex reports exact equality of both parts.
func BitEqualComplex(a, b complex128) bool { return a == b }

// FirstDiff returns the index of the first pair of samples that are not
// exactly equal, or -1 when the slices match element-wise. Slices of
// different lengths differ at the first index past the shorter one.
func FirstDiff(a, b []float64) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}

// FirstDiffComplex is FirstDiff over complex128 slices.
func FirstDiffComplex(a, b []complex128) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}
