// Package benchfmt parses `go test -bench` text output into structured
// results. It backs cmd/benchjson (archiving benchmark runs as JSON
// artifacts) and cmd/benchguard (failing CI when the observability
// layer's disabled-mode overhead exceeds its budget), so both tools agree
// on one parser.
package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name as printed, including any -N GOMAXPROCS
	// suffix and sub-benchmark path.
	Name string `json:"name"`
	// Iterations is b.N for the measured run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported ns/op.
	NsPerOp float64 `json:"ns_op"`
	// BytesPerOp is the reported B/op; -1 when the benchmark did not run
	// with -benchmem or ReportAllocs.
	BytesPerOp int64 `json:"bytes_op"`
	// AllocsPerOp is the reported allocs/op; -1 when absent.
	AllocsPerOp int64 `json:"allocs_op"`
	// MBPerSec is the reported MB/s; 0 when absent.
	MBPerSec float64 `json:"mb_s,omitempty"`
}

// Document is the JSON artifact cmd/benchjson emits.
type Document struct {
	// Date is the run date (CI passes the commit date).
	Date string `json:"date"`
	// GoVersion is the toolchain that produced the numbers.
	GoVersion string `json:"go_version"`
	// Env identifies the machine that produced the numbers; nil on
	// snapshots archived before the field existed (those were produced on
	// the reference container documented in bench/README.md).
	Env *Environment `json:"env,omitempty"`
	// Benchmarks holds the parsed results in input order.
	Benchmarks []Result `json:"benchmarks"`
}

// Parse extracts benchmark result lines from go test output. A result
// line is `Benchmark<Name>[-P] <N> <value> <unit> [<value> <unit>]...`;
// everything else is skipped. Unknown units are ignored so future testing
// package additions do not break parsing.
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// The second field must be the iteration count; "Benchmarking..."
		// chatter and similar noise fails this and is skipped.
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: fields[0], Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				if res.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
					return nil, fmt.Errorf("line %q: bad ns/op %q", sc.Text(), val)
				}
				ok = true
			case "B/op":
				if res.BytesPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
					return nil, fmt.Errorf("line %q: bad B/op %q", sc.Text(), val)
				}
			case "allocs/op":
				if res.AllocsPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
					return nil, fmt.Errorf("line %q: bad allocs/op %q", sc.Text(), val)
				}
			case "MB/s":
				if res.MBPerSec, err = strconv.ParseFloat(val, 64); err != nil {
					return nil, fmt.Errorf("line %q: bad MB/s %q", sc.Text(), val)
				}
			}
		}
		if ok {
			out = append(out, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// BaseName strips the -N GOMAXPROCS suffix the testing package appends,
// so "BenchmarkDetectDisabled-8" selects as "BenchmarkDetectDisabled".
// Sub-benchmark path segments are kept.
func BaseName(name string) string {
	if i := strings.LastIndex(name, "-"); i >= 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// Select returns the results whose base name equals base, in input order —
// with `go test -count=N` that is the N repetitions of one benchmark.
func Select(rs []Result, base string) []Result {
	var out []Result
	for _, r := range rs {
		if BaseName(r.Name) == base {
			out = append(out, r)
		}
	}
	return out
}

// MedianNsPerOp returns the median ns/op of the results (the robust
// center cmd/benchguard compares); it returns 0 on an empty slice. An
// even count averages the two central values.
func MedianNsPerOp(rs []Result) float64 {
	if len(rs) == 0 {
		return 0
	}
	vals := make([]float64, len(rs))
	for i, r := range rs {
		vals[i] = r.NsPerOp
	}
	sort.Float64s(vals)
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[mid]
	}
	return (vals[mid-1] + vals[mid]) / 2
}

// MedianAllocsPerOp returns the median allocs/op across the results that
// reported one (AllocsPerOp >= 0); results without -benchmem/ReportAllocs
// data are skipped. It returns -1 when no result carries allocation data.
// An even count averages the two central values, rounding down — allocs
// are integral and the guard comparisons are strict inequalities.
func MedianAllocsPerOp(rs []Result) int64 {
	var vals []int64
	for _, r := range rs {
		if r.AllocsPerOp >= 0 {
			vals = append(vals, r.AllocsPerOp)
		}
	}
	if len(vals) == 0 {
		return -1
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[mid]
	}
	return (vals[mid-1] + vals[mid]) / 2
}
