// Fixture stand-in for the observability package: just enough surface for
// the event-in-span rule — the flight recorder, the two span starters,
// and a watchdog-style emitter that is exempt because it lives in obs.
package obs

// Event is one wide flight-recorder event.
type Event struct {
	Name string
}

// Recorder is the flight-recorder ring.
type Recorder struct {
	events []Event
}

// Record appends one event.
func (r *Recorder) Record(ev Event) {
	r.events = append(r.events, ev)
}

var current = &Recorder{}

// Events returns the installed recorder.
func Events() *Recorder { return current }

// Span is an open span handle.
type Span struct{ name string }

// End closes the span.
func (s *Span) End() {}

// StartSpan opens a plain span.
func StartSpan(name string) *Span { return &Span{name: name} }

// StartStage opens a stage span.
func StartStage(name string) *Span { return &Span{name: name} }

// watchdogTick records a health event that belongs to no request: silent,
// the obs package is exempt from the event-in-span rule.
func watchdogTick(r *Recorder) {
	r.Record(Event{Name: "watchdog"})
}
