// Command decamouflage classifies images as benign or image-scaling
// attacks.
//
// The steganalysis method (CSP) runs with no calibration; the scaling and
// filtering methods join the ensemble when a calibration file (produced by
// cmd/calibrate) is supplied. Alternatively -system loads a full
// SystemConfig (cmd/calibrate -system), which also carries persisted
// observability settings; individual obs flags override the config.
//
// Usage:
//
//	decamouflage -dst 224x224 image.png ...
//	decamouflage -dst 224x224 -calibration cal.json -alg bilinear image.png
//	decamouflage -dst 32x32 -dir ./uploads -json
//	decamouflage -dst 32x32 -calibration cal.json -v -metrics-out=- image.png
//	decamouflage -system sys.json -httpdebug localhost:6060 -dir ./uploads
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"decamouflage/internal/cliutil"
	"decamouflage/internal/detect"
	"decamouflage/internal/imgcore"
	"decamouflage/internal/obs"
	"decamouflage/internal/scaling"
	"decamouflage/internal/steg"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "decamouflage:", err)
		os.Exit(1)
	}
}

type result struct {
	Path    string  `json:"path"`
	Attack  bool    `json:"attack"`
	Votes   int     `json:"votes"`
	Methods int     `json:"methods"`
	CSP     float64 `json:"csp"`
	Detail  string  `json:"detail,omitempty"`
	// TargetEstimate is the forensic estimate of the attacker's intended
	// model-input geometry ("WxH"), present only for flagged images whose
	// spectrum shows measurable replicas.
	TargetEstimate string `json:"target_estimate,omitempty"`

	// verdict and thresholds feed the -v report; they stay out of the
	// JSON output.
	verdict    *detect.EnsembleVerdict
	thresholds map[string]detect.Threshold
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("decamouflage", flag.ContinueOnError)
	var (
		dst      = fs.String("dst", "224x224", "model input geometry WxH (the protected scaler's output)")
		alg      = fs.String("alg", "bilinear", "scaling algorithm used by the protected pipeline")
		calPath  = fs.String("calibration", "", "calibration JSON from cmd/calibrate (enables scaling+filtering methods)")
		sysPath  = fs.String("system", "", "system config JSON from cmd/calibrate -system (replaces -dst/-alg/-calibration)")
		dir      = fs.String("dir", "", "scan every PNG/JPEG in a directory")
		asJSON   = fs.Bool("json", false, "emit JSON lines")
		strictly = fs.Bool("strict", false, "exit nonzero when any attack is detected")

		verbose    = fs.Bool("v", false, "print per-method scores, thresholds and the stage timeline")
		traceFlag  = fs.Bool("trace", false, "print the span timeline of every image")
		metricsOut = fs.String("metrics-out", "", `dump metrics on exit to this file ("-" for stdout)`)
		metricsFmt = fs.String("metrics-format", "", "metrics dump format: json (default) or prom")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file on exit")
		httpDebug  = fs.String("httpdebug", "", "serve /healthz, /metrics, /debug/events and /debug/pprof on this address")

		eventsOut   = fs.String("events-out", "", `dump flight-recorder events as NDJSON on exit ("-" for stdout)`)
		eventsBuf   = fs.Int("events-buffer", 0, "flight-recorder ring capacity (implies recording; default 1024)")
		traceKeep   = fs.Int("trace-keep", 0, "retain up to this many sampled traces (implies tail sampling)")
		traceOut    = fs.String("trace-out", "", `dump retained traces as NDJSON on exit ("-" for stdout)`)
		traceSample = fs.Float64("trace-sample", 0, "probability of retaining an unremarkable trace (errors/records/slow always kept)")
		watchdog    = fs.Bool("watchdog", false, "sample runtime health (GC, heap, goroutines, scheduler lag) into gauges")
		watchdogMs  = fs.Int("watchdog-interval", 0, "watchdog sampling interval in milliseconds (default 1000)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if *dir != "" {
		entries, err := os.ReadDir(*dir)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			ext := strings.ToLower(filepath.Ext(e.Name()))
			if ext == ".png" || ext == ".jpg" || ext == ".jpeg" {
				paths = append(paths, filepath.Join(*dir, e.Name()))
			}
		}
	}
	if len(paths) == 0 {
		return fmt.Errorf("no images given (pass files or -dir)")
	}
	dstW, dstH, err := cliutil.ParseSize(*dst)
	if err != nil {
		return err
	}
	algorithm, err := scaling.ParseAlgorithm(*alg)
	if err != nil {
		return err
	}

	var sysCfg *detect.SystemConfig
	if *sysPath != "" {
		data, err := os.ReadFile(*sysPath)
		if err != nil {
			return err
		}
		sysCfg, err = detect.UnmarshalSystemConfig(data)
		if err != nil {
			return err
		}
	}

	var cal *detect.Calibration
	if *calPath != "" && sysCfg == nil {
		cal, err = cliutil.LoadCalibration(*calPath)
		if err != nil {
			return err
		}
	}

	// Observability: the persisted config is the base, flags win.
	settings := obsSettings(sysCfg, obs.Settings{
		MetricsOut:         *metricsOut,
		MetricsFormat:      *metricsFmt,
		CPUProfile:         *cpuProfile,
		MemProfile:         *memProfile,
		DebugAddr:          *httpDebug,
		EventsOut:          *eventsOut,
		EventBuffer:        *eventsBuf,
		TraceKeep:          *traceKeep,
		TraceOut:           *traceOut,
		TraceSample:        *traceSample,
		Watchdog:           *watchdog,
		WatchdogIntervalMs: *watchdogMs,
	})
	sess, err := settings.Apply()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sess.Close(); err == nil {
			err = cerr
		}
	}()
	if addr := sess.DebugAddr(); addr != "" {
		fmt.Fprintln(os.Stderr, "decamouflage: debug server on http://"+addr)
	}

	// With -system the ensemble is fixed; otherwise it is rebuilt per
	// image because the scaling coefficients depend on the input geometry.
	var sysEns *detect.Ensemble
	var sysThs map[string]detect.Threshold
	if sysCfg != nil {
		sysEns, err = detect.BuildSystem(sysCfg)
		if err != nil {
			return err
		}
		sysThs = systemThresholds(sysCfg)
	}

	ctx := context.Background()
	attacks := 0
	for _, p := range paths {
		img, err := imgcore.Load(p)
		if err != nil {
			return err
		}
		ens, ths, detail := sysEns, sysThs, ""
		if ens == nil {
			ens, ths, detail, err = buildEnsemble(img, dstW, dstH, algorithm, cal)
			if err != nil {
				return fmt.Errorf("%s: %w", p, err)
			}
		}
		ictx := ctx
		var tr *obs.Trace
		if *verbose || *traceFlag {
			ictx, tr = obs.WithTrace(ctx, "classify "+filepath.Base(p))
		}
		res, err := classify(ictx, img, ens, ths, detail)
		tr.End()
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		res.Path = p
		if res.Attack {
			attacks++
		}
		if *asJSON {
			data, err := json.Marshal(res)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, string(data))
		} else {
			label := "BENIGN"
			if res.Attack {
				label = "ATTACK"
			}
			extra := res.Detail
			if res.TargetEstimate != "" {
				extra += ", attacker target ~" + res.TargetEstimate
			}
			fmt.Fprintf(out, "%-6s %s (votes %d/%d, CSP=%.0f%s)\n",
				label, p, res.Votes, res.Methods, res.CSP, extra)
		}
		if *verbose {
			if err := printVerbose(out, res); err != nil {
				return err
			}
		}
		if tr != nil {
			if err := tr.Render(out); err != nil {
				return err
			}
		}
	}
	if *strictly && attacks > 0 {
		return fmt.Errorf("%d attack image(s) detected", attacks)
	}
	return nil
}

// obsSettings merges the CLI observability flags over the system config's
// persisted settings; any flag given on the command line wins.
func obsSettings(cfg *detect.SystemConfig, flags obs.Settings) obs.Settings {
	var s obs.Settings
	if cfg != nil && cfg.Obs != nil {
		s = *cfg.Obs
	}
	if flags.MetricsOut != "" {
		s.MetricsOut = flags.MetricsOut
	}
	if flags.MetricsFormat != "" {
		s.MetricsFormat = flags.MetricsFormat
	}
	if flags.CPUProfile != "" {
		s.CPUProfile = flags.CPUProfile
	}
	if flags.MemProfile != "" {
		s.MemProfile = flags.MemProfile
	}
	if flags.DebugAddr != "" {
		s.DebugAddr = flags.DebugAddr
	}
	if flags.EventsOut != "" {
		s.EventsOut = flags.EventsOut
	}
	if flags.EventBuffer > 0 {
		s.EventBuffer = flags.EventBuffer
	}
	if flags.TraceKeep > 0 {
		s.TraceKeep = flags.TraceKeep
	}
	if flags.TraceOut != "" {
		s.TraceOut = flags.TraceOut
	}
	if flags.TraceSample > 0 {
		s.TraceSample = flags.TraceSample
	}
	if flags.Watchdog {
		s.Watchdog = true
	}
	if flags.WatchdogIntervalMs > 0 {
		s.WatchdogIntervalMs = flags.WatchdogIntervalMs
	}
	return s
}

// systemThresholds returns the config's decision boundaries keyed by
// method, filling in the paper's fixed CSP rule when unconfigured.
func systemThresholds(cfg *detect.SystemConfig) map[string]detect.Threshold {
	ths := make(map[string]detect.Threshold, len(cfg.Thresholds)+1)
	for name, th := range cfg.Thresholds {
		ths[name] = th
	}
	if _, ok := ths["steganalysis/CSP"]; !ok {
		ths["steganalysis/CSP"] = detect.DefaultCSPThreshold()
	}
	return ths
}

// buildEnsemble assembles the richest detector set the flag-level
// configuration allows for one image's geometry.
func buildEnsemble(img *imgcore.Image, dstW, dstH int, alg scaling.Algorithm, cal *detect.Calibration) (*detect.Ensemble, map[string]detect.Threshold, string, error) {
	var detectors []*detect.Detector
	ths := make(map[string]detect.Threshold)
	detail := ""

	stegTh := detect.DefaultCSPThreshold()
	stegDet, err := detect.NewDetector(detect.NewStegScorer(steg.Options{}), stegTh)
	if err != nil {
		return nil, nil, "", err
	}
	detectors = append(detectors, stegDet)
	ths["steganalysis/CSP"] = stegTh

	if cal != nil {
		scaler, err := scaling.NewScaler(img.W, img.H, dstW, dstH, scaling.Options{Algorithm: alg})
		if err != nil {
			return nil, nil, "", err
		}
		if th, ok := cal.Get("scaling/MSE"); ok {
			sc, err := detect.NewScalingScorer(scaler, detect.MSE)
			if err != nil {
				return nil, nil, "", err
			}
			d, err := detect.NewDetector(sc, th)
			if err != nil {
				return nil, nil, "", err
			}
			detectors = append(detectors, d)
			ths["scaling/MSE"] = th
		}
		if th, ok := cal.Get("filtering/SSIM"); ok {
			fc, err := detect.NewFilteringScorer(2, detect.SSIM)
			if err != nil {
				return nil, nil, "", err
			}
			d, err := detect.NewDetector(fc, th)
			if err != nil {
				return nil, nil, "", err
			}
			detectors = append(detectors, d)
			ths["filtering/SSIM"] = th
		}
	} else {
		detail = ", steganalysis only"
	}
	ens, err := detect.NewEnsemble(detectors...)
	if err != nil {
		return nil, nil, "", err
	}
	return ens, ths, detail, nil
}

// classify majority-votes the ensemble over one image and, for flagged
// images, estimates the attacker's target geometry.
func classify(ctx context.Context, img *imgcore.Image, ens *detect.Ensemble, ths map[string]detect.Threshold, detail string) (*result, error) {
	v, err := ens.Detect(ctx, img)
	if err != nil {
		return nil, err
	}
	res := &result{
		Attack: v.Attack, Votes: v.Votes, Methods: len(v.Verdicts),
		Detail: detail, verdict: v, thresholds: ths,
	}
	for _, verdict := range v.Verdicts {
		if verdict.Method == "steganalysis/CSP" {
			res.CSP = verdict.Score
		}
	}
	if v.Attack {
		if w, h, ok := steg.EstimateTargetSize(img, steg.Options{}); ok {
			res.TargetEstimate = fmt.Sprintf("%dx%d", w, h)
		}
	}
	return res, nil
}

// printVerbose writes the per-method breakdown: score, calibrated
// threshold, and each method's decision.
func printVerbose(out io.Writer, res *result) error {
	for _, vd := range res.verdict.Verdicts {
		line := fmt.Sprintf("  %-20s score %-14.6g", vd.Method, vd.Score)
		if th, ok := res.thresholds[vd.Method]; ok {
			line += fmt.Sprintf(" threshold %s %-12.6g", dirSymbol(th.Direction), th.Value)
		}
		cls := "benign"
		if vd.Attack {
			cls = "attack"
		}
		if _, err := fmt.Fprintln(out, line+" -> "+cls); err != nil {
			return err
		}
	}
	return nil
}

// dirSymbol renders a threshold direction as the comparison the detector
// applies to the score.
func dirSymbol(d detect.Direction) string {
	switch d {
	case detect.Above:
		return ">="
	case detect.Below:
		return "<="
	default:
		return "?"
	}
}
