// Package decamouflage is the public API of this reproduction of
// "Decamouflage: A Framework to Detect Image-Scaling Attacks on
// Convolutional Neural Networks" (Kim et al., DSN 2021).
//
// Decamouflage detects image-scaling (camouflage) attacks — adversarial
// images that look benign to humans but resolve to a hidden target image
// after the downscaling step of a CNN pipeline — using three independent
// methods that can be deployed alone or majority-voted as an ensemble:
//
//   - Scaling detection: downscale then upscale; benign images survive the
//     round trip, attack images flip to the hidden target (scored by MSE or
//     SSIM).
//   - Filtering detection: a 2x2 minimum filter destroys the isolated
//     embedded pixels; the residual exposes attacks (scored by MSE/SSIM).
//   - Steganalysis detection: the attack's near-periodic pixel comb leaves
//     replicated bright peaks in the centered Fourier spectrum; counting
//     them (CSP) separates attacks (CSP >= 2) from benign images (CSP = 1)
//     with a fixed, dataset-independent threshold.
//
// # Quick start
//
//	scaler, _ := decamouflage.NewScaler(1024, 768, 224, 224, decamouflage.Bilinear)
//	det, _ := decamouflage.NewSteganalysisDetector()   // no calibration needed
//	verdict, _ := det.Detect(img)
//	if verdict.Attack {
//	    // reject the input
//	}
//
// For the calibrated scaling/filtering methods and the full ensemble, see
// CalibrateWhiteBox / CalibrateBlackBox and NewEnsemble. The heavy lifting
// lives in internal packages; this package re-exports the stable surface.
package decamouflage

import (
	"context"
	"fmt"
	"io"

	"decamouflage/internal/attack"
	"decamouflage/internal/detect"
	"decamouflage/internal/imgcore"
	"decamouflage/internal/scaling"
	"decamouflage/internal/steg"
)

// Image is the pixel container used across the API: float64 samples in
// [0,255], H×W×C.
type Image = imgcore.Image

// Verdict is a single method's decision.
type Verdict = detect.Verdict

// EnsembleVerdict is the majority-vote decision.
type EnsembleVerdict = detect.EnsembleVerdict

// Threshold is a decision boundary with a comparison direction.
type Threshold = detect.Threshold

// Metric selects a score function.
type Metric = detect.Metric

// Score metrics.
const (
	MSE  = detect.MSE
	SSIM = detect.SSIM
	PSNR = detect.PSNR
	CSP  = detect.CSP
)

// Threshold directions.
const (
	Above = detect.Above
	Below = detect.Below
)

// Algorithm selects a scaling kernel.
type Algorithm = scaling.Algorithm

// Scaling algorithms.
const (
	Nearest  = scaling.Nearest
	Bilinear = scaling.Bilinear
	Bicubic  = scaling.Bicubic
	Lanczos  = scaling.Lanczos
	Area     = scaling.Area
)

// Scaler is a prepared resizing operator (the model's preprocessing step).
type Scaler = scaling.Scaler

// Detector is one deployable detection method.
type Detector = detect.Detector

// Ensemble is the majority-voting combination of methods.
type Ensemble = detect.Ensemble

// StegOptions tunes the steganalysis (CSP) method.
type StegOptions = steg.Options

// NewScaler prepares a scaler from (srcW, srcH) to (dstW, dstH) using the
// given algorithm without antialiasing — the vulnerable OpenCV/TensorFlow
// semantics the paper targets.
func NewScaler(srcW, srcH, dstW, dstH int, alg Algorithm) (*Scaler, error) {
	return scaling.NewScaler(srcW, srcH, dstW, dstH, scaling.Options{Algorithm: alg})
}

// LoadImage reads a PNG or JPEG file.
func LoadImage(path string) (*Image, error) { return imgcore.Load(path) }

// DecodeImage reads a PNG or JPEG stream.
func DecodeImage(r io.Reader) (*Image, error) { return imgcore.Decode(r) }

// NewScalingDetector builds the Method-1 detector (downscale/upscale round
// trip) with the given metric and calibrated threshold.
func NewScalingDetector(s *Scaler, metric Metric, th Threshold) (*Detector, error) {
	scorer, err := detect.NewScalingScorer(s, metric)
	if err != nil {
		return nil, err
	}
	return detect.NewDetector(scorer, th)
}

// NewFilteringDetector builds the Method-2 detector (minimum filter
// residual) with the given window (the paper uses 2), metric and threshold.
func NewFilteringDetector(window int, metric Metric, th Threshold) (*Detector, error) {
	scorer, err := detect.NewFilteringScorer(window, metric)
	if err != nil {
		return nil, err
	}
	return detect.NewDetector(scorer, th)
}

// NewSteganalysisDetector builds the Method-3 detector with the paper's
// fixed CSP >= 2 rule — deployable with no calibration. Options may be
// omitted for the calibrated defaults.
func NewSteganalysisDetector(opts ...StegOptions) (*Detector, error) {
	var o StegOptions
	if len(opts) > 1 {
		return nil, fmt.Errorf("decamouflage: at most one StegOptions, got %d", len(opts))
	}
	if len(opts) == 1 {
		o = opts[0]
	}
	return detect.NewDetector(detect.NewStegScorer(o), detect.DefaultCSPThreshold())
}

// NewEnsemble assembles the canonical three-method Decamouflage system:
// scaling/MSE + filtering/SSIM + steganalysis/CSP under majority voting.
// The scaling and filtering thresholds come from CalibrateWhiteBox or
// CalibrateBlackBox.
func NewEnsemble(s *Scaler, scalingTh, filteringTh Threshold) (*Ensemble, error) {
	return detect.NewDefaultEnsemble(detect.DefaultConfig{
		Scaler:             s,
		ScalingThreshold:   scalingTh,
		FilteringThreshold: filteringTh,
	})
}

// ScoreScaling computes Method 1's raw score for one image.
func ScoreScaling(s *Scaler, metric Metric, img *Image) (float64, error) {
	scorer, err := detect.NewScalingScorer(s, metric)
	if err != nil {
		return 0, err
	}
	return scorer.Score(img)
}

// ScoreFiltering computes Method 2's raw score for one image.
func ScoreFiltering(window int, metric Metric, img *Image) (float64, error) {
	scorer, err := detect.NewFilteringScorer(window, metric)
	if err != nil {
		return 0, err
	}
	return scorer.Score(img)
}

// ScoreCSP computes Method 3's centered-spectrum-point count.
func ScoreCSP(img *Image, opts ...StegOptions) (int, error) {
	var o StegOptions
	if len(opts) > 1 {
		return 0, fmt.Errorf("decamouflage: at most one StegOptions, got %d", len(opts))
	}
	if len(opts) == 1 {
		o = opts[0]
	}
	return steg.CSP(img, o)
}

// CalibrateWhiteBox selects the optimal threshold from labelled benign and
// attack scores (the paper's white-box setting). It returns the threshold
// and the training accuracy achieved.
func CalibrateWhiteBox(benignScores, attackScores []float64) (Threshold, float64, error) {
	res, err := detect.CalibrateWhiteBox(benignScores, attackScores)
	if err != nil {
		return Threshold{}, 0, err
	}
	return res.Threshold, res.TrainAccuracy, nil
}

// CalibrateBlackBox selects a percentile threshold from benign scores alone
// (the paper's black-box setting). Use metric.AttackDirection() — Above for
// MSE/CSP, Below for SSIM — as the direction.
func CalibrateBlackBox(benignScores []float64, percentile float64, metric Metric) (Threshold, error) {
	return detect.CalibrateBlackBox(benignScores, percentile, metric.AttackDirection())
}

// Detect runs the ensemble on one image.
func Detect(ctx context.Context, e *Ensemble, img *Image) (*EnsembleVerdict, error) {
	if e == nil {
		return nil, fmt.Errorf("decamouflage: nil ensemble")
	}
	return e.Detect(ctx, img)
}

// DetectBatch runs the ensemble over many images concurrently (bounded by
// GOMAXPROCS, via the shared internal/parallel substrate) and returns one
// verdict per image, in order. It stops at the first error or context
// cancellation — the offline audit mode of the paper's threat model. An
// empty batch returns an empty, non-nil verdict slice.
func DetectBatch(ctx context.Context, e *Ensemble, imgs []*Image) ([]*EnsembleVerdict, error) {
	if e == nil {
		return nil, fmt.Errorf("decamouflage: nil ensemble")
	}
	return e.DetectBatch(ctx, imgs)
}

// SystemConfig is the full serializable description of a deployed
// Decamouflage system (geometry, kernel, thresholds); see BuildSystem.
type SystemConfig = detect.SystemConfig

// BuildSystem instantiates the ensemble a SystemConfig describes —
// everything a gateway needs to reconstruct its calibrated detector at
// startup.
func BuildSystem(c *SystemConfig) (*Ensemble, error) {
	return detect.BuildSystem(c)
}

// EstimateAttackTarget estimates the geometry of the hidden target inside
// a flagged attack image from its spectral replica spacing. Intended as
// forensic follow-up on images the detector flagged; see
// internal/steg.EstimateTargetSize for the caveats.
func EstimateAttackTarget(img *Image) (w, h int, ok bool) {
	return steg.EstimateTargetSize(img, steg.Options{})
}

// MatchModels returns the known CNN families (the paper's Table 1) whose
// input geometry is within tol pixels of (w, h) — turning a recovered
// attack-target size into the likely targeted model.
func MatchModels(w, h, tol int) []detect.ModelInputSize {
	return detect.MatchModels(w, h, tol)
}

// AttackConfig parameterizes CraftAttack.
type AttackConfig = attack.Config

// AttackResult reports a crafted attack image and its quality.
type AttackResult = attack.Result

// CraftAttack generates an image-scaling attack image embedding target into
// source against the given scaler (for research, testing and red-teaming;
// this is the Xiao et al. attack the detectors are evaluated against).
func CraftAttack(source, target *Image, s *Scaler, eps float64) (*AttackResult, error) {
	return attack.Craft(source, target, attack.Config{Scaler: s, Eps: eps})
}
