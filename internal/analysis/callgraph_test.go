package analysis

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// loadIndex builds the call-graph index over one fixture module.
func loadIndex(t *testing.T, name string, cfg Config) *Index {
	t.Helper()
	pkgs, err := LoadModule(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("LoadModule(%s): %v", name, err)
	}
	return BuildIndex(pkgs, cfg)
}

// TestCallGraphEdges pins how the index resolves each call shape: plain
// static calls, calls through func-typed locals with multiple candidates,
// method values, interface dispatch to every module-defined implementer,
// cross-package edges, and mutual recursion.
func TestCallGraphEdges(t *testing.T) {
	ix := loadIndex(t, "callgraph", DefaultConfig())
	const g = "callgraph/internal/graph."

	impls := ix.Implementers("iface:" + g + "Scorer.Score")
	wantImpls := []string{g + "(Linear).Score", g + "(Offset).Score"}
	if !reflect.DeepEqual(impls, wantImpls) {
		t.Errorf("Implementers(Scorer.Score) = %v, want %v", impls, wantImpls)
	}

	cases := []struct {
		root string
		want []string // exact sorted reachable set, root included
	}{
		{ // interface dispatch fans out to every implementer
			root: g + "Eval",
			want: []string{g + "(Linear).Score", g + "(Offset).Score", g + "Eval"},
		},
		{ // func-typed local bound to two candidates reaches both
			root: g + "Apply",
			want: []string{g + "Apply", g + "Double", g + "Halve"},
		},
		{ // method value resolves to the concrete method
			root: g + "Bind",
			want: []string{g + "(Linear).Score", g + "Bind"},
		},
		{ // mutual recursion terminates and covers the cycle
			root: g + "Even",
			want: []string{g + "Even", g + "Odd"},
		},
		{
			root: g + "Odd",
			want: []string{g + "Even", g + "Odd"},
		},
		{ // cross-package static edge plus the interface fan-out behind it
			root: "callgraph/internal/score.Best",
			want: []string{
				g + "(Linear).Score", g + "(Offset).Score", g + "Eval",
				"callgraph/internal/score.Best",
			},
		},
	}
	for _, tc := range cases {
		if got := ix.Reachable(tc.root); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Reachable(%s) = %v, want %v", tc.root, got, tc.want)
		}
	}

	for _, id := range []string{g + "Eval", g + "(Offset).Score", "callgraph/internal/score.Best"} {
		if ix.Funcs[id] == nil {
			t.Errorf("index has no summary for %s", id)
		}
	}
	if ids := ix.IDs(); !sortedStrings(ids) {
		t.Errorf("IDs() not sorted: %v", ids)
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return false
		}
	}
	return true
}

// TestSummaryCacheStableFindings runs a summary-driven fixture cold (writing
// the cache) and warm (reading it) and requires bit-identical findings: the
// on-disk summaries must round-trip every field the checks consume.
func TestSummaryCacheStableFindings(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheDir = t.TempDir()
	cold := loadFixture(t, "hotalloc", cfg)
	if len(cold) == 0 {
		t.Fatal("cold run produced no findings; fixture or checks are broken")
	}
	entries, err := os.ReadDir(cfg.CacheDir)
	if err != nil {
		t.Fatal(err)
	}
	summaries := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".json") {
			summaries++
		}
	}
	if summaries == 0 {
		t.Fatal("cold run wrote no summary files")
	}
	warm := loadFixture(t, "hotalloc", cfg)
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("warm-cache findings differ\ncold:\n  %s\nwarm:\n  %s",
			strings.Join(cold, "\n  "), strings.Join(warm, "\n  "))
	}
}

// TestCacheIgnoresStaleSchema: a cache entry with the wrong schema or path
// must be recomputed, not trusted. Simulated by corrupting every summary
// in place and re-running: findings must still match the cold run.
func TestCacheIgnoresCorruptEntries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheDir = t.TempDir()
	cold := loadFixture(t, "hotalloc", cfg)
	entries, err := os.ReadDir(cfg.CacheDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		p := filepath.Join(cfg.CacheDir, e.Name())
		if err := os.WriteFile(p, []byte(`{"schema":-1}`), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	again := loadFixture(t, "hotalloc", cfg)
	if !reflect.DeepEqual(cold, again) {
		t.Errorf("corrupt cache changed findings\ncold:\n  %s\ngot:\n  %s",
			strings.Join(cold, "\n  "), strings.Join(again, "\n  "))
	}
}
