// Fixture: a cross-package static edge into the dispatching package, so
// reachability from here spans package boundary plus interface dispatch.
package score

import "callgraph/internal/graph"

// Best evaluates through graph.Eval.
func Best(x float64) float64 {
	return graph.Eval(graph.Linear{K: 1}, x)
}
