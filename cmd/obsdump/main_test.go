package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"decamouflage/internal/obs"
)

// writeNDJSON marshals one value per line into dir/name and returns the path.
func writeNDJSON[T any](t *testing.T, dir, name string, vals []T) string {
	t.Helper()
	var sb strings.Builder
	for _, v := range vals {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		sb.Write(b)
		sb.WriteByte('\n')
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func testEvents() []obs.Event {
	stages := func(total int64) []obs.StageDur {
		return []obs.StageDur{
			{Name: "ensemble.detect", Depth: 0, DurNs: total},
			{Name: "scaling/MSE", Depth: 1, OffsetNs: 1000, DurNs: total / 2},
			{Name: "downscale", Depth: 2, OffsetNs: 1200, DurNs: total / 4},
			{Name: "filtering/SSIM", Depth: 1, OffsetNs: 1100, DurNs: total / 3},
		}
	}
	return []obs.Event{
		{
			Seq: 1, TraceID: "tr-1", Name: "ensemble.detect", UnixNs: 100,
			DurNs: 4_000_000, W: 64, H: 64, C: 3, Verdict: "benign", Votes: 0,
			Methods: []obs.MethodResult{
				{Method: "scaling/MSE", Score: 40, Threshold: 100, Direction: ">", Margin: 60},
			},
			Stages: stages(4_000_000), MemoMisses: 3,
		},
		{
			Seq: 2, TraceID: "tr-2", Name: "ensemble.detect", UnixNs: 200,
			DurNs: 9_000_000, W: 64, H: 64, C: 3, Verdict: "attack", Votes: 2,
			Methods: []obs.MethodResult{
				// Margin 2 on a threshold of 100: inside the 5% band.
				{Method: "scaling/MSE", Score: 102, Threshold: 100, Direction: ">", Attack: true, Margin: 2},
			},
			Stages: stages(9_000_000), Anomalies: []string{obs.AnomalyNearThreshold},
		},
		{
			Seq: 3, TraceID: "tr-3", Name: "ensemble.detect", UnixNs: 300,
			DurNs: 2_000_000, W: 64, H: 64, C: 3,
			Err: "scaling/MSE: boom", Anomalies: []string{obs.AnomalyError},
		},
		{
			Seq: 4, Name: "watchdog", UnixNs: 400,
			Anomalies: []string{obs.AnomalyWatchdog, "goroutines-high"},
			Values:    map[string]int64{"runtime.goroutines": 12000, "heap.alloc_bytes": 1 << 20},
		},
	}
}

func testTraces() []obs.RetainedTrace {
	return []obs.RetainedTrace{
		{
			ID: "tr-2", Name: "ensemble.detect", UnixNs: 200, DurNs: 9_000_000,
			Reason: obs.KeepRecord,
			Spans: []obs.StageDur{
				{Name: "ensemble.detect", Depth: 0, DurNs: 9_000_000},
				{Name: "scaling/MSE", Depth: 1, OffsetNs: 1000, DurNs: 4_500_000,
					Attrs: map[string]string{"score": "102", "attack": "true"}},
			},
		},
		{
			ID: "tr-3", Name: "ensemble.detect", UnixNs: 300, DurNs: 2_000_000,
			Reason: obs.KeepError, Err: "scaling/MSE: boom",
			Spans: []obs.StageDur{{Name: "ensemble.detect", Depth: 0, DurNs: 2_000_000}},
		},
	}
}

func TestObsdumpReport(t *testing.T) {
	dir := t.TempDir()
	ev := writeNDJSON(t, dir, "events.ndjson", testEvents())
	tr := writeNDJSON(t, dir, "traces.ndjson", testTraces())

	var sb strings.Builder
	if err := run([]string{"-events", ev, "-traces", tr}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Flight recorder report: 4 events (3 detect, 1 watchdog), 1 errored, 3 anomalous",
		"Detect latency:",
		"Per-stage latency attribution (3 detect events):",
		"ensemble.detect",
		"scaling/MSE",
		"downscale",
		"filtering/SSIM",
		"Slowest events:",
		"tr-2",
		"Borderline verdicts (within 5% of a decision boundary):",
		"Watchdog threshold crossings:",
		"goroutines-high",
		"runtime.goroutines=12000",
		"Retained traces: 2 (error=1 record=1)",
		"tr-3",
		"boom",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// The slowest event (tr-2, 9ms) sorts first in the slow list.
	slow := out[strings.Index(out, "Slowest events:"):]
	if strings.Index(slow, "tr-2") > strings.Index(slow, "tr-1") {
		t.Errorf("slow list not sorted by duration:\n%s", slow)
	}
}

func TestObsdumpRenderTrace(t *testing.T) {
	dir := t.TempDir()
	tr := writeNDJSON(t, dir, "traces.ndjson", testTraces())

	var sb strings.Builder
	if err := run([]string{"-traces", tr, "-trace", "tr-2"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"trace tr-2 (ensemble.detect, 9ms, kept: record)",
		"scaling/MSE",
		"attack=true score=102", // attrs render sorted
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace render missing %q:\n%s", want, out)
		}
	}
	if err := run([]string{"-traces", tr, "-trace", "nope"}, &sb); err == nil ||
		!strings.Contains(err.Error(), `no retained trace "nope"`) {
		t.Fatalf("unknown trace id error = %v", err)
	}
}

func TestObsdumpInputErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Fatal("no inputs accepted")
	}
	if err := run([]string{"-events", filepath.Join(t.TempDir(), "missing.ndjson")}, &sb); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.ndjson")
	if err := os.WriteFile(bad, []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-events", bad}, &sb); err == nil {
		t.Fatal("malformed NDJSON accepted")
	}
}
