// Package eval is a fixture: NOT a kernel package, so wall-clock reads are
// fine here (runtime measurement is eval's job).
package eval

import "time"

// Stamp returns the current wall-clock nanos.
func Stamp() int64 { return time.Now().UnixNano() }
