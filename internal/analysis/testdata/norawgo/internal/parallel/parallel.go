// Package parallel is a fixture: the one package allowed to own raw
// goroutines and WaitGroups, so noraw-go must stay silent here.
package parallel

import "sync"

// Do runs every task on its own goroutine.
func Do(tasks []func()) {
	var wg sync.WaitGroup
	for _, t := range tasks {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t()
		}()
	}
	wg.Wait()
}
