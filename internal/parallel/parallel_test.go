package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"decamouflage/internal/testutil"
)

// coverage runs For and records how often each index was visited.
func coverage(t *testing.T, n int, opts ...Option) []int32 {
	t.Helper()
	visits := make([]int32, n)
	err := For(context.Background(), n, func(lo, hi int) error {
		if lo < 0 || hi > n || lo >= hi {
			return fmt.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&visits[i], 1)
		}
		return nil
	}, opts...)
	if err != nil {
		t.Fatalf("For: %v", err)
	}
	return visits
}

func TestForCoversEveryIndexExactlyOnce(t *testing.T) {
	testutil.VerifyNoLeaks(t) // every worker must join before For returns
	for _, n := range []int{1, 2, 3, 7, 8, 64, 100, 1009} {
		for _, grain := range []int{1, 2, 3, 16, 1000, 5000} {
			for _, workers := range []int{1, 2, 4, 9} {
				name := fmt.Sprintf("n=%d grain=%d workers=%d", n, grain, workers)
				visits := coverage(t, n, Grain(grain), Workers(workers))
				for i, v := range visits {
					if v != 1 {
						t.Fatalf("%s: index %d visited %d times", name, i, v)
					}
				}
			}
		}
	}
}

func TestForChunkBoundariesIndependentOfWorkers(t *testing.T) {
	// Chunk boundaries must depend only on (n, grain): record the chunk set
	// at Workers(1) and require the same set at higher worker counts.
	const n, grain = 103, 10
	chunkSet := func(workers int) map[[2]int]bool {
		set := make(map[[2]int]bool)
		ch := make(chan [2]int, n)
		err := For(context.Background(), n, func(lo, hi int) error {
			ch <- [2]int{lo, hi}
			return nil
		}, Grain(grain), Workers(workers))
		if err != nil {
			t.Fatalf("For: %v", err)
		}
		close(ch)
		for c := range ch {
			set[c] = true
		}
		return set
	}
	serial := chunkSet(1)
	for _, w := range []int{2, 3, 8} {
		got := chunkSet(w)
		if len(got) != len(serial) {
			t.Fatalf("Workers(%d): %d chunks, want %d", w, len(got), len(serial))
		}
		for c := range serial {
			if !got[c] {
				t.Fatalf("Workers(%d): missing chunk %v", w, c)
			}
		}
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	called := false
	if err := For(context.Background(), 0, func(lo, hi int) error { called = true; return nil }); err != nil {
		t.Fatalf("n=0: %v", err)
	}
	if err := For(context.Background(), -3, func(lo, hi int) error { called = true; return nil }); err != nil {
		t.Fatalf("n=-3: %v", err)
	}
	if called {
		t.Fatal("fn called for empty range")
	}
	// A cancelled context surfaces even on the empty range.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := For(ctx, 0, func(lo, hi int) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled empty range: %v", err)
	}
}

func TestForReturnsLowestChunkError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	// Chunks 2 and 7 fail; the reported error must be chunk 2's, whichever
	// worker hit its error first.
	for trial := 0; trial < 50; trial++ {
		err := For(context.Background(), 10, func(lo, hi int) error {
			switch lo {
			case 2:
				return errLow
			case 7:
				return errHigh
			}
			return nil
		}, Grain(1), Workers(4))
		if err == nil {
			t.Fatal("error swallowed")
		}
		// With early stop, chunk 7 may never run; but if an error is
		// reported it must be the lowest-index one among those that fired.
		// Chunk 2 always runs before dispatch can stop only if claimed
		// first — so accept errLow always, and reject errHigh only when
		// errLow was also observed. Deterministically: errHigh alone is
		// possible only if chunk 2 never ran, which cannot happen because
		// chunks are claimed in index order.
		if !errors.Is(err, errLow) {
			t.Fatalf("trial %d: got %v, want %v", trial, err, errLow)
		}
	}
}

func TestForSerialStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	var ran []int
	err := For(context.Background(), 5, func(lo, hi int) error {
		ran = append(ran, lo)
		if lo == 2 {
			return boom
		}
		return nil
	}, Workers(1))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if len(ran) != 3 {
		t.Fatalf("ran chunks %v, want exactly [0 1 2]", ran)
	}
}

func TestForCancellationStopsDispatch(t *testing.T) {
	testutil.VerifyNoLeaks(t) // cancellation must still join every worker
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	release := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		errc <- For(ctx, 1000, func(lo, hi int) error {
			if started.Add(1) == 2 {
				cancel()
			}
			<-release
			return nil
		}, Grain(1), Workers(2))
	}()
	// Both workers enter a chunk, the second cancels, then both unblock.
	for started.Load() < 2 {
		runtime.Gosched()
	}
	close(release)
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if got := started.Load(); got > 4 {
		t.Fatalf("%d chunks started after cancellation", got)
	}
}

func TestForCompletedRunIgnoresLateCancel(t *testing.T) {
	// If every chunk finished, a cancellation that raced the tail must not
	// turn a fully-computed result into an error.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	visits := make([]int32, 8)
	err := For(ctx, 8, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&visits[i], 1)
		}
		return nil
	}, Grain(1), Workers(4))
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

func TestDoRunsAllTasksAndOrdersErrors(t *testing.T) {
	var ran [3]atomic.Bool
	tasks := []func() error{
		func() error { ran[0].Store(true); return nil },
		func() error { ran[1].Store(true); return nil },
		func() error { ran[2].Store(true); return nil },
	}
	if err := Do(context.Background(), tasks, Workers(3)); err != nil {
		t.Fatalf("Do: %v", err)
	}
	for i := range ran {
		if !ran[i].Load() {
			t.Fatalf("task %d skipped", i)
		}
	}
	if err := Do(context.Background(), nil); err != nil {
		t.Fatalf("empty Do: %v", err)
	}
	boom := errors.New("boom")
	tasks[1] = func() error { return boom }
	if err := Do(context.Background(), tasks, Workers(3)); !errors.Is(err, boom) {
		t.Fatalf("Do error = %v", err)
	}
}

func TestWorkersAndGrainOptions(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers < 1")
	}
	// Grain ignores non-positive values, Workers(0) restores the default.
	visits := coverage(t, 10, Grain(0), Grain(-5), Workers(3), Workers(0))
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

func TestGrainForWidth(t *testing.T) {
	tests := []struct {
		rowCost, minWork, want int
	}{
		{256, 1 << 14, 64},
		{1 << 20, 1 << 14, 1},
		{0, 1 << 14, 1},
		{-4, 1 << 14, 1},
		{100, 0, 1},
	}
	for _, tt := range tests {
		if got := GrainForWidth(tt.rowCost, tt.minWork); got != tt.want {
			t.Errorf("GrainForWidth(%d, %d) = %d, want %d", tt.rowCost, tt.minWork, got, tt.want)
		}
	}
}

// TestForDeterministicSum is the substrate-level equivalence property: a
// chunked floating-point map (no cross-chunk reduction) must be
// bit-identical across worker counts.
func TestForDeterministicSum(t *testing.T) {
	const n = 4096
	src := make([]float64, n)
	for i := range src {
		src[i] = float64(i%97) * 0.123456789
	}
	run := func(workers int) []float64 {
		dst := make([]float64, n)
		err := For(context.Background(), n, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				dst[i] = src[i]*src[i] + 1.5*src[i]
			}
			return nil
		}, Grain(64), Workers(workers))
		if err != nil {
			t.Fatalf("For: %v", err)
		}
		return dst
	}
	want := run(1)
	for _, w := range []int{2, 5, 16} {
		got := run(w)
		for i := range got {
			if !testutil.BitEqual(got[i], want[i]) {
				t.Fatalf("Workers(%d): index %d differs: %v vs %v", w, i, got[i], want[i])
			}
		}
	}
}
