package cache

import (
	"errors"
	"fmt"
	"testing"

	"decamouflage/internal/obs"
)

// newStats returns cache stats registered on a throwaway registry so
// tests do not pollute obs.Default.
func newStats(r *obs.Registry, prefix string) *obs.CacheStats {
	return &obs.CacheStats{
		Hits:      r.Counter(prefix + ".hits"),
		Misses:    r.Counter(prefix + ".misses"),
		Evictions: r.Counter(prefix + ".evictions"),
		Size:      r.Gauge(prefix + ".size"),
	}
}

func expectStats(t *testing.T, s *obs.CacheStats, hits, misses, evictions, size int64) {
	t.Helper()
	if got := s.Hits.Value(); got != hits {
		t.Errorf("hits = %d, want %d", got, hits)
	}
	if got := s.Misses.Value(); got != misses {
		t.Errorf("misses = %d, want %d", got, misses)
	}
	if got := s.Evictions.Value(); got != evictions {
		t.Errorf("evictions = %d, want %d", got, evictions)
	}
	if got := s.Size.Value(); got != size {
		t.Errorf("size = %d, want %d", got, size)
	}
}

func build(v int) func() (int, error) {
	return func() (int, error) { return v, nil }
}

func TestGetOrBuildHitMiss(t *testing.T) {
	c := NewLRU[string, int](4, nil)
	v, err := c.GetOrBuild("a", build(1))
	if err != nil || v != 1 {
		t.Fatalf("GetOrBuild = %d, %v", v, err)
	}
	built := false
	v, err = c.GetOrBuild("a", func() (int, error) { built = true; return 2, nil })
	if err != nil || v != 1 {
		t.Fatalf("second GetOrBuild = %d, %v; want cached 1", v, err)
	}
	if built {
		t.Fatal("hit must not invoke build")
	}
}

func TestBuildErrorNotCached(t *testing.T) {
	c := NewLRU[string, int](4, nil)
	boom := errors.New("boom")
	if _, err := c.GetOrBuild("a", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatal("failed build must cache nothing")
	}
	if v, err := c.GetOrBuild("a", build(7)); err != nil || v != 7 {
		t.Fatalf("retry after error = %d, %v", v, err)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := NewLRU[string, int](2, nil)
	mustBuild := func(k string, v int) {
		t.Helper()
		if got, err := c.GetOrBuild(k, build(v)); err != nil || got != v {
			t.Fatalf("GetOrBuild(%q) = %d, %v", k, got, err)
		}
	}
	mustBuild("a", 1)
	mustBuild("b", 2)
	mustBuild("a", 1) // touch a, making b the LRU entry
	mustBuild("c", 3) // evicts b
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	rebuilt := false
	if _, err := c.GetOrBuild("a", func() (int, error) { rebuilt = true; return 0, nil }); err != nil {
		t.Fatal(err)
	}
	if rebuilt {
		t.Fatal("a should have survived eviction")
	}
	if _, err := c.GetOrBuild("b", func() (int, error) { rebuilt = true; return 0, nil }); err != nil {
		t.Fatal(err)
	}
	if !rebuilt {
		t.Fatal("b should have been the evicted entry")
	}
}

// TestStatsSequence pins the exact counter stream for a deterministic
// serial access pattern against a capacity-2 cache.
func TestStatsSequence(t *testing.T) {
	obs.Enable()
	t.Cleanup(obs.Disable)
	if !obs.Enabled() {
		t.Skip("observability compiled out (noobs)")
	}
	r := obs.NewRegistry()
	s := newStats(r, "test.lru")
	c := NewLRU[int, int](2, s)

	get := func(k int) {
		t.Helper()
		if _, err := c.GetOrBuild(k, build(k)); err != nil {
			t.Fatal(err)
		}
	}

	get(1) // miss, size 1
	expectStats(t, s, 0, 1, 0, 1)
	get(2) // miss, size 2
	expectStats(t, s, 0, 2, 0, 2)
	get(1) // hit
	expectStats(t, s, 1, 2, 0, 2)
	get(3) // miss, evicts 2, size stays 2
	expectStats(t, s, 1, 3, 1, 2)
	get(2) // miss again (was evicted), evicts 1
	expectStats(t, s, 1, 4, 2, 2)
	get(3) // hit
	expectStats(t, s, 2, 4, 2, 2)

	c.Reset()
	if got := s.Size.Value(); got != 0 {
		t.Fatalf("size after Reset = %d, want 0", got)
	}
}

func TestCapacityFloor(t *testing.T) {
	c := NewLRU[int, int](0, nil)
	for i := 0; i < 5; i++ {
		if _, err := c.GetOrBuild(i, build(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Len(); got != 1 {
		t.Fatalf("len = %d, want 1 (capacity floored)", got)
	}
}

func TestManyKeysStayBounded(t *testing.T) {
	c := NewLRU[string, int](8, nil)
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%d", i)
		if _, err := c.GetOrBuild(k, build(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Len(); got != 8 {
		t.Fatalf("len = %d, want 8", got)
	}
}
