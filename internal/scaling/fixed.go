// Fixed-point resize fast path. When the input is an 8-bit image the
// separable resample can run in integer arithmetic: the vertical pass
// accumulates uint8 samples against Q1.15 weights into int32, and the
// horizontal pass combines those int32 intermediates against the same
// Q1.15 weights in int64 before one final float64 division by 2^30.
//
// The path is deliberately NOT bit-identical to the float64 resize —
// quantizing each weight to 15 fractional bits perturbs it by at most
// 2^-16 — but the error is tightly bounded: each pass contributes at most
// taps·255·2^-16 ≈ taps·0.0039 absolute, so the end-to-end output sits
// within ~0.006·(vTaps+hTaps) of the float64 result. The pinned contract
// (fixedTolerance, enforced by tests and the fixed-point fuzzer) is
// 0.02·(vTaps+hTaps)+0.01 — roughly 3× headroom over the analytic bound.
package scaling

import (
	"context"
	"fmt"
	"math"
	"sync"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/parallel"
)

// fixedShift is the fractional precision of the quantized weights (Q1.15:
// weight w becomes round(w·2^15)).
const fixedShift = 15

// fixedOne is the fixed-point representation of weight 1.0.
const fixedOne = 1 << fixedShift

// fixedCoeff is the flattened Q1.15 image of a Coeff: row i's taps are
// idx[starts[i]:starts[i+1]] with weights w at the same positions. The
// flat layout keeps the hot apply loops free of per-row slice headers.
type fixedCoeff struct {
	starts []int32
	idx    []int32
	w      []int32
}

// FixedTolerance returns the pinned absolute error contract of the
// fixed-point resize against the float64 path for a vertical/horizontal
// operator pair: 0.02·(vTaps+hTaps)+0.01, on [0,255] sample data.
func FixedTolerance(vert, horiz *Coeff) float64 {
	return 0.02*float64(vert.MaxTaps()+horiz.MaxTaps()) + 0.01
}

// fixed lazily quantizes the operator to Q1.15, memoized on the Coeff
// (instances are shared through CoeffFor, so every caller of the same
// geometry reuses one quantization). ok is false when any row's absolute
// fixed-weight sum could overflow the int32 pass-1 accumulator on
// [0,255] inputs — callers then stay on the float64 path.
func (c *Coeff) fixed() (fc *fixedCoeff, ok bool) {
	c.fixedOnce.Do(func() {
		n := 0
		for _, r := range c.Rows {
			n += len(r.Idx)
		}
		built := &fixedCoeff{
			starts: make([]int32, len(c.Rows)+1),
			idx:    make([]int32, 0, n),
			w:      make([]int32, 0, n),
		}
		// Pass 1 computes Σ w·src with src ≤ 255; the accumulator is an
		// int32, so each row's Σ|w_fixed| must stay below 2^31/255.
		const maxAbsSum = math.MaxInt32 / 255
		for i, r := range c.Rows {
			var absSum int64
			for k, j := range r.Idx {
				wq := int32(math.Round(r.W[k] * fixedOne))
				built.idx = append(built.idx, int32(j))
				built.w = append(built.w, wq)
				if wq < 0 {
					absSum -= int64(wq)
				} else {
					absSum += int64(wq)
				}
			}
			if absSum > maxAbsSum {
				return // c.fixedC stays nil; fixed() reports !ok forever
			}
			built.starts[i+1] = int32(len(built.idx))
		}
		c.fixedC = built
	})
	return c.fixedC, c.fixedC != nil
}

// applyFixedU8 is the Q1.15 vertical pass: dst[i] = Σ w·src over row i's
// taps, at scale 2^15.
//
//declint:hot
func applyFixedU8(fc *fixedCoeff, src []uint8, srcStride int, dst []int32, dstStride int) {
	for i := 0; i < len(fc.starts)-1; i++ {
		var s int32
		for t := fc.starts[i]; t < fc.starts[i+1]; t++ {
			s += fc.w[t] * int32(src[int(fc.idx[t])*srcStride])
		}
		dst[i*dstStride] = s
	}
}

// applyFixedU8x4 is applyFixedU8 over four adjacent columns at once:
// outputs off..off+3 of every destination row. The four samples under one
// tap are contiguous bytes, so each (weight, index) pair is fetched once
// and feeds four independent integer accumulators. Integer addition is
// exact, so the result is bit-identical to four scalar calls.
//
//declint:hot
func applyFixedU8x4(fc *fixedCoeff, src []uint8, off, srcStride int, dst []int32, dstStride int) {
	for i := 0; i < len(fc.starts)-1; i++ {
		var s0, s1, s2, s3 int32
		for t := fc.starts[i]; t < fc.starts[i+1]; t++ {
			base := int(fc.idx[t])*srcStride + off
			c := fc.w[t]
			s0 += c * int32(src[base])
			s1 += c * int32(src[base+1])
			s2 += c * int32(src[base+2])
			s3 += c * int32(src[base+3])
		}
		d := i*dstStride + off
		dst[d] = s0
		dst[d+1] = s1
		dst[d+2] = s2
		dst[d+3] = s3
	}
}

// applyFixedI32 is the Q1.15 horizontal pass over pass-1 intermediates:
// dst[i] = (Σ w·src)·invScale with an int64 accumulator (src carries
// scale 2^15, so the product carries 2^30 and invScale is 2^-30).
//
//declint:hot
func applyFixedI32(fc *fixedCoeff, src []int32, srcStride int, dst []float64, dstStride int, invScale float64) {
	for i := 0; i < len(fc.starts)-1; i++ {
		var s int64
		for t := fc.starts[i]; t < fc.starts[i+1]; t++ {
			s += int64(fc.w[t]) * int64(src[int(fc.idx[t])*srcStride])
		}
		dst[i*dstStride] = float64(s) * invScale
	}
}

// applyFixedI32c3 is the horizontal pass with the three RGB channels
// fused: one (weight, index) fetch per tap feeds three accumulators whose
// source samples are adjacent int32s. Bit-identical to three scalar
// applyFixedI32 calls (integer accumulation is exact; the single float64
// conversion per output is unchanged).
//
//declint:hot
func applyFixedI32c3(fc *fixedCoeff, src []int32, dst []float64, invScale float64) {
	for i := 0; i < len(fc.starts)-1; i++ {
		var s0, s1, s2 int64
		for t := fc.starts[i]; t < fc.starts[i+1]; t++ {
			base := int(fc.idx[t]) * 3
			c := int64(fc.w[t])
			s0 += c * int64(src[base])
			s1 += c * int64(src[base+1])
			s2 += c * int64(src[base+2])
		}
		dst[i*3] = float64(s0) * invScale
		dst[i*3+1] = float64(s1) * invScale
		dst[i*3+2] = float64(s2) * invScale
	}
}

// fixedMidPool recycles the int32 intermediate buffers of the fixed-point
// resize, mirroring midPool on the float64 path.
var fixedMidPool = sync.Pool{New: func() any { return new([]int32) }}

// ResizeU8 resamples an 8-bit image to (dstW×dstH) through the Q1.15
// fixed-point path, agreeing with Resize over FromU8(u) within
// FixedTolerance. Operators that cannot be quantized safely fall back to
// the float64 path.
func ResizeU8(u *imgcore.U8Image, dstW, dstH int, opts Options) (*imgcore.Image, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	horiz, err := CoeffFor(u.W, dstW, opts)
	if err != nil {
		return nil, err
	}
	vert, err := CoeffFor(u.H, dstH, opts)
	if err != nil {
		return nil, err
	}
	out, err := imgcore.New(dstW, dstH, u.C)
	if err != nil {
		return nil, err
	}
	if err := resizeU8Into(context.Background(), u, out, horiz, vert); err != nil {
		return nil, err
	}
	return out, nil
}

// ResizeU8Into resamples an 8-bit image into dst, which must already have
// the scaler's destination geometry and u's channel count — the
// fixed-point sibling of ResizeInto.
func (s *Scaler) ResizeU8Into(ctx context.Context, u *imgcore.U8Image, dst *imgcore.Image, popts ...parallel.Option) error {
	if err := u.Validate(); err != nil {
		return err
	}
	if err := dst.Validate(); err != nil {
		return err
	}
	if dst.W != s.dstW || dst.H != s.dstH || dst.C != u.C {
		return fmt.Errorf("%w: dst %dx%dx%d, want %dx%dx%d", ErrBadSize,
			dst.W, dst.H, dst.C, s.dstW, s.dstH, u.C)
	}
	horiz, vert := s.horiz, s.vert
	if u.W != s.srcW {
		var err error
		horiz, err = CoeffFor(u.W, s.dstW, s.opts)
		if err != nil {
			return err
		}
	}
	if u.H != s.srcH {
		var err error
		vert, err = CoeffFor(u.H, s.dstH, s.opts)
		if err != nil {
			return err
		}
	}
	return resizeU8Into(ctx, u, dst, horiz, vert, popts...)
}

// resizeU8Into applies the separable fixed-point operator: vertical pass
// into a pooled int32 intermediate, then the horizontal pass with the
// single float64 conversion at the end. Band decomposition mirrors
// resizeInto, so the result is worker-count independent. Operators whose
// quantization would overflow reroute through the float64 path.
func resizeU8Into(ctx context.Context, u *imgcore.U8Image, out *imgcore.Image, horiz, vert *Coeff, popts ...parallel.Option) error {
	vfc, vok := vert.fixed()
	hfc, hok := horiz.fixed()
	if !vok || !hok {
		wide, err := imgcore.FromU8(u)
		if err != nil {
			return err
		}
		return resizeInto(ctx, wide, out, horiz, vert, popts...)
	}
	dstW, dstH := horiz.M, vert.M
	midN := u.W * dstH * u.C
	mp := fixedMidPool.Get().(*[]int32)
	defer fixedMidPool.Put(mp)
	if cap(*mp) < midN {
		*mp = make([]int32, midN)
	}
	mid := (*mp)[:midN]
	rowStride := u.W * u.C
	vertCost := dstH * u.C * vert.MaxTaps()
	vertOpts := append([]parallel.Option{
		parallel.Grain(parallel.GrainForWidth(vertCost, minResizeWork)),
	}, popts...)
	err := parallel.For(ctx, u.W, func(xLo, xHi int) error {
		// (x, c) enumerates consecutive sample offsets, so the band is one
		// flat run of columns; the x4 kernel takes four per step.
		off, hi := xLo*u.C, xHi*u.C
		for ; off+3 < hi; off += 4 {
			applyFixedU8x4(vfc, u.Pix, off, rowStride, mid, rowStride)
		}
		for ; off < hi; off++ {
			applyFixedU8(vfc, u.Pix[off:], rowStride, mid[off:], rowStride)
		}
		return nil
	}, vertOpts...)
	if err != nil {
		return err
	}
	const invScale = 1.0 / (fixedOne * fixedOne)
	horizCost := dstW * u.C * horiz.MaxTaps()
	horizOpts := append([]parallel.Option{
		parallel.Grain(parallel.GrainForWidth(horizCost, minResizeWork)),
	}, popts...)
	return parallel.For(ctx, dstH, func(yLo, yHi int) error {
		for y := yLo; y < yHi; y++ {
			if u.C == 3 {
				applyFixedI32c3(hfc, mid[y*rowStride:], out.Pix[y*dstW*3:], invScale)
				continue
			}
			for c := 0; c < u.C; c++ {
				srcOff := y*rowStride + c
				dstOff := y*dstW*u.C + c
				applyFixedI32(hfc, mid[srcOff:], u.C, out.Pix[dstOff:], u.C, invScale)
			}
		}
		return nil
	}, horizOpts...)
}
