package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"decamouflage/internal/testutil"
)

// TestSettingsEventSession pins the Apply/Close lifecycle of the v2
// surface: EventsOut installs a recorder, trace settings install a tail
// sampler, Watchdog starts (and Stop joins) the watchdog, and Close dumps
// NDJSON files and uninstalls the globals it installed.
func TestSettingsEventSession(t *testing.T) {
	if compiledOut {
		t.Skip("observability compiled out (noobs)")
	}
	testutil.VerifyNoLeaks(t) // pins that Session.Close joins the watchdog
	t.Cleanup(Disable)
	dir := t.TempDir()
	evPath := filepath.Join(dir, "events.ndjson")
	trPath := filepath.Join(dir, "traces.ndjson")

	s := Settings{
		EventsOut:          evPath,
		TraceKeep:          8,
		TraceOut:           trPath,
		Watchdog:           true,
		WatchdogIntervalMs: 20,
	}
	sess, err := s.Apply()
	if err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("Apply with events requested did not enable metrics")
	}
	rec := sess.Recorder()
	if rec == nil || Events() != rec {
		t.Fatal("Apply did not install the session recorder")
	}
	ts := sess.Tail()
	if ts == nil || Tail() != ts {
		t.Fatal("Apply did not install the session tail sampler")
	}

	rec.Record(Event{Name: "detect", TraceID: "s-1", Verdict: "attack"})
	ts.Offer(fakeTrace("detect", "s-1", 2*time.Millisecond), nil)

	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if Events().Active() || Tail().Active() {
		t.Fatal("Close did not uninstall the recorder/sampler")
	}

	ev, err := os.ReadFile(evPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(ev), `"trace_id":"s-1"`) {
		t.Fatalf("events dump missing event: %q", ev)
	}
	tr, err := os.ReadFile(trPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tr), `"id":"s-1"`) {
		t.Fatalf("traces dump missing trace: %q", tr)
	}
}

// TestSettingsCloseKeepsForeignGlobals: Close only uninstalls what the
// session itself installed.
func TestSettingsCloseKeepsForeignGlobals(t *testing.T) {
	if compiledOut {
		t.Skip("observability compiled out (noobs)")
	}
	t.Cleanup(Disable)
	sess, err := Settings{EventBuffer: 4}.Apply()
	if err != nil {
		t.Fatal(err)
	}
	other := NewRecorder(4)
	SetRecorder(other)
	t.Cleanup(func() { SetRecorder(nil) })
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if Events() != other {
		t.Fatal("Close uninstalled a recorder it did not install")
	}
}
