// Fixture stand-in for the cache package obscover audits: NewLRU's last
// parameter is the observability registration.
package cache

// Stats records hit/miss counts for an LRU.
type Stats struct{ hits, misses int }

// Hit records a lookup that found its key.
func (s *Stats) Hit() { s.hits++ }

// Miss records a lookup that did not.
func (s *Stats) Miss() { s.misses++ }

// LRU is a fixed-capacity cache.
type LRU[K comparable, V any] struct {
	capacity int
	vals     map[K]V
	stats    *Stats
}

// NewLRU builds a cache registering st for observability.
func NewLRU[K comparable, V any](capacity int, st *Stats) *LRU[K, V] {
	return &LRU[K, V]{capacity: capacity, vals: map[K]V{}, stats: st}
}
