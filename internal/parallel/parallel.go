// Package parallel is the single concurrency substrate shared by every hot
// image path in this repository: a deterministic chunked parallel-for.
//
// Design constraints, in order of importance:
//
//   - Determinism. Every call site is numeric code whose output must be
//     bit-identical regardless of worker count. For guarantees this by
//     construction: the index range is split into fixed chunks whose
//     boundaries depend only on (n, grain) — never on the worker count or
//     on scheduling — and each chunk writes a disjoint output region. Which
//     worker executes a chunk is irrelevant to the result.
//   - Bounded parallelism. The default worker count is GOMAXPROCS; an
//     explicit Workers(n) pin is honoured exactly (even above GOMAXPROCS),
//     which tests use to force real concurrency on single-core runners.
//   - Serial fallback. When the whole range fits in one chunk, or only one
//     worker is available, the loop runs on the calling goroutine with no
//     goroutine or channel overhead — small inputs pay nothing.
//   - Context awareness. Cancellation is observed between chunks; a
//     cancelled context stops dispatch and For returns ctx.Err() whenever
//     any chunk was skipped.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"decamouflage/internal/obs"
)

// Substrate counters, resolved once: calls into For, calls that took the
// serial fallback, total chunks dispatched, and the worker count of the
// most recent concurrent call. Recording is a few atomic ops per For call
// (not per chunk), invisible next to the numeric work each call fans out.
var (
	forCalls   = obs.C("parallel.for.calls")
	forSerial  = obs.C("parallel.for.serial")
	forTasks   = obs.C("parallel.tasks")
	forWorkers = obs.G("parallel.workers")
)

type config struct {
	workers int
	grain   int
}

// Option configures one For or Do call. Options are plain values (not
// closures) so that assembling and applying them never heap-allocates —
// For/Do sit on per-row hot paths where a per-call allocation is
// measurable.
type Option struct {
	workers    int
	setWorkers bool
	grain      int
}

func (o Option) apply(c *config) {
	if o.setWorkers {
		c.workers = o.workers
	}
	if o.grain > 0 {
		c.grain = o.grain
	}
}

// Workers pins the worker count. n <= 0 restores the default (GOMAXPROCS).
// A positive n is honoured exactly, even above GOMAXPROCS, so tests can
// exercise the concurrent path on single-core machines.
func Workers(n int) Option {
	return Option{workers: n, setWorkers: true}
}

// Grain sets the minimum number of consecutive indices handed to fn per
// call (default 1). Chunk boundaries — and therefore results — depend only
// on n and the grain, never on the worker count. Calls whose whole range
// fits in one chunk run serially on the calling goroutine.
func Grain(n int) Option {
	if n <= 0 {
		return Option{}
	}
	return Option{grain: n}
}

// DefaultWorkers returns the worker count used when no Workers option is
// given: GOMAXPROCS at call time.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// GrainForWidth returns a row-granularity for 2-D sweeps: the smallest
// chunk (in rows of rowCost samples each) that keeps per-chunk work at or
// above minWork samples, so tiny images fall back to the serial path while
// large ones split into enough chunks to keep every worker busy.
func GrainForWidth(rowCost, minWork int) int {
	if rowCost <= 0 {
		return 1
	}
	g := minWork / rowCost
	if g < 1 {
		g = 1
	}
	return g
}

// For runs fn over the half-open chunks of [0, n): fn(lo, hi) with
// 0 <= lo < hi <= n, each chunk grain indices long except the last. Chunks
// execute at most once, concurrently on up to Workers goroutines, in
// unspecified order. fn must therefore only touch state disjoint between
// chunks (the universal pattern here: chunk i writes output indices
// [lo, hi) and reads shared immutable input).
//
// The first error — ties broken toward the lowest chunk index, so the
// returned error is deterministic even under races — stops dispatch and is
// returned. A context cancellation observed before all chunks completed
// returns ctx.Err(); if every chunk ran to completion, For returns nil
// regardless of late cancellation.
//
//declint:spawns fork-join worker pool of Workers goroutines; every path joins via wg.Wait before return
func For(ctx context.Context, n int, fn func(lo, hi int) error, opts ...Option) error {
	cfg := config{grain: 1}
	for _, o := range opts {
		o.apply(&cfg)
	}
	if n <= 0 {
		return ctx.Err()
	}
	workers := cfg.workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	chunks := (n + cfg.grain - 1) / cfg.grain
	if workers > chunks {
		workers = chunks
	}
	forCalls.Inc()
	forTasks.Add(int64(chunks))
	if workers <= 1 {
		forSerial.Inc()
		// Serial fallback: same chunk boundaries, same fn, calling goroutine.
		for lo := 0; lo < n; lo += cfg.grain {
			if err := ctx.Err(); err != nil {
				return err
			}
			hi := lo + cfg.grain
			if hi > n {
				hi = n
			}
			if err := fn(lo, hi); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next atomic.Int64 // next chunk index to claim
		done atomic.Int64 // chunks completed without error
		stop atomic.Bool  // set on first error or observed cancellation

		mu       sync.Mutex
		firstErr error
		errChunk int64
	)
	forWorkers.Set(int64(workers))
	record := func(chunk int64, err error) {
		mu.Lock()
		if firstErr == nil || chunk < errChunk {
			firstErr, errChunk = err, chunk
		}
		mu.Unlock()
		stop.Store(true)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				if ctx.Err() != nil {
					stop.Store(true)
					return
				}
				chunk := next.Add(1) - 1
				if chunk >= int64(chunks) {
					return
				}
				lo := int(chunk) * cfg.grain
				hi := lo + cfg.grain
				if hi > n {
					hi = n
				}
				if err := fn(lo, hi); err != nil {
					record(chunk, err)
					return
				}
				done.Add(1)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if done.Load() != int64(chunks) {
		// Only cancellation can leave chunks unfinished without an fn error.
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Do runs the given tasks with one chunk per task and returns the first
// error by task order among those that ran, or ctx.Err() on cancellation.
// It is the fork-join form of For, used where the units of work are
// heterogeneous functions (e.g. the three detection methods of an
// ensemble) rather than an index range.
func Do(ctx context.Context, tasks []func() error, opts ...Option) error {
	return For(ctx, len(tasks), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if err := tasks[i](); err != nil {
				return err
			}
		}
		return nil
	}, opts...)
}
