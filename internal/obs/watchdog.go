package obs

import (
	"runtime"
	"sort"
	"strings"
	"time"
)

// WatchdogConfig tunes the runtime watchdog. Zero fields take defaults;
// a zero threshold disables that particular check (the gauge is still
// sampled).
type WatchdogConfig struct {
	// Interval between samples (default 1s, floor 10ms).
	Interval time.Duration
	// MaxGoroutines flags a goroutine leak (default 10000).
	MaxGoroutines int64
	// MaxHeapBytes flags heap growth (default 0: gauge only).
	MaxHeapBytes int64
	// MaxGCPause flags a long stop-the-world pause (default 50ms).
	MaxGCPause time.Duration
	// MaxTickLag flags scheduler starvation: how late the watchdog's own
	// ticker fires (default 250ms).
	MaxTickLag time.Duration
}

// Watchdog samples runtime health (goroutines, heap, GC pauses, scheduler
// lag) into gauges on a ticker and feeds threshold crossings into the
// flight recorder as "watchdog" events. Start with StartWatchdog, stop
// with Stop; a nil Watchdog is a valid no-op receiver.
type Watchdog struct {
	cfg  WatchdogConfig
	stop chan struct{}
	done chan struct{}

	goroutines *Gauge
	heapAlloc  *Gauge
	heapSys    *Gauge
	gcCount    *Gauge
	gcPause    *Gauge
	tickLag    *Gauge
	ticks      *Counter
	crossings  *Counter

	lastNumGC uint32
	active    string // joined sorted set of currently-crossed thresholds
}

// StartWatchdog launches the watchdog goroutine. Returns nil under noobs.
//
//declint:spawns one sampling loop per watchdog; select on w.stop, joined by Stop via w.done
func StartWatchdog(cfg WatchdogConfig) *Watchdog {
	if compiledOut {
		return nil
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Interval < 10*time.Millisecond {
		cfg.Interval = 10 * time.Millisecond
	}
	if cfg.MaxGoroutines == 0 {
		cfg.MaxGoroutines = 10_000
	}
	if cfg.MaxGCPause == 0 {
		cfg.MaxGCPause = 50 * time.Millisecond
	}
	if cfg.MaxTickLag == 0 {
		cfg.MaxTickLag = 250 * time.Millisecond
	}
	w := &Watchdog{
		cfg:        cfg,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		goroutines: G("runtime.goroutines"),
		heapAlloc:  G("runtime.heap.alloc_bytes"),
		heapSys:    G("runtime.heap.sys_bytes"),
		gcCount:    G("runtime.gc.count"),
		gcPause:    G("runtime.gc.last_pause_ns"),
		tickLag:    G("runtime.sched.tick_lag_ns"),
		ticks:      C("obs.watchdog.ticks"),
		crossings:  C("obs.watchdog.crossings"),
	}
	//declint:ignore noraw-go the watchdog must sample for the whole session from outside any request; its lifetime is bounded by Stop, which parallel's fork-join tasks cannot express
	go w.loop()
	return w
}

// Stop halts sampling and waits for the watchdog goroutine to exit.
func (w *Watchdog) Stop() {
	if w == nil {
		return
	}
	close(w.stop)
	<-w.done
}

func (w *Watchdog) loop() {
	defer close(w.done)
	tk := time.NewTicker(w.cfg.Interval)
	defer tk.Stop()
	expect := time.Now().Add(w.cfg.Interval)
	for {
		select {
		case <-w.stop:
			return
		case <-tk.C:
			lag := time.Since(expect)
			if lag < 0 {
				lag = 0
			}
			w.sample(lag)
			expect = time.Now().Add(w.cfg.Interval)
		}
	}
}

// sample reads the runtime, updates the gauges, and records a watchdog
// event whenever the set of crossed thresholds changes (edge-triggered,
// so a sustained condition produces one event, not one per tick).
func (w *Watchdog) sample(lag time.Duration) {
	w.ticks.Inc()
	g := int64(runtime.NumGoroutine())
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	var pause int64
	if ms.NumGC > 0 {
		pause = int64(ms.PauseNs[(ms.NumGC+255)%256])
	}
	w.goroutines.Set(g)
	w.heapAlloc.Set(int64(ms.HeapAlloc))
	w.heapSys.Set(int64(ms.HeapSys))
	w.gcCount.Set(int64(ms.NumGC))
	w.gcPause.Set(pause)
	w.tickLag.Set(lag.Nanoseconds())

	var crossed []string
	if g > w.cfg.MaxGoroutines {
		crossed = append(crossed, "goroutines-high")
	}
	if w.cfg.MaxHeapBytes > 0 && int64(ms.HeapAlloc) > w.cfg.MaxHeapBytes {
		crossed = append(crossed, "heap-high")
	}
	// Only a pause from a GC cycle that finished since the last sample can
	// cross: old pauses were already reported once.
	if ms.NumGC != w.lastNumGC && pause > w.cfg.MaxGCPause.Nanoseconds() {
		crossed = append(crossed, "gc-pause-high")
	}
	if lag > w.cfg.MaxTickLag {
		crossed = append(crossed, "sched-lag-high")
	}
	w.lastNumGC = ms.NumGC

	sort.Strings(crossed)
	state := strings.Join(crossed, ",")
	changed := state != w.active
	w.active = state
	if !changed || state == "" {
		return
	}
	w.crossings.Add(int64(len(crossed)))
	Events().Record(Event{
		Name:      "watchdog",
		Anomalies: append([]string{AnomalyWatchdog}, crossed...),
		Values: map[string]int64{
			"goroutines":       g,
			"heap_alloc_bytes": int64(ms.HeapAlloc),
			"heap_sys_bytes":   int64(ms.HeapSys),
			"gc_count":         int64(ms.NumGC),
			"gc_last_pause_ns": pause,
			"tick_lag_ns":      lag.Nanoseconds(),
		},
	})
}
