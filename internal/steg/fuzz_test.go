package steg

import (
	"math"
	"testing"

	"decamouflage/internal/imgcore"
)

// FuzzCSP drives the whole steganalysis pipeline (gray → 2-D FFT →
// fftshift → blur → binarize → connected components) with tiny and
// degenerate images built from arbitrary bytes: extreme option values,
// 1-pixel images, prime geometries hitting the Bluestein FFT branch,
// constant, denormal, huge, NaN and Inf pixels. The contract under test:
// CSP must never panic — malformed inputs yield an error, valid ones a
// non-negative count.
func FuzzCSP(f *testing.F) {
	f.Add(uint8(1), uint8(1), true, []byte{0}, int16(0), int16(0))
	f.Add(uint8(3), uint8(2), false, []byte{0, 50, 100, 150, 200, 250}, int16(78), int16(100))
	f.Add(uint8(7), uint8(11), true, []byte("prime sizes exercise bluestein"), int16(50), int16(-1))
	f.Add(uint8(16), uint8(16), true, []byte{255}, int16(99), int16(4))
	f.Add(uint8(0), uint8(4), true, []byte{1, 2, 3}, int16(78), int16(0)) // zero width → error
	f.Fuzz(func(t *testing.T, w, h uint8, grayscale bool, pix []byte, thPct, minArea int16) {
		width := int(w % 33)
		height := int(h % 33)
		channels := 3
		if grayscale {
			channels = 1
		}
		img, err := imgcore.New(width, height, channels)
		if err != nil {
			// Invalid geometry: CSP must reject the same image header
			// without panicking.
			bad := &imgcore.Image{W: width, H: height, C: channels, Pix: nil}
			if _, cerr := CSP(bad, Options{}); cerr == nil {
				t.Fatalf("CSP accepted invalid geometry %dx%dx%d", width, height, channels)
			}
			return
		}
		for i := range img.Pix {
			var v float64
			if len(pix) > 0 {
				v = float64(pix[i%len(pix)])
			}
			// Byte 13/17/19 positions get pathological values so the
			// spectrum and its normalization see non-finite input.
			switch i % 23 {
			case 13:
				v = math.Inf(1)
			case 17:
				v = math.NaN()
			case 19:
				v = v * 1e300
			}
			img.Pix[i] = v
		}
		opts := Options{
			BinarizeThreshold: float64(thPct) / 100,
			MinArea:           int(minArea),
		}
		count, err := CSP(img, opts)
		if err != nil {
			return // rejected cleanly (e.g. threshold outside (0,1))
		}
		if count < 0 {
			t.Fatalf("CSP = %d < 0", count)
		}
		if count > width*height {
			t.Fatalf("CSP = %d exceeds pixel count %d", count, width*height)
		}
	})
}

// FuzzLabelComponents stresses the connected-component labeller with
// arbitrary masks and inconsistent geometry claims.
func FuzzLabelComponents(f *testing.F) {
	f.Add([]byte{1, 0, 1, 1}, uint8(2), uint8(2))
	f.Add([]byte{}, uint8(0), uint8(0))
	f.Add([]byte{1}, uint8(30), uint8(30)) // claimed size ≠ mask length
	f.Fuzz(func(t *testing.T, raw []byte, w, h uint8) {
		mask := make([]bool, len(raw))
		fg := 0
		for i, b := range raw {
			mask[i] = b&1 == 1
			if mask[i] {
				fg++
			}
		}
		labels, areas := LabelComponents(mask, int(w), int(h))
		if int(w)*int(h) != len(mask) || w == 0 || h == 0 {
			if labels != nil || areas != nil {
				t.Fatal("malformed input must yield nil results")
			}
			return
		}
		total := 0
		for _, a := range areas {
			if a <= 0 {
				t.Fatalf("component area %d <= 0", a)
			}
			total += a
		}
		if total != fg {
			t.Fatalf("component areas sum to %d, want %d foreground pixels", total, fg)
		}
		for i, l := range labels {
			if l < 0 || l > len(areas) {
				t.Fatalf("pixel %d has out-of-range label %d", i, l)
			}
			if (l != 0) != mask[i] {
				t.Fatalf("pixel %d labelled %d but mask=%v", i, l, mask[i])
			}
		}
	})
}
