package obs

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"decamouflage/internal/testutil"
)

func TestRingBuf(t *testing.T) {
	r := newRingBuf[int](3)
	if got := r.size(); got != 0 {
		t.Fatalf("empty size = %d, want 0", got)
	}
	if r.push(1) || r.push(2) || r.push(3) {
		t.Fatal("push evicted before the ring was full")
	}
	if got := r.snapshot(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("snapshot = %v, want [1 2 3]", got)
	}
	if !r.push(4) {
		t.Fatal("push into a full ring did not evict")
	}
	if got := r.snapshot(); len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Fatalf("snapshot after wrap = %v, want [2 3 4]", got)
	}
	// Capacity clamps to 1.
	one := newRingBuf[int](0)
	one.push(7)
	one.push(8)
	if got := one.snapshot(); len(got) != 1 || got[0] != 8 {
		t.Fatalf("capacity-1 snapshot = %v, want [8]", got)
	}
}

func TestRecorderNilReceiver(t *testing.T) {
	var r *Recorder
	if r.Active() {
		t.Fatal("nil recorder reports active")
	}
	r.Record(Event{Name: "x"}) // must not panic
	r.SetAnomalyOutput(io.Discard)
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil recorder snapshot = %v, want nil", got)
	}
	if _, ok := r.Find("id"); ok {
		t.Fatal("nil recorder found an event")
	}
	if r.Recorded() != 0 || r.Dropped() != 0 || r.Err() != nil {
		t.Fatal("nil recorder reports non-zero state")
	}
	if err := r.WriteNDJSON(io.Discard); err != nil {
		t.Fatalf("nil recorder WriteNDJSON: %v", err)
	}
}

func TestRecorderSeqAndEviction(t *testing.T) {
	withRecording(t)
	r := NewRecorder(2)
	if !r.Active() {
		t.Fatal("new recorder inactive")
	}
	r.Record(Event{Name: "a", TraceID: "t1"})
	r.Record(Event{Name: "b", TraceID: "t2"})
	r.Record(Event{Name: "c", TraceID: "t2"})
	evs := r.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("snapshot has %d events, want 2 (capacity)", len(evs))
	}
	if evs[0].Name != "b" || evs[1].Name != "c" {
		t.Fatalf("snapshot = %s,%s, want b,c (oldest evicted)", evs[0].Name, evs[1].Name)
	}
	if evs[0].Seq != 2 || evs[1].Seq != 3 {
		t.Fatalf("seqs = %d,%d, want 2,3", evs[0].Seq, evs[1].Seq)
	}
	if evs[0].UnixNs == 0 {
		t.Fatal("recorder did not stamp UnixNs")
	}
	if got := r.Recorded(); got != 3 {
		t.Fatalf("Recorded = %d, want 3", got)
	}
	if got := r.Dropped(); got != 1 {
		t.Fatalf("Dropped = %d, want 1", got)
	}
	// Find returns the most recent event for a trace.
	ev, ok := r.Find("t2")
	if !ok || ev.Name != "c" {
		t.Fatalf("Find(t2) = %+v,%v, want event c", ev, ok)
	}
	if _, ok := r.Find("t1"); ok {
		t.Fatal("Find located an evicted trace")
	}
	if _, ok := r.Find(""); ok {
		t.Fatal("Find matched the empty trace ID")
	}
}

func TestRecorderSlowTagging(t *testing.T) {
	withRecording(t)
	r := NewRecorder(64)
	// Warm the per-name average past the ewma warmup with ordinary 2ms
	// events, then record one far above mean and floor.
	for i := 0; i < 10; i++ {
		r.Record(Event{Name: "detect", DurNs: 2_000_000})
	}
	r.Record(Event{Name: "detect", DurNs: 100_000_000})
	evs := r.Snapshot()
	last := evs[len(evs)-1]
	found := false
	for _, a := range last.Anomalies {
		if a == AnomalySlow {
			found = true
		}
	}
	if !found {
		t.Fatalf("100ms outlier not tagged slow: %v", last.Anomalies)
	}
	for _, ev := range evs[:len(evs)-1] {
		if ev.Anomalous() {
			t.Fatalf("ordinary event tagged anomalous: %v", ev.Anomalies)
		}
	}
}

func TestRecorderAnomalyDump(t *testing.T) {
	withRecording(t)
	r := NewRecorder(8)
	var buf bytes.Buffer
	r.SetAnomalyOutput(&buf)
	r.Record(Event{Name: "ok"})
	if buf.Len() != 0 {
		t.Fatalf("ordinary event written to anomaly output: %q", buf.String())
	}
	r.Record(Event{Name: "bad", Err: "boom", Anomalies: []string{AnomalyError}})
	line := buf.String()
	if !strings.Contains(line, `"err":"boom"`) || !strings.Contains(line, AnomalyError) {
		t.Fatalf("anomaly dump missing fields: %q", line)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("recorder reports writer error on healthy writer: %v", err)
	}
	// First writer error sticks and stops further writes.
	r.SetAnomalyOutput(failWriter{})
	r.Record(Event{Name: "bad2", Anomalies: []string{AnomalyError}})
	if r.Err() == nil {
		t.Fatal("failed anomaly write not reported")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("sink failed") }

func TestEventsGlobalInstall(t *testing.T) {
	if compiledOut {
		t.Skip("observability compiled out (noobs)")
	}
	if Events().Active() {
		t.Fatal("recorder installed at test start")
	}
	r := NewRecorder(4)
	SetRecorder(r)
	t.Cleanup(func() { SetRecorder(nil) })
	if Events() != r {
		t.Fatal("Events does not return the installed recorder")
	}
	SetRecorder(nil)
	if Events().Active() {
		t.Fatal("uninstall did not clear the recorder")
	}
}

func TestTraceIDPropagation(t *testing.T) {
	withRecording(t)
	if got := TraceID(context.Background()); got != "" {
		t.Fatalf("untraced context has trace ID %q", got)
	}
	ctx, tr := WithTrace(context.Background(), "req")
	if tr.ID() == "" {
		t.Fatal("trace has empty ID")
	}
	if got := TraceID(ctx); got != tr.ID() {
		t.Fatalf("TraceID(ctx) = %q, want %q", got, tr.ID())
	}
	sctx, sp := StartSpan(ctx, "child")
	if sp.tid != tr.ID() {
		t.Fatalf("child span tid = %q, want %q", sp.tid, tr.ID())
	}
	if got := TraceID(sctx); got != tr.ID() {
		t.Fatalf("TraceID under child = %q, want %q", got, tr.ID())
	}
	_, tr2 := WithTrace(context.Background(), "req")
	if tr2.ID() == tr.ID() {
		t.Fatalf("two traces share ID %q", tr.ID())
	}
	var nilTr *Trace
	if nilTr.ID() != "" {
		t.Fatal("nil trace has an ID")
	}
}

func TestFlattenSpans(t *testing.T) {
	withRecording(t)
	ctx, tr := WithTrace(context.Background(), "root")
	ctx1, a := StartSpan(ctx, "a")
	a.AttrInt("n", 7)
	_, b := StartSpan(ctx1, "b")
	b.End()
	a.End()
	_, c := StartSpan(ctx, "c")
	c.End()
	tr.End()

	flat := FlattenSpans(tr.Root())
	names := make([]string, len(flat))
	for i, s := range flat {
		names[i] = s.Name
	}
	want := []string{"root", "a", "b", "c"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("pre-order = %v, want %v", names, want)
		}
	}
	if flat[0].Depth != 0 || flat[1].Depth != 1 || flat[2].Depth != 2 || flat[3].Depth != 1 {
		t.Fatalf("depths wrong: %+v", flat)
	}
	if flat[1].Attrs["n"] != "7" {
		t.Fatalf("attrs not flattened: %+v", flat[1])
	}
	if flat[0].OffsetNs != 0 {
		t.Fatalf("root offset = %d, want 0", flat[0].OffsetNs)
	}
	for _, s := range flat[1:] {
		if s.OffsetNs < 0 {
			t.Fatalf("span %s starts before root: %d", s.Name, s.OffsetNs)
		}
		if s.DurNs > flat[0].DurNs {
			t.Fatalf("span %s (%dns) outlives root (%dns)", s.Name, s.DurNs, flat[0].DurNs)
		}
	}
	if FlattenSpans(nil) != nil {
		t.Fatal("FlattenSpans(nil) != nil")
	}
}

// fakeTrace fabricates a finished single-span trace with a fixed duration,
// so tail-sampler decisions are deterministic.
func fakeTrace(name, tid string, d time.Duration) *Trace {
	return &Trace{root: &Span{
		name:  name,
		tid:   tid,
		start: time.Now().Add(-d),
		dur:   d,
		ended: true,
	}}
}

func TestTailSamplerNilAndDisabled(t *testing.T) {
	var s *TailSampler
	if s.Active() {
		t.Fatal("nil sampler active")
	}
	if _, kept := s.Offer(fakeTrace("x", "t", time.Millisecond), nil); kept {
		t.Fatal("nil sampler kept a trace")
	}
	if s.Snapshot() != nil || s.Offered() != 0 || s.Kept() != 0 {
		t.Fatal("nil sampler reports state")
	}
	if err := s.WriteNDJSON(io.Discard); err != nil {
		t.Fatalf("nil sampler WriteNDJSON: %v", err)
	}
}

func TestTailSamplerRetention(t *testing.T) {
	withRecording(t)
	s := NewTailSampler(16, 0)

	// First offer per name sets the record.
	reason, kept := s.Offer(fakeTrace("req", "t1", 2*time.Millisecond), nil)
	if !kept || reason != KeepRecord {
		t.Fatalf("first offer = %q,%v, want record,true", reason, kept)
	}
	// A strictly slower trace beats the record.
	reason, kept = s.Offer(fakeTrace("req", "t2", 4*time.Millisecond), nil)
	if !kept || reason != KeepRecord {
		t.Fatalf("slower offer = %q,%v, want record,true", reason, kept)
	}
	// A trace within 1% of the record still counts as the record holder
	// (tolerates the two-clock skew between histogram and span durations).
	reason, kept = s.Offer(fakeTrace("req", "t3", 4*time.Millisecond-time.Microsecond), nil)
	if !kept || reason != KeepRecord {
		t.Fatalf("near-tie offer = %q,%v, want record,true", reason, kept)
	}
	// An ordinary faster trace with sampling off is discarded.
	if reason, kept = s.Offer(fakeTrace("req", "t4", time.Millisecond), nil); kept {
		t.Fatalf("ordinary offer kept as %q", reason)
	}
	// Errors always keep.
	reason, kept = s.Offer(fakeTrace("req", "t5", time.Millisecond), errors.New("boom"))
	if !kept || reason != KeepError {
		t.Fatalf("errored offer = %q,%v, want error,true", reason, kept)
	}
	// Adaptive slow: under a separate name, pin the record high with one
	// 10ms trace, then feed 1ms traces past the ewma warmup so the mean
	// settles under 2ms. A 6ms trace is then no record (below 99% of
	// 10ms) but more than three times the mean: kept as slow.
	s.Offer(fakeTrace("warm", "wmax", 10*time.Millisecond), nil)
	for i := 0; i < 12; i++ {
		if _, kept := s.Offer(fakeTrace("warm", "w", time.Millisecond), nil); kept {
			t.Fatal("ordinary warmup trace kept")
		}
	}
	reason, kept = s.Offer(fakeTrace("warm", "wslow", 6*time.Millisecond), nil)
	if !kept || reason != KeepSlow {
		t.Fatalf("6ms over a ~1.7ms mean = %q,%v, want slow,true", reason, kept)
	}

	if got := s.Kept(); got != 6 {
		t.Fatalf("Kept = %d, want 6", got)
	}
	if got := s.Offered(); got != 19 {
		t.Fatalf("Offered = %d, want 19", got)
	}
	rt, ok := s.Find("t5")
	if !ok || rt.Err != "boom" || rt.Reason != KeepError {
		t.Fatalf("Find(t5) = %+v,%v", rt, ok)
	}
	if len(rt.Spans) != 1 || rt.Spans[0].Name != "req" {
		t.Fatalf("retained trace spans = %+v", rt.Spans)
	}
	if _, ok := s.Find("t4"); ok {
		t.Fatal("discarded trace was retained")
	}
}

func TestTailSamplerProbabilistic(t *testing.T) {
	withRecording(t)
	s := NewTailSampler(256, 1) // sample=1: every ordinary trace keeps
	s.Offer(fakeTrace("req", "first", 2*time.Millisecond), nil)
	reason, kept := s.Offer(fakeTrace("req", "t", time.Millisecond), nil)
	if !kept || reason != KeepSampled {
		t.Fatalf("sample=1 ordinary offer = %q,%v, want sampled,true", reason, kept)
	}
	// Sample clamps to [0,1]; the clamp assigns the literal bound, so
	// exact comparison is the intended check.
	if sp := NewTailSampler(1, 7).sample; !testutil.BitEqual(sp, 1) {
		t.Fatalf("sample 7 clamped to %v, want 1", sp)
	}
	if sp := NewTailSampler(1, -3).sample; !testutil.BitEqual(sp, 0) {
		t.Fatalf("sample -3 clamped to %v, want 0", sp)
	}
}

func TestTailGlobalInstall(t *testing.T) {
	if compiledOut {
		t.Skip("observability compiled out (noobs)")
	}
	s := NewTailSampler(4, 0)
	SetTailSampler(s)
	t.Cleanup(func() { SetTailSampler(nil) })
	if Tail() != s {
		t.Fatal("Tail does not return the installed sampler")
	}
	SetTailSampler(nil)
	if Tail().Active() {
		t.Fatal("uninstall did not clear the sampler")
	}
}

func TestWatchdogSample(t *testing.T) {
	testutil.VerifyNoLeaks(t) // pins that Stop joins the sampling goroutine
	withRecording(t)
	rec := NewRecorder(16)
	SetRecorder(rec)
	t.Cleanup(func() { SetRecorder(nil) })

	// A huge interval keeps the background loop idle so the test can call
	// sample directly and deterministically.
	w := StartWatchdog(WatchdogConfig{Interval: time.Hour, MaxGoroutines: 1})
	t.Cleanup(w.Stop)

	w.sample(0)
	if got := w.goroutines.Value(); got <= 1 {
		t.Fatalf("goroutine gauge = %d, want > 1", got)
	}
	if w.heapAlloc.Value() <= 0 || w.heapSys.Value() <= 0 {
		t.Fatal("heap gauges not sampled")
	}
	evs := rec.Snapshot()
	if len(evs) != 1 {
		t.Fatalf("crossings recorded %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Name != "watchdog" || len(ev.Anomalies) < 2 || ev.Anomalies[0] != AnomalyWatchdog {
		t.Fatalf("watchdog event = %+v", ev)
	}
	crossedGoroutines := false
	for _, a := range ev.Anomalies {
		if a == "goroutines-high" {
			crossedGoroutines = true
		}
	}
	if !crossedGoroutines {
		t.Fatalf("goroutines-high not in anomalies: %v", ev.Anomalies)
	}
	if ev.Values["goroutines"] <= 1 {
		t.Fatalf("event values missing goroutine sample: %v", ev.Values)
	}

	// Edge-triggered: the still-crossed state records no second event.
	w.sample(0)
	if got := len(rec.Snapshot()); got != 1 {
		t.Fatalf("sustained crossing recorded %d events, want 1", got)
	}

	var nilW *Watchdog
	nilW.Stop() // must not panic
}

func TestServeDebugEventsEndpoints(t *testing.T) {
	testutil.VerifyNoLeaks(t) // pins that Close joins the Serve goroutine
	// The default client's keep-alive connections are ours, not the
	// server's; drop them before the leak diff runs.
	t.Cleanup(http.DefaultClient.CloseIdleConnections)
	withRecording(t)
	rec := NewRecorder(8)
	SetRecorder(rec)
	t.Cleanup(func() { SetRecorder(nil) })
	ts := NewTailSampler(8, 0)
	SetTailSampler(ts)
	t.Cleanup(func() { SetTailSampler(nil) })

	rec.Record(Event{Name: "detect", TraceID: "abc-1", Verdict: "benign"})
	ts.Offer(fakeTrace("req", "abc-1", 2*time.Millisecond), nil)

	d, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + d.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/debug/events")
	if code != http.StatusOK || !strings.Contains(body, `"name":"detect"`) {
		t.Fatalf("/debug/events = %d %q", code, body)
	}
	code, body = get("/debug/events?trace=abc-1")
	if code != http.StatusOK || !strings.Contains(body, `"trace_id":"abc-1"`) {
		t.Fatalf("/debug/events?trace = %d %q", code, body)
	}
	if code, _ = get("/debug/events?trace=nope"); code != http.StatusNotFound {
		t.Fatalf("unknown trace = %d, want 404", code)
	}
	code, body = get("/debug/traces")
	if code != http.StatusOK || !strings.Contains(body, `"id":"abc-1"`) {
		t.Fatalf("/debug/traces = %d %q", code, body)
	}
	code, body = get("/debug/traces?id=abc-1")
	if code != http.StatusOK || !strings.Contains(body, `"reason":"record"`) {
		t.Fatalf("/debug/traces?id = %d %q", code, body)
	}

	// With the recorder uninstalled the endpoint 404s rather than serving
	// an empty stream.
	SetRecorder(nil)
	if code, _ = get("/debug/events"); code != http.StatusNotFound {
		t.Fatalf("uninstalled recorder = %d, want 404", code)
	}
	SetTailSampler(nil)
	if code, _ = get("/debug/traces"); code != http.StatusNotFound {
		t.Fatalf("uninstalled sampler = %d, want 404", code)
	}
}
