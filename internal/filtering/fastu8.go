// Fixed-point sliding-window kernels over the 8-bit image view. The
// float64 kernels in fast.go remain the canonical implementations; the
// variants in this file run the same algorithms over imgcore.U8Image —
// one byte per sample instead of eight — for the common case where every
// input intensity is an 8-bit integer:
//
//   - min/max: van Herk–Gil–Werman over uint8 lanes. Comparisons on
//     integers order identically to comparisons on their float64 images,
//     so MinimumU8/MaximumU8 are bit-exact against Minimum/Maximum after
//     FromU8 (pinned by the u8 equivalence suite and the fixed-point
//     fuzzer).
//   - median: a 256-bin uint16 count histogram slides along each row —
//     remove the leaving column, add the entering column, re-select the
//     rank by bin scan. The histogram holds exactly the naive window
//     multiset, and the even-window mean (a+b)/2 of two integers is exact
//     in float64, so MedianU8 output is bit-exact against Median.
//   - box: separable running sums in int32 — window sums of uint8 samples
//     are exact integers, so the only rounding is the final division by
//     size². BoxU8 therefore agrees with the float64 Box to tolerance
//     (the float path rounds inside its running sums; the fixed path
//     does not), pinned by ApproxEqual contracts.
//
// Window anchoring and replicate-clamp borders match fast.go exactly.
package filtering

import (
	"context"
	"fmt"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/parallel"
)

// maxU8MedianWindow bounds the histogram median's window edge so that a
// full window (size² samples) fits the uint16 bin counters.
const maxU8MedianWindow = 255

// maxU8BoxWindow bounds the running-sum box window edge so a window sum
// (size²·255) fits an int32 accumulator.
const maxU8BoxWindow = 2896

// MinimumU8 applies a size×size minimum filter to an 8-bit image. The
// output equals Minimum over FromU8(u) bit-exactly.
func MinimumU8(u *imgcore.U8Image, size int) (*imgcore.U8Image, error) {
	return minMaxFilterU8(context.Background(), u, size, false)
}

// MinimumU8Ctx is MinimumU8 honouring ctx cancellation in its parallel
// sweeps.
func MinimumU8Ctx(ctx context.Context, u *imgcore.U8Image, size int) (*imgcore.U8Image, error) {
	return minMaxFilterU8(ctx, u, size, false)
}

// MaximumU8 applies a size×size maximum filter to an 8-bit image. The
// output equals Maximum over FromU8(u) bit-exactly.
func MaximumU8(u *imgcore.U8Image, size int) (*imgcore.U8Image, error) {
	return minMaxFilterU8(context.Background(), u, size, true)
}

// padClampedU8 is padClamped over uint8 lanes: dst[t] = src[clamp(t+lo)]
// at the given stride.
//
//declint:hot
func padClampedU8(dst, src []uint8, n, stride, lo int) {
	for t := range dst {
		j := t + lo
		if j < 0 {
			j = 0
		} else if j >= n {
			j = n - 1
		}
		dst[t] = src[j*stride]
	}
}

// slidingMinU8 is slidingMin over uint8 lanes: one backward suffix-wedge
// pass and one forward prefix pass per block of w samples.
//
//declint:hot
func slidingMinU8(out, padded, wedge []uint8, w int) {
	p := len(padded)
	if w == 2 {
		for i := range out {
			if padded[i+1] < padded[i] {
				out[i] = padded[i+1]
			} else {
				out[i] = padded[i]
			}
		}
		return
	}
	for t := p - 1; t >= 0; t-- {
		if t == p-1 || (t+1)%w == 0 {
			wedge[t] = padded[t]
		} else if padded[t] < wedge[t+1] {
			wedge[t] = padded[t]
		} else {
			wedge[t] = wedge[t+1]
		}
	}
	var prefix uint8
	for t := 0; t < p; t++ {
		if t%w == 0 {
			prefix = padded[t]
		} else if padded[t] < prefix {
			prefix = padded[t]
		}
		if i := t - w + 1; i >= 0 {
			if wedge[i] < prefix {
				out[i] = wedge[i]
			} else {
				out[i] = prefix
			}
		}
	}
}

// slidingMaxU8 is slidingMinU8 with the comparison flipped.
//
//declint:hot
func slidingMaxU8(out, padded, wedge []uint8, w int) {
	p := len(padded)
	if w == 2 {
		for i := range out {
			if padded[i+1] > padded[i] {
				out[i] = padded[i+1]
			} else {
				out[i] = padded[i]
			}
		}
		return
	}
	for t := p - 1; t >= 0; t-- {
		if t == p-1 || (t+1)%w == 0 {
			wedge[t] = padded[t]
		} else if padded[t] > wedge[t+1] {
			wedge[t] = padded[t]
		} else {
			wedge[t] = wedge[t+1]
		}
	}
	var prefix uint8
	for t := 0; t < p; t++ {
		if t%w == 0 {
			prefix = padded[t]
		} else if padded[t] > prefix {
			prefix = padded[t]
		}
		if i := t - w + 1; i >= 0 {
			if wedge[i] > prefix {
				out[i] = wedge[i]
			} else {
				out[i] = prefix
			}
		}
	}
}

// minMaxFilterU8 mirrors minMaxFilter over the 8-bit view: a horizontal
// vHGW sweep into an intermediate image, then a vertical sweep, with
// per-band uint8 scratch.
func minMaxFilterU8(ctx context.Context, u *imgcore.U8Image, size int, isMax bool, popts ...parallel.Option) (*imgcore.U8Image, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	if size < 2 {
		return nil, fmt.Errorf("%w: got %d", ErrBadWindow, size)
	}
	lo, _ := windowOffsets(size)
	tmp := u.Clone()
	out := u.Clone()
	pass := slidingMinU8
	if isMax {
		pass = slidingMaxU8
	}

	rowCost := u.W * u.C
	hOpts := append([]parallel.Option{
		parallel.Grain(parallel.GrainForWidth(rowCost, minFilterWork)),
	}, popts...)
	err := parallel.For(ctx, u.H, func(yLo, yHi int) error {
		padded := make([]uint8, u.W+size-1)
		wedge := make([]uint8, len(padded))
		line := make([]uint8, u.W)
		for y := yLo; y < yHi; y++ {
			for c := 0; c < u.C; c++ {
				padClampedU8(padded, u.Pix[(y*u.W)*u.C+c:], u.W, u.C, lo)
				pass(line, padded, wedge, size)
				for x := 0; x < u.W; x++ {
					tmp.Pix[(y*u.W+x)*u.C+c] = line[x]
				}
			}
		}
		return nil
	}, hOpts...)
	if err != nil {
		return nil, err
	}

	colCost := u.H * u.C
	vOpts := append([]parallel.Option{
		parallel.Grain(parallel.GrainForWidth(colCost, minFilterWork)),
	}, popts...)
	err = parallel.For(ctx, u.W, func(xLo, xHi int) error {
		padded := make([]uint8, u.H+size-1)
		wedge := make([]uint8, len(padded))
		line := make([]uint8, u.H)
		for x := xLo; x < xHi; x++ {
			for c := 0; c < u.C; c++ {
				padClampedU8(padded, tmp.Pix[x*u.C+c:], u.H, u.W*u.C, lo)
				pass(line, padded, wedge, size)
				for y := 0; y < u.H; y++ {
					out.Pix[(y*u.W+x)*u.C+c] = line[y]
				}
			}
		}
		return nil
	}, vOpts...)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// histMedian selects the window median from a 256-bin count histogram of
// n samples: the bin holding rank n/2 for odd n, the exact float64 mean
// of the bins holding ranks n/2-1 and n/2 for even n — the same rule as
// pickMedian, and exact because the mean of two integers ≤ 255 is a
// float64 with at most one fractional bit.
//
//declint:hot
func histMedian(h *[256]uint16, n int) float64 {
	if n%2 == 1 {
		want := uint16(n/2 + 1)
		var cum uint16
		for v := 0; v < 256; v++ {
			cum += h[v]
			if cum >= want {
				return float64(v)
			}
		}
		return 255
	}
	wantLo := uint16(n / 2) // 1-based rank of the lower middle
	var cum uint16
	for v := 0; v < 256; v++ {
		cum += h[v]
		if cum >= wantLo {
			lov := v
			if cum >= wantLo+1 {
				// Both middles fall in this bin.
				return float64(lov)
			}
			for w := v + 1; w < 256; w++ {
				if h[w] > 0 {
					return float64(lov+w) / 2
				}
			}
			return float64(lov)
		}
	}
	return 255
}

// MedianU8 applies a size×size median filter to an 8-bit image via a
// sliding 256-bin histogram per row. The result is a float64 image (even
// windows can produce half-integer medians) equal to Median over
// FromU8(u) bit-exactly. Windows wider than 255 overflow the uint16 bin
// counters and fall back to the float64 sorted-window path.
func MedianU8(u *imgcore.U8Image, size int) (*imgcore.Image, error) {
	return medianFilterU8(context.Background(), u, size)
}

// MedianU8Ctx is MedianU8 honouring ctx cancellation.
func MedianU8Ctx(ctx context.Context, u *imgcore.U8Image, size int) (*imgcore.Image, error) {
	return medianFilterU8(ctx, u, size)
}

func medianFilterU8(ctx context.Context, u *imgcore.U8Image, size int, popts ...parallel.Option) (*imgcore.Image, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	if size < 2 {
		return nil, fmt.Errorf("%w: got %d", ErrBadWindow, size)
	}
	if size > maxU8MedianWindow {
		wide, err := imgcore.FromU8(u)
		if err != nil {
			return nil, err
		}
		return medianFilter(ctx, wide, size, popts...)
	}
	lo, hi := windowOffsets(size)
	out, err := imgcore.New(u.W, u.H, u.C)
	if err != nil {
		return nil, err
	}
	n := size * size
	rowCost := u.W * u.C * size * 4
	opts := append([]parallel.Option{
		parallel.Grain(parallel.GrainForWidth(rowCost, minFilterWork)),
	}, popts...)
	err = parallel.For(ctx, u.H, func(yLo, yHi int) error {
		var hist [256]uint16
		rows := make([]int, size) // clamped row bases of the window's rows
		for y := yLo; y < yHi; y++ {
			for k := 0; k < size; k++ {
				yy := y + lo + k
				if yy < 0 {
					yy = 0
				} else if yy >= u.H {
					yy = u.H - 1
				}
				rows[k] = yy * u.W
			}
			for c := 0; c < u.C; c++ {
				// Seed the histogram at x=0.
				hist = [256]uint16{}
				for _, base := range rows {
					for dx := lo; dx <= hi; dx++ {
						xx := dx
						if xx < 0 {
							xx = 0
						} else if xx >= u.W {
							xx = u.W - 1
						}
						hist[u.Pix[(base+xx)*u.C+c]]++
					}
				}
				out.Set(0, y, c, histMedian(&hist, n))
				// Slide: the column leaving the window is replaced by the
				// one entering it; clamped taps repeat border samples, so
				// the histogram stays exactly the naive window multiset.
				for x := 1; x < u.W; x++ {
					xm := x - 1 + lo
					if xm < 0 {
						xm = 0
					} else if xm >= u.W {
						xm = u.W - 1
					}
					xp := x + hi
					if xp >= u.W {
						xp = u.W - 1
					}
					for _, base := range rows {
						hist[u.Pix[(base+xm)*u.C+c]]--
						hist[u.Pix[(base+xp)*u.C+c]]++
					}
					out.Set(x, y, c, histMedian(&hist, n))
				}
			}
		}
		return nil
	}, opts...)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// slidingSumU8 writes out[i] = Σ padded[i : i+w] as an int32 running sum.
//
//declint:hot
func slidingSumU8(out []int32, padded []uint8, w int) {
	var s int32
	for t := 0; t < w; t++ {
		s += int32(padded[t])
	}
	out[0] = s
	for i := 1; i < len(out); i++ {
		s += int32(padded[i+w-1]) - int32(padded[i-1])
		out[i] = s
	}
}

// padClampedI32 is padClamped over int32 lanes.
//
//declint:hot
func padClampedI32(dst, src []int32, n, stride, lo int) {
	for t := range dst {
		j := t + lo
		if j < 0 {
			j = 0
		} else if j >= n {
			j = n - 1
		}
		dst[t] = src[j*stride]
	}
}

// slidingSumI32 is slidingSumU8 over int32 inputs (the vertical pass over
// horizontal window sums).
//
//declint:hot
func slidingSumI32(out, padded []int32, w int) {
	var s int32
	for t := 0; t < w; t++ {
		s += padded[t]
	}
	out[0] = s
	for i := 1; i < len(out); i++ {
		s += padded[i+w-1] - padded[i-1]
		out[i] = s
	}
}

// BoxU8 applies a size×size mean filter to an 8-bit image with int32
// fixed-point accumulators: both separable passes sum exactly in integer
// arithmetic and the single division by size² at the end is the only
// rounding step. Output agrees with Box over FromU8(u) within the pinned
// ApproxEqual contract (the float64 running sums round along the way; the
// integer sums do not). Windows wider than 2896 would overflow the int32
// window sum and fall back to the float64 path.
func BoxU8(u *imgcore.U8Image, size int) (*imgcore.Image, error) {
	return boxFilterU8(context.Background(), u, size)
}

// BoxU8Ctx is BoxU8 honouring ctx cancellation.
func BoxU8Ctx(ctx context.Context, u *imgcore.U8Image, size int) (*imgcore.Image, error) {
	return boxFilterU8(ctx, u, size)
}

func boxFilterU8(ctx context.Context, u *imgcore.U8Image, size int, popts ...parallel.Option) (*imgcore.Image, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	if size < 2 {
		return nil, fmt.Errorf("%w: got %d", ErrBadWindow, size)
	}
	if size > maxU8BoxWindow {
		wide, err := imgcore.FromU8(u)
		if err != nil {
			return nil, err
		}
		return boxFilter(ctx, wide, size, popts...)
	}
	lo, _ := windowOffsets(size)
	mid := make([]int32, u.W*u.H*u.C)
	out, err := imgcore.New(u.W, u.H, u.C)
	if err != nil {
		return nil, err
	}
	inv := 1 / float64(size*size)

	rowCost := u.W * u.C
	hOpts := append([]parallel.Option{
		parallel.Grain(parallel.GrainForWidth(rowCost, minFilterWork)),
	}, popts...)
	err = parallel.For(ctx, u.H, func(yLo, yHi int) error {
		padded := make([]uint8, u.W+size-1)
		line := make([]int32, u.W)
		for y := yLo; y < yHi; y++ {
			for c := 0; c < u.C; c++ {
				padClampedU8(padded, u.Pix[(y*u.W)*u.C+c:], u.W, u.C, lo)
				slidingSumU8(line, padded, size)
				for x := 0; x < u.W; x++ {
					mid[(y*u.W+x)*u.C+c] = line[x]
				}
			}
		}
		return nil
	}, hOpts...)
	if err != nil {
		return nil, err
	}

	colCost := u.H * u.C
	vOpts := append([]parallel.Option{
		parallel.Grain(parallel.GrainForWidth(colCost, minFilterWork)),
	}, popts...)
	err = parallel.For(ctx, u.W, func(xLo, xHi int) error {
		padded := make([]int32, u.H+size-1)
		line := make([]int32, u.H)
		for x := xLo; x < xHi; x++ {
			for c := 0; c < u.C; c++ {
				padClampedI32(padded, mid[x*u.C+c:], u.H, u.W*u.C, lo)
				slidingSumI32(line, padded, size)
				for y := 0; y < u.H; y++ {
					out.Pix[(y*u.W+x)*u.C+c] = float64(line[y]) * inv
				}
			}
		}
		return nil
	}, vOpts...)
	if err != nil {
		return nil, err
	}
	return out, nil
}
