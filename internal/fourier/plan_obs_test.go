package fourier

import (
	"testing"

	"decamouflage/internal/obs"
)

// TestPlanCacheStats pins the hit/miss/eviction counters the plan cache
// reports under a deterministic serial access sequence. Counters live on
// the process-global obs registry, so the test asserts deltas.
func TestPlanCacheStats(t *testing.T) {
	obs.Enable()
	t.Cleanup(obs.Disable)
	if !obs.Enabled() {
		t.Skip("observability compiled out (noobs)")
	}
	resetPlanCache()
	defer resetPlanCache()

	hits := obs.C("fourier.plan.hits")
	misses := obs.C("fourier.plan.misses")
	size := obs.G("fourier.plan.size")
	h0, m0 := hits.Value(), misses.Value()

	if _, err := PlanFor(64, false); err != nil { // miss
		t.Fatal(err)
	}
	if _, err := PlanFor(64, false); err != nil { // hit
		t.Fatal(err)
	}
	if _, err := PlanFor(64, true); err != nil { // direction is part of the key: miss
		t.Fatal(err)
	}
	if got := hits.Value() - h0; got != 1 {
		t.Fatalf("hits delta = %d, want 1", got)
	}
	if got := misses.Value() - m0; got != 2 {
		t.Fatalf("misses delta = %d, want 2", got)
	}
	if got := size.Value(); got != int64(planCacheLen()) {
		t.Fatalf("size gauge = %d, cache len = %d", got, planCacheLen())
	}

	// A Bluestein length pulls its radix-2 sub-plans through the same
	// cache: one top-level miss plus two sub-plan misses.
	m1 := misses.Value()
	if _, err := PlanFor(12, false); err != nil {
		t.Fatal(err)
	}
	if got := misses.Value() - m1; got != 3 {
		t.Fatalf("Bluestein misses delta = %d, want 3 (plan + 2 sub-plans)", got)
	}

	// Flooding past the cap must surface as evictions.
	e0 := obs.C("fourier.plan.evictions").Value()
	for n := 1; n <= planCacheCap+8; n++ {
		if _, err := PlanFor(2*n, false); err != nil {
			t.Fatal(err)
		}
	}
	if got := obs.C("fourier.plan.evictions").Value() - e0; got == 0 {
		t.Fatal("flooding past the cap recorded no evictions")
	}
	if got := planCacheLen(); got > planCacheCap {
		t.Fatalf("cache grew to %d entries, cap is %d", got, planCacheCap)
	}
}
