package obs_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"decamouflage/internal/obs"
	"decamouflage/internal/parallel"
)

// TestRegistryConcurrent hammers a shared set of metrics from parallel.For
// workers while a reader repeatedly snapshots and renders the registry.
// Run with -race this pins the lock-free recording path: handles resolved
// through the registry must be safe to record into from every worker.
func TestRegistryConcurrent(t *testing.T) {
	obs.Enable()
	t.Cleanup(obs.Disable)
	if !obs.Enabled() {
		t.Skip("observability compiled out (noobs)")
	}

	r := obs.NewRegistry()
	const iters = 2000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WriteJSON(&sb); err != nil {
				t.Errorf("WriteJSON: %v", err)
				return
			}
			if err := r.WritePrometheus(&sb); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
		}
	}()
	err := parallel.For(context.Background(), iters, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			// Mixed registry lookups and lock-free recording, like a
			// hot path that resolves handles lazily.
			r.Counter("race.count").Inc()
			r.Gauge("race.size").Set(int64(i))
			r.Histogram("race.seconds").Observe(time.Duration(i%7) * time.Microsecond)
		}
		return nil
	}, parallel.Workers(8))
	if err != nil {
		t.Fatal(err)
	}
	<-done

	if got := r.Counter("race.count").Value(); got != iters {
		t.Fatalf("counter = %d, want %d", got, iters)
	}
	if got := r.Histogram("race.seconds").Count(); got != iters {
		t.Fatalf("histogram count = %d, want %d", got, iters)
	}
}

// TestEnableDisableConcurrent flips the recording flag while workers
// record, pinning the atomic gate under -race.
func TestEnableDisableConcurrent(t *testing.T) {
	t.Cleanup(obs.Disable)
	c := obs.C("race.toggle.count")
	err := parallel.For(context.Background(), 1000, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if i%2 == 0 {
				obs.Enable()
			} else {
				obs.Disable()
			}
			c.Inc()
			_ = obs.Enabled()
			_ = obs.Clock()
		}
		return nil
	}, parallel.Workers(8))
	if err != nil {
		t.Fatal(err)
	}
}
