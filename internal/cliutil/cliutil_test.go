package cliutil

import (
	"path/filepath"
	"testing"

	"decamouflage/internal/detect"
	"decamouflage/internal/testutil"
)

func TestParseSize(t *testing.T) {
	tests := []struct {
		in      string
		w, h    int
		wantErr bool
	}{
		{"224x224", 224, 224, false},
		{"32X64", 32, 64, false},
		{" 8x8 ", 8, 8, false},
		{"224", 0, 0, true},
		{"axb", 0, 0, true},
		{"10x", 0, 0, true},
		{"0x5", 0, 0, true},
		{"-3x5", 0, 0, true},
		{"3x5x7", 0, 0, true},
	}
	for _, tt := range tests {
		w, h, err := ParseSize(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseSize(%q) err = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && (w != tt.w || h != tt.h) {
			t.Errorf("ParseSize(%q) = %dx%d, want %dx%d", tt.in, w, h, tt.w, tt.h)
		}
	}
}

func TestCalibrationFileRoundTrip(t *testing.T) {
	c := detect.NewCalibration("white-box")
	c.Set("scaling/MSE", detect.Threshold{Value: 1714.96, Direction: detect.Above})
	path := filepath.Join(t.TempDir(), "cal.json")
	if err := SaveCalibration(path, c); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCalibration(path)
	if err != nil {
		t.Fatal(err)
	}
	th, ok := back.Get("scaling/MSE")
	if !ok || !testutil.BitEqual(th.Value, 1714.96) {
		t.Errorf("round trip = %+v ok=%v", th, ok)
	}
	if _, err := LoadCalibration(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
