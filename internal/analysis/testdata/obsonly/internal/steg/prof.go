// Package steg is a kernel package: direct profiling and exposition
// imports are banned here.
package steg

import (
	_ "expvar"
	_ "runtime/pprof"
)
