// Package analysis is declint's engine: a pure-stdlib static-analysis
// driver (go/parser, go/types, go/importer — no external tooling) that
// walks every package in the module and enforces the repository's
// determinism, concurrency, and float-safety invariants as named,
// individually-testable checks.
//
// The invariants exist because Decamouflage's detection thresholds
// (MSE/SSIM/CSP, Tables V–IX of the paper) are only reproducible if every
// numeric kernel is bit-deterministic. PR 1's internal/parallel substrate
// established that by convention; these checks enforce it mechanically:
//
//	noraw-go     no raw go statements or sync.WaitGroup pools outside
//	             internal/parallel — all fan-out routes through the substrate
//	determinism  no time.Now, math/rand, or map-iteration-ordered output in
//	             the numeric kernel packages
//	floateq      no ==/!= on float operands outside the intentional
//	             exact-equality helpers in internal/testutil
//	naninput     exported tensor-accepting functions in metrics/steg/detect
//	             must guard NaN/Inf or carry a //declint:nan-ok audit marker
//	errdrop      no `_ =` discards of error-returning calls in non-test code
//	obsonly      no runtime/pprof, net/http/pprof, or expvar imports outside
//	             internal/obs and the cmd/ entry points
//
// Intentional violations are annotated in place:
//
//	//declint:ignore <check> <reason>
//
// where the reason is mandatory and the directive covers its own line and
// the line below.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one rule violation at a position.
type Finding struct {
	Check string
	Pos   token.Position
	Msg   string
}

// String renders the canonical file:line:col form findings are reported in.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Msg)
}

// Config scopes the checks. The zero value is unusable; start from
// DefaultConfig, which encodes this repository's layout. All package
// matching is by import-path suffix (see Package.HasSuffix), so testdata
// fixtures that mirror the layout are checked under the same config.
type Config struct {
	// Checks names the checks to run, in registry order. Empty = all.
	Checks []string

	// ParallelPkg is the one package allowed to own raw goroutines.
	ParallelPkg string
	// DeterminismPkgs are the numeric kernel packages whose non-test code
	// must be bit-deterministic.
	DeterminismPkgs []string
	// FloatEqAllowPkgs are packages whose float ==/!= are intentional by
	// charter (the shared exact-equality test helpers).
	FloatEqAllowPkgs []string
	// NaNPkgs are the packages whose exported tensor-accepting functions
	// the naninput check audits.
	NaNPkgs []string
	// TensorTypes are qualified named-type suffixes treated as image
	// tensors (matched against the fully-qualified type string).
	TensorTypes []string
	// GuardFuncs are callee names accepted as NaN/Inf guards.
	GuardFuncs []string
	// ObsPkg is the one library package allowed to import the profiling
	// and metrics-exposition machinery directly.
	ObsPkg string
	// ObsOnlyImports are the import paths restricted to ObsPkg and the
	// cmd/ entry points.
	ObsOnlyImports []string
}

// DefaultConfig returns the configuration declint runs with on this module.
func DefaultConfig() Config {
	return Config{
		ParallelPkg: "internal/parallel",
		DeterminismPkgs: []string{
			"internal/scaling", "internal/fourier", "internal/filtering",
			"internal/metrics", "internal/steg", "internal/attack",
			"internal/qpsolve", "internal/detect",
		},
		FloatEqAllowPkgs: []string{"internal/testutil"},
		NaNPkgs:          []string{"internal/metrics", "internal/steg", "internal/detect"},
		TensorTypes:      []string{"internal/imgcore.Image"},
		GuardFuncs: []string{
			"Validate", "checkPair", "HasNaN", "IsNaN", "IsInf", "Finite",
		},
		ObsPkg: "internal/obs",
		ObsOnlyImports: []string{
			"runtime/pprof", "net/http/pprof", "expvar",
		},
	}
}

// A check inspects one package under a config and reports findings.
type check struct {
	name string
	doc  string
	run  func(pkg *Package, cfg Config) []Finding
}

// registry holds every check in report order. Names are part of the
// suppression syntax, so they are stable API.
var registry = []check{
	{"noraw-go", "raw goroutines / WaitGroup pools outside internal/parallel", checkNoRawGo},
	{"determinism", "time.Now, math/rand, map-ordered output in kernel packages", checkDeterminism},
	{"floateq", "exact ==/!= on float operands", checkFloatEq},
	{"naninput", "exported tensor functions without NaN/Inf guard or nan-ok marker", checkNaNInput},
	{"errdrop", "_ = discards of error-returning calls", checkErrDrop},
	{"obsonly", "profiling/exposition imports outside internal/obs and cmd/", checkObsOnly},
}

// Checks lists the registered check names and one-line descriptions.
func Checks() []struct{ Name, Doc string } {
	out := make([]struct{ Name, Doc string }, len(registry))
	for i, c := range registry {
		out[i] = struct{ Name, Doc string }{c.name, c.doc}
	}
	return out
}

// KnownCheck reports whether name is a registered check.
func KnownCheck(name string) bool {
	for _, c := range registry {
		if c.name == name {
			return true
		}
	}
	return false
}

// Run executes the configured checks over the packages, applies
// //declint:ignore suppressions, and returns the surviving findings sorted
// by position. Malformed suppressions are reported as check "declint".
func Run(pkgs []*Package, cfg Config) ([]Finding, error) {
	enabled := map[string]bool{}
	if len(cfg.Checks) == 0 {
		for _, c := range registry {
			enabled[c.name] = true
		}
	} else {
		for _, name := range cfg.Checks {
			if !KnownCheck(name) {
				return nil, fmt.Errorf("unknown check %q", name)
			}
			enabled[name] = true
		}
	}
	known := map[string]bool{}
	for _, c := range registry {
		known[c.name] = true
	}

	var out []Finding
	for _, pkg := range pkgs {
		sup, bad := collectSuppressions(pkg, known)
		out = append(out, bad...)
		for _, c := range registry {
			if !enabled[c.name] {
				continue
			}
			for _, f := range c.run(pkg, cfg) {
				if !sup.suppressed(f) {
					out = append(out, f)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out, nil
}
