package detect

import (
	"context"
	"errors"
	"fmt"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/obs"
	"decamouflage/internal/parallel"
	"decamouflage/internal/scaling"
	"decamouflage/internal/steg"
)

// EnsembleVerdict is the combined decision of several detectors.
type EnsembleVerdict struct {
	// Attack is the majority-vote decision.
	Attack bool
	// Votes counts how many methods voted attack.
	Votes int
	// Verdicts holds the individual method decisions, in detector order.
	Verdicts []Verdict
}

// Ensemble majority-votes several detectors, running them concurrently —
// the deployable Decamouflage system of the paper's Figure 8 ("runs the
// three methods yielding the decision individually in parallel, then
// performs majority voting").
type Ensemble struct {
	detectors []*Detector

	// pipe is the stage-DAG engine the ensemble scores through: per-image
	// memoized substrates, batch-shared scaler/FFT-plan caches, pooled
	// buffers (see pipeline.go).
	pipe *Pipeline

	// Whole-ensemble latency and majority-vote tallies, resolved at
	// construction (detect.ensemble.*), plus the batch equivalents.
	detectH     *obs.Histogram
	images      *obs.Counter
	attackC     *obs.Counter
	benignC     *obs.Counter
	batchH      *obs.Histogram
	batchImages *obs.Counter
}

// NewEnsemble builds an ensemble. At least one detector is required; an odd
// count avoids ties (ties break toward benign).
func NewEnsemble(detectors ...*Detector) (*Ensemble, error) {
	if len(detectors) == 0 {
		return nil, errors.New("detect: ensemble needs at least one detector")
	}
	for i, d := range detectors {
		if d == nil {
			return nil, fmt.Errorf("detect: ensemble detector %d is nil", i)
		}
	}
	return &Ensemble{
		detectors:   append([]*Detector(nil), detectors...),
		pipe:        NewPipeline(),
		detectH:     obs.H("detect.ensemble.seconds"),
		images:      obs.C("detect.ensemble.images"),
		attackC:     obs.C("detect.ensemble.attack"),
		benignC:     obs.C("detect.ensemble.benign"),
		batchH:      obs.H("detect.batch.seconds"),
		batchImages: obs.C("detect.batch.images"),
	}, nil
}

// Detectors returns the ensemble members.
func (e *Ensemble) Detectors() []*Detector {
	return append([]*Detector(nil), e.detectors...)
}

// SetQuantized toggles the fixed-point resize fast path for 8-bit inputs.
// When enabled, the round trip's downscale runs through the Q1.15
// integer accumulators of scaling.ResizeU8Into — measurably faster, and
// accurate to scaling.FixedTolerance rather than bit-identical, so
// scaling-method scores can differ from the float64 path within that
// contract. The bit-exact uint8 routing (LUT gray, integer min filter)
// is always on for 8-bit inputs and is unaffected by this switch.
// Safe to call concurrently with Detect; in-flight images may use either
// path for their downscale.
func (e *Ensemble) SetQuantized(on bool) { e.pipe.quantized.Store(on) }

// Quantized reports whether the fixed-point resize fast path is enabled.
func (e *Ensemble) Quantized() bool { return e.pipe.quantized.Load() }

// Detect runs every member concurrently (via parallel.Do, one task per
// method, bounded by GOMAXPROCS) and majority-votes. The members score
// through the stage-DAG pipeline: each expensive substrate (gray plane,
// round trip, erosion, spectrum) is computed exactly once per image and
// shared, with scores bit-identical to the legacy per-scorer path
// (DetectLegacy). It honours ctx cancellation between and during method
// launches; the first scoring error — by detector order — aborts the
// ensemble.
//
// Observability: the whole call is one stage ("ensemble.detect", latency
// in detect.ensemble.seconds) with each method's span nested under it —
// pipeline stage spans nest under the method that computed them — and the
// vote outcome recorded on the detect.ensemble.attack/benign counters.
//
//declint:nan-ok delegates to detect, whose Validate runs first
func (e *Ensemble) Detect(ctx context.Context, img *imgcore.Image) (*EnsembleVerdict, error) {
	return e.detect(ctx, img)
}

// detect is Detect with parallel options threaded through (the
// differential suite pins Workers(1) vs Workers(N) equivalence; the fused
// batch path serializes member dispatch per image).
func (e *Ensemble) detect(ctx context.Context, img *imgcore.Image, popts ...parallel.Option) (*EnsembleVerdict, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := img.Validate(); err != nil {
		return nil, err
	}
	// Flight recorder: when one is installed, every image is traced — the
	// wide event attributes per-stage latency from the span tree, and the
	// finished tree is offered to the tail sampler. Callers that already
	// traced the context keep their trace (and own its End/retention).
	rec := obs.Events()
	var tr *obs.Trace
	if rec.Active() && obs.TraceID(ctx) == "" {
		ctx, tr = obs.WithTrace(ctx, "ensemble.detect")
	}
	sctx, st := obs.StartStage(ctx, "ensemble.detect", e.detectH)
	in := e.pipe.intermediates(img)
	// parallel.Do waits for in-flight tasks even on error/cancellation, so
	// no task can still be reading the pooled substrates when they return
	// to their pools.
	defer in.release()
	verdicts := make([]Verdict, len(e.detectors))
	tasks := make([]func() error, len(e.detectors))
	for i, d := range e.detectors {
		tasks[i] = func() error {
			v, err := d.detectIn(sctx, in)
			if err != nil {
				return fmt.Errorf("%s: %w", d.Name(), err)
			}
			verdicts[i] = v
			return nil
		}
	}
	err := parallel.Do(ctx, tasks, popts...)
	var out *EnsembleVerdict
	if err == nil {
		out = e.tally(st, verdicts)
	}
	// End the stage before building the event so the span durations the
	// event serializes are final. This function has a single exit, so End
	// runs on every path without a defer (which would double-observe).
	st.End()
	if rec.Active() {
		rec.Record(e.detectEvent(sctx, st.Span(), img, in, out, err))
		if tr != nil {
			tr.End()
			obs.Tail().Offer(tr, err)
		}
	}
	return out, err
}

// DetectLegacy runs every member through its standalone Score/ScoreCtx
// path with no substrate sharing — the pre-pipeline ensemble pass. It is
// retained as the differential oracle: the equivalence suite and the
// BenchmarkEnsemble{Legacy,Pipeline} pair pin that Detect produces
// bit-identical verdicts in strictly less work.
func (e *Ensemble) DetectLegacy(ctx context.Context, img *imgcore.Image) (*EnsembleVerdict, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := img.Validate(); err != nil {
		return nil, err
	}
	sctx, st := obs.StartStage(ctx, "ensemble.detect", e.detectH)
	defer st.End()
	verdicts := make([]Verdict, len(e.detectors))
	tasks := make([]func() error, len(e.detectors))
	for i, d := range e.detectors {
		tasks[i] = func() error {
			v, err := d.DetectCtx(sctx, img)
			if err != nil {
				return fmt.Errorf("%s: %w", d.Name(), err)
			}
			verdicts[i] = v
			return nil
		}
	}
	if err := parallel.Do(ctx, tasks); err != nil {
		return nil, err
	}
	return e.tally(st, verdicts), nil
}

// tally majority-votes the member verdicts, annotates the ensemble stage
// span and records the outcome counters — the shared tail of every
// ensemble pass.
func (e *Ensemble) tally(st obs.Stage, verdicts []Verdict) *EnsembleVerdict {
	votes := 0
	for _, v := range verdicts {
		if v.Attack {
			votes++
		}
	}
	out := &EnsembleVerdict{
		Attack:   votes*2 > len(verdicts),
		Votes:    votes,
		Verdicts: verdicts,
	}
	sp := st.Span()
	sp.AttrInt("votes", int64(votes))
	sp.AttrBool("attack", out.Attack)
	e.images.Inc()
	if out.Attack {
		e.attackC.Inc()
	} else {
		e.benignC.Inc()
	}
	return out
}

// DetectBatch runs the ensemble over many images concurrently (bounded by
// GOMAXPROCS via the shared parallel substrate) and returns one verdict
// per image, in order. Images fan out across workers while each image's
// members run serially on its worker, so the batch is parallel without
// oversubscribing the per-stage kernels; all images share the pipeline's
// scaler and FFT-plan caches. It stops at the first error or context
// cancellation. An empty batch returns an empty, non-nil verdict slice.
//
//declint:nan-ok per-image detect calls Validate before any scoring
func (e *Ensemble) DetectBatch(ctx context.Context, imgs []*imgcore.Image) ([]*EnsembleVerdict, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	bctx, st := obs.StartStage(ctx, "detect.batch", e.batchH)
	defer st.End()
	e.batchImages.Add(int64(len(imgs)))
	out := make([]*EnsembleVerdict, len(imgs))
	err := parallel.For(bctx, len(imgs), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			v, err := e.detect(bctx, imgs[i], parallel.Workers(1))
			if err != nil {
				return fmt.Errorf("detect: image %d: %w", i, err)
			}
			out[i] = v
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DefaultConfig describes the canonical three-method Decamouflage ensemble
// (the paper's recommended configuration): scaling/MSE, filtering/SSIM and
// steganalysis/CSP.
type DefaultConfig struct {
	// Scaler is the protected model's scaling function. Required.
	Scaler *scaling.Scaler
	// FilterWindow is the minimum-filter size (default 2, the paper's).
	FilterWindow int
	// StegOptions tunes the CSP computation (zero value = calibrated
	// defaults).
	StegOptions steg.Options
	// ScalingThreshold is the Method-1 boundary (from calibration).
	ScalingThreshold Threshold
	// FilteringThreshold is the Method-2 boundary (from calibration).
	FilteringThreshold Threshold
	// CSPThreshold is the Method-3 boundary; zero value uses the paper's
	// fixed CSP >= 2 rule.
	CSPThreshold Threshold
	// ScalingMetric and FilteringMetric pick the score metrics; defaults
	// follow the paper's recommendations (MSE for scaling, SSIM for
	// filtering).
	ScalingMetric   Metric
	FilteringMetric Metric
}

// NewDefaultEnsemble assembles the canonical three-method system.
func NewDefaultEnsemble(cfg DefaultConfig) (*Ensemble, error) {
	if cfg.Scaler == nil {
		return nil, ErrNilScaler
	}
	if cfg.FilterWindow == 0 {
		cfg.FilterWindow = 2
	}
	if cfg.ScalingMetric == 0 {
		cfg.ScalingMetric = MSE
	}
	if cfg.FilteringMetric == 0 {
		cfg.FilteringMetric = SSIM
	}
	if cfg.CSPThreshold == (Threshold{}) {
		cfg.CSPThreshold = DefaultCSPThreshold()
	}
	ss, err := NewScalingScorer(cfg.Scaler, cfg.ScalingMetric)
	if err != nil {
		return nil, err
	}
	sd, err := NewDetector(ss, cfg.ScalingThreshold)
	if err != nil {
		return nil, fmt.Errorf("detect: scaling detector: %w", err)
	}
	fs, err := NewFilteringScorer(cfg.FilterWindow, cfg.FilteringMetric)
	if err != nil {
		return nil, err
	}
	fd, err := NewDetector(fs, cfg.FilteringThreshold)
	if err != nil {
		return nil, fmt.Errorf("detect: filtering detector: %w", err)
	}
	gd, err := NewDetector(NewStegScorer(cfg.StegOptions), cfg.CSPThreshold)
	if err != nil {
		return nil, fmt.Errorf("detect: steganalysis detector: %w", err)
	}
	return NewEnsemble(sd, fd, gd)
}
