package detect

import "fmt"

// Method identifies one of the paper's three detection methods,
// independent of the score metric it runs with.
type Method int

// The detection methods of sections IV-A through IV-C.
const (
	// UnknownMethod is the zero value, reported for names no method owns.
	UnknownMethod Method = iota
	// Scaling is Method 1: the down-up round trip comparison.
	Scaling
	// Filtering is Method 2: the minimum-filter comparison.
	Filtering
	// Steganalysis is Method 3: centered spectrum points.
	Steganalysis
)

// String implements fmt.Stringer, returning the method-name prefix used
// in scorer names ("scaling" in "scaling/MSE").
func (m Method) String() string {
	switch m {
	case Scaling:
		return "scaling"
	case Filtering:
		return "filtering"
	case Steganalysis:
		return "steganalysis"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// MethodOf maps a scorer name ("scaling/MSE", "steganalysis/CSP") to the
// method that owns it, or UnknownMethod.
func MethodOf(name string) Method {
	for i := 0; i < len(name); i++ {
		if name[i] == '/' {
			name = name[:i]
			break
		}
	}
	switch name {
	case "scaling":
		return Scaling
	case "filtering":
		return Filtering
	case "steganalysis":
		return Steganalysis
	default:
		return UnknownMethod
	}
}

// MethodOf returns the detection method that produced the verdict (the
// Method field is the full scorer name; this resolves its method prefix).
func (v Verdict) MethodOf() Method { return MethodOf(v.Method) }

// String implements fmt.Stringer: "scaling/MSE: attack (score 123.456)".
func (v Verdict) String() string {
	cls := "benign"
	if v.Attack {
		cls = "attack"
	}
	return fmt.Sprintf("%s: %s (score %.6g)", v.Method, cls, v.Score)
}

// String implements fmt.Stringer: "attack (2/3 votes)".
func (v EnsembleVerdict) String() string {
	cls := "benign"
	if v.Attack {
		cls = "attack"
	}
	return fmt.Sprintf("%s (%d/%d votes)", cls, v.Votes, len(v.Verdicts))
}
