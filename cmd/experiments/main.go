// Command experiments regenerates the paper's tables and figures (and this
// reproduction's extension experiments) on synthetic corpora.
//
// Usage:
//
//	experiments -list
//	experiments                          # run everything at default scale
//	experiments -run T2,T8 -n 1000       # paper-scale specific experiments
//	experiments -csv out/csv -artifacts out/art
//	experiments -run T2 -metrics-out results/metrics_t2.json
//	experiments -cpuprofile cpu.out -httpdebug localhost:6060
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"decamouflage/internal/cliutil"
	"decamouflage/internal/experiments"
	"decamouflage/internal/obs"
	"decamouflage/internal/scaling"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		list      = fs.Bool("list", false, "list experiment IDs and exit")
		runIDs    = fs.String("run", "", "comma-separated experiment IDs (default: all)")
		n         = fs.Int("n", 100, "corpus size per class (paper scale: 1000)")
		src       = fs.String("src", "128x128", "source image geometry WxH")
		dst       = fs.String("dst", "32x32", "model input geometry WxH")
		alg       = fs.String("alg", "bilinear", "scaling algorithm under attack (nearest|bilinear|bicubic|lanczos|area)")
		eps       = fs.Float64("eps", 2, "attack L-inf budget")
		seed      = fs.Int64("seed", 1, "corpus seed")
		csvDir    = fs.String("csv", "", "directory for CSV series (figures)")
		artifacts = fs.String("artifacts", "", "directory for PNG artifacts")

		metricsOut = fs.String("metrics-out", "", `dump per-experiment metrics on exit to this file ("-" for stdout)`)
		metricsFmt = fs.String("metrics-format", "", "metrics dump format: json (default) or prom")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file on exit")
		httpDebug  = fs.String("httpdebug", "", "serve /healthz, /metrics, /debug/events and /debug/pprof on this address")

		eventsOut   = fs.String("events-out", "", `dump flight-recorder events as NDJSON on exit ("-" for stdout)`)
		eventsBuf   = fs.Int("events-buffer", 0, "flight-recorder ring capacity (implies recording; default 1024)")
		traceKeep   = fs.Int("trace-keep", 0, "retain up to this many sampled traces (implies tail sampling)")
		traceOut    = fs.String("trace-out", "", `dump retained traces as NDJSON on exit ("-" for stdout)`)
		traceSample = fs.Float64("trace-sample", 0, "probability of retaining an unremarkable trace (errors/records/slow always kept)")
		watchdog    = fs.Bool("watchdog", false, "sample runtime health (GC, heap, goroutines, scheduler lag) into gauges")
		watchdogMs  = fs.Int("watchdog-interval", 0, "watchdog sampling interval in milliseconds (default 1000)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}
	srcW, srcH, err := cliutil.ParseSize(*src)
	if err != nil {
		return err
	}
	dstW, dstH, err := cliutil.ParseSize(*dst)
	if err != nil {
		return err
	}
	algorithm, err := scaling.ParseAlgorithm(*alg)
	if err != nil {
		return err
	}

	settings := obs.Settings{
		MetricsOut:         *metricsOut,
		MetricsFormat:      *metricsFmt,
		CPUProfile:         *cpuProfile,
		MemProfile:         *memProfile,
		DebugAddr:          *httpDebug,
		EventsOut:          *eventsOut,
		EventBuffer:        *eventsBuf,
		TraceKeep:          *traceKeep,
		TraceOut:           *traceOut,
		TraceSample:        *traceSample,
		Watchdog:           *watchdog,
		WatchdogIntervalMs: *watchdogMs,
	}
	sess, err := settings.Apply()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sess.Close(); err == nil {
			err = cerr
		}
	}()
	if addr := sess.DebugAddr(); addr != "" {
		fmt.Fprintln(os.Stderr, "experiments: debug server on http://"+addr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	r := experiments.NewRunner(experiments.Config{
		N:    *n,
		SrcW: srcW, SrcH: srcH, DstW: dstW, DstH: dstH,
		Algorithm:    algorithm,
		Eps:          *eps,
		Seed:         *seed,
		Out:          os.Stdout,
		CSVDir:       *csvDir,
		ArtifactsDir: *artifacts,
	})
	var ids []string
	if *runIDs != "" {
		for _, id := range strings.Split(*runIDs, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	return r.Run(ctx, ids...)
}
