package testutil

import (
	"math"
	"testing"
)

func TestBitEqual(t *testing.T) {
	if !BitEqual(1.5, 1.5) || BitEqual(1.5, 1.5000001) {
		t.Fatal("BitEqual misjudges plain values")
	}
	if !BitEqual(0, math.Copysign(0, -1)) {
		t.Fatal("BitEqual must follow IEEE ==: +0 equals -0")
	}
	if BitEqual(math.NaN(), math.NaN()) {
		t.Fatal("BitEqual must follow IEEE ==: NaN != NaN")
	}
	if !BitEqual(math.Inf(1), math.Inf(1)) {
		t.Fatal("equal infinities must compare equal")
	}
	if !BitEqual32(float32(0.1), float32(0.1)) || BitEqual32(1, 2) {
		t.Fatal("BitEqual32 misjudges plain values")
	}
	if !BitEqualComplex(2+3i, 2+3i) || BitEqualComplex(2+3i, 2+3.0000001i) {
		t.Fatal("BitEqualComplex misjudges plain values")
	}
}

func TestFirstDiff(t *testing.T) {
	if i := FirstDiff([]float64{1, 2, 3}, []float64{1, 2, 3}); i != -1 {
		t.Fatalf("identical slices: got %d, want -1", i)
	}
	if i := FirstDiff([]float64{1, 2, 3}, []float64{1, 9, 3}); i != 1 {
		t.Fatalf("differing slices: got %d, want 1", i)
	}
	if i := FirstDiff([]float64{1, 2}, []float64{1, 2, 3}); i != 2 {
		t.Fatalf("length mismatch: got %d, want 2", i)
	}
	if i := FirstDiff(nil, nil); i != -1 {
		t.Fatalf("nil slices: got %d, want -1", i)
	}
	nan := math.NaN()
	if i := FirstDiff([]float64{nan}, []float64{nan}); i != 0 {
		t.Fatalf("NaN samples must differ under IEEE ==: got %d, want 0", i)
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.0, 0, 0) {
		t.Fatal("exact match must pass with zero tolerances")
	}
	if !ApproxEqual(100, 100.4, 0.005, 0) {
		t.Fatal("relative tolerance must admit proportional error")
	}
	if ApproxEqual(100, 101, 0.005, 0) {
		t.Fatal("relative tolerance must reject error beyond relTol·max")
	}
	if !ApproxEqual(1e-300, -1e-300, 0.5, 1e-250) {
		t.Fatal("absolute tolerance must handle near-zero comparisons")
	}
	if ApproxEqual(1e-300, 1.0, 0.5, 1e-250) {
		t.Fatal("absolute tolerance must not mask real divergence")
	}
	if !ApproxEqual(math.Inf(1), math.Inf(1), 0, 0) {
		t.Fatal("equal infinities must compare equal")
	}
	if ApproxEqual(math.Inf(1), math.Inf(-1), 1, 1) {
		t.Fatal("opposite infinities must not compare equal")
	}
	if ApproxEqual(math.Inf(1), math.MaxFloat64, 0.1, 0) {
		t.Fatal("infinity vs finite must not compare equal")
	}
	if !ApproxEqual(math.NaN(), math.NaN(), 0, 0) {
		t.Fatal("two NaNs must compare equal (both paths failed identically)")
	}
	if ApproxEqual(math.NaN(), 1.0, 1, 1) || ApproxEqual(1.0, math.NaN(), 1, 1) {
		t.Fatal("NaN vs number must not compare equal")
	}
	if !ApproxEqual(0, math.Copysign(0, -1), 0, 0) {
		t.Fatal("+0 and -0 must compare equal")
	}
}

func TestULPDiff(t *testing.T) {
	if d := ULPDiff(1.5, 1.5); d != 0 {
		t.Fatalf("identical values: got %d ULPs, want 0", d)
	}
	if d := ULPDiff(1.0, math.Nextafter(1.0, 2.0)); d != 1 {
		t.Fatalf("adjacent floats: got %d ULPs, want 1", d)
	}
	if d := ULPDiff(math.Nextafter(1.0, 2.0), 1.0); d != 1 {
		t.Fatalf("ULPDiff must be symmetric: got %d, want 1", d)
	}
	// Three steps up from 1.0.
	v := 1.0
	for i := 0; i < 3; i++ {
		v = math.Nextafter(v, 2.0)
	}
	if d := ULPDiff(1.0, v); d != 3 {
		t.Fatalf("three steps: got %d ULPs, want 3", d)
	}
	if d := ULPDiff(0, math.Copysign(0, -1)); d != 0 {
		t.Fatalf("+0 vs -0: got %d ULPs, want 0 (same point on the ULP line)", d)
	}
	// Straddling zero: smallest positive and negative subnormals are two
	// ULPs apart (one step each side of the collapsed zero).
	tiny := math.Float64frombits(1)
	if d := ULPDiff(tiny, -tiny); d != 2 {
		t.Fatalf("subnormal straddle: got %d ULPs, want 2", d)
	}
	if d := ULPDiff(0, tiny); d != 1 {
		t.Fatalf("zero to smallest subnormal: got %d ULPs, want 1", d)
	}
	if d := ULPDiff(math.NaN(), 1.0); d != math.MaxUint64 {
		t.Fatalf("NaN operand: got %d, want MaxUint64", d)
	}
	if d := ULPDiff(math.NaN(), math.NaN()); d != math.MaxUint64 {
		t.Fatalf("NaN operands: got %d, want MaxUint64", d)
	}
	if d := ULPDiff(math.MaxFloat64, math.Inf(1)); d != 1 {
		t.Fatalf("MaxFloat64 to +Inf: got %d ULPs, want 1 (Inf is the next bit pattern)", d)
	}
}

func TestFirstDiffComplex(t *testing.T) {
	if i := FirstDiffComplex([]complex128{1 + 2i}, []complex128{1 + 2i}); i != -1 {
		t.Fatalf("identical slices: got %d, want -1", i)
	}
	if i := FirstDiffComplex([]complex128{1 + 2i, 5}, []complex128{1 + 2i, 6}); i != 1 {
		t.Fatalf("differing slices: got %d, want 1", i)
	}
	if i := FirstDiffComplex([]complex128{1}, nil); i != 0 {
		t.Fatalf("length mismatch: got %d, want 0", i)
	}
}
