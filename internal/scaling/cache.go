package scaling

import (
	"math"
	"sync"
)

// coeffCacheCap bounds the global coefficient cache. Detection pipelines
// touch a handful of geometries (model input sizes × experiment image
// sizes × a few algorithms), each coefficient matrix is O(m·taps) — 128
// entries cover every sweep in cmd/experiments while keeping worst-case
// memory small.
const coeffCacheCap = 128

// coeffKey identifies a coefficient operator up to output equality:
// lengths plus every Options field that affects the weights. Coord 0 is
// normalized to HalfPixel so the zero-value Options and the explicit
// default share an entry.
type coeffKey struct {
	n, m      int
	algorithm Algorithm
	antialias bool
	coord     CoordMode
}

type coeffEntry struct {
	coeff *Coeff
	used  uint64 // logical access clock, for LRU eviction
}

var coeffCache = struct {
	sync.Mutex
	m     map[coeffKey]*coeffEntry
	clock uint64
}{m: make(map[coeffKey]*coeffEntry)}

// CoeffFor returns the cached coefficient operator for resampling length n
// to length m under opts, building and caching it on first use. The
// returned *Coeff is shared: callers must treat it as immutable (every
// consumer in this repository only reads Rows/Idx/W). The cache holds at
// most coeffCacheCap entries and evicts the least recently used; evicted
// operators remain valid for callers still holding them.
func CoeffFor(n, m int, opts Options) (*Coeff, error) {
	key := coeffKey{n: n, m: m, algorithm: opts.Algorithm, antialias: opts.Antialias, coord: opts.Coord}
	if key.coord == 0 {
		key.coord = HalfPixel
	}
	coeffCache.Lock()
	if e, ok := coeffCache.m[key]; ok {
		coeffCache.clock++
		e.used = coeffCache.clock
		c := e.coeff
		coeffCache.Unlock()
		return c, nil
	}
	coeffCache.Unlock()

	// Build outside the lock: construction is the expensive part, and
	// holding the lock across it would serialize unrelated geometries.
	c, err := BuildCoeff(n, m, opts)
	if err != nil {
		return nil, err
	}

	coeffCache.Lock()
	defer coeffCache.Unlock()
	if e, ok := coeffCache.m[key]; ok {
		// Lost the build race; keep the incumbent so all callers share one
		// instance.
		coeffCache.clock++
		e.used = coeffCache.clock
		return e.coeff, nil
	}
	coeffCache.clock++
	coeffCache.m[key] = &coeffEntry{coeff: c, used: coeffCache.clock}
	if len(coeffCache.m) > coeffCacheCap {
		var oldest coeffKey
		var oldestUsed uint64 = math.MaxUint64
		for k, e := range coeffCache.m {
			if e.used < oldestUsed {
				oldest, oldestUsed = k, e.used
			}
		}
		delete(coeffCache.m, oldest)
	}
	return c, nil
}

// coeffCacheLen reports the current cache population (for tests).
func coeffCacheLen() int {
	coeffCache.Lock()
	defer coeffCache.Unlock()
	return len(coeffCache.m)
}

// resetCoeffCache empties the cache (for tests).
func resetCoeffCache() {
	coeffCache.Lock()
	defer coeffCache.Unlock()
	coeffCache.m = make(map[coeffKey]*coeffEntry)
	coeffCache.clock = 0
}
