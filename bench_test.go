package decamouflage_test

// The benchmark harness: one benchmark per paper table and figure, each
// driving the same experiment runner as cmd/experiments at a reduced corpus
// size (N=16; pass -ldflags or edit benchN for larger sweeps). Corpus
// construction is excluded from the timed region by warming the runner's
// caches, so each op measures the experiment pipeline itself: scoring,
// calibration and evaluation. Micro-benchmarks for the substrates (FFT,
// resize, SSIM, min-filter, CSP, attack crafting, POCS) live in their
// packages.

import (
	"context"
	"io"
	"testing"

	"decamouflage/internal/experiments"
)

const benchN = 16

func newBenchRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	r := experiments.NewRunner(experiments.Config{
		N:    benchN,
		SrcW: 64, SrcH: 64, DstW: 16, DstH: 16,
		Seed: 7,
		Out:  io.Discard,
	})
	// Warm the corpora so the timed loop measures the experiment itself.
	ctx := context.Background()
	if _, err := r.Train(ctx); err != nil {
		b.Fatal(err)
	}
	if _, err := r.Eval(ctx); err != nil {
		b.Fatal(err)
	}
	return r
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r := newBenchRunner(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Run(ctx, id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1ModelSizes regenerates paper Table 1.
func BenchmarkTable1ModelSizes(b *testing.B) { benchExperiment(b, "T1") }

// BenchmarkTable2ScalingWhiteBox regenerates paper Table 2.
func BenchmarkTable2ScalingWhiteBox(b *testing.B) { benchExperiment(b, "T2") }

// BenchmarkTable3ScalingBlackBox regenerates paper Table 3.
func BenchmarkTable3ScalingBlackBox(b *testing.B) { benchExperiment(b, "T3") }

// BenchmarkTable4FilteringWhiteBox regenerates paper Table 4.
func BenchmarkTable4FilteringWhiteBox(b *testing.B) { benchExperiment(b, "T4") }

// BenchmarkTable5FilteringBlackBox regenerates paper Table 5.
func BenchmarkTable5FilteringBlackBox(b *testing.B) { benchExperiment(b, "T5") }

// BenchmarkTable6Steganalysis regenerates paper Table 6.
func BenchmarkTable6Steganalysis(b *testing.B) { benchExperiment(b, "T6") }

// BenchmarkTable7Runtime regenerates paper Table 7 (the per-method
// run-time overhead measurement itself).
func BenchmarkTable7Runtime(b *testing.B) { benchExperiment(b, "T7") }

// BenchmarkTable8Ensemble regenerates paper Table 8.
func BenchmarkTable8Ensemble(b *testing.B) { benchExperiment(b, "T8") }

// BenchmarkTable9EscapedAttacks regenerates the paper's Table 9 oracle.
func BenchmarkTable9EscapedAttacks(b *testing.B) { benchExperiment(b, "T9") }

// BenchmarkFigure1AttackExample regenerates paper Figures 1/2.
func BenchmarkFigure1AttackExample(b *testing.B) { benchExperiment(b, "F1") }

// BenchmarkFigure3ScalingIntuition regenerates paper Figure 3.
func BenchmarkFigure3ScalingIntuition(b *testing.B) { benchExperiment(b, "F3") }

// BenchmarkFigure4Filters regenerates paper Figures 4/5.
func BenchmarkFigure4Filters(b *testing.B) { benchExperiment(b, "F4") }

// BenchmarkFigure6Spectrum regenerates paper Figures 6/7.
func BenchmarkFigure6Spectrum(b *testing.B) { benchExperiment(b, "F6") }

// BenchmarkFigure8ThresholdCurve regenerates paper Figure 8.
func BenchmarkFigure8ThresholdCurve(b *testing.B) { benchExperiment(b, "F8") }

// BenchmarkFigure9ScalingDistributions regenerates paper Figure 9.
func BenchmarkFigure9ScalingDistributions(b *testing.B) { benchExperiment(b, "F9") }

// BenchmarkFigure10ScalingPercentiles regenerates paper Figure 10.
func BenchmarkFigure10ScalingPercentiles(b *testing.B) { benchExperiment(b, "F10") }

// BenchmarkFigure11FilteringDistributions regenerates paper Figure 11.
func BenchmarkFigure11FilteringDistributions(b *testing.B) { benchExperiment(b, "F11") }

// BenchmarkFigure12FilteringPercentiles regenerates paper Figure 12.
func BenchmarkFigure12FilteringPercentiles(b *testing.B) { benchExperiment(b, "F12") }

// BenchmarkFigure13CSPDistributions regenerates paper Figure 13.
func BenchmarkFigure13CSPDistributions(b *testing.B) { benchExperiment(b, "F13") }

// BenchmarkFigure14PSNRScaling regenerates paper Figure 14 (Appendix A).
func BenchmarkFigure14PSNRScaling(b *testing.B) { benchExperiment(b, "F14") }

// BenchmarkFigure15PSNRFiltering regenerates paper Figure 15 (Appendix A).
func BenchmarkFigure15PSNRFiltering(b *testing.B) { benchExperiment(b, "F15") }

// BenchmarkX2EpsSweep runs the ε-sweep ablation (X2).
func BenchmarkX2EpsSweep(b *testing.B) { benchExperiment(b, "X2") }

// BenchmarkX3CSPSensitivity runs the CSP parameter ablation (X3).
func BenchmarkX3CSPSensitivity(b *testing.B) { benchExperiment(b, "X3") }

// BenchmarkX4PreventionBaselines runs the detection-vs-prevention
// comparison (X4).
func BenchmarkX4PreventionBaselines(b *testing.B) { benchExperiment(b, "X4") }

// BenchmarkX5BackdoorAudit runs the poisoning-audit scenario (X5).
func BenchmarkX5BackdoorAudit(b *testing.B) { benchExperiment(b, "X5") }

// BenchmarkX6HistogramDebunk runs the color-histogram baseline (X6).
func BenchmarkX6HistogramDebunk(b *testing.B) { benchExperiment(b, "X6") }

// BenchmarkX7ROCAUC runs the per-metric ROC analysis (X7).
func BenchmarkX7ROCAUC(b *testing.B) { benchExperiment(b, "X7") }

// BenchmarkX8JPEGRobustness runs the JPEG recompression study (X8).
func BenchmarkX8JPEGRobustness(b *testing.B) { benchExperiment(b, "X8") }

// BenchmarkX9RatioSweep runs the scale-ratio sweep with target-size
// forensics (X9).
func BenchmarkX9RatioSweep(b *testing.B) { benchExperiment(b, "X9") }

// BenchmarkX10ThresholdStability runs the cross-seed threshold-stability
// study (X10).
func BenchmarkX10ThresholdStability(b *testing.B) { benchExperiment(b, "X10") }
