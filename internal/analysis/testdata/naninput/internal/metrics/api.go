// Package metrics is a fixture: the tensor-accepting API surface the
// naninput check audits.
package metrics

import "naninput/internal/imgcore"

// Bad accepts a tensor with no guard and no marker: flagged.
func Bad(a, b *imgcore.Image) float64 {
	return a.Pix[0] - b.Pix[0]
}

// BadBatch shows slice-of-tensor params are covered too: flagged.
func BadBatch(imgs []*imgcore.Image) int {
	return len(imgs)
}

// Guarded validates its input, which satisfies the check.
func Guarded(a *imgcore.Image) (float64, error) {
	if err := a.Validate(); err != nil {
		return 0, err
	}
	return a.Pix[0], nil
}

// Marked documents its NaN behaviour instead of guarding: NaN samples
// propagate to the returned score, which callers threshold with IsNaN.
//
//declint:nan-ok NaN propagates to the score by design
func Marked(a *imgcore.Image) float64 {
	return a.Pix[0]
}

// helper is unexported: out of scope.
func helper(a *imgcore.Image) float64 { return a.Pix[0] }

// Scalar takes no tensor: out of scope.
func Scalar(x float64) float64 { return x * x }
