package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const baselineTxt = `goos: linux
BenchmarkDetectDisabled-8   100   1000000 ns/op
BenchmarkDetectDisabled-8   100   1020000 ns/op
BenchmarkDetectDisabled-8   100    980000 ns/op
BenchmarkDetectInstrumented-8   100   1200000 ns/op
PASS
`

func TestWithinBudget(t *testing.T) {
	base := writeBench(t, "base.txt", baselineTxt)
	cand := writeBench(t, "cand.txt", `BenchmarkDetectDisabled-8   100   1010000 ns/op
BenchmarkDetectDisabled-8   100   1015000 ns/op
BenchmarkDetectDisabled-8   100   1005000 ns/op
`)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-baseline", base, "-candidate", cand,
		"-bench", "BenchmarkDetectDisabled"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	// medians: 1000000 vs 1010000 -> +1.00%
	if !strings.Contains(stdout.String(), "overhead +1.00%") {
		t.Errorf("report: %s", stdout.String())
	}
}

func TestOverBudget(t *testing.T) {
	base := writeBench(t, "base.txt", baselineTxt)
	cand := writeBench(t, "cand.txt", "BenchmarkDetectDisabled-8   100   1100000 ns/op\n")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-baseline", base, "-candidate", cand,
		"-bench", "BenchmarkDetectDisabled", "-max-overhead-pct", "2"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stdout: %s", code, stdout.String())
	}
	if !strings.Contains(stderr.String(), "exceeds") {
		t.Errorf("stderr: %s", stderr.String())
	}
}

func TestFasterCandidatePasses(t *testing.T) {
	base := writeBench(t, "base.txt", baselineTxt)
	cand := writeBench(t, "cand.txt", "BenchmarkDetectDisabled-8   100   900000 ns/op\n")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-baseline", base, "-candidate", cand,
		"-bench", "BenchmarkDetectDisabled"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "overhead -10.00%") {
		t.Errorf("report: %s", stdout.String())
	}
}

func TestErrors(t *testing.T) {
	base := writeBench(t, "base.txt", baselineTxt)
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("missing flags: exit %d, want 2", code)
	}
	// Named benchmark absent from the candidate file.
	cand := writeBench(t, "cand.txt", "BenchmarkOther-8  10  5 ns/op\n")
	code := run([]string{"-baseline", base, "-candidate", cand,
		"-bench", "BenchmarkDetectDisabled"}, &stdout, &stderr)
	if code != 2 {
		t.Errorf("absent benchmark: exit %d, want 2", code)
	}
	// Unreadable baseline.
	code = run([]string{"-baseline", filepath.Join(t.TempDir(), "nope.txt"),
		"-candidate", cand, "-bench", "BenchmarkDetectDisabled"}, &stdout, &stderr)
	if code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
}

// TestZeroSelectionDiagnostics: when a named benchmark matches no lines,
// the error says what the file does contain, or that the caller pasted a
// name with its -N GOMAXPROCS suffix still attached.
func TestZeroSelectionDiagnostics(t *testing.T) {
	base := writeBench(t, "base.txt", baselineTxt)
	cand := writeBench(t, "cand.txt", "BenchmarkOther-8  10  5 ns/op\n")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-baseline", base, "-candidate", cand,
		"-baseline-bench", "BenchmarkDetectDisabled",
		"-candidate-bench", "BenchmarkMissing"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit %d, want 2; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), `the file has: BenchmarkOther`) {
		t.Errorf("error does not list available benchmarks: %s", stderr.String())
	}
	// A name pasted with its GOMAXPROCS suffix gets the strip hint.
	stderr.Reset()
	code = run([]string{"-baseline", base, "-candidate", cand,
		"-bench", "BenchmarkDetectDisabled-8"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("suffixed name: exit %d, want 2; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), `suffix stripped — use "BenchmarkDetectDisabled"`) {
		t.Errorf("error lacks the suffix hint: %s", stderr.String())
	}
	// A file with no benchmark lines at all says so.
	empty := writeBench(t, "empty.txt", "goos: linux\nPASS\n")
	stderr.Reset()
	code = run([]string{"-baseline", empty, "-candidate", cand,
		"-bench", "BenchmarkOther"}, &stdout, &stderr)
	if code != 2 || !strings.Contains(stderr.String(), "no benchmark result lines") {
		t.Errorf("empty file: exit %d, stderr: %s", code, stderr.String())
	}
}

const pairTxt = `goos: linux
BenchmarkEnsembleLegacy-8     80   15000000 ns/op   5900000 B/op   272 allocs/op
BenchmarkEnsembleLegacy-8     81   15200000 ns/op   5900100 B/op   273 allocs/op
BenchmarkEnsembleLegacy-8     82   14800000 ns/op   5899900 B/op   272 allocs/op
BenchmarkEnsemblePipeline-8  128    9000000 ns/op   2148000 B/op   176 allocs/op
BenchmarkEnsemblePipeline-8  127    9100000 ns/op   2148100 B/op   176 allocs/op
BenchmarkEnsemblePipeline-8  129    8900000 ns/op   2147900 B/op   175 allocs/op
PASS
`

func TestCrossBenchmarkPair(t *testing.T) {
	pair := writeBench(t, "pair.txt", pairTxt)
	var stdout, stderr bytes.Buffer
	// Pipeline median 9.0ms vs legacy 15.0ms = -40%; a -25% budget passes
	// and the allocs gate sees 176 < 272.
	code := run([]string{"-baseline", pair, "-candidate", pair,
		"-baseline-bench", "BenchmarkEnsembleLegacy",
		"-candidate-bench", "BenchmarkEnsemblePipeline",
		"-max-overhead-pct", "-25", "-require-fewer-allocs"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "BenchmarkEnsembleLegacy -> BenchmarkEnsemblePipeline") {
		t.Errorf("report missing pair label: %s", out)
	}
	if !strings.Contains(out, "overhead -40.00%") {
		t.Errorf("report: %s", out)
	}
	if !strings.Contains(out, "baseline 272 allocs/op, candidate 176 allocs/op") {
		t.Errorf("allocs report: %s", out)
	}
}

func TestCrossBenchmarkNotFastEnough(t *testing.T) {
	pair := writeBench(t, "pair.txt", pairTxt)
	var stdout, stderr bytes.Buffer
	// A -45% budget demands more than the measured -40% improvement.
	code := run([]string{"-baseline", pair, "-candidate", pair,
		"-baseline-bench", "BenchmarkEnsembleLegacy",
		"-candidate-bench", "BenchmarkEnsemblePipeline",
		"-max-overhead-pct", "-45"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stdout: %s", code, stdout.String())
	}
}

func TestRequireFewerAllocsFailures(t *testing.T) {
	pair := writeBench(t, "pair.txt", pairTxt)
	var stdout, stderr bytes.Buffer
	// Candidate allocs not strictly below baseline -> exit 1.
	code := run([]string{"-baseline", pair, "-candidate", pair,
		"-bench", "BenchmarkEnsembleLegacy",
		"-max-overhead-pct", "5", "-require-fewer-allocs"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("equal allocs: exit %d, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "not below baseline") {
		t.Errorf("stderr: %s", stderr.String())
	}
	// Missing allocation data -> exit 2.
	noAllocs := writeBench(t, "noallocs.txt", "BenchmarkEnsembleLegacy-8  80  15000000 ns/op\n")
	stdout.Reset()
	stderr.Reset()
	code = run([]string{"-baseline", noAllocs, "-candidate", pair,
		"-bench", "BenchmarkEnsembleLegacy",
		"-max-overhead-pct", "5", "-require-fewer-allocs"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("missing allocs data: exit %d, want 2; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "no allocs/op data") {
		t.Errorf("stderr: %s", stderr.String())
	}
}

func TestBenchFlagDefaultsBothSides(t *testing.T) {
	base := writeBench(t, "base.txt", baselineTxt)
	var stdout, stderr bytes.Buffer
	// -candidate-bench alone: baseline side falls back to -bench.
	cand := writeBench(t, "cand.txt", "BenchmarkOther-8  100  900000 ns/op\n")
	code := run([]string{"-baseline", base, "-candidate", cand,
		"-bench", "BenchmarkDetectDisabled", "-candidate-bench", "BenchmarkOther"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	// Neither -bench nor the pair named -> usage error.
	if code := run([]string{"-baseline", base, "-candidate", cand}, &stdout, &stderr); code != 2 {
		t.Errorf("missing bench names: exit %d, want 2", code)
	}
}
