// Command declint enforces this repository's determinism, concurrency, and
// float-safety invariants with the pure-stdlib analyzers in
// internal/analysis. It exits 0 when the tree is clean, 1 when any finding
// survives suppression, and 2 on usage or load errors.
//
// Usage:
//
//	go run ./cmd/declint ./...            # analyze the whole module
//	go run ./cmd/declint -checks floateq ./...
//	go run ./cmd/declint -list            # list registered checks
//	go run ./cmd/declint path/to/dir      # analyze a directory as its own
//	                                      # module root (testdata fixtures)
//
// Findings are reported as file:line:col: check: message. Intentional
// violations are annotated in place with //declint:ignore <check> <reason>.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"decamouflage/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("declint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checksFlag := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	listFlag := fs.Bool("list", false, "list registered checks and exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: declint [-checks c1,c2] [-list] [./... | dir ...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listFlag {
		for _, c := range analysis.Checks() {
			fmt.Fprintf(stdout, "%-12s %s\n", c.Name, c.Doc)
		}
		return 0
	}

	cfg := analysis.DefaultConfig()
	if *checksFlag != "" {
		cfg.Checks = strings.Split(*checksFlag, ",")
	}

	targets := fs.Args()
	if len(targets) == 0 {
		targets = []string{"./..."}
	}
	total := 0
	for _, target := range targets {
		root := target
		if target == "./..." || target == "..." {
			var err error
			root, err = moduleRoot(".")
			if err != nil {
				fmt.Fprintln(stderr, "declint:", err)
				return 2
			}
		}
		pkgs, err := analysis.LoadModule(root)
		if err != nil {
			fmt.Fprintln(stderr, "declint:", err)
			return 2
		}
		findings, err := analysis.Run(pkgs, cfg)
		if err != nil {
			fmt.Fprintln(stderr, "declint:", err)
			return 2
		}
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
		total += len(findings)
	}
	if total > 0 {
		fmt.Fprintf(stderr, "declint: %d finding(s)\n", total)
		return 1
	}
	return 0
}

// moduleRoot walks up from dir to the nearest directory containing go.mod.
func moduleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}
