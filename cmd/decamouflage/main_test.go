package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"decamouflage/internal/attack"
	"decamouflage/internal/cliutil"
	"decamouflage/internal/dataset"
	"decamouflage/internal/detect"
	"decamouflage/internal/obs"
	"decamouflage/internal/scaling"
)

// writeFixtures creates a benign and an attack PNG plus a calibration file,
// returning their paths.
func writeFixtures(t *testing.T) (benignPath, attackPath, calPath, dir string) {
	t.Helper()
	dir = t.TempDir()
	g, err := dataset.NewGenerator(dataset.Config{Corpus: dataset.CaltechLike, W: 96, H: 96, C: 3, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	tg, err := dataset.NewGenerator(dataset.Config{Corpus: dataset.CaltechLike, W: 24, H: 24, C: 3, Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	scaler, err := scaling.NewScaler(96, 96, 24, 24, scaling.Options{Algorithm: scaling.Bilinear})
	if err != nil {
		t.Fatal(err)
	}
	benign := g.Image(0)
	res, err := attack.Craft(benign, tg.Image(0), attack.Config{Scaler: scaler, Eps: 2})
	if err != nil {
		t.Fatal(err)
	}
	benignPath = filepath.Join(dir, "benign.png")
	attackPath = filepath.Join(dir, "attack.png")
	if err := benign.SavePNG(benignPath); err != nil {
		t.Fatal(err)
	}
	if err := res.Attack.SavePNG(attackPath); err != nil {
		t.Fatal(err)
	}
	// Cheap calibration: score a few benign images black-box.
	ss, err := detect.NewScalingScorer(scaler, detect.MSE)
	if err != nil {
		t.Fatal(err)
	}
	fsx, err := detect.NewFilteringScorer(2, detect.SSIM)
	if err != nil {
		t.Fatal(err)
	}
	var sb, fb []float64
	for i := 1; i < 9; i++ {
		v, err := ss.Score(g.Image(i))
		if err != nil {
			t.Fatal(err)
		}
		sb = append(sb, v)
		v, err = fsx.Score(g.Image(i))
		if err != nil {
			t.Fatal(err)
		}
		fb = append(fb, v)
	}
	sth, err := detect.CalibrateBlackBox(sb, 10, detect.Above)
	if err != nil {
		t.Fatal(err)
	}
	fth, err := detect.CalibrateBlackBox(fb, 10, detect.Below)
	if err != nil {
		t.Fatal(err)
	}
	cal := detect.NewCalibration("black-box")
	cal.Set("scaling/MSE", sth)
	cal.Set("filtering/SSIM", fth)
	calPath = filepath.Join(dir, "cal.json")
	if err := cliutil.SaveCalibration(calPath, cal); err != nil {
		t.Fatal(err)
	}
	return benignPath, attackPath, calPath, dir
}

func TestRunStegOnly(t *testing.T) {
	benign, atk, _, _ := writeFixtures(t)
	var out strings.Builder
	if err := run([]string{"-dst", "24x24", benign, atk}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("output lines: %q", out.String())
	}
	if !strings.HasPrefix(lines[0], "BENIGN") {
		t.Errorf("benign line: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "ATTACK") {
		t.Errorf("attack line: %s", lines[1])
	}
}

func TestRunWithCalibrationAndJSON(t *testing.T) {
	benign, atk, cal, _ := writeFixtures(t)
	var out strings.Builder
	if err := run([]string{"-dst", "24x24", "-calibration", cal, "-json", benign, atk}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, `"attack":false`) || !strings.Contains(got, `"attack":true`) {
		t.Errorf("json output: %s", got)
	}
	if !strings.Contains(got, `"methods":3`) {
		t.Errorf("expected 3-method ensemble: %s", got)
	}
}

func TestRunDirScan(t *testing.T) {
	_, _, _, dir := writeFixtures(t)
	var out strings.Builder
	if err := run([]string{"-dst", "24x24", "-dir", dir}, &out); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(out.String(), "\n"); n != 2 {
		t.Errorf("dir scan found %d images, want 2: %s", n, out.String())
	}
}

func TestRunStrictMode(t *testing.T) {
	_, atk, _, _ := writeFixtures(t)
	var out strings.Builder
	if err := run([]string{"-dst", "24x24", "-strict", atk}, &out); err == nil {
		t.Error("strict mode with attack returned nil error")
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-dst", "24x24"}, &out); err == nil {
		t.Error("no images accepted")
	}
	if err := run([]string{"-dst", "bogus", "x.png"}, &out); err == nil {
		t.Error("bad size accepted")
	}
	if err := run([]string{"-dst", "24x24", "-alg", "bogus", "x.png"}, &out); err == nil {
		t.Error("bad algorithm accepted")
	}
	if err := run([]string{"-dst", "24x24", "missing.png"}, &out); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-dst", "24x24", "-calibration", "missing.json", "x.png"}, &out); err == nil {
		t.Error("missing calibration accepted")
	}
	if err := run([]string{"-dir", "/nonexistent-dir-xyz"}, &out); err == nil {
		t.Error("missing dir accepted")
	}
}

// requireObs skips the test when the binary was built with -tags noobs,
// and leaves recording disabled so run()'s settings decide.
func requireObs(t *testing.T) {
	t.Helper()
	obs.Enable()
	enabled := obs.Enabled()
	obs.Disable()
	if !enabled {
		t.Skip("observability compiled out (noobs)")
	}
	t.Cleanup(obs.Disable)
}

func TestRunVerboseAndMetrics(t *testing.T) {
	requireObs(t)
	benign, _, cal, dir := writeFixtures(t)
	metricsPath := filepath.Join(dir, "metrics.json")
	var out strings.Builder
	err := run([]string{"-dst", "24x24", "-calibration", cal, "-v",
		"-metrics-out", metricsPath, benign}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	// Per-method breakdown with thresholds and decisions.
	for _, want := range []string{
		"scaling/MSE", "filtering/SSIM", "steganalysis/CSP",
		"threshold >=", "threshold <=", "-> benign",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("verbose output missing %q:\n%s", want, got)
		}
	}
	// Stage timeline below the breakdown.
	for _, want := range []string{"classify benign.png", "ensemble.detect", "downscale", "minfilter", "csp"} {
		if !strings.Contains(got, want) {
			t.Errorf("timeline missing %q:\n%s", want, got)
		}
	}
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"fourier.plan.misses", "scaling.coeff.misses", "scaling.coeff.hits",
		"detect.ensemble.seconds", "parallel.for.calls",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics dump missing %q:\n%s", want, data)
		}
	}
}

func TestRunTraceOnly(t *testing.T) {
	requireObs(t)
	benign, _, _, _ := writeFixtures(t)
	var out strings.Builder
	if err := run([]string{"-dst", "24x24", "-trace", benign}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "classify benign.png") || !strings.Contains(got, "steganalysis/CSP") {
		t.Errorf("trace output missing timeline:\n%s", got)
	}
	if strings.Contains(got, "threshold >=") {
		t.Errorf("-trace alone printed the verbose breakdown:\n%s", got)
	}
}

// TestRunSystemConfig pins the -system path: the persisted config both
// builds the ensemble and activates its embedded observability settings.
func TestRunSystemConfig(t *testing.T) {
	requireObs(t)
	benign, atk, calPath, dir := writeFixtures(t)
	cal, err := cliutil.LoadCalibration(calPath)
	if err != nil {
		t.Fatal(err)
	}
	sth, _ := cal.Get("scaling/MSE")
	fth, _ := cal.Get("filtering/SSIM")
	metricsPath := filepath.Join(dir, "sys_metrics.json")
	cfg := &detect.SystemConfig{
		DstW: 24, DstH: 24, Algorithm: "bilinear",
		Thresholds: map[string]detect.Threshold{
			"scaling/MSE":    sth,
			"filtering/SSIM": fth,
		},
		Obs: &obs.Settings{MetricsOut: metricsPath},
	}
	data, err := detect.MarshalSystemConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sysPath := filepath.Join(dir, "sys.json")
	if err := os.WriteFile(sysPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-system", sysPath, "-v", benign, atk}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "votes") || !strings.Contains(got, "scaling/MSE") {
		t.Errorf("system run output:\n%s", got)
	}
	// The config's MetricsOut took effect with no metrics flag given.
	dump, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dump), "scaling.coeff.misses") {
		t.Errorf("metrics dump from config settings missing cache stats:\n%s", dump)
	}
	if err := run([]string{"-system", filepath.Join(dir, "nope.json"), benign}, &out); err == nil {
		t.Error("missing system config accepted")
	}
}

func TestRunProfileFlags(t *testing.T) {
	requireObs(t)
	benign, _, _, dir := writeFixtures(t)
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	var out strings.Builder
	err := run([]string{"-dst", "24x24", "-cpuprofile", cpu, "-memprofile", mem, benign}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

// TestRunBadMetricsFormat pins that a dump failure at session close
// surfaces as the command's error.
func TestRunBadMetricsFormat(t *testing.T) {
	requireObs(t)
	benign, _, _, dir := writeFixtures(t)
	var out strings.Builder
	err := run([]string{"-dst", "24x24",
		"-metrics-out", filepath.Join(dir, "m.txt"), "-metrics-format", "bogus", benign}, &out)
	if err == nil || !strings.Contains(err.Error(), "metrics format") {
		t.Errorf("bad metrics format error = %v", err)
	}
}

// TestRunFlightRecorder pins the CLI's recording session: -events-out and
// -trace-out produce non-empty NDJSON dumps whose events carry the
// per-image wide-event fields, and -watchdog rides along without output.
func TestRunFlightRecorder(t *testing.T) {
	requireObs(t)
	benign, atk, _, dir := writeFixtures(t)
	evPath := filepath.Join(dir, "events.ndjson")
	trPath := filepath.Join(dir, "traces.ndjson")
	var out strings.Builder
	err := run([]string{"-dst", "24x24",
		"-events-out", evPath, "-trace-keep", "8", "-trace-out", trPath,
		"-watchdog", "-watchdog-interval", "20",
		benign, atk}, &out)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := os.ReadFile(evPath)
	if err != nil {
		t.Fatal(err)
	}
	// One wide event per classified image, each traced and attributed.
	// (The root stage repeats the event name, so count NDJSON lines.)
	if got := strings.Count(strings.TrimRight(string(ev), "\n"), "\n") + 1; got != 2 {
		t.Errorf("events dump has %d detect events, want 2:\n%s", got, ev)
	}
	for _, want := range []string{`"trace_id":"`, `"verdict":"`, `"methods":[`, `"stages":[`} {
		if !strings.Contains(string(ev), want) {
			t.Errorf("events dump missing %q:\n%s", want, ev)
		}
	}
	tr, err := os.ReadFile(trPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tr), `"reason":"`) || !strings.Contains(string(tr), `"spans":[`) {
		t.Errorf("trace dump missing retained traces:\n%s", tr)
	}
}
