package detect

// ModelInputSize records the fixed input geometry of a popular CNN model
// family — the paper's Table 1, which motivates why downscaling (and hence
// the attack surface) is ubiquitous.
type ModelInputSize struct {
	Model string
	W, H  int
}

// ModelInputSizes reproduces the paper's Table 1.
func ModelInputSizes() []ModelInputSize {
	return []ModelInputSize{
		{Model: "LeNet-5", W: 32, H: 32},
		{Model: "VGG", W: 224, H: 224},
		{Model: "ResNet", W: 224, H: 224},
		{Model: "GoogleNet", W: 224, H: 224},
		{Model: "MobileNet", W: 224, H: 224},
		{Model: "AlexNet", W: 227, H: 227},
		{Model: "Inception V3/V4", W: 299, H: 299},
		{Model: "DAVE-2 Self-Driving", W: 200, H: 66},
	}
}
