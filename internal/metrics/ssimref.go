package metrics

import (
	"context"
	"fmt"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/parallel"
)

// SSIMRef is a prepared SSIM reference: the luminance plane, local means
// and local second moments of one image, precomputed so the image can be
// scored against many comparands without re-deriving its side of the
// computation. The detection pipeline builds one SSIMRef per input image
// and scores every method's reconstruction against it.
//
// Scores are bit-identical to SSIMWith(a, b, opts): the reference-side
// buffers hold exactly the values ssimWith would compute (the per-element
// products and Gaussian sweeps do not depend on the comparand), and
// ScoreCtx runs the identical comparand-side passes and the identical
// serial reduction.
//
// A reference is safe for concurrent ScoreCtx calls (they only read the
// shared buffers). Release returns the buffers to the scratch pool; the
// reference must not be used afterwards.
type SSIMRef struct {
	opts SSIMOptions
	w, h int
	kern []float64
	ga   []float64 // luminance plane of the reference
	muA  []float64 // Gaussian local means of ga
	sAA  []float64 // Gaussian local means of ga²
	pins []*[]float64
}

// NewSSIMRef precomputes the reference side of an SSIM comparison against a.
//
//declint:owns
func NewSSIMRef(ctx context.Context, a *imgcore.Image, opts SSIMOptions, popts ...parallel.Option) (*SSIMRef, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	w, h := a.W, a.H
	n := w * h
	r := &SSIMRef{opts: opts, w: w, h: h, kern: kernelFor(opts.WindowRadius, opts.Sigma)}
	release := func() {
		for _, p := range r.pins {
			putScratch(p)
		}
	}
	// Own a copy of the luminance plane: grayPix may return a view of a.Pix,
	// and the reference must stay valid if the caller mutates or recycles a.
	gaPix, gaP := grayPix(a)
	gap := getScratch(n)
	copy(*gap, gaPix)
	if gaP != nil {
		putScratch(gaP)
	}
	r.pins = append(r.pins, gap)
	r.ga = *gap

	rowOpts, colOpts := blurOpts(w, h, len(r.kern), popts)
	muAp := getScratch(n)
	r.pins = append(r.pins, muAp)
	r.muA = *muAp
	if err := blurWith(ctx, r.muA, r.ga, w, h, r.kern, rowOpts, colOpts); err != nil {
		release()
		return nil, err
	}
	aap := getScratch(n)
	aa := *aap
	ga := r.ga
	prodOpts := append([]parallel.Option{parallel.Grain(minBlurWork)}, popts...)
	if err := parallel.For(ctx, n, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			aa[i] = ga[i] * ga[i]
		}
		return nil
	}, prodOpts...); err != nil {
		putScratch(aap)
		release()
		return nil, err
	}
	sAAp := getScratch(n)
	r.pins = append(r.pins, sAAp)
	r.sAA = *sAAp
	err := blurWith(ctx, r.sAA, aa, w, h, r.kern, rowOpts, colOpts)
	putScratch(aap)
	if err != nil {
		release()
		return nil, err
	}
	return r, nil
}

// Size returns the reference geometry.
func (r *SSIMRef) Size() (w, h int) { return r.w, r.h }

// Score is ScoreCtx without cancellation.
//
//declint:nan-ok delegates to ScoreCtx, whose Validate runs first
func (r *SSIMRef) Score(b *imgcore.Image) (float64, error) {
	return r.ScoreCtx(context.Background(), b)
}

// ScoreCtx returns the mean SSIM index between the reference image and b,
// bit-identical to SSIMWith(a, b, opts). Unlike SSIMWith, only the W×H
// geometry must match: both sides are scored on their luminance planes, so
// a reference built from a single-channel image can score multi-channel
// comparands of the same geometry (the pipeline scores RGB round-trips
// against the shared grayscale plane this way).
func (r *SSIMRef) ScoreCtx(ctx context.Context, b *imgcore.Image, popts ...parallel.Option) (float64, error) {
	if err := b.Validate(); err != nil {
		return 0, err
	}
	if b.W != r.w || b.H != r.h {
		return 0, fmt.Errorf("%w: ref %dx%d vs %v", ErrShapeMismatch, r.w, r.h, b)
	}
	w, h, n := r.w, r.h, r.w*r.h
	gbPix, gbP := grayPix(b)
	if gbP != nil {
		defer putScratch(gbP)
	}
	rowOpts, colOpts := blurOpts(w, h, len(r.kern), popts)
	muBp := getScratch(n)
	defer putScratch(muBp)
	muB := *muBp
	if err := blurWith(ctx, muB, gbPix, w, h, r.kern, rowOpts, colOpts); err != nil {
		return 0, err
	}
	bbp, abp := getScratch(n), getScratch(n)
	defer putScratch(bbp)
	defer putScratch(abp)
	bb, ab := *bbp, *abp
	ga := r.ga
	prodOpts := append([]parallel.Option{parallel.Grain(minBlurWork)}, popts...)
	if err := parallel.For(ctx, n, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			bb[i] = gbPix[i] * gbPix[i]
			ab[i] = ga[i] * gbPix[i]
		}
		return nil
	}, prodOpts...); err != nil {
		return 0, err
	}
	sBBp, sABp := getScratch(n), getScratch(n)
	defer putScratch(sBBp)
	defer putScratch(sABp)
	sBB, sAB := *sBBp, *sABp
	if err := blurWith(ctx, sBB, bb, w, h, r.kern, rowOpts, colOpts); err != nil {
		return 0, err
	}
	if err := blurWith(ctx, sAB, ab, w, h, r.kern, rowOpts, colOpts); err != nil {
		return 0, err
	}

	c1 := (r.opts.K1 * r.opts.L) * (r.opts.K1 * r.opts.L)
	c2 := (r.opts.K2 * r.opts.L) * (r.opts.K2 * r.opts.L)
	muA, sAA := r.muA, r.sAA
	var sum float64
	for i := 0; i < n; i++ {
		ma, mb := muA[i], muB[i]
		varA := sAA[i] - ma*ma
		varB := sBB[i] - mb*mb
		cov := sAB[i] - ma*mb
		num := (2*ma*mb + c1) * (2*cov + c2)
		den := (ma*ma + mb*mb + c1) * (varA + varB + c2)
		sum += num / den
	}
	return sum / float64(n), nil
}

// Release returns the reference's pooled buffers to the scratch pool. The
// reference must not be scored against after Release; calling Release more
// than once is a no-op.
//
//declint:transfers receiver
func (r *SSIMRef) Release() {
	for _, p := range r.pins {
		putScratch(p)
	}
	r.pins = nil
	r.ga, r.muA, r.sAA = nil, nil, nil
}
