package imgcore

import (
	"bytes"
	"image"
	"image/color"
	"math"
	"path/filepath"
	"testing"
	"testing/quick"

	"decamouflage/internal/testutil"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		w, h, c int
		wantErr bool
	}{
		{"gray ok", 4, 3, 1, false},
		{"rgb ok", 7, 9, 3, false},
		{"zero width", 0, 3, 1, true},
		{"zero height", 3, 0, 1, true},
		{"negative width", -1, 3, 1, true},
		{"two channels", 4, 4, 2, true},
		{"four channels", 4, 4, 4, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			img, err := New(tt.w, tt.h, tt.c)
			if (err != nil) != tt.wantErr {
				t.Fatalf("New(%d,%d,%d) error = %v, wantErr %v", tt.w, tt.h, tt.c, err, tt.wantErr)
			}
			if err == nil {
				if got := len(img.Pix); got != tt.w*tt.h*tt.c {
					t.Errorf("len(Pix) = %d, want %d", got, tt.w*tt.h*tt.c)
				}
				if err := img.Validate(); err != nil {
					t.Errorf("Validate() = %v, want nil", err)
				}
			}
		})
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	img := MustNew(4, 4, 3)
	img.Pix = img.Pix[:5]
	if err := img.Validate(); err == nil {
		t.Fatal("Validate() = nil for corrupted buffer, want error")
	}
	var nilImg *Image
	if err := nilImg.Validate(); err == nil {
		t.Fatal("Validate() on nil image = nil, want error")
	}
	empty := &Image{}
	if err := empty.Validate(); err == nil {
		t.Fatal("Validate() on zero image = nil, want error")
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	img := MustNew(5, 4, 3)
	img.Set(2, 3, 1, 42.5)
	if got := img.At(2, 3, 1); !testutil.BitEqual(got, 42.5) {
		t.Errorf("At(2,3,1) = %v, want 42.5", got)
	}
	if got := img.At(2, 3, 0); !testutil.BitEqual(got, 0) {
		t.Errorf("At(2,3,0) = %v, want 0", got)
	}
}

func TestAtClampedReplicatesBorder(t *testing.T) {
	img := MustNew(3, 3, 1)
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			img.Set(x, y, 0, float64(y*3+x))
		}
	}
	tests := []struct {
		x, y int
		want float64
	}{
		{-1, -1, 0}, {5, -2, 2}, {-3, 5, 6}, {9, 9, 8}, {1, 1, 4},
	}
	for _, tt := range tests {
		if got := img.AtClamped(tt.x, tt.y, 0); !testutil.BitEqual(got, tt.want) {
			t.Errorf("AtClamped(%d,%d) = %v, want %v", tt.x, tt.y, got, tt.want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	img := MustNew(2, 2, 1)
	img.Set(0, 0, 0, 7)
	cp := img.Clone()
	cp.Set(0, 0, 0, 9)
	if !testutil.BitEqual(img.At(0, 0, 0), 7) {
		t.Error("Clone shares backing storage with original")
	}
}

func TestClampAndQuantize(t *testing.T) {
	img := MustNew(2, 1, 1)
	img.Pix[0] = -3.7
	img.Pix[1] = 260.2
	img.Clamp8()
	if !testutil.BitEqual(img.Pix[0], 0) || !testutil.BitEqual(img.Pix[1], 255) {
		t.Errorf("Clamp8 = %v, want [0 255]", img.Pix)
	}
	img.Pix[0] = 12.6
	img.Quantize8()
	if !testutil.BitEqual(img.Pix[0], 13) {
		t.Errorf("Quantize8(12.6) = %v, want 13", img.Pix[0])
	}
}

func TestGrayWeights(t *testing.T) {
	img := MustNew(1, 1, 3)
	img.Set(0, 0, 0, 255) // pure red
	g := img.Gray()
	if g.C != 1 {
		t.Fatalf("Gray().C = %d, want 1", g.C)
	}
	want := 0.299 * 255
	if math.Abs(g.At(0, 0, 0)-want) > 1e-9 {
		t.Errorf("gray(red) = %v, want %v", g.At(0, 0, 0), want)
	}
	// Grayscale input is cloned, not aliased.
	g2 := g.Gray()
	g2.Set(0, 0, 0, 0)
	if testutil.BitEqual(g.At(0, 0, 0), 0) {
		t.Error("Gray() of gray image aliases its input")
	}
}

func TestChannelExtractAndSet(t *testing.T) {
	img := MustNew(2, 2, 3)
	for i := 0; i < 4; i++ {
		img.Pix[i*3+2] = float64(i + 1)
	}
	ch, err := img.Channel(2)
	if err != nil {
		t.Fatalf("Channel(2) error: %v", err)
	}
	for i := 0; i < 4; i++ {
		if !testutil.BitEqual(ch.Pix[i], float64(i+1)) {
			t.Fatalf("channel sample %d = %v, want %v", i, ch.Pix[i], i+1)
		}
	}
	ch.Scale(2)
	if err := img.SetChannel(2, ch); err != nil {
		t.Fatalf("SetChannel error: %v", err)
	}
	if !testutil.BitEqual(img.Pix[3*3+2], 8) {
		t.Errorf("SetChannel did not write back, got %v", img.Pix[3*3+2])
	}
	if _, err := img.Channel(3); err == nil {
		t.Error("Channel(3) = nil error, want out of range")
	}
	bad := MustNew(3, 2, 1)
	if err := img.SetChannel(0, bad); err == nil {
		t.Error("SetChannel with mismatched shape = nil error")
	}
}

func TestArithmetic(t *testing.T) {
	a := MustNew(2, 1, 1)
	b := MustNew(2, 1, 1)
	a.Pix[0], a.Pix[1] = 10, 20
	b.Pix[0], b.Pix[1] = 1, 2
	sum, err := a.Add(b)
	if err != nil {
		t.Fatalf("Add error: %v", err)
	}
	if !testutil.BitEqual(sum.Pix[0], 11) || !testutil.BitEqual(sum.Pix[1], 22) {
		t.Errorf("Add = %v", sum.Pix)
	}
	diff, err := a.Sub(b)
	if err != nil {
		t.Fatalf("Sub error: %v", err)
	}
	if !testutil.BitEqual(diff.Pix[0], 9) || !testutil.BitEqual(diff.Pix[1], 18) {
		t.Errorf("Sub = %v", diff.Pix)
	}
	c := MustNew(3, 1, 1)
	if _, err := a.Add(c); err == nil {
		t.Error("Add with shape mismatch = nil error")
	}
	if _, err := a.Sub(c); err == nil {
		t.Error("Sub with shape mismatch = nil error")
	}
}

func TestStatsHelpers(t *testing.T) {
	img := MustNew(2, 2, 1)
	copy(img.Pix, []float64{-1, 5, 3, 1})
	if got := img.Mean(); !testutil.BitEqual(got, 2) {
		t.Errorf("Mean = %v, want 2", got)
	}
	lo, hi := img.MinMax()
	if !testutil.BitEqual(lo, -1) || !testutil.BitEqual(hi, 5) {
		t.Errorf("MinMax = %v,%v, want -1,5", lo, hi)
	}
	if got := img.AbsMax(); !testutil.BitEqual(got, 5) {
		t.Errorf("AbsMax = %v, want 5", got)
	}
	if img.HasNaN() {
		t.Error("HasNaN = true for finite image")
	}
	img.Pix[2] = math.NaN()
	if !img.HasNaN() {
		t.Error("HasNaN = false with NaN present")
	}
	img.Pix[2] = math.Inf(1)
	if !img.HasNaN() {
		t.Error("HasNaN = false with +Inf present")
	}
}

func TestFromImageToNRGBARoundTrip(t *testing.T) {
	src := image.NewNRGBA(image.Rect(0, 0, 3, 2))
	for y := 0; y < 2; y++ {
		for x := 0; x < 3; x++ {
			src.SetNRGBA(x, y, color.NRGBA{R: uint8(x * 40), G: uint8(y * 90), B: 200, A: 255})
		}
	}
	img := FromImage(src)
	if img.W != 3 || img.H != 2 || img.C != 3 {
		t.Fatalf("FromImage geometry = %v", img)
	}
	back := img.ToNRGBA()
	for y := 0; y < 2; y++ {
		for x := 0; x < 3; x++ {
			if got, want := back.NRGBAAt(x, y), src.NRGBAAt(x, y); got != want {
				t.Fatalf("round trip pixel (%d,%d) = %v, want %v", x, y, got, want)
			}
		}
	}
}

func TestGrayImageRoundTrip(t *testing.T) {
	img := MustNew(2, 2, 1)
	copy(img.Pix, []float64{0, 85, 170, 255})
	g := img.ToGray()
	for i, want := range []uint8{0, 85, 170, 255} {
		if got := g.Pix[i]; got != want {
			t.Errorf("gray pixel %d = %d, want %d", i, got, want)
		}
	}
	back := FromGrayImage(g)
	for i, want := range []float64{0, 85, 170, 255} {
		if math.Abs(back.Pix[i]-want) > 0.51 {
			t.Errorf("round trip gray pixel %d = %v, want ~%v", i, back.Pix[i], want)
		}
	}
}

func TestPNGSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	img := MustNew(8, 6, 3)
	for i := range img.Pix {
		img.Pix[i] = float64((i * 37) % 256)
	}
	path := filepath.Join(dir, "sub", "t.png")
	if err := img.SavePNG(path); err != nil {
		t.Fatalf("SavePNG: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !got.SameShape(img) {
		t.Fatalf("shape after round trip = %v, want %v", got, img)
	}
	for i := range img.Pix {
		if !testutil.BitEqual(got.Pix[i], img.Pix[i]) {
			t.Fatalf("pixel %d = %v, want %v", i, got.Pix[i], img.Pix[i])
		}
	}
}

func TestJPEGSaveLoad(t *testing.T) {
	dir := t.TempDir()
	img := MustNew(16, 16, 3)
	img.Fill(128)
	path := filepath.Join(dir, "t.jpg")
	if err := img.SaveJPEG(path, 90); err != nil {
		t.Fatalf("SaveJPEG: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if math.Abs(got.Mean()-128) > 3 {
		t.Errorf("JPEG mean drifted: %v", got.Mean())
	}
}

func TestJPEGRoundTrip(t *testing.T) {
	img := MustNew(24, 24, 3)
	for i := range img.Pix {
		img.Pix[i] = float64((i * 11) % 256)
	}
	out, err := JPEGRoundTrip(img, 90)
	if err != nil {
		t.Fatal(err)
	}
	if !out.SameShape(img) {
		t.Fatalf("shape changed: %v", out)
	}
	// Lossy but bounded drift at q=90 on smooth-ish content.
	mseSum := 0.0
	for i := range img.Pix {
		d := out.Pix[i] - img.Pix[i]
		mseSum += d * d
	}
	if mseSum/float64(len(img.Pix)) > 2000 {
		t.Errorf("q=90 round trip MSE %v too large", mseSum/float64(len(img.Pix)))
	}
	// Lower quality drifts more.
	low, err := JPEGRoundTrip(img, 10)
	if err != nil {
		t.Fatal(err)
	}
	lowSum := 0.0
	for i := range img.Pix {
		d := low.Pix[i] - img.Pix[i]
		lowSum += d * d
	}
	if lowSum <= mseSum {
		t.Errorf("q=10 drift (%v) not larger than q=90 (%v)", lowSum, mseSum)
	}
	if _, err := JPEGRoundTrip(img, 0); err == nil {
		t.Error("quality 0 accepted")
	}
	if _, err := JPEGRoundTrip(img, 101); err == nil {
		t.Error("quality 101 accepted")
	}
	if _, err := JPEGRoundTrip(&Image{}, 90); err == nil {
		t.Error("empty image accepted")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not an image"))); err == nil {
		t.Fatal("Decode(garbage) = nil error")
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"b.png", "a.png", "c.txt"} {
		if name == "c.txt" {
			continue
		}
		img := MustNew(4, 4, 3)
		if err := img.SavePNG(filepath.Join(dir, name)); err != nil {
			t.Fatalf("SavePNG: %v", err)
		}
	}
	imgs, err := LoadDir(dir, 0)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if len(imgs) != 2 {
		t.Fatalf("LoadDir loaded %d images, want 2", len(imgs))
	}
	imgs, err = LoadDir(dir, 1)
	if err != nil {
		t.Fatalf("LoadDir limited: %v", err)
	}
	if len(imgs) != 1 {
		t.Fatalf("LoadDir with limit 1 loaded %d", len(imgs))
	}
	if _, err := LoadDir(filepath.Join(dir, "missing"), 0); err == nil {
		t.Error("LoadDir(missing) = nil error")
	}
}

// Property: Add then Sub is the identity.
func TestAddSubInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := randomImage(seed, 6, 5, 3)
		b := randomImage(seed+1, 6, 5, 3)
		sum, err := a.Add(b)
		if err != nil {
			return false
		}
		back, err := sum.Sub(b)
		if err != nil {
			return false
		}
		for i := range a.Pix {
			if math.Abs(back.Pix[i]-a.Pix[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Clamp8 output is always within [0,255] and idempotent.
func TestClampIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := randomImage(seed, 4, 4, 1)
		for i := range a.Pix {
			a.Pix[i] = a.Pix[i]*10 - 1000
		}
		a.Clamp8()
		snapshot := append([]float64(nil), a.Pix...)
		a.Clamp8()
		for i, v := range a.Pix {
			if v < 0 || v > 255 || !testutil.BitEqual(v, snapshot[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// randomImage builds a deterministic pseudo-random image for property tests.
func randomImage(seed int64, w, h, c int) *Image {
	img := MustNew(w, h, c)
	s := uint64(seed)*2654435761 + 1
	for i := range img.Pix {
		s = s*6364136223846793005 + 1442695040888963407
		img.Pix[i] = float64(s>>40) / float64(1<<24) * 255
	}
	return img
}
