package detect

import (
	"fmt"
	"math"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/scaling"
)

// HistogramScorer implements the color-histogram check originally suggested
// (without experiments) by Xiao et al. as a defense: compare the color
// histogram of the input with that of its downscaled output; an attack
// image's downscale shows the hidden target, so its colors should differ.
//
// The paper reports — and the X6 experiment reproduces — that this metric
// does NOT separate attacks from benign images (scaling legitimately
// changes color statistics, and the attack only needs to perturb a sparse
// pixel subset whose mass barely moves the histogram). It is included as a
// baseline, not as a recommended method.
type HistogramScorer struct {
	scaler *scaling.Scaler
	bins   int
}

// NewHistogramScorer builds the baseline scorer with the given number of
// bins per channel (e.g. 32).
func NewHistogramScorer(scaler *scaling.Scaler, bins int) (*HistogramScorer, error) {
	if scaler == nil {
		return nil, ErrNilScaler
	}
	if bins < 2 || bins > 256 {
		return nil, fmt.Errorf("detect: histogram bins %d outside [2,256]", bins)
	}
	return &HistogramScorer{scaler: scaler, bins: bins}, nil
}

// Name implements Scorer.
func (s *HistogramScorer) Name() string { return "histogram/intersection" }

// Score implements Scorer. It returns 1 − histogram intersection between
// the input image and its downscaled output, in [0,1]: 0 means identical
// color distributions, 1 means disjoint. Under Xiao et al.'s hypothesis
// attacks should score high; in practice the distributions overlap.
func (s *HistogramScorer) Score(img *imgcore.Image) (float64, error) {
	if err := img.Validate(); err != nil {
		return 0, err
	}
	down, err := s.scaler.Resize(img)
	if err != nil {
		return 0, fmt.Errorf("detect: histogram downscale: %w", err)
	}
	hi := s.histogram(img)
	hd := s.histogram(down)
	var inter float64
	for i := range hi {
		inter += math.Min(hi[i], hd[i])
	}
	// Normalize by channel count: each channel histogram sums to 1.
	inter /= float64(img.C)
	return 1 - inter, nil
}

// histogram returns the concatenated normalized per-channel histograms.
func (s *HistogramScorer) histogram(img *imgcore.Image) []float64 {
	h := make([]float64, s.bins*img.C)
	scale := float64(s.bins) / 256.0
	for i := 0; i < img.W*img.H; i++ {
		for c := 0; c < img.C; c++ {
			v := img.Pix[i*img.C+c]
			b := int(v * scale)
			if b < 0 {
				b = 0
			} else if b >= s.bins {
				b = s.bins - 1
			}
			h[c*s.bins+b]++
		}
	}
	n := float64(img.W * img.H)
	for i := range h {
		h[i] /= n
	}
	return h
}

// Interface compliance.
var _ Scorer = (*HistogramScorer)(nil)
