// Fixture: goroutine capture. This package plays the substrate role so the
// raw go statement is exempt from noraw-go — poollife still flags the
// borrow whose lifetime crosses into the goroutine.
package parallel

import "sync"

var pool = sync.Pool{New: func() any { return new([]byte) }}

// Spawn hands a borrow to a goroutine the checker cannot follow.
func Spawn() {
	bp := pool.Get().(*[]byte)
	go func() {
		pool.Put(bp)
	}()
}
