package detect

import (
	"context"
	"testing"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/obs"
	"decamouflage/internal/scaling"
)

// benchDetect measures one full three-method ensemble detection. The
// Disabled/Instrumented pair is the observability overhead gate: CI runs
// BenchmarkDetectDisabled against a -tags noobs baseline (instrumentation
// compiled out) via cmd/benchguard and fails the build when the
// disabled-path cost exceeds 2%.
func benchDetect(b *testing.B) {
	e := obsTestEnsemble(b)
	img := obsTestImage(b, 32, 32)
	benchDetectWith(b, e, img)
}

func benchDetectWith(b *testing.B, e *Ensemble, img *imgcore.Image) {
	ctx := context.Background()
	// Warm the coefficient and plan caches so the loop measures the
	// steady-state hot path, not one-time setup.
	if _, err := e.Detect(ctx, img); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Detect(ctx, img); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectDisabled(b *testing.B) {
	obs.Disable()
	benchDetect(b)
}

func BenchmarkDetectInstrumented(b *testing.B) {
	obs.Enable()
	b.Cleanup(obs.Disable)
	benchDetect(b)
}

// BenchmarkDetectRecorder measures the fully loaded observability stack:
// metrics on, flight recorder writing a wide event per image, every
// finished trace offered to the tail sampler, watchdog ticking in the
// background. CI runs it against the same benchmark compiled with -tags
// noobs (where every obs call is a no-op, so the benchmark degenerates
// to the bare pipeline) via cmd/benchguard and fails the build when the
// full-stack cost exceeds 2%.
//
// Unlike the Disabled/Instrumented pair, this benchmark runs at the
// system's default deployment geometry (128x128 inputs scaled to 32x32,
// the cmd defaults and the paper's setup). Recording is a flat per-image
// cost — materializing the span tree and denormalizing it into one event
// is ~7us regardless of pixel count (obs.BenchmarkRecordPath pins it in
// isolation) — so the meaningful question is what that costs against a
// real detection, not against the 32x32 microbenchmark the
// nanosecond-tight disabled-path gate uses, where the whole detection
// itself is only ~200us.
func BenchmarkDetectRecorder(b *testing.B) {
	obs.Enable()
	b.Cleanup(obs.Disable)
	rec := obs.NewRecorder(1024)
	obs.SetRecorder(rec)
	b.Cleanup(func() { obs.SetRecorder(nil) })
	ts := obs.NewTailSampler(64, 0.1)
	obs.SetTailSampler(ts)
	b.Cleanup(func() { obs.SetTailSampler(nil) })
	// The watchdog runs at its default 1s interval, the deployment
	// configuration. Each tick costs a runtime.ReadMemStats stop-the-world,
	// so an artificially hot interval would charge the benchmark a
	// time-proportional tax no production setup pays.
	w := obs.StartWatchdog(obs.WatchdogConfig{})
	b.Cleanup(w.Stop)
	scaler, err := scaling.NewScaler(128, 128, 32, 32, scaling.Options{Algorithm: scaling.Bilinear})
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewDefaultEnsemble(DefaultConfig{
		Scaler:             scaler,
		ScalingThreshold:   Threshold{Value: 100, Direction: Above},
		FilteringThreshold: Threshold{Value: 0.5, Direction: Below},
	})
	if err != nil {
		b.Fatal(err)
	}
	benchDetectWith(b, e, obsTestImage(b, 128, 128))
}
