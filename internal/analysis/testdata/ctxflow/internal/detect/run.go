// Fixture: context discipline in internal library code. Exported entry
// points may root contexts; unexported functions must accept one, use it,
// and never re-mint.
package detect

import "context"

// Run is an exported entry point: minting the root context is its job.
func Run() error {
	return scan(context.Background(), 4)
}

// scan threads its context onward: silent.
func scan(ctx context.Context, n int) error {
	if n <= 0 {
		return nil
	}
	return step(ctx, n)
}

// step receives a context it never touches.
func step(ctx context.Context, n int) error {
	return mint(n)
}

// mint is unexported yet creates its own root context.
func mint(n int) error {
	return scan(context.Background(), n-1)
}

// fork uses its context and still mints a fresh one for the callee.
func fork(ctx context.Context, n int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return scan(context.Background(), n)
}

// skip documents its drop by naming the parameter _: silent.
func skip(_ context.Context) error {
	return nil
}
