package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"decamouflage/internal/benchfmt"
)

// writeTrendSnapshot marshals a Document into dir as BENCH_<date>.json.
func writeTrendSnapshot(t *testing.T, dir string, doc benchfmt.Document) {
	t.Helper()
	buf, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_"+doc.Date+".json"), buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func result(name string, ns float64) benchfmt.Result {
	return benchfmt.Result{Name: name, Iterations: 10, NsPerOp: ns, BytesPerOp: -1, AllocsPerOp: -1}
}

func TestTrendHealthyTrajectory(t *testing.T) {
	dir := t.TempDir()
	writeTrendSnapshot(t, dir, benchfmt.Document{Date: "2026-08-01", Benchmarks: []benchfmt.Result{
		result("BenchmarkFFT2D256-8", 2_000_000),
	}})
	writeTrendSnapshot(t, dir, benchfmt.Document{Date: "2026-08-09", Benchmarks: []benchfmt.Result{
		result("BenchmarkFFT2D256-8", 1_900_000),
		// A kernel new in the latest snapshot has itself as best: delta 0.
		result("BenchmarkResizeFixed256-8", 400_000),
	}})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-trend", dir}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "BenchmarkFFT2D256 latest 1.90ms, best 1.90ms") {
		t.Errorf("report: %s", stdout.String())
	}
}

func TestTrendRegressionFails(t *testing.T) {
	dir := t.TempDir()
	writeTrendSnapshot(t, dir, benchfmt.Document{Date: "2026-08-01", Benchmarks: []benchfmt.Result{
		result("BenchmarkFFT2D256-8", 2_000_000),
	}})
	writeTrendSnapshot(t, dir, benchfmt.Document{Date: "2026-08-09", Benchmarks: []benchfmt.Result{
		result("BenchmarkFFT2D256-8", 2_300_000), // +15% vs best
	}})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-trend", dir}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stdout: %s", code, stdout.String())
	}
	if !strings.Contains(stderr.String(), "BenchmarkFFT2D256 regressed +15.0%") {
		t.Errorf("stderr: %s", stderr.String())
	}
	// A looser budget tolerates the same history.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-trend", dir, "-max-regression-pct", "20"}, &stdout, &stderr); code != 0 {
		t.Fatalf("loose budget: exit %d, stderr: %s", code, stderr.String())
	}
}

func TestTrendReferenceBenchmarksNotGated(t *testing.T) {
	dir := t.TempDir()
	writeTrendSnapshot(t, dir, benchfmt.Document{Date: "2026-08-01", Benchmarks: []benchfmt.Result{
		result("BenchmarkFFT2D256Unplanned-8", 4_000_000),
		result("BenchmarkEnsembleLegacy-8", 13_000_000),
	}})
	// Both references regress wildly; only tracked kernels gate, and a
	// latest snapshot made of references alone is a configuration error.
	writeTrendSnapshot(t, dir, benchfmt.Document{Date: "2026-08-09", Benchmarks: []benchfmt.Result{
		result("BenchmarkFFT2D256Unplanned-8", 9_000_000),
		result("BenchmarkEnsembleLegacy-8", 30_000_000),
	}})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-trend", dir}, &stdout, &stderr)
	if code != 2 || !strings.Contains(stderr.String(), "no tracked kernels") {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	// With one tracked kernel alongside, the regressing references stay
	// invisible to the gate.
	writeTrendSnapshot(t, dir, benchfmt.Document{Date: "2026-08-09", Benchmarks: []benchfmt.Result{
		result("BenchmarkFFT2D256Unplanned-8", 9_000_000),
		result("BenchmarkEnsembleLegacy-8", 30_000_000),
		result("BenchmarkFFT2D256-8", 1_900_000),
	}})
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-trend", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
}

func TestTrendMachineDriftNormalized(t *testing.T) {
	dir := t.TempDir()
	// Every benchmark — tracked and reference alike — runs 25% slower in
	// the latest snapshot: that is the machine, not the code. The shared
	// reference baselines calibrate the drift, so the gate passes.
	writeTrendSnapshot(t, dir, benchfmt.Document{Date: "2026-08-01", Benchmarks: []benchfmt.Result{
		result("BenchmarkFFT2D256-8", 2_000_000),
		result("BenchmarkFFT2D256Unplanned-8", 4_000_000),
		result("BenchmarkEnsembleLegacy-8", 12_000_000),
	}})
	writeTrendSnapshot(t, dir, benchfmt.Document{Date: "2026-08-09", Benchmarks: []benchfmt.Result{
		result("BenchmarkFFT2D256-8", 2_500_000), // +25% raw — pure drift
		result("BenchmarkFFT2D256Unplanned-8", 5_000_000),
		result("BenchmarkEnsembleLegacy-8", 15_000_000),
	}})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-trend", dir}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "2026-08-01 machine drift ×1.25") {
		t.Errorf("drift factor not reported: %s", stdout.String())
	}

	// A kernel regressing beyond the drift still fails: +50% raw against
	// ×1.25 drift is a real +20%.
	writeTrendSnapshot(t, dir, benchfmt.Document{Date: "2026-08-09", Benchmarks: []benchfmt.Result{
		result("BenchmarkFFT2D256-8", 3_000_000),
		result("BenchmarkFFT2D256Unplanned-8", 5_000_000),
		result("BenchmarkEnsembleLegacy-8", 15_000_000),
	}})
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-trend", dir}, &stdout, &stderr); code != 1 {
		t.Fatalf("real regression under drift: exit %d, stdout: %s", code, stdout.String())
	}
	if !strings.Contains(stderr.String(), "BenchmarkFFT2D256 regressed +20.0%") {
		t.Errorf("stderr: %s", stderr.String())
	}
}

func TestTrendCrossMachineSnapshotExcluded(t *testing.T) {
	dir := t.TempDir()
	fast := &benchfmt.Environment{GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 64, CPU: "Big Iron"}
	ref := &benchfmt.Environment{GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 1, CPU: "Reference"}
	// The big machine's 1ms would be an unbeatable "best" if mixed in.
	writeTrendSnapshot(t, dir, benchfmt.Document{Date: "2026-08-01", Env: fast, Benchmarks: []benchfmt.Result{
		result("BenchmarkFFT2D256-8", 1_000_000),
	}})
	// A legacy snapshot without env stays comparable (assumed reference).
	writeTrendSnapshot(t, dir, benchfmt.Document{Date: "2026-08-05", Benchmarks: []benchfmt.Result{
		result("BenchmarkFFT2D256-8", 1_950_000),
	}})
	writeTrendSnapshot(t, dir, benchfmt.Document{Date: "2026-08-09", Env: ref, Benchmarks: []benchfmt.Result{
		result("BenchmarkFFT2D256-8", 2_000_000),
	}})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-trend", dir}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "excluding") || !strings.Contains(out, `cpu="Big Iron"`) {
		t.Errorf("cross-machine snapshot not flagged: %s", out)
	}
	if !strings.Contains(out, "best 1.95ms") {
		t.Errorf("excluded snapshot leaked into best: %s", out)
	}
}

func TestTrendWriteMarkdown(t *testing.T) {
	dir := t.TempDir()
	env := &benchfmt.Environment{GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 1, CPU: "Reference", GoVersion: "go1.24.0"}
	writeTrendSnapshot(t, dir, benchfmt.Document{Date: "2026-08-05", Benchmarks: []benchfmt.Result{
		result("BenchmarkResize256Serial-8", 600_000),
	}})
	writeTrendSnapshot(t, dir, benchfmt.Document{Date: "2026-08-09", Env: env, Benchmarks: []benchfmt.Result{
		result("BenchmarkResize256Serial-8", 595_000),
		result("BenchmarkResizeFixed256-8", 387_000),
	}})
	md := filepath.Join(dir, "README.md")
	const shell = "# Bench\n\nintro\n\n<!-- benchtrend:begin -->\nstale\n<!-- benchtrend:end -->\n\noutro\n"
	if err := os.WriteFile(md, []byte(shell), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-trend", dir, "-trend-write", md}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	buf, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	got := string(buf)
	for _, want := range []string{
		"# Bench", "outro", // text outside the markers survives
		"| ResizeFixed256 |", "| Resize256Serial |",
		"| 2026-08-05 | 2026-08-09 |",
		"Q1.15 fixed-point resize | 595.0µs | 387.0µs | 1.54×",
		"linux/amd64 maxprocs=1", "go1.24.0",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("rendered file lacks %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "stale") {
		t.Error("old region content survived the rewrite")
	}
	// A second run over identical snapshots is byte-stable — the property
	// the CI freshness gate (git diff --exit-code) relies on.
	if code := run([]string{"-trend", dir, "-trend-write", md}, &stdout, &stderr); code != 0 {
		t.Fatalf("rewrite exit %d, stderr: %s", code, stderr.String())
	}
	again, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != got {
		t.Error("rewriting from unchanged snapshots changed the file")
	}
}

func TestTrendWriteErrors(t *testing.T) {
	dir := t.TempDir()
	writeTrendSnapshot(t, dir, benchfmt.Document{Date: "2026-08-09", Benchmarks: []benchfmt.Result{
		result("BenchmarkFFT2D256-8", 1_900_000),
	}})
	// Target without markers.
	md := filepath.Join(dir, "README.md")
	if err := os.WriteFile(md, []byte("no markers here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-trend", dir, "-trend-write", md}, &stdout, &stderr)
	if code != 2 || !strings.Contains(stderr.String(), "missing") {
		t.Fatalf("markerless target: exit %d, stderr: %s", code, stderr.String())
	}
	// Missing target file.
	stderr.Reset()
	code = run([]string{"-trend", dir, "-trend-write", filepath.Join(dir, "nope.md")}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("missing target: exit %d", code)
	}
	// Empty snapshot directory.
	stderr.Reset()
	code = run([]string{"-trend", t.TempDir()}, &stdout, &stderr)
	if code != 2 || !strings.Contains(stderr.String(), "no BENCH_*.json") {
		t.Fatalf("empty dir: exit %d, stderr: %s", code, stderr.String())
	}
}
