// Command benchjson converts `go test -bench` text output into a stable
// JSON document so benchmark results can be archived per run and diffed
// across commits (the CI benchmark step emits BENCH_<date>.json artifacts;
// a committed baseline lives under bench/).
//
// Usage:
//
//	go test -bench . -benchmem ./... | go run ./cmd/benchjson -date 2026-08-05
//	go run ./cmd/benchjson -in bench.txt -out bench/BENCH_2026-08-05.json
//
// Lines that are not benchmark results (test status, headers, pkg noise)
// are ignored; a run with zero parsed benchmarks exits nonzero so a CI
// regex typo fails loudly instead of committing an empty artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name as printed, including any -N GOMAXPROCS
	// suffix and sub-benchmark path.
	Name string `json:"name"`
	// Iterations is b.N for the measured run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported ns/op.
	NsPerOp float64 `json:"ns_op"`
	// BytesPerOp is the reported B/op; -1 when the benchmark did not run
	// with -benchmem or ReportAllocs.
	BytesPerOp int64 `json:"bytes_op"`
	// AllocsPerOp is the reported allocs/op; -1 when absent.
	AllocsPerOp int64 `json:"allocs_op"`
	// MBPerSec is the reported MB/s; 0 when absent.
	MBPerSec float64 `json:"mb_s,omitempty"`
}

// Document is the emitted JSON artifact.
type Document struct {
	// Date is the run date (CI passes the commit date; defaults to today).
	Date string `json:"date"`
	// GoVersion is the toolchain that produced the numbers.
	GoVersion string `json:"go_version"`
	// Benchmarks holds the parsed results in input order.
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	inFlag := fs.String("in", "", "input file with `go test -bench` output (default: stdin)")
	outFlag := fs.String("out", "", "output JSON path (default: stdout)")
	dateFlag := fs.String("date", "", "date stamp for the document (default: today, UTC)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: benchjson [-in bench.txt] [-out bench.json] [-date YYYY-MM-DD]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	in := stdin
	if *inFlag != "" {
		f, err := os.Open(*inFlag)
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	results, err := parseBench(in)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 2
	}
	if len(results) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark lines found in input")
		return 1
	}
	date := *dateFlag
	if date == "" {
		date = time.Now().UTC().Format("2006-01-02")
	}
	doc := Document{Date: date, GoVersion: runtime.Version(), Benchmarks: results}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 2
	}
	buf = append(buf, '\n')
	if *outFlag == "" {
		if _, err := stdout.Write(buf); err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 2
		}
		return 0
	}
	if err := os.WriteFile(*outFlag, buf, 0o644); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 2
	}
	return 0
}

// parseBench extracts benchmark result lines from go test output. A result
// line is `Benchmark<Name>[-P] <N> <value> <unit> [<value> <unit>]...`;
// everything else is skipped. Unknown units are ignored so future testing
// package additions do not break parsing.
func parseBench(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// The second field must be the iteration count; "Benchmarking..."
		// chatter and similar noise fails this and is skipped.
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: fields[0], Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				if res.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
					return nil, fmt.Errorf("line %q: bad ns/op %q", sc.Text(), val)
				}
				ok = true
			case "B/op":
				if res.BytesPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
					return nil, fmt.Errorf("line %q: bad B/op %q", sc.Text(), val)
				}
			case "allocs/op":
				if res.AllocsPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
					return nil, fmt.Errorf("line %q: bad allocs/op %q", sc.Text(), val)
				}
			case "MB/s":
				if res.MBPerSec, err = strconv.ParseFloat(val, 64); err != nil {
					return nil, fmt.Errorf("line %q: bad MB/s %q", sc.Text(), val)
				}
			}
		}
		if ok {
			out = append(out, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
