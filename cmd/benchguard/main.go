// Command benchguard compares one benchmark between two `go test -bench`
// output files and fails when the candidate's median ns/op exceeds the
// baseline's by more than a budget. CI uses it to enforce the
// observability layer's compiled-in-but-disabled overhead: the baseline
// is BenchmarkDetectDisabled built with -tags noobs (the instrumentation
// compiled out entirely), the candidate is the default build with
// recording switched off, and the budget is 2%.
//
// Usage:
//
//	go test -run=NONE -bench=Detect -count=5 -tags noobs ./internal/detect/ > noobs.txt
//	go test -run=NONE -bench=Detect -count=5 ./internal/detect/ > default.txt
//	go run ./cmd/benchguard -baseline noobs.txt -candidate default.txt \
//	    -bench BenchmarkDetectDisabled -max-overhead-pct 2
//
// Exit codes: 0 within budget, 1 over budget, 2 on usage/parse errors or
// when the named benchmark is missing from either file.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"decamouflage/internal/benchfmt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baseFlag := fs.String("baseline", "", "bench output file with the baseline numbers")
	candFlag := fs.String("candidate", "", "bench output file with the candidate numbers")
	benchFlag := fs.String("bench", "", "benchmark name to compare (GOMAXPROCS suffix ignored)")
	maxFlag := fs.Float64("max-overhead-pct", 2, "largest tolerated median-ns/op increase, in percent")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: benchguard -baseline a.txt -candidate b.txt -bench BenchmarkName [-max-overhead-pct 2]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *baseFlag == "" || *candFlag == "" || *benchFlag == "" {
		fs.Usage()
		return 2
	}
	base, n0, err := medianFromFile(*baseFlag, *benchFlag)
	if err != nil {
		fmt.Fprintf(stderr, "benchguard: baseline: %v\n", err)
		return 2
	}
	cand, n1, err := medianFromFile(*candFlag, *benchFlag)
	if err != nil {
		fmt.Fprintf(stderr, "benchguard: candidate: %v\n", err)
		return 2
	}
	overhead := (cand/base - 1) * 100
	fmt.Fprintf(stdout,
		"benchguard: %s baseline %.0f ns/op (n=%d), candidate %.0f ns/op (n=%d), overhead %+.2f%% (budget %.2f%%)\n",
		*benchFlag, base, n0, cand, n1, overhead, *maxFlag)
	if overhead > *maxFlag {
		fmt.Fprintf(stderr, "benchguard: FAIL: overhead %+.2f%% exceeds %.2f%%\n", overhead, *maxFlag)
		return 1
	}
	return 0
}

// medianFromFile parses one bench output file and returns the median
// ns/op of the named benchmark plus how many repetitions backed it.
func medianFromFile(path, bench string) (float64, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	results, err := benchfmt.Parse(f)
	if err != nil {
		return 0, 0, err
	}
	sel := benchfmt.Select(results, bench)
	if len(sel) == 0 {
		return 0, 0, fmt.Errorf("no results for %q in %s", bench, path)
	}
	med := benchfmt.MedianNsPerOp(sel)
	if !(med > 0) {
		return 0, 0, fmt.Errorf("median ns/op for %q in %s is not positive", bench, path)
	}
	return med, len(sel), nil
}
