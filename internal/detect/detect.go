// Package detect is the core of Decamouflage: the three image-scaling
// attack detection methods of the paper (scaling, filtering, steganalysis),
// their score metrics (MSE, SSIM, PSNR, CSP), threshold handling, white-box
// and black-box calibration, and the majority-voting ensemble.
package detect

import (
	"errors"
	"fmt"

	"decamouflage/internal/filtering"
	"decamouflage/internal/imgcore"
	"decamouflage/internal/metrics"
	"decamouflage/internal/scaling"
	"decamouflage/internal/steg"
)

// Metric identifies a score function used by the spatial-domain methods.
type Metric int

// Supported metrics.
const (
	// MSE: mean squared error between the input and its transform
	// (attack images score high).
	MSE Metric = iota + 1
	// SSIM: structural similarity (attack images score low).
	SSIM
	// PSNR: peak signal-to-noise ratio; included to reproduce the paper's
	// Appendix-A negative result (not recommended for detection).
	PSNR
	// CSP: centered spectrum points (attack images score >= 2).
	CSP
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case MSE:
		return "MSE"
	case SSIM:
		return "SSIM"
	case PSNR:
		return "PSNR"
	case CSP:
		return "CSP"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// AttackDirection returns the comparison direction under which high (Above)
// or low (Below) scores indicate an attack for this metric.
func (m Metric) AttackDirection() Direction {
	switch m {
	case SSIM, PSNR:
		return Below
	default:
		return Above
	}
}

// Direction tells which side of a threshold is classified as an attack.
type Direction int

// Directions. The paper's Algorithms 1-3 use "score >= T" uniformly, which
// is correct for MSE and CSP but inverted for SSIM (their own Figure 7
// shows attack SSIM below benign); Decamouflage is explicit about it.
const (
	// Above classifies score >= threshold as attack.
	Above Direction = iota + 1
	// Below classifies score <= threshold as attack.
	Below
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case Above:
		return "above"
	case Below:
		return "below"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Threshold is a decision boundary over a scorer's output.
type Threshold struct {
	Value     float64   `json:"value"`
	Direction Direction `json:"direction"`
}

// Classify reports whether score falls on the attack side.
func (t Threshold) Classify(score float64) bool {
	switch t.Direction {
	case Below:
		return score <= t.Value
	default:
		return score >= t.Value
	}
}

// Validate checks the threshold is usable.
func (t Threshold) Validate() error {
	if t.Direction != Above && t.Direction != Below {
		return fmt.Errorf("detect: invalid threshold direction %d", int(t.Direction))
	}
	return nil
}

// Verdict is a single method's decision about one image.
type Verdict struct {
	// Attack reports the classification.
	Attack bool
	// Score is the raw metric value the decision was made on.
	Score float64
	// Method names the detection method that produced the verdict.
	Method string
}

// Scorer computes a raw detection score for an image. Implementations must
// be safe for concurrent use.
type Scorer interface {
	// Name identifies the method/metric pair, e.g. "scaling/MSE".
	Name() string
	// Score computes the raw metric value for img.
	Score(img *imgcore.Image) (float64, error)
}

// Interface compliance.
var (
	_ Scorer = (*ScalingScorer)(nil)
	_ Scorer = (*FilteringScorer)(nil)
	_ Scorer = (*StegScorer)(nil)
)

// ErrNilScaler indicates a scorer constructed without its scaler.
var ErrNilScaler = errors.New("detect: scaler is required")

// ScalingScorer implements the paper's Method 1: downscale the input with
// the protected model's scaler, upscale back, and measure the dissimilarity
// between the input and the round trip. Benign images survive the round
// trip; attack images flip to the hidden target.
type ScalingScorer struct {
	scaler *scaling.Scaler
	// upscaler is the prepared dst->src operator for inputs matching the
	// scaler's source geometry; other sizes fall back to a fresh build.
	upscaler *scaling.Scaler
	metric   Metric
}

// NewScalingScorer builds the Method-1 scorer.
func NewScalingScorer(scaler *scaling.Scaler, metric Metric) (*ScalingScorer, error) {
	if scaler == nil {
		return nil, ErrNilScaler
	}
	if metric != MSE && metric != SSIM && metric != PSNR {
		return nil, fmt.Errorf("detect: scaling method does not support metric %v", metric)
	}
	srcW, srcH := scaler.SrcSize()
	dstW, dstH := scaler.DstSize()
	up, err := scaling.NewScaler(dstW, dstH, srcW, srcH, scaler.Options())
	if err != nil {
		return nil, fmt.Errorf("detect: prepare upscaler: %w", err)
	}
	return &ScalingScorer{scaler: scaler, upscaler: up, metric: metric}, nil
}

// Name implements Scorer.
func (s *ScalingScorer) Name() string { return "scaling/" + s.metric.String() }

// Score implements Scorer.
func (s *ScalingScorer) Score(img *imgcore.Image) (float64, error) {
	if err := img.Validate(); err != nil {
		return 0, err
	}
	down, err := s.scaler.Resize(img)
	if err != nil {
		return 0, fmt.Errorf("detect: scaling downscale: %w", err)
	}
	var up *imgcore.Image
	if upW, upH := s.upscaler.DstSize(); upW == img.W && upH == img.H {
		up, err = s.upscaler.Resize(down)
	} else {
		up, err = scaling.Resize(down, img.W, img.H, s.scaler.Options())
	}
	if err != nil {
		return 0, fmt.Errorf("detect: scaling upscale: %w", err)
	}
	return applyMetric(s.metric, img, up)
}

// FilteringScorer implements the paper's Method 2: apply a minimum filter
// and measure the dissimilarity between the input and the filtered image.
// The embedded target pixels are extreme values relative to their
// neighborhood, so erosion damages attack images far more than benign ones.
type FilteringScorer struct {
	window int
	metric Metric
}

// NewFilteringScorer builds the Method-2 scorer with the given minimum
// filter window (the paper uses 2).
func NewFilteringScorer(window int, metric Metric) (*FilteringScorer, error) {
	if window < 2 {
		return nil, fmt.Errorf("detect: filter window %d < 2", window)
	}
	if metric != MSE && metric != SSIM && metric != PSNR {
		return nil, fmt.Errorf("detect: filtering method does not support metric %v", metric)
	}
	return &FilteringScorer{window: window, metric: metric}, nil
}

// Name implements Scorer.
func (s *FilteringScorer) Name() string { return "filtering/" + s.metric.String() }

// Score implements Scorer.
func (s *FilteringScorer) Score(img *imgcore.Image) (float64, error) {
	if err := img.Validate(); err != nil {
		return 0, err
	}
	f, err := filtering.Minimum(img, s.window)
	if err != nil {
		return 0, fmt.Errorf("detect: minimum filter: %w", err)
	}
	return applyMetric(s.metric, img, f)
}

// StegScorer implements the paper's Method 3: the CSP count in the
// frequency domain (see internal/steg).
type StegScorer struct {
	opts steg.Options
}

// NewStegScorer builds the Method-3 scorer. Zero-valued options take the
// calibrated defaults.
func NewStegScorer(opts steg.Options) *StegScorer {
	return &StegScorer{opts: opts}
}

// Name implements Scorer.
func (s *StegScorer) Name() string { return "steganalysis/CSP" }

// Score implements Scorer.
//
//declint:nan-ok delegates to steg.CSP, which validates input; NaN/Inf totality is pinned by FuzzCSP
func (s *StegScorer) Score(img *imgcore.Image) (float64, error) {
	n, err := steg.CSP(img, s.opts)
	if err != nil {
		return 0, fmt.Errorf("detect: csp: %w", err)
	}
	return float64(n), nil
}

func applyMetric(m Metric, a, b *imgcore.Image) (float64, error) {
	switch m {
	case MSE:
		return metrics.MSE(a, b)
	case SSIM:
		return metrics.SSIM(a, b)
	case PSNR:
		return metrics.PSNR(a, b)
	default:
		return 0, fmt.Errorf("detect: unsupported metric %v", m)
	}
}

// Detector couples a scorer with a decision threshold — one deployable
// detection method (the paper's Algorithms 1-3).
type Detector struct {
	scorer    Scorer
	threshold Threshold
}

// NewDetector builds a detector; the threshold must be valid.
func NewDetector(scorer Scorer, threshold Threshold) (*Detector, error) {
	if scorer == nil {
		return nil, errors.New("detect: scorer is required")
	}
	if err := threshold.Validate(); err != nil {
		return nil, err
	}
	return &Detector{scorer: scorer, threshold: threshold}, nil
}

// Name returns the underlying scorer's name.
func (d *Detector) Name() string { return d.scorer.Name() }

// Threshold returns the decision boundary.
func (d *Detector) Threshold() Threshold { return d.threshold }

// Detect scores img and classifies it.
//
//declint:nan-ok NaN/Inf handling is the scorer's contract; a NaN score classifies as benign (Classify is false on NaN)
func (d *Detector) Detect(img *imgcore.Image) (Verdict, error) {
	score, err := d.scorer.Score(img)
	if err != nil {
		return Verdict{}, err
	}
	return Verdict{
		Attack: d.threshold.Classify(score),
		Score:  score,
		Method: d.scorer.Name(),
	}, nil
}

// DefaultCSPThreshold is the paper's fixed steganalysis decision rule:
// two or more centered spectrum points indicate an attack, with no
// per-dataset calibration required.
func DefaultCSPThreshold() Threshold {
	return Threshold{Value: 2, Direction: Above}
}
