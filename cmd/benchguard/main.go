// Command benchguard compares one benchmark between two `go test -bench`
// output files and fails when the candidate's median ns/op exceeds the
// baseline's by more than a budget. CI uses it to enforce the
// observability layer's compiled-in-but-disabled overhead: the baseline
// is BenchmarkDetectDisabled built with -tags noobs (the instrumentation
// compiled out entirely), the candidate is the default build with
// recording switched off, and the budget is 2%.
//
// Usage:
//
//	go test -run=NONE -bench=Detect -count=5 -tags noobs ./internal/detect/ > noobs.txt
//	go test -run=NONE -bench=Detect -count=5 ./internal/detect/ > default.txt
//	go run ./cmd/benchguard -baseline noobs.txt -candidate default.txt \
//	    -bench BenchmarkDetectDisabled -max-overhead-pct 2
//
// The guard can also compare two DIFFERENT benchmarks — for example the
// legacy/pipeline ensemble pair, where the budget is negative because the
// candidate must be strictly faster:
//
//	go run ./cmd/benchguard -baseline pair.txt -candidate pair.txt \
//	    -baseline-bench BenchmarkEnsembleLegacy \
//	    -candidate-bench BenchmarkEnsemblePipeline \
//	    -max-overhead-pct -25 -require-fewer-allocs
//
// -baseline-bench and -candidate-bench default to -bench; at least one
// side must be named. With -require-fewer-allocs the candidate's median
// allocs/op must be strictly below the baseline's, and both sides must
// carry allocation data (run the benchmarks with -benchmem or
// ReportAllocs).
//
// A third mode gates the committed perf trajectory instead of one run:
//
//	go run ./cmd/benchguard -trend bench/ -max-regression-pct 10 \
//	    -trend-write bench/README.md
//
// -trend walks every BENCH_*.json snapshot under the directory (see
// cmd/benchjson), compares each tracked kernel's latest median ns/op
// against its best committed median, and fails when any kernel regressed
// more than the budget. Snapshots whose recorded environment differs
// from the latest one's are flagged and excluded rather than silently
// mixed; snapshots without an environment record predate the field and
// are assumed to come from the reference container (bench/README.md).
// Reference baselines (Naive/Unplanned/Legacy/PerColumn/Float256
// benchmarks) are reported in the speedup table but not gated. With
// -trend-write the history and speedup tables are rendered between
// benchtrend markers in the named markdown file, so CI can verify the
// committed table matches the committed snapshots with git diff.
//
// Exit codes: 0 within budget, 1 over budget (or allocs not fewer, or a
// tracked kernel regressed in trend mode), 2 on usage/parse errors or
// when a named benchmark (or its allocation data, under
// -require-fewer-allocs) is missing from its file.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"decamouflage/internal/benchfmt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baseFlag := fs.String("baseline", "", "bench output file with the baseline numbers")
	candFlag := fs.String("candidate", "", "bench output file with the candidate numbers")
	benchFlag := fs.String("bench", "", "benchmark name to compare (GOMAXPROCS suffix ignored)")
	baseBenchFlag := fs.String("baseline-bench", "", "baseline benchmark name (defaults to -bench)")
	candBenchFlag := fs.String("candidate-bench", "", "candidate benchmark name (defaults to -bench)")
	maxFlag := fs.Float64("max-overhead-pct", 2, "largest tolerated median-ns/op increase, in percent")
	allocsFlag := fs.Bool("require-fewer-allocs", false, "fail unless candidate median allocs/op is strictly below baseline")
	trendFlag := fs.String("trend", "", "directory of BENCH_*.json snapshots to trajectory-gate (replaces file comparison)")
	trendMaxFlag := fs.Float64("max-regression-pct", 10, "trend mode: largest tolerated regression of a kernel's latest median vs its best committed one, in percent")
	trendWriteFlag := fs.String("trend-write", "", "trend mode: markdown file whose benchtrend-marked region is rewritten with the history table")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: benchguard -baseline a.txt -candidate b.txt -bench BenchmarkName [-baseline-bench N] [-candidate-bench N] [-max-overhead-pct 2] [-require-fewer-allocs]")
		fmt.Fprintln(stderr, "       benchguard -trend bench/ [-max-regression-pct 10] [-trend-write bench/README.md]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *trendFlag != "" {
		return runTrend(*trendFlag, *trendMaxFlag, *trendWriteFlag, stdout, stderr)
	}
	baseBench, candBench := *baseBenchFlag, *candBenchFlag
	if baseBench == "" {
		baseBench = *benchFlag
	}
	if candBench == "" {
		candBench = *benchFlag
	}
	if *baseFlag == "" || *candFlag == "" || baseBench == "" || candBench == "" {
		fs.Usage()
		return 2
	}
	base, err := medianFromFile(*baseFlag, baseBench)
	if err != nil {
		fmt.Fprintf(stderr, "benchguard: baseline: %v\n", err)
		return 2
	}
	cand, err := medianFromFile(*candFlag, candBench)
	if err != nil {
		fmt.Fprintf(stderr, "benchguard: candidate: %v\n", err)
		return 2
	}
	label := candBench
	if baseBench != candBench {
		label = baseBench + " -> " + candBench
	}
	overhead := (cand.ns/base.ns - 1) * 100
	fmt.Fprintf(stdout,
		"benchguard: %s baseline %.0f ns/op (n=%d), candidate %.0f ns/op (n=%d), overhead %+.2f%% (budget %.2f%%)\n",
		label, base.ns, base.n, cand.ns, cand.n, overhead, *maxFlag)
	if overhead > *maxFlag {
		fmt.Fprintf(stderr, "benchguard: FAIL: overhead %+.2f%% exceeds %.2f%%\n", overhead, *maxFlag)
		return 1
	}
	if *allocsFlag {
		if base.allocs < 0 {
			fmt.Fprintf(stderr, "benchguard: baseline %q has no allocs/op data (run with -benchmem or ReportAllocs)\n", baseBench)
			return 2
		}
		if cand.allocs < 0 {
			fmt.Fprintf(stderr, "benchguard: candidate %q has no allocs/op data (run with -benchmem or ReportAllocs)\n", candBench)
			return 2
		}
		fmt.Fprintf(stdout, "benchguard: %s baseline %d allocs/op, candidate %d allocs/op\n",
			label, base.allocs, cand.allocs)
		if cand.allocs >= base.allocs {
			fmt.Fprintf(stderr, "benchguard: FAIL: candidate allocs/op %d not below baseline %d\n",
				cand.allocs, base.allocs)
			return 1
		}
	}
	return 0
}

// selectionHint explains a zero-line selection: the usual culprits are a
// name copied verbatim from bench output (selection strips the -N
// GOMAXPROCS suffix; passing it never matches a file whose results carry a
// different suffix, and confuses readers either way) or a -bench pattern
// that filtered the wanted benchmark out of the run. Listing what the file
// does contain makes both obvious.
func selectionHint(results []benchfmt.Result, bench string) string {
	if len(results) == 0 {
		return "; the file contains no benchmark result lines"
	}
	if stripped := benchfmt.BaseName(bench); stripped != bench {
		if len(benchfmt.Select(results, stripped)) > 0 {
			return fmt.Sprintf("; names are compared with the -N GOMAXPROCS suffix stripped — use %q", stripped)
		}
	}
	seen := map[string]bool{}
	var names []string
	for _, r := range results {
		if base := benchfmt.BaseName(r.Name); !seen[base] {
			seen[base] = true
			names = append(names, base)
		}
	}
	return "; the file has: " + strings.Join(names, ", ")
}

// median holds the robust centers of one benchmark's repetitions.
type median struct {
	ns     float64
	allocs int64 // -1 when no repetition reported allocation data
	n      int
}

// medianFromFile parses one bench output file and returns the median
// ns/op and allocs/op of the named benchmark plus how many repetitions
// backed them.
func medianFromFile(path, bench string) (median, error) {
	f, err := os.Open(path)
	if err != nil {
		return median{}, err
	}
	defer f.Close()
	results, err := benchfmt.Parse(f)
	if err != nil {
		return median{}, err
	}
	sel := benchfmt.Select(results, bench)
	if len(sel) == 0 {
		return median{}, fmt.Errorf("no results for %q in %s%s", bench, path, selectionHint(results, bench))
	}
	med := benchfmt.MedianNsPerOp(sel)
	if !(med > 0) {
		return median{}, fmt.Errorf("median ns/op for %q in %s is not positive", bench, path)
	}
	return median{ns: med, allocs: benchfmt.MedianAllocsPerOp(sel), n: len(sel)}, nil
}
