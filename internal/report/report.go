// Package report renders experiment outputs: markdown tables matching the
// paper's table layout, ASCII histograms reproducing its distribution
// figures, and CSV series for external plotting.
package report

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"decamouflage/internal/stats"
)

// Table is a simple rows-and-headers structure rendered as markdown.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Headers) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as GitHub-flavored markdown.
func (t *Table) Render(w io.Writer) error {
	if len(t.Headers) == 0 {
		return errors.New("report: table has no headers")
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i := range t.Headers {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, " %-*s |", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	b.WriteString("|")
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2))
		b.WriteString("|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Pct formats a fraction as a percentage with one decimal, e.g. "99.9%".
func Pct(frac float64) string {
	return fmt.Sprintf("%.1f%%", frac*100)
}

// F formats a float compactly with the given decimals.
func F(v float64, decimals int) string {
	return strconv.FormatFloat(v, 'f', decimals, 64)
}

// HistogramOptions tunes ASCII histogram rendering.
type HistogramOptions struct {
	// Bins is the bin count (default 30).
	Bins int
	// Width is the bar width in characters (default 50).
	Width int
	// Markers are vertical reference values annotated on their bins (e.g.
	// a selected threshold, the paper's red dashed line).
	Markers map[string]float64
}

// RenderHistogram writes side-by-side ASCII histograms of one or two
// labelled sample sets over a shared range — the shape of the paper's
// Figures 9-15. The second set may be nil.
func RenderHistogram(w io.Writer, title string, labelA string, a []float64, labelB string, b []float64, opts HistogramOptions) error {
	if len(a) == 0 {
		return errors.New("report: histogram needs samples")
	}
	if opts.Bins <= 0 {
		opts.Bins = 30
	}
	if opts.Width <= 0 {
		opts.Width = 50
	}
	loA, hiA, err := stats.MinMax(a)
	if err != nil {
		return err
	}
	lo, hi := loA, hiA
	if len(b) > 0 {
		loB, hiB, err := stats.MinMax(b)
		if err != nil {
			return err
		}
		if loB < lo {
			lo = loB
		}
		if hiB > hi {
			hi = hiB
		}
	}
	//declint:ignore floateq a degenerate range needs exact detection before padding
	if lo == hi {
		hi = lo + 1
	}
	ha, err := stats.NewHistogram(a, lo, hi, opts.Bins)
	if err != nil {
		return err
	}
	var hb *stats.Histogram
	if len(b) > 0 {
		hb, err = stats.NewHistogram(b, lo, hi, opts.Bins)
		if err != nil {
			return err
		}
	}
	maxCount := ha.MaxCount()
	if hb != nil && hb.MaxCount() > maxCount {
		maxCount = hb.MaxCount()
	}
	if maxCount == 0 {
		maxCount = 1
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	if hb != nil {
		fmt.Fprintf(&sb, "  %-12s: '#' x%d samples   %-12s: '*' x%d samples\n", labelA, len(a), labelB, len(b))
	} else {
		fmt.Fprintf(&sb, "  %-12s: '#' x%d samples\n", labelA, len(a))
	}
	binWidth := (hi - lo) / float64(opts.Bins)
	for i := 0; i < opts.Bins; i++ {
		center := ha.BinCenter(i)
		na := ha.Counts[i]
		nb := 0
		if hb != nil {
			nb = hb.Counts[i]
		}
		barA := strings.Repeat("#", scale(na, maxCount, opts.Width))
		barB := strings.Repeat("*", scale(nb, maxCount, opts.Width))
		marker := ""
		for name, v := range opts.Markers {
			if v >= lo+float64(i)*binWidth && v < lo+float64(i+1)*binWidth {
				marker += " <-- " + name
			}
		}
		fmt.Fprintf(&sb, "  %12.4g |%-*s|%-*s|%s\n", center, opts.Width, barA, opts.Width, barB, marker)
	}
	sb.WriteString("\n")
	_, err = io.WriteString(w, sb.String())
	return err
}

func scale(n, mx, width int) int {
	if n == 0 {
		return 0
	}
	v := n * width / mx
	if v == 0 {
		v = 1
	}
	return v
}

// WriteCSV writes labelled float series as columns. All series must have
// equal length.
func WriteCSV(w io.Writer, headers []string, columns ...[]float64) error {
	if len(headers) != len(columns) {
		return fmt.Errorf("report: %d headers for %d columns", len(headers), len(columns))
	}
	if len(columns) == 0 {
		return errors.New("report: no columns")
	}
	n := len(columns[0])
	for i, c := range columns {
		if len(c) != n {
			return fmt.Errorf("report: column %d has %d rows, want %d", i, len(c), n)
		}
	}
	var sb strings.Builder
	sb.WriteString(strings.Join(headers, ","))
	sb.WriteString("\n")
	for r := 0; r < n; r++ {
		for c := range columns {
			if c > 0 {
				sb.WriteString(",")
			}
			sb.WriteString(strconv.FormatFloat(columns[c][r], 'g', -1, 64))
		}
		sb.WriteString("\n")
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
