package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

const fixtures = "../../internal/analysis/testdata"

func runDeclint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestViolatingFixturesExitNonzero: every violating fixture module fails
// with exit 1 and reports the expected check at a file:line position.
func TestViolatingFixturesExitNonzero(t *testing.T) {
	cases := []struct {
		fixture string
		check   string
		file    string
	}{
		{"norawgo", "noraw-go", "pool.go"},
		{"determinism", "determinism", "bad.go"},
		{"floateq", "floateq", "cmp.go"},
		{"naninput", "naninput", "api.go"},
		{"errdrop", "errdrop", "drop.go"},
		{"suppress", "declint", "bad.go"},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			code, stdout, stderr := runDeclint(t, filepath.Join(fixtures, tc.fixture))
			if code != 1 {
				t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
			}
			if !strings.Contains(stdout, ": "+tc.check+": ") {
				t.Errorf("stdout lacks check %q:\n%s", tc.check, stdout)
			}
			if !strings.Contains(stdout, tc.file+":") {
				t.Errorf("stdout lacks file:line for %s:\n%s", tc.file, stdout)
			}
			if !strings.Contains(stderr, "finding(s)") {
				t.Errorf("stderr lacks the findings summary:\n%s", stderr)
			}
		})
	}
}

// TestChecksFlagScopesRun: -checks with an unrelated check exits clean on a
// fixture that only violates another one.
func TestChecksFlagScopesRun(t *testing.T) {
	code, stdout, _ := runDeclint(t, "-checks", "errdrop", filepath.Join(fixtures, "floateq"))
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s", code, stdout)
	}
	code, stdout, _ = runDeclint(t, "-checks", "floateq", filepath.Join(fixtures, "floateq"))
	if code != 1 || !strings.Contains(stdout, "floateq") {
		t.Fatalf("exit code = %d, want 1 with floateq findings:\n%s", code, stdout)
	}
}

func TestUnknownCheckFlag(t *testing.T) {
	code, _, stderr := runDeclint(t, "-checks", "bogus", filepath.Join(fixtures, "errdrop"))
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown check") {
		t.Errorf("stderr lacks unknown-check error:\n%s", stderr)
	}
}

func TestListFlag(t *testing.T) {
	code, stdout, _ := runDeclint(t, "-list")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"noraw-go", "determinism", "floateq", "naninput", "errdrop"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output lacks %s:\n%s", name, stdout)
		}
	}
}
