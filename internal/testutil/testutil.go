// Package testutil holds the repository's intentional exact-equality
// helpers. Decamouflage's serial-vs-parallel equivalence suites assert
// BIT-IDENTICAL output — approximate comparison would mask the exact class
// of nondeterminism they exist to catch — and expected-value tests pin
// results computed by construction. Those are the only two places exact
// float comparison is correct, so declint's floateq check allowlists this
// package alone; every other ==/!= on floats is a finding. Routing an
// assertion through these helpers is an explicit statement that exact
// equality is the point.
//
// The package also holds the repository's tolerance helpers (ApproxEqual,
// ULPDiff) for the few paths whose fast implementations legitimately
// reorder floating-point summation (box filter running sums, SSIM blur
// scratch reuse): keeping them here means every float comparison idiom in
// the test suite routes through one audited package.
package testutil

import "math"

// BitEqual reports whether a and b are exactly equal. NaN compares unequal
// to everything including itself, matching IEEE-754 ==; callers asserting
// NaN propagation should compare math.IsNaN results instead.
func BitEqual(a, b float64) bool { return a == b }

// BitEqual32 is BitEqual for float32 operands.
func BitEqual32(a, b float32) bool { return a == b }

// BitEqualComplex reports exact equality of both parts.
func BitEqualComplex(a, b complex128) bool { return a == b }

// FirstDiff returns the index of the first pair of samples that are not
// exactly equal, or -1 when the slices match element-wise. Slices of
// different lengths differ at the first index past the shorter one.
func FirstDiff(a, b []float64) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}

// FirstDiffComplex is FirstDiff over complex128 slices.
func FirstDiffComplex(a, b []complex128) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}

// ApproxEqual reports whether a and b agree within the given relative OR
// absolute tolerance: |a-b| <= absTol, or |a-b| <= relTol·max(|a|, |b|).
// The absolute term handles comparisons near zero where relative error is
// meaningless; the relative term handles large magnitudes. Two NaNs compare
// equal (both paths failed identically); a NaN against a non-NaN does not.
// Infinities of the same sign compare equal.
func ApproxEqual(a, b, relTol, absTol float64) bool {
	if a == b {
		// Covers equal infinities and exact matches without overflowing the
		// difference below.
		return true
	}
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		// Unequal operands with an infinity among them: the difference is
		// infinite (or NaN), so no finite tolerance can admit it.
		return false
	}
	d := math.Abs(a - b)
	if d <= absTol {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= relTol*m
}

// ULPDiff returns the distance between a and b in units of last place: the
// number of distinct float64 values strictly between them, plus one. Equal
// values (including -0 vs +0) return 0. The measure is symmetric and works
// across the zero boundary by mapping floats onto a monotone integer line.
// If either operand is NaN, ULPDiff returns math.MaxUint64.
func ULPDiff(a, b float64) uint64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.MaxUint64
	}
	ia, ib := ulpIndex(a), ulpIndex(b)
	if ia == ib {
		return 0
	}
	if ia > ib {
		ia, ib = ib, ia
	}
	return uint64(ib - ia)
}

// ulpIndex maps a float64 onto a monotone signed-integer line: adjacent
// representable floats map to adjacent integers, and -0/+0 map to the same
// point. This is the standard sign-magnitude to two's-complement fold.
func ulpIndex(x float64) int64 {
	bits := math.Float64bits(x)
	if bits&(1<<63) != 0 {
		// Negative: fold below zero, collapsing -0 onto +0.
		return -int64(bits &^ (1 << 63))
	}
	return int64(bits)
}
