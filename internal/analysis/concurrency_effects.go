package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// This file is the effects-pass half of the concurrency-protocol layer: a
// path-sensitive walk over each function body that records mutex
// acquire/release protocol (including defer pairing and RWMutex modes),
// channel operations with their guard context, go statements with their
// termination signals, and the held-lock set at every call site. The four
// checks in concurrency_checks.go consume only these cached facts plus the
// call graph, so warm runs never re-walk bodies.

// syncMethod resolves a call to a sync primitive method and returns its
// qualified name ("Mutex.Lock", "RWMutex.RLock", "WaitGroup.Wait", ...)
// plus the receiver expression. Embedded mutexes resolve too: the method
// object still belongs to sync even when the receiver is the embedding
// struct.
func syncMethod(info *types.Info, call *ast.CallExpr) (string, ast.Expr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return "", nil
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", nil
	}
	id := funcIDOf(fn) // "sync.(Mutex).Lock"
	rest, ok := strings.CutPrefix(id, "sync.(")
	if !ok {
		return "", nil
	}
	return strings.Replace(rest, ").", ".", 1), sel.X
}

// concObjectID renders the stable identity of a mutex or channel
// expression: "pkgpath.Type.field" for a struct field, "pkgpath.name" for
// a package-level variable, "local:name" for locals, "" when the
// expression is too dynamic to name. Field identities are what the
// //declint:locks-after grammar names (suffix-matched).
func concObjectID(info *types.Info, e ast.Expr) string {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return ""
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
		return "local:" + v.Name()
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			recv := sel.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			if n, ok := recv.(*types.Named); ok && n.Obj().Pkg() != nil {
				return n.Obj().Pkg().Path() + "." + n.Obj().Name() + "." + x.Sel.Name
			}
			return ""
		}
		if pn := pkgNameOf(info, x.X); pn != nil {
			return pn.Imported().Path() + "." + x.Sel.Name
		}
		return ""
	case *ast.StarExpr:
		return concObjectID(info, x.X)
	}
	return ""
}

// structPrefixOf returns the "pkgpath.Type." prefix of a field identity, or
// "" for non-field identities — the scope within which a close(stop) makes
// a later <-done a join rather than an unbounded block.
func structPrefixOf(id string) string {
	i := strings.LastIndex(id, ".")
	if i < 0 || strings.HasPrefix(id, "local:") {
		return ""
	}
	if strings.LastIndex(id[:i], ".") < 0 {
		return "" // "pkg.var": package-level, no struct scope
	}
	return id[:i+1]
}

// ctxDoneExpr reports whether e is ctx.Done() — the one wait that counts as
// a goroutine termination signal (golife). Timers fire forever (tickers) or
// once per loop turn, so they bound a single wait but never terminate a
// loop.
func ctxDoneExpr(info *types.Info, e ast.Expr) bool {
	x, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		return isContextType(s.Recv())
	}
	return false
}

// timerExpr reports whether e is time.After(...) or a time.Ticker/Timer C
// field — a time-bounded wait (good enough for chandisc/deadline guards,
// not for golife termination).
func timerExpr(info *types.Info, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		return selectsPkgFunc(info, ast.Unparen(x.Fun), "time", "After")
	case *ast.SelectorExpr:
		if x.Sel.Name != "C" {
			return false
		}
		if s, ok := info.Selections[x]; ok && s.Kind() == types.FieldVal {
			recv := s.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			if n, ok := recv.(*types.Named); ok && n.Obj().Pkg() != nil &&
				n.Obj().Pkg().Path() == "time" {
				return true
			}
		}
	}
	return false
}

// ctxWaitExpr: any wait bounded by cancellation or time.
func ctxWaitExpr(info *types.Info, e ast.Expr) bool {
	return ctxDoneExpr(info, e) || timerExpr(info, e)
}

// heldLock is one mutex the current path holds, in acquisition order.
type heldLock struct {
	id, mode string
}

// concState is the abstract state of one execution path: held locks in
// order, pending deferred releases, and the channels closed so far.
// Branch merges intersect held and defers (a lock held on only one arm is
// not held after the join) and union closed (a send after a close on any
// path is a hazard).
type concState struct {
	held   []heldLock
	defers []string
	closed map[string]bool
	term   bool
}

func newConcState() *concState {
	return &concState{closed: map[string]bool{}}
}

func (s *concState) clone() *concState {
	c := &concState{
		held:   append([]heldLock(nil), s.held...),
		defers: append([]string(nil), s.defers...),
		closed: make(map[string]bool, len(s.closed)),
		term:   s.term,
	}
	for k := range s.closed {
		c.closed[k] = true
	}
	return c
}

func (s *concState) holds(id string) bool {
	for _, h := range s.held {
		if h.id == id {
			return true
		}
	}
	return false
}

func (s *concState) heldIDs() []string {
	if len(s.held) == 0 {
		return nil
	}
	out := make([]string, len(s.held))
	for i, h := range s.held {
		out[i] = h.id
	}
	sort.Strings(out)
	return out
}

// mergeInto folds the branch states into base: held and defers intersect
// across the non-terminated branches, closed unions. If every branch
// terminated, base terminates.
func mergeInto(base *concState, branches []*concState) {
	live := branches[:0]
	for _, b := range branches {
		for k := range b.closed {
			base.closed[k] = true
		}
		if !b.term {
			live = append(live, b)
		}
	}
	if len(live) == 0 {
		base.term = true
		return
	}
	first := live[0]
	var held []heldLock
	for _, h := range first.held {
		in := true
		for _, o := range live[1:] {
			if !o.holds(h.id) {
				in = false
				break
			}
		}
		if in {
			held = append(held, h)
		}
	}
	var defers []string
	for _, d := range first.defers {
		in := true
		for _, o := range live[1:] {
			found := false
			for _, od := range o.defers {
				if od == d {
					found = true
					break
				}
			}
			if !found {
				in = false
				break
			}
		}
		if in {
			defers = append(defers, d)
		}
	}
	base.held, base.defers, base.term = held, defers, false
}

// concWalker interprets one function body (or one in-place closure body)
// path-sensitively, appending facts to fx.
type concWalker struct {
	pkg    *Package
	fx     *FuncEffects
	goLits map[*ast.FuncLit]bool
	// heldAt / goAt annotate the CallSites recorded by the effects walker:
	// held mutexes and go-statement membership, keyed by rendered position.
	heldAt map[string][]string
	goAt   map[string]bool
	// wgWaited: the spawner body (outside go closures) calls WaitGroup.Wait,
	// completing the fork-join shape for "join" spawn signals.
	wgWaited bool
	loop     int
}

func posKey(p token.Position) string {
	return p.Filename + ":" + strconv.Itoa(p.Line) + ":" + strconv.Itoa(p.Column)
}

func (w *concWalker) bug(kind string, n ast.Node) {
	w.fx.LockBugs = append(w.fx.LockBugs, Site{Kind: kind, Pos: w.pkg.pos(n)})
}

// exitCheck reports locks still held at a function exit that no deferred
// unlock releases.
func (w *concWalker) exitCheck(st *concState, n ast.Node) {
	released := map[string]bool{}
	for _, d := range st.defers {
		released[d] = true
	}
	seen := map[string]bool{}
	for _, h := range st.held {
		if released[h.id] || seen[h.id] {
			continue
		}
		seen[h.id] = true
		w.bug("lock of "+h.id+" is still held at this return with no deferred unlock", n)
	}
}

func (w *concWalker) stmts(list []ast.Stmt, st *concState) {
	for _, s := range list {
		if st.term {
			return
		}
		w.stmt(s, st)
	}
}

func (w *concWalker) stmt(s ast.Stmt, st *concState) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.expr(s.X, st)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.expr(r, st)
		}
		for _, l := range s.Lhs {
			w.expr(l, st)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, st)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.expr(s.X, st)
	case *ast.SendStmt:
		w.expr(s.Value, st)
		w.chanOp("send", s.Chan, s, st, false, false)
	case *ast.GoStmt:
		w.goStmt(s, st)
	case *ast.DeferStmt:
		w.deferStmt(s, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, st)
		}
		w.exitCheck(st, s)
		st.term = true
	case *ast.BranchStmt:
		if s.Tok == token.BREAK || s.Tok == token.CONTINUE || s.Tok == token.GOTO {
			st.term = true
		}
	case *ast.BlockStmt:
		w.stmts(s.List, st)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.expr(s.Cond, st)
		then := st.clone()
		w.stmts(s.Body.List, then)
		els := st.clone()
		if s.Else != nil {
			w.stmt(s.Else, els)
		}
		mergeInto(st, []*concState{then, els})
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		if s.Cond != nil {
			w.expr(s.Cond, st)
		} else {
			w.fx.InfLoop = true
		}
		w.loop++
		body := st.clone()
		w.stmts(s.Body.List, body)
		if s.Post != nil && !body.term {
			w.stmt(s.Post, body)
		}
		w.loop--
		// Merge "ran once" with "never ran": a body that terminated its own
		// path (return, or break out of the loop) contributes nothing past
		// the join, which is the conservative reading for break.
		mergeInto(st, []*concState{st.clone(), body})
	case *ast.RangeStmt:
		if s.X != nil {
			w.expr(s.X, st)
			if tv, ok := w.pkg.Info.Types[s.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					w.chanOp("recv", s.X, s, st, false, false)
				}
			}
		}
		w.loop++
		body := st.clone()
		w.stmts(s.Body.List, body)
		w.loop--
		mergeInto(st, []*concState{st.clone(), body})
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		if s.Tag != nil {
			w.expr(s.Tag, st)
		}
		w.caseClauses(s.Body, st, switchHasDefault(s.Body))
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.caseClauses(s.Body, st, switchHasDefault(s.Body))
	case *ast.SelectStmt:
		w.selectStmt(s, st)
	}
}

func switchHasDefault(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

func (w *concWalker) caseClauses(body *ast.BlockStmt, st *concState, hasDefault bool) {
	var branches []*concState
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			w.expr(e, st)
		}
		b := st.clone()
		w.stmts(cc.Body, b)
		branches = append(branches, b)
	}
	if !hasDefault {
		branches = append(branches, st.clone()) // no case matched
	}
	if len(branches) > 0 {
		mergeInto(st, branches)
	}
}

func (w *concWalker) selectStmt(s *ast.SelectStmt, st *concState) {
	guarded := false
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			guarded = true // default clause: never blocks
			continue
		}
		if e := commRecvExpr(cc.Comm); e != nil && ctxWaitExpr(w.pkg.Info, e.X) {
			guarded = true
		}
	}
	var branches []*concState
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		b := st.clone()
		switch comm := cc.Comm.(type) {
		case *ast.SendStmt:
			w.expr(comm.Value, b)
			w.chanOp("send", comm.Chan, comm, b, true, guarded)
		case *ast.ExprStmt:
			if ue, ok := ast.Unparen(comm.X).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
				w.recvOp(ue, b, true, guarded)
			}
		case *ast.AssignStmt:
			for _, r := range comm.Rhs {
				if ue, ok := ast.Unparen(r).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
					w.recvOp(ue, b, true, guarded)
				}
			}
		}
		w.stmts(cc.Body, b)
		branches = append(branches, b)
	}
	if len(branches) > 0 {
		mergeInto(st, branches)
	}
}

func commRecvExpr(comm ast.Stmt) *ast.UnaryExpr {
	var e ast.Expr
	switch comm := comm.(type) {
	case *ast.ExprStmt:
		e = comm.X
	case *ast.AssignStmt:
		if len(comm.Rhs) == 1 {
			e = comm.Rhs[0]
		}
	}
	if ue, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
		return ue
	}
	return nil
}

// chanOp records one send/recv/close. For a bare receive, a close of a
// sibling field channel of the same struct earlier on the path marks the
// receive join-guarded (the Stop-closes-stop-then-waits-on-done idiom).
func (w *concWalker) chanOp(op string, ch ast.Expr, at ast.Node, st *concState, inSelect, guarded bool) {
	id := concObjectID(w.pkg.Info, ch)
	if op == "recv" && ctxDoneExpr(w.pkg.Info, ch) {
		id = "ctx"
	}
	co := ChanOp{
		Op: op, Chan: id, Pos: w.pkg.pos(at),
		Select: inSelect, CtxGuarded: guarded, Held: st.heldIDs(),
	}
	if op == "recv" && !inSelect {
		if ctxWaitExpr(w.pkg.Info, ch) {
			co.CtxGuarded = true
		}
		if prefix := structPrefixOf(id); prefix != "" {
			for closed := range st.closed {
				if closed != id && strings.HasPrefix(closed, prefix) {
					co.JoinGuarded = true
					break
				}
			}
		}
	}
	if op == "send" && id != "" && st.closed[id] {
		w.bug("send on "+id+" after a close on the same path", at)
	}
	if op == "close" && id != "" {
		st.closed[id] = true
	}
	w.fx.ChanOps = append(w.fx.ChanOps, co)
}

func (w *concWalker) recvOp(ue *ast.UnaryExpr, st *concState, inSelect, guarded bool) {
	w.expr(ue.X, st)
	if !guarded && ctxWaitExpr(w.pkg.Info, ue.X) {
		guarded = true
	}
	w.chanOp("recv", ue.X, ue, st, inSelect, guarded)
}

func (w *concWalker) goStmt(g *ast.GoStmt, st *concState) {
	call := g.Call
	w.goAt[posKey(w.pkg.pos(call))] = true
	sp := SpawnSite{Pos: w.pkg.pos(g)}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		sp.Signals, sp.Closes = w.analyzeSpawnLit(lit)
	} else if targets := resolveCallTargets(w.pkg.Info, call.Fun, nil); len(targets) > 0 {
		sp.Callee = targets[0]
	}
	for _, a := range call.Args {
		w.expr(a, st)
	}
	w.fx.Spawns = append(w.fx.Spawns, sp)
}

// analyzeSpawnLit inspects a go-closure body for termination signals and
// completion broadcasts, without touching the enclosing path state: the
// goroutine runs concurrently, so its locks and channel ops are its own.
func (w *concWalker) analyzeSpawnLit(lit *ast.FuncLit) (signals, closes []string) {
	info := w.pkg.Info
	doneCalled := false
	infLoop := false
	add := func(s string) {
		for _, have := range signals {
			if have == s {
				return
			}
		}
		signals = append(signals, s)
	}
	recv := func(ch ast.Expr) {
		if ctxDoneExpr(info, ch) {
			add("ctx")
			return
		}
		if timerExpr(info, ch) {
			return // time-bounded wait, not a termination signal
		}
		if id := concObjectID(info, ch); id != "" {
			add("chan:" + id)
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if m, _ := syncMethod(info, n); m == "WaitGroup.Done" {
				doneCalled = true
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "close" && len(n.Args) == 1 {
					if cid := concObjectID(info, n.Args[0]); cid != "" {
						closes = append(closes, cid)
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				recv(n.X)
			}
		case *ast.RangeStmt:
			if n.X != nil {
				if tv, ok := info.Types[n.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						recv(n.X)
					}
				}
			}
		case *ast.ForStmt:
			if n.Cond == nil {
				infLoop = true
			}
		}
		return true
	})
	if doneCalled && w.wgWaited {
		add("join")
	}
	if len(signals) == 0 && !infLoop {
		add("bounded")
	}
	return signals, closes
}

func (w *concWalker) deferStmt(d *ast.DeferStmt, st *concState) {
	call := d.Call
	if m, recv := syncMethod(w.pkg.Info, call); m != "" {
		switch m {
		case "Mutex.Unlock", "RWMutex.Unlock", "RWMutex.RUnlock":
			if id := lockIdentOf(w.pkg.Info, recv); id != "" {
				st.defers = append(st.defers, id)
			}
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := w.pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "close" && len(call.Args) == 1 {
			// Deferred close fires at exit: record the op (golife matches
			// completion broadcasts by it) without poisoning this path's
			// send-after-close state.
			if cid := concObjectID(w.pkg.Info, call.Args[0]); cid != "" {
				w.fx.ChanOps = append(w.fx.ChanOps,
					ChanOp{Op: "close", Chan: cid, Pos: w.pkg.pos(call)})
			}
			return
		}
	}
	for _, a := range call.Args {
		w.expr(a, st)
	}
}

// lockIdentOf names the mutex behind a Lock/Unlock receiver. Unnameable
// receivers (map elements, function results) degrade to "" and are dropped
// from protocol tracking rather than misattributed.
func lockIdentOf(info *types.Info, recv ast.Expr) string {
	return concObjectID(info, recv)
}

// expr walks an expression on the current path. Function literals are NOT
// entered here: closures called in place are interpreted separately with a
// fresh state (their acquire sites still belong to this function), and
// go-closures belong to their goroutine.
func (w *concWalker) expr(e ast.Expr, st *concState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.recvOp(n, st, false, false)
				return false
			}
		case *ast.CallExpr:
			w.call(n, st)
			return false
		}
		return true
	})
}

func (w *concWalker) call(call *ast.CallExpr, st *concState) {
	info := w.pkg.Info
	for _, a := range call.Args {
		w.expr(a, st)
	}
	if m, recv := syncMethod(info, call); m != "" {
		w.syncOp(m, recv, call, st)
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "close":
				if len(call.Args) == 1 {
					w.chanOp("close", call.Args[0], call, st, false, false)
				}
			case "make":
				w.checkMagicBuffer(call)
			case "panic":
				st.term = true
			}
			return
		}
	}
	if selectsPkgFunc(info, ast.Unparen(call.Fun), "os", "Exit") {
		st.term = true
		return
	}
	if w.loop > 0 && selectsPkgFunc(info, ast.Unparen(call.Fun), "time", "After") {
		w.fx.TimerLoops = append(w.fx.TimerLoops,
			Site{Kind: "time.After in a loop", Pos: w.pkg.pos(call)})
	}
	if held := st.heldIDs(); len(held) > 0 {
		w.heldAt[posKey(w.pkg.pos(call))] = held
	}
	w.expr(call.Fun, st)
}

// syncOp applies one mutex operation to the path state, recording acquire
// sites, nested-acquire edges, and protocol bugs.
func (w *concWalker) syncOp(method string, recv ast.Expr, call *ast.CallExpr, st *concState) {
	id := lockIdentOf(w.pkg.Info, recv)
	if method == "WaitGroup.Wait" || method == "WaitGroup.Done" || method == "WaitGroup.Add" {
		if method == "WaitGroup.Wait" {
			w.wgWaited = true
			if held := st.heldIDs(); len(held) > 0 {
				w.heldAt[posKey(w.pkg.pos(call))] = held
			}
		}
		return
	}
	if id == "" {
		return
	}
	switch method {
	case "Mutex.Lock", "RWMutex.Lock", "RWMutex.RLock":
		mode := "w"
		if method == "RWMutex.RLock" {
			mode = "r"
		}
		if st.holds(id) {
			w.bug("double lock of "+id+" on this path (already held)", call)
		}
		for _, h := range st.held {
			if h.id != id {
				w.fx.LockEdges = append(w.fx.LockEdges,
					LockEdge{Outer: h.id, Inner: id, Pos: w.pkg.pos(call)})
			}
		}
		st.held = append(st.held, heldLock{id: id, mode: mode})
		w.fx.Locks = append(w.fx.Locks, LockOp{Mutex: id, Mode: mode, Pos: w.pkg.pos(call)})
	case "Mutex.Unlock", "RWMutex.Unlock", "RWMutex.RUnlock":
		for i := len(st.held) - 1; i >= 0; i-- {
			if st.held[i].id == id {
				st.held = append(st.held[:i], st.held[i+1:]...)
				return
			}
		}
		w.bug("unlock of "+id+" without a matching lock on this path", call)
	}
}

// checkMagicBuffer flags make(chan T, N) with a bare integer literal N>1:
// buffer capacities are backpressure policy and must be named constants or
// config-derived values. 0 (unbuffered) and 1 (the single-handoff /
// completion idiom) are structural, not policy, and stay exempt.
func (w *concWalker) checkMagicBuffer(call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	tv, ok := w.pkg.Info.Types[call.Args[0]]
	if !ok {
		return
	}
	if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return
	}
	lit, ok := ast.Unparen(call.Args[1]).(*ast.BasicLit)
	if !ok || lit.Kind != token.INT || lit.Value == "0" || lit.Value == "1" {
		return
	}
	w.fx.MagicBuffers = append(w.fx.MagicBuffers,
		Site{Kind: "channel buffer capacity " + lit.Value, Pos: w.pkg.pos(call)})
}

// analyzeConcurrency runs the path-sensitive interpreter over fd's body and
// every in-place closure, then annotates the already-recorded CallSites
// with held-lock sets and go-statement membership.
func analyzeConcurrency(pkg *Package, fd *ast.FuncDecl, fx *FuncEffects, ctxObjs map[types.Object]bool) {
	_ = ctxObjs
	w := &concWalker{
		pkg:    pkg,
		fx:     fx,
		goLits: map[*ast.FuncLit]bool{},
		heldAt: map[string][]string{},
		goAt:   map[string]bool{},
	}
	// Pre-pass: which closures are go-closure bodies, and does the spawner
	// itself (outside go-closures) join a WaitGroup? The wgWaited bit must
	// be known before spawn-lit analysis, which can precede the Wait in
	// source order.
	var lits []*ast.FuncLit
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				w.goLits[lit] = true
			}
		case *ast.FuncLit:
			lits = append(lits, n)
		case *ast.CallExpr:
			if m, _ := syncMethod(pkg.Info, n); m == "WaitGroup.Wait" {
				w.wgWaited = true
			}
		}
		return true
	})

	st := newConcState()
	w.stmts(fd.Body.List, st)
	if !st.term {
		w.exitCheck(st, fd.Body)
	}
	// In-place closures: interpret with fresh state so their acquire sites
	// and channel ops register under this function's ID (a closure that
	// locks is how FlattenSpans-style recursive walkers are written), while
	// go-closures stay with their SpawnSite.
	for _, lit := range lits {
		if w.goLits[lit] {
			continue
		}
		ls := newConcState()
		w.stmts(lit.Body.List, ls)
		if !ls.term {
			w.exitCheck(ls, lit.Body)
		}
	}
	for i := range fx.Calls {
		key := posKey(fx.Calls[i].Pos)
		if held, ok := w.heldAt[key]; ok {
			fx.Calls[i].Held = held
		}
		if w.goAt[key] {
			fx.Calls[i].Go = true
		}
	}
}
