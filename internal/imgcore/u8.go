// U8Image: the planar 8-bit view of the float64 Image. Every sample the
// detection pipeline actually sees is an 8-bit intensity — decoded PNGs,
// quantized attack outputs, the corpus generators — stored 2–8× wider than
// the data it carries. The fixed-point fast paths (uint8 rank filters,
// int32 resize accumulators) run over this view; ToU8/FromU8 are the
// lossless bridges between the two representations.
//
// The conversion contract is exact: ToU8 succeeds only when every sample
// is integral and in [0, 255], and FromU8(ToU8(m)) reproduces m
// bit-identically (integral values up to 255 are exactly representable in
// float64). Anything else — fractional samples, out-of-range values, NaN,
// infinities — stays on the float64 path.
package imgcore

import "fmt"

// U8Image is a dense 8-bit image with the same geometry and sample layout
// as Image: H rows, W columns, C channels, row-major with interleaved
// channels at Pix[(y*W+x)*C + c].
//
// The zero value is an empty image; use NewU8 to construct a valid one.
type U8Image struct {
	W, H, C int
	Pix     []uint8
}

// NewU8 returns a zero-filled 8-bit image of the given geometry.
func NewU8(w, h, c int) (*U8Image, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("%w: %dx%d", ErrBadDimensions, w, h)
	}
	if c != 1 && c != 3 {
		return nil, fmt.Errorf("%w: got %d", ErrBadChannels, c)
	}
	return &U8Image{W: w, H: h, C: c, Pix: make([]uint8, w*h*c)}, nil
}

// Validate checks internal consistency of the image header against its
// backing slice.
func (u *U8Image) Validate() error {
	if u == nil || u.W == 0 || u.H == 0 {
		return ErrEmptyImage
	}
	if u.W < 0 || u.H < 0 {
		return fmt.Errorf("%w: %dx%d", ErrBadDimensions, u.W, u.H)
	}
	if u.C != 1 && u.C != 3 {
		return fmt.Errorf("%w: got %d", ErrBadChannels, u.C)
	}
	if len(u.Pix) != u.W*u.H*u.C {
		return fmt.Errorf("imgcore: pixel buffer length %d does not match %dx%dx%d",
			len(u.Pix), u.W, u.H, u.C)
	}
	return nil
}

// At returns the sample at (x, y, c). Out-of-range coordinates are the
// caller's responsibility, as with Image.At.
func (u *U8Image) At(x, y, c int) uint8 {
	return u.Pix[(y*u.W+x)*u.C+c]
}

// Set writes the sample at (x, y, c).
func (u *U8Image) Set(x, y, c int, v uint8) {
	u.Pix[(y*u.W+x)*u.C+c] = v
}

// Clone returns a deep copy of the image.
func (u *U8Image) Clone() *U8Image {
	out := &U8Image{W: u.W, H: u.H, C: u.C, Pix: make([]uint8, len(u.Pix))}
	copy(out.Pix, u.Pix)
	return out
}

// String implements fmt.Stringer with a compact geometry description.
func (u *U8Image) String() string {
	if u == nil {
		return "U8Image(nil)"
	}
	return fmt.Sprintf("U8Image(%dx%dx%d)", u.W, u.H, u.C)
}

// ToU8 returns the lossless 8-bit view of the image, or (nil, false) when
// any sample is fractional, outside [0, 255], NaN or infinite. A true
// result guarantees FromU8 reproduces the receiver bit-identically.
func (m *Image) ToU8() (*U8Image, bool) {
	if m.Validate() != nil {
		return nil, false
	}
	out := &U8Image{W: m.W, H: m.H, C: m.C, Pix: make([]uint8, len(m.Pix))}
	if !toU8Into(out.Pix, m.Pix) {
		return nil, false
	}
	return out, true
}

// toU8Into narrows src into dst, reporting false at the first sample that
// is not an integral value in [0, 255]. dst and src must have equal length.
//
//declint:hot
func toU8Into(dst []uint8, src []float64) bool {
	for i, v := range src {
		// NaN fails both bounds checks; ±Inf fails one of them.
		if !(v >= 0 && v <= MaxPixel) {
			return false
		}
		b := uint8(v)
		//declint:ignore floateq integral floats in [0,255] round-trip uint8 exactly; any inequality means a fractional sample
		if float64(b) != v {
			return false
		}
		dst[i] = b
	}
	return true
}

// FromU8 widens an 8-bit image into a new float64 Image. The conversion
// is exact: every uint8 value is exactly representable as a float64.
func FromU8(u *U8Image) (*Image, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	out := &Image{W: u.W, H: u.H, C: u.C, Pix: make([]float64, len(u.Pix))}
	fromU8Into(out.Pix, u.Pix)
	return out, nil
}

// FromU8Into widens u into dst, which must already have u's geometry. It
// is the allocation-free variant of FromU8 for callers that recycle
// float64 buffers.
func FromU8Into(u *U8Image, dst *Image) error {
	if err := u.Validate(); err != nil {
		return err
	}
	if err := dst.Validate(); err != nil {
		return err
	}
	if dst.W != u.W || dst.H != u.H || dst.C != u.C {
		return fmt.Errorf("%w: dst %dx%dx%d, want %dx%dx%d",
			ErrShapeMismatch, dst.W, dst.H, dst.C, u.W, u.H, u.C)
	}
	fromU8Into(dst.Pix, u.Pix)
	return nil
}

// fromU8Into widens src into dst of equal length.
//
//declint:hot
func fromU8Into(dst []float64, src []uint8) {
	for i, v := range src {
		dst[i] = float64(v)
	}
}
