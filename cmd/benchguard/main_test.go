package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const baselineTxt = `goos: linux
BenchmarkDetectDisabled-8   100   1000000 ns/op
BenchmarkDetectDisabled-8   100   1020000 ns/op
BenchmarkDetectDisabled-8   100    980000 ns/op
BenchmarkDetectInstrumented-8   100   1200000 ns/op
PASS
`

func TestWithinBudget(t *testing.T) {
	base := writeBench(t, "base.txt", baselineTxt)
	cand := writeBench(t, "cand.txt", `BenchmarkDetectDisabled-8   100   1010000 ns/op
BenchmarkDetectDisabled-8   100   1015000 ns/op
BenchmarkDetectDisabled-8   100   1005000 ns/op
`)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-baseline", base, "-candidate", cand,
		"-bench", "BenchmarkDetectDisabled"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	// medians: 1000000 vs 1010000 -> +1.00%
	if !strings.Contains(stdout.String(), "overhead +1.00%") {
		t.Errorf("report: %s", stdout.String())
	}
}

func TestOverBudget(t *testing.T) {
	base := writeBench(t, "base.txt", baselineTxt)
	cand := writeBench(t, "cand.txt", "BenchmarkDetectDisabled-8   100   1100000 ns/op\n")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-baseline", base, "-candidate", cand,
		"-bench", "BenchmarkDetectDisabled", "-max-overhead-pct", "2"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stdout: %s", code, stdout.String())
	}
	if !strings.Contains(stderr.String(), "exceeds") {
		t.Errorf("stderr: %s", stderr.String())
	}
}

func TestFasterCandidatePasses(t *testing.T) {
	base := writeBench(t, "base.txt", baselineTxt)
	cand := writeBench(t, "cand.txt", "BenchmarkDetectDisabled-8   100   900000 ns/op\n")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-baseline", base, "-candidate", cand,
		"-bench", "BenchmarkDetectDisabled"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "overhead -10.00%") {
		t.Errorf("report: %s", stdout.String())
	}
}

func TestErrors(t *testing.T) {
	base := writeBench(t, "base.txt", baselineTxt)
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("missing flags: exit %d, want 2", code)
	}
	// Named benchmark absent from the candidate file.
	cand := writeBench(t, "cand.txt", "BenchmarkOther-8  10  5 ns/op\n")
	code := run([]string{"-baseline", base, "-candidate", cand,
		"-bench", "BenchmarkDetectDisabled"}, &stdout, &stderr)
	if code != 2 {
		t.Errorf("absent benchmark: exit %d, want 2", code)
	}
	// Unreadable baseline.
	code = run([]string{"-baseline", filepath.Join(t.TempDir(), "nope.txt"),
		"-candidate", cand, "-bench", "BenchmarkDetectDisabled"}, &stdout, &stderr)
	if code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
}
