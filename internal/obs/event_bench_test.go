package obs

import (
	"context"
	"testing"
	"time"
)

// BenchmarkRecordPath measures the flat per-image cost of the full
// recording machinery in isolation: an auto-created trace, a span tree
// the shape of an ensemble detect (root stage, three method spans, three
// pipeline stages each, with the attrs the scorers attach), histogram
// observations per stage, the wide event built from the flattened tree,
// the ring insert, and the tail-sampler offer. The detect-level overhead
// gate (BenchmarkDetectRecorder vs -tags noobs) measures the same work
// diluted by multi-millisecond kernels on a shared runner; this number is
// the stable numerator of that ratio.
func BenchmarkRecordPath(b *testing.B) {
	if compiledOut {
		b.Skip("observability compiled out (noobs)")
	}
	Enable()
	b.Cleanup(Disable)
	rec := NewRecorder(1024)
	ts := NewTailSampler(64, 0.1)
	h := H("bench.record.seconds")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, tr := WithTrace(context.Background(), "ensemble.detect")
		sctx, st := StartStage(ctx, "ensemble.detect", h)
		for m := 0; m < 3; m++ {
			mctx, ms := StartSpan(sctx, "method")
			for k := 0; k < 3; k++ {
				_, ks := StartStage(mctx, "stage", h)
				ks.End()
			}
			ms.AttrFloat("score", 123.456)
			ms.AttrBool("attack", false)
			ms.End()
		}
		st.End()
		ev := Event{
			Name:    "ensemble.detect",
			TraceID: tr.ID(),
			UnixNs:  tr.Root().start.UnixNano(),
			DurNs:   int64(time.Microsecond),
			Stages:  FlattenSpans(tr.Root()),
		}
		rec.Record(ev)
		tr.End()
		ts.Offer(tr, nil)
	}
}
