package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Anomaly tags attached to flight-recorder events. An event carrying any
// tag is dumped immediately when the recorder has an anomaly writer, so
// the interesting requests survive even if the process dies before a
// dump-on-demand.
const (
	// AnomalyError marks a request that returned an error.
	AnomalyError = "error"
	// AnomalyDeadline marks a request that hit its context deadline.
	AnomalyDeadline = "deadline"
	// AnomalyNearThreshold marks a verdict where at least one method
	// scored inside the borderline band around its decision boundary.
	AnomalyNearThreshold = "near-threshold"
	// AnomalySlow marks a request well above the recorder's adaptive
	// per-event-name latency average.
	AnomalySlow = "slow"
	// AnomalyWatchdog marks a runtime-watchdog threshold crossing.
	AnomalyWatchdog = "watchdog"
)

// StageDur is one flattened span of an event or retained trace: the span
// tree serialized pre-order, with depth and start offset relative to the
// root, so a dump preserves the full latency attribution without pointers.
type StageDur struct {
	Name     string            `json:"name"`
	Depth    int               `json:"depth"`
	OffsetNs int64             `json:"offset_ns"`
	DurNs    int64             `json:"dur_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// MethodResult is one detection method's contribution to a wide event:
// score, decision boundary and verdict, plus the absolute distance to the
// boundary so borderline calls sort without re-deriving thresholds.
type MethodResult struct {
	Method    string  `json:"method"`
	Score     float64 `json:"score"`
	Threshold float64 `json:"threshold"`
	Direction string  `json:"direction,omitempty"`
	Attack    bool    `json:"attack"`
	Margin    float64 `json:"margin"`
}

// Event is one wide flight-recorder event: everything known about a single
// request (one image detection, or one watchdog sample), denormalized into
// a single record an operator can grep after the fact.
type Event struct {
	Seq     uint64 `json:"seq"`
	TraceID string `json:"trace_id,omitempty"`
	Name    string `json:"name"`
	UnixNs  int64  `json:"unix_ns"`
	DurNs   int64  `json:"dur_ns,omitempty"`

	// Image geometry (detection events).
	W int `json:"w,omitempty"`
	H int `json:"h,omitempty"`
	C int `json:"c,omitempty"`

	// Verdict is "attack" or "benign" on successful detection events.
	Verdict string         `json:"verdict,omitempty"`
	Votes   int            `json:"votes,omitempty"`
	Methods []MethodResult `json:"methods,omitempty"`

	// Stages is the request's span tree, flattened pre-order.
	Stages []StageDur `json:"stages,omitempty"`

	// Pipeline memo and pool accounting for the request.
	MemoHits    int64 `json:"memo_hits,omitempty"`
	MemoMisses  int64 `json:"memo_misses,omitempty"`
	PoolBorrows int64 `json:"pool_borrows,omitempty"`

	Err       string   `json:"err,omitempty"`
	Anomalies []string `json:"anomalies,omitempty"`

	// Values carries named samples (watchdog gauge readings).
	Values map[string]int64 `json:"values,omitempty"`
}

// Anomalous reports whether the event carries any anomaly tag.
func (e *Event) Anomalous() bool { return len(e.Anomalies) > 0 }

// Recorder is the wide-event flight recorder: a fixed-size ring of the
// most recent events. Record takes one short mutex hold (ring push plus
// adaptive-latency update); snapshots copy the ring so readers never
// block writers for long.
type Recorder struct {
	mu        sync.Mutex
	ring      *ringBuf[Event]
	seq       uint64
	recorded  int64
	dropped   int64
	anomalous int64
	slow      map[string]*ewma

	// anomalyMu serializes the dump-on-anomaly writer separately from the
	// ring mutex: encoding an event is I/O and must never stall Record
	// callers waiting on mu.
	anomalyMu sync.Mutex
	anomalyW  io.Writer
	anomalyE  error

	// Registry counters mirror the plain fields so dumps and /metrics show
	// recorder health next to everything else.
	recordedC  *Counter
	droppedC   *Counter
	anomalousC *Counter
}

// NewRecorder returns a recorder retaining the last capacity events
// (default 1024 when capacity <= 0). Returns nil under noobs; a nil
// Recorder is a valid no-op receiver.
func NewRecorder(capacity int) *Recorder {
	if compiledOut {
		return nil
	}
	if capacity <= 0 {
		capacity = 1024
	}
	return &Recorder{
		ring:       newRingBuf[Event](capacity),
		slow:       map[string]*ewma{},
		recordedC:  C("obs.events.recorded"),
		droppedC:   C("obs.events.dropped"),
		anomalousC: C("obs.events.anomalous"),
	}
}

// Active reports whether recording is live: instrumented code guards its
// event-building work behind this so an uninstalled recorder costs one
// atomic load per request.
func (r *Recorder) Active() bool { return !compiledOut && r != nil }

// SetAnomalyOutput directs events carrying anomaly tags to w as NDJSON the
// moment they are recorded (dump-on-anomaly). The first write error stops
// further anomaly writes and is reported by Err.
func (r *Recorder) SetAnomalyOutput(w io.Writer) {
	if r == nil {
		return
	}
	r.anomalyMu.Lock()
	r.anomalyW = w
	r.anomalyMu.Unlock()
}

// Record stamps and stores one event: assigns the sequence number, fills
// a zero UnixNs, tags the event "slow" when its duration is far above the
// adaptive average for its name, and pushes it into the ring.
func (r *Recorder) Record(ev Event) {
	if !r.Active() {
		return
	}
	if ev.UnixNs == 0 {
		ev.UnixNs = time.Now().UnixNano()
	}
	r.mu.Lock()
	r.seq++
	ev.Seq = r.seq
	if ev.DurNs > 0 {
		e := r.slow[ev.Name]
		if e == nil {
			e = &ewma{}
			r.slow[ev.Name] = e
		}
		if e.observe(ev.DurNs) {
			ev.Anomalies = append(ev.Anomalies, AnomalySlow)
		}
	}
	if r.ring.push(ev) {
		r.dropped++
	}
	r.recorded++
	if ev.Anomalous() {
		r.anomalous++
	}
	r.mu.Unlock()
	r.recordedC.Inc()
	if ev.Anomalous() {
		r.anomalousC.Inc()
		// Dump-on-anomaly happens outside mu: the encode is I/O, and a slow
		// anomaly writer must never stall concurrent Record callers.
		r.anomalyMu.Lock()
		if r.anomalyW != nil && r.anomalyE == nil {
			//declint:ignore lockorder anomalyMu exists to serialize exactly this write; it guards nothing else and Record never blocks on it while holding mu
			r.anomalyE = json.NewEncoder(r.anomalyW).Encode(&ev)
		}
		r.anomalyMu.Unlock()
	}
}

// Snapshot returns the retained events, oldest first.
func (r *Recorder) Snapshot() []Event {
	if !r.Active() {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.snapshot()
}

// Find returns the most recent retained event with the given trace ID.
func (r *Recorder) Find(traceID string) (Event, bool) {
	if traceID != "" {
		evs := r.Snapshot()
		for i := len(evs) - 1; i >= 0; i-- {
			if evs[i].TraceID == traceID {
				return evs[i], true
			}
		}
	}
	return Event{}, false
}

// Recorded returns the total number of events recorded.
func (r *Recorder) Recorded() int64 {
	if !r.Active() {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.recorded
}

// Dropped returns how many events the ring has overwritten.
func (r *Recorder) Dropped() int64 {
	if !r.Active() {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Err returns the first anomaly-writer error, if any.
func (r *Recorder) Err() error {
	if !r.Active() {
		return nil
	}
	r.anomalyMu.Lock()
	defer r.anomalyMu.Unlock()
	return r.anomalyE
}

// WriteNDJSON dumps the retained events to w, one JSON object per line,
// oldest first (dump-on-demand).
func (r *Recorder) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range r.Snapshot() {
		if err := enc.Encode(&ev); err != nil {
			return err
		}
	}
	return nil
}

// currentRecorder is the process-wide flight recorder, if any. A plain
// atomic pointer keeps the uninstalled fast path to one load.
var currentRecorder atomic.Pointer[Recorder]

// SetRecorder installs r as the process-wide flight recorder (nil
// uninstalls). Instrumented packages reach it through Events.
func SetRecorder(r *Recorder) {
	if compiledOut {
		return
	}
	currentRecorder.Store(r)
}

// Events returns the installed flight recorder, or nil (a no-op receiver)
// when none is installed or observability is compiled out.
func Events() *Recorder {
	if compiledOut {
		return nil
	}
	return currentRecorder.Load()
}

// FlattenSpans serializes a span tree pre-order into StageDur records:
// the root at depth 0, descendants below it, offsets relative to the root
// start. Unended spans report their live duration. Nil-safe.
//
// The tail sampler calls this under its own lock while flattening a
// finished trace; each Span.mu is leaf-level (held only for field copies,
// never across another acquire), so the order is safe and declared:
//
//declint:locks-after obs.TailSampler.mu
func FlattenSpans(root *Span) []StageDur {
	if compiledOut || root == nil {
		return nil
	}
	out := make([]StageDur, 0, 16)
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		s.mu.Lock()
		dur := s.dur
		if !s.ended {
			dur = time.Since(s.start)
		}
		var attrs map[string]string
		if len(s.attrs) > 0 {
			attrs = make(map[string]string, len(s.attrs))
			for _, a := range s.attrs {
				attrs[a.Key] = a.Value
			}
		}
		// The slice header is captured under the lock but not copied: a
		// concurrent StartSpan can only append past len, never mutate the
		// elements this header already covers, so walking them lock-free
		// is safe and saves an allocation per span.
		children := s.children
		s.mu.Unlock()
		out = append(out, StageDur{
			Name:     s.name,
			Depth:    depth,
			OffsetNs: s.start.Sub(root.start).Nanoseconds(),
			DurNs:    dur.Nanoseconds(),
			Attrs:    attrs,
		})
		for _, c := range children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return out
}
