// Fixture: uint8 kernel fast paths under the hot contract — the shape of
// the real module's vHGW lanes. The wedge-reusing sliding window is
// silent; rebuilding the histogram per call and growing an output with
// append are findings.
package filtering

// SlideMinU8 is the allocation-free shape: the caller owns the wedge.
//
//declint:hot
func SlideMinU8(out, lane []uint8, wedge []uint8) {
	for i := range out {
		m := lane[i]
		for _, v := range wedge {
			if v < m {
				m = v
			}
		}
		out[i] = m
	}
}

// HistMedianU8 rebuilds its 256-bin histogram on every call.
//
//declint:hot
func HistMedianU8(lane []uint8) uint8 {
	hist := make([]uint16, 256)
	for _, v := range lane {
		hist[v]++
	}
	n := uint16(0)
	for i, c := range hist {
		if n += c; int(n) > len(lane)/2 {
			return uint8(i)
		}
	}
	return 0
}

// CollectRunsU8 grows its result with append inside the hot loop.
//
//declint:hot
func CollectRunsU8(lane []uint8) []int {
	var runs []int
	for i := 1; i < len(lane); i++ {
		if lane[i] != lane[i-1] {
			runs = append(runs, i)
		}
	}
	return runs
}
