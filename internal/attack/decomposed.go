package attack

import (
	"fmt"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/qpsolve"
	"decamouflage/internal/scaling"
)

// CraftDecomposed implements the two-stage axis decomposition used by Xiao
// et al.'s original implementation: because separable scaling factors as
// scale(X) = L·X·Rᵀ, the 2-D problem splits into
//
//	stage 1 (vertical):   find Aᵥ (h×w') with  ‖L·Aᵥ − T‖∞ ≤ ε/2,
//	                      starting from the horizontally-scaled source O·Rᵀ;
//	stage 2 (horizontal): per source row, find A (h×w) with
//	                      ‖A·Rᵀ − Aᵥ‖∞ ≤ ε/2, starting from O.
//
// Each stage solves many small independent 1-D problems (one per column,
// then one per row), which is how the original quadratic program stays
// tractable at image scale. The total deviation at the target is at most ε
// by the triangle inequality (each stage budgets ε/2).
//
// Compared to Craft (the joint 2-D POCS solve), the decomposition is
// faster per iteration but its perturbation is not jointly minimal; both
// are provided so experiments can verify the detectors are solver-
// agnostic.
func CraftDecomposed(source, target *imgcore.Image, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := source.Validate(); err != nil {
		return nil, fmt.Errorf("attack: source: %w", err)
	}
	if err := target.Validate(); err != nil {
		return nil, fmt.Errorf("attack: target: %w", err)
	}
	srcW, srcH := cfg.Scaler.SrcSize()
	dstW, dstH := cfg.Scaler.DstSize()
	if source.W != srcW || source.H != srcH {
		return nil, fmt.Errorf("%w: source %v, scaler wants %dx%d", ErrShapeMismatch, source, srcW, srcH)
	}
	if target.W != dstW || target.H != dstH {
		return nil, fmt.Errorf("%w: target %v, scaler wants %dx%d", ErrShapeMismatch, target, dstW, dstH)
	}
	if source.C != target.C {
		return nil, fmt.Errorf("%w: %d vs %d", ErrChannels, source.C, target.C)
	}

	stageEps := cfg.Eps / 2
	if !cfg.SkipQuantize {
		// Keep a quantization margin inside the horizontal stage's budget.
		margin := 0.4
		if stageEps > margin {
			stageEps -= margin
		} else {
			stageEps /= 2
		}
	}

	vert := cfg.Scaler.Vertical()    // srcH -> dstH
	horiz := cfg.Scaler.Horizontal() // srcW -> dstW

	// Stage 0: horizontally-scaled source O·Rᵀ (srcH × dstW).
	oh, err := imgcore.New(dstW, srcH, source.C)
	if err != nil {
		return nil, err
	}
	for y := 0; y < srcH; y++ {
		for c := 0; c < source.C; c++ {
			horiz.Apply(source.Pix[(y*srcW)*source.C+c:], source.C,
				oh.Pix[(y*dstW)*source.C+c:], source.C)
		}
	}

	res := &Result{Converged: true}
	opts := qpsolve.Options{MaxSweeps: cfg.MaxSweeps, Tol: 0.05}

	// Stage 1: vertical attack, one 1-D solve per (column, channel).
	av := oh.Clone()
	x0 := make([]float64, srcH)
	tcol := make([]float64, dstH)
	for j := 0; j < dstW; j++ {
		for c := 0; c < source.C; c++ {
			for y := 0; y < srcH; y++ {
				x0[y] = oh.At(j, y, c)
			}
			for i := 0; i < dstH; i++ {
				tcol[i] = target.At(j, i, c)
			}
			sr, err := solve1D(vert, x0, tcol, stageEps, opts)
			if err != nil {
				return nil, fmt.Errorf("attack: stage 1 column %d: %w", j, err)
			}
			res.Sweeps += sr.Sweeps
			if !sr.Converged {
				res.Converged = false
			}
			for y := 0; y < srcH; y++ {
				av.Set(j, y, c, sr.X[y])
			}
		}
	}

	// Stage 2: horizontal attack, one 1-D solve per (row, channel).
	attackImg := source.Clone()
	x0w := make([]float64, srcW)
	trow := make([]float64, dstW)
	for y := 0; y < srcH; y++ {
		for c := 0; c < source.C; c++ {
			for x := 0; x < srcW; x++ {
				x0w[x] = source.At(x, y, c)
			}
			for j := 0; j < dstW; j++ {
				trow[j] = av.At(j, y, c)
			}
			sr, err := solve1D(horiz, x0w, trow, stageEps, opts)
			if err != nil {
				return nil, fmt.Errorf("attack: stage 2 row %d: %w", y, err)
			}
			res.Sweeps += sr.Sweeps
			if !sr.Converged {
				res.Converged = false
			}
			for x := 0; x < srcW; x++ {
				attackImg.Set(x, y, c, sr.X[x])
			}
		}
	}

	if !cfg.SkipQuantize {
		attackImg.Quantize8()
	}
	res.Attack = attackImg
	if err := res.measure(source, target, cfg); err != nil {
		return nil, err
	}
	return res, nil
}

// solve1D runs POCS on a single 1-D resampling constraint system: find x
// near x0 with |C·x − t|∞ ≤ eps elementwise and 0 ≤ x ≤ 255.
func solve1D(c *scaling.Coeff, x0, t []float64, eps float64, opts qpsolve.Options) (*qpsolve.Result, error) {
	prob := &qpsolve.Problem{
		N:           c.N,
		Box:         qpsolve.Box{Lo: 0, Hi: imgcore.MaxPixel},
		Constraints: make([]qpsolve.Constraint, c.M),
	}
	for i, row := range c.Rows {
		prob.Constraints[i] = qpsolve.Constraint{
			Idx:    row.Idx,
			W:      row.W,
			Target: t[i],
			Eps:    eps,
		}
	}
	return qpsolve.SolvePOCS(prob, x0, opts)
}
