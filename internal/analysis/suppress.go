package analysis

import (
	"strconv"
	"strings"
)

// ignorePrefix introduces a per-line suppression:
//
//	//declint:ignore <check> <reason>
//
// The reason is mandatory — a suppression documents *why* an invariant is
// intentionally broken, not just that it is. A suppression applies to
// findings on its own line (trailing comment) and on the line directly
// below (comment-above style).
const ignorePrefix = "//declint:ignore"

// nanOKMarker is the naninput check's audit marker; see checkNaNInput.
const nanOKMarker = "//declint:nan-ok"

// suppressions maps file -> line -> suppressed check name -> waiver reason.
type suppressions map[string]map[int]map[string]string

// collectSuppressions scans every comment in the package for declint
// directives. Malformed directives (unknown check, missing reason) are
// themselves findings, so a typo cannot silently disable enforcement.
func collectSuppressions(pkg *Package, known map[string]bool) (suppressions, []Finding) {
	sup := suppressions{}
	var bad []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Ast.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(text, ignorePrefix)
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					continue // e.g. //declint:ignored — not our directive
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad = append(bad, Finding{
						Check: "declint", Pos: pos,
						Msg: "suppression names no check: want //declint:ignore <check> <reason>",
					})
					continue
				}
				check := fields[0]
				if !known[check] {
					bad = append(bad, Finding{
						Check: "declint", Pos: pos,
						Msg: "suppression names unknown check " + strconv.Quote(check),
					})
					continue
				}
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Check: "declint", Pos: pos,
						Msg: "suppression for " + check + " has no reason: a reason is required",
					})
					continue
				}
				byLine := sup[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]string{}
					sup[pos.Filename] = byLine
				}
				reason := strings.Join(fields[1:], " ")
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if byLine[line] == nil {
						byLine[line] = map[string]string{}
					}
					byLine[line][check] = reason
				}
			}
		}
	}
	return sup, bad
}

// suppressed reports whether a finding is covered by an ignore directive,
// and with which documented reason.
func (s suppressions) suppressed(f Finding) (bool, string) {
	byLine, ok := s[f.Pos.Filename]
	if !ok {
		return false, ""
	}
	reason, ok := byLine[f.Pos.Line][f.Check]
	return ok, reason
}
