// Package scaling is a fixture: every nondeterminism source the
// determinism check covers, in one kernel package.
package scaling

import (
	"math/rand"
	"time"
)

// Jitter mixes wall-clock time and math/rand into a numeric result.
func Jitter() float64 {
	t := time.Now().UnixNano()
	return float64(t) + rand.Float64()
}

// Keys feeds map iteration order into a slice.
func Keys(m map[string]float64) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SumValues is order-independent accumulation over a map: allowed.
func SumValues(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}
