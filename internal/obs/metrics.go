package obs

import (
	"strconv"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64 metric. The zero value is
// ready to use; nil receivers and disabled recording are no-ops.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if compiledOut || c == nil || n <= 0 || !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count. Reads are always allowed, so tests and
// exposition can inspect values gathered while recording was enabled.
func (c *Counter) Value() int64 {
	if compiledOut || c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 metric (cache sizes, worker counts).
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if compiledOut || g == nil || !enabled.Load() {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) {
	if compiledOut || g == nil || !enabled.Load() {
		return
	}
	g.v.Add(n)
}

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 {
	if compiledOut || g == nil {
		return 0
	}
	return g.v.Load()
}

// latencyBoundsNs are the fixed histogram bucket upper bounds, in
// nanoseconds: a 1-2-5 ladder from 1µs to 10s. Observations above the last
// bound land in the implicit +Inf bucket. Fixed buckets keep Observe
// lock-free (one atomic add per bucket) and make exposition allocation-
// free of coordination; the range comfortably covers everything from a
// cache probe to a paper-scale experiment.
var latencyBoundsNs = [...]int64{
	1_000, 2_000, 5_000, // 1µs .. 5µs
	10_000, 20_000, 50_000, // 10µs .. 50µs
	100_000, 200_000, 500_000, // 100µs .. 500µs
	1_000_000, 2_000_000, 5_000_000, // 1ms .. 5ms
	10_000_000, 20_000_000, 50_000_000, // 10ms .. 50ms
	100_000_000, 200_000_000, 500_000_000, // 100ms .. 500ms
	1_000_000_000, 2_000_000_000, 5_000_000_000, // 1s .. 5s
	10_000_000_000, // 10s
}

// numBuckets includes the +Inf overflow bucket.
const numBuckets = len(latencyBoundsNs) + 1

// bucketLe renders bucket i's upper bound in seconds, the form Prometheus
// le labels use ("+Inf" for the overflow bucket).
func bucketLe(i int) string {
	if i >= len(latencyBoundsNs) {
		return "+Inf"
	}
	return strconv.FormatFloat(float64(latencyBoundsNs[i])/1e9, 'g', -1, 64)
}

// Histogram is a fixed-bucket latency histogram. Observe is lock-free:
// one atomic add into the bucket, plus count and sum. Quantiles are
// estimated by linear interpolation inside the winning bucket, which is
// exact enough for p50/p95/p99 reporting against the paper's
// hundreds-of-milliseconds method latencies.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
	// exemplars holds, per bucket, the most recent extreme observation's
	// trace link (nil until a traced observation lands there).
	exemplars [numBuckets]atomic.Pointer[exemplar]
}

// exemplar is the stored form of one bucket's trace link.
type exemplar struct {
	valNs   int64
	unixNs  int64
	traceID string
}

// Exemplar is the exported snapshot of one histogram bucket's trace link:
// the trace that produced the bucket's most recent extreme observation
// (OpenMetrics-style), so a latency spike in exposition resolves directly
// to a retained trace and flight-recorder event.
type Exemplar struct {
	// BucketLe is the bucket's upper bound in seconds as rendered in
	// Prometheus exposition ("0.005", "+Inf").
	BucketLe string  `json:"bucket_le"`
	ValueMs  float64 `json:"value_ms"`
	TraceID  string  `json:"trace_id"`
	UnixNs   int64   `json:"unix_ns"`
}

// observe records ns into the histogram and returns the bucket index.
func (h *Histogram) observe(ns int64) int {
	i := 0
	for i < len(latencyBoundsNs) && ns > latencyBoundsNs[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
	return i
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if compiledOut || h == nil || !enabled.Load() {
		return
	}
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.observe(ns)
}

// ObserveTraced records one duration and, when traceID is non-empty and
// the observation ties or beats its bucket's stored extreme, pins it as
// that bucket's exemplar ("most recent extreme": later observations win
// ties, so the exemplar tracks the freshest worst case).
func (h *Histogram) ObserveTraced(d time.Duration, traceID string) {
	if compiledOut || h == nil || !enabled.Load() {
		return
	}
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	i := h.observe(ns)
	if traceID == "" {
		return
	}
	if cur := h.exemplars[i].Load(); cur == nil || ns >= cur.valNs {
		h.exemplars[i].Store(&exemplar{valNs: ns, unixNs: time.Now().UnixNano(), traceID: traceID})
	}
}

// Exemplars returns the pinned exemplars, one per bucket that has any,
// in bucket order.
func (h *Histogram) Exemplars() []Exemplar {
	if compiledOut || h == nil {
		return nil
	}
	var out []Exemplar
	for i := range h.exemplars {
		e := h.exemplars[i].Load()
		if e == nil {
			continue
		}
		out = append(out, Exemplar{
			BucketLe: bucketLe(i),
			ValueMs:  float64(e.valNs) / 1e6,
			TraceID:  e.traceID,
			UnixNs:   e.unixNs,
		})
	}
	return out
}

// ObserveSince records the time elapsed since start, skipping zero starts
// (the value Clock returns while recording is disabled).
func (h *Histogram) ObserveSince(start time.Time) {
	if compiledOut || h == nil || start.IsZero() {
		return
	}
	h.Observe(time.Since(start))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if compiledOut || h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration {
	if compiledOut || h == nil {
		return 0
	}
	return time.Duration(h.sumNs.Load())
}

// Mean returns the average observation, or 0 with no observations.
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / time.Duration(n)
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the bucket containing the target rank. Returns 0 with no
// observations; observations in the +Inf bucket report the last finite
// bound (a floor, clearly marked in exposition by bucket counts).
func (h *Histogram) Quantile(q float64) time.Duration {
	if compiledOut || h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum int64
	for i := 0; i < numBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= target {
			if i >= len(latencyBoundsNs) {
				return time.Duration(latencyBoundsNs[len(latencyBoundsNs)-1])
			}
			lo := int64(0)
			if i > 0 {
				lo = latencyBoundsNs[i-1]
			}
			hi := latencyBoundsNs[i]
			frac := (target - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return time.Duration(float64(lo) + frac*float64(hi-lo))
		}
		cum += n
	}
	return time.Duration(latencyBoundsNs[len(latencyBoundsNs)-1])
}

// bucketCounts returns a snapshot of the per-bucket counts (exposition).
func (h *Histogram) bucketCounts() [numBuckets]int64 {
	var out [numBuckets]int64
	if compiledOut || h == nil {
		return out
	}
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// CacheStats bundles the four metrics every bounded cache in this
// repository reports: hits, misses, evictions and current size. NewCacheStats
// registers them on the default registry as <prefix>.hits, .misses,
// .evictions and .size.
type CacheStats struct {
	Hits, Misses, Evictions *Counter
	Size                    *Gauge
}

// NewCacheStats creates (or rebinds to) the four cache metrics under
// prefix on the default registry.
func NewCacheStats(prefix string) *CacheStats {
	return &CacheStats{
		Hits:      C(prefix + ".hits"),
		Misses:    C(prefix + ".misses"),
		Evictions: C(prefix + ".evictions"),
		Size:      G(prefix + ".size"),
	}
}

// Hit records a cache hit. Nil-safe so caches may run without stats.
func (s *CacheStats) Hit() {
	if s != nil {
		s.Hits.Inc()
	}
}

// Miss records a cache miss.
func (s *CacheStats) Miss() {
	if s != nil {
		s.Misses.Inc()
	}
}

// Evict records n evictions and the resulting size.
func (s *CacheStats) Evict(n int) {
	if s != nil {
		s.Evictions.Add(int64(n))
	}
}

// Resize records the cache's current population.
func (s *CacheStats) Resize(n int) {
	if s != nil {
		s.Size.Set(int64(n))
	}
}

// MemoStats bundles the hit/miss counters of a memoization table — a cache
// whose entries live and die with one request, so eviction and size metrics
// would be noise. The detection pipeline's per-image intermediates report
// through one of these.
type MemoStats struct {
	Hits, Misses *Counter
}

// NewMemoStats creates (or rebinds to) the two memo metrics under prefix on
// the default registry.
func NewMemoStats(prefix string) *MemoStats {
	return &MemoStats{
		Hits:   C(prefix + ".hits"),
		Misses: C(prefix + ".misses"),
	}
}

// Hit records a memo hit. Nil-safe so memo tables may run without stats.
func (s *MemoStats) Hit() {
	if s != nil {
		s.Hits.Inc()
	}
}

// Miss records a memo miss.
func (s *MemoStats) Miss() {
	if s != nil {
		s.Misses.Inc()
	}
}
