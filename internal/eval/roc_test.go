package eval

import (
	"math"
	"testing"

	"decamouflage/internal/detect"
	"decamouflage/internal/testutil"
)

func TestROCPerfectSeparation(t *testing.T) {
	benign := []float64{1, 2, 3}
	attacks := []float64{10, 11, 12}
	points, auc, err := ROC(benign, attacks, detect.Above)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-1) > 1e-12 {
		t.Errorf("AUC = %v, want 1", auc)
	}
	if !testutil.BitEqual(points[0].FPR, 0) || !testutil.BitEqual(points[0].TPR, 0) {
		t.Errorf("first point = %+v", points[0])
	}
	last := points[len(points)-1]
	if !testutil.BitEqual(last.FPR, 1) || !testutil.BitEqual(last.TPR, 1) {
		t.Errorf("last point = %+v", last)
	}
}

func TestROCBelowDirection(t *testing.T) {
	// SSIM-like: attacks score LOW.
	benign := []float64{0.9, 0.95, 0.99}
	attacks := []float64{0.1, 0.2, 0.3}
	_, auc, err := ROC(benign, attacks, detect.Below)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-1) > 1e-12 {
		t.Errorf("AUC = %v, want 1", auc)
	}
	// Same data with wrong direction is anti-separable.
	_, auc, err = ROC(benign, attacks, detect.Above)
	if err != nil {
		t.Fatal(err)
	}
	if auc > 0.01 {
		t.Errorf("wrong-direction AUC = %v, want ~0", auc)
	}
}

func TestROCRandomScoresNearHalf(t *testing.T) {
	// Identical distributions: AUC must be ~0.5.
	var benign, attacks []float64
	for i := 0; i < 500; i++ {
		v := float64((i * 37) % 101)
		if i%2 == 0 {
			benign = append(benign, v)
		} else {
			attacks = append(attacks, v)
		}
	}
	_, auc, err := ROC(benign, attacks, detect.Above)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 0.05 {
		t.Errorf("AUC = %v, want ~0.5", auc)
	}
}

func TestROCTiesHandled(t *testing.T) {
	benign := []float64{5, 5, 5, 5}
	attacks := []float64{5, 5, 5, 5}
	_, auc, err := ROC(benign, attacks, detect.Above)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 1e-12 {
		t.Errorf("all-ties AUC = %v, want exactly 0.5", auc)
	}
}

func TestROCMonotone(t *testing.T) {
	benign := []float64{1, 4, 2, 8, 3}
	attacks := []float64{6, 9, 2, 7, 5}
	points, _, err := ROC(benign, attacks, detect.Above)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].FPR < points[i-1].FPR-1e-12 || points[i].TPR < points[i-1].TPR-1e-12 {
			t.Fatalf("ROC not monotone at %d: %+v -> %+v", i, points[i-1], points[i])
		}
	}
}

func TestROCErrors(t *testing.T) {
	if _, _, err := ROC(nil, []float64{1}, detect.Above); err == nil {
		t.Error("empty benign accepted")
	}
	if _, _, err := ROC([]float64{1}, nil, detect.Above); err == nil {
		t.Error("empty attacks accepted")
	}
	if _, _, err := ROC([]float64{1}, []float64{2}, detect.Direction(0)); err == nil {
		t.Error("invalid direction accepted")
	}
}
