// Package attack implements the image-scaling attack of Xiao et al.
// (USENIX Security 2019): given a source image O and a target image T, it
// crafts an attack image A = O + Δ that is visually indistinguishable from
// O yet downsamples to (approximately) T.
//
// The attack is expressed through the scaling operator's coefficient
// matrices (scale(X) = L·X·Rᵀ): every output pixel is a known sparse
// weighted sum of source pixels, so the paper's quadratic program
//
//	min ‖Δ‖²  s.t.  ‖scale(O+Δ) − T‖∞ ≤ ε,  0 ≤ O+Δ ≤ 255
//
// becomes a sparse box-constrained feasibility problem solved per channel
// with the POCS/Kaczmarz solver in internal/qpsolve.
package attack

import (
	"errors"
	"fmt"
	"math"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/metrics"
	"decamouflage/internal/qpsolve"
	"decamouflage/internal/scaling"
)

// Solver selects the optimization backend.
type Solver int

// Available solvers.
const (
	// POCS is the cyclic-projection solver (fast, default).
	POCS Solver = iota + 1
	// ProjGrad is the penalized projected-gradient solver (slow,
	// independent cross-check).
	ProjGrad
)

// Config parameterizes the attack.
type Config struct {
	// Scaler defines the scaling function under attack (algorithm and
	// geometry). Required.
	Scaler *scaling.Scaler
	// Eps is the allowed L∞ deviation of the downscaled attack image from
	// the target, in 8-bit pixel units. Default 1.
	Eps float64
	// Solver selects the optimization backend. Default POCS.
	Solver Solver
	// MaxSweeps bounds solver iterations. Default 200 for POCS, 20000 for
	// ProjGrad.
	MaxSweeps int
	// SkipQuantize leaves the attack image in floating point. By default
	// the result is rounded to 8-bit levels — what a real attacker must
	// ship — with the quantization error budgeted inside Eps.
	SkipQuantize bool
}

// Result describes a crafted attack image and its quality.
type Result struct {
	// Attack is the crafted image A = O + Δ, same geometry as the source.
	Attack *imgcore.Image
	// Sweeps is the total solver sweeps across channels.
	Sweeps int
	// Converged reports whether every channel's solve met its tolerance.
	Converged bool
	// MaxViolation is the worst L∞ deviation of scale(A) from T across
	// channels, measured on the final (possibly quantized) attack image.
	MaxViolation float64
	// PerturbationL2 is ‖Δ‖₂, the attack's objective value.
	PerturbationL2 float64
	// PerturbationMSE is MSE(A, O) — the visual damage to the source.
	PerturbationMSE float64
	// DownscaledMSE is MSE(scale(A), T) — how exactly the target is hit.
	DownscaledMSE float64
}

// Common errors.
var (
	ErrNilScaler     = errors.New("attack: Config.Scaler is required")
	ErrShapeMismatch = errors.New("attack: image geometry does not match scaler")
	ErrChannels      = errors.New("attack: source and target must have the same channel count")
)

func (c Config) withDefaults() Config {
	//declint:ignore floateq zero is the unset-option sentinel, set only by literal omission
	if c.Eps == 0 {
		c.Eps = 1
	}
	if c.Solver == 0 {
		c.Solver = POCS
	}
	if c.MaxSweeps == 0 {
		if c.Solver == ProjGrad {
			c.MaxSweeps = 20000
		} else {
			c.MaxSweeps = 200
		}
	}
	return c
}

func (c Config) validate() error {
	if c.Scaler == nil {
		return ErrNilScaler
	}
	if c.Eps < 0 {
		return fmt.Errorf("attack: negative eps %v", c.Eps)
	}
	if c.Solver != POCS && c.Solver != ProjGrad {
		return fmt.Errorf("attack: unknown solver %d", int(c.Solver))
	}
	return nil
}

// Craft builds the attack image embedding target into source under cfg.
// source must match the scaler's source geometry and target its destination
// geometry.
func Craft(source, target *imgcore.Image, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := source.Validate(); err != nil {
		return nil, fmt.Errorf("attack: source: %w", err)
	}
	if err := target.Validate(); err != nil {
		return nil, fmt.Errorf("attack: target: %w", err)
	}
	srcW, srcH := cfg.Scaler.SrcSize()
	dstW, dstH := cfg.Scaler.DstSize()
	if source.W != srcW || source.H != srcH {
		return nil, fmt.Errorf("%w: source %v, scaler wants %dx%d", ErrShapeMismatch, source, srcW, srcH)
	}
	if target.W != dstW || target.H != dstH {
		return nil, fmt.Errorf("%w: target %v, scaler wants %dx%d", ErrShapeMismatch, target, dstW, dstH)
	}
	if source.C != target.C {
		return nil, fmt.Errorf("%w: %d vs %d", ErrChannels, source.C, target.C)
	}

	// Budget quantization error inside eps: rounding the attack image
	// moves each output by at most 0.5 (row weights sum to 1 in absolute
	// value for non-negative kernels; slightly more for cubic/lanczos, so
	// keep a conservative 0.6 margin when possible).
	solveEps := cfg.Eps
	if !cfg.SkipQuantize {
		margin := 0.6
		if solveEps > margin {
			solveEps -= margin
		} else {
			solveEps = solveEps / 2
		}
	}

	vert := cfg.Scaler.Vertical()
	horiz := cfg.Scaler.Horizontal()

	attackImg := source.Clone()
	res := &Result{}
	allConverged := true

	for c := 0; c < source.C; c++ {
		prob := buildProblem(vert, horiz, target, c, solveEps, srcW, srcH)
		x0 := channelVector(source, c)
		var (
			sr  *qpsolve.Result
			err error
		)
		opts := qpsolve.Options{MaxSweeps: cfg.MaxSweeps, Tol: 0.05}
		switch cfg.Solver {
		case ProjGrad:
			sr, err = qpsolve.SolveProjGrad(prob, x0, opts)
		default:
			sr, err = qpsolve.SolvePOCS(prob, x0, opts)
		}
		if err != nil {
			return nil, fmt.Errorf("attack: channel %d: %w", c, err)
		}
		res.Sweeps += sr.Sweeps
		if !sr.Converged {
			allConverged = false
		}
		writeChannel(attackImg, c, sr.X)
	}
	if !cfg.SkipQuantize {
		attackImg.Quantize8()
	}
	res.Attack = attackImg
	res.Converged = allConverged

	if err := res.measure(source, target, cfg); err != nil {
		return nil, err
	}
	return res, nil
}

// measure fills the quality fields of the result from the final image.
func (r *Result) measure(source, target *imgcore.Image, cfg Config) error {
	var l2 float64
	for i := range source.Pix {
		d := r.Attack.Pix[i] - source.Pix[i]
		l2 += d * d
	}
	r.PerturbationL2 = math.Sqrt(l2)
	pm, err := metrics.MSE(r.Attack, source)
	if err != nil {
		return fmt.Errorf("attack: perturbation MSE: %w", err)
	}
	r.PerturbationMSE = pm

	down, err := cfg.Scaler.Resize(r.Attack)
	if err != nil {
		return fmt.Errorf("attack: verify downscale: %w", err)
	}
	dm, err := metrics.MSE(down, target)
	if err != nil {
		return fmt.Errorf("attack: downscaled MSE: %w", err)
	}
	r.DownscaledMSE = dm
	var linf float64
	for i := range down.Pix {
		if d := math.Abs(down.Pix[i] - target.Pix[i]); d > linf {
			linf = d
		}
	}
	r.MaxViolation = linf
	return nil
}

// buildProblem assembles the sparse constraint system for one channel.
func buildProblem(vert, horiz *scaling.Coeff, target *imgcore.Image, ch int, eps float64, srcW, srcH int) *qpsolve.Problem {
	dstW, dstH := horiz.M, vert.M
	prob := &qpsolve.Problem{
		N:           srcW * srcH,
		Box:         qpsolve.Box{Lo: 0, Hi: imgcore.MaxPixel},
		Constraints: make([]qpsolve.Constraint, 0, dstW*dstH),
	}
	for i := 0; i < dstH; i++ {
		vr := vert.Rows[i]
		for j := 0; j < dstW; j++ {
			hr := horiz.Rows[j]
			n := len(vr.Idx) * len(hr.Idx)
			con := qpsolve.Constraint{
				Idx:    make([]int, 0, n),
				W:      make([]float64, 0, n),
				Target: target.At(j, i, ch),
				Eps:    eps,
			}
			for a, sy := range vr.Idx {
				base := sy * srcW
				wv := vr.W[a]
				for b, sx := range hr.Idx {
					con.Idx = append(con.Idx, base+sx)
					con.W = append(con.W, wv*hr.W[b])
				}
			}
			prob.Constraints = append(prob.Constraints, con)
		}
	}
	return prob
}

func channelVector(img *imgcore.Image, c int) []float64 {
	out := make([]float64, img.W*img.H)
	for i := 0; i < img.W*img.H; i++ {
		out[i] = img.Pix[i*img.C+c]
	}
	return out
}

func writeChannel(img *imgcore.Image, c int, x []float64) {
	for i := 0; i < img.W*img.H; i++ {
		img.Pix[i*img.C+c] = x[i]
	}
}

// SuccessReport quantifies whether an image still functions as an attack:
// how close its downscale lands to the intended target. It backs the
// substitute for the paper's commercial-classifier check (Table 9): an
// attack that escapes detection but whose downscale has drifted from the
// target has lost its purpose.
type SuccessReport struct {
	// LInf is the max absolute deviation of scale(A) from T.
	LInf float64
	// MSE is MSE(scale(A), T).
	MSE float64
	// SSIM is SSIM(scale(A), T).
	SSIM float64
	// Effective reports whether the attack still realizes its target under
	// the oracle's criteria (SSIM ≥ 0.9 or LInf ≤ 8).
	Effective bool
}

// Success evaluates the attack-effectiveness oracle for image a and
// intended target, using the given scaler.
func Success(a, target *imgcore.Image, scaler *scaling.Scaler) (*SuccessReport, error) {
	if scaler == nil {
		return nil, ErrNilScaler
	}
	down, err := scaler.Resize(a)
	if err != nil {
		return nil, fmt.Errorf("attack: success oracle downscale: %w", err)
	}
	mse, err := metrics.MSE(down, target)
	if err != nil {
		return nil, fmt.Errorf("attack: success oracle MSE: %w", err)
	}
	ssim, err := metrics.SSIM(down, target)
	if err != nil {
		return nil, fmt.Errorf("attack: success oracle SSIM: %w", err)
	}
	var linf float64
	for i := range down.Pix {
		if d := math.Abs(down.Pix[i] - target.Pix[i]); d > linf {
			linf = d
		}
	}
	return &SuccessReport{
		LInf:      linf,
		MSE:       mse,
		SSIM:      ssim,
		Effective: ssim >= 0.9 || linf <= 8,
	}, nil
}
