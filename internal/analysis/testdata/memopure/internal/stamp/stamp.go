// Fixture helper outside the kernel set: its clock read is what the stage
// closures reach transitively.
package stamp

import (
	"strconv"
	"time"
)

// ID tags an event with the current nanosecond clock.
func ID() string {
	return strconv.FormatInt(now().UnixNano(), 10)
}

func now() time.Time { return time.Now() }
