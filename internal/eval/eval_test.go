package eval

import (
	"context"
	"errors"
	"math"
	"testing"

	"decamouflage/internal/dataset"
	"decamouflage/internal/detect"
	"decamouflage/internal/imgcore"
	"decamouflage/internal/scaling"
	"decamouflage/internal/steg"
	"decamouflage/internal/testutil"
)

func TestConfusionStats(t *testing.T) {
	var c ConfusionStats
	// 8 benign (1 flagged), 8 attacks (7 flagged).
	for i := 0; i < 8; i++ {
		c.Record(false, i == 0)
		c.Record(true, i != 0)
	}
	if c.Total() != 16 {
		t.Fatalf("Total = %d", c.Total())
	}
	if got := c.Accuracy(); math.Abs(got-14.0/16) > 1e-12 {
		t.Errorf("Accuracy = %v", got)
	}
	if got := c.Precision(); math.Abs(got-7.0/8) > 1e-12 {
		t.Errorf("Precision = %v", got)
	}
	if got := c.Recall(); math.Abs(got-7.0/8) > 1e-12 {
		t.Errorf("Recall = %v", got)
	}
	if got := c.FAR(); math.Abs(got-1.0/8) > 1e-12 {
		t.Errorf("FAR = %v", got)
	}
	if got := c.FRR(); math.Abs(got-1.0/8) > 1e-12 {
		t.Errorf("FRR = %v", got)
	}
	if c.String() == "" {
		t.Error("empty String")
	}
	var sum ConfusionStats
	sum.Add(c)
	sum.Add(c)
	if sum.Total() != 32 {
		t.Errorf("Add total = %d", sum.Total())
	}
}

func TestConfusionStatsEmptyDenominators(t *testing.T) {
	var c ConfusionStats
	if !testutil.BitEqual(c.Accuracy(), 0) || !testutil.BitEqual(c.Precision(), 0) || !testutil.BitEqual(c.Recall(), 0) || !testutil.BitEqual(c.FAR(), 0) || !testutil.BitEqual(c.FRR(), 0) {
		t.Error("empty stats should be all zero")
	}
}

func TestCorpusSpecValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := BuildCorpus(ctx, CorpusSpec{}); err == nil {
		t.Error("zero spec accepted")
	}
	if _, err := BuildCorpus(ctx, CorpusSpec{Corpus: dataset.CaltechLike, N: 1}); err == nil {
		t.Error("missing geometry accepted")
	}
	if _, err := BuildCorpus(ctx, CorpusSpec{N: 1, SrcW: 32, SrcH: 32, DstW: 8, DstH: 8}); err == nil {
		t.Error("missing corpus accepted")
	}
}

func smallSpec(n int) CorpusSpec {
	return CorpusSpec{
		Corpus: dataset.CaltechLike,
		N:      n,
		SrcW:   64, SrcH: 64, DstW: 16, DstH: 16,
		Seed: 42,
	}
}

func TestBuildCorpus(t *testing.T) {
	ctx := context.Background()
	c, err := BuildCorpus(ctx, smallSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Benign) != 4 || len(c.Attacks) != 4 || len(c.Targets) != 4 {
		t.Fatalf("corpus sizes %d/%d/%d", len(c.Benign), len(c.Attacks), len(c.Targets))
	}
	for i := range c.Benign {
		if c.Benign[i] == nil || c.Attacks[i] == nil || c.Targets[i] == nil {
			t.Fatalf("nil entry at %d", i)
		}
		if !c.Benign[i].SameShape(c.Attacks[i]) {
			t.Fatalf("attack %d geometry mismatch", i)
		}
	}
	// Attacks actually work: downscale lands near target.
	down, err := c.Scaler.Resize(c.Attacks[0])
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := range down.Pix {
		if d := math.Abs(down.Pix[i] - c.Targets[0].Pix[i]); d > worst {
			worst = d
		}
	}
	if worst > 3 {
		t.Errorf("attack L∞ from target = %v", worst)
	}
}

func TestBuildCorpusDeterministic(t *testing.T) {
	ctx := context.Background()
	a, err := BuildCorpus(ctx, smallSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildCorpus(ctx, smallSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Attacks[1].Pix {
		if !testutil.BitEqual(a.Attacks[1].Pix[i], b.Attacks[1].Pix[i]) {
			t.Fatal("corpus not deterministic")
		}
	}
}

func TestBuildCorpusCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildCorpus(ctx, smallSpec(64)); !errors.Is(err, context.Canceled) {
		t.Errorf("cancellation not honoured: %v", err)
	}
}

func TestBuildCorpusCrossKernel(t *testing.T) {
	ctx := context.Background()
	spec := smallSpec(2)
	spec.Algorithm = scaling.Bilinear
	spec.AttackAlgorithm = scaling.Nearest
	c, err := BuildCorpus(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if c.Scaler.Options().Algorithm != scaling.Bilinear {
		t.Errorf("defender scaler algorithm = %v", c.Scaler.Options().Algorithm)
	}
}

func TestScorePairAndEvaluateThreshold(t *testing.T) {
	ctx := context.Background()
	c, err := BuildCorpus(ctx, smallSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := detect.NewScalingScorer(c.Scaler, detect.MSE)
	if err != nil {
		t.Fatal(err)
	}
	benign, attacks, err := ScorePair(ctx, sc, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(benign) != 4 || len(attacks) != 4 {
		t.Fatalf("score lengths %d/%d", len(benign), len(attacks))
	}
	// Attacks must score far higher (the detection premise).
	for i := range benign {
		if attacks[i] <= benign[i] {
			t.Errorf("attack %d MSE %v <= benign %v", i, attacks[i], benign[i])
		}
	}
	wb, err := detect.CalibrateWhiteBox(benign, attacks)
	if err != nil {
		t.Fatal(err)
	}
	cs := EvaluateThreshold(wb.Threshold, benign, attacks)
	if cs.Accuracy() < 0.99 {
		t.Errorf("threshold accuracy = %v", cs.Accuracy())
	}
	if _, _, err := ScorePair(ctx, nil, c); err == nil {
		t.Error("nil scorer accepted")
	}
}

func TestEvaluateDetectorAndEnsemble(t *testing.T) {
	ctx := context.Background()
	c, err := BuildCorpus(ctx, smallSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := detect.NewScalingScorer(c.Scaler, detect.MSE)
	if err != nil {
		t.Fatal(err)
	}
	benign, attacks, err := ScorePair(ctx, sc, c)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := detect.CalibrateWhiteBox(benign, attacks)
	if err != nil {
		t.Fatal(err)
	}
	d, err := detect.NewDetector(sc, wb.Threshold)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := EvaluateDetector(ctx, d, c)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Total() != 6 {
		t.Fatalf("detector total = %d", cs.Total())
	}
	if cs.Accuracy() < 0.8 {
		t.Errorf("detector accuracy = %v", cs.Accuracy())
	}
	if _, err := EvaluateDetector(ctx, nil, c); err == nil {
		t.Error("nil detector accepted")
	}

	// Ensemble path.
	fsc, err := detect.NewFilteringScorer(2, detect.SSIM)
	if err != nil {
		t.Fatal(err)
	}
	fb, fa, err := ScorePair(ctx, fsc, c)
	if err != nil {
		t.Fatal(err)
	}
	fwb, err := detect.CalibrateWhiteBox(fb, fa)
	if err != nil {
		t.Fatal(err)
	}
	e, err := detect.NewDefaultEnsemble(detect.DefaultConfig{
		Scaler:             c.Scaler,
		ScalingThreshold:   wb.Threshold,
		FilteringThreshold: fwb.Threshold,
		StegOptions:        steg.Options{},
	})
	if err != nil {
		t.Fatal(err)
	}
	es, err := EvaluateEnsemble(ctx, e, c)
	if err != nil {
		t.Fatal(err)
	}
	if es.Total() != 6 {
		t.Fatalf("ensemble total = %d", es.Total())
	}
	if es.Accuracy() < 0.8 {
		t.Errorf("ensemble accuracy = %v", es.Accuracy())
	}
	if _, err := EvaluateEnsemble(ctx, nil, c); err == nil {
		t.Error("nil ensemble accepted")
	}
}

func TestMeasureRuntime(t *testing.T) {
	g, err := dataset.NewGenerator(dataset.Config{Corpus: dataset.CaltechLike, W: 32, H: 32, C: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	imgs := g.Batch(3)
	rs, err := MeasureRuntime(detect.NewStegScorer(steg.Options{}), imgs)
	if err != nil {
		t.Fatal(err)
	}
	if rs.N != 3 || rs.MeanMillis < 0 {
		t.Errorf("runtime stats %+v", rs)
	}
	if _, err := MeasureRuntime(nil, imgs); err == nil {
		t.Error("nil scorer accepted")
	}
	if _, err := MeasureRuntime(detect.NewStegScorer(steg.Options{}), nil); err == nil {
		t.Error("empty image set accepted")
	}
	imgs = append(imgs, &imgcore.Image{})
	if _, err := MeasureRuntime(detect.NewStegScorer(steg.Options{}), imgs); err == nil {
		t.Error("invalid image accepted")
	}
}

func TestForEachParallelPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	err := forEachParallel(context.Background(), 50, func(i int) error {
		if i == 17 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestForEachParallelZeroItems(t *testing.T) {
	if err := forEachParallel(context.Background(), 0, func(int) error { return nil }); err != nil {
		t.Errorf("n=0 returned %v", err)
	}
}
