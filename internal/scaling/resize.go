package scaling

import (
	"context"
	"fmt"
	"sync"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/parallel"
)

// Scaler resizes images to a fixed destination geometry using a fixed
// algorithm; it caches the coefficient matrices so repeated resizes of
// same-sized inputs cost only the matrix application. A Scaler also exposes
// its coefficient matrices for use by the attack and by analysis tooling.
//
// Scaler is safe for concurrent use after construction; Resize does not
// mutate internal state for inputs matching the prepared source geometry
// and rebuilds (without caching) for other sizes.
type Scaler struct {
	opts  Options
	dstW  int
	dstH  int
	srcW  int
	srcH  int
	horiz *Coeff // w -> dstW
	vert  *Coeff // h -> dstH
}

// NewScaler prepares a scaler from (srcW×srcH) to (dstW×dstH). The
// coefficient matrices come from the shared cache (CoeffFor), so scalers
// of the same geometry share them.
func NewScaler(srcW, srcH, dstW, dstH int, opts Options) (*Scaler, error) {
	if srcW <= 0 || srcH <= 0 || dstW <= 0 || dstH <= 0 {
		return nil, fmt.Errorf("%w: src %dx%d dst %dx%d", ErrBadSize, srcW, srcH, dstW, dstH)
	}
	h, err := CoeffFor(srcW, dstW, opts)
	if err != nil {
		return nil, err
	}
	v, err := CoeffFor(srcH, dstH, opts)
	if err != nil {
		return nil, err
	}
	return &Scaler{opts: opts, dstW: dstW, dstH: dstH, srcW: srcW, srcH: srcH, horiz: h, vert: v}, nil
}

// Options returns the options the scaler was built with.
func (s *Scaler) Options() Options { return s.opts }

// DstSize returns the destination geometry.
func (s *Scaler) DstSize() (w, h int) { return s.dstW, s.dstH }

// SrcSize returns the prepared source geometry.
func (s *Scaler) SrcSize() (w, h int) { return s.srcW, s.srcH }

// Horizontal returns the prepared width-direction coefficient matrix
// (the R in scale(X) = L·X·Rᵀ).
func (s *Scaler) Horizontal() *Coeff { return s.horiz }

// Vertical returns the prepared height-direction coefficient matrix
// (the L in scale(X) = L·X·Rᵀ).
func (s *Scaler) Vertical() *Coeff { return s.vert }

// Derive returns a scaler with the same destination geometry and options
// prepared for a different source geometry, sharing coefficient matrices
// through CoeffFor. When the source geometry already matches, the receiver
// itself is returned (scalers are immutable after construction).
func (s *Scaler) Derive(srcW, srcH int) (*Scaler, error) {
	if srcW == s.srcW && srcH == s.srcH {
		return s, nil
	}
	return NewScaler(srcW, srcH, s.dstW, s.dstH, s.opts)
}

// Resize resamples img to the scaler's destination geometry. Inputs whose
// size differs from the prepared source geometry are handled through the
// shared coefficient cache, so even the fallback path pays the build cost
// only once per geometry.
func (s *Scaler) Resize(img *imgcore.Image) (*imgcore.Image, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	horiz, vert := s.horiz, s.vert
	if img.W != s.srcW {
		var err error
		horiz, err = CoeffFor(img.W, s.dstW, s.opts)
		if err != nil {
			return nil, err
		}
	}
	if img.H != s.srcH {
		var err error
		vert, err = CoeffFor(img.H, s.dstH, s.opts)
		if err != nil {
			return nil, err
		}
	}
	return resizeWith(context.Background(), img, horiz, vert)
}

// Resize resamples img to (dstW×dstH) with the given options, drawing the
// coefficient matrices from the shared cache (CoeffFor); repeated resizes
// of the same geometry cost only the matrix application.
func Resize(img *imgcore.Image, dstW, dstH int, opts Options) (*imgcore.Image, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	horiz, err := CoeffFor(img.W, dstW, opts)
	if err != nil {
		return nil, err
	}
	vert, err := CoeffFor(img.H, dstH, opts)
	if err != nil {
		return nil, err
	}
	return resizeWith(context.Background(), img, horiz, vert)
}

// minResizeWork is the per-chunk grain (in output taps) below which a
// resize pass stays on the calling goroutine.
const minResizeWork = 1 << 14

// midPool recycles the intermediate (dstH × srcW) pass buffers of the
// separable resize so steady-state resizes allocate only their output. The
// vertical pass fully overwrites the buffer (Coeff.Apply assigns, and every
// (x, c) column covers all dstH rows), so stale contents never leak.
var midPool = sync.Pool{New: func() any { return new([]float64) }}

// ResizeInto resamples img into dst, which must already have the scaler's
// destination geometry and img's channel count. It is the allocation-lean
// variant of Resize for callers that recycle output buffers; the pixels
// written are bit-identical to Resize's.
func (s *Scaler) ResizeInto(ctx context.Context, img, dst *imgcore.Image, popts ...parallel.Option) error {
	if err := img.Validate(); err != nil {
		return err
	}
	if err := dst.Validate(); err != nil {
		return err
	}
	if dst.W != s.dstW || dst.H != s.dstH || dst.C != img.C {
		return fmt.Errorf("%w: dst %dx%dx%d, want %dx%dx%d", ErrBadSize,
			dst.W, dst.H, dst.C, s.dstW, s.dstH, img.C)
	}
	horiz, vert := s.horiz, s.vert
	if img.W != s.srcW {
		var err error
		horiz, err = CoeffFor(img.W, s.dstW, s.opts)
		if err != nil {
			return err
		}
	}
	if img.H != s.srcH {
		var err error
		vert, err = CoeffFor(img.H, s.dstH, s.opts)
		if err != nil {
			return err
		}
	}
	return resizeInto(ctx, img, dst, horiz, vert, popts...)
}

// resizeWith applies the separable operator into a freshly allocated image.
func resizeWith(ctx context.Context, img *imgcore.Image, horiz, vert *Coeff, popts ...parallel.Option) (*imgcore.Image, error) {
	out, err := imgcore.New(horiz.M, vert.M, img.C)
	if err != nil {
		return nil, err
	}
	if err := resizeInto(ctx, img, out, horiz, vert, popts...); err != nil {
		return nil, err
	}
	return out, nil
}

// resizeInto applies the separable operator: vertical pass then horizontal.
// Both passes run in parallel bands over disjoint output columns/rows, so
// the result is bit-identical to the serial order for any worker count. out
// must be (horiz.M × vert.M × img.C); its prior contents are ignored.
func resizeInto(ctx context.Context, img, out *imgcore.Image, horiz, vert *Coeff, popts ...parallel.Option) error {
	dstW, dstH := horiz.M, vert.M
	// Vertical pass: (img.H × img.W) -> (dstH × img.W), chunked over x,
	// through a pooled intermediate.
	midN := img.W * dstH * img.C
	mp := midPool.Get().(*[]float64)
	defer midPool.Put(mp)
	if cap(*mp) < midN {
		*mp = make([]float64, midN)
	}
	mid := &imgcore.Image{W: img.W, H: dstH, C: img.C, Pix: (*mp)[:midN]}
	rowStride := img.W * img.C
	vertCost := dstH * img.C * vert.MaxTaps()
	vertOpts := append([]parallel.Option{
		parallel.Grain(parallel.GrainForWidth(vertCost, minResizeWork)),
	}, popts...)
	err := parallel.For(ctx, img.W, func(xLo, xHi int) error {
		for x := xLo; x < xHi; x++ {
			for c := 0; c < img.C; c++ {
				off := x*img.C + c
				vert.Apply(img.Pix[off:], rowStride, mid.Pix[off:], rowStride)
			}
		}
		return nil
	}, vertOpts...)
	if err != nil {
		return err
	}
	// Horizontal pass: (dstH × img.W) -> (dstH × dstW), chunked over y.
	horizCost := dstW * img.C * horiz.MaxTaps()
	horizOpts := append([]parallel.Option{
		parallel.Grain(parallel.GrainForWidth(horizCost, minResizeWork)),
	}, popts...)
	return parallel.For(ctx, dstH, func(yLo, yHi int) error {
		for y := yLo; y < yHi; y++ {
			for c := 0; c < img.C; c++ {
				srcOff := y*rowStride + c
				dstOff := y*dstW*img.C + c
				horiz.Apply(mid.Pix[srcOff:], img.C, out.Pix[dstOff:], img.C)
			}
		}
		return nil
	}, horizOpts...)
}

// DownUp performs the paper's scaling-detection transform: downscale img to
// (dstW×dstH) and upscale the result back to img's own size, both with the
// same options. It returns both the downscaled and the round-tripped image.
func DownUp(img *imgcore.Image, dstW, dstH int, opts Options) (down, up *imgcore.Image, err error) {
	down, err = Resize(img, dstW, dstH, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("scaling: downscale: %w", err)
	}
	up, err = Resize(down, img.W, img.H, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("scaling: upscale: %w", err)
	}
	return down, up, nil
}
