// Package report is a fixture: every shape of blank-discarded error.
package report

import (
	"errors"
	"fmt"
	"strconv"
)

func mayFail() error { return errors.New("boom") }

func twoVals() (int, error) { return 0, errors.New("boom") }

// Drop discards errors three ways; the first two are flagged, the
// annotated one is not.
func Drop() string {
	_ = mayFail()
	_, _ = twoVals()
	//declint:ignore errdrop sink can never fail on a fresh builder
	_ = mayFail()
	s := fmt.Sprintf("%d", 42) // no error result: not errdrop's business
	return s + strconv.Itoa(7)
}
