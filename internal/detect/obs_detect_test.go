package detect

import (
	"context"
	"strings"
	"testing"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/obs"
	"decamouflage/internal/scaling"
	"decamouflage/internal/testutil"
)

func obsTestImage(t testing.TB, w, h int) *imgcore.Image {
	t.Helper()
	img, err := imgcore.New(w, h, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range img.Pix {
		img.Pix[i] = float64((i*37)%256) * 0.5
	}
	return img
}

func obsTestEnsemble(t testing.TB) *Ensemble {
	t.Helper()
	scaler, err := scaling.NewScaler(32, 32, 8, 8, scaling.Options{Algorithm: scaling.Bilinear})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewDefaultEnsemble(DefaultConfig{
		Scaler:             scaler,
		ScalingThreshold:   Threshold{Value: 100, Direction: Above},
		FilteringThreshold: Threshold{Value: 0.5, Direction: Below},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestEnsembleDetectTrace pins the span timeline a traced ensemble call
// produces: ensemble.detect at the root, one child per method carrying
// score and decision attrs, and the scorers' stage spans nested below.
func TestEnsembleDetectTrace(t *testing.T) {
	testutil.VerifyNoLeaks(t) // the traced pipeline's fan-outs must all join
	ctx, tr := obs.WithTrace(context.Background(), "classify")
	if tr == nil {
		t.Skip("observability compiled out (noobs)")
	}
	e := obsTestEnsemble(t)
	if _, err := e.Detect(ctx, obsTestImage(t, 32, 32)); err != nil {
		t.Fatal(err)
	}
	tr.End()

	var sb strings.Builder
	if err := tr.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"ensemble.detect",
		"scaling/MSE", "filtering/SSIM", "steganalysis/CSP",
		"downscale", "upscale", "minfilter", "csp",
		"score=", "attack=", "votes=",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}

	kids := tr.Root().Children()
	if len(kids) != 1 || kids[0].Name() != "ensemble.detect" {
		t.Fatalf("root children = %v, want [ensemble.detect]", kids)
	}
	if got := len(kids[0].Children()); got != 3 {
		t.Fatalf("ensemble span has %d children, want 3 method spans", got)
	}
}

// TestDetectMetrics pins the aggregate counters and histograms one
// ensemble call records: per-method score latency, verdict tallies, and
// the ensemble outcome counters.
func TestDetectMetrics(t *testing.T) {
	obs.Enable()
	t.Cleanup(obs.Disable)
	if !obs.Enabled() {
		t.Skip("observability compiled out (noobs)")
	}
	e := obsTestEnsemble(t)

	images0 := obs.C("detect.ensemble.images").Value()
	scoreN0 := obs.H("detect.score.scaling/MSE.seconds").Count()
	ensN0 := obs.H("detect.ensemble.seconds").Count()
	stageN0 := obs.H("detect.pipeline.downscale.seconds").Count()
	memoMiss0 := obs.C("detect.pipeline.memo.misses").Value()
	verdict0 := obs.C("detect.verdict.scaling/MSE.attack").Value() +
		obs.C("detect.verdict.scaling/MSE.benign").Value()

	v, err := e.Detect(context.Background(), obsTestImage(t, 32, 32))
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Verdicts) != 3 {
		t.Fatalf("got %d verdicts", len(v.Verdicts))
	}

	if got := obs.C("detect.ensemble.images").Value() - images0; got != 1 {
		t.Errorf("ensemble images delta = %d, want 1", got)
	}
	if got := obs.H("detect.score.scaling/MSE.seconds").Count() - scoreN0; got != 1 {
		t.Errorf("scaling score histogram delta = %d, want 1", got)
	}
	if got := obs.H("detect.ensemble.seconds").Count() - ensN0; got != 1 {
		t.Errorf("ensemble histogram delta = %d, want 1", got)
	}
	if got := obs.H("detect.pipeline.downscale.seconds").Count() - stageN0; got != 1 {
		t.Errorf("downscale stage histogram delta = %d, want 1", got)
	}
	if got := obs.C("detect.pipeline.memo.misses").Value() - memoMiss0; got <= 0 {
		t.Errorf("pipeline memo miss delta = %d, want > 0", got)
	}
	got := obs.C("detect.verdict.scaling/MSE.attack").Value() +
		obs.C("detect.verdict.scaling/MSE.benign").Value()
	if got-verdict0 != 1 {
		t.Errorf("scaling verdict tally delta = %d, want 1", got-verdict0)
	}
}

// TestPlainScorerStillWorks pins the ContextScorer fallback: a Detector
// over a Scorer without ScoreCtx must keep detecting, traced or not.
func TestPlainScorerStillWorks(t *testing.T) {
	d, err := NewDetector(&stubScorer{name: "stub/metric", score: 5}, Threshold{Value: 1, Direction: Above})
	if err != nil {
		t.Fatal(err)
	}
	ctx, tr := obs.WithTrace(context.Background(), "root")
	v, err := d.DetectCtx(ctx, obsTestImage(t, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Attack || v.Method != "stub/metric" {
		t.Fatalf("verdict = %+v", v)
	}
	tr.End()
}

// TestSystemConfigObsRoundTrip pins that observability settings survive
// the SystemConfig JSON round trip.
func TestSystemConfigObsRoundTrip(t *testing.T) {
	cfg := &SystemConfig{
		DstW: 32, DstH: 32, Algorithm: "bilinear",
		Thresholds: map[string]Threshold{
			"scaling/MSE": {Value: 100, Direction: Above},
		},
		Obs: &obs.Settings{
			Metrics:            true,
			MetricsOut:         "metrics.json",
			MetricsFormat:      "json",
			DebugAddr:          "localhost:6060",
			CPUProfile:         "cpu.out",
			MemProfile:         "mem.out",
			EventsOut:          "events.ndjson",
			EventBuffer:        2048,
			TraceKeep:          128,
			TraceOut:           "traces.ndjson",
			TraceSample:        0.25,
			Watchdog:           true,
			WatchdogIntervalMs: 500,
		},
	}
	data, err := MarshalSystemConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSystemConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Obs == nil || *back.Obs != *cfg.Obs {
		t.Fatalf("Obs round trip: got %+v, want %+v", back.Obs, cfg.Obs)
	}
	// A config without obs settings must keep omitting the key.
	cfg.Obs = nil
	data, err = MarshalSystemConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"obs"`) {
		t.Fatalf("nil Obs should be omitted from JSON:\n%s", data)
	}
}
