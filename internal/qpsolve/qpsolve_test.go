package qpsolve

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"decamouflage/internal/testutil"
)

func TestProblemValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Problem
		wantErr bool
	}{
		{"ok", Problem{N: 3, Box: Box{0, 255}, Constraints: []Constraint{{Idx: []int{0, 1}, W: []float64{0.5, 0.5}, Target: 10, Eps: 1}}}, false},
		{"zero n", Problem{N: 0, Box: Box{0, 1}}, true},
		{"empty box", Problem{N: 2, Box: Box{5, 1}}, true},
		{"empty constraint", Problem{N: 2, Box: Box{0, 1}, Constraints: []Constraint{{}}}, true},
		{"len mismatch", Problem{N: 2, Box: Box{0, 1}, Constraints: []Constraint{{Idx: []int{0}, W: []float64{1, 2}}}}, true},
		{"bad index", Problem{N: 2, Box: Box{0, 1}, Constraints: []Constraint{{Idx: []int{5}, W: []float64{1}}}}, true},
		{"neg eps", Problem{N: 2, Box: Box{0, 1}, Constraints: []Constraint{{Idx: []int{0}, W: []float64{1}, Eps: -1}}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestSolvePOCSSingleConstraint(t *testing.T) {
	p := &Problem{
		N:   2,
		Box: Box{0, 255},
		Constraints: []Constraint{
			{Idx: []int{0, 1}, W: []float64{0.5, 0.5}, Target: 100, Eps: 0.5},
		},
	}
	res, err := SolvePOCS(p, []float64{0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	s := 0.5*res.X[0] + 0.5*res.X[1]
	if math.Abs(s-100) > 0.5+1e-6 {
		t.Errorf("constraint value = %v", s)
	}
	// Minimum-norm: both variables move equally.
	if math.Abs(res.X[0]-res.X[1]) > 1e-9 {
		t.Errorf("projection not minimum-norm: %v", res.X)
	}
}

func TestSolvePOCSRespectsBox(t *testing.T) {
	p := &Problem{
		N:   1,
		Box: Box{0, 255},
		Constraints: []Constraint{
			{Idx: []int{0}, W: []float64{1}, Target: 400, Eps: 0}, // infeasible
		},
	}
	res, err := SolvePOCS(p, []float64{10}, Options{MaxSweeps: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("converged on infeasible problem")
	}
	if !testutil.BitEqual(res.X[0], 255) {
		t.Errorf("x = %v, want clamped to 255", res.X[0])
	}
	if res.MaxViolation < 144 {
		t.Errorf("MaxViolation = %v, want >= 145-eps", res.MaxViolation)
	}
}

func TestSolvePOCSAlreadyFeasible(t *testing.T) {
	p := &Problem{
		N:   2,
		Box: Box{0, 255},
		Constraints: []Constraint{
			{Idx: []int{0}, W: []float64{1}, Target: 10, Eps: 5},
		},
	}
	x0 := []float64{12, 99}
	res, err := SolvePOCS(p, x0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Sweeps != 1 {
		t.Errorf("feasible start: %+v", res)
	}
	if !testutil.BitEqual(res.X[0], 12) || !testutil.BitEqual(res.X[1], 99) {
		t.Errorf("feasible start moved: %v", res.X)
	}
}

func TestSolvePOCSZeroWeightConstraintIgnored(t *testing.T) {
	p := &Problem{
		N:   1,
		Box: Box{0, 255},
		Constraints: []Constraint{
			{Idx: []int{0}, W: []float64{0}, Target: 50, Eps: 0},
		},
	}
	res, err := SolvePOCS(p, []float64{1}, Options{MaxSweeps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.BitEqual(res.X[0], 1) {
		t.Errorf("zero-weight constraint moved x: %v", res.X)
	}
}

func TestSolverErrors(t *testing.T) {
	p := &Problem{N: 2, Box: Box{0, 1}}
	if _, err := SolvePOCS(p, []float64{1}, Options{}); err == nil {
		t.Error("POCS bad x0 length = nil error")
	}
	if _, err := SolveProjGrad(p, []float64{1}, Options{}); err == nil {
		t.Error("ProjGrad bad x0 length = nil error")
	}
	bad := &Problem{N: 0}
	if _, err := SolvePOCS(bad, nil, Options{}); err == nil {
		t.Error("POCS invalid problem = nil error")
	}
	if _, err := SolvePOCS(p, []float64{1, 2}, Options{Relax: 3}); err == nil {
		t.Error("POCS bad relax = nil error")
	}
	if _, err := SolvePOCS(p, []float64{1, 2}, Options{Tol: -1}); err == nil {
		t.Error("POCS negative tol = nil error")
	}
	if _, err := MaxViolation(p, []float64{1}); err == nil {
		t.Error("MaxViolation bad x = nil error")
	}
}

// buildRandomFeasible constructs a random sparse problem that is feasible
// by construction: constraints are bands around the projection of a random
// feasible point.
func buildRandomFeasible(rng *rand.Rand, n, m int) (*Problem, []float64) {
	feasible := make([]float64, n)
	for i := range feasible {
		feasible[i] = rng.Float64() * 255
	}
	p := &Problem{N: n, Box: Box{0, 255}}
	for i := 0; i < m; i++ {
		k := rng.Intn(3) + 1
		idx := make([]int, 0, k)
		seen := map[int]bool{}
		for len(idx) < k {
			j := rng.Intn(n)
			if !seen[j] {
				seen[j] = true
				idx = append(idx, j)
			}
		}
		w := make([]float64, k)
		var s, t float64
		for kk := range w {
			w[kk] = rng.Float64()
			s += w[kk]
		}
		for kk := range w {
			w[kk] /= s
			t += w[kk] * feasible[idx[kk]]
		}
		p.Constraints = append(p.Constraints, Constraint{Idx: idx, W: w, Target: t, Eps: 1})
	}
	return p, feasible
}

// Property: POCS converges on feasible problems and the solution satisfies
// every constraint within eps+tol and the box.
func TestPOCSFeasibleConvergenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		p, _ := buildRandomFeasible(rng, 40, 25)
		x0 := make([]float64, p.N)
		for i := range x0 {
			x0[i] = rng.Float64() * 255
		}
		res, err := SolvePOCS(p, x0, Options{MaxSweeps: 5000, Tol: 1e-4})
		if err != nil || !res.Converged {
			return false
		}
		for _, v := range res.X {
			if v < -1e-12 || v > 255+1e-12 {
				return false
			}
		}
		return res.MaxViolation <= 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: POCS stays close to the start point — its perturbation should
// be no more than a small multiple of the projected-gradient solver's.
func TestPOCSNearMinimumNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p, _ := buildRandomFeasible(rng, 30, 12)
	x0 := make([]float64, p.N)
	for i := range x0 {
		x0[i] = rng.Float64() * 255
	}
	pocs, err := SolvePOCS(p, x0, Options{MaxSweeps: 1000, Tol: 1e-5})
	if err != nil || !pocs.Converged {
		t.Fatalf("POCS failed: %v %+v", err, pocs)
	}
	pg, err := SolveProjGrad(p, x0, Options{MaxSweeps: 20000, Tol: 1e-2})
	if err != nil {
		t.Fatalf("ProjGrad failed: %v", err)
	}
	normOf := func(x []float64) float64 {
		var s float64
		for i := range x {
			d := x[i] - x0[i]
			s += d * d
		}
		return math.Sqrt(s)
	}
	np, ng := normOf(pocs.X), normOf(pg.X)
	// POCS should not be wildly worse than the penalized descent solution.
	if ng > 1e-9 && np > 3*ng+1 {
		t.Errorf("POCS norm %v much larger than projgrad %v", np, ng)
	}
}

func TestProjGradSimpleProblem(t *testing.T) {
	p := &Problem{
		N:   2,
		Box: Box{0, 255},
		Constraints: []Constraint{
			{Idx: []int{0, 1}, W: []float64{1, 1}, Target: 100, Eps: 2},
		},
	}
	res, err := SolveProjGrad(p, []float64{10, 10}, Options{MaxSweeps: 50000, Tol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	s := res.X[0] + res.X[1]
	if math.Abs(s-100) > 2.1 {
		t.Errorf("projgrad constraint value = %v (x=%v, converged=%v)", s, res.X, res.Converged)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MaxSweeps != 100 || !testutil.BitEqual(o.Tol, 1e-6) || !testutil.BitEqual(o.Relax, 1) {
		t.Errorf("defaults = %+v", o)
	}
	o = Options{MaxSweeps: 5, Tol: 0.1, Relax: 1.5}.withDefaults()
	if o.MaxSweeps != 5 || !testutil.BitEqual(o.Tol, 0.1) || !testutil.BitEqual(o.Relax, 1.5) {
		t.Errorf("explicit options clobbered: %+v", o)
	}
}

func BenchmarkPOCS1000Constraints(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p, _ := buildRandomFeasible(rng, 4096, 1000)
	x0 := make([]float64, p.N)
	for i := range x0 {
		x0[i] = rng.Float64() * 255
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolvePOCS(p, x0, Options{MaxSweeps: 50, Tol: 1e-3}); err != nil {
			b.Fatal(err)
		}
	}
}
